"""Benchmark: regenerate Figure 13 (failure scenarios, UnoRC ablation)."""

import numpy as np

from repro.experiments import fig13


def test_fig13(once):
    res = once(fig13.run, quick=True)

    # (A) border-link failure: UnoLB routes blocks around the dead link
    # and parity absorbs the partial losses — several times better than
    # spraying (which keeps feeding the dead link a share of EVERY
    # block), and EC only helps. (PLB recovers well under a *permanent*
    # single failure because it repaths on RTO; its weakness is flaky
    # loss — scenario B. See EXPERIMENTS.md.)
    a = {k: float(np.mean(v)) for k, v in res["A"].items()}
    assert a["unolb+ec"] < a["spray"] / 4
    assert a["unolb+ec"] <= a["unolb"] * 1.1
    assert a["spray+ec"] <= a["spray"]

    # (B) random correlated loss: EC removes the retransmission tail for
    # UnoLB; PLB (single path, whole blocks share fate) has the worst
    # tail and EC fixes it.
    b_max = {k: float(np.max(v)) for k, v in res["B"].items()}
    assert b_max["plb"] == max(b_max.values())
    assert b_max["unolb+ec"] <= b_max["plb"]
    assert b_max["plb+ec"] < b_max["plb"]

    # (C) Allreduce under failures + drops: UnoLB+EC is far closer to
    # ideal than both PLB variants, and EC improves UnoLB.
    c = {k: v["mean_slowdown"] for k, v in res["C"].items()}
    assert c["unolb+ec"] <= min(c["plb"], c["plb+ec"]) * 1.05
    assert c["unolb+ec"] <= c["unolb"] * 1.05
    assert c["unolb+ec"] >= 1.0
