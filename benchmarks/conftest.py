"""Benchmark configuration.

Every paper figure/table has one benchmark module that regenerates it in
quick (scaled-down, shape-preserving) mode via pytest-benchmark. Each
experiment is seconds-to-minutes of simulation, so benchmarks run a
single round with no warmup.
"""

import pytest


@pytest.fixture
def once(benchmark):
    """Run the benchmarked callable exactly once and return its result."""

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1, warmup_rounds=0)

    return _run
