"""Micro- and macro-benchmarks of the simulator hot path.

Every scenario is a function ``(quick: bool, seed: int) -> dict`` that
builds its own world, times only the measured section (event execution,
or topology construction for ``topo_build``), and returns a flat record:

- ``events`` / ``wall_s`` / ``events_per_sec`` — engine event throughput,
  the repo's first-class performance metric (event rate bounds what
  scenarios the simulator can explore, as in DCSim and the OMNeT++
  RoCEv2 study);
- ``packets`` / ``packets_per_sec`` — link-delivered packets, the
  workload-facing counterpart;
- scenario-specific extras (flows completed, hosts built, ...).

The four core scenarios mirror the tiers the ISSUE names:

- ``event_loop`` — raw engine: callback chains plus timer cancel/re-arm
  churn (the RTO pattern that produces heap tombstones);
- ``dumbbell_saturation`` — 8 DCTCP pairs saturating a shared bottleneck;
- ``fattree_perm`` — the fig9 workload: full-host random permutation on
  the two-DC fat-tree under the full Uno stack (UnoCC+UnoLB+EC);
- ``two_dc_mixed`` — Poisson arrivals of mixed intra/inter flows from
  the paper's websearch / Alibaba-WAN CDFs.

``topo_build`` additionally times topology construction under attached
telemetry (the per-link gauge-registration cost).
"""

from __future__ import annotations

import random
import time
from typing import Callable, Dict

from repro.sim.engine import Simulator

Scenario = Callable[[bool, int], Dict]

_REGISTRY: Dict[str, Scenario] = {}


def scenario(fn: Scenario) -> Scenario:
    _REGISTRY[fn.__name__] = fn
    return fn


def all_scenarios() -> Dict[str, Scenario]:
    return dict(_REGISTRY)


def _finish(record: Dict, sim: Simulator, wall_s: float, packets: int) -> Dict:
    record.update(
        events=sim.events_executed,
        packets=packets,
        wall_s=wall_s,
        events_per_sec=sim.events_executed / wall_s if wall_s > 0 else 0.0,
        packets_per_sec=packets / wall_s if wall_s > 0 else 0.0,
    )
    return record


def _delivered(net) -> int:
    return sum(link.delivered_pkts for link in net.links)


@scenario
def event_loop(quick: bool, seed: int) -> Dict:
    """Raw engine throughput: chained callbacks + timer cancel churn.

    Half the events are plain self-rechaining callbacks; the other half
    model the transport's timer pattern — schedule a far-future timer,
    cancel it on the next event, schedule a new one — so the benchmark
    exercises tombstone accumulation and compaction, not just push/pop.
    """
    n_chains = 10
    n_events = 200_000 if quick else 2_000_000
    sim = Simulator()
    per_chain = n_events // n_chains
    live = {"timers": [None] * n_chains}

    def tick(chain: int, remaining: int) -> None:
        timer = live["timers"][chain]
        if timer is not None:
            timer.cancel()
        if remaining <= 0:
            live["timers"][chain] = None
            return
        # Far-future timer, cancelled on the next tick: a heap tombstone.
        live["timers"][chain] = sim.after(10_000_000, _noop)
        sim.after(100 + chain, tick, chain, remaining - 1)

    for c in range(n_chains):
        sim.at(c, tick, c, per_chain)
    t0 = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - t0
    return _finish({"name": "event_loop", "chains": n_chains}, sim, wall, 0)


def _noop() -> None:
    return None


@scenario
def dumbbell_saturation(quick: bool, seed: int) -> Dict:
    """Eight DCTCP pairs saturating one shared bottleneck link."""
    from repro.sim.units import MIB, US
    from repro.topology.simple import dumbbell
    from repro.transport.dctcp import DCTCP
    from repro.transport.base import start_flow

    size = (12 * MIB) if quick else (96 * MIB)
    sim = Simulator()
    topo = dumbbell(sim, n_pairs=8, gbps=25.0, prop_ps=1 * US,
                    queue_bytes=MIB // 4, seed=seed)
    senders = [
        start_flow(sim, topo.net, DCTCP(), s, r, size,
                   base_rtt_ps=8 * US, line_gbps=25.0, seed=seed ^ i)
        for i, (s, r) in enumerate(zip(topo.senders, topo.receivers))
    ]
    t0 = time.perf_counter()
    sim.run(until=4_000_000_000_000)
    wall = time.perf_counter() - t0
    done = sum(1 for s in senders if s.done)
    if done != len(senders):
        raise RuntimeError(f"dumbbell flows unfinished: {done}/{len(senders)}")
    return _finish({"name": "dumbbell_saturation", "flows": done},
                   sim, wall, _delivered(topo.net))


@scenario
def fattree_perm(quick: bool, seed: int) -> Dict:
    """The fig9 workload: full-host permutation on the two-DC fat-tree
    under the complete Uno stack (UnoCC + UnoLB + erasure coding)."""
    from repro.experiments.harness import (
        ExperimentScale, build_multidc, make_launcher,
    )
    from repro.sim.units import KIB
    from repro.workloads.patterns import permutation_specs

    scale = ExperimentScale.quick()
    size = (1024 * KIB) if quick else (8 * 1024 * KIB)
    sim = Simulator()
    params = scale.params()
    topo = build_multidc(sim, "uno", params, scale, seed=seed)
    specs = permutation_specs(topo, size, random.Random(seed))
    launcher = make_launcher("uno", sim, topo, params, seed=seed)
    remaining = [len(specs)]

    def done(_s) -> None:
        remaining[0] -= 1

    senders = [launcher(spec, idx, done) for idx, spec in enumerate(specs)]
    t0 = time.perf_counter()
    sim.run(until=scale.horizon_ps)
    wall = time.perf_counter() - t0
    if remaining[0] > 0:
        raise RuntimeError(f"fattree_perm flows unfinished: {remaining[0]}")
    return _finish({"name": "fattree_perm", "flows": len(senders)},
                   sim, wall, _delivered(topo.net))


@scenario
def two_dc_mixed(quick: bool, seed: int) -> Dict:
    """Poisson mixed intra/inter traffic on the two-DC topology."""
    from repro.experiments.harness import (
        ExperimentScale, build_multidc, make_launcher,
    )
    from repro.workloads.alibaba_wan import ALIBABA_WAN_CDF
    from repro.workloads.generator import PoissonTraffic, TrafficConfig
    from repro.workloads.websearch import WEBSEARCH_CDF

    scale = ExperimentScale.quick()
    max_flows = 400 if quick else 2000
    sim = Simulator()
    params = scale.params()
    topo = build_multidc(sim, "uno", params, scale, seed=seed)
    traffic = PoissonTraffic(
        topo,
        TrafficConfig(
            load=0.4,
            duration_ps=40_000_000_000,
            intra_cdf=WEBSEARCH_CDF.scaled(1 / 64),
            inter_cdf=ALIBABA_WAN_CDF.scaled(1 / 64),
            max_flows=max_flows,
            seed=seed,
        ),
    )
    specs = traffic.generate()
    launcher = make_launcher("uno", sim, topo, params, seed=seed)
    remaining = [len(specs)]

    def done(_s) -> None:
        remaining[0] -= 1

    senders = [launcher(spec, idx, done) for idx, spec in enumerate(specs)]
    t0 = time.perf_counter()
    sim.run(until=scale.horizon_ps)
    wall = time.perf_counter() - t0
    if remaining[0] > 0:
        raise RuntimeError(f"two_dc_mixed flows unfinished: {remaining[0]}")
    return _finish({"name": "two_dc_mixed", "flows": len(senders)},
                   sim, wall, _delivered(topo.net))


@scenario
def two_dc_sharded(quick: bool, seed: int) -> Dict:
    """Two-DC Poisson traffic on 2 shard engines vs one engine.

    Runs the pinned :class:`~repro.experiments.sharded.TwoDCWorkload`
    once single-engine and once sharded (one worker process per DC,
    conservative sync across the border links) and reports the sharded
    run's **aggregate** event rate: total events over the critical-path
    worker CPU time (the slowest shard's busy seconds plus nothing else
    — exactly total-events/wall-clock when every worker owns a core, and
    hardware-independent when CI packs both workers onto one). The
    wall-clock rate of this machine is recorded alongside
    (``wall_events_per_sec``), as are the single-engine baseline and the
    ``speedup`` ratio the ISSUE gates on.
    """
    from repro.experiments.sharded import TwoDCWorkload, run_sharded

    workload = TwoDCWorkload(seed=seed, max_flows=1000 if quick else 2000)
    single = run_sharded(workload, shards=1)
    sharded = run_sharded(workload, shards=2, processes=True)
    if sharded["violations"] or sharded["unfinished"] or single["unfinished"]:
        raise RuntimeError(
            f"two_dc_sharded run unhealthy: violations="
            f"{sharded['violations']} unfinished="
            f"{sharded['unfinished']}/{single['unfinished']}"
        )
    agg_rate = sharded["total_events"] / sharded["busy_cpu_s"]
    single_rate = single["total_events"] / single["busy_cpu_s"]
    import os
    return {
        "name": "two_dc_sharded",
        "flows": len(sharded["flows"]),
        "shards": 2,
        "rounds": sharded["rounds"],
        "lookahead_ps": sharded["lookahead_ps"],
        "events": sharded["total_events"],
        "packets": sharded["delivered_pkts"],
        "wall_s": sharded["wall_s"],
        "events_per_sec": agg_rate,
        "packets_per_sec": sharded["delivered_pkts"] / sharded["busy_cpu_s"],
        "wall_events_per_sec": sharded["total_events"] / sharded["wall_s"],
        "busy_cpu_by_shard": sharded["busy_cpu_by_shard"],
        "single_events": single["total_events"],
        "single_wall_s": single["wall_s"],
        "single_events_per_sec": single_rate,
        "speedup": agg_rate / single_rate,
        "cpus": os.cpu_count(),
    }


@scenario
def topo_build(quick: bool, seed: int) -> Dict:
    """Topology construction under attached telemetry.

    Times only ``build_multidc`` (node/link/port creation including
    per-instance gauge registration) with a TelemetryContext in force —
    the path the lazy-registration optimisation targets."""
    from repro import obs
    from repro.experiments.harness import ExperimentScale, build_multidc

    scale = ExperimentScale.quick()
    builds = 3 if quick else 15
    params = scale.params()
    wall = 0.0
    links = 0
    with obs.TelemetryContext(profile=False):
        for i in range(builds):
            sim = Simulator()
            t0 = time.perf_counter()
            topo = build_multidc(sim, "uno", params, scale, seed=seed + i)
            wall += time.perf_counter() - t0
            links = len(topo.net.links)
    return {
        "name": "topo_build",
        "builds": builds,
        "links": links,
        "events": 0,
        "packets": 0,
        "wall_s": wall,
        "events_per_sec": 0.0,
        "packets_per_sec": 0.0,
        "builds_per_sec": builds / wall if wall > 0 else 0.0,
    }


# The core scenarios whose events/sec the CI baseline gate tracks
# (topo_build reports builds/sec, not an event rate). two_dc_sharded's
# gated number is the aggregate sharded rate — a regression there means
# the boundary/sync layer got more expensive.
CORE_SCENARIOS = (
    "event_loop", "dumbbell_saturation", "fattree_perm", "two_dc_mixed",
    "two_dc_sharded",
)
