"""Performance benchmark scenarios for the simulator hot path.

Driven by ``tools/bench.py``; see :mod:`benchmarks.perf.scenarios` for
the scenario definitions and the JSON record each one produces.
"""
