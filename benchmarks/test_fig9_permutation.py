"""Benchmark: regenerate Figure 9 (permutation workload)."""

from repro.experiments import fig9


def test_fig9(once):
    res = once(fig9.run, quick=True)
    asis = res["variants"]["as-is"]
    prov = res["variants"]["provisioned"]

    # Paper shape: Uno (UnoLB) beats Uno+ECMP, which beats the baselines,
    # in the oversubscribed as-is topology.
    assert asis["uno"]["fct_mean_ms"] <= 1.1 * asis["uno_ecmp"]["fct_mean_ms"]
    assert asis["uno"]["fct_mean_ms"] < asis["gemini"]["fct_mean_ms"]
    assert asis["uno"]["fct_mean_ms"] < asis["mprdma_bbr"]["fct_mean_ms"]
    # FCTs drop when the WAN is fully provisioned (for every scheme).
    for scheme in ("uno", "uno_ecmp"):
        assert prov[scheme]["fct_mean_ms"] <= asis[scheme]["fct_mean_ms"] * 1.05
