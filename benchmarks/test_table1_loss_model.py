"""Benchmark: regenerate Table 1 (correlated loss structure)."""

from repro.experiments import table1


def test_table1(once):
    res = once(table1.run, quick=True)

    for name, r in res.items():
        paper = r["paper"]
        # The calibrated model's marginal loss rate matches the paper's
        # measured rate within sampling noise.
        assert r["measured_loss_rate"] > 0
        rel = abs(r["measured_loss_rate"] - paper["loss_rate"]) / paper["loss_rate"]
        assert rel < 0.6
        # Correlation structure: the 2-loss block rate is far above the
        # independence prediction (loss_rate^2 * C(10,2) ~ 45*p^2).
        independent_2 = 45 * paper["loss_rate"] ** 2
        assert r["block_rates"][2] > 10 * independent_2
