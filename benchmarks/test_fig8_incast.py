"""Benchmark: regenerate Figure 8 (incast scenarios)."""

from repro.experiments import fig8


def test_fig8(once):
    res = once(fig8.run, quick=True)
    scen = res["scenarios"]

    for name in ("intra-only", "inter-only", "mixed"):
        per = scen[name]
        # Everything completed and produced sane numbers.
        for scheme, r in per.items():
            assert r["fct_mean_ms"] > 0
            assert r["fct_p99_ms"] >= r["fct_mean_ms"] * 0.5
    # Paper shape: Uno wins the inter-only incast decisively (fast
    # reaction at unified granularity + QA)...
    inter = scen["inter-only"]
    assert inter["uno"]["fct_p99_ms"] < inter["gemini"]["fct_p99_ms"]
    assert inter["uno"]["fct_p99_ms"] < inter["mprdma_bbr"]["fct_p99_ms"]
    # ...and stays within ~25% of Gemini on the mixed p99 (our inter-DC
    # additive-increase ramp is alpha-limited per Table 2; see
    # EXPERIMENTS.md). Intra-only pays at most the phantom drain's ~20%.
    mixed = scen["mixed"]
    assert mixed["uno"]["fct_p99_ms"] <= 1.25 * mixed["gemini"]["fct_p99_ms"]
    intra = scen["intra-only"]
    assert intra["uno"]["fct_p99_ms"] <= 1.35 * intra["gemini"]["fct_p99_ms"]
