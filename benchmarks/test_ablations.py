"""Benchmark: ablations of Uno's design choices (DESIGN.md)."""

from repro.experiments import ablations


def test_ablations(once):
    res = once(ablations.run, quick=True)

    # Unified granularity is what buys fast convergence (paper 4.1.1).
    ug = res["unified_granularity"]
    assert ug["unified"]["tail_jain"] >= ug["own-rtt"]["tail_jain"] - 0.02

    # Quick Adapt resolves the overload (paper 4.1.2): the standing
    # queue after the shock is lower with QA than with MD alone. (FCT at
    # quick scale is ramp-dominated and not asserted; see EXPERIMENTS.md.)
    qa = res["quick_adapt"]
    assert (
        qa["qa"]["queue_mean_kb_after_shock"]
        <= qa["no-qa"]["queue_mean_kb_after_shock"]
    )

    # Gentle MD preserves goodput under phantom-only marking (4.1.3).
    gm = res["gentle_md"]
    assert gm["gentle"]["goodput_gbps"] >= gm["full-md"]["goodput_gbps"] * 0.95

    # Redundancy cuts retransmissions monotonically-ish (4.2).
    ec = res["ec_redundancy"]
    assert ec["(8,2)"]["retransmissions"] <= ec["(8,0)"]["retransmissions"]
    assert ec["(8,4)"]["retransmissions"] <= ec["(8,0)"]["retransmissions"]
    assert ec["(8,0)"]["parity_sent"] == 0
