"""Benchmark: Discussion-section claim — HPCC+BBR stays unfair."""

from repro.experiments import discussion_hpcc


def test_discussion_hpcc(once):
    res = once(discussion_hpcc.run, quick=True)

    split = res["hpcc_bbr"]
    uno = res["uno"]
    # The split stack's classes are deeply unfair (BBR starves the INT
    # loop), while Uno's unified loop is already far closer to fair at
    # the same point in the run.
    assert split["tail_jain"] < 0.4
    assert uno["tail_jain"] > 2 * split["tail_jain"]
    # Both flow classes actually progress under Uno.
    assert uno["intra_gbps"] > 1.0
    assert uno["inter_gbps"] > 1.0
