"""Benchmark: regenerate Figure 4 (phantom queue effect)."""

from repro.experiments import fig4


def test_fig4(once):
    res = once(fig4.run, quick=True)
    w, wo = res["with_phantom"], res["without_phantom"]

    # Paper shape: phantom queues hold the physical queue near zero
    # while the no-phantom run keeps a standing queue...
    assert w["queue_mean_kb"] < 0.5 * wo["queue_mean_kb"]
    # ...which translates into better RPC latency, especially at the tail
    # (paper: ~2x mean, ~8x p99).
    assert w["rpc_mean_us"] < wo["rpc_mean_us"]
    assert w["rpc_p99_us"] <= wo["rpc_p99_us"]
