"""Benchmark: regenerate Figure 1B (latency- vs throughput-bound)."""

from repro.experiments import fig1
from repro.sim.units import KIB, MIB


def test_fig1(once):
    res = once(fig1.run, quick=True)
    curves = res["curves"]
    sizes = res["sizes"]

    # Paper shape: intra-DC 10 us RTT becomes throughput-bound (< 0.5)
    # beyond ~256 KiB...
    i_256k = sizes.index(256 * KIB)
    assert curves["10us"][i_256k] < 0.5
    # ...while the 20 ms inter-DC RTT stays latency-bound (> 0.5) even at
    # 256 MiB.
    i_256m = sizes.index(256 * MIB)
    assert curves["20ms"][i_256m] > 0.45
    # Monotone: longer RTT -> more latency-bound at every size.
    for i in range(len(sizes)):
        assert curves["10us"][i] <= curves["20ms"][i] <= curves["60ms"][i]
    # The packet-level simulator agrees with the analytic model.
    for check in res["checks"]:
        assert abs(check["analytic"] - check["simulated"]) < 0.08
