"""Benchmark: the Annulus near-source extension (paper future work)."""

from repro.experiments import annulus_ext


def test_annulus_extension(once):
    res = once(annulus_ext.run, quick=True)
    uno = res["uno"]
    ann = res["uno+annulus"]

    # The near-source loop actually fires...
    assert ann["cnps"] > 0
    assert uno["cnps"] == 0
    # ...and cuts congestion drops at the oversubscribed uplinks without
    # hurting completion times materially.
    assert ann["drops"] <= uno["drops"]
    assert ann["fct_mean_ms"] <= uno["fct_mean_ms"] * 1.15
