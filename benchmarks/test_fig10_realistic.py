"""Benchmark: regenerate Figure 10 (realistic workloads vs load)."""

from repro.experiments import fig10


def test_fig10(once):
    res = once(fig10.run, quick=True)
    cells = res["cells"]

    for load, per_scheme in cells.items():
        for scheme, r in per_scheme.items():
            assert r["n_flows"] > 0
            assert r["inter"] is not None and r["intra"] is not None
    # Paper shape at 40% load: full Uno beats both baselines on inter-DC
    # FCT (mean), and overall.
    c40 = cells[0.4]
    assert c40["uno"]["inter"]["mean_ps"] < c40["gemini"]["inter"]["mean_ps"]
    assert (c40["uno"]["inter"]["mean_ps"]
            < c40["mprdma_bbr"]["inter"]["mean_ps"])
    assert (c40["uno"]["overall"]["mean_ps"]
            < c40["gemini"]["overall"]["mean_ps"])
