"""Benchmark: regenerate Figure 12 (shallow intra / deep inter buffers)."""

from repro.experiments import fig12


def test_fig12(once):
    res = once(fig12.run, quick=True)
    cells = res["cells"]

    assert res["inter_queue"] > res["intra_queue"]
    for scheme, r in cells.items():
        assert r["intra"] is not None and r["inter"] is not None
    # Paper shape: Uno's advantage persists with asymmetric buffers.
    assert (cells["uno"]["inter"]["mean_ps"]
            < cells["gemini"]["inter"]["mean_ps"])
    assert (cells["uno"]["inter"]["mean_ps"]
            < cells["mprdma_bbr"]["inter"]["mean_ps"])
