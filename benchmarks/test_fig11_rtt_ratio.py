"""Benchmark: regenerate Figure 11 (FCT slowdown vs RTT ratio)."""

from repro.experiments import fig11


def test_fig11(once):
    res = once(fig11.run, quick=True)
    cells = res["cells"]

    for ratio, per_scheme in cells.items():
        for scheme, cell in per_scheme.items():
            assert cell["slowdown"]["mean"] >= 1.0
    # Paper shape: at the largest RTT ratio Uno's slowdown is clearly
    # below both baselines.
    top = cells[max(cells)]
    assert top["uno"]["slowdown"]["p99"] < top["gemini"]["slowdown"]["p99"]
    assert top["uno"]["slowdown"]["p99"] < top["mprdma_bbr"]["slowdown"]["p99"]
