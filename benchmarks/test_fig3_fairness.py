"""Benchmark: regenerate Figure 3 (fairness convergence, mixed incast)."""

from repro.experiments import fig3


def test_fig3(once):
    res = once(fig3.run, quick=True)
    r = res["results"]
    uno, gemini, mprdma = r["uno"], r["gemini"], r["mprdma_bbr"]

    # Paper shape: Uno converges (J > 0.9, sustained) within the window,
    # while MPRDMA+BBR's steady state is deeply unfair (the two control
    # loops fight — a momentary high-J startup sample is not convergence,
    # hence the tail-index check).
    assert uno["convergence_ms"] is not None
    # The tail mean hovers just around the 0.9 convergence threshold
    # while the AIMD sawtooth settles; 0.85 is comfortably above any
    # non-converged state.
    assert uno["final_jain"] > 0.85
    assert uno["final_jain"] > mprdma["final_jain"]
    assert mprdma["final_jain"] < 0.6
    # The joint claim: Uno reaches fairness with a near-empty bottleneck
    # queue, whereas Gemini's ECN loop sustains a large standing queue
    # (its latency cost, visible throughout Figs 4/10). See EXPERIMENTS.md
    # for the convergence-speed deviation note.
    assert uno["queue_mean_kb"] < 0.25 * gemini["queue_mean_kb"]
