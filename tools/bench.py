#!/usr/bin/env python
"""Benchmark driver: run the perf scenarios and write ``BENCH_<name>.json``.

Usage (from the repo root)::

    PYTHONPATH=src python tools/bench.py --quick            # quick tier
    PYTHONPATH=src python tools/bench.py                    # full tier
    PYTHONPATH=src python tools/bench.py --only fattree_perm --repeat 3
    PYTHONPATH=src python tools/bench.py --quick \
        --check-baseline benchmarks/perf/baseline.json      # CI gate

Each scenario writes one ``BENCH_<name>.json`` in ``--out`` (default:
the repo root) recording events/sec, packets/sec and peak RSS — the
repo's performance trajectory, one file per scenario per tree state.
With ``--repeat N`` every run's min/median/max rate is reported and the
**median** run is the one written to ``BENCH_<name>.json``: on a noisy
shared machine the median tracks the tree's real throughput where a
best-of-N would track the scheduler's luckiest slice. Every individual
run (not just the kept one) appends its record to
``BENCH_history.jsonl`` in the same directory (one JSON line per run),
which ``tools/dashboard.py`` charts as the bench trajectory.

``--check-baseline`` compares each core scenario's events/sec against a
committed baseline file and exits non-zero if any regresses by more than
``--tolerance`` (default 0.25). Baselines are machine-dependent: commit
conservative numbers (see benchmarks/perf/baseline.json) so the gate
catches algorithmic regressions, not hardware variance.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import resource
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT))          # benchmarks package
sys.path.insert(0, str(REPO_ROOT / "src"))  # repro package

from benchmarks.perf import scenarios as S  # noqa: E402

# Recorded per run and used for per-mode baseline floors: the SoA packet
# backend trades per-field access cost for columnar storage, so its
# events/sec floor differs from the pool-off one.
POOL_MODE = os.environ.get("REPRO_PACKET_POOL", "").strip().lower() or "off"


def peak_rss_bytes() -> int:
    """Peak resident set size of this process, in bytes (Linux: KiB)."""
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return rss * 1024 if platform.system() == "Linux" else rss


def _rate(rec: dict) -> float:
    """The scenario's headline rate: builds/s for topology-construction
    scenarios, events/s for simulation scenarios."""
    return rec.get("builds_per_sec") or rec["events_per_sec"]


def run_scenario(name: str, fn, quick: bool, seed: int,
                 repeat: int) -> tuple[dict, list[dict]]:
    """Run ``fn`` ``repeat`` times; return ``(kept, runs)`` where ``kept``
    is the median-rate run annotated with the min/median/max spread and
    ``runs`` is every individual record, in execution order, for the
    history log."""
    meta = dict(
        quick=quick,
        seed=seed,
        repeat=repeat,
        pool_mode=POOL_MODE,
        python=platform.python_version(),
        machine=platform.machine(),
        timestamp=time.strftime("%Y-%m-%dT%H:%M:%S"),
    )
    runs = []
    for rep in range(repeat):
        rec = fn(quick, seed)
        rec.update(meta, rep=rep, peak_rss_bytes=peak_rss_bytes())
        runs.append(rec)
    by_rate = sorted(runs, key=_rate)
    # Lower median: an actual run's record (its internal fields stay
    # mutually consistent), never an average of two runs.
    kept = dict(by_rate[(len(by_rate) - 1) // 2])
    kept.update(
        rate_min=_rate(by_rate[0]),
        rate_median=_rate(kept),
        rate_max=_rate(by_rate[-1]),
    )
    kept.pop("rep", None)
    return kept, runs


def check_baseline(results: list[dict], baseline_path: Path,
                   tolerance: float) -> int:
    baseline = json.loads(baseline_path.read_text())
    failures = 0
    for rec in results:
        name = rec["name"]
        # A mode-specific floor ("fattree_perm@soa") outranks the plain
        # one: pool backends have different expected rates.
        base = baseline.get(f"{name}@{POOL_MODE}") or baseline.get(name)
        if not base or name not in S.CORE_SCENARIOS:
            continue
        floor = base["events_per_sec"] * (1.0 - tolerance)
        status = "ok" if rec["events_per_sec"] >= floor else "REGRESSED"
        print(f"  baseline {name} [{POOL_MODE}]: "
              f"{rec['events_per_sec']:,.0f} ev/s vs "
              f"floor {floor:,.0f} ev/s ({base['events_per_sec']:,.0f} "
              f"- {tolerance:.0%}) -> {status}")
        if status != "ok":
            failures += 1
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--quick", action="store_true",
                        help="small inputs (CI tier)")
    parser.add_argument("--only", default=None,
                        help="comma-separated scenario names")
    parser.add_argument("--repeat", type=int, default=1,
                        help="runs per scenario; best is kept")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--out", default=str(REPO_ROOT),
                        help="directory for BENCH_<name>.json files")
    parser.add_argument("--check-baseline", default=None, metavar="FILE",
                        help="fail if a core scenario's events/sec "
                             "regresses past --tolerance vs FILE")
    parser.add_argument("--tolerance", type=float, default=0.25)
    args = parser.parse_args(argv)

    table = S.all_scenarios()
    if args.only:
        names = [n.strip() for n in args.only.split(",") if n.strip()]
        unknown = [n for n in names if n not in table]
        if unknown:
            parser.error(f"unknown scenarios {unknown}; "
                         f"choose from {sorted(table)}")
    else:
        names = list(table)

    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    results = []
    for name in names:
        print(f"[bench] {name} (quick={args.quick}, repeat={args.repeat})")
        rec, runs = run_scenario(name, table[name], args.quick, args.seed,
                                 args.repeat)
        results.append(rec)
        path = out_dir / f"BENCH_{name}.json"
        path.write_text(json.dumps(rec, indent=2, sort_keys=True) + "\n")
        with open(out_dir / "BENCH_history.jsonl", "a",
                  encoding="utf-8") as history:
            for run in runs:
                history.write(json.dumps(run, sort_keys=True,
                                         separators=(",", ":")) + "\n")
        unit = "builds/s" if rec.get("builds_per_sec") else "ev/s"
        spread = (f"min {rec['rate_min']:,.0f} / median "
                  f"{rec['rate_median']:,.0f} / max {rec['rate_max']:,.0f} "
                  f"{unit}")
        if not rec.get("builds_per_sec"):
            spread += f", {rec['packets_per_sec']:,.0f} pkt/s @ median"
        print(f"  {spread}  wall={rec['wall_s']:.3f}s  "
              f"rss={rec['peak_rss_bytes'] / 2**20:.0f}MiB  -> {path}")

    if args.check_baseline:
        failures = check_baseline(results, Path(args.check_baseline),
                                  args.tolerance)
        if failures:
            print(f"[bench] {failures} scenario(s) regressed past "
                  f"{args.tolerance:.0%}")
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
