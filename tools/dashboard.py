#!/usr/bin/env python
"""Campaign dashboard: tail a running ``run_all`` campaign, render it.

Usage (from the repo root)::

    PYTHONPATH=src python tools/dashboard.py <out-dir>            # one-shot
    PYTHONPATH=src python tools/dashboard.py <out-dir> --follow   # live tail
    PYTHONPATH=src python tools/dashboard.py <out-dir> --html report.html

``<out-dir>`` is the ``--out`` directory of a ``run_all --telemetry``
invocation. The dashboard is a pure consumer — it never imports the
simulator's hot path, only reads the files the campaign writes:

- ``telemetry/campaign.jsonl`` — the live progress stream (tailed
  incrementally; torn final lines are retried on the next poll);
- ``summaries/chaos-*.json`` — chaos campaign verdicts (invariant
  status);
- ``summaries/wire-*.json`` — sim-to-wire campaign verdicts (soak
  gates, sim-vs-wire FCT deltas per compare cell);
- ``summaries/sharded-two-dc.json`` + ``telemetry/sharded/`` — the
  merged cross-shard trace, its conservation status, and per-flow span
  timelines (flagged flows get a waterfall);
- ``BENCH_*.json`` / ``BENCH_history.jsonl`` in ``--bench-dir``
  (default: the repo root) — the committed bench trajectory.

``--html FILE`` writes a static self-contained report (inline CSS +
SVG, no external assets). Exit status is the CI gate: non-zero when the
campaign has failed points, a chaos invariant was violated, a wire
campaign's soak/compare gates failed, or the trace aggregator reports
conservation violations.
"""

from __future__ import annotations

import argparse
import html
import json
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs.stream import flow_timeline  # noqa: E402

#: Span kinds that flag a flow for a waterfall: anything that signals
#: loss recovery or an abnormal end, plus cross-shard stitches.
FLAG_KINDS = ("rto", "retransmit")


# ---------------------------------------------------------------------------
# Incremental JSONL tailing


class JSONLTail:
    """Incrementally read a JSONL file that another process is writing.

    ``poll()`` returns the records appended since the last call. A torn
    final line (the writer crashed or has not finished the write) stays
    buffered until its newline arrives, so a record is never half-read.
    The file may not exist yet; ``poll()`` just returns nothing.
    """

    def __init__(self, path: Path) -> None:
        self.path = Path(path)
        self._offset = 0
        self._partial = ""

    def poll(self) -> List[Dict[str, Any]]:
        try:
            with open(self.path, "r", encoding="utf-8") as fh:
                fh.seek(self._offset)
                chunk = fh.read()
                self._offset = fh.tell()
        except OSError:
            return []
        if not chunk:
            return []
        text = self._partial + chunk
        lines = text.split("\n")
        self._partial = lines.pop()  # "" when chunk ended in a newline
        records = []
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                continue  # corrupt line: skip, keep tailing
        return records


# ---------------------------------------------------------------------------
# Campaign state (consumer of the CampaignStream record vocabulary)


class CampaignState:
    """Fold ``campaign.jsonl`` records into a renderable snapshot."""

    def __init__(self) -> None:
        self.name: Optional[str] = None
        self.total = 0
        self.done = 0
        self.failed = 0
        self.cached = 0
        self.retries = 0
        self.started_ts: Optional[float] = None
        self.ended = False
        self.end_fields: Dict[str, Any] = {}
        self.points: List[Dict[str, Any]] = []

    def feed(self, rec: Dict[str, Any]) -> None:
        kind = rec.get("kind")
        if kind == "campaign_start":
            # A new stream in the same file restarts the state.
            self.__init__()
            self.name = rec.get("campaign")
            self.total = int(rec.get("total", 0))
            self.started_ts = rec.get("ts")
        elif kind == "point":
            self.done += 1
            if rec.get("status") != "ok":
                self.failed += 1
            if rec.get("cached"):
                self.cached += 1
            self.points.append(rec)
        elif kind == "retry":
            self.retries += 1
        elif kind == "campaign_end":
            self.ended = True
            self.done = int(rec.get("done", self.done))
            self.failed = int(rec.get("failed", self.failed))
            self.end_fields = {k: v for k, v in rec.items()
                               if k not in ("kind", "ts", "done", "failed")}

    @property
    def ok(self) -> bool:
        return self.failed == 0


# ---------------------------------------------------------------------------
# File readers (one-shot, tolerant of absence)


def read_json(path: Path) -> Optional[Dict[str, Any]]:
    try:
        return json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None


def read_jsonl_file(path: Path) -> List[Dict[str, Any]]:
    return JSONLTail(path).poll()


def chaos_summaries(out: Path) -> List[Tuple[str, Dict[str, Any]]]:
    rows = []
    for path in sorted((out / "summaries").glob("chaos-*.json")):
        data = read_json(path)
        if data is not None:
            rows.append((path.stem, data))
    return rows


def wire_summaries(out: Path) -> List[Tuple[str, Dict[str, Any]]]:
    rows = []
    for path in sorted((out / "summaries").glob("wire-*.json")):
        data = read_json(path)
        if data is not None:
            rows.append((path.stem, data))
    return rows


def wire_gate_ok(data: Dict[str, Any]) -> bool:
    return (data.get("all_gates_passed", False)
            and not data.get("n_failed_points", 0))


def wire_cell_detail(cell: Dict[str, Any]) -> str:
    """One wire point as a phrase: sim-vs-wire FCT delta for compare
    cells, terminal outcomes (and the abort paths taken) for soak
    cells."""
    if cell.get("cell") == "compare":
        ratio = cell.get("mean_fct_ratio")
        if ratio is None:
            return "compare: no completed flows"
        return (f"wire/sim fct {ratio:.2f}x "
                f"(sim {cell.get('sim_mean_fct_ms', 0):.1f} ms, "
                f"wire {cell.get('wire_mean_fct_ms', 0):.1f} ms), "
                f"retx delta {cell.get('retx_delta', 0)}")
    n = cell.get("n_flows", 0)
    detail = (f"{cell.get('completed', 0)}/{n} completed, "
              f"{cell.get('aborted', 0)} aborted")
    if cell.get("aborted"):
        detail += (f" ({cell.get('idled_out', 0)} idled out, "
                   f"max backoff {cell.get('max_backoff', 0)})")
    fct = cell.get("mean_fct_ms")
    if fct is not None:
        detail += f", fct {fct:.1f} ms"
    return detail


def sharded_summary(out: Path) -> Optional[Dict[str, Any]]:
    return read_json(out / "summaries" / "sharded-two-dc.json")


def trace_events(out: Path) -> List[Dict[str, Any]]:
    return read_jsonl_file(out / "telemetry" / "sharded" / "trace.jsonl")


def trace_meta(out: Path) -> Optional[Dict[str, Any]]:
    return read_json(out / "telemetry" / "sharded" / "summary.json")


def flagged_flows(events: List[Dict[str, Any]],
                  cross_shard: List[int], limit: int) -> List[int]:
    """Flows worth a waterfall: loss recovery, aborts, then cross-shard
    stitches, in that priority order, deduplicated, capped at *limit*."""
    flagged: List[int] = []
    for ev in events:
        fid = ev.get("flow")
        if fid is None or fid in flagged:
            continue
        if ev.get("kind") in FLAG_KINDS or ev.get("outcome") == "abort":
            flagged.append(fid)
    for fid in cross_shard:
        if fid not in flagged:
            flagged.append(fid)
    return flagged[:limit]


def bench_records(bench_dir: Path) -> Dict[str, List[Dict[str, Any]]]:
    """Bench trajectory per scenario: history lines first (oldest to
    newest), then the current snapshot if it is not already the last
    history entry."""
    series: Dict[str, List[Dict[str, Any]]] = {}
    for rec in read_jsonl_file(bench_dir / "BENCH_history.jsonl"):
        if not isinstance(rec, dict):
            continue  # corrupt history line: tolerate, keep the rest
        name = rec.get("name")
        if name:
            series.setdefault(name, []).append(rec)
    for path in sorted(bench_dir.glob("BENCH_*.json")):
        rec = read_json(path)
        if not isinstance(rec, dict) or "name" not in rec:
            continue
        runs = series.setdefault(rec["name"], [])
        if not runs or runs[-1].get("timestamp") != rec.get("timestamp"):
            runs.append(rec)
    return series


# ---------------------------------------------------------------------------
# Terminal rendering


BAR_WIDTH = 40
SPARK = "▁▂▃▄▅▆▇█"


def bar(fraction: float, width: int = BAR_WIDTH) -> str:
    fraction = max(0.0, min(1.0, fraction))
    filled = int(round(fraction * width))
    return "#" * filled + "." * (width - filled)


def sparkline(values: List[float]) -> str:
    if not values:
        return ""
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    return "".join(SPARK[int((v - lo) / span * (len(SPARK) - 1))]
                   for v in values)


def render_campaign(state: CampaignState, lines: List[str]) -> None:
    if state.name is None:
        lines.append("campaign: (no campaign.jsonl yet)")
        return
    frac = state.done / state.total if state.total else 0.0
    status = ("done" if state.ended else "running")
    if state.failed:
        status += f", {state.failed} FAILED"
    lines.append(f"campaign {state.name}: [{bar(frac)}] "
                 f"{state.done}/{state.total} ({frac:4.0%}) {status}")
    detail = []
    if state.cached:
        detail.append(f"{state.cached} cached")
    if state.retries:
        detail.append(f"{state.retries} retried")
    if detail:
        lines.append("  " + ", ".join(detail))
    for rec in state.points:
        if rec.get("status") != "ok":
            lines.append(f"  FAILED {rec.get('point')}: "
                         f"{rec.get('status')}")


def render_chaos(rows: List[Tuple[str, Dict[str, Any]]],
                 lines: List[str]) -> None:
    lines.append("")
    lines.append("chaos invariants:")
    if not rows:
        lines.append("  (no chaos summaries yet)")
        return
    for name, data in rows:
        verdict = ("OK" if data.get("total_violations", 0) == 0
                   and data.get("all_flows_terminal", False)
                   and not data.get("undetected_deadlocks", 0)
                   else "VIOLATED")
        lines.append(f"  {name}: {data.get('n_points', 0)} points, "
                     f"{data.get('total_violations', 0)} violations, "
                     f"terminal={data.get('all_flows_terminal')} "
                     f"-> {verdict}")


def render_pfc(rows: List[Tuple[str, Dict[str, Any]]],
               lines: List[str]) -> None:
    """PFC / lossless-fabric section, fed by chaos summaries whose
    cells carry a ``fabric`` axis (the ``lossless`` campaign)."""
    cells = [(cname, pname, cell)
             for cname, data in rows
             for pname, cell in data.get("points", {}).items()
             if "fabric" in cell]
    if not cells:
        return
    lines.append("")
    lines.append("lossless fabric (PFC):")
    lines.append(f"  {'point':<46} {'fabric':>8} {'pauseRx':>8} "
                 f"{'paused(ms)':>10} {'cbd':>4}")
    for _cname, pname, cell in cells:
        det = cell.get("deadlocks_detected", 0)
        cbd = (f"{det}!" if det and not cell.get("expect_deadlock")
               else str(det))
        lines.append(f"  {pname:<46} {cell.get('fabric', '?'):>8} "
                     f"{cell.get('pause_frames_rx', 0):>8} "
                     f"{cell.get('paused_time_ps', 0) / 1e9:>10.2f} "
                     f"{cbd:>4}")
    for _cname, data in rows:
        for pname, ratio in data.get("victim_slowdown", {}).items():
            lines.append(f"  victim slowdown {pname}: {ratio}x vs lossy")
        undetected = data.get("undetected_deadlocks", 0)
        if undetected:
            lines.append(f"  {undetected} seeded deadlock(s) went "
                         f"UNDETECTED")


def render_wire(rows: List[Tuple[str, Dict[str, Any]]],
                lines: List[str]) -> None:
    """Sim-to-wire section: soak terminal outcomes and sim-vs-wire FCT
    deltas per cell. Omitted entirely when no wire campaign has written
    a summary — a results directory without wire artifacts renders (and
    gates) exactly as before."""
    if not rows:
        return
    lines.append("")
    lines.append("sim-to-wire:")
    for name, data in rows:
        verdict = "OK" if wire_gate_ok(data) else "FAILED"
        lines.append(f"  {name}: {data.get('n_points', 0)} points, "
                     f"{data.get('total_violations', 0)} violations, "
                     f"{data.get('n_failed_points', 0)} failed "
                     f"-> {verdict}")
        for pname, cell in sorted(data.get("points", {}).items()):
            gate = "ok" if cell.get("gate_ok") else "GATE FAILED"
            lines.append(f"    {pname:<28} "
                         f"{wire_cell_detail(cell)} [{gate}]")


def render_sharded(summary: Optional[Dict[str, Any]],
                   meta: Optional[Dict[str, Any]],
                   lines: List[str]) -> None:
    if summary is None and meta is None:
        return
    lines.append("")
    lines.append("sharded trace:")
    if summary is not None:
        eq = "EQUIVALENT" if summary.get("equivalent") else "MISMATCH"
        lines.append(f"  two-DC equivalence: {eq} over "
                     f"{summary.get('flows')} flows, "
                     f"{summary.get('rounds')} sync rounds")
        violations = summary.get("trace_violations", [])
        lines.append(f"  conservation: "
                     f"{'OK' if not violations else 'VIOLATED'}"
                     + "".join(f"\n    {v}" for v in violations))
        lines.append(f"  cross-shard flows stitched: "
                     f"{summary.get('cross_shard_flows', 0)}")
    if meta is not None:
        trace = meta.get("trace", {})
        per_shard = trace.get("events_in", {})
        shard_bits = ", ".join(f"shard {s}: {n}"
                               for s, n in sorted(per_shard.items()))
        lines.append(f"  merged events: {trace.get('events_merged', 0)} "
                     f"({shard_bits})")


def render_waterfall(events: List[Dict[str, Any]], flow: int,
                     lines: List[str], width: int = 48) -> None:
    """One flow's span timeline as a text waterfall, shard-tagged."""
    timeline = flow_timeline(events, flow)
    if not timeline:
        return
    t_lo = min(ev.get("t0", ev["t"]) for ev in timeline)
    t_hi = max(ev["t"] for ev in timeline)
    span_ps = (t_hi - t_lo) or 1
    lines.append(f"  flow {flow} "
                 f"({(t_hi - t_lo) / 1e9:.3f} ms, "
                 f"{len(timeline)} events):")
    for ev in timeline:
        t0 = ev.get("t0", ev["t"])
        a = int((t0 - t_lo) / span_ps * (width - 1))
        b = int((ev["t"] - t_lo) / span_ps * (width - 1))
        row = ["."] * width
        if b > a:
            for i in range(a, b + 1):
                row[i] = "="
        else:
            row[a] = "|"
        label = ev.get("kind", ev.get("topic", "?"))
        if ev.get("phase"):
            label = f"{label}:{ev['phase']}"
        if ev.get("outcome"):
            label = f"{label}:{ev['outcome']}"
        shard = ev.get("shard")
        tag = f"s{shard}" if shard is not None else "--"
        lines.append(f"    [{''.join(row)}] {tag} {label}")


def _bench_values(runs: List[Dict[str, Any]]) -> List[float]:
    """Numeric series for one bench scenario, tolerating records whose
    rate fields are missing or corrupt (rendered as 0)."""
    values = []
    for r in runs:
        v = r.get("builds_per_sec") or r.get("events_per_sec", 0.0)
        values.append(float(v) if isinstance(v, (int, float)) else 0.0)
    return values


def render_bench(series: Dict[str, List[Dict[str, Any]]],
                 lines: List[str]) -> None:
    lines.append("")
    lines.append("bench trajectory (events/sec; builds/sec for "
                 "topo_build):")
    if not series:
        lines.append("  (no BENCH_*.json / BENCH_history.jsonl records)")
        return
    for name in sorted(series):
        runs = series[name]
        values = _bench_values(runs)
        latest = values[-1]
        lines.append(f"  {name:<22} {latest:>12,.0f}  "
                     f"{sparkline(values)}  ({len(values)} runs)")


def render_terminal(out: Path, state: CampaignState, bench_dir: Path,
                    max_flows: int) -> Tuple[str, bool]:
    """Render the full dashboard; returns (text, gate_ok)."""
    lines: List[str] = [f"== campaign dashboard: {out} =="]
    render_campaign(state, lines)
    chaos = chaos_summaries(out)
    render_chaos(chaos, lines)
    render_pfc(chaos, lines)
    wire = wire_summaries(out)
    render_wire(wire, lines)
    summary = sharded_summary(out)
    meta = trace_meta(out)
    render_sharded(summary, meta, lines)

    events = trace_events(out)
    if events:
        cross = (meta or {}).get("cross_shard_flows", [])
        flows = flagged_flows(events, cross, max_flows)
        if flows:
            lines.append("")
            lines.append(f"flagged flow waterfalls "
                         f"({len(flows)} of {max_flows} max):")
            for fid in flows:
                render_waterfall(events, fid, lines)

    render_bench(bench_records(bench_dir), lines)

    gate_ok = state.ok
    for _, data in chaos:
        if data.get("total_violations", 0) or \
                not data.get("all_flows_terminal", True) or \
                data.get("undetected_deadlocks", 0):
            gate_ok = False
    for _, data in wire:
        if not wire_gate_ok(data):
            gate_ok = False
    if summary is not None:
        if not summary.get("equivalent", True):
            gate_ok = False
        if summary.get("trace_violations"):
            gate_ok = False
    lines.append("")
    lines.append(f"gate: {'OK' if gate_ok else 'FAILED'}")
    return "\n".join(lines), gate_ok


# ---------------------------------------------------------------------------
# HTML report


def _svg_series(values: List[float], width: int = 360,
                height: int = 80) -> str:
    """Inline SVG polyline for one bench series (min..max scaled)."""
    if len(values) < 2:
        values = list(values) * 2 if values else [0.0, 0.0]
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    pad = 6
    step = (width - 2 * pad) / (len(values) - 1)
    points = " ".join(
        f"{pad + i * step:.1f},"
        f"{height - pad - (v - lo) / span * (height - 2 * pad):.1f}"
        for i, v in enumerate(values))
    return (f'<svg viewBox="0 0 {width} {height}" class="chart">'
            f'<polyline fill="none" stroke="#2a7" stroke-width="2" '
            f'points="{points}"/></svg>')


def _svg_waterfall(events: List[Dict[str, Any]], flow: int,
                   width: int = 560) -> str:
    timeline = flow_timeline(events, flow)
    if not timeline:
        return ""
    t_lo = min(ev.get("t0", ev["t"]) for ev in timeline)
    t_hi = max(ev["t"] for ev in timeline)
    span_ps = (t_hi - t_lo) or 1
    row_h, label_w = 16, 180
    height = row_h * len(timeline) + 8
    parts = [f'<svg viewBox="0 0 {width} {height}" class="waterfall">']
    scale = (width - label_w - 10) / span_ps
    for i, ev in enumerate(timeline):
        y = 4 + i * row_h
        t0 = ev.get("t0", ev["t"])
        x0 = label_w + (t0 - t_lo) * scale
        x1 = label_w + (ev["t"] - t_lo) * scale
        shard = ev.get("shard")
        color = "#27c" if shard in (0, "0") else (
            "#c72" if shard in (1, "1") else "#888")
        label = ev.get("kind", ev.get("topic", "?"))
        if ev.get("phase"):
            label += f":{ev['phase']}"
        if ev.get("outcome"):
            label += f":{ev['outcome']}"
        tag = f"s{shard}" if shard is not None else ""
        parts.append(
            f'<text x="2" y="{y + 11}" class="lbl">'
            f'{html.escape(f"{tag} {label}")}</text>')
        if x1 - x0 >= 2:
            parts.append(f'<rect x="{x0:.1f}" y="{y + 3}" '
                         f'width="{x1 - x0:.1f}" height="9" '
                         f'fill="{color}" opacity="0.7"/>')
        else:
            parts.append(f'<circle cx="{x0:.1f}" cy="{y + 7}" r="3" '
                         f'fill="{color}"/>')
    parts.append("</svg>")
    return "".join(parts)


HTML_STYLE = """
body { font: 14px/1.5 system-ui, sans-serif; margin: 2em auto;
       max-width: 64em; color: #222; }
h1 { font-size: 1.4em; } h2 { font-size: 1.1em; margin-top: 1.6em; }
table { border-collapse: collapse; } td, th { padding: 2px 10px;
       border-bottom: 1px solid #ddd; text-align: left; }
.ok { color: #2a7; font-weight: 600; }
.bad { color: #c22; font-weight: 600; }
.meter { background: #eee; width: 24em; height: 12px;
         border-radius: 6px; overflow: hidden; display: inline-block;
         vertical-align: middle; }
.meter div { background: #2a7; height: 100%; }
.chart, .waterfall { border: 1px solid #eee; margin: 4px 0; }
.lbl { font: 10px monospace; fill: #444; }
.mono { font-family: monospace; }
"""


def verdict_html(ok: bool, yes: str = "OK", no: str = "FAILED") -> str:
    return (f'<span class="ok">{yes}</span>' if ok
            else f'<span class="bad">{no}</span>')


def render_html(out: Path, state: CampaignState, bench_dir: Path,
                max_flows: int, gate_ok: bool) -> str:
    esc = html.escape
    parts = ["<!doctype html><html><head><meta charset='utf-8'>",
             f"<title>campaign dashboard: {esc(str(out))}</title>",
             f"<style>{HTML_STYLE}</style></head><body>",
             f"<h1>Campaign dashboard <span class='mono'>"
             f"{esc(str(out))}</span></h1>",
             f"<p>Overall gate: {verdict_html(gate_ok)}</p>"]

    # Campaign progress.
    parts.append("<h2>Campaign</h2>")
    if state.name is None:
        parts.append("<p>No campaign stream found.</p>")
    else:
        frac = state.done / state.total if state.total else 0.0
        parts.append(
            f"<p><b>{esc(str(state.name))}</b> "
            f"<span class='meter'><div style='width:{frac:.0%}'></div>"
            f"</span> {state.done}/{state.total} "
            f"({'done' if state.ended else 'running'}, "
            f"{state.failed} failed, {state.cached} cached, "
            f"{state.retries} retried)</p>")
        if state.points:
            parts.append("<table><tr><th>point</th><th>status</th>"
                         "<th>elapsed</th><th>cached</th></tr>")
            for rec in state.points:
                ok = rec.get("status") == "ok"
                parts.append(
                    f"<tr><td class='mono'>{esc(str(rec.get('point')))}"
                    f"</td><td>{verdict_html(ok, 'ok', esc(str(rec.get('status'))))}</td>"
                    f"<td>{rec.get('elapsed_s', 0)}s</td>"
                    f"<td>{'yes' if rec.get('cached') else ''}</td></tr>")
            parts.append("</table>")

    # Chaos invariants.
    chaos = chaos_summaries(out)
    parts.append("<h2>Chaos invariants</h2>")
    if not chaos:
        parts.append("<p>No chaos summaries yet.</p>")
    else:
        parts.append("<table>"
                     "<tr><th>campaign</th><th>points</th>"
                     "<th>violations</th><th>terminal</th>"
                     "<th>verdict</th></tr>")
        for name, data in chaos:
            ok = (data.get("total_violations", 0) == 0
                  and data.get("all_flows_terminal", False)
                  and not data.get("undetected_deadlocks", 0))
            parts.append(
                f"<tr><td>{esc(name)}</td>"
                f"<td>{data.get('n_points', 0)}</td>"
                f"<td>{data.get('total_violations', 0)}</td>"
                f"<td>{data.get('all_flows_terminal')}</td>"
                f"<td>{verdict_html(ok, 'OK', 'VIOLATED')}</td></tr>")
        parts.append("</table>")

    # Lossless fabric / PFC (cells carrying a fabric axis).
    pfc_cells = [(pname, cell)
                 for _cname, data in chaos
                 for pname, cell in data.get("points", {}).items()
                 if "fabric" in cell]
    if pfc_cells:
        parts.append("<h2>Lossless fabric (PFC)</h2><table>"
                     "<tr><th>point</th><th>fabric</th>"
                     "<th>pause rx</th><th>paused (ms)</th>"
                     "<th>CBD deadlocks</th></tr>")
        for pname, cell in pfc_cells:
            det = cell.get("deadlocks_detected", 0)
            expected = cell.get("expect_deadlock", False)
            det_html = (verdict_html(bool(det), f"{det} (expected)",
                                     "0 UNDETECTED")
                        if expected else str(det))
            parts.append(
                f"<tr><td class='mono'>{esc(pname)}</td>"
                f"<td>{esc(str(cell.get('fabric', '?')))}</td>"
                f"<td>{cell.get('pause_frames_rx', 0)}</td>"
                f"<td>{cell.get('paused_time_ps', 0) / 1e9:.2f}</td>"
                f"<td>{det_html}</td></tr>")
        parts.append("</table>")
        for _cname, data in chaos:
            for pname, ratio in data.get("victim_slowdown", {}).items():
                parts.append(f"<p>victim slowdown "
                             f"<span class='mono'>{esc(pname)}</span>: "
                             f"{ratio}x vs lossy twin</p>")

    # Sim-to-wire campaigns (omitted when no wire summary exists).
    wire = wire_summaries(out)
    if wire:
        parts.append("<h2>Sim-to-wire</h2>")
        for name, data in wire:
            parts.append(
                f"<p><b>{esc(name)}</b>: {data.get('n_points', 0)} "
                f"points, {data.get('total_violations', 0)} violations, "
                f"{data.get('n_failed_points', 0)} failed — "
                f"{verdict_html(wire_gate_ok(data))}</p>")
            if not data.get("points"):
                continue
            parts.append("<table><tr><th>point</th><th>cell</th>"
                         "<th>detail</th><th>gate</th></tr>")
            for pname, cell in sorted(data["points"].items()):
                parts.append(
                    f"<tr><td class='mono'>{esc(pname)}</td>"
                    f"<td>{esc(str(cell.get('cell', '?')))}</td>"
                    f"<td>{esc(wire_cell_detail(cell))}</td>"
                    f"<td>{verdict_html(bool(cell.get('gate_ok')))}"
                    f"</td></tr>")
            parts.append("</table>")

    # Sharded trace.
    summary = sharded_summary(out)
    meta = trace_meta(out)
    if summary is not None or meta is not None:
        parts.append("<h2>Sharded trace</h2><ul>")
        if summary is not None:
            parts.append(
                f"<li>two-DC equivalence: "
                f"{verdict_html(bool(summary.get('equivalent')), 'EQUIVALENT', 'MISMATCH')} "
                f"over {summary.get('flows')} flows, "
                f"{summary.get('rounds')} sync rounds</li>")
            violations = summary.get("trace_violations", [])
            parts.append(f"<li>conservation: "
                         f"{verdict_html(not violations)}"
                         + "".join(f"<br><span class='mono'>{esc(v)}"
                                   f"</span>" for v in violations)
                         + "</li>")
            parts.append(f"<li>cross-shard flows stitched: "
                         f"{summary.get('cross_shard_flows', 0)}</li>")
        if meta is not None:
            trace = meta.get("trace", {})
            per_shard = ", ".join(
                f"shard {s}: {n}" for s, n in
                sorted(trace.get("events_in", {}).items()))
            parts.append(f"<li>merged events: "
                         f"{trace.get('events_merged', 0)} "
                         f"({esc(per_shard)})</li>")
        parts.append("</ul>")

    # Flow waterfalls.
    events = trace_events(out)
    if events:
        cross = (meta or {}).get("cross_shard_flows", [])
        flows = flagged_flows(events, cross, max_flows)
        if flows:
            parts.append("<h2>Flagged flow waterfalls</h2>")
            parts.append("<p>Blue bars ran on shard 0, orange on shard "
                         "1; a dot is an instantaneous span.</p>")
            for fid in flows:
                parts.append(f"<h3 class='mono'>flow {fid}</h3>")
                parts.append(_svg_waterfall(events, fid))

    # Bench trajectory.
    series = bench_records(bench_dir)
    parts.append("<h2>Bench trajectory</h2>")
    if not series:
        parts.append("<p>No BENCH_*.json / BENCH_history.jsonl records "
                     "found.</p>")
    else:
        for name in sorted(series):
            runs = series[name]
            values = _bench_values(runs)
            unit = ("builds/s" if runs[-1].get("builds_per_sec")
                    else "events/s")
            parts.append(
                f"<p><b>{esc(name)}</b> — latest "
                f"{values[-1]:,.0f} {unit} over {len(values)} run(s)"
                f"</p>{_svg_series(values)}")

    parts.append("</body></html>")
    return "".join(parts)


# ---------------------------------------------------------------------------
# Entry point


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.split("\n")[0],
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("out", help="run_all --out directory to watch")
    parser.add_argument("--follow", action="store_true",
                        help="keep tailing until campaign_end (or ^C)")
    parser.add_argument("--interval", type=float, default=1.0,
                        help="poll interval in seconds for --follow")
    parser.add_argument("--html", default=None, metavar="FILE",
                        help="also write a static HTML report")
    parser.add_argument("--bench-dir", default=str(REPO_ROOT),
                        help="directory holding BENCH_*.json and "
                             "BENCH_history.jsonl (default: repo root)")
    parser.add_argument("--flows", type=int, default=8,
                        help="max flagged-flow waterfalls to render")
    args = parser.parse_args(argv)

    out = Path(args.out)
    bench_dir = Path(args.bench_dir)
    tail = JSONLTail(out / "telemetry" / "campaign.jsonl")
    state = CampaignState()

    def ingest() -> None:
        for rec in tail.poll():
            state.feed(rec)

    ingest()
    if args.follow:
        try:
            while not state.ended:
                text, _ = render_terminal(out, state, bench_dir,
                                          args.flows)
                print(text, flush=True)
                print("-" * 60, flush=True)
                time.sleep(args.interval)
                ingest()
        except KeyboardInterrupt:
            pass

    text, gate_ok = render_terminal(out, state, bench_dir, args.flows)
    print(text)

    if args.html:
        report = render_html(out, state, bench_dir, args.flows, gate_ok)
        Path(args.html).write_text(report, encoding="utf-8")
        print(f"\n[html report -> {args.html}]")

    return 0 if gate_ok else 1


if __name__ == "__main__":
    sys.exit(main())
