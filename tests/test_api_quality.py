"""API-surface quality gates: docstrings, import hygiene, and the
packet-handoff boundary (every cross-component handoff goes through the
PacketSink protocol — no reaching into another component's internals)."""

import importlib
import inspect
import pathlib
import pkgutil
import re

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.sim",
    "repro.topology",
    "repro.transport",
    "repro.coding",
    "repro.core",
    "repro.lb",
    "repro.workloads",
    "repro.analysis",
    "repro.experiments",
    "repro.wire",
]


def iter_modules():
    for pkg_name in PACKAGES:
        pkg = importlib.import_module(pkg_name)
        yield pkg
        for info in pkgutil.iter_modules(pkg.__path__):
            if info.name == "data":
                continue
            yield importlib.import_module(f"{pkg_name}.{info.name}")


class TestDocstrings:
    def test_every_module_has_a_docstring(self):
        missing = [m.__name__ for m in iter_modules() if not (m.__doc__ or "").strip()]
        assert not missing, f"modules without docstrings: {missing}"

    def test_every_public_class_and_function_is_documented(self):
        undocumented = []
        for module in iter_modules():
            for name, obj in vars(module).items():
                if name.startswith("_"):
                    continue
                if not (inspect.isclass(obj) or inspect.isfunction(obj)):
                    continue
                if getattr(obj, "__module__", None) != module.__name__:
                    continue  # re-export; documented at its home
                if not (obj.__doc__ or "").strip():
                    undocumented.append(f"{module.__name__}.{name}")
        # Dataclass-config holders document themselves through fields;
        # everything else must carry a docstring.
        hard_misses = [u for u in undocumented if not u.endswith("Config")]
        assert not hard_misses, f"undocumented public API: {hard_misses}"


class TestImportHygiene:
    def test_all_exports_resolve(self):
        for module in iter_modules():
            exported = getattr(module, "__all__", None)
            if not exported:
                continue
            for name in exported:
                assert hasattr(module, name), f"{module.__name__}.__all__ lists {name}"

    def test_version_string(self):
        assert repro.__version__.count(".") == 2


class TestPacketBoundary:
    """The PacketSink protocol is the only cross-component handoff path."""

    def test_every_forwarding_component_is_a_packet_sink(self):
        from repro.sim import Host, Link, PacketSink, Port, Switch
        from repro.sim.engine import Simulator
        from repro.sim.shard import BoundaryEgress, ShardBoundary

        sim = Simulator()
        link = Link(sim, 100.0, 1000)
        for cls, instance in [
            (Link, link),
            (Port, Port(sim, link, capacity_bytes=64 * 1024)),
            (Switch, Switch(sim, 0, "sw0")),
            (Host, Host(sim, 1, "h0")),
            (BoundaryEgress, BoundaryEgress(ShardBoundary(sim, 0), link)),
        ]:
            assert isinstance(instance, PacketSink), cls.__name__

    def test_public_entry_points_are_exported(self):
        import repro.experiments as experiments
        import repro.sim as sim_pkg

        for name in ("PacketSink", "WiringError", "ShardBoundary"):
            assert name in sim_pkg.__all__
        for name in ("TwoDCWorkload", "run_sharded", "check_equivalence"):
            assert name in experiments.__all__

    def test_no_handoffs_bypass_the_sink_protocol(self):
        """No cross-component packet handoff may poke a peer's internals.

        Outside the sink implementations themselves, source code must not
        call another component's ``.enqueue()`` / ``.transmit()`` directly
        (the sanctioned spelling is ``.receive()``) nor rewire a link by
        assigning ``.dst`` (the sanctioned spelling is ``.connect()``).
        """
        src = pathlib.Path(repro.__file__).resolve().parent
        # The sink implementations and the boundary layer itself define
        # these operations; everyone else must go through receive().
        allowed = {"sim/link.py", "sim/queues.py", "sim/boundary.py",
                   "sim/shard.py"}
        bypasses = []
        patterns = [
            # Link rewiring (self.dst = ... is a component initialising
            # its own address field, e.g. Packet.dst — that's fine).
            re.compile(r"(?<!self)\.dst\s*=[^=]"),
            re.compile(r"\w+\.port\.enqueue\("),   # reaching into a switch
            re.compile(r"\w+\.link\.transmit\("),  # reaching past a port
            re.compile(r"\.dst\.receive\("),       # reaching past a link
        ]
        for path in sorted(src.rglob("*.py")):
            rel = path.relative_to(src).as_posix()
            if rel in allowed:
                continue
            for lineno, line in enumerate(path.read_text().splitlines(), 1):
                if any(p.search(line) for p in patterns):
                    bypasses.append(f"{rel}:{lineno}: {line.strip()}")
        assert not bypasses, (
            "cross-component handoffs bypassing PacketSink:\n"
            + "\n".join(bypasses)
        )


class TestSeededRandomness:
    """Every random decision draws from an injected seeded RNG.

    Chaos scenarios, the wire impairment proxy, workload generators —
    all of them take a ``random.Random`` (or a seed) and draw from it,
    so two runs with the same seed make the same decisions. A draw from
    module-global ``random`` (``random.random()``, ``random.choice()``,
    ...) silently breaks that reproducibility; the only sanctioned
    module-level use is constructing ``random.Random(seed)`` instances.
    """

    def test_no_module_global_random_draws(self):
        src = pathlib.Path(repro.__file__).resolve().parent
        # Match ``random.<fn>(`` where ``random`` is the module (not an
        # attribute like ``rng.random(``) and ``<fn>`` is not the
        # ``Random`` constructor.
        draw = re.compile(r"(?<![\w.])random\.(?!Random\b)\w+\(")
        offenders = []
        for path in sorted(src.rglob("*.py")):
            rel = path.relative_to(src).as_posix()
            for lineno, line in enumerate(path.read_text().splitlines(), 1):
                if draw.search(line):
                    offenders.append(f"{rel}:{lineno}: {line.strip()}")
        assert not offenders, (
            "module-global random draws (inject a seeded Random instead):\n"
            + "\n".join(offenders)
        )
