"""API-surface quality gates: docstrings and import hygiene."""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.sim",
    "repro.topology",
    "repro.transport",
    "repro.coding",
    "repro.core",
    "repro.lb",
    "repro.workloads",
    "repro.analysis",
    "repro.experiments",
]


def iter_modules():
    for pkg_name in PACKAGES:
        pkg = importlib.import_module(pkg_name)
        yield pkg
        for info in pkgutil.iter_modules(pkg.__path__):
            if info.name == "data":
                continue
            yield importlib.import_module(f"{pkg_name}.{info.name}")


class TestDocstrings:
    def test_every_module_has_a_docstring(self):
        missing = [m.__name__ for m in iter_modules() if not (m.__doc__ or "").strip()]
        assert not missing, f"modules without docstrings: {missing}"

    def test_every_public_class_and_function_is_documented(self):
        undocumented = []
        for module in iter_modules():
            for name, obj in vars(module).items():
                if name.startswith("_"):
                    continue
                if not (inspect.isclass(obj) or inspect.isfunction(obj)):
                    continue
                if getattr(obj, "__module__", None) != module.__name__:
                    continue  # re-export; documented at its home
                if not (obj.__doc__ or "").strip():
                    undocumented.append(f"{module.__name__}.{name}")
        # Dataclass-config holders document themselves through fields;
        # everything else must carry a docstring.
        hard_misses = [u for u in undocumented if not u.endswith("Config")]
        assert not hard_misses, f"undocumented public API: {hard_misses}"


class TestImportHygiene:
    def test_all_exports_resolve(self):
        for module in iter_modules():
            exported = getattr(module, "__all__", None)
            if not exported:
                continue
            for name in exported:
                assert hasattr(module, name), f"{module.__name__}.__all__ lists {name}"

    def test_version_string(self):
        assert repro.__version__.count(".") == 2
