"""Per-flow lifecycle spans (repro.obs.spans).

The load-bearing guarantees:

- the span vocabulary follows the flow lifecycle and every span carries
  ``t0``/``t`` picosecond open/close timestamps;
- span recording is derived state only: it never schedules events and
  never draws from an RNG, so the engine executes event-for-event
  identically with tracing on or off;
- with observability disabled, transport and host pay one ``is None``
  pointer test per hook site and allocate nothing.
"""

import pytest

from repro.obs import SPAN_KINDS, FlowSpans, enable
from repro.obs.events import EventLog
from repro.sim.engine import Simulator
from repro.sim.units import US
from repro.topology.simple import incast_star
from repro.transport.base import start_flow
from repro.transport.dctcp import DCTCP


def spans_of(log, kind=None, flow=None):
    events = log.events("span", kind)
    if flow is not None:
        events = [e for e in events if e["flow"] == flow]
    return events


class TestFlowSpansUnit:
    def setup_method(self):
        self.log = EventLog(topics=["span"])
        self.spans = FlowSpans(self.log)

    def test_flow_lifecycle_merges_start_attrs(self):
        self.spans.flow_start(7, 100, size=4096, inter_dc=True)
        assert self.spans.open_spans == 1
        self.spans.flow_end(7, 900, "complete", fct=800)
        (ev,) = spans_of(self.log, "flow")
        assert ev["t0"] == 100 and ev["t"] == 900
        assert ev["outcome"] == "complete"
        assert ev["size"] == 4096 and ev["inter_dc"] is True
        assert ev["fct"] == 800
        assert self.spans.open_spans == 0
        assert self.spans.opened == self.spans.closed == 1

    def test_instant_spans_have_equal_endpoints(self):
        self.spans.first_data(1, 50, seq=0)
        self.spans.rto(1, 60, consecutive=1, backoff=2)
        self.spans.retransmit(1, 70, seq=3)
        for ev in spans_of(self.log):
            assert ev["t0"] == ev["t"]
        kinds = [e["kind"] for e in spans_of(self.log)]
        assert kinds == ["first_data", "rto", "retransmit"]
        assert all(k in SPAN_KINDS for k in kinds)

    def test_cwnd_phases_fold_monotone_runs(self):
        # Three increases fold into one "up" phase ...
        self.spans.cwnd(5, 10, 1000.0, 2000.0)
        self.spans.cwnd(5, 20, 2000.0, 3000.0)
        self.spans.cwnd(5, 30, 3000.0, 4000.0)
        assert spans_of(self.log, "cwnd_phase") == []
        # ... closed when the direction flips.
        self.spans.cwnd(5, 40, 4000.0, 2000.0)
        (up,) = spans_of(self.log, "cwnd_phase")
        assert up["phase"] == "up"
        assert up["t0"] == 10 and up["t"] == 40
        assert up["cwnd0"] == 1000.0 and up["cwnd1"] == 4000.0
        assert up["updates"] == 3
        # A no-op update neither opens nor closes anything.
        self.spans.cwnd(5, 50, 2000.0, 2000.0)
        assert len(spans_of(self.log, "cwnd_phase")) == 1

    def test_flow_end_closes_open_phase(self):
        self.spans.flow_start(9, 0)
        self.spans.cwnd(9, 5, 1000.0, 2000.0)
        self.spans.flow_end(9, 99, "abort", reason="policy")
        kinds = [e["kind"] for e in spans_of(self.log)]
        assert kinds == ["cwnd_phase", "flow"]
        assert spans_of(self.log, "flow")[0]["reason"] == "policy"

    def test_endpoint_open_close_and_discard(self):
        self.spans.endpoint_open(3, 10, "h0")
        self.spans.endpoint_open(3, 10, "h1")
        self.spans.endpoint_close(3, 80, "h0")
        (ev,) = spans_of(self.log, "endpoint")
        assert ev["host"] == "h0" and ev["t0"] == 10 and ev["t"] == 80
        # Discard forgets the other registration as if never opened.
        self.spans.endpoint_discard(3, "h1")
        assert self.spans.open_spans == 0
        assert self.spans.opened == self.spans.closed == 1
        # Discarding twice is harmless.
        self.spans.endpoint_discard(3, "h1")
        assert self.spans.opened == 1

    def test_flush_open_closes_everything_with_open_state(self):
        self.spans.flow_start(1, 0, size=10)
        self.spans.cwnd(1, 5, 1000.0, 2000.0)
        self.spans.endpoint_open(1, 0, "h0")
        assert self.spans.open_spans == 3
        assert self.spans.flush_open(500) == 3
        assert self.spans.open_spans == 0
        assert self.spans.opened == self.spans.closed
        (flow,) = spans_of(self.log, "flow")
        assert flow["outcome"] == "open" and flow["t"] == 500
        (endpoint,) = spans_of(self.log, "endpoint")
        assert endpoint["state"] == "open"
        assert self.spans.flush_open(600) == 0


def _run_incast(event_topics=None, senders=4, loss=False):
    sim = Simulator()
    obs = enable(sim, event_topics=event_topics) if event_topics else None
    topo = incast_star(sim, senders, prop_ps=1 * US,
                       queue_bytes=32 * 1024)
    if loss:
        from repro.sim.failures import BernoulliLoss
        sw = topo.net.node("sw")
        topo.net.link_between(sw, topo.senders[0]).loss_model = \
            BernoulliLoss(0.05, seed=3)
    done = []
    flows = []
    for i, s in enumerate(topo.senders):
        flows.append(start_flow(sim, topo.net, DCTCP(), s,
                                topo.receivers[0], 128 * 1024,
                                base_rtt_ps=14 * US, seed=i,
                                on_complete=done.append))
    sim.run(until=10**12)
    assert len(done) == len(flows)
    return sim, obs, flows


class TestTransportSpans:
    def test_flow_spans_bracket_the_lifecycle(self):
        sim, obs, flows = _run_incast(event_topics=["span"])
        log = obs.events
        for sender in flows:
            (flow,) = spans_of(log, "flow", sender.flow_id)
            assert flow["outcome"] == "complete"
            assert flow["t"] - flow["t0"] == flow["fct"]
            assert flow["fct"] == sender.stats.fct_ps
            assert flow["size"] == sender.size_bytes
            (first,) = spans_of(log, "first_data", sender.flow_id)
            assert flow["t0"] <= first["t"] <= flow["t"]
        # Both endpoints of every flow closed cleanly.
        assert len(spans_of(log, "endpoint")) == 2 * len(flows)
        assert obs.spans.open_spans == 0

    def test_retransmit_spans_match_transport_counter(self):
        sim, obs, flows = _run_incast(event_topics=["span"], loss=True)
        total_retx = sum(f.stats.retransmissions for f in flows)
        assert total_retx > 0  # the loss model engaged
        assert len(spans_of(obs.events, "retransmit")) == total_retx

    def test_snapshot_reports_span_accounting(self):
        sim, obs, _ = _run_incast(event_topics=["span"])
        snap = obs.snapshot()
        assert snap["spans"]["open"] == 0
        assert snap["spans"]["opened"] == snap["spans"]["closed"]
        assert snap["spans"]["closed"] > 0


class TestZeroCostWhenDisabled:
    def test_no_spans_allocated_without_obs(self):
        sim = Simulator()
        topo = incast_star(sim, 1, prop_ps=1 * US)
        sender = start_flow(sim, topo.net, DCTCP(), topo.senders[0],
                            topo.receivers[0], 4096,
                            base_rtt_ps=14 * US)
        assert sim.obs is None
        assert sender._spans is None
        assert sender.src._spans is None

    def test_enable_without_span_topic_skips_recorder(self):
        sim = Simulator()
        obs = enable(sim, event_topics=["queue"])
        assert obs.spans is None

    def test_enable_spans_false_skips_recorder(self):
        sim = Simulator()
        obs = enable(sim, event_topics="all", spans=False)
        assert obs.spans is None

    def test_engine_identical_event_for_event_with_tracing(self):
        def run(traced):
            sim = Simulator()
            if traced:
                enable(sim, event_topics="all")
            topo = incast_star(sim, 3, prop_ps=1 * US,
                               queue_bytes=32 * 1024)
            done = []
            for i, s in enumerate(topo.senders):
                start_flow(sim, topo.net, DCTCP(), s, topo.receivers[0],
                           96 * 1024, base_rtt_ps=14 * US, seed=i,
                           on_complete=done.append)
            sim.run(until=10**12)
            fcts = sorted(s.stats.fct_ps for s in done)
            return sim.events_executed, sim.now, fcts

        assert run(False) == run(True)
