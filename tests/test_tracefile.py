import pytest

from repro.workloads.alibaba_wan import ALIBABA_WAN_CDF
from repro.workloads.google_rpc import GOOGLE_RPC_CDF
from repro.workloads.tracefile import (
    load_builtin,
    load_cdf_file,
    parse_cdf_text,
    save_cdf_file,
)
from repro.workloads.websearch import WEBSEARCH_CDF


class TestParse:
    def test_basic(self):
        cdf = parse_cdf_text("100 0.5\n200 1.0\n", name="t")
        assert cdf.quantile(1.0) == 200

    def test_comments_and_blank_lines(self):
        cdf = parse_cdf_text("# header\n\n100 0.5\n200 1.0  # tail\n")
        assert cdf.sizes[-1] == 200

    def test_malformed_field_count(self):
        with pytest.raises(ValueError, match="expected"):
            parse_cdf_text("100 0.5 9\n")

    def test_non_numeric(self):
        with pytest.raises(ValueError, match="non-numeric"):
            parse_cdf_text("abc 0.5\n")

    def test_empty(self):
        with pytest.raises(ValueError, match="no CDF points"):
            parse_cdf_text("# only comments\n")


class TestRoundTrip:
    def test_save_load(self, tmp_path):
        path = tmp_path / "ws.cdf"
        save_cdf_file(WEBSEARCH_CDF, path, header="test header")
        loaded = load_cdf_file(path)
        assert loaded.sizes == WEBSEARCH_CDF.sizes
        assert loaded.probs == pytest.approx(WEBSEARCH_CDF.probs)

    def test_header_written(self, tmp_path):
        path = tmp_path / "x.cdf"
        save_cdf_file(GOOGLE_RPC_CDF, path, header="line1\nline2")
        text = path.read_text()
        assert text.startswith("# line1\n# line2\n")


class TestBuiltins:
    @pytest.mark.parametrize(
        "name,expected",
        [
            ("websearch", WEBSEARCH_CDF),
            ("alibaba_wan", ALIBABA_WAN_CDF),
            ("google_rpc", GOOGLE_RPC_CDF),
        ],
    )
    def test_shipped_files_match_embedded(self, name, expected):
        loaded = load_builtin(name)
        assert loaded.sizes == expected.sizes
        assert loaded.probs == pytest.approx(expected.probs)

    def test_unknown_builtin(self):
        with pytest.raises(ValueError, match="available"):
            load_builtin("netflix")
