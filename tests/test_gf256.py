import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding.gf256 import GF256

elem = st.integers(min_value=0, max_value=255)
nonzero = st.integers(min_value=1, max_value=255)


class TestFieldAxioms:
    @given(elem, elem)
    def test_add_commutative(self, a, b):
        assert GF256.add(a, b) == GF256.add(b, a)

    @given(elem, elem)
    def test_mul_commutative(self, a, b):
        assert GF256.mul(a, b) == GF256.mul(b, a)

    @given(elem, elem, elem)
    def test_mul_associative(self, a, b, c):
        assert GF256.mul(GF256.mul(a, b), c) == GF256.mul(a, GF256.mul(b, c))

    @given(elem, elem, elem)
    def test_distributive(self, a, b, c):
        left = GF256.mul(a, GF256.add(b, c))
        right = GF256.add(GF256.mul(a, b), GF256.mul(a, c))
        assert left == right

    @given(elem)
    def test_additive_inverse_is_self(self, a):
        assert GF256.add(a, a) == 0

    @given(nonzero)
    def test_multiplicative_inverse(self, a):
        assert GF256.mul(a, GF256.inv(a)) == 1

    @given(elem)
    def test_mul_identity(self, a):
        assert GF256.mul(a, 1) == a

    @given(elem)
    def test_mul_zero(self, a):
        assert GF256.mul(a, 0) == 0

    @given(elem, nonzero)
    def test_div_inverts_mul(self, a, b):
        assert GF256.div(GF256.mul(a, b), b) == a

    def test_inv_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            GF256.inv(0)

    def test_div_by_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            GF256.div(5, 0)

    @given(nonzero, st.integers(min_value=0, max_value=300))
    def test_pow_matches_repeated_mul(self, a, n):
        expected = 1
        for _ in range(n):
            expected = GF256.mul(expected, a)
        assert GF256.pow(a, n) == expected


class TestVectorized:
    def test_array_mul_matches_scalar(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 256, 100, dtype=np.uint8)
        b = rng.integers(0, 256, 100, dtype=np.uint8)
        out = GF256.mul(a, b)
        for i in range(100):
            assert out[i] == GF256.mul(int(a[i]), int(b[i]))

    def test_array_mul_handles_zeros(self):
        a = np.array([0, 5, 0, 7], dtype=np.uint8)
        b = np.array([3, 0, 0, 2], dtype=np.uint8)
        assert list(GF256.mul(a, b)) == [0, 0, 0, GF256.mul(7, 2)]


class TestMatrices:
    def test_identity_inverse(self):
        eye = np.eye(4, dtype=np.uint8)
        assert np.array_equal(GF256.mat_inv(eye), eye)

    @settings(deadline=None, max_examples=25)
    @given(st.integers(min_value=1, max_value=6), st.integers(min_value=0, max_value=10**9))
    def test_random_matrix_roundtrip(self, n, seed):
        rng = np.random.default_rng(seed)
        m = rng.integers(0, 256, (n, n), dtype=np.uint8)
        try:
            inv = GF256.mat_inv(m)
        except np.linalg.LinAlgError:
            return  # singular draw: nothing to check
        eye = np.eye(n, dtype=np.uint8)
        assert np.array_equal(GF256.mat_mul(m, inv), eye)
        assert np.array_equal(GF256.mat_mul(inv, m), eye)

    def test_singular_matrix_raises(self):
        m = np.array([[1, 2], [1, 2]], dtype=np.uint8)
        with pytest.raises(np.linalg.LinAlgError):
            GF256.mat_inv(m)

    def test_mat_mul_shape_mismatch(self):
        a = np.zeros((2, 3), dtype=np.uint8)
        b = np.zeros((2, 2), dtype=np.uint8)
        with pytest.raises(ValueError):
            GF256.mat_mul(a, b)

    def test_mat_inv_requires_square(self):
        with pytest.raises(ValueError):
            GF256.mat_inv(np.zeros((2, 3), dtype=np.uint8))


class TestVandermonde:
    def test_any_k_rows_invertible(self):
        """The MDS-enabling property: every k-subset of rows is full rank."""
        from itertools import combinations

        k, n = 3, 6
        v = GF256.vandermonde(n, k)
        for rows in combinations(range(n), k):
            GF256.mat_inv(v[list(rows)])  # must not raise

    def test_row_limit(self):
        with pytest.raises(ValueError):
            GF256.vandermonde(256, 3)
