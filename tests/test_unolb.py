"""UnoLB: subflow round-robin, reroute rate limiting, retx steering."""

import pytest

from repro.core.unolb import UnoLB
from repro.sim.engine import Simulator
from repro.sim.packet import ACK, DATA, Packet
from repro.sim.units import MIB, US
from repro.topology.simple import incast_star
from repro.transport.base import start_flow
from repro.transport.dctcp import DCTCP


class StubSender:
    def __init__(self, sim, base_rtt=14 * US):
        import random

        self.sim = sim
        self.base_rtt_ps = base_rtt
        self.rng = random.Random(42)
        self.flow_id = 1


def data_pkt(retx=0):
    p = Packet(DATA, 1, 0, 1, seq=0, size=4096)
    p.retx = retx
    return p


def ack_pkt(subflow_entropy):
    p = Packet(ACK, 1, 1, 0, seq=0, size=64)
    p.dport = subflow_entropy  # ACKs carry the data packet's sport here
    return p


class TestRoundRobin:
    def test_validation(self):
        with pytest.raises(ValueError):
            UnoLB(n_subflows=0)

    def test_cycles_through_all_subflows(self):
        sim = Simulator()
        s = StubSender(sim)
        lb = UnoLB(n_subflows=5)
        lb.on_init(s)
        seen = [lb.entropy(s, data_pkt()) for _ in range(10)]
        assert seen[:5] == lb.entropies if seen[:5] == seen[5:] else True
        assert seen[:5] == seen[5:]          # cycle repeats
        assert len(set(seen[:5])) == 5       # all distinct

    def test_block_spreads_over_n_paths(self):
        """With n_subflows == block size, every packet of a block takes a
        different path — the paper's EC-resilience integration."""
        sim = Simulator()
        s = StubSender(sim)
        lb = UnoLB(n_subflows=10)
        lb.on_init(s)
        block = [lb.entropy(s, data_pkt()) for _ in range(10)]
        assert len(set(block)) == 10


class TestReroute:
    def test_reroute_replaces_stalest_subflow(self):
        sim = Simulator()
        s = StubSender(sim)
        lb = UnoLB(n_subflows=3)
        lb.on_init(s)
        e0, e1, e2 = lb.entropies
        sim.now = 100 * US
        lb.on_ack(s, ack_pkt(e1), 14 * US, False)
        lb.on_ack(s, ack_pkt(e2), 14 * US, False)
        # e0 never got an ACK -> it is the suspect.
        lb.on_nack_or_timeout(s)
        assert e0 not in lb.entropies
        assert e1 in lb.entropies and e2 in lb.entropies
        assert lb.reroutes == 1

    def test_reroute_rate_limited_to_one_per_rtt(self):
        sim = Simulator()
        s = StubSender(sim)
        lb = UnoLB(n_subflows=3)
        lb.on_init(s)
        sim.now = 100 * US
        lb.on_nack_or_timeout(s)
        lb.on_nack_or_timeout(s)  # immediately again: suppressed
        assert lb.reroutes == 1
        sim.now = 100 * US + 15 * US  # > one base RTT later
        lb.on_nack_or_timeout(s)
        assert lb.reroutes == 2

    def test_retransmissions_use_recently_acked_subflow(self):
        sim = Simulator()
        s = StubSender(sim)
        lb = UnoLB(n_subflows=4)
        lb.on_init(s)
        good = lb.entropies[2]
        sim.now = 50 * US
        lb.on_ack(s, ack_pkt(good), 14 * US, False)
        for _ in range(10):
            assert lb.entropy(s, data_pkt(retx=1)) == good

    def test_retx_without_any_acks_falls_back_to_rr(self):
        sim = Simulator()
        s = StubSender(sim)
        lb = UnoLB(n_subflows=4)
        lb.on_init(s)
        value = lb.entropy(s, data_pkt(retx=1))
        assert value in lb.entropies


class TestEndToEnd:
    def test_flow_with_unolb_completes(self):
        sim = Simulator()
        topo = incast_star(sim, 1, prop_ps=1 * US)
        done = []
        start_flow(
            sim, topo.net, DCTCP(), topo.senders[0], topo.receivers[0],
            1 * MIB, base_rtt_ps=14 * US, path=UnoLB(n_subflows=10),
            on_complete=done.append,
        )
        sim.run(until=10**12)
        assert len(done) == 1
