"""PFC pause/resume, the per-switch controller, and the CBD watchdog.

Covers the port-level pause machinery (packet-boundary freeze, timed
quanta vs indefinite holds, the paused-time ledger), XOFF/XON pause
origination through :func:`enable_pfc`, the deadlock watchdog's SCC
scan (detection, re-reporting, the ``until_ps`` drain bound), the PFC
chaos scenarios, and the satellite invariant: bytes held in a paused
queue at the horizon are *held*, never leaked — under both the
coalesced and the reference link-delivery paths.
"""

import random

import pytest

from repro.sim import link as link_mod
from repro.sim.chaos import (
    DeadlockProbe,
    PauseStorm,
    check_invariants,
    find_switch_cycle,
)
from repro.sim.engine import Simulator
from repro.sim.link import Link
from repro.sim.network import Network
from repro.sim.packet import DATA, PAUSE, RESUME, Packet, make_pause
from repro.sim.pfc import (
    DeadlockWatchdog,
    PFCConfig,
    _sccs,
    enable_pfc,
    pause_stats,
)
from repro.sim.queues import Port
from repro.sim.units import MS, US
from repro.topology.fattree import FatTree, FatTreeConfig
from repro.topology.simple import dumbbell
from repro.transport.base import start_flow
from repro.transport.dctcp import DCTCP


class Sink:
    def __init__(self):
        self.received = []

    def receive(self, pkt):
        self.received.append(pkt)


class RecordingController:
    """Duck-typed PFCController: records XOFF/XON originations."""

    def __init__(self):
        self.xoff_ports = []
        self.xon_ports = []

    def on_xoff(self, port):
        self.xoff_ports.append(port)

    def on_xon(self, port):
        self.xon_ports.append(port)


def data_pkt(seq=0, size=4096):
    return Packet(DATA, 1, 0, 1, seq=seq, size=size)


def lone_port(gbps=100.0, capacity=100_000):
    """A single Port feeding a link into a capture sink."""
    sim = Simulator()
    link = Link(sim, gbps, prop_ps=1 * US)
    sink = Sink()
    link.connect(sink)
    port = Port(sim, link, capacity)
    return sim, port, sink


def fattree_net(sim, k=4):
    net = Network(sim, seed=1)
    FatTree(net, FatTreeConfig(k=k, gbps=25.0, link_prop_ps=1 * US,
                               queue_bytes=256 * 1024), prefix="dc0")
    net.build_routes()
    return net


class TestPortPause:
    def test_pause_freezes_at_packet_boundary(self):
        sim, port, sink = lone_port()
        port.configure_pfc(0.6, 0.3)
        port.enqueue(data_pkt(0))
        port.enqueue(data_pkt(1))
        port.pause()  # head is mid-serialization: it must complete
        sim.run()
        assert len(sink.received) == 1
        assert port.paused
        assert port.bytes_queued == 4096
        port.resume()
        sim.run()
        assert len(sink.received) == 2
        assert port.bytes_queued == 0

    def test_enqueue_on_paused_idle_port_is_held(self):
        sim, port, sink = lone_port()
        ctrl = RecordingController()
        port.configure_pfc(0.6, 0.3, controller=ctrl)
        port.pause()
        assert port.enqueue(data_pkt()) is True  # held, not dropped
        sim.run()
        assert sink.received == []
        # A paused idle port must still originate XOFF as it fills —
        # upstream back-pressure is what keeps the fabric lossless.
        # 20 * 4096 B = 81920 B crosses XOFF (60000 B) without reaching
        # capacity (100000 B): no drops, exactly one XOFF.
        for seq in range(1, 20):
            assert port.enqueue(data_pkt(seq)) is True
        assert port.drops == 0
        assert ctrl.xoff_ports == [port]
        port.resume()
        sim.run()
        assert len(sink.received) == 20
        assert ctrl.xon_ports == [port]  # drained below XON

    def test_resume_rechecks_xoff_threshold(self):
        """A queue above XOFF when the pause lifts pauses upstream at
        resume time, not on the next enqueue."""
        sim, port, _ = lone_port()
        port.configure_pfc(0.6, 0.3)  # obeys pause, no controller yet
        port.pause()
        for seq in range(16):  # 65536 B queued: above XOFF (60000 B)
            port.enqueue(data_pkt(seq))
        # Controller attached late (enable_pfc on a running net): no
        # further enqueue will arrive to notice the standing backlog.
        ctrl = RecordingController()
        port.configure_pfc(0.6, 0.3, controller=ctrl)
        port.resume()
        assert ctrl.xoff_ports == [port]

    def test_timed_hold_auto_resumes(self):
        sim, port, sink = lone_port()
        port.configure_pfc(0.6, 0.3)
        port.pause(hold_ps=10 * US)
        port.enqueue(data_pkt())
        sim.run()
        assert not port.paused
        assert port.paused_time_ps == 10 * US
        assert len(sink.received) == 1

    def test_hold_refresh_takes_max(self):
        sim, port, _ = lone_port()
        port.configure_pfc(0.6, 0.3)
        port.pause(hold_ps=10 * US)
        sim.at(5 * US, port.pause, 10 * US)  # extends to t=15us
        sim.at(6 * US, port.pause, 1 * US)   # shorter: must not shorten
        sim.run()
        assert not port.paused
        assert port.paused_time_ps == 15 * US

    def test_indefinite_outranks_timed(self):
        sim, port, _ = lone_port()
        port.configure_pfc(0.6, 0.3)
        port.pause(hold_ps=10 * US)
        port.pause()  # indefinite: cancels the quantum
        sim.run()
        assert port.paused
        port.pause(hold_ps=5 * US)  # a later quantum can't shorten it
        sim.run()
        assert port.paused
        port.resume()
        assert not port.paused

    def test_unconfigured_port_counts_and_ignores(self):
        sim, port, sink = lone_port()
        port.enqueue(data_pkt())
        port.pause()
        sim.run()
        assert port.pause_frames_rx == 1
        assert not port.paused
        assert len(sink.received) == 1

    def test_total_paused_includes_open_pause(self):
        sim, port, _ = lone_port()
        port.configure_pfc(0.6, 0.3)
        port.pause()
        sim.run(until=7 * US)
        assert port.total_paused_ps() == 7 * US
        assert port.paused_time_ps == 0  # ledger closes on resume

    def test_threshold_validation(self):
        _, port, _ = lone_port()
        with pytest.raises(ValueError):
            port.configure_pfc(0.3, 0.6)  # xon > xoff
        with pytest.raises(ValueError):
            port.configure_pfc(0.6, 0.0)
        with pytest.raises(ValueError):
            PFCConfig(xoff_frac=0.2, xon_frac=0.5)
        with pytest.raises(ValueError):
            PFCConfig(pause_hold_ps=0)


class TestControllerXoffXon:
    def one_switch_net(self):
        """h1 =100G= s =1G= h2: s's slow egress queue fills fast."""
        sim = Simulator()
        net = Network(sim, seed=1)
        h1, h2 = net.add_host("h1"), net.add_host("h2")
        s = net.add_switch("s")
        net.add_link(h1, s, 100.0, 1 * US, 64 * 1024)
        net.add_link(s, h2, 1.0, 1 * US, 20_000)
        net.build_routes()
        return sim, net, h1, h2, s

    def test_xoff_pauses_neighbors_then_xon_resumes(self):
        sim, net, h1, h2, s = self.one_switch_net()
        enable_pfc(net)
        # Burst straight into the switch: its 1G egress queue crosses
        # XOFF (0.6 * 20000 = 12000 bytes) on the 9th 1500B packet.
        for i in range(10):
            s.receive(Packet(DATA, 1, h1.node_id, h2.node_id,
                             seq=i, size=1500))
        ctrl = s.pfc
        assert ctrl.xoff_events == 1
        assert ctrl.pause_frames_tx == 2  # both neighbors paused
        sim.run()
        # Queue drained below XON -> both neighbors resumed; the pause
        # actually reached (and froze) the upstream host ports.
        assert ctrl.resume_frames_tx == 2
        stats = pause_stats(net)
        assert stats["pause_frames_rx"] >= 2
        assert stats["paused_time_ps"] > 0
        assert not any(p.paused for node in net.nodes
                       for p in node.ports.values())

    def test_enable_pfc_wiring(self):
        sim, net, h1, h2, s = self.one_switch_net()
        controllers = enable_pfc(net, PFCConfig(xoff_frac=0.5,
                                                xon_frac=0.25))
        assert set(controllers) == {s.node_id}
        for port in s.ports.values():
            assert port.pfc_enabled and port.pfc is controllers[s.node_id]
        for host in (h1, h2):
            for port in host.ports.values():
                assert port.pfc_enabled and port.pfc is None

    def test_pause_frames_bypass_paused_egress(self):
        """Control frames ride transmit_ctrl past the egress queue, so
        a paused port still carries PAUSE/RESUME (and ctrl_pkts balances
        conservation)."""
        sim, net, h1, h2, s = self.one_switch_net()
        enable_pfc(net)
        port = s.ports[(h2.node_id, 0)]
        port.pause()
        link = port.link
        before = link.ctrl_pkts
        link.transmit_ctrl(make_pause(s.node_id, h2.node_id, 0))
        sim.run()
        assert link.ctrl_pkts == before + 1
        assert h2.ports[(s.node_id, 0)].pause_frames_rx == 1


class TestWatchdog:
    def test_sccs_finds_cycles_only(self):
        assert _sccs({1: [2], 2: [1], 3: [1]}) == [[1, 2]]
        assert _sccs({1: [2], 2: [3], 3: []}) == []
        assert _sccs({1: [2], 2: [3], 3: [1], 4: [5], 5: [4]}) == \
            [[1, 2, 3], [4, 5]]

    def ring_net(self):
        """Four switches in a ring (no hosts: pure control-plane test)."""
        sim = Simulator()
        net = Network(sim, seed=1)
        sws = [net.add_switch(f"s{i}") for i in range(4)]
        for i, sw in enumerate(sws):
            net.add_link(sw, sws[(i + 1) % 4], 25.0, 1 * US, 64 * 1024)
        return sim, net, sws

    def ring_ports(self, sws):
        return [sw.ports[(sws[(i + 1) % 4].node_id, 0)]
                for i, sw in enumerate(sws)]

    def test_cycle_detected_and_rereported_after_clearing(self):
        sim, net, sws = self.ring_net()
        enable_pfc(net)
        wd = DeadlockWatchdog(sim, net, window_ps=5 * MS,
                              interval_ps=1 * MS, until_ps=40 * MS)
        ports = self.ring_ports(sws)
        for p in ports:
            p.pause()
        sim.run(until=10 * MS)
        assert len(wd.deadlocks) == 1
        report = wd.deadlocks[0]
        assert report["invariant"] == "cbd_deadlock"
        assert report["cycle"] == sorted(sw.name for sw in sws)
        assert report["paused_for_ps"] >= 5 * MS
        # Stuck cycle, no new pause: reported once, not every tick.
        sim.run(until=15 * MS)
        assert len(wd.deadlocks) == 1
        # Clears, re-forms -> reported again.
        for p in ports:
            p.resume()
        sim.run(until=20 * MS)
        for p in ports:
            p.pause()
        sim.run()
        assert len(wd.deadlocks) == 2

    def test_short_pauses_never_flagged(self):
        sim, net, sws = self.ring_net()
        enable_pfc(net)
        wd = DeadlockWatchdog(sim, net, window_ps=5 * MS,
                              interval_ps=1 * MS, until_ps=20 * MS)
        # Storm-like duty cycle: 1 ms holds re-issued every 2 ms never
        # age past the 5 ms window.
        for t in range(0, 20):
            for p in self.ring_ports(sws):
                sim.at(t * 2 * MS, p.pause, 1 * MS)
        sim.run()
        assert wd.deadlocks == []
        assert wd.scans >= 10

    def test_until_ps_bounds_the_tick_schedule(self):
        sim, net, _ = self.ring_net()
        wd = DeadlockWatchdog(sim, net, window_ps=2 * MS,
                              interval_ps=1 * MS, until_ps=5 * MS)
        sim.run()  # must terminate: the event loop drains at the bound
        assert sim.now <= 5 * MS
        assert wd.scans == 5

    def test_validation(self):
        sim, net, _ = self.ring_net()
        with pytest.raises(ValueError):
            DeadlockWatchdog(sim, net, window_ps=0)
        with pytest.raises(ValueError):
            DeadlockWatchdog(sim, net, interval_ps=-1)


class TestScenarios:
    def test_find_switch_cycle_deterministic_square(self):
        sim = Simulator()
        net = fattree_net(sim)
        a = [sw.name for sw in find_switch_cycle(net)]
        b = [sw.name for sw in find_switch_cycle(net)]
        assert a == b and len(a) == 4

    def test_find_switch_cycle_raises_without_cycle(self):
        sim = Simulator()
        topo = dumbbell(sim, n_pairs=2)
        with pytest.raises(ValueError, match="no 4-cycle"):
            find_switch_cycle(topo.net)

    def test_probe_detected_then_drains(self):
        sim = Simulator()
        net = fattree_net(sim)
        enable_pfc(net)
        wd = DeadlockWatchdog(sim, net, window_ps=10 * MS,
                              interval_ps=1 * MS, until_ps=100 * MS)
        probe = DeadlockProbe(at_ps=0, hold_ps=60 * MS)
        cycle = probe.apply(sim, net, random.Random(0))
        assert len(cycle) == 4
        sim.run()  # finite holds: the run drains, never hangs
        assert len(wd.deadlocks) == 1
        assert wd.deadlocks[0]["cycle"] == \
            sorted(sw.name for sw in cycle)
        assert not any(p.paused for node in net.nodes
                       for p in node.ports.values())

    def test_storm_on_lossy_fabric_is_ignored(self):
        sim = Simulator()
        net = fattree_net(sim)  # PFC never enabled
        storm = PauseStorm(selector="core", k=2, start_ps=0,
                           duration_ps=2 * MS, period_ps=200 * US,
                           hold_ps=100 * US)
        storm.apply(sim, net, random.Random(0))
        sim.run()
        assert pause_stats(net)["pause_frames_rx"] > 0
        assert pause_stats(net)["paused_time_ps"] == 0

    def test_storm_on_lossless_fabric_pauses_but_no_deadlock(self):
        sim = Simulator()
        net = fattree_net(sim)
        enable_pfc(net)
        wd = DeadlockWatchdog(sim, net, window_ps=10 * MS,
                              interval_ps=1 * MS, until_ps=40 * MS)
        storm = PauseStorm(selector="core", k=2, start_ps=0,
                           duration_ps=30 * MS, period_ps=200 * US,
                           hold_ps=100 * US)
        storm.apply(sim, net, random.Random(0))
        sim.run()
        assert pause_stats(net)["paused_time_ps"] > 0
        assert wd.deadlocks == []

    def test_storm_validation(self):
        with pytest.raises(ValueError):
            PauseStorm(period_ps=0)
        with pytest.raises(ValueError):
            PauseStorm(duration_ps=1, period_ps=2)
        with pytest.raises(ValueError):
            DeadlockProbe(hold_ps=0)

    def test_pause_frame_shape(self):
        frame = make_pause(3, 4, 1, hold_ps=7)
        assert frame.kind == PAUSE and frame.payload == 7
        assert (frame.src, frame.dst, frame.seq) == (3, 4, 1)
        from repro.sim.packet import make_resume
        assert make_resume(3, 4, 1).kind == RESUME


class TestConservationUnderPause:
    """The satellite invariant: bytes frozen in a paused queue at the
    horizon are held in the FIFO — conservation, pause accounting, and
    the stalled-port check all stay clean on both delivery paths."""

    def line_with_flow(self, sim):
        net = Network(sim, seed=1)
        h1, h2 = net.add_host("h1"), net.add_host("h2")
        s1 = net.add_switch("s1")
        net.add_link(h1, s1, 25.0, 1 * US, 256 * 1024)
        net.add_link(s1, h2, 25.0, 1 * US, 64 * 1024)
        net.build_routes()
        enable_pfc(net)
        sender = start_flow(sim, net, DCTCP(), h1, h2, 256 * 1024,
                            start_ps=0, base_rtt_ps=4 * US,
                            line_gbps=25.0, seed=3)
        return net, s1, h2, [sender]

    @pytest.mark.parametrize("coalesced", [True, False])
    def test_paused_bytes_at_horizon_are_held_not_leaked(
            self, coalesced, monkeypatch):
        monkeypatch.setattr(link_mod, "COALESCED_DELIVERY", coalesced)
        sim = Simulator()
        net, s1, h2, senders = self.line_with_flow(sim)
        port = s1.ports[(h2.node_id, 0)]
        sim.at(50 * US, port.pause)  # indefinite: the flow wedges
        horizon = 5 * MS
        sim.run(until=horizon)
        assert port.paused and port.bytes_queued > 0
        violations = check_invariants(sim, net, senders, horizon)
        kinds = {v["invariant"] for v in violations}
        # The wedged flow is expected; leaks are not.
        assert "packet_conservation" not in kinds
        assert "pause_accounting" not in kinds
        assert "stalled_port" not in kinds
        assert "flow_stuck" in kinds

    @pytest.mark.parametrize("coalesced", [True, False])
    def test_resume_completes_the_flow_cleanly(self, coalesced,
                                               monkeypatch):
        monkeypatch.setattr(link_mod, "COALESCED_DELIVERY", coalesced)
        sim = Simulator()
        net, s1, h2, senders = self.line_with_flow(sim)
        port = s1.ports[(h2.node_id, 0)]
        sim.at(50 * US, port.pause)
        sim.at(2 * MS, port.resume)
        horizon = 100 * MS
        sim.run(until=horizon)
        assert senders[0].done
        assert check_invariants(sim, net, senders, horizon) == []
        assert port.total_paused_ps() == 2 * MS - 50 * US
