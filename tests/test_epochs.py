import pytest

from repro.transport.epochs import EpochTracker


class TestEpochTracker:
    def test_validation(self):
        with pytest.raises(ValueError):
            EpochTracker(0)

    def test_first_ack_opens_epoch_without_closing(self):
        t = EpochTracker(1000)
        # Packet sent before the (just-initialized) epoch start.
        assert t.on_ack(now_ps=100, pkt_sent_ps=50, ecn=False) is None

    def test_epoch_closes_on_post_activation_packet(self):
        t = EpochTracker(1000)
        t.on_ack(now_ps=100, pkt_sent_ps=50, ecn=True)
        summary = t.on_ack(now_ps=300, pkt_sent_ps=150, ecn=False)
        assert summary is not None
        assert summary.total_acks == 2
        assert summary.marked_acks == 1
        assert summary.ecn_fraction == pytest.approx(0.5)

    def test_counts_reset_between_epochs(self):
        t = EpochTracker(1000)
        t.on_ack(100, 50, True)
        t.on_ack(300, 150, True)  # closes epoch 1
        s = t.on_ack(1200, 1101, False)  # closes epoch 2
        assert s is not None
        assert s.total_acks == 1
        assert s.marked_acks == 0

    def test_epoch_advances_by_period(self):
        t = EpochTracker(1000)
        t.on_ack(100, 50, False)
        assert t.t_epoch == 100
        t.on_ack(200, 150, False)
        assert t.t_epoch == 1100

    def test_epoch_catches_up_to_send_time_after_idle(self):
        t = EpochTracker(1000)
        t.on_ack(100, 50, False)
        t.on_ack(5000, 4900, False)  # long gap; t_epoch would lag at 1100
        assert t.t_epoch == 4900  # clamped to the send timeline, not `now`

    def test_delayed_feedback_still_closes_per_period(self):
        """The unified-granularity property: with a 2000-unit feedback
        delay and a 100-unit period, a continuous stream closes an epoch
        every ~100 units of send time."""
        t = EpochTracker(100)
        closes = 0
        for send in range(0, 6000, 10):  # one packet sent every 10 units
            arrival = send + 2000
            if t.on_ack(arrival, send, False) is not None:
                closes += 1
        # The activation time starts at the first ACK's *arrival* (paper),
        # so the first feedback-delay's worth of sends closes nothing;
        # after that, one close per period of send time:
        # (6000 - 2000) / 100 = 40.
        assert 38 <= closes <= 41

    def test_tracks_max_relative_delay(self):
        t = EpochTracker(1000)
        t.on_ack(100, 50, False, rel_delay_ps=30)
        s = t.on_ack(200, 150, False, rel_delay_ps=10)
        assert s is not None
        assert s.max_rel_delay_ps == 30

    def test_epochs_closed_counter(self):
        t = EpochTracker(1000)
        t.on_ack(100, 50, False)
        t.on_ack(200, 150, False)
        t.on_ack(1300, 1200, False)
        assert t.epochs_closed == 2
