from repro.sim.packet import ACK, DATA, NACK, ACK_SIZE, Packet, make_ack, make_nack


class TestPacket:
    def test_data_packet_defaults(self):
        pkt = Packet(DATA, flow_id=7, src=1, dst=2, seq=5, size=4160, payload=4096)
        assert pkt.kind == DATA
        assert pkt.ecn is False
        assert pkt.retx == 0
        assert pkt.hops == 0
        assert pkt.block_id is None

    def test_repr_contains_identity(self):
        pkt = Packet(DATA, flow_id=7, src=1, dst=2, seq=5, size=100)
        assert "flow=7" in repr(pkt)


class TestMakeAck:
    def _data(self):
        pkt = Packet(DATA, flow_id=3, src=10, dst=20, seq=42, size=4160,
                     sport=777, dport=888, payload=4096)
        pkt.sent_ps = 12345
        pkt.ecn = True
        pkt.block_id = 4
        pkt.block_pos = 2
        return pkt

    def test_ack_reverses_direction(self):
        ack = make_ack(self._data(), now_ps=99999)
        assert ack.kind == ACK
        assert (ack.src, ack.dst) == (20, 10)
        assert (ack.sport, ack.dport) == (888, 777)

    def test_ack_echoes_ecn_and_timestamp(self):
        ack = make_ack(self._data(), now_ps=99999)
        assert ack.ecn_echo is True
        assert ack.echo_sent_ps == 12345
        assert ack.ecn is False  # the ACK's own mark starts clear

    def test_ack_carries_seq_payload_and_block(self):
        ack = make_ack(self._data(), now_ps=0)
        assert ack.seq == 42
        assert ack.payload == 4096
        assert ack.block_id == 4
        assert ack.size == ACK_SIZE


class TestMakeNack:
    def test_nack_fields(self):
        nack = make_nack(flow_id=9, src=20, dst=10, block_id=6)
        assert nack.kind == NACK
        assert nack.nack_block == 6
        assert (nack.src, nack.dst) == (20, 10)
        assert nack.size == ACK_SIZE
