import random

import pytest

from repro.sim.engine import Simulator
from repro.sim.link import Link
from repro.sim.packet import DATA, Packet
from repro.sim.queues import PhantomQueue, PhantomQueueConfig, Port, REDConfig
from repro.sim.units import US, ser_time_ps


class Sink:
    def __init__(self):
        self.received = []

    def receive(self, pkt):
        self.received.append(pkt)


def make_port(sim, capacity=100_000, red=None, phantom=None, gbps=100.0, prop=0):
    link = Link(sim, gbps, prop, name="test")
    sink = Sink()
    link.connect(sink)
    port = Port(sim, link, capacity_bytes=capacity, red=red, phantom=phantom,
                rng=random.Random(1))
    return port, sink


def pkt(size=4096, seq=0):
    return Packet(DATA, flow_id=1, src=0, dst=1, seq=seq, size=size, payload=size)


class TestREDConfig:
    def test_validates_order(self):
        with pytest.raises(ValueError):
            REDConfig(min_frac=0.8, max_frac=0.2)

    def test_validates_range(self):
        with pytest.raises(ValueError):
            REDConfig(min_frac=-0.1, max_frac=0.5)
        with pytest.raises(ValueError):
            REDConfig(min_frac=0.1, max_frac=1.5)


class TestDropTail:
    def test_delivers_in_fifo_order(self):
        sim = Simulator()
        port, sink = make_port(sim)
        for i in range(5):
            assert port.enqueue(pkt(seq=i))
        sim.run()
        assert [p.seq for p in sink.received] == [0, 1, 2, 3, 4]

    def test_serialization_spacing(self):
        sim = Simulator()
        port, sink = make_port(sim, gbps=100.0, prop=0)
        port.enqueue(pkt(size=4096))
        port.enqueue(pkt(size=4096, seq=1))
        arrivals = []
        sim.run()
        # Port log: delivery happens right after serialization since prop=0.
        assert port.tx_bytes == 8192
        assert sim.now == 2 * ser_time_ps(4096, 100.0)

    def test_tail_drop_when_full(self):
        sim = Simulator()
        port, sink = make_port(sim, capacity=10_000)
        accepted = sum(port.enqueue(pkt()) for _ in range(5))
        assert accepted == 2  # 2 x 4096 fit; the third would exceed 10 kB
        assert port.drops == 3
        sim.run()
        assert len(sink.received) == 2

    def test_queue_drains_and_accepts_again(self):
        sim = Simulator()
        port, sink = make_port(sim, capacity=8192)
        port.enqueue(pkt())
        port.enqueue(pkt(seq=1))
        assert not port.enqueue(pkt(seq=2))
        sim.run()
        assert port.enqueue(pkt(seq=3))
        sim.run()
        assert [p.seq for p in sink.received] == [0, 1, 3]

    def test_rejects_nonpositive_capacity(self):
        sim = Simulator()
        link = Link(sim, 100.0, 0)
        with pytest.raises(ValueError):
            Port(sim, link, capacity_bytes=0)


class TestREDMarking:
    def test_no_marks_below_min_threshold(self):
        sim = Simulator()
        red = REDConfig(min_frac=0.25, max_frac=0.75)
        port, sink = make_port(sim, capacity=100_000, red=red)
        # Keep occupancy under 25 kB: 6 packets of 4096 = 24.6 kB max seen 20.5 kB.
        for i in range(6):
            port.enqueue(pkt(seq=i))
        sim.run()
        assert all(not p.ecn for p in sink.received)

    def test_always_marks_above_max_threshold(self):
        sim = Simulator()
        red = REDConfig(min_frac=0.25, max_frac=0.75)
        port, sink = make_port(sim, capacity=100_000, red=red)
        for i in range(24):  # fill to ~98 kB; enqueues after 75 kB must mark
            port.enqueue(pkt(seq=i))
        sim.run()
        by_seq = {p.seq: p.ecn for p in sink.received}
        # Packet i sees occupancy 4096*i at enqueue: below the 25 kB min
        # threshold marking is impossible, above the 75 kB max threshold
        # it is certain; in between it is probabilistic.
        assert not any(by_seq[i] for i in range(7))
        assert all(by_seq[i] for i in range(19, 24))

    def test_marking_probability_is_monotone(self):
        # Statistically: higher standing occupancy -> more marks.
        def fill_and_count(n_pkts):
            sim = Simulator()
            red = REDConfig(min_frac=0.25, max_frac=0.75)
            port, sink = make_port(sim, capacity=100_000, red=red)
            for i in range(n_pkts):
                port.enqueue(pkt(seq=i))
            sim.run()
            return sum(p.ecn for p in sink.received)

        assert fill_and_count(10) <= fill_and_count(16) <= fill_and_count(22)

    def test_never_marking_config(self):
        sim = Simulator()
        red = REDConfig(min_frac=1.0, max_frac=1.0)
        port, sink = make_port(sim, capacity=100_000, red=red)
        for i in range(24):
            port.enqueue(pkt(seq=i))
        sim.run()
        assert not any(p.ecn for p in sink.received)


class TestPhantomQueue:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            PhantomQueueConfig(drain_fraction=0.0)
        with pytest.raises(ValueError):
            PhantomQueueConfig(drain_fraction=1.5)
        with pytest.raises(ValueError):
            PhantomQueueConfig(mark_threshold_bytes=0)

    def test_occupancy_grows_and_drains(self):
        pq = PhantomQueue(PhantomQueueConfig(drain_fraction=0.9,
                                             mark_threshold_bytes=100_000), 100.0)
        pq.on_enqueue(50_000, now_ps=0)
        assert pq.occupancy == 50_000
        # Drain rate = 0.9 * 12.5 B/ns = 11.25 B/ns -> 45 kB in 4 us.
        occ = pq.occupancy_at(4 * US)
        assert occ == pytest.approx(50_000 - 45_000)

    def test_occupancy_never_negative(self):
        pq = PhantomQueue(PhantomQueueConfig(), 100.0)
        pq.on_enqueue(1000, now_ps=0)
        assert pq.occupancy_at(10 * US) == 0.0

    def test_never_marks_below_min_threshold(self):
        pq = PhantomQueue(PhantomQueueConfig(mark_threshold_bytes=10_000), 100.0)
        assert pq.on_enqueue(9_000, now_ps=0) is False

    def test_always_marks_above_max_threshold(self):
        cfg = PhantomQueueConfig(mark_threshold_bytes=10_000,
                                 max_frac_of_threshold=2.0)
        pq = PhantomQueue(cfg, 100.0)
        pq.on_enqueue(20_000, now_ps=0)  # now at max_th
        assert pq.on_enqueue(4_096, now_ps=0) is True

    def test_marking_probabilistic_between_thresholds(self):
        import random as _r

        cfg = PhantomQueueConfig(mark_threshold_bytes=10_000,
                                 max_frac_of_threshold=3.0)
        pq = PhantomQueue(cfg, 100.0, rng=_r.Random(4))
        pq.occupancy = 19_000  # mid-band
        marks = sum(pq.on_enqueue(0, now_ps=0) for _ in range(500))
        assert 100 < marks < 400  # ~45% expected, statistically bounded

    def test_config_rejects_bad_max_frac(self):
        with pytest.raises(ValueError):
            PhantomQueueConfig(max_frac_of_threshold=0.5)

    def test_phantom_marks_even_with_empty_physical_queue(self):
        """The core phantom-queue property (paper 4.1.3): marking continues
        while the physical queue is empty, because the phantom drains
        slower than the line rate."""
        sim = Simulator()
        phantom = PhantomQueueConfig(drain_fraction=0.5, mark_threshold_bytes=8_000)
        red = REDConfig(min_frac=1.0, max_frac=1.0)  # physical never marks
        port, sink = make_port(sim, capacity=1_000_000, red=red, phantom=phantom)

        marked = 0
        # Send packets spaced exactly at line rate: physical queue stays
        # ~empty, phantom (draining at half rate) builds up and marks.
        gap = ser_time_ps(4096, 100.0)

        def send(i=0):
            nonlocal marked
            if i >= 20:
                return
            port.enqueue(pkt(seq=i))
            sim.after(gap, send, i + 1)

        sim.at(0, send)
        sim.run()
        assert port.bytes_queued == 0
        assert sum(p.ecn for p in sink.received) >= 5
        # Physical queue never exceeded two packets.
        assert max(p.hops for p in sink.received) == 0  # sanity: no switch hops


class TestPortIntrospection:
    def test_counters(self):
        sim = Simulator()
        port, sink = make_port(sim)
        port.enqueue(pkt())
        sim.run()
        assert port.enqueued_pkts == 1
        assert port.tx_bytes == 4096
        assert port.occupancy_bytes() == 0
        assert port.phantom_occupancy() == 0.0
