import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding.reed_solomon import ReedSolomon


def shards_of(data: bytes, k: int) -> list[bytes]:
    size = len(data) // k
    return [data[i * size : (i + 1) * size] for i in range(k)]


class TestConstruction:
    def test_systematic_top_is_identity(self):
        import numpy as np

        rs = ReedSolomon(4, 2)
        assert np.array_equal(rs.matrix[:4], np.eye(4, dtype=np.uint8))

    def test_validation(self):
        with pytest.raises(ValueError):
            ReedSolomon(0, 2)
        with pytest.raises(ValueError):
            ReedSolomon(4, -1)
        with pytest.raises(ValueError):
            ReedSolomon(200, 100)


class TestEncode:
    def test_systematic_data_passthrough(self):
        rs = ReedSolomon(3, 2)
        data = [b"abcd", b"efgh", b"ijkl"]
        out = rs.encode(data)
        assert out[:3] == data
        assert len(out) == 5
        assert all(len(s) == 4 for s in out)

    def test_zero_parity(self):
        rs = ReedSolomon(3, 0)
        data = [b"ab", b"cd", b"ef"]
        assert rs.encode(data) == data

    def test_wrong_shard_count(self):
        rs = ReedSolomon(3, 2)
        with pytest.raises(ValueError):
            rs.encode([b"ab", b"cd"])

    def test_unequal_lengths(self):
        rs = ReedSolomon(2, 1)
        with pytest.raises(ValueError):
            rs.encode([b"ab", b"c"])


class TestDecode:
    def test_all_data_present_fast_path(self):
        rs = ReedSolomon(3, 2)
        data = [b"abcd", b"efgh", b"ijkl"]
        enc = rs.encode(data)
        assert rs.decode({0: enc[0], 1: enc[1], 2: enc[2]}) == data

    def test_recover_from_parity(self):
        rs = ReedSolomon(3, 2)
        data = [b"abcd", b"efgh", b"ijkl"]
        enc = rs.encode(data)
        # Lose shards 0 and 2; decode from 1, 3, 4.
        assert rs.decode({1: enc[1], 3: enc[3], 4: enc[4]}) == data

    def test_too_few_shards(self):
        rs = ReedSolomon(3, 2)
        enc = rs.encode([b"ab", b"cd", b"ef"])
        with pytest.raises(ValueError):
            rs.decode({0: enc[0], 4: enc[4]})

    def test_bad_index(self):
        rs = ReedSolomon(2, 1)
        with pytest.raises(ValueError):
            rs.decode({0: b"ab", 7: b"cd"})

    def test_paper_scheme_8_2_all_loss_patterns(self):
        """The paper's (8, 2) block survives ANY loss of up to 2 packets."""
        from itertools import combinations

        rs = ReedSolomon(8, 2)
        data = [bytes([i] * 16) for i in range(8)]
        enc = rs.encode(data)
        for lost in combinations(range(10), 2):
            shards = {i: enc[i] for i in range(10) if i not in lost}
            assert rs.decode(shards) == data

    @settings(deadline=None, max_examples=40)
    @given(
        k=st.integers(min_value=1, max_value=8),
        m=st.integers(min_value=0, max_value=4),
        payload=st.binary(min_size=1, max_size=64),
        seed=st.integers(min_value=0, max_value=10**6),
    )
    def test_roundtrip_any_k_of_n(self, k, m, payload, seed):
        """Property: any k received shards reconstruct the data exactly."""
        import random

        rs = ReedSolomon(k, m)
        shard_len = max(1, len(payload) // k)
        data = [
            payload[i * shard_len : (i + 1) * shard_len].ljust(shard_len, b"\0")
            for i in range(k)
        ]
        enc = rs.encode(data)
        rng = random.Random(seed)
        keep = rng.sample(range(k + m), k)
        assert rs.decode({i: enc[i] for i in keep}) == data
