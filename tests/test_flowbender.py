import pytest

from repro.lb.flowbender import Flowbender, FlowbenderConfig
from repro.sim.engine import Simulator
from repro.sim.packet import ACK, DATA, Packet
from repro.sim.units import MIB, US
from repro.topology.simple import incast_star
from repro.transport.base import start_flow
from repro.transport.dctcp import DCTCP


class StubSender:
    def __init__(self):
        import random

        self.rng = random.Random(3)
        self.flow_id = 1


def ack(ecn=False):
    p = Packet(ACK, 1, 1, 0, seq=0, size=64)
    p.ecn_echo = ecn
    return p


class TestFlowbender:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            FlowbenderConfig(ecn_threshold=0.0)
        with pytest.raises(ValueError):
            FlowbenderConfig(window_acks=0)

    def test_stable_without_congestion(self):
        s = StubSender()
        fb = Flowbender(FlowbenderConfig(window_acks=4))
        fb.on_init(s)
        e0 = fb.entropy(s, Packet(DATA, 1, 0, 1, seq=0, size=100))
        for _ in range(20):
            fb.on_ack(s, ack(ecn=False), 14 * US, False)
        assert fb.entropy(s, Packet(DATA, 1, 0, 1, seq=0, size=100)) == e0
        assert fb.repaths == 0

    def test_repaths_after_one_congested_window(self):
        s = StubSender()
        fb = Flowbender(FlowbenderConfig(window_acks=4, ecn_threshold=0.5))
        fb.on_init(s)
        for _ in range(4):
            fb.on_ack(s, ack(ecn=True), 14 * US, True)
        assert fb.repaths == 1

    def test_repaths_on_timeout(self):
        s = StubSender()
        fb = Flowbender()
        fb.on_init(s)
        fb.on_nack_or_timeout(s)
        assert fb.repaths == 1

    def test_more_aggressive_than_plb(self):
        """Flowbender repaths after ONE congested window; PLB needs
        several consecutive congested rounds."""
        from repro.lb.plb import PLB, PLBConfig

        sim = Simulator()

        class S:
            def __init__(self):
                import random

                self.sim = sim
                self.rng = random.Random(5)
                self.base_rtt_ps = 14 * US
                self.flow_id = 1

        s = S()
        fb = Flowbender(FlowbenderConfig(window_acks=4))
        plb = PLB(PLBConfig(congested_rounds_to_repath=3))
        fb.on_init(s)
        plb.on_init(s)
        sim.now = 20 * US
        for _ in range(4):
            fb.on_ack(s, ack(ecn=True), 14 * US, True)
            plb.on_ack(s, ack(ecn=True), 14 * US, True)
        assert fb.repaths == 1
        assert plb.repaths == 0

    def test_end_to_end(self):
        sim = Simulator()
        topo = incast_star(sim, 1, prop_ps=1 * US)
        done = []
        start_flow(sim, topo.net, DCTCP(), topo.senders[0], topo.receivers[0],
                   MIB, base_rtt_ps=14 * US, path=Flowbender(),
                   on_complete=done.append)
        sim.run(until=10**12)
        assert done
