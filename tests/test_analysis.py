import pytest

from repro.analysis.fairness import convergence_time_ps, jain_index, jain_series
from repro.analysis.fct import (
    FCTSummary,
    ideal_fct_ps,
    slowdowns,
    split_intra_inter,
    summarize_fcts,
)
from repro.sim.units import US
from repro.transport.base import SenderStats


def stat(fct_us, size=4096, inter=False, flow_id=1):
    s = SenderStats(flow_id=flow_id, size_bytes=size, start_ps=0,
                    is_inter_dc=inter)
    s.finish_ps = fct_us * US
    return s


class TestSummaries:
    def test_basic_stats(self):
        stats = [stat(10), stat(20), stat(30)]
        s = summarize_fcts(stats)
        assert s.count == 3
        assert s.mean_us == pytest.approx(20)
        assert s.p50_ps == pytest.approx(20 * US)
        assert s.max_ps == 30 * US

    def test_p99_tracks_tail(self):
        stats = [stat(10)] * 9 + [stat(1000)]
        s = summarize_fcts(stats)
        assert s.p99_us > 500  # interpolated toward the 1000 us outlier

    def test_unfinished_flow_rejected(self):
        incomplete = SenderStats(flow_id=5, size_bytes=100, start_ps=0)
        with pytest.raises(ValueError, match="did not complete"):
            summarize_fcts([stat(10), incomplete])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize_fcts([])

    def test_split_intra_inter(self):
        stats = [stat(1), stat(2, inter=True), stat(3)]
        intra, inter = split_intra_inter(stats)
        assert len(intra) == 2
        assert len(inter) == 1


class TestIdealFCT:
    def test_small_flow_dominated_by_rtt(self):
        # Paper Fig 1's point: latency-bound for small sizes on long RTTs.
        ideal = ideal_fct_ps(4096, base_rtt_ps=2_000_000_000, line_gbps=100.0)
        assert ideal == pytest.approx(2_000_000_000, rel=0.001)

    def test_large_flow_dominated_by_bandwidth(self):
        size = 1 << 30
        ideal = ideal_fct_ps(size, base_rtt_ps=14 * US, line_gbps=100.0)
        wire = size * 8000 / 100
        assert ideal > wire  # header overhead + RTT

    def test_slowdowns(self):
        stats = [stat(100, size=4096), stat(200, size=4096)]
        sl = slowdowns(stats, lambda s: 50 * US, line_gbps=100.0)
        assert len(sl) == 2
        assert sl[0] < sl[1]
        assert all(x >= 1.0 for x in sl)


class TestJain:
    def test_perfect_fairness(self):
        assert jain_index([5, 5, 5, 5]) == pytest.approx(1.0)

    def test_single_hog(self):
        assert jain_index([10, 0, 0, 0]) == pytest.approx(0.25)

    def test_all_zero_is_vacuously_fair(self):
        assert jain_index([0, 0]) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            jain_index([])
        with pytest.raises(ValueError):
            jain_index([-1, 2])

    def test_series(self):
        series = jain_series([[10, 5, 5], [0, 5, 5]])
        assert series[0] == pytest.approx(0.5)
        assert series[1] == pytest.approx(1.0)


class TestConvergence:
    def test_detects_convergence_point(self):
        times = [100, 200, 300, 400, 500]
        rates = [
            [9, 8, 5.1, 5.0, 5.0],
            [1, 2, 4.9, 5.0, 5.0],
        ]
        t = convergence_time_ps(times, rates, threshold=0.99, hold_samples=2)
        assert t == 300

    def test_never_converges(self):
        times = [100, 200]
        rates = [[10, 10], [0, 0]]
        assert convergence_time_ps(times, rates) is None

    def test_hold_requirement(self):
        times = [100, 200, 300]
        rates = [[5, 9, 5], [5, 1, 5]]  # fair, unfair, fair
        assert convergence_time_ps(times, rates, hold_samples=2) is None
