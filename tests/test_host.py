import pytest

from repro.sim.engine import Simulator
from repro.sim.host import Host
from repro.sim.network import Network
from repro.sim.packet import DATA, Packet
from repro.sim.units import US


class Endpoint:
    def __init__(self):
        self.got = []

    def on_packet(self, pkt):
        self.got.append(pkt)


class TestRegistry:
    def test_register_and_dispatch(self):
        sim = Simulator()
        host = Host(sim, 0, "h")
        ep = Endpoint()
        host.register(1, ep)
        pkt = Packet(DATA, 1, 5, 0, seq=0, size=100)
        host.receive(pkt)
        assert ep.got == [pkt]

    def test_duplicate_registration_rejected(self):
        host = Host(Simulator(), 0, "h")
        host.register(1, Endpoint())
        with pytest.raises(ValueError):
            host.register(1, Endpoint())

    def test_unknown_flow_counted_not_fatal(self):
        host = Host(Simulator(), 0, "h")
        host.receive(Packet(DATA, 99, 5, 0, seq=0, size=100))
        assert host.orphan_pkts == 1

    def test_unregister_is_idempotent(self):
        host = Host(Simulator(), 0, "h")
        host.register(1, Endpoint())
        host.unregister(1)
        host.unregister(1)
        host.receive(Packet(DATA, 1, 5, 0, seq=0, size=100))
        assert host.orphan_pkts == 1

    def test_late_retransmissions_after_unregister_are_orphans(self):
        # A flow completes and unregisters; duplicate retransmissions
        # already in flight keep arriving. Each is counted, none is
        # dispatched, and other flows are undisturbed.
        host = Host(Simulator(), 0, "h")
        done_ep, live_ep = Endpoint(), Endpoint()
        host.register(1, done_ep)
        host.register(2, live_ep)
        host.unregister(1)
        for seq in range(3):
            host.receive(Packet(DATA, 1, 5, 0, seq=seq, size=100))
        host.receive(Packet(DATA, 2, 5, 0, seq=0, size=100))
        assert host.orphan_pkts == 3
        assert done_ep.got == []
        assert len(live_ep.got) == 1
        assert host.rx_pkts == 4  # orphans still count as received

    def test_unregister_closes_endpoint(self):
        closed = []

        class Closeable(Endpoint):
            def close(self):
                closed.append(True)

        host = Host(Simulator(), 0, "h")
        host.register(1, Closeable())
        host.unregister(1)
        assert closed == [True]


class TestUplink:
    def test_uplink_requires_exactly_one_port(self):
        host = Host(Simulator(), 0, "h")
        with pytest.raises(RuntimeError):
            _ = host.uplink

    def test_send_goes_via_uplink(self):
        sim = Simulator()
        net = Network(sim)
        h = net.add_host("h")
        s = net.add_switch("s")
        d = net.add_host("d")
        net.add_link(h, s, 100.0, 1 * US, 1_000_000)
        net.add_link(s, d, 100.0, 1 * US, 1_000_000)
        net.build_routes()
        ep = Endpoint()
        d.register(3, ep)
        h.send(Packet(DATA, 3, h.node_id, d.node_id, seq=0, size=100))
        sim.run()
        assert len(ep.got) == 1
        assert d.rx_pkts == 1
