"""The unified telemetry layer: metrics registry, event log, profiler,
and their wiring through the simulator stack.

The load-bearing guarantees:

- with telemetry off (the default) nothing changes — ``sim.obs`` is None
  and no component pays more than a pointer test;
- with it on, counters/gauges agree with the component attributes they
  mirror, the event trace replays drops and marks consistently with the
  counter totals, and the profiler accounts every executed event.
"""

import json

import pytest

from repro.obs import (
    TOPICS,
    Observability,
    TelemetryContext,
    active_context,
    enable,
    merge_numeric,
    metric_key,
    sum_numeric,
)
from repro.obs.events import EventLog, JSONLFileSink, RingBufferSink, read_jsonl
from repro.obs.metrics import MetricsRegistry, TimeSeries
from repro.obs.profile import EngineProfiler, site_name
from repro.sim.engine import Simulator
from repro.sim.failures import BernoulliLoss, schedule_link_failure
from repro.sim.units import US
from repro.topology.simple import dumbbell, incast_star
from repro.transport.base import start_flow
from repro.transport.dctcp import DCTCP


class TestMetricsRegistry:
    def test_counter_get_or_create_shares_instances(self):
        reg = MetricsRegistry()
        a = reg.counter("transport.retransmissions")
        b = reg.counter("transport.retransmissions")
        assert a is b
        a.inc()
        b.inc(2)
        assert reg.value("transport.retransmissions") == 3

    def test_gauge_pull_reads_live_state(self):
        reg = MetricsRegistry()
        state = {"drops": 0}
        reg.gauge("port.p0.drops", lambda: state["drops"])
        assert reg.value("port.p0.drops") == 0
        state["drops"] = 7
        assert reg.value("port.p0.drops") == 7

    def test_duplicate_names_rejected_across_kinds(self):
        reg = MetricsRegistry()
        reg.gauge("x.y", lambda: 1)
        with pytest.raises(ValueError):
            reg.gauge("x.y", lambda: 2)
        with pytest.raises(ValueError):
            reg.counter("x.y")

    def test_snapshot_nests_dotted_names(self):
        reg = MetricsRegistry()
        reg.counter("a.b.c").inc(5)
        reg.gauge("a.b.d", lambda: 2)
        snap = reg.snapshot()
        assert snap == {"a": {"b": {"c": 5, "d": 2}}}
        assert reg.total("a.b") == 7.0
        assert reg.total("missing") == 0.0

    def test_metric_key_sanitizes_dotted_instance_names(self):
        assert metric_key("dc0.p0.agg1") == "dc0_p0_agg1"
        reg = MetricsRegistry()
        reg.counter(f"switch.{metric_key('dc0.agg1')}.rx").inc()
        assert reg.snapshot()["switch"]["dc0_agg1"]["rx"] == 1

    def test_unique_name_is_deterministic(self):
        reg = MetricsRegistry()
        assert reg.unique_name("trace.rate") == "trace.rate.0"
        reg.series("trace.rate.0")
        assert reg.unique_name("trace.rate") == "trace.rate.1"

    def test_timeseries_reducers_and_summary(self):
        ts = TimeSeries("q")
        for t, v in [(0, 10), (1, 30), (2, 20)]:
            ts.append(t, v, v * 2.0)
        assert len(ts) == 3
        assert ts.times() == [0, 1, 2]
        assert ts.max(1) == 30
        assert ts.mean(1) == 20.0
        assert ts.column(2) == [20.0, 60.0, 40.0]
        s = ts.summary()
        assert s["n"] == 3 and s["t_first"] == 0 and s["t_last"] == 2
        assert s["columns"][0] == {"min": 10, "max": 30, "mean": 20.0}
        assert TimeSeries("empty").summary() == {"n": 0}

    def test_sum_and_merge_numeric(self):
        a = {"x": 1, "sub": {"y": 2.5, "flag": True}}
        b = {"x": 10, "sub": {"y": 0.5, "z": 4}}
        assert sum_numeric(a) == 3.5  # bools are not numbers here
        merged = merge_numeric(a, b)
        assert merged == {"x": 11, "sub": {"y": 3.0, "flag": True, "z": 4}}
        assert merge_numeric(None, b) == b
        assert merge_numeric(a, None) == a


class TestEventLog:
    def test_topic_filtering_and_counts(self):
        log = EventLog(topics=["queue"])
        assert log.wants("queue") and not log.wants("ack")
        log.emit("queue", "drop", t=1)
        log.emit("ack", "ack", t=2)  # filtered out entirely
        assert log.emitted == 1
        assert log.count("queue", "drop") == 1
        assert log.count("ack") == 0
        assert [e["kind"] for e in log.events("queue")] == ["drop"]

    def test_all_topics_is_default_vocabulary(self):
        log = EventLog()
        for topic in TOPICS:
            assert log.wants(topic)
            log.emit(topic, "x")
        assert log.emitted == len(TOPICS)
        assert set(log.snapshot()["by_topic"]) == set(TOPICS)

    def test_ring_buffer_bounded_but_counts_exact(self):
        log = EventLog(ring_size=4)
        for i in range(10):
            log.emit("queue", "enqueue", seq=i)
        assert len(log.events()) == 4  # ring kept only the tail
        assert log.count("queue", "enqueue") == 10  # tally is exact
        assert [e["seq"] for e in log.events()] == [6, 7, 8, 9]

    def test_jsonl_sink_round_trip(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(sinks=[RingBufferSink(8), JSONLFileSink(path)])
        log.emit("failure", "link_down", t=5, link="a->b")
        log.emit("failure", "link_up", t=9, link="a->b")
        log.close()
        replayed = read_jsonl(path)
        assert replayed == log.events()
        assert replayed[0] == {"topic": "failure", "kind": "link_down",
                               "t": 5, "link": "a->b"}
        # every line is independently parseable compact JSON
        for line in path.read_text().splitlines():
            assert json.loads(line)


class TestEngineProfiler:
    def test_accounts_sites_and_rates(self):
        prof = EngineProfiler()

        def cb():
            pass

        prof.account(cb, 0.25)
        prof.account(cb, 0.25)
        prof.add_wall(1.0)
        assert prof.events == 2
        assert prof.events_per_sec == 2.0
        snap = prof.snapshot()
        name = site_name(cb)
        assert snap["sites"][name]["calls"] == 2
        assert snap["sites"][name]["wall_s"] == 0.5
        assert name in prof.report()
        assert snap["top_sites"][0] == {
            "site": name, "calls": 2, "wall_s": 0.5, "frac": 1.0}

    def test_top_sites_ranked_across_merged_sims(self):
        # The qualname histogram must rank the MERGED per-site sums, not
        # echo the first simulator's ranking (merge_numeric keeps the
        # first value for lists; collect() recomputes).
        def slow():
            pass

        def fast():
            pass

        with TelemetryContext() as ctx:
            for cost in (0.1, 0.4):  # slow dominates only after merging
                sim = Simulator()
                sim.obs.profile.account(fast, 0.2)
                sim.obs.profile.account(slow, cost)
                sim.obs.profile.add_wall(cost + 0.2)
        merged = ctx.collect()
        top = merged["profile"]["top_sites"]
        assert [t["site"] for t in top[:2]] == [site_name(slow),
                                               site_name(fast)]
        assert top[0]["calls"] == 2 and top[0]["wall_s"] == pytest.approx(0.5)

    def test_profiled_loop_counts_every_event(self):
        sim = Simulator()
        enable(sim, profile=True)
        fired = []
        for i in range(5):
            sim.after(i * 10, fired.append, i)
        sim.run()
        assert fired == [0, 1, 2, 3, 4]
        prof = sim.obs.profile
        assert prof.events == 5
        assert prof.events == sim._n_executed
        assert prof.wall_s > 0

    def test_profiled_and_lean_loops_agree_on_results(self):
        def drive(with_profile):
            sim = Simulator()
            if with_profile:
                enable(sim, profile=True)
            out = []
            sim.after(10, out.append, "a")
            handle = sim.after(20, out.append, "cancelled")
            sim.after(30, out.append, "b")
            handle.cancel()
            sim.run(until=25)
            first = list(out)
            sim.run()
            return first, out, sim.now

        assert drive(False) == drive(True)


class TestSimulatorWiring:
    def test_obs_defaults_to_none(self):
        assert Simulator().obs is None
        assert active_context() is None

    def test_enable_attaches_bundle(self):
        sim = Simulator()
        obs = enable(sim, event_topics="all")
        assert sim.obs is obs
        assert isinstance(obs, Observability)
        assert obs.events is not None and obs.profile is not None

    def test_telemetry_context_attaches_to_new_simulators(self):
        with TelemetryContext() as ctx:
            s1, s2 = Simulator(), Simulator()
            assert s1.obs is not None and s2.obs is not None
            assert s1.obs is not s2.obs  # per-sim bundles: no gauge clashes
            assert ctx.bundles == [s1.obs, s2.obs]
        assert Simulator().obs is None  # context exited
        collected = ctx.collect()
        assert collected["n_sims"] == 2

    def test_context_collect_merges_counters(self):
        with TelemetryContext(profile=False) as ctx:
            for _ in range(2):
                sim = Simulator()
                sim.obs.metrics.counter("transport.timeouts").inc(3)
        merged = ctx.collect()
        assert merged["metrics"]["transport"]["timeouts"] == 6
        assert "profile" not in merged


def _run_lossy_incast(event_topics=None):
    """A congested incast with ACK-path loss: produces drops, marks,
    retransmissions, and duplicate ACKs."""
    sim = Simulator()
    obs = enable(sim, event_topics=event_topics)
    topo = incast_star(sim, 4, prop_ps=1 * US, queue_bytes=64 * 1024)
    sw = topo.net.node("sw")
    topo.net.link_between(sw, topo.senders[0]).loss_model = \
        BernoulliLoss(0.05, seed=3)
    done = []
    for i, s in enumerate(topo.senders):
        start_flow(sim, topo.net, DCTCP(), s, topo.receivers[0],
                   256 * 1024, base_rtt_ps=14 * US, seed=i,
                   on_complete=done.append)
    sim.run(until=10**12)
    assert len(done) == 4
    return sim, topo, obs


class TestStackInstrumentation:
    def test_gauges_mirror_component_attributes(self):
        sim, topo, obs = _run_lossy_incast()
        snap = obs.metrics.snapshot()
        port = topo.bottleneck
        pm = snap["port"][metric_key(port.name)]
        assert pm["drops"] == port.drops
        assert pm["enqueued_pkts"] == port.enqueued_pkts
        assert pm["marked_pkts"] == port.marked_pkts
        assert pm["tx_bytes"] == port.tx_bytes
        link = port.link
        lm = snap["link"][metric_key(link.name)]
        assert lm["delivered_pkts"] == link.delivered_pkts
        assert lm["up"] is True
        assert snap["switch"][metric_key("sw")]["rx_pkts"] > 0
        tr = snap["transport"]
        assert tr["flows_started"] == tr["flows_completed"] == 4
        assert tr["retransmissions"] > 0  # the loss model engaged

    def test_duplicate_ack_accounting(self):
        from repro.sim.packet import ACK, Packet

        sim = Simulator()
        obs = enable(sim, event_topics=["ack"])
        topo = incast_star(sim, 1, prop_ps=1 * US)
        done = []
        sender = start_flow(sim, topo.net, DCTCP(), topo.senders[0],
                            topo.receivers[0], 64 * 1024,
                            base_rtt_ps=14 * US, on_complete=done.append)
        # Step until at least one ACK has been processed, then replay it.
        while not sender.acked_seqs and not done:
            sim.run(max_events=50)
        assert sender.acked_seqs and not sender.done
        seq = next(iter(sender.acked_seqs))
        dup = Packet(ACK, sender.flow_id, src=topo.receivers[0].node_id,
                     dst=topo.senders[0].node_id, seq=seq, size=64)
        dup.echo_sent_ps = sim.now
        sender.on_packet(dup)
        assert sender.stats.dup_acks == 1
        assert obs.metrics.value("transport.dup_acks") == 1
        assert obs.events.count("ack", "dup") == 1
        sim.run(until=10**12)
        assert done

    def test_events_replay_consistent_with_counters(self):
        sim, topo, obs = _run_lossy_incast(event_topics=["queue"])
        log = obs.events
        total_drops = sum(p.drops for n in topo.net.nodes
                          for p in n.ports.values())
        total_marks = sum(p.marked_pkts for n in topo.net.nodes
                          for p in n.ports.values())
        total_enq = sum(p.enqueued_pkts for n in topo.net.nodes
                        for p in n.ports.values())
        assert log.count("queue", "drop") == total_drops
        assert log.count("queue", "mark") == total_marks
        assert log.count("queue", "enqueue") == total_enq
        # Per-port replay from the trace matches each port's own counter.
        drops_by_port = {}
        for e in log.events("queue", "drop"):
            drops_by_port[e["port"]] = drops_by_port.get(e["port"], 0) + 1
        for node in topo.net.nodes:
            for p in node.ports.values():
                assert drops_by_port.get(p.name, 0) == p.drops
        # Mark events carry the phys/phantom decision.
        for e in log.events("queue", "mark"):
            assert e["phys"] or e["phantom"]

    def test_failure_events_and_counters(self):
        sim = Simulator()
        obs = enable(sim, event_topics=["failure"])
        topo = dumbbell(sim, 1, prop_ps=1 * US)
        link = topo.bottleneck.link
        schedule_link_failure(sim, link, fail_at_ps=10 * US,
                              repair_after_ps=10 * US)
        sim.run()
        m = obs.metrics
        assert m.value("failures.scheduled") == 1
        assert m.value("failures.link_down") == 1
        assert m.value("failures.link_up") == 1
        kinds = [e["kind"] for e in obs.events.events("failure")]
        assert kinds == ["scheduled", "link_down", "link_up"]
        assert link.up and link.failures == 1

    def test_disabled_telemetry_has_no_observable_effect(self):
        def fcts(enable_obs):
            sim = Simulator()
            if enable_obs:
                enable(sim, event_topics="all")
            topo = incast_star(sim, 3, prop_ps=1 * US,
                               queue_bytes=64 * 1024)
            done = []
            for i, s in enumerate(topo.senders):
                start_flow(sim, topo.net, DCTCP(), s, topo.receivers[0],
                           128 * 1024, base_rtt_ps=14 * US, seed=i,
                           on_complete=done.append)
            sim.run(until=10**12)
            return sorted(s.stats.fct_ps for s in done), sim.now

        assert fcts(False) == fcts(True)
