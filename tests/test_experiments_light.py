"""Lightweight checks of the experiment modules (the heavy regeneration
runs live in benchmarks/)."""

import pytest

from repro.experiments import fig1, table1
from repro.experiments.report import format_table, print_experiment
from repro.sim.units import GIB, KIB, MIB, MS, US


class TestFig1Analytics:
    def test_propagation_fraction_bounds(self):
        assert 0 < fig1.propagation_fraction(1, 1 * US) <= 1
        assert fig1.propagation_fraction(4 * KIB, 20 * MS) > 0.999

    def test_latency_bound_crossover(self):
        """Paper Fig 1B: intra RTTs cross 50% before 1 MiB, 20 ms stays
        latency-bound past 256 MiB."""
        assert fig1.propagation_fraction(1 * MIB, 10 * US) < 0.5
        assert fig1.propagation_fraction(256 * MIB, 20 * MS) > 0.45
        assert fig1.propagation_fraction(1 * GIB, 20 * MS) < 0.5

    def test_fraction_monotone_in_rtt(self):
        fr = [fig1.propagation_fraction(16 * MIB, r)
              for r in (10 * US, 1 * MS, 20 * MS)]
        assert fr == sorted(fr)


class TestTable1Calibration:
    def test_fitted_parameters_match_marginal(self):
        for setup in table1.PAPER.values():
            from repro.sim.failures import calibrate_gilbert_elliott

            params = calibrate_gilbert_elliott(
                setup["loss_rate"],
                mean_burst_packets=setup["ge_mean_burst"],
                loss_bad=setup["ge_loss_bad"],
            )
            assert params.marginal_loss_rate == pytest.approx(
                setup["loss_rate"], rel=1e-9
            )


class TestReport:
    def test_format_table_alignment(self):
        out = format_table(["a", "long_header"], [[1, 2.5], ["xy", 0.0001]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert "long_header" in lines[0]
        assert "0.0001" in lines[3]

    def test_print_experiment_smoke(self, capsys):
        print_experiment("T", "expect", ["h"], [[1]])
        captured = capsys.readouterr().out
        assert "=== T ===" in captured
        assert "expect" in captured
