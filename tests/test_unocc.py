"""UnoCC behaviour: Algorithm 1's AI, MD, phantom discrimination, QA."""

import pytest

from repro.core.params import UnoParams
from repro.core.unocc import UnoCC, UnoCCConfig
from repro.core.uno import make_unocc
from repro.sim.engine import Simulator
from repro.sim.packet import ACK, Packet
from repro.sim.units import MIB, MS, US
from repro.topology.simple import incast_star
from repro.transport.base import start_flow


def config(**kw):
    # Unit tests exercise the steady-state AIMD machinery; slow start has
    # dedicated tests below.
    defaults = dict(k_bytes=25_000.0, epoch_period_ps=14 * US,
                    use_slow_start=False)
    defaults.update(kw)
    return UnoCCConfig(**defaults)


def ack(payload=4096, ecn=False, sent_ps=0):
    pkt = Packet(ACK, 1, 1, 0, seq=0, size=64, payload=payload)
    pkt.ecn_echo = ecn
    pkt.echo_sent_ps = sent_ps
    return pkt


class StubSender:
    def __init__(self, sim, mss=4096, base_rtt=14 * US, gbps=100.0):
        from repro.sim.units import bdp_bytes

        self.sim = sim
        self.mss = mss
        self.base_rtt_ps = base_rtt
        self.line_gbps = gbps
        self.bdp_bytes = bdp_bytes(base_rtt, gbps)
        self.cwnd = float(mss)
        self.pacing_rate_gbps = None
        self.min_rtt_ps = base_rtt
        self.srtt_ps = float(base_rtt)
        self.inflight_bytes = 1
        self.is_inter_dc = False
        self.done = False
        self.stats = type("S", (), {"bytes_acked": 0})()

    @property
    def rate_estimate_gbps(self):
        return min(self.line_gbps, self.cwnd * 8000.0 / self.srtt_ps)


class TestConfigValidation:
    def test_requires_positive_k(self):
        with pytest.raises(ValueError):
            UnoCCConfig(k_bytes=0.0)

    def test_beta_range(self):
        with pytest.raises(ValueError):
            config(beta=0.0)
        with pytest.raises(ValueError):
            config(beta=1.5)

    def test_gentle_scale_range(self):
        with pytest.raises(ValueError):
            config(md_gentle_scale=0.0)


class TestAdditiveIncrease:
    def test_ai_step_per_rtt_is_alpha(self):
        """After one RTT's worth of unmarked ACKs, cwnd grows by ~alpha
        (paper 4.1.1): each ACK adds alpha * bytes / cwnd."""
        sim = Simulator()
        s = StubSender(sim)
        cc = UnoCC(config())
        cc.on_init(s)
        alpha = cc._alpha_bytes
        cwnd0 = s.cwnd
        # Deliver exactly cwnd0 bytes of unmarked ACKs "within one RTT"
        # (keep packets sent before the epoch start so no epoch closes).
        n = int(cwnd0 // 4096)
        for _ in range(n):
            cc.on_ack(s, ack(sent_ps=-1), rtt_ps=14 * US, ecn=False)
        growth = s.cwnd - cwnd0
        assert growth == pytest.approx(alpha, rel=0.05)

    def test_marked_acks_do_not_increase(self):
        sim = Simulator()
        s = StubSender(sim)
        cc = UnoCC(config())
        cc.on_init(s)
        before = s.cwnd
        cc.on_ack(s, ack(ecn=True, sent_ps=-1), rtt_ps=14 * US, ecn=True)
        assert s.cwnd <= before


class TestMultiplicativeDecrease:
    def test_md_factor_is_dctcp_like_for_intra_flows(self):
        """With K = intra_BDP/7 and BDP = intra_BDP, 4K/(K+BDP) = 0.5."""
        params = UnoParams()
        k = params.k_bytes
        bdp = params.intra_bdp_bytes
        assert 4 * k / (k + bdp) == pytest.approx(0.5)

    def test_md_factor_gentler_for_inter_flows(self):
        params = UnoParams()
        k = params.k_bytes
        scale_intra = 4 * k / (k + params.intra_bdp_bytes)
        scale_inter = 4 * k / (k + params.inter_bdp_bytes)
        assert scale_inter < scale_intra / 50  # 2 ms vs 14 us RTTs

    def test_equilibrium_rates_nearly_equal_under_shared_marking(self):
        """AIMD equilibrium analysis (gain = loss per unit time) under a
        shared marking probability p: rate_c = alpha_rate * tau /
        (p * s_c * RTT_c), so fairness requires s_c * RTT_c to be equal
        across classes. With K = intra_BDP/7 the two products differ by
        ~14% — near-equal shares by design."""
        params = UnoParams()
        k = params.k_bytes

        def s(bdp):
            return 4 * k / (k + bdp)

        intra_product = s(params.intra_bdp_bytes) * params.intra_rtt_ps
        inter_product = s(params.inter_bdp_bytes) * params.inter_rtt_ps
        assert inter_product == pytest.approx(intra_product, rel=0.25)

    def test_per_own_rtt_reduction_is_rtt_independent(self):
        """The unified-granularity identity: per-epoch MD x epochs-per-RTT
        gives (nearly) the same per-own-RTT reduction for intra and inter
        flows, which is what makes the shared AI/MD factors fair."""
        params = UnoParams()
        k = params.k_bytes
        intra_frac = 4 * k / (k + params.intra_bdp_bytes)  # 1 epoch per RTT
        epochs_per_inter_rtt = params.inter_rtt_ps / params.intra_rtt_ps
        inter_md_once = 4 * k / (k + params.inter_bdp_bytes)
        inter_frac = 1 - (1 - inter_md_once) ** epochs_per_inter_rtt
        assert inter_frac == pytest.approx(intra_frac, rel=0.2)

    def test_congested_epoch_reduces_window(self):
        sim = Simulator()
        s = StubSender(sim)
        cc = UnoCC(config(ewma_g=1.0))
        cc.on_init(s)
        s.cwnd = 100 * 4096
        sim.now = 100 * US
        before = s.cwnd
        # Close an epoch whose packets were all marked with real delay.
        cc.on_ack(s, ack(ecn=True, sent_ps=sim.now), rtt_ps=14 * US + 50 * US,
                  ecn=True)
        assert s.cwnd < before
        assert cc.md_events == 1
        assert cc.md_scale == 1.0

    def test_phantom_only_congestion_is_gentle(self):
        """ECN marks with near-zero relative delay = phantom congestion:
        MD_scale shrinks by 0.3 each such epoch (Algorithm 1 line 10)."""
        sim = Simulator()
        s = StubSender(sim)
        cc = UnoCC(config(ewma_g=1.0))
        cc.on_init(s)
        s.cwnd = 100 * 4096
        s.min_rtt_ps = 14 * US
        sim.now = 100 * US
        cc.on_ack(s, ack(ecn=True, sent_ps=sim.now), rtt_ps=14 * US, ecn=True)
        assert cc.gentle_md_events == 1
        assert cc.md_scale == pytest.approx(0.3)
        sim.now = 200 * US
        cc.on_ack(s, ack(ecn=True, sent_ps=sim.now), rtt_ps=14 * US, ecn=True)
        assert cc.md_scale == pytest.approx(0.09)

    def test_physical_congestion_resets_gentle_scale(self):
        sim = Simulator()
        s = StubSender(sim)
        cc = UnoCC(config(ewma_g=1.0))
        cc.on_init(s)
        s.cwnd = 100 * 4096
        s.min_rtt_ps = 14 * US
        sim.now = 100 * US
        cc.on_ack(s, ack(ecn=True, sent_ps=sim.now), rtt_ps=14 * US, ecn=True)
        assert cc.md_scale < 1.0
        sim.now = 200 * US
        cc.on_ack(s, ack(ecn=True, sent_ps=sim.now), rtt_ps=14 * US + 60 * US,
                  ecn=True)
        assert cc.md_scale == 1.0

    def test_window_floor_is_one_mss(self):
        sim = Simulator()
        s = StubSender(sim)
        cc = UnoCC(config(ewma_g=1.0, max_md=0.5))
        cc.on_init(s)
        s.cwnd = float(s.mss)
        for i in range(5):
            sim.now = (i + 1) * 100 * US
            cc.on_ack(s, ack(ecn=True, sent_ps=sim.now),
                      rtt_ps=14 * US + 60 * US, ecn=True)
        assert s.cwnd >= s.mss


class TestQuickAdapt:
    def test_qa_fires_when_acked_bytes_collapse(self):
        sim = Simulator()
        s = StubSender(sim)
        cc = UnoCC(config(beta=0.5))
        cc.on_init(s)
        s.cwnd = 1 * MIB
        # First ACK starts the QA cadence.
        cc.on_ack(s, ack(sent_ps=-1), rtt_ps=14 * US, ecn=False)
        s.stats.bytes_acked = 4096  # almost nothing delivered
        sim.run(until=30 * US)  # let the QA timer fire (one srtt later)
        assert cc.qa_triggers == 1
        assert s.cwnd == pytest.approx(max(4096 - 0, s.mss), abs=4096)

    def test_qa_quiet_when_delivery_is_healthy(self):
        sim = Simulator()
        s = StubSender(sim)
        cc = UnoCC(config(beta=0.5))
        cc.on_init(s)
        s.cwnd = 100 * 4096

        cc.on_ack(s, ack(sent_ps=-1), rtt_ps=14 * US, ecn=False)
        # Keep delivering plenty of bytes each window.
        def feed():
            s.stats.bytes_acked += int(s.cwnd)
            if sim.now < 200 * US:
                sim.after(10 * US, feed)

        sim.at(0, feed)
        sim.run(until=200 * US)
        assert cc.qa_triggers == 0

    def test_qa_then_skip_period_suppresses_md(self):
        sim = Simulator()
        s = StubSender(sim)
        cc = UnoCC(config(beta=0.5, ewma_g=1.0))
        cc.on_init(s)
        s.cwnd = 1 * MIB
        cc.on_ack(s, ack(sent_ps=-1), rtt_ps=14 * US, ecn=False)
        sim.run(until=30 * US)  # QA window is 1.5x the RTT estimate
        assert cc.qa_triggers == 1
        # An immediately-following congested epoch must NOT apply MD.
        cwnd_after_qa = s.cwnd
        cc.on_ack(s, ack(ecn=True, sent_ps=sim.now), rtt_ps=100 * US, ecn=True)
        assert s.cwnd >= cwnd_after_qa - 1e-9
        assert cc.md_events == 0

    def test_qa_timer_cancelled_on_done(self):
        sim = Simulator()
        s = StubSender(sim)
        cc = UnoCC(config())
        cc.on_init(s)
        cc.on_ack(s, ack(sent_ps=-1), rtt_ps=14 * US, ecn=False)
        cc.on_done(s)
        s.done = True
        sim.run(until=1 * MS)
        assert cc.qa_triggers == 0


class TestSlowStart:
    def test_doubles_and_survives_sporadic_marks(self):
        sim = Simulator()
        s = StubSender(sim)
        cc = UnoCC(config(use_slow_start=True))
        cc.on_init(s)
        assert cc._slow_start
        before = s.cwnd
        cc.on_ack(s, ack(payload=4096, sent_ps=-1), rtt_ps=14 * US, ecn=False)
        assert s.cwnd == before + 4096
        # A single marked ACK does NOT end slow start (phantom queues mark
        # sporadically on loaded paths from the first RTT)...
        cc.on_ack(s, ack(ecn=True, sent_ps=-1), rtt_ps=14 * US, ecn=True)
        assert cc._slow_start

    def test_exits_on_majority_marked_epoch(self):
        sim = Simulator()
        s = StubSender(sim)
        cc = UnoCC(config(use_slow_start=True))
        cc.on_init(s)
        sim.now = 100 * US
        # Epoch closes with 100% marked ACKs -> persistent congestion.
        cc.on_ack(s, ack(ecn=True, sent_ps=sim.now), rtt_ps=14 * US, ecn=True)
        assert not cc._slow_start

    def test_capped_at_two_bdp(self):
        sim = Simulator()
        s = StubSender(sim)
        cc = UnoCC(config(use_slow_start=True))
        cc.on_init(s)
        for _ in range(200):
            cc.on_ack(s, ack(payload=4096, sent_ps=-1), rtt_ps=14 * US,
                      ecn=False)
        assert s.cwnd <= 2 * s.bdp_bytes
        assert not cc._slow_start

    def test_qa_inactive_during_slow_start(self):
        sim = Simulator()
        s = StubSender(sim)
        cc = UnoCC(config(use_slow_start=True, beta=0.5))
        cc.on_init(s)
        cc.on_ack(s, ack(sent_ps=-1), rtt_ps=14 * US, ecn=False)
        s.stats.bytes_acked = 4096
        sim.run(until=30 * US)
        assert cc.qa_triggers == 0  # still in slow start

    def test_timeout_ends_slow_start(self):
        sim = Simulator()
        s = StubSender(sim)
        cc = UnoCC(config(use_slow_start=True))
        cc.on_init(s)
        cc.on_timeout(s)
        assert not cc._slow_start


class TestTimeout:
    def test_timeout_collapses_and_skips(self):
        sim = Simulator()
        s = StubSender(sim)
        cc = UnoCC(config())
        cc.on_init(s)
        s.cwnd = 1 * MIB
        cc.on_timeout(s)
        assert s.cwnd == s.mss
        assert cc._skip_until_ps > sim.now


class TestFactory:
    def test_make_unocc_uses_intra_epoch_for_inter_flows(self):
        params = UnoParams()
        cc = make_unocc(params, is_inter_dc=True)
        assert cc._tracker.period_ps == params.intra_rtt_ps

    def test_make_unocc_table2_constants(self):
        params = UnoParams()
        cc = make_unocc(params, is_inter_dc=False)
        assert cc.config.alpha_frac_of_bdp == 0.001
        assert cc.config.beta == 0.5
        assert cc.config.k_bytes == pytest.approx(params.intra_bdp_bytes / 7)


class TestEndToEnd:
    def test_unocc_incast_near_ideal(self):
        from repro.core.params import UnoParams

        sim = Simulator()
        params = UnoParams()
        topo = incast_star(sim, 8, prop_ps=1 * US, red=params.red(),
                           phantom=params.phantom())
        done = []
        for i, snd in enumerate(topo.senders):
            cc = make_unocc(params, is_inter_dc=False)
            start_flow(sim, topo.net, cc, snd, topo.receivers[0], 1 * MIB,
                       base_rtt_ps=14 * US, seed=i, on_complete=done.append)
        sim.run(until=10**12)
        assert len(done) == 8
        # 8 MiB through 100 Gbps ~ 671 us ideal; require within 3x.
        worst = max(d.stats.fct_ps for d in done)
        assert worst < 3 * 671 * US
