"""UnoRC: erasure-coded blocks, parity scheduling, NACKs, block ACKs."""

import pytest

from repro.coding.block import BlockConfig
from repro.core.unorc import UnoRCConfig, UnoRCReceiver, UnoRCSender
from repro.sim.engine import Simulator
from repro.sim.failures import BernoulliLoss
from repro.sim.units import MIB, US
from repro.topology.simple import incast_star
from repro.transport.base import start_flow
from repro.transport.dctcp import DCTCP


def launch_rc_flow(sim, topo, size, rc=None, loss_p=0.0, drop_parity_only=False,
                   seed=3, cc=None):
    rc = rc or UnoRCConfig(block=BlockConfig(4, 2))
    if loss_p:
        link = topo.net.link_between(topo.senders[0], topo.net.node("sw"))
        link.loss_model = BernoulliLoss(loss_p, seed=seed)
    done = []
    sender = start_flow(
        sim,
        topo.net,
        cc or DCTCP(),
        topo.senders[0],
        topo.receivers[0],
        size,
        sender_cls=UnoRCSender,
        receiver_cls=UnoRCReceiver,
        receiver_kwargs={"rc": rc},
        rc=rc,
        base_rtt_ps=14 * US,
        on_complete=done.append,
    )
    return sender, done


class TestSequenceLayout:
    def _sender(self, size, x=4, y=2):
        sim = Simulator()
        topo = incast_star(sim, 1, prop_ps=1 * US)
        rc = UnoRCConfig(block=BlockConfig(x, y))
        sender, _ = launch_rc_flow(sim, topo, size, rc=rc)
        return sender

    def test_block_counts(self):
        s = self._sender(10 * 4096)  # 10 data pkts, x=4 -> 3 blocks
        assert s.n_blocks == 3
        assert [s.block_data_n(b) for b in range(3)] == [4, 4, 2]

    def test_parity_seq_layout(self):
        s = self._sender(10 * 4096)
        assert s.parity_base(0) == 10
        assert s.parity_base(1) == 12
        assert s.block_of(0) == 0
        assert s.block_of(5) == 1
        assert s.block_of(10) == 0  # first parity of block 0
        assert s.block_of(13) == 1


class TestNoLoss:
    def test_flow_completes_and_sends_parity(self):
        sim = Simulator()
        topo = incast_star(sim, 1, prop_ps=1 * US)
        sender, done = launch_rc_flow(sim, topo, 8 * 4096)
        sim.run(until=10**12)
        assert done
        # 8 data packets -> 2 blocks of 4 -> 4 parity packets.
        assert sender.stats.data_pkts_sent == 8
        assert sender.stats.parity_pkts_sent == 4
        assert sender.stats.nacks_received == 0

    def test_ec_overhead_bounded_by_scheme(self):
        sim = Simulator()
        topo = incast_star(sim, 1, prop_ps=1 * US)
        rc = UnoRCConfig(block=BlockConfig(8, 2))
        sender, done = launch_rc_flow(sim, topo, 64 * 4096, rc=rc)
        sim.run(until=10**12)
        assert done
        # Up to 8 blocks x 2 parity; parity of blocks that were fully
        # ACKed before their parity left the queue is skipped (it can no
        # longer help), so the count may be lower near the flow's tail.
        assert 2 <= sender.stats.parity_pkts_sent <= 16
        overhead = sender.stats.parity_pkts_sent / sender.stats.data_pkts_sent
        assert overhead <= 0.25 + 1e-9

    def test_ec_overhead_exact_when_window_unconstrained(self):
        """With the whole flow inside one window, parity goes out before
        any ACK returns: the full 25% overhead is paid."""
        sim = Simulator()
        topo = incast_star(sim, 1, prop_ps=1 * US)
        rc = UnoRCConfig(block=BlockConfig(8, 2))
        sender, done = launch_rc_flow(sim, topo, 16 * 4096, rc=rc)
        sim.run(until=10**12)
        assert done
        assert sender.stats.parity_pkts_sent == 4  # 2 blocks x 2

    def test_single_short_block(self):
        sim = Simulator()
        topo = incast_star(sim, 1, prop_ps=1 * US)
        sender, done = launch_rc_flow(sim, topo, 3 * 4096)  # < one block
        sim.run(until=10**12)
        assert done
        assert sender.n_blocks == 1
        assert sender.stats.parity_pkts_sent == 2


class TestParityRecovery:
    def test_data_loss_recovered_without_sender_retx(self):
        """Lose exactly one data packet: the parity must cover it and the
        receiver's block-complete ACK must finish the flow with no
        retransmission of that packet."""
        sim = Simulator()
        topo = incast_star(sim, 1, prop_ps=1 * US)
        link = topo.net.link_between(topo.senders[0], topo.net.node("sw"))
        dropped = []

        def drop_seq_1(pkt, now):
            if pkt.seq == 1 and not dropped:
                dropped.append(pkt.seq)
                return True
            return False

        link.loss_model = drop_seq_1
        sender, done = launch_rc_flow(sim, topo, 4 * 4096)
        sim.run(until=10**12)
        assert done
        assert dropped == [1]
        assert sender.stats.retransmissions == 0
        recv = sender.receiver
        assert recv.blocks_decoded_with_parity == 1

    def test_losses_beyond_parity_trigger_nack_and_retx(self):
        """Drop 3 of a (4,2) block: unrecoverable, receiver NACKs, sender
        retransmits the missing data packets."""
        sim = Simulator()
        topo = incast_star(sim, 1, prop_ps=1 * US)
        link = topo.net.link_between(topo.senders[0], topo.net.node("sw"))
        to_drop = {0, 1, 2}

        def drop_first_three(pkt, now):
            if pkt.seq in to_drop and pkt.retx == 0:
                return True
            return False

        link.loss_model = drop_first_three
        sender, done = launch_rc_flow(sim, topo, 4 * 4096)
        sim.run(until=10**12)
        assert done
        assert sender.stats.nacks_received >= 1
        assert sender.stats.retransmissions >= 1

    def test_completes_under_random_loss(self):
        sim = Simulator()
        topo = incast_star(sim, 1, prop_ps=1 * US)
        sender, done = launch_rc_flow(sim, topo, 1 * MIB, loss_p=0.05)
        sim.run(until=10**12)
        assert done
        assert sender.inflight_bytes == 0

    def test_completes_under_heavy_loss(self):
        sim = Simulator()
        topo = incast_star(sim, 1, prop_ps=1 * US)
        sender, done = launch_rc_flow(sim, topo, 256 * 1024, loss_p=0.25)
        sim.run(until=10**12)
        assert done


class TestBlockCompleteAck:
    def test_block_ack_retires_unacked_sequences(self):
        """After a block-complete ACK, no sequence of that block may remain
        outstanding or be retransmitted later."""
        sim = Simulator()
        topo = incast_star(sim, 1, prop_ps=1 * US)
        link = topo.net.link_between(topo.senders[0], topo.net.node("sw"))
        link.loss_model = lambda p, now: p.seq == 2 and p.retx == 0
        sender, done = launch_rc_flow(sim, topo, 4 * 4096)
        sim.run(until=10**12)
        assert done
        assert 2 in sender.acked_seqs
        assert not sender.outstanding


class TestReceiverTimer:
    def test_receiver_gives_up_nacking_eventually(self):
        rc = UnoRCConfig(block=BlockConfig(4, 2), max_nacks_per_block=2,
                         block_timeout_ps=20 * US)
        sim = Simulator()
        topo = incast_star(sim, 1, prop_ps=1 * US)
        # Kill the reverse path so NACKs/ACKs never arrive: receiver NACKs
        # max_nacks times then stops.
        sender, done = launch_rc_flow(sim, topo, 4 * 4096, rc=rc)
        rev = topo.net.link_between(topo.net.node("sw"), topo.senders[0])
        rev.fail()
        fwd_drop = topo.net.link_between(topo.senders[0], topo.net.node("sw"))
        fwd_drop.loss_model = lambda p, now: p.seq >= 2  # block never decodable
        sim.run(until=5_000 * US)
        recv = sender.receiver
        assert recv.nacks_sent == 2


class TestConfigValidation:
    def test_rc_config(self):
        with pytest.raises(ValueError):
            UnoRCConfig(nack_backoff=0.5)
        with pytest.raises(ValueError):
            UnoRCConfig(max_nacks_per_block=0)
