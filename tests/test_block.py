import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding.block import BlockCodec, BlockConfig


class TestBlockConfig:
    def test_paper_default_is_8_2(self):
        cfg = BlockConfig()
        assert (cfg.data_pkts, cfg.parity_pkts) == (8, 2)
        assert cfg.block_pkts == 10
        assert cfg.overhead == pytest.approx(0.25)

    def test_validation(self):
        with pytest.raises(ValueError):
            BlockConfig(data_pkts=0)
        with pytest.raises(ValueError):
            BlockConfig(parity_pkts=-1)
        with pytest.raises(ValueError):
            BlockConfig(data_pkts=200, parity_pkts=100)

    def test_block_of_seq(self):
        cfg = BlockConfig(data_pkts=8, parity_pkts=2)
        assert cfg.block_of_seq(0) == 0
        assert cfg.block_of_seq(7) == 0
        assert cfg.block_of_seq(8) == 1

    def test_n_blocks(self):
        cfg = BlockConfig(data_pkts=8, parity_pkts=2)
        assert cfg.n_blocks(1) == 1
        assert cfg.n_blocks(8) == 1
        assert cfg.n_blocks(9) == 2
        assert cfg.n_blocks(16) == 2

    def test_final_short_block(self):
        cfg = BlockConfig(data_pkts=8, parity_pkts=2)
        assert cfg.data_pkts_in_block(0, 11) == 8
        assert cfg.data_pkts_in_block(1, 11) == 3
        with pytest.raises(ValueError):
            cfg.data_pkts_in_block(2, 11)

    def test_recoverable(self):
        cfg = BlockConfig(data_pkts=8, parity_pkts=2)
        assert cfg.recoverable(received=8, block_data_pkts=8)
        assert not cfg.recoverable(received=7, block_data_pkts=8)
        assert cfg.recoverable(received=3, block_data_pkts=3)


class TestBlockCodec:
    def test_encode_shapes(self):
        codec = BlockCodec(BlockConfig(4, 2), mss=16)
        msg = bytes(range(100))  # 7 packets -> blocks of 4 and 3 data pkts
        blocks = codec.encode_message(msg)
        assert len(blocks) == 2
        assert len(blocks[0]) == 6  # 4 data + 2 parity
        assert len(blocks[1]) == 5  # 3 data + 2 parity
        assert all(len(shard) == 16 for b in blocks for shard in b)

    def test_empty_message_rejected(self):
        codec = BlockCodec(BlockConfig(), mss=16)
        with pytest.raises(ValueError):
            codec.encode_message(b"")

    def test_roundtrip_no_loss(self):
        codec = BlockCodec(BlockConfig(4, 2), mss=16)
        msg = bytes(range(256)) * 3
        blocks = codec.encode_message(msg)
        received = [dict(enumerate(b)) for b in blocks]
        assert codec.decode_message(received, len(msg)) == msg

    @settings(deadline=None, max_examples=30)
    @given(
        msg=st.binary(min_size=1, max_size=500),
        seed=st.integers(min_value=0, max_value=10**6),
    )
    def test_roundtrip_with_max_parity_losses(self, msg, seed):
        """Property: dropping up to `parity` packets per block never loses
        data — the guarantee UnoRC's latency story rests on."""
        cfg = BlockConfig(4, 2)
        codec = BlockCodec(cfg, mss=16)
        blocks = codec.encode_message(msg)
        rng = random.Random(seed)
        received = []
        for b in blocks:
            n = len(b)
            lose = rng.sample(range(n), min(cfg.parity_pkts, n - 1))
            received.append({i: s for i, s in enumerate(b) if i not in lose})
        assert codec.decode_message(received, len(msg)) == msg

    def test_too_many_losses_fails(self):
        cfg = BlockConfig(4, 2)
        codec = BlockCodec(cfg, mss=16)
        msg = bytes(64)
        blocks = codec.encode_message(msg)
        received = [{i: s for i, s in enumerate(blocks[0]) if i >= 3}]  # only 3 left
        with pytest.raises(ValueError):
            codec.decode_message(received, len(msg))
