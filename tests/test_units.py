import pytest

from repro.sim.units import (
    GIB,
    KIB,
    MIB,
    MS,
    NS,
    SEC,
    US,
    bdp_bytes,
    bytes_in_time,
    fmt_bytes,
    fmt_time,
    gbps_to_bytes_per_ps,
    ser_time_ps,
)


class TestTimeConstants:
    def test_hierarchy(self):
        assert NS == 1_000
        assert US == 1_000 * NS
        assert MS == 1_000 * US
        assert SEC == 1_000 * MS


class TestSerTime:
    def test_mtu_at_100g_is_exact(self):
        # 4096 B * 8 bits * 1000/100 ps/bit
        assert ser_time_ps(4096, 100.0) == 327_680

    def test_one_byte(self):
        assert ser_time_ps(1, 100.0) == 80

    def test_scales_inversely_with_bandwidth(self):
        assert ser_time_ps(4096, 50.0) == 2 * ser_time_ps(4096, 100.0)

    def test_minimum_one_ps(self):
        assert ser_time_ps(1, 1e9) == 1

    def test_rejects_nonpositive_bandwidth(self):
        with pytest.raises(ValueError):
            ser_time_ps(100, 0)
        with pytest.raises(ValueError):
            ser_time_ps(100, -1)


class TestBDP:
    def test_paper_example(self):
        # Paper section 2: 10 ms RTT at 400 Gbps ~ 500 MB.
        assert bdp_bytes(10 * MS, 400.0) == 500_000_000

    def test_intra_dc_default(self):
        # 14 us at 100 Gbps = 175 KB.
        assert bdp_bytes(14 * US, 100.0) == 175_000

    def test_bytes_per_ps(self):
        assert gbps_to_bytes_per_ps(100.0) == pytest.approx(0.0125)

    def test_bytes_in_time(self):
        assert bytes_in_time(1 * US, 100.0) == pytest.approx(12_500)


class TestFormatting:
    def test_fmt_time_units(self):
        assert fmt_time(500) == "500ps"
        assert fmt_time(2 * NS) == "2.0ns"
        assert fmt_time(3 * US) == "3.000us"
        assert fmt_time(4 * MS) == "4.000ms"
        assert fmt_time(2 * SEC) == "2.000s"

    def test_fmt_bytes_units(self):
        assert fmt_bytes(512) == "512B"
        assert fmt_bytes(2 * KIB) == "2.00KiB"
        assert fmt_bytes(3 * MIB) == "3.00MiB"
        assert fmt_bytes(GIB) == "1.00GiB"
