"""The point API and the parallel/cached/resumable runner.

Uses ``repro.experiments.selftest`` (cheap deterministic points with
opt-in failure modes) so the engine's guarantees — byte-identical
results across execution modes, cache hits on resume, structured
failures, timeouts — are tested without heavy simulations.
"""

import math
import pickle

import pytest

from repro.experiments import selftest
from repro.experiments.api import (
    EXPERIMENTS,
    ExperimentPoint,
    canonical_json,
    execute_point,
    experiment_module,
    normalize_result,
)
from repro.experiments.cache import ResultCache, point_key
from repro.experiments.runner import (
    failures,
    raise_failures,
    results_by_name,
    run_points,
)


def _cache_bytes(cache, points):
    return {p.id: cache.path_for(p).read_bytes() for p in points}


class TestExperimentPoint:
    def test_config_normalized_and_hashable(self):
        a = ExperimentPoint("e", "n", {"b": 2, "a": 1}, seed=3)
        b = ExperimentPoint("e", "n", (("a", 1), ("b", 2)), seed=3)
        assert a == b
        assert hash(a) == hash(b)
        assert a.cfg == {"a": 1, "b": 2}
        assert a.id == "e:n"

    def test_non_scalar_config_rejected(self):
        with pytest.raises(TypeError):
            ExperimentPoint("e", "n", {"bad": [1, 2]})

    def test_picklable(self):
        p = selftest.points()[0]
        assert pickle.loads(pickle.dumps(p)) == p

    def test_describe_round_trips_through_canonical_json(self):
        p = selftest.points()[0]
        assert canonical_json(p.describe()) == canonical_json(p.describe())

    def test_canonical_json_rejects_nan(self):
        with pytest.raises(ValueError):
            canonical_json({"x": math.nan})

    def test_normalize_result_requires_dict(self):
        with pytest.raises(TypeError):
            normalize_result([1, 2])


class TestProtocolAcrossModules:
    @pytest.mark.parametrize("name", EXPERIMENTS)
    def test_points_are_wellformed(self, name):
        module = experiment_module(name)
        pts = module.points(quick=True)
        assert pts, f"{name}.points() returned no work"
        ids = [p.id for p in pts]
        assert len(set(ids)) == len(ids)
        for p in pts:
            assert p.experiment == name
            assert pickle.loads(pickle.dumps(p)) == p
            canonical_json(p.describe())

    @pytest.mark.parametrize("name", EXPERIMENTS)
    def test_module_speaks_full_protocol(self, name):
        module = experiment_module(name)
        for attr in ("points", "run_point", "summarize", "run", "report",
                     "main", "DEFAULT_SEED"):
            assert hasattr(module, attr), f"{name} missing {attr}"

    def test_seed_override_propagates(self):
        for p in selftest.points(seed=77):
            assert p.seed >= 77
        assert selftest.points()[0].seed == selftest.DEFAULT_SEED


class TestCache:
    def test_store_load_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        p = selftest.points()[0]
        result = execute_point(p)
        path = cache.store(p, result)
        assert path.exists()
        assert cache.load(p) == result

    def test_key_depends_on_identity_and_version(self):
        p = selftest.points()[0]
        changed = ExperimentPoint(p.experiment, p.name, p.config, seed=999)
        assert point_key(p) != point_key(changed)
        assert point_key(p) != point_key(p, version="other")
        assert point_key(p) == point_key(p)

    def test_miss_on_absent_or_corrupt(self, tmp_path):
        cache = ResultCache(tmp_path)
        p = selftest.points()[0]
        assert cache.load(p) is None
        path = cache.path_for(p)
        path.parent.mkdir(parents=True)
        path.write_text("not json")
        assert cache.load(p) is None


class TestRunnerDeterminism:
    def test_serial_parallel_resume_byte_identical(self, tmp_path):
        pts = selftest.points()
        serial_cache = ResultCache(tmp_path / "serial")
        serial = run_points(pts, cache=serial_cache)
        par_cache = ResultCache(tmp_path / "par")
        parallel = run_points(pts, jobs=4, cache=par_cache)

        assert [r.result for r in serial] == [r.result for r in parallel]
        assert _cache_bytes(serial_cache, pts) == _cache_bytes(par_cache, pts)

        # Resume from a half-populated cache: hits are served from disk
        # (not re-executed), misses run, and the files end up identical.
        resume_cache = ResultCache(tmp_path / "resume")
        half = pts[: len(pts) // 2]
        run_points(half, cache=resume_cache)
        stamps = {p.id: resume_cache.path_for(p).stat().st_mtime_ns
                  for p in half}
        resumed = run_points(pts, jobs=2, cache=resume_cache, resume=True)
        assert [r.result for r in resumed] == [r.result for r in serial]
        assert [r.cached for r in resumed] == (
            [True] * len(half) + [False] * (len(pts) - len(half)))
        for p in half:  # cached files were not rewritten
            assert resume_cache.path_for(p).stat().st_mtime_ns == stamps[p.id]
        assert _cache_bytes(resume_cache, pts) == _cache_bytes(
            serial_cache, pts)

    def test_summarize_matches_run(self, tmp_path):
        records = run_points(selftest.points())
        res = selftest.summarize(results_by_name(records,
                                                 experiment="selftest"))
        assert res == selftest.run()
        assert 0.4 < res["grand_mean"] < 0.6


class TestRunnerFailureModes:
    def _failing_point(self):
        return ExperimentPoint("selftest", "boom",
                               {"mode": "fail", "quick": True}, seed=1)

    def test_failure_becomes_structured_record(self, tmp_path):
        cache = ResultCache(tmp_path)
        good = selftest.points()[0]
        records = run_points([good, self._failing_point()], cache=cache)
        ok, bad = records
        assert ok.ok and not bad.ok
        assert bad.status == "error"
        assert bad.error["type"] == "ValueError"
        assert "asked to fail" in bad.error["message"]
        assert not cache.path_for(bad.point).exists()  # failures not cached
        with pytest.raises(RuntimeError, match="selftest:boom"):
            raise_failures(records)
        assert failures(records) == [bad]

    def test_failure_in_worker_matches_inline(self):
        inline = run_points([self._failing_point()])[0]
        pooled = run_points([self._failing_point()], jobs=2)[0]
        assert inline.status == pooled.status == "error"
        assert inline.error["type"] == pooled.error["type"]

    def test_timeout_kills_worker(self):
        p = ExperimentPoint("selftest", "stuck",
                            {"mode": "sleep", "sleep_s": 30.0, "quick": True},
                            seed=1)
        record = run_points([p], timeout_s=0.2)[0]
        assert record.status == "timeout"
        assert record.elapsed_s < 10

    def test_failure_traceback_round_trips_through_cache(self):
        """A failing point leaves a ``.error.json`` record carrying the
        full traceback, readable after the sweep (and after the process
        that ran it is gone)."""
        import tempfile
        from pathlib import Path

        with tempfile.TemporaryDirectory() as tmp:
            cache = ResultCache(Path(tmp))
            bad = self._failing_point()
            record = run_points([bad], cache=cache)[0]
            assert "Traceback (most recent call last)" in \
                record.error["traceback"]
            assert "ValueError" in record.error["traceback"]

            # Round trip: a fresh cache handle on the same root reads the
            # record back, byte-for-byte equal error info.
            reread = ResultCache(Path(tmp)).load_failure(bad)
            assert reread is not None
            assert reread["status"] == "error"
            assert reread["error"] == record.error
            assert reread["error"]["traceback"] == \
                record.error["traceback"]
            # Failures are never served as results ...
            assert cache.load(bad) is None
            assert cache.failure_path_for(bad) != cache.path_for(bad)

    def test_worker_failures_also_cached_with_traceback(self, tmp_path):
        cache = ResultCache(tmp_path)
        bad = self._failing_point()
        run_points([bad], jobs=2, cache=cache)
        reread = cache.load_failure(bad)
        assert reread is not None
        assert "asked to fail" in reread["error"]["message"]
        assert "Traceback (most recent call last)" in \
            reread["error"]["traceback"]

    def test_success_supersedes_failure_record(self, tmp_path):
        cache = ResultCache(tmp_path)
        p = selftest.points()[0]
        cache.store_failure(p, "error", {"type": "X", "message": "m",
                                         "traceback": "tb"})
        assert cache.load_failure(p) is not None
        run_points([p], cache=cache)
        assert cache.load(p) is not None
        assert cache.load_failure(p) is None  # stale record removed

    def test_duplicate_conflicting_ids_rejected(self):
        a = ExperimentPoint("e", "n", {"x": 1})
        b = ExperimentPoint("e", "n", {"x": 2})
        with pytest.raises(ValueError, match="duplicate"):
            run_points([a, b])
        # An exact repeat is not a conflict.
        assert len(run_points([])) == 0

    def test_bad_jobs_and_resume_args_rejected(self):
        with pytest.raises(ValueError):
            run_points([], jobs=0)
        with pytest.raises(ValueError):
            run_points([], resume=True)


class TestRunnerTelemetry:
    def test_records_carry_merged_telemetry(self):
        pts = selftest.points()[:2]
        records = run_points(pts, telemetry=True)
        for r in records:
            assert r.ok
            assert r.telemetry is not None
            assert set(r.telemetry) >= {"n_sims", "metrics"}
        # Off by default: no snapshot attached.
        assert all(r.telemetry is None for r in run_points(pts))

    def test_telemetry_identical_results_and_present_in_workers(self, tmp_path):
        pts = selftest.points()
        plain = run_points(pts)
        inline = run_points(pts, telemetry=True)
        pooled = run_points(pts, jobs=2, telemetry=True)
        assert [r.result for r in plain] == [r.result for r in inline]
        assert [r.result for r in plain] == [r.result for r in pooled]
        assert all(r.telemetry is not None for r in pooled)

    def test_cache_hits_have_no_telemetry(self, tmp_path):
        cache = ResultCache(tmp_path)
        pts = selftest.points()[:1]
        first = run_points(pts, cache=cache, telemetry=True)
        resumed = run_points(pts, cache=cache, resume=True, telemetry=True)
        assert first[0].telemetry is not None
        assert resumed[0].cached and resumed[0].telemetry is None

    def test_run_all_telemetry_flag_writes_artifacts(self, tmp_path, capsys):
        import json

        from repro.experiments.run_all import main

        main(["--only", "fig1", "--out", str(tmp_path), "--telemetry"])
        capsys.readouterr()
        tdir = tmp_path / "telemetry" / "fig1"
        summary = json.loads((tdir / "summary.json").read_text())
        assert summary["experiment"] == "fig1"
        assert summary["points_with_telemetry"] == summary["points_total"] > 0
        for name, entry in summary["points"].items():
            assert entry["status"] == "ok"
            point_doc = json.loads((tdir / entry["file"]).read_text())
            assert point_doc["status"] == "ok"
            assert point_doc["point"]["name"] == name
            assert point_doc["n_sims"] >= 1
            assert "metrics" in point_doc and "profile" in point_doc
        # Aggregated profile: every simulator's executed events, summed.
        assert summary["profile"]["events"] > 0
        assert summary["metrics"]["transport"]["flows_completed"] > 0


class TestRunnerRetries:
    """``retries=N`` re-runs only failed points, keeps every attempt's
    error record, and caches the final outcome exactly once."""

    def _flaky_point(self, tmp_path, fail_times, name="wobble"):
        return ExperimentPoint(
            "selftest", name,
            {"mode": "flaky", "fail_times": fail_times,
             "marker": str(tmp_path / f"{name}.attempts"), "quick": True},
            seed=1)

    def test_retry_turns_failure_into_success(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        p = self._flaky_point(tmp_path, fail_times=1)
        record = run_points([p], cache=cache, retries=2,
                            retry_backoff_s=0.0)[0]
        assert record.ok
        assert record.result == {"attempts": 2}
        # The failed first attempt is preserved on the record...
        assert [a["attempt"] for a in record.attempts] == [1]
        assert record.attempts[0]["type"] == "ValueError"
        # ...and the cache holds the success, not the stale failure.
        assert cache.load(p) == record.result
        assert cache.load_failure(p) is None

    def test_exhausted_retries_keep_every_attempt(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        p = self._flaky_point(tmp_path, fail_times=99)
        record = run_points([p], cache=cache, retries=2,
                            retry_backoff_s=0.0)[0]
        assert not record.ok
        assert [a["attempt"] for a in record.attempts] == [1, 2, 3]
        failure = cache.load_failure(p)
        assert failure is not None
        assert len(failure["attempts"]) == 3
        assert all("asked to fail" in a["message"]
                   for a in failure["attempts"])

    def test_only_failed_points_are_rerun(self, tmp_path):
        steady = self._flaky_point(tmp_path, fail_times=0, name="steady")
        flaky = self._flaky_point(tmp_path, fail_times=1, name="flaky")
        records = run_points([steady, flaky], retries=3,
                             retry_backoff_s=0.0)
        assert all(r.ok for r in records)
        # Attempt counters come from the marker files: the steady point
        # ran exactly once even though the flaky one needed a second pass.
        assert records[0].result == {"attempts": 1}
        assert records[1].result == {"attempts": 2}
        assert records[0].attempts is None  # never failed: no history

    def test_retries_in_worker_pool(self, tmp_path):
        p = self._flaky_point(tmp_path, fail_times=1)
        record = run_points([p], jobs=2, retries=1, retry_backoff_s=0.0)[0]
        assert record.ok and record.result == {"attempts": 2}

    def test_zero_retries_single_attempt(self, tmp_path):
        p = self._flaky_point(tmp_path, fail_times=1)
        record = run_points([p], retries=0)[0]
        assert not record.ok
        assert [a["attempt"] for a in record.attempts] == [1]

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError):
            run_points([], retries=-1)
