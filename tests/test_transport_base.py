import pytest

from repro.analysis.fct import ideal_fct_ps
from repro.sim.engine import Simulator
from repro.sim.failures import BernoulliLoss
from repro.sim.units import MIB, MS, US
from repro.topology.simple import dumbbell, incast_star
from repro.transport.base import (
    AbortPolicy,
    CongestionControl,
    FixedEntropy,
    Sender,
    start_flow,
)
from repro.transport.dctcp import DCTCP


class FixedWindow(CongestionControl):
    """Keeps cwnd constant: isolates the reliability machinery."""

    def __init__(self, cwnd_bytes: float):
        self._cwnd = cwnd_bytes

    def on_init(self, sender):
        sender.cwnd = self._cwnd

    def on_timeout(self, sender):
        pass


def run_one_flow(size, loss_p=0.0, cwnd=1 << 20, horizon=10**12):
    sim = Simulator()
    topo = incast_star(sim, 1, prop_ps=1 * US)
    if loss_p:
        bl = topo.net.link_between(topo.senders[0], topo.net.node("sw"))
        bl.loss_model = BernoulliLoss(loss_p, seed=5)
    done = []
    sender = start_flow(
        sim, topo.net, FixedWindow(cwnd), topo.senders[0], topo.receivers[0],
        size, base_rtt_ps=14 * US, on_complete=done.append,
    )
    sim.run(until=horizon)
    return sim, sender, done


class TestBasicDelivery:
    def test_single_packet_flow(self):
        sim, sender, done = run_one_flow(100)
        assert done == [sender]
        assert sender.stats.data_pkts_sent == 1
        assert sender.stats.bytes_acked == 100

    def test_multi_packet_flow_completes(self):
        sim, sender, done = run_one_flow(1 * MIB)
        assert sender.done
        assert sender.stats.data_pkts_sent == 256
        assert sender.stats.retransmissions == 0

    def test_fct_close_to_ideal_unloaded(self):
        size = 1 * MIB
        sim, sender, done = run_one_flow(size)
        ideal = ideal_fct_ps(size, 4 * US + 2 * 2 * US, 100.0)  # ~2 hops x 1us x RT
        assert sender.stats.fct_ps == pytest.approx(ideal, rel=0.25)

    def test_last_packet_may_be_short(self):
        sim, sender, done = run_one_flow(4096 + 100)
        assert sender.done
        assert sender.payload_of(0) == 4096
        assert sender.payload_of(1) == 100

    def test_zero_size_rejected(self):
        sim = Simulator()
        topo = incast_star(sim, 1)
        with pytest.raises(ValueError):
            start_flow(sim, topo.net, FixedWindow(4096), topo.senders[0],
                       topo.receivers[0], 0)

    def test_endpoints_unregistered_after_completion(self):
        sim, sender, done = run_one_flow(8192)
        assert sender.flow_id not in sender.src.endpoints
        assert sender.flow_id not in sender.dst.endpoints


class TestWindowEnforcement:
    def test_inflight_never_exceeds_cwnd(self):
        sim = Simulator()
        topo = incast_star(sim, 1, prop_ps=10 * US)
        cwnd = 8 * 4096
        sender = start_flow(
            sim, topo.net, FixedWindow(cwnd), topo.senders[0],
            topo.receivers[0], 1 * MIB, base_rtt_ps=40 * US,
        )
        max_seen = 0
        while sim.step():
            max_seen = max(max_seen, sender.inflight_bytes)
        assert sender.done
        assert max_seen <= cwnd

    def test_small_window_serializes_flow(self):
        # One packet per RTT: FCT ~ n_pkts * RTT.
        sim = Simulator()
        topo = incast_star(sim, 1, prop_ps=10 * US)
        sender = start_flow(
            sim, topo.net, FixedWindow(4096), topo.senders[0],
            topo.receivers[0], 20 * 4096, base_rtt_ps=40 * US,
        )
        sim.run(until=10**12)
        assert sender.done
        assert sender.stats.fct_ps >= 19 * 40 * US


class TestLossRecovery:
    def test_completes_under_random_loss(self):
        sim, sender, done = run_one_flow(256 * 1024, loss_p=0.05)
        assert sender.done
        assert sender.stats.retransmissions > 0

    def test_completes_under_heavy_loss(self):
        sim, sender, done = run_one_flow(64 * 1024, loss_p=0.3)
        assert sender.done

    def test_retransmission_count_reflects_losses(self):
        sim, sender, done = run_one_flow(256 * 1024, loss_p=0.1)
        # At 10% loss of 64 packets, expect at least a few retransmissions.
        assert sender.stats.retransmissions >= 3
        assert sender.stats.timeouts >= 1

    def test_inflight_zero_after_completion(self):
        sim, sender, done = run_one_flow(128 * 1024, loss_p=0.1)
        assert sender.inflight_bytes == 0


class TestPacing:
    def test_pacing_spaces_packets(self):
        class Paced(FixedWindow):
            def on_init(self, sender):
                super().on_init(sender)
                sender.pacing_rate_gbps = 10.0  # 10% of line rate

        sim = Simulator()
        topo = incast_star(sim, 1, prop_ps=1 * US)
        size = 100 * 4096
        sender = start_flow(
            sim, topo.net, Paced(1 << 20), topo.senders[0],
            topo.receivers[0], size, base_rtt_ps=14 * US,
        )
        sim.run(until=10**12)
        assert sender.done
        # At 10 Gbps, 100 packets of ~4160B take >= 330 us just to pace out.
        assert sender.stats.fct_ps > 300 * US


class TestMultipleFlows:
    def test_dumbbell_shares_bottleneck(self):
        sim = Simulator()
        topo = dumbbell(sim, 4, prop_ps=1 * US)
        done = []
        for i, (s, r) in enumerate(zip(topo.senders, topo.receivers)):
            start_flow(sim, topo.net, DCTCP(), s, r, 512 * 1024,
                       base_rtt_ps=14 * US, seed=i, on_complete=done.append)
        sim.run(until=10**12)
        assert len(done) == 4

    def test_flow_ids_unique(self):
        sim = Simulator()
        topo = dumbbell(sim, 3, prop_ps=1 * US)
        senders = [
            start_flow(sim, topo.net, DCTCP(), s, r, 8192, base_rtt_ps=14 * US)
            for s, r in zip(topo.senders, topo.receivers)
        ]
        ids = [s.flow_id for s in senders]
        assert len(set(ids)) == 3


class TestPathSelector:
    def test_fixed_entropy_is_stable(self):
        sim = Simulator()
        topo = incast_star(sim, 1, prop_ps=1 * US)
        path = FixedEntropy(1234)
        sender = start_flow(
            sim, topo.net, FixedWindow(1 << 20), topo.senders[0],
            topo.receivers[0], 64 * 1024, path=path, base_rtt_ps=14 * US,
        )
        sim.run(until=10**12)
        assert sender.done


class TestRTOBackoff:
    def _stalled_sender(self, **kwargs):
        """A sender whose packets all vanish: every RTO expires in turn."""
        sim = Simulator()
        topo = incast_star(sim, 1, prop_ps=1 * US)
        bl = topo.net.link_between(topo.senders[0], topo.net.node("sw"))
        sender = start_flow(
            sim, topo.net, FixedWindow(1 << 20), topo.senders[0],
            topo.receivers[0], 64 * 1024, base_rtt_ps=14 * US, **kwargs,
        )
        return sim, bl, sender

    def test_rto_doubles_per_consecutive_timeout_and_caps(self):
        sim, bl, sender = self._stalled_sender()
        bl.fail()
        sim.run(until=1 * US)  # flow started, packets black-holed
        base = sender.rto_ps
        seen = []
        last = sender.stats.timeouts
        while sender._rto_backoff < sender.rto_backoff_max:
            sim.run(until=sim.peek_time())
            if sender.stats.timeouts > last:
                last = sender.stats.timeouts
                seen.append(sender.rto_ps)
        # 2x per timeout until the factor cap...
        assert seen[:4] == [2 * base, 4 * base, 8 * base, 16 * base]
        # ...and never beyond the absolute ceiling.
        assert all(r <= max(sender.max_rto_ps, base) for r in seen)
        assert sender.rto_ps == min(16 * base, sender.max_rto_ps)

    def test_ack_progress_resets_backoff(self):
        sim, bl, sender = self._stalled_sender()
        bl.fail()
        sim.run(until=200 * US)          # a few timeouts accumulate
        assert sender._rto_backoff > 1
        bl.restore()
        sim.run(until=10**12)
        assert sender.done
        assert sender._rto_backoff == 1  # first ACK ended the episode

    def test_no_retransmit_storm_across_blackhole_window(self):
        """Satellite acceptance: across a 5 ms total outage the doubling
        RTO fires a handful of timeouts, where a fixed RTO would fire
        ~100 (one per 50 us floor); the flow still completes on repair."""
        def run(backoff_max):
            sim, bl, sender = self._stalled_sender(
                rto_backoff_max=backoff_max)
            sim.at(2 * US, bl.fail)  # mid-flow: tail packets black-holed
            sim.at(2 * US + 5_000 * US, bl.restore)
            sim.run(until=10**12)
            return sender

        fixed = run(1)
        backoff = run(16)
        assert fixed.done and backoff.done
        assert fixed.stats.timeouts > 30          # the storm (~1 per RTO)
        assert backoff.stats.timeouts <= 10       # the fix (~log2 of that)
        assert backoff.stats.retransmissions < fixed.stats.retransmissions / 4


class TestAbortPolicy:
    def _blackholed(self, abort, fail_at_ps=1 * US):
        """A flow whose host uplink fails shortly after start."""
        sim = Simulator()
        topo = incast_star(sim, 1, prop_ps=1 * US)
        bl = topo.net.link_between(topo.senders[0], topo.net.node("sw"))
        done = []
        sender = start_flow(
            sim, topo.net, FixedWindow(1 << 20), topo.senders[0],
            topo.receivers[0], 64 * 1024, base_rtt_ps=14 * US,
            abort=abort, on_complete=done.append,
        )
        sim.at(fail_at_ps, bl.fail)
        return sim, bl, sender, done

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            AbortPolicy()
        with pytest.raises(ValueError):
            AbortPolicy(max_consecutive_rtos=0)
        with pytest.raises(ValueError):
            AbortPolicy(deadline_ps=0)
        assert AbortPolicy(max_consecutive_rtos=5).deadline_ps is None
        assert AbortPolicy(deadline_ps=1 * MS).max_consecutive_rtos is None

    def test_default_never_aborts(self):
        sim, bl, sender, done = self._blackholed(abort=None)
        sim.run(until=2_000 * MS)
        assert not sender.done and not sender.aborted
        assert sender._rto_handle is not None  # still trying

    def test_max_consecutive_rtos_aborts(self):
        sim, bl, sender, done = self._blackholed(
            AbortPolicy(max_consecutive_rtos=5))
        sim.run(until=2_000 * MS)
        assert sender.aborted and sender.terminal and not sender.done
        assert sender.stats.abort_reason == "max_consecutive_rtos"
        assert sender.stats.timeouts == 5
        assert sender.stats.fct_ps is None

    def test_deadline_aborts(self):
        sim, bl, sender, done = self._blackholed(AbortPolicy(deadline_ps=3 * MS))
        sim.run(until=2_000 * MS)
        assert sender.aborted
        assert sender.stats.abort_reason == "deadline"
        # Aborted exactly at start + deadline.
        assert sender.stats.aborted_ps == sender.stats.start_ps + 3 * MS

    def test_abort_cancels_timers_and_unregisters(self):
        sim, bl, sender, done = self._blackholed(
            AbortPolicy(max_consecutive_rtos=3, deadline_ps=100 * MS))
        sim.run(until=2_000 * MS)
        assert sender.aborted
        assert sender._rto_handle is None
        assert sender._pace_handle is None
        assert sender._deadline_handle is None
        assert sender.flow_id not in sender.src.endpoints
        assert sender.flow_id not in sender.dst.endpoints
        assert done == [sender]  # abort is a terminal on_complete event

    def test_healthy_flow_unaffected_by_policy(self):
        sim = Simulator()
        topo = incast_star(sim, 1, prop_ps=1 * US)
        sender = start_flow(
            sim, topo.net, FixedWindow(1 << 20), topo.senders[0],
            topo.receivers[0], 64 * 1024, base_rtt_ps=14 * US,
            abort=AbortPolicy(max_consecutive_rtos=3, deadline_ps=100 * MS),
        )
        sim.run(until=2_000 * MS)
        assert sender.done and not sender.aborted
        assert sender._deadline_handle is None  # cancelled on completion

    def test_ack_progress_resets_consecutive_count(self):
        # Outage ends before the 4th of 5 allowed RTOs, so the 4th
        # retransmission lands and the ACK resets the streak: the flow
        # must complete, not abort.
        sim, bl, sender, done = self._blackholed(
            AbortPolicy(max_consecutive_rtos=5))
        sim.at(700 * US, bl.restore)
        sim.run(until=2_000 * MS)
        assert sender.done and not sender.aborted
        assert sender._consecutive_timeouts == 0


class TestReceiverIdleTimeout:
    def test_receiver_idles_out_when_peer_goes_silent(self):
        # A sender with no abort policy retries forever into a dead
        # uplink; the receiver hears nothing after the first packets and
        # must unregister itself rather than leak its endpoint.
        sim = Simulator()
        topo = incast_star(sim, 1, prop_ps=1 * US)
        bl = topo.net.link_between(topo.senders[0], topo.net.node("sw"))
        sender = start_flow(
            sim, topo.net, FixedWindow(1 << 20), topo.senders[0],
            topo.receivers[0], 256 * 1024, base_rtt_ps=14 * US,
        )
        receiver = topo.receivers[0].endpoints[sender.flow_id]
        sim.at(5 * US, bl.fail)  # mid-flow: permanent blackhole, no repair
        sim.run(until=2_000 * MS)
        assert receiver.idled_out
        assert sender.flow_id not in topo.receivers[0].endpoints
        assert receiver._idle_handle is None
        assert not sender.done and not sender.aborted  # still retrying

    def test_sender_host_crash_tears_down_both_endpoints(self):
        # Crashing the sender's host aborts the sender, which
        # gracefully unregisters the receiver too — no idle timeout
        # needed, no endpoint left on either host.
        sim = Simulator()
        topo = incast_star(sim, 1, prop_ps=1 * US)
        sender = start_flow(
            sim, topo.net, FixedWindow(1 << 20), topo.senders[0],
            topo.receivers[0], 256 * 1024, base_rtt_ps=14 * US,
        )
        receiver = topo.receivers[0].endpoints[sender.flow_id]
        sim.at(5 * US, topo.senders[0].fail)
        sim.run(until=2_000 * MS)
        assert sender.aborted
        assert sender.stats.abort_reason == "host_failed"
        assert not receiver.idled_out  # closed by the abort, not idleness
        assert not topo.senders[0].endpoints
        assert not topo.receivers[0].endpoints

    def test_completed_flow_never_idles_out(self):
        sim = Simulator()
        topo = incast_star(sim, 1, prop_ps=1 * US)
        sender = start_flow(
            sim, topo.net, FixedWindow(1 << 20), topo.senders[0],
            topo.receivers[0], 64 * 1024, base_rtt_ps=14 * US,
        )
        receiver = topo.receivers[0].endpoints[sender.flow_id]
        sim.run(until=2_000 * MS)
        assert sender.done
        assert not receiver.idled_out
        assert sim.peek_time() is None  # no timer left ticking

    def test_idle_timeout_disabled_with_none(self):
        sim = Simulator()
        topo = incast_star(sim, 1, prop_ps=1 * US)
        bl = topo.net.link_between(topo.senders[0], topo.net.node("sw"))
        sender = start_flow(
            sim, topo.net, FixedWindow(1 << 20), topo.senders[0],
            topo.receivers[0], 256 * 1024, base_rtt_ps=14 * US,
            receiver_kwargs={"idle_timeout_ps": None},
        )
        receiver = topo.receivers[0].endpoints[sender.flow_id]
        sim.at(5 * US, bl.fail)  # silence, but the timeout is off
        sim.run(until=2_000 * MS)
        assert not receiver.idled_out
        assert sender.flow_id in topo.receivers[0].endpoints
