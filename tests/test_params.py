"""The paper's Table 2 parameters and derived quantities."""

import pytest

from repro.core.params import UnoParams
from repro.sim.units import MIB, MS, US


class TestTable2Defaults:
    def test_defaults_match_paper(self):
        p = UnoParams()
        assert p.link_gbps == 100.0
        assert p.mtu_bytes == 4096
        assert p.intra_rtt_ps == 14 * US
        assert p.inter_rtt_ps == 2 * MS
        assert p.queue_bytes == 1 * MIB
        assert p.alpha_frac_of_bdp == 0.001
        assert p.qa_beta == 0.5
        assert p.k_fraction_of_intra_bdp == pytest.approx(1 / 7)
        assert p.phantom_drain_fraction == 0.9
        assert (p.ec_data_pkts, p.ec_parity_pkts) == (8, 2)
        assert p.dc_to_wan_ratio == 4.0
        assert (p.red_min_frac, p.red_max_frac) == (0.25, 0.75)

    def test_derived_bdps(self):
        p = UnoParams()
        assert p.intra_bdp_bytes == 175_000           # 14 us x 100 Gbps
        assert p.inter_bdp_bytes == 25_000_000        # 2 ms x 100 Gbps
        assert p.k_bytes == pytest.approx(25_000)
        assert p.rtt_ratio == pytest.approx(2 * MS / (14 * US))

    def test_bdp_and_rtt_selectors(self):
        p = UnoParams()
        assert p.bdp_for(False) == p.intra_bdp_bytes
        assert p.bdp_for(True) == p.inter_bdp_bytes
        assert p.base_rtt_for(True) == p.inter_rtt_ps

    def test_red_and_phantom_factories(self):
        p = UnoParams()
        red = p.red()
        assert (red.min_frac, red.max_frac) == (0.25, 0.75)
        ph = p.phantom()
        assert ph.drain_fraction == 0.9
        assert ph.mark_threshold_bytes >= 8 * p.mtu_bytes
        custom = p.phantom(mark_threshold_bytes=12345)
        assert custom.mark_threshold_bytes == 12345

    def test_validation(self):
        with pytest.raises(ValueError):
            UnoParams(intra_rtt_ps=0)
        with pytest.raises(ValueError):
            UnoParams(intra_rtt_ps=2 * MS, inter_rtt_ps=1 * MS)
        with pytest.raises(ValueError):
            UnoParams(link_gbps=0)
        with pytest.raises(ValueError):
            UnoParams(mtu_bytes=-1)
