"""Annulus extension: QCN CNPs and the fast near-source reaction."""

import pytest

from repro.core.annulus import AnnulusConfig, AnnulusUnoCC, enable_qcn
from repro.core.params import UnoParams
from repro.core.uno import make_unocc
from repro.core.unocc import UnoCCConfig
from repro.sim.engine import Simulator
from repro.sim.packet import CNP, Packet, make_cnp
from repro.sim.switch import QCNConfig
from repro.sim.units import MIB, MS, US
from repro.topology.multidc import MultiDC, MultiDCConfig
from repro.topology.simple import incast_star
from repro.transport.base import start_flow


def annulus_cc(params: UnoParams, **annulus_kw) -> AnnulusUnoCC:
    return AnnulusUnoCC(
        UnoCCConfig(
            alpha_frac_of_bdp=params.alpha_frac_of_bdp,
            beta=params.qa_beta,
            k_bytes=params.k_bytes,
            epoch_period_ps=params.intra_rtt_ps,
        ),
        AnnulusConfig(**annulus_kw),
    )


class TestQCNConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            QCNConfig(threshold_bytes=0)
        with pytest.raises(ValueError):
            QCNConfig(min_interval_ps=0)
        with pytest.raises(ValueError):
            AnnulusConfig(cnp_md=0.0)


class TestSwitchCNPs:
    def test_congested_port_generates_cnp_back_to_source(self):
        params = UnoParams(link_gbps=25.0, queue_bytes=256 * 1024)
        sim = Simulator()
        topo = incast_star(sim, 4, gbps=25.0, prop_ps=1 * US,
                           queue_bytes=256 * 1024, red=params.red())
        sw = topo.net.node("sw")
        sw.qcn = QCNConfig(threshold_bytes=32 * 1024, min_interval_ps=10 * US)
        done = []
        senders = [
            start_flow(sim, topo.net, annulus_cc(params), s,
                       topo.receivers[0], 2 * MIB, base_rtt_ps=14 * US,
                       line_gbps=25.0, seed=i, on_complete=done.append)
            for i, s in enumerate(topo.senders)
        ]
        sim.run(until=4_000 * MS)
        assert len(done) == 4
        assert sw.cnps_sent > 0
        assert sum(s.cc.cnp_reactions for s in senders) > 0

    def test_cnp_rate_limited_per_flow(self):
        sim = Simulator()
        from repro.sim.network import Network

        net = Network(sim, seed=1)
        sw = net.add_switch("sw")
        a = net.add_host("a")
        b = net.add_host("b")
        net.add_link(a, sw, 100.0, 1 * US, 1 << 20)
        net.add_link(sw, b, 100.0, 1 * US, 1 << 20)
        net.build_routes()
        sw.qcn = QCNConfig(threshold_bytes=1, min_interval_ps=100 * US)
        from repro.sim.packet import DATA

        # Pre-fill the sw->b port so every forward sees a congested queue.
        port = net.port_between(sw, b)
        for i in range(10):
            port.enqueue(Packet(DATA, 9, a.node_id, b.node_id, seq=100 + i,
                                size=4096))
        for i in range(5):
            sw.receive(Packet(DATA, 9, a.node_id, b.node_id, seq=i, size=4096))
        assert sw.cnps_sent == 1  # rate limit: one per flow per interval


class TestAnnulusReaction:
    def test_cnp_cuts_window_once_per_interval(self):
        params = UnoParams()
        sim = Simulator()
        cc = annulus_cc(params, cnp_md=0.25)

        class S:
            pass

        s = S()
        s.sim = sim
        s.mss = 4096
        s.cwnd = 100 * 4096.0
        s.base_rtt_ps = params.intra_rtt_ps
        s.line_gbps = 100.0
        s.bdp_bytes = params.intra_bdp_bytes
        s.srtt_ps = float(params.intra_rtt_ps)
        s.pacing_rate_gbps = None
        s.rate_estimate_gbps = 10.0
        cnp = make_cnp(1, switch_src=5, dst=0)
        sim.now = 1 * MS
        cc.on_cnp(s, cnp)
        assert s.cwnd == pytest.approx(75 * 4096)
        cc.on_cnp(s, cnp)  # within the reaction interval: ignored
        assert s.cwnd == pytest.approx(75 * 4096)
        sim.now = 1 * MS + params.intra_rtt_ps + 1
        cc.on_cnp(s, cnp)
        assert s.cwnd == pytest.approx(75 * 4096 * 0.75)
        assert cc.cnp_reactions == 2

    def test_plain_unocc_ignores_cnps(self):
        params = UnoParams()
        cc = make_unocc(params, is_inter_dc=False)

        class S:
            cwnd = 4096.0

        s = S()
        cc.on_cnp(s, make_cnp(1, 5, 0))  # default hook: no-op
        assert s.cwnd == 4096.0


class TestEnableQCN:
    def test_arms_all_switches(self):
        sim = Simulator()
        topo = MultiDC(sim, MultiDCConfig(k=4, n_border_links=2))
        n = enable_qcn(topo.net, QCNConfig())
        assert n == len(topo.net.switches)
        assert all(sw.qcn is not None for sw in topo.net.switches)

    def test_name_subset(self):
        sim = Simulator()
        topo = MultiDC(sim, MultiDCConfig(k=4, n_border_links=2))
        n = enable_qcn(topo.net, QCNConfig(),
                       only_switch_names=["border0", "border1"])
        assert n == 2
        assert topo.borders[0].qcn is not None
        assert topo.dcs[0].cores[0].qcn is None
