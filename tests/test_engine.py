import pytest

from repro.sim.engine import Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.at(300, fired.append, "c")
        sim.at(100, fired.append, "a")
        sim.at(200, fired.append, "b")
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_ties_fire_in_scheduling_order(self):
        sim = Simulator()
        fired = []
        for tag in "abcde":
            sim.at(50, fired.append, tag)
        sim.run()
        assert fired == list("abcde")

    def test_after_is_relative(self):
        sim = Simulator()
        seen = []
        sim.at(100, lambda: sim.after(50, lambda: seen.append(sim.now)))
        sim.run()
        assert seen == [150]

    def test_cannot_schedule_in_past(self):
        sim = Simulator()
        sim.at(100, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.at(50, lambda: None)

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.after(-1, lambda: None)


class TestRun:
    def test_run_until_stops_and_advances_clock(self):
        sim = Simulator()
        fired = []
        sim.at(100, fired.append, 1)
        sim.at(900, fired.append, 2)
        n = sim.run(until=500)
        assert n == 1
        assert fired == [1]
        assert sim.now == 500
        sim.run()
        assert fired == [1, 2]
        assert sim.now == 900

    def test_max_events(self):
        sim = Simulator()
        for i in range(10):
            sim.at(i + 1, lambda: None)
        assert sim.run(max_events=3) == 3
        assert sim.now == 3

    def test_events_scheduled_during_run_execute(self):
        sim = Simulator()
        count = [0]

        def chain():
            count[0] += 1
            if count[0] < 5:
                sim.after(10, chain)

        sim.at(0, chain)
        sim.run()
        assert count[0] == 5
        assert sim.now == 40


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        handle = sim.at(100, fired.append, "x")
        handle.cancel()
        sim.run()
        assert fired == []

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        handle = sim.at(100, lambda: None)
        handle.cancel()
        handle.cancel()
        sim.run()

    def test_peek_time_skips_cancelled(self):
        sim = Simulator()
        h1 = sim.at(100, lambda: None)
        sim.at(200, lambda: None)
        h1.cancel()
        assert sim.peek_time() == 200

    def test_peek_time_empty(self):
        assert Simulator().peek_time() is None


class TestCounters:
    def test_events_executed(self):
        sim = Simulator()
        for i in range(4):
            sim.at(i, lambda: None)
        sim.run()
        assert sim.events_executed == 4

    def test_step(self):
        sim = Simulator()
        fired = []
        sim.at(10, fired.append, 1)
        sim.at(20, fired.append, 2)
        assert sim.step() is True
        assert fired == [1]
        assert sim.step() is True
        assert sim.step() is False
