import pytest

from repro.sim.engine import Simulator
from repro.sim.link import Link
from repro.sim.packet import DATA, Packet
from repro.sim.units import US


class Sink:
    def __init__(self):
        self.received = []

    def receive(self, pkt):
        self.received.append(pkt)


def pkt(seq=0):
    return Packet(DATA, 1, 0, 1, seq=seq, size=4096)


class TestPropagation:
    def test_delivery_after_prop_delay(self):
        sim = Simulator()
        link = Link(sim, 100.0, prop_ps=5 * US)
        sink = Sink()
        link.connect(sink)
        sim.at(0, link.transmit, pkt())
        sim.run()
        assert sim.now == 5 * US
        assert len(sink.received) == 1
        assert link.delivered_pkts == 1

    def test_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Link(sim, 0.0, 10)
        with pytest.raises(ValueError):
            Link(sim, 10.0, -1)


class TestFailure:
    def test_failed_link_drops_at_transmit(self):
        sim = Simulator()
        link = Link(sim, 100.0, 1 * US)
        sink = Sink()
        link.connect(sink)
        link.fail()
        link.transmit(pkt())
        sim.run()
        assert sink.received == []
        assert link.failed_drops == 1

    def test_failure_kills_packets_in_flight(self):
        sim = Simulator()
        link = Link(sim, 100.0, 10 * US)
        sink = Sink()
        link.connect(sink)
        sim.at(0, link.transmit, pkt())
        sim.at(5 * US, link.fail)  # while the packet is propagating
        sim.run()
        assert sink.received == []
        assert link.failed_drops == 1

    def test_restore_resumes_delivery(self):
        sim = Simulator()
        link = Link(sim, 100.0, 1 * US)
        sink = Sink()
        link.connect(sink)
        link.fail()
        link.restore()
        link.transmit(pkt())
        sim.run()
        assert len(sink.received) == 1


class TestLossModel:
    def test_loss_model_drops_selected_packets(self):
        sim = Simulator()
        link = Link(sim, 100.0, 1 * US)
        sink = Sink()
        link.connect(sink)
        link.loss_model = lambda p, now: p.seq % 2 == 0
        for i in range(6):
            link.transmit(pkt(seq=i))
        sim.run()
        assert [p.seq for p in sink.received] == [1, 3, 5]
        assert link.lost_pkts == 3
