"""End-to-end integration tests across the whole stack.

These exercise the exact paths the paper's experiments use: mixed
traffic on the two-DC topology per scheme, failure recovery with the
full Uno stack, and cross-checks between transports sharing a
bottleneck.
"""

import random

import pytest

from repro.analysis.fct import split_intra_inter, summarize_fcts
from repro.core import UnoParams, start_uno_flow
from repro.experiments.harness import (
    SCHEMES,
    ExperimentScale,
    build_multidc,
    make_launcher,
    run_specs,
)
from repro.sim.engine import Simulator
from repro.sim.failures import (
    GilbertElliottLoss,
    calibrate_gilbert_elliott,
    schedule_bidirectional_failure,
)
from repro.sim.units import MIB, MS
from repro.workloads.alibaba_wan import ALIBABA_WAN_CDF
from repro.workloads.generator import PoissonTraffic, TrafficConfig
from repro.workloads.patterns import permutation_specs
from repro.workloads.websearch import WEBSEARCH_CDF


SCALE = ExperimentScale.quick()


class TestRealisticWorkloadPerScheme:
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_small_realistic_mix_completes(self, scheme):
        sim = Simulator()
        params = SCALE.params()
        topo = build_multidc(sim, scheme, params, SCALE, seed=11)
        traffic = PoissonTraffic(
            topo,
            TrafficConfig(
                load=0.3,
                duration_ps=4 * MS,
                intra_cdf=WEBSEARCH_CDF.scaled(1 / 64),
                inter_cdf=ALIBABA_WAN_CDF.scaled(1 / 64),
                max_flows=60,
                seed=13,
            ),
        )
        specs = traffic.generate()
        launcher = make_launcher(scheme, sim, topo, params, seed=17)
        senders = run_specs(sim, specs, launcher, SCALE.horizon_ps)
        stats = [s.stats for s in senders]
        intra, inter = split_intra_inter(stats)
        assert summarize_fcts(stats).count == len(specs)
        # FCT sanity: nothing can beat its propagation floor. Intra pairs
        # may share an edge switch (4 links round trip at intra_rtt/12
        # each); every inter path crosses the border link.
        for s in intra:
            assert s.fct_ps >= 4 * (params.intra_rtt_ps // 12)
        for s in inter:
            assert s.fct_ps >= params.inter_rtt_ps * 0.9


class TestPermutationPerScheme:
    @pytest.mark.parametrize("scheme", ["uno", "gemini"])
    def test_permutation_completes(self, scheme):
        sim = Simulator()
        params = SCALE.params()
        topo = build_multidc(sim, scheme, params, SCALE, seed=21)
        specs = permutation_specs(topo, MIB, random.Random(23))
        launcher = make_launcher(scheme, sim, topo, params, seed=27)
        senders = run_specs(sim, specs, launcher, SCALE.horizon_ps)
        assert len(senders) == len(topo.all_hosts())


class TestUnoUnderFailures:
    def test_border_link_failure_recovery(self):
        """Full Uno finishes inter-DC flows despite a WAN link dying."""
        sim = Simulator()
        params = SCALE.params()
        topo = build_multidc(sim, "uno", params, SCALE, seed=31)
        ab, ba = topo.border_links[0]
        schedule_bidirectional_failure(sim, ab, ba, fail_at_ps=1 * MS)
        done = []
        senders = [
            start_uno_flow(sim, topo.net, topo.host(0, i), topo.host(1, i),
                           2 * MIB, params, seed=31 + i,
                           on_complete=done.append)
            for i in range(4)
        ]
        sim.run(until=SCALE.horizon_ps)
        assert len(done) == 4

    def test_correlated_loss_recovery(self):
        sim = Simulator()
        params = SCALE.params()
        topo = build_multidc(sim, "uno", params, SCALE, seed=37)
        ge = calibrate_gilbert_elliott(5e-3, mean_burst_packets=2.0)
        for i, (ab, _ba) in enumerate(topo.border_links):
            ab.loss_model = GilbertElliottLoss(ge, seed=41 + i)
        done = []
        sender = start_uno_flow(
            sim, topo.net, topo.host(0, 0), topo.host(1, 0), 4 * MIB,
            params, seed=43, on_complete=done.append,
        )
        sim.run(until=SCALE.horizon_ps)
        assert done
        # With (8,2) EC most single losses are absorbed without NACKs.
        assert sender.stats.nacks_received <= sender.stats.data_pkts_sent // 8

    def test_ec_reduces_retransmissions_under_loss(self):
        """Ablation: the same lossy path with and without erasure coding —
        EC must cut retransmissions (the paper's core UnoRC claim)."""

        def run(use_rc: bool) -> int:
            sim = Simulator()
            params = SCALE.params()
            topo = build_multidc(sim, "uno", params, SCALE, seed=47)
            ge = calibrate_gilbert_elliott(5e-3, mean_burst_packets=1.5)
            for i, (ab, _ba) in enumerate(topo.border_links):
                ab.loss_model = GilbertElliottLoss(ge, seed=53 + i)
            done = []
            sender = start_uno_flow(
                sim, topo.net, topo.host(0, 0), topo.host(1, 0), 4 * MIB,
                params, use_rc=use_rc, seed=59, on_complete=done.append,
            )
            sim.run(until=SCALE.horizon_ps)
            assert done
            return sender.stats.retransmissions

        assert run(use_rc=True) < run(use_rc=False)


class TestCrossSchemeSanity:
    def test_phantom_keeps_queue_lower_than_no_phantom(self):
        """UnoCC+phantom must hold a long-lived incast's bottleneck queue
        below what Gemini (physical RED only) sustains."""
        from repro.sim.trace import QueueMonitor
        from repro.workloads.patterns import incast_specs

        def mean_queue(scheme: str) -> float:
            sim = Simulator()
            params = SCALE.params()
            topo = build_multidc(sim, scheme, params, SCALE, seed=61)
            specs = incast_specs(topo, 4, 0, 64 * MIB)
            dst = specs[0].dst
            edge = topo.dcs[dst.dc].edges[0][0]
            port = topo.net.port_between(edge, dst)
            mon = QueueMonitor(sim, port, interval_ps=100_000_000)
            launcher = make_launcher(scheme, sim, topo, params, seed=67)
            for i, spec in enumerate(specs):
                launcher(spec, i, lambda _s: None)
            sim.run(until=30 * MS)
            warm = [s[1] for s in mon.samples if s[0] > 10 * MS]
            return sum(warm) / len(warm)

        assert mean_queue("uno") < mean_queue("gemini")
