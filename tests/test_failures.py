import random

import pytest

from repro.sim.engine import Simulator
from repro.sim.failures import (
    BernoulliLoss,
    GilbertElliottLoss,
    GilbertElliottParams,
    calibrate_gilbert_elliott,
    schedule_bidirectional_failure,
    schedule_link_failure,
)
from repro.sim.link import Link
from repro.sim.packet import DATA, Packet
from repro.sim.units import US


def pkt():
    return Packet(DATA, 1, 0, 1, seq=0, size=100)


class TestGilbertElliottParams:
    def test_validation(self):
        with pytest.raises(ValueError):
            GilbertElliottParams(p_good_to_bad=1.5, p_bad_to_good=0.1)

    def test_stationary_and_marginal(self):
        p = GilbertElliottParams(
            p_good_to_bad=0.01, p_bad_to_good=0.99, loss_good=0.0, loss_bad=0.5
        )
        assert p.stationary_bad == pytest.approx(0.01)
        assert p.marginal_loss_rate == pytest.approx(0.005)


class TestCalibration:
    @pytest.mark.parametrize("target", [5.01e-5, 1.22e-5, 1e-3])
    def test_marginal_rate_matches_target(self, target):
        params = calibrate_gilbert_elliott(target, mean_burst_packets=2.5)
        assert params.marginal_loss_rate == pytest.approx(target, rel=1e-9)

    def test_empirical_rate_close_to_target(self):
        target = 2e-3
        params = calibrate_gilbert_elliott(target, mean_burst_packets=2.0)
        model = GilbertElliottLoss(params, seed=7)
        n = 500_000
        losses = sum(model(pkt(), 0) for _ in range(n))
        assert losses / n == pytest.approx(target, rel=0.2)

    def test_losses_are_burstier_than_bernoulli(self):
        """The paper's Table 1 point: correlated multi-loss within
        10-packet blocks far exceeds the independence prediction."""
        target = 5e-3

        def multi_loss_blocks(model):
            multi = 0
            for _ in range(60_000):
                losses_in_block = sum(model(pkt(), 0) for _ in range(10))
                if losses_in_block >= 2:
                    multi += 1
            return multi

        ge = GilbertElliottLoss(
            calibrate_gilbert_elliott(target, mean_burst_packets=3.0), seed=3
        )
        bern = BernoulliLoss(target, seed=3)
        assert multi_loss_blocks(ge) > 3 * multi_loss_blocks(bern)

    def test_invalid_targets(self):
        with pytest.raises(ValueError):
            calibrate_gilbert_elliott(0.0)
        with pytest.raises(ValueError):
            calibrate_gilbert_elliott(0.9, loss_bad=0.5)  # pb >= 1


class TestBernoulli:
    def test_validation(self):
        with pytest.raises(ValueError):
            BernoulliLoss(1.5)

    def test_rate(self):
        model = BernoulliLoss(0.3, seed=1)
        n = 20_000
        losses = sum(model(pkt(), 0) for _ in range(n))
        assert losses / n == pytest.approx(0.3, rel=0.1)


class TestScheduledFailures:
    def test_fail_and_repair(self):
        sim = Simulator()
        link = Link(sim, 100.0, 1 * US)
        schedule_link_failure(sim, link, fail_at_ps=10 * US, repair_after_ps=5 * US)
        sim.run(until=9 * US)
        assert link.up
        sim.run(until=12 * US)
        assert not link.up
        sim.run(until=20 * US)
        assert link.up

    def test_bidirectional(self):
        sim = Simulator()
        ab = Link(sim, 100.0, 1 * US)
        ba = Link(sim, 100.0, 1 * US)
        schedule_bidirectional_failure(sim, ab, ba, fail_at_ps=1 * US)
        sim.run()
        assert not ab.up and not ba.up

    def test_failing_an_already_down_link_is_skipped(self):
        """Two overlapping schedules must not double-count the failure
        (or re-notify the control plane); the second fail is a no-op
        recorded as ``failure/skipped``."""
        from repro.obs import enable

        sim = Simulator()
        enable(sim, event_topics=("failure",), profile=False)
        link = Link(sim, 100.0, 1 * US, name="l")
        schedule_link_failure(sim, link, fail_at_ps=1 * US,
                              repair_after_ps=10 * US)
        schedule_link_failure(sim, link, fail_at_ps=2 * US)  # already down
        sim.run(until=5 * US)
        assert not link.up
        assert link.failures == 1
        assert sim.obs.metrics.value("failures.skipped") == 1
        assert sim.obs.events.count("failure", "skipped") == 1

    def test_restore_is_idempotent(self):
        sim = Simulator()
        link = Link(sim, 100.0, 1 * US)
        calls = []
        link.on_state_change = calls.append
        link.fail()
        link.fail()      # no second transition
        link.restore()
        link.restore()   # no second transition
        assert link.failures == 1
        assert len(calls) == 2  # one down, one up
