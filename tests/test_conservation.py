"""Packet-conservation invariants of the simulator datapath.

Property: every byte a sender puts on the wire is accounted for exactly
once — delivered, dropped at a queue, lost to a loss model, or killed by
a link failure. Holes in this accounting are how simulators silently lie.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Simulator
from repro.sim.failures import BernoulliLoss
from repro.sim.units import MIB, US
from repro.topology.multidc import MultiDC, MultiDCConfig
from repro.topology.simple import incast_star
from repro.transport.base import start_flow
from repro.transport.dctcp import DCTCP


def link_accounting(net):
    delivered = lost = failed = 0
    for link in net.links:
        delivered += link.delivered_pkts
        lost += link.lost_pkts
        failed += link.failed_drops
    return delivered, lost, failed


def total_tx_pkts(net):
    """Packets fully serialized by every port (= packets links received)."""
    n = 0
    for node in net.nodes:
        for port in node.ports.values():
            n += port.enqueued_pkts - port.drops - len(port._fifo)
    return n


class TestConservation:
    @settings(deadline=None, max_examples=10)
    @given(
        n_senders=st.integers(min_value=1, max_value=4),
        loss_permille=st.integers(min_value=0, max_value=100),
        seed=st.integers(min_value=0, max_value=10**6),
    )
    def test_every_transmitted_packet_is_accounted(
        self, n_senders, loss_permille, seed
    ):
        sim = Simulator()
        topo = incast_star(sim, n_senders, prop_ps=1 * US)
        if loss_permille:
            bl = topo.bottleneck.link
            bl.loss_model = BernoulliLoss(loss_permille / 1000, seed=seed)
        done = []
        for i, s in enumerate(topo.senders):
            start_flow(sim, topo.net, DCTCP(), s, topo.receivers[0],
                       256 * 1024, base_rtt_ps=14 * US, seed=seed + i,
                       on_complete=done.append)
        sim.run(until=10**12)
        assert len(done) == n_senders
        delivered, lost, failed = link_accounting(topo.net)
        assert delivered + lost + failed == total_tx_pkts(topo.net)
        assert failed == 0

    def test_accounting_with_failures_and_loss_on_multidc(self):
        from repro.core import UnoParams, start_uno_flow
        from repro.sim.failures import schedule_bidirectional_failure

        sim = Simulator()
        params = UnoParams(link_gbps=25.0, queue_bytes=256 * 1024)
        topo = MultiDC(sim, MultiDCConfig(
            k=4, gbps=25.0, n_border_links=4,
            intra_rtt_ps=params.intra_rtt_ps,
            inter_rtt_ps=params.inter_rtt_ps,
            queue_bytes=256 * 1024, red=params.red(),
            phantom=params.phantom(), seed=3,
        ))
        ab, ba = topo.border_links[0]
        ab.loss_model = BernoulliLoss(0.01, seed=7)
        schedule_bidirectional_failure(sim, *topo.border_links[1],
                                       fail_at_ps=1_000_000_000,
                                       repair_after_ps=5_000_000_000)
        done = []
        for i in range(4):
            start_uno_flow(sim, topo.net, topo.host(0, i), topo.host(1, i),
                           MIB, params, seed=11 + i, on_complete=done.append)
        sim.run(until=4_000_000_000_000)
        assert len(done) == 4
        delivered, lost, failed = link_accounting(topo.net)
        assert delivered + lost + failed == total_tx_pkts(topo.net)
        assert lost > 0  # the loss model actually engaged

    def test_registry_conservation_on_dumbbell(self):
        """Registry-only accounting: injected == delivered + dropped +
        lost + in-flight, computed purely from the metrics snapshot."""
        from repro.obs import enable
        from repro.topology.simple import dumbbell

        sim = Simulator()
        obs = enable(sim)
        topo = dumbbell(sim, 2, prop_ps=1 * US, queue_bytes=64 * 1024)
        topo.bottleneck.link.loss_model = BernoulliLoss(0.02, seed=5)
        done = []
        for i, (s, r) in enumerate(zip(topo.senders, topo.receivers)):
            start_flow(sim, topo.net, DCTCP(), s, r, 256 * 1024,
                       base_rtt_ps=14 * US, seed=i, on_complete=done.append)
        sim.run(until=10**12)
        assert len(done) == 2

        snap = obs.metrics.snapshot()
        ports = snap["port"].values()
        links = snap["link"].values()
        transmitted = sum(p["enqueued_pkts"] - p["drops"] - p["queued_pkts"]
                          for p in ports)
        accounted = sum(l["delivered_pkts"] + l["lost_pkts"]
                        + l["failed_drops"] for l in links)
        assert transmitted == accounted
        assert sum(l["lost_pkts"] for l in links) > 0
        # And the registry view agrees with the objects it mirrors.
        delivered, lost, failed = link_accounting(topo.net)
        assert accounted == delivered + lost + failed

    def test_registry_conservation_on_multidc_with_failure(self):
        from repro.core import UnoParams, start_uno_flow
        from repro.obs import enable
        from repro.sim.failures import schedule_bidirectional_failure

        sim = Simulator()
        obs = enable(sim)
        params = UnoParams(link_gbps=25.0, queue_bytes=256 * 1024)
        topo = MultiDC(sim, MultiDCConfig(
            k=4, gbps=25.0, n_border_links=4,
            intra_rtt_ps=params.intra_rtt_ps,
            inter_rtt_ps=params.inter_rtt_ps,
            queue_bytes=256 * 1024, red=params.red(),
            phantom=params.phantom(), seed=3,
        ))
        schedule_bidirectional_failure(sim, *topo.border_links[1],
                                       fail_at_ps=1_000_000_000,
                                       repair_after_ps=5_000_000_000)
        done = []
        for i in range(2):
            start_uno_flow(sim, topo.net, topo.host(0, i), topo.host(1, i),
                           MIB, params, seed=11 + i, on_complete=done.append)
        sim.run(until=4_000_000_000_000)
        assert len(done) == 2

        snap = obs.metrics.snapshot()
        transmitted = sum(p["enqueued_pkts"] - p["drops"] - p["queued_pkts"]
                          for p in snap["port"].values())
        accounted = sum(l["delivered_pkts"] + l["lost_pkts"]
                        + l["failed_drops"] for l in snap["link"].values())
        assert transmitted == accounted
        assert snap["failures"]["link_down"] == 2
        assert snap["failures"]["link_up"] == 2
        assert snap["transport"]["flows_completed"] == 2

    def test_host_rx_matches_link_delivery_to_hosts(self):
        sim = Simulator()
        topo = incast_star(sim, 2, prop_ps=1 * US)
        done = []
        for i, s in enumerate(topo.senders):
            start_flow(sim, topo.net, DCTCP(), s, topo.receivers[0],
                       128 * 1024, base_rtt_ps=14 * US, seed=i,
                       on_complete=done.append)
        sim.run(until=10**12)
        assert len(done) == 2
        host_rx = sum(h.rx_pkts for h in topo.net.hosts)
        to_hosts = sum(
            link.delivered_pkts
            for link in topo.net.links
            if link.dst in topo.net.hosts
        )
        assert host_rx == to_hosts
