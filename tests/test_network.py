import pytest

from repro.sim.engine import Simulator
from repro.sim.network import Network
from repro.sim.packet import DATA, Packet
from repro.sim.units import US


class TestConstruction:
    def test_duplicate_names_rejected(self):
        net = Network(Simulator())
        net.add_host("h")
        with pytest.raises(ValueError):
            net.add_host("h")

    def test_node_lookup(self):
        net = Network(Simulator())
        h = net.add_host("alpha")
        assert net.node("alpha") is h

    def test_parallel_links_get_distinct_ports(self):
        net = Network(Simulator())
        a = net.add_switch("a")
        b = net.add_switch("b")
        net.add_link(a, b, 100.0, 1, 1000)
        net.add_link(a, b, 100.0, 1, 1000)
        ports = net.ports_between(a, b)
        assert len(ports) == 2
        assert ports[0] is not ports[1]
        assert net.link_between(a, b, 0) is not net.link_between(a, b, 1)

    def test_port_between_missing_raises(self):
        net = Network(Simulator())
        a = net.add_host("a")
        b = net.add_host("b")
        with pytest.raises(LookupError):
            net.port_between(a, b)


class TestRouting:
    def _line(self):
        """h1 - s1 - s2 - h2"""
        sim = Simulator()
        net = Network(sim, seed=1)
        h1 = net.add_host("h1")
        h2 = net.add_host("h2")
        s1 = net.add_switch("s1")
        s2 = net.add_switch("s2")
        net.add_link(h1, s1, 100.0, 1 * US, 1_000_000)
        net.add_link(s1, s2, 100.0, 1 * US, 1_000_000)
        net.add_link(s2, h2, 100.0, 1 * US, 1_000_000)
        net.build_routes()
        return sim, net, h1, h2, s1, s2

    def test_nexthops_point_toward_destination(self):
        sim, net, h1, h2, s1, s2 = self._line()
        assert s1.nexthops[h2.node_id] == (net.port_between(s1, s2),)
        assert s2.nexthops[h1.node_id] == (net.port_between(s2, s1),)

    def test_end_to_end_delivery(self):
        sim, net, h1, h2, s1, s2 = self._line()
        got = []
        h2.register(5, type("E", (), {"on_packet": staticmethod(got.append)})())
        pkt = Packet(DATA, 5, h1.node_id, h2.node_id, seq=0, size=4096)
        h1.send(pkt)
        sim.run()
        assert len(got) == 1
        assert got[0].hops == 2

    def test_hosts_do_not_transit(self):
        """A host in the middle must not be used as a through-path."""
        sim = Simulator()
        net = Network(sim, seed=1)
        h1 = net.add_host("h1")
        hm = net.add_host("hm")  # would be a 'shortcut' if hosts forwarded
        h2 = net.add_host("h2")
        s1 = net.add_switch("s1")
        s2 = net.add_switch("s2")
        s3 = net.add_switch("s3")
        net.add_link(h1, s1, 100.0, 1, 1_000_000)
        net.add_link(s1, hm, 100.0, 1, 1_000_000)
        net.add_link(hm, s2, 100.0, 1, 1_000_000)
        net.add_link(s1, s3, 100.0, 1, 1_000_000)
        net.add_link(s3, s2, 100.0, 1, 1_000_000)
        net.add_link(s2, h2, 100.0, 1, 1_000_000)
        net.build_routes()
        # s1's route to h2 must go via s3, never via the host hm.
        assert s1.nexthops[h2.node_id] == (net.port_between(s1, s3),)

    def test_parallel_links_are_equal_cost_nexthops(self):
        sim = Simulator()
        net = Network(sim, seed=1)
        h1 = net.add_host("h1")
        h2 = net.add_host("h2")
        s1 = net.add_switch("s1")
        s2 = net.add_switch("s2")
        net.add_link(h1, s1, 100.0, 1, 1_000_000)
        net.add_link(s1, s2, 100.0, 1, 1_000_000)
        net.add_link(s1, s2, 100.0, 1, 1_000_000)
        net.add_link(s1, s2, 100.0, 1, 1_000_000)
        net.add_link(s2, h2, 100.0, 1, 1_000_000)
        net.build_routes()
        assert len(s1.nexthops[h2.node_id]) == 3

    def test_ensure_routes_rebuilds_after_topology_change(self):
        sim, net, h1, h2, s1, s2 = self._line()
        h3 = net.add_host("h3")
        net.add_link(s2, h3, 100.0, 1 * US, 1_000_000)
        net.ensure_routes()
        assert h3.node_id in s1.nexthops

    def test_total_drops_aggregates(self):
        sim, net, h1, h2, s1, s2 = self._line()
        assert net.total_drops() == 0
        port = net.port_between(s1, s2)
        port.drops = 3
        assert net.total_drops() == 3
