"""Cross-shard trace aggregation (repro.obs.stream), the campaign
progress stream, and the dashboard's incremental consumer.

The load-bearing guarantees:

- the merged trace is canonically ps-ordered and stable: sorted by
  ``(t, shard, per-shard position)``, so re-merging the same inputs is
  byte-identical;
- the aggregator conserves events: everything a shard emitted is
  received and merged, and any discrepancy surfaces as a violation;
- a flow whose sender and receiver live in different shards stitches
  into one timeline (``cross_shard_flows`` finds it);
- the campaign stream and the dashboard tail agree on the record
  vocabulary, including torn final lines from a crashed writer.
"""

import importlib.util
import json
from pathlib import Path

import pytest

from repro.experiments.progress import CampaignStream
from repro.obs.events import read_jsonl
from repro.obs.stream import (
    StreamBufferSink,
    TraceAggregator,
    cross_shard_flows,
    flow_timeline,
    flows_by_shard,
    merge_streams,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


def _load_dashboard():
    spec = importlib.util.spec_from_file_location(
        "dashboard", REPO_ROOT / "tools" / "dashboard.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def ev(t, shard, flow, kind="point", **extra):
    out = {"topic": "span", "kind": kind, "t": t, "flow": flow,
           "shard": shard}
    out.update(extra)
    return out


class TestMergeStreams:
    def test_orders_by_time_then_shard_then_position(self):
        s0 = [ev(10, 0, 1), ev(30, 0, 1)]
        s1 = [ev(10, 1, 2), ev(20, 1, 2)]
        merged = merge_streams([(0, s0), (1, s1)])
        assert [(e["t"], e["shard"]) for e in merged] == \
            [(10, 0), (10, 1), (20, 1), (30, 0)]

    def test_stable_within_shard_at_equal_times(self):
        stream = [ev(5, 0, 1, seq=i) for i in range(4)]
        merged = merge_streams([(0, stream)])
        assert [e["seq"] for e in merged] == [0, 1, 2, 3]

    def test_untagged_events_sort_before_shards(self):
        merged = merge_streams([(None, [ev(7, None, 1)]),
                                (0, [ev(7, 0, 2)])])
        assert [e["flow"] for e in merged] == [1, 2]


class TestStreamBufferSink:
    def test_write_drain_cycle(self):
        sink = StreamBufferSink()
        sink.write({"t": 1})
        sink.write({"t": 2})
        assert len(sink) == 2
        assert [e["t"] for e in sink.drain()] == [1, 2]
        assert len(sink) == 0
        assert sink.drain() == []
        sink.write({"t": 3})
        assert [e["t"] for e in sink.drain()] == [3]


class TestTraceAggregator:
    def test_incremental_batches_merge_ordered(self):
        agg = TraceAggregator()
        agg.add_events(0, [ev(10, 0, 1), ev(30, 0, 1)])
        agg.add_events(1, [ev(20, 1, 2)])
        agg.add_events(0, [ev(40, 0, 1)])
        assert agg.total_in == 4
        assert [e["t"] for e in agg.merged()] == [10, 20, 30, 40]
        summary = agg.summary()
        assert summary["events_merged"] == 4
        assert summary["events_in"] == {"0": 3, "1": 1}

    def test_conservation_clean_and_violated(self):
        agg = TraceAggregator()
        agg.add_events(0, [ev(1, 0, 1), ev(2, 0, 1)])
        assert agg.conservation({0: 2}) == []
        violations = agg.conservation({0: 3, 1: 1})
        assert len(violations) == 2  # shard 0 short, shard 1 missing
        assert any("shard 0" in v for v in violations)
        assert any("shard 1" in v for v in violations)

    def test_write_and_read_back(self, tmp_path):
        agg = TraceAggregator()
        agg.add_events(1, [ev(5, 1, 9)])
        agg.add_events(0, [ev(3, 0, 9)])
        path = tmp_path / "trace.jsonl"
        agg.write(path)
        back = read_jsonl(path)
        assert [e["t"] for e in back] == [3, 5]
        # add_file round-trips into a second aggregator.
        agg2 = TraceAggregator()
        agg2.add_file("merged", path)
        assert agg2.total_in == 2

    def test_cross_shard_flow_stitching(self):
        events = [
            ev(10, 0, 1, kind="start"),
            ev(15, 1, 1, kind="first_data"),
            ev(20, 0, 1, kind="flow", outcome="complete"),
            ev(12, 0, 2, kind="start"),
            ev(13, 0, 2, kind="flow"),
        ]
        assert cross_shard_flows(events) == [1]
        by_flow = flows_by_shard(events)
        assert by_flow[1] == {0, 1} and by_flow[2] == {0}
        timeline = flow_timeline(events, 1)
        assert [e["t"] for e in timeline] == [10, 15, 20]
        assert {e["shard"] for e in timeline} == {0, 1}


class TestCampaignStream:
    def test_record_vocabulary_round_trips(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        clock_t = [100.0]
        with CampaignStream(path, clock=lambda: clock_t[0]) as stream:
            stream.campaign_start(3, campaign="quick")
            clock_t[0] += 1
            stream.point("fig1:a", "ok", 1.25)
            stream.point("fig1:b", "error", 0.5)
            stream.retry("fig1:b", 1, "error")
            stream.point("fig1:b", "ok", 0.75, cached=False)
            stream.campaign_end(3, 0)
        records = read_jsonl(path)
        assert [r["kind"] for r in records] == [
            "campaign_start", "point", "point", "retry", "point",
            "campaign_end"]
        assert records[0]["total"] == 3
        assert records[0]["campaign"] == "quick"
        assert records[0]["ts"] == 100.0
        assert records[1]["ts"] == 101.0
        assert records[3]["attempt"] == 1
        assert records[-1] == {"kind": "campaign_end", "ts": 101.0,
                               "done": 3, "failed": 0}

    def test_lines_flushed_as_written(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        stream = CampaignStream(path)
        stream.campaign_start(1)
        # Readable before close: the crash-safety contract.
        assert len(read_jsonl(path)) == 1
        stream.close()
        stream.close()  # idempotent
        stream.emit("point")  # no-op after close
        assert len(read_jsonl(path)) == 1


class TestDashboardConsumer:
    def test_tail_handles_torn_final_line(self, tmp_path):
        dash = _load_dashboard()
        path = tmp_path / "campaign.jsonl"
        tail = dash.JSONLTail(path)
        assert tail.poll() == []  # file may not exist yet
        with open(path, "w") as fh:
            fh.write('{"kind":"campaign_start","total":2}\n')
            fh.write('{"kind":"point","status"')  # torn mid-write
        recs = tail.poll()
        assert [r["kind"] for r in recs] == ["campaign_start"]
        with open(path, "a") as fh:
            fh.write(':"ok"}\n')
        recs = tail.poll()
        assert [r["kind"] for r in recs] == ["point"]
        assert recs[0]["status"] == "ok"
        assert tail.poll() == []

    def test_campaign_state_folds_stream(self, tmp_path):
        dash = _load_dashboard()
        path = tmp_path / "campaign.jsonl"
        with CampaignStream(path) as stream:
            stream.campaign_start(2, campaign="demo")
            stream.point("a", "ok", 0.1, cached=True)
            stream.retry("b", 1, "timeout")
            stream.point("b", "error", 0.2)
            stream.campaign_end(2, 1)
        state = dash.CampaignState()
        for rec in dash.JSONLTail(path).poll():
            state.feed(rec)
        assert state.name == "demo"
        assert (state.total, state.done, state.failed) == (2, 2, 1)
        assert state.cached == 1 and state.retries == 1
        assert state.ended and not state.ok

    def test_render_and_gate_on_campaign_dir(self, tmp_path, capsys):
        dash = _load_dashboard()
        out = tmp_path / "out"
        (out / "telemetry").mkdir(parents=True)
        (out / "summaries").mkdir()
        with CampaignStream(out / "telemetry" / "campaign.jsonl") as s:
            s.campaign_start(1, campaign="demo")
            s.point("a", "ok", 0.1)
            s.campaign_end(1, 0)
        (out / "summaries" / "chaos-demo.json").write_text(json.dumps({
            "n_points": 2, "total_violations": 0,
            "all_flows_terminal": True}))
        html_path = tmp_path / "report.html"
        rc = dash.main([str(out), "--html", str(html_path),
                        "--bench-dir", str(tmp_path / "nowhere")])
        assert rc == 0
        text = capsys.readouterr().out
        assert "campaign demo" in text and "gate: OK" in text
        report = html_path.read_text()
        assert "chaos-demo" in report and "OK" in report
        # A chaos violation flips the gate.
        (out / "summaries" / "chaos-demo.json").write_text(json.dumps({
            "n_points": 2, "total_violations": 3,
            "all_flows_terminal": False}))
        assert dash.main([str(out)]) == 1

    def test_empty_out_dir_renders_stubs_and_writes_html(
            self, tmp_path, capsys):
        """Graceful degradation: no campaign.jsonl, no summaries, no
        BENCH data — every section renders a stub and the HTML report
        is still written."""
        dash = _load_dashboard()
        out = tmp_path / "empty_out"
        out.mkdir()
        html_path = tmp_path / "report.html"
        rc = dash.main([str(out), "--html", str(html_path),
                        "--bench-dir", str(tmp_path / "nowhere")])
        assert rc == 0  # nothing failed; nothing to gate on
        text = capsys.readouterr().out
        assert "(no campaign.jsonl yet)" in text
        assert "(no chaos summaries yet)" in text
        assert "no BENCH_*.json" in text
        report = html_path.read_text()
        assert "No campaign stream found" in report
        assert "No chaos summaries yet" in report
        assert "No BENCH_*.json" in report

    def test_corrupt_bench_records_tolerated(self, tmp_path):
        """Non-dict history lines and rate-less records render as data
        gaps, not crashes."""
        dash = _load_dashboard()
        bench = tmp_path / "bench"
        bench.mkdir()
        (bench / "BENCH_history.jsonl").write_text(
            '"just a string"\n'
            '[1, 2, 3]\n'
            '{"name": "fattree_perm", "events_per_sec": 1000.0}\n'
            '{"name": "fattree_perm", "events_per_sec": "oops"}\n')
        series = dash.bench_records(bench)
        assert list(series) == ["fattree_perm"]
        assert dash._bench_values(series["fattree_perm"]) == [1000.0, 0.0]
        assert "polyline" in dash._svg_series([1000.0, 0.0])

    def test_pfc_section_and_undetected_deadlock_gate(
            self, tmp_path, capsys):
        dash = _load_dashboard()
        out = tmp_path / "out"
        (out / "summaries").mkdir(parents=True)
        summary = {
            "n_points": 2, "total_violations": 0,
            "all_flows_terminal": True, "undetected_deadlocks": 0,
            "victim_slowdown": {"lossless/x-lossless": 1.4},
            "points": {
                "lossless/x-lossless": {
                    "fabric": "lossless", "expect_deadlock": True,
                    "deadlocks_detected": 1, "pause_frames_rx": 4,
                    "paused_time_ps": 240_000_000_000},
                "lossless/x-lossy": {
                    "fabric": "lossy", "expect_deadlock": False,
                    "deadlocks_detected": 0, "pause_frames_rx": 4,
                    "paused_time_ps": 0},
            },
        }
        (out / "summaries" / "chaos-lossless.json").write_text(
            json.dumps(summary))
        html_path = tmp_path / "report.html"
        assert dash.main([str(out), "--html", str(html_path),
                          "--bench-dir", str(tmp_path / "nb")]) == 0
        text = capsys.readouterr().out
        assert "lossless fabric (PFC):" in text
        assert "victim slowdown" in text and "1.4x" in text
        report = html_path.read_text()
        assert "Lossless fabric (PFC)" in report
        # An undetected seeded deadlock fails the dashboard gate too.
        summary["undetected_deadlocks"] = 1
        (out / "summaries" / "chaos-lossless.json").write_text(
            json.dumps(summary))
        assert dash.main([str(out)]) == 1
        assert "UNDETECTED" in capsys.readouterr().out


    def test_wire_section_renders_and_gates(self, tmp_path, capsys):
        dash = _load_dashboard()
        out = tmp_path / "out"
        (out / "summaries").mkdir(parents=True)
        summary = {
            "campaign": "full", "n_points": 2, "total_violations": 0,
            "n_failed_points": 0, "all_gates_passed": True,
            "failed_gates": [],
            "points": {
                "full/blackhole-uno": {
                    "cell": "blackhole", "transport": "uno",
                    "n_flows": 2, "completed": 0, "aborted": 2,
                    "idled_out": 2, "max_backoff": 8,
                    "n_violations": 0, "retransmissions": 9,
                    "mean_fct_ms": None, "gate_ok": True,
                    "gate_failures": []},
                "full/compare-uno": {
                    "cell": "compare", "transport": "uno",
                    "mean_fct_ratio": 0.92, "sim_mean_fct_ms": 63.3,
                    "wire_mean_fct_ms": 58.2, "retx_delta": 8,
                    "n_violations": 0, "gate_ok": True,
                    "gate_failures": []},
            },
        }
        (out / "summaries" / "wire-full.json").write_text(
            json.dumps(summary))
        html_path = tmp_path / "report.html"
        assert dash.main([str(out), "--html", str(html_path),
                          "--bench-dir", str(tmp_path / "nb")]) == 0
        text = capsys.readouterr().out
        assert "sim-to-wire:" in text
        assert "2 aborted (2 idled out, max backoff 8)" in text
        assert "wire/sim fct 0.92x" in text
        report = html_path.read_text()
        assert "Sim-to-wire" in report and "retx delta 8" in report
        # A failed soak/compare gate flips the dashboard gate too.
        summary["all_gates_passed"] = False
        summary["failed_gates"] = ["full/compare-uno"]
        summary["points"]["full/compare-uno"]["gate_ok"] = False
        (out / "summaries" / "wire-full.json").write_text(
            json.dumps(summary))
        assert dash.main([str(out)]) == 1
        assert "GATE FAILED" in capsys.readouterr().out

    def test_no_wire_artifacts_omits_the_section(self, tmp_path, capsys):
        """A results directory without wire summaries renders (and
        gates) exactly as before the wire section existed."""
        dash = _load_dashboard()
        out = tmp_path / "out"
        out.mkdir()
        assert dash.main([str(out),
                          "--bench-dir", str(tmp_path / "nb")]) == 0
        assert "sim-to-wire" not in capsys.readouterr().out


class TestShardedTelemetryIntegration:
    def test_inline_two_shard_trace_conserves_and_stitches(self, tmp_path):
        from repro.experiments.sharded import TwoDCWorkload, run_sharded

        trace_path = tmp_path / "trace.jsonl"
        result = run_sharded(TwoDCWorkload(max_flows=40), shards=2,
                             processes=False, telemetry=True,
                             trace_path=trace_path)
        assert result["trace_violations"] == []
        trace = result["_trace"]
        merged = trace.merged()
        assert merged  # the campaign actually traced
        assert [e["t"] for e in merged] == sorted(e["t"] for e in merged)
        stitched = cross_shard_flows(merged)
        assert stitched  # at least one inter-DC flow crossed the cut
        # The written file is the same canonical stream.
        assert read_jsonl(trace_path) == merged
        # Worker metric registries merged into the parent summary.
        telemetry = result["telemetry"]
        assert set(telemetry["by_shard"]) == {"0", "1"}
        metrics = telemetry["merged"]["metrics"]["transport"]
        assert metrics["flows_started"] == 40
