"""Reproducibility: identical seeds must give bit-identical results.

The whole experiment pipeline is seeded (event ordering is deterministic,
all randomness flows through owned RNGs), so re-running a configuration
must reproduce every FCT exactly — the property EXPERIMENTS.md's numbers
rely on.
"""

import random

import pytest

from repro.experiments.harness import (
    ExperimentScale,
    build_multidc,
    make_launcher,
    run_specs,
)
from repro.sim.engine import Simulator
from repro.sim.units import MIB
from repro.workloads.alibaba_wan import ALIBABA_WAN_CDF
from repro.workloads.generator import PoissonTraffic, TrafficConfig
from repro.workloads.patterns import incast_specs
from repro.workloads.websearch import WEBSEARCH_CDF

SCALE = ExperimentScale.quick()


def run_once(scheme: str, seed: int) -> list[tuple[int, int]]:
    sim = Simulator()
    params = SCALE.params()
    topo = build_multidc(sim, scheme, params, SCALE, seed=seed)
    traffic = PoissonTraffic(
        topo,
        TrafficConfig(
            load=0.3,
            duration_ps=3_000_000_000,
            intra_cdf=WEBSEARCH_CDF.scaled(1 / 64),
            inter_cdf=ALIBABA_WAN_CDF.scaled(1 / 64),
            max_flows=40,
            seed=seed,
        ),
    )
    specs = traffic.generate()
    launcher = make_launcher(scheme, sim, topo, params, seed=seed)
    senders = run_specs(sim, specs, launcher, SCALE.horizon_ps)
    return [(s.flow_id, s.stats.fct_ps) for s in senders]


class TestDeterminism:
    @pytest.mark.parametrize("scheme", ["uno", "gemini"])
    def test_same_seed_same_fcts(self, scheme):
        assert run_once(scheme, 71) == run_once(scheme, 71)

    def test_different_seed_differs(self):
        a = run_once("uno", 71)
        b = run_once("uno", 72)
        assert a != b

    def test_incast_deterministic(self):
        def go():
            sim = Simulator()
            params = SCALE.params()
            topo = build_multidc(sim, "uno", params, SCALE, seed=5)
            specs = incast_specs(topo, 2, 2, MIB)
            launcher = make_launcher("uno", sim, topo, params, seed=5)
            senders = run_specs(sim, specs, launcher, SCALE.horizon_ps)
            return [s.stats.fct_ps for s in senders]

        assert go() == go()
