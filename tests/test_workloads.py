import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Simulator
from repro.topology.multidc import MultiDC, MultiDCConfig
from repro.workloads import (
    ALIBABA_WAN_CDF,
    GOOGLE_RPC_CDF,
    WEBSEARCH_CDF,
    EmpiricalCDF,
    PoissonTraffic,
    TrafficConfig,
)
from repro.workloads.patterns import incast_specs, permutation_pairs, permutation_specs


class TestEmpiricalCDF:
    def test_validation(self):
        with pytest.raises(ValueError):
            EmpiricalCDF([])
        with pytest.raises(ValueError):
            EmpiricalCDF([(100, 0.5)])  # doesn't end at 1
        with pytest.raises(ValueError):
            EmpiricalCDF([(100, 0.5), (50, 1.0)])  # unsorted sizes
        with pytest.raises(ValueError):
            EmpiricalCDF([(-5, 1.0)])

    def test_quantile_interpolation(self):
        cdf = EmpiricalCDF([(100, 0.0), (200, 1.0)])
        assert cdf.quantile(0.5) == pytest.approx(150)
        assert cdf.quantile(0.0) == 100
        assert cdf.quantile(1.0) == 200

    def test_cdf_inverts_quantile(self):
        cdf = EmpiricalCDF([(100, 0.0), (200, 0.5), (1000, 1.0)])
        for p in (0.1, 0.5, 0.75, 0.99):
            assert cdf.cdf(cdf.quantile(p)) == pytest.approx(p, abs=1e-9)

    def test_mean_of_uniform_segment(self):
        cdf = EmpiricalCDF([(100, 0.0), (200, 1.0)])
        assert cdf.mean() == pytest.approx(150)

    def test_sample_within_support(self):
        rng = random.Random(0)
        cdf = WEBSEARCH_CDF
        for _ in range(500):
            s = cdf.sample(rng)
            assert 1 <= s <= 30_000_000

    def test_sample_mean_converges(self):
        rng = random.Random(1)
        cdf = EmpiricalCDF([(100, 0.0), (300, 0.5), (500, 1.0)])
        n = 20_000
        mean = sum(cdf.sample(rng) for _ in range(n)) / n
        assert mean == pytest.approx(cdf.mean(), rel=0.05)

    def test_scaled_preserves_shape(self):
        scaled = WEBSEARCH_CDF.scaled(1 / 16)
        assert scaled.mean() == pytest.approx(WEBSEARCH_CDF.mean() / 16, rel=0.01)

    def test_scaled_validation(self):
        with pytest.raises(ValueError):
            WEBSEARCH_CDF.scaled(0)

    @settings(deadline=None, max_examples=30)
    @given(st.floats(min_value=0.0, max_value=1.0))
    def test_quantile_monotone(self, p):
        q1 = ALIBABA_WAN_CDF.quantile(p)
        q2 = ALIBABA_WAN_CDF.quantile(min(1.0, p + 0.05))
        assert q2 >= q1


class TestPaperDistributions:
    def test_websearch_is_heavy_tailed(self):
        # Most flows small, most bytes in big flows.
        assert WEBSEARCH_CDF.cdf(100_000) >= 0.5
        assert WEBSEARCH_CDF.mean() > 1_000_000

    def test_alibaba_wan_spans_to_300mb(self):
        assert ALIBABA_WAN_CDF.sizes[-1] == 300_000_000
        assert ALIBABA_WAN_CDF.mean() > WEBSEARCH_CDF.mean()

    def test_google_rpc_is_small(self):
        assert GOOGLE_RPC_CDF.cdf(4096) >= 0.7
        assert GOOGLE_RPC_CDF.mean() < 20_000


class TestPoissonTraffic:
    @pytest.fixture(scope="class")
    def topo(self):
        return MultiDC(Simulator(), MultiDCConfig(k=4))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TrafficConfig(load=0.0)
        with pytest.raises(ValueError):
            TrafficConfig(duration_ps=0)

    def test_offered_load_close_to_target(self, topo):
        cfg = TrafficConfig(load=0.4, duration_ps=20_000_000_000, seed=2)
        gen = PoissonTraffic(topo, cfg)
        specs = gen.generate()
        offered_bytes = sum(s.size_bytes for s in specs)
        capacity = len(topo.all_hosts()) * topo.config.gbps * 1e9 / 8
        duration_s = cfg.duration_ps / 1e12
        achieved = offered_bytes / (capacity * duration_s)
        assert achieved == pytest.approx(0.4, rel=0.35)

    def test_traffic_mix_is_4_to_1(self, topo):
        cfg = TrafficConfig(load=0.5, duration_ps=50_000_000_000, seed=3)
        specs = PoissonTraffic(topo, cfg).generate()
        inter = sum(s.is_inter_dc for s in specs)
        frac = inter / len(specs)
        assert frac == pytest.approx(0.2, abs=0.05)

    def test_deterministic_given_seed(self, topo):
        cfg = TrafficConfig(load=0.3, duration_ps=10_000_000_000, seed=9)
        a = PoissonTraffic(topo, cfg).generate()
        b = PoissonTraffic(topo, cfg).generate()
        assert [(s.start_ps, s.size_bytes) for s in a] == [
            (s.start_ps, s.size_bytes) for s in b
        ]

    def test_max_flows_cap(self, topo):
        cfg = TrafficConfig(load=0.5, duration_ps=10**12, max_flows=17, seed=1)
        specs = PoissonTraffic(topo, cfg).generate()
        assert len(specs) == 17

    def test_arrivals_sorted_and_in_window(self, topo):
        cfg = TrafficConfig(load=0.3, duration_ps=10_000_000_000, seed=5)
        specs = PoissonTraffic(topo, cfg).generate()
        starts = [s.start_ps for s in specs]
        assert starts == sorted(starts)
        assert all(0 <= t < cfg.duration_ps for t in starts)

    def test_inter_flows_cross_dcs(self, topo):
        cfg = TrafficConfig(load=0.3, duration_ps=20_000_000_000, seed=6)
        specs = PoissonTraffic(topo, cfg).generate()
        for s in specs:
            assert s.is_inter_dc == (s.src.dc != s.dst.dc)
            assert s.src is not s.dst


class TestPatterns:
    @pytest.fixture(scope="class")
    def topo(self):
        return MultiDC(Simulator(), MultiDCConfig(k=4))

    def test_incast_specs_mix(self, topo):
        specs = incast_specs(topo, n_intra=4, n_inter=4, size_bytes=1000)
        assert len(specs) == 8
        dst = specs[0].dst
        assert all(s.dst is dst for s in specs)
        assert sum(s.is_inter_dc for s in specs) == 4
        assert len({s.src.node_id for s in specs}) == 8

    def test_incast_prefers_cross_pod_senders(self, topo):
        specs = incast_specs(topo, n_intra=4, n_inter=0, size_bytes=1000)
        dst = specs[0].dst
        tree = topo.dcs[dst.dc]
        assert all(
            tree.pod_of(s.src) != tree.pod_of(dst) for s in specs
        )

    def test_incast_too_many_senders(self, topo):
        with pytest.raises(ValueError):
            incast_specs(topo, n_intra=100, n_inter=0, size_bytes=1)

    def test_permutation_is_a_derangement(self, topo):
        rng = random.Random(4)
        pairs = permutation_pairs(topo, rng)
        assert len(pairs) == 32
        srcs = [a.node_id for a, _ in pairs]
        dsts = [b.node_id for _, b in pairs]
        assert sorted(srcs) == sorted(dsts)       # every host appears once each way
        assert len(set(dsts)) == len(dsts)
        assert all(a is not b for a, b in pairs)  # no self-send

    def test_permutation_specs_flags(self, topo):
        specs = permutation_specs(topo, 1000, random.Random(7))
        for s in specs:
            assert s.is_inter_dc == (s.src.dc != s.dst.dc)
