import pytest

from repro.core import UnoParams
from repro.core.uno import start_uno_flow
from repro.sim.engine import Simulator
from repro.sim.units import MIB, SEC, US, MS
from repro.topology.multidc import MultiDC, MultiDCConfig
from repro.workloads.allreduce import AllreduceConfig, RingAllreduce


def make_topo(sim, k=4):
    params = UnoParams(link_gbps=25.0, queue_bytes=256 * 1024)
    topo = MultiDC(
        sim,
        MultiDCConfig(
            k=k, gbps=params.link_gbps, n_border_links=4,
            intra_rtt_ps=params.intra_rtt_ps, inter_rtt_ps=params.inter_rtt_ps,
            queue_bytes=params.queue_bytes, red=params.red(),
            phantom=params.phantom(),
        ),
    )
    return params, topo


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            AllreduceConfig(participants_per_dc=0)
        with pytest.raises(ValueError):
            AllreduceConfig(gradient_bytes=0)
        with pytest.raises(ValueError):
            AllreduceConfig(iterations=0)

    def test_derived_quantities(self):
        cfg = AllreduceConfig(participants_per_dc=4, gradient_bytes=8 * MIB)
        assert cfg.world_size == 8
        assert cfg.n_steps == 14
        assert cfg.chunk_bytes == MIB

    def test_too_many_participants(self):
        sim = Simulator()
        params, topo = make_topo(sim)
        with pytest.raises(ValueError):
            RingAllreduce(sim, topo, AllreduceConfig(participants_per_dc=100),
                          flow_starter=lambda *a: None)


class TestRing:
    def test_ring_crosses_wan_exactly_twice(self):
        sim = Simulator()
        params, topo = make_topo(sim)
        ar = RingAllreduce(sim, topo, AllreduceConfig(participants_per_dc=3),
                           flow_starter=lambda *a: None)
        crossings = sum(
            1
            for i, h in enumerate(ar.ring)
            if h.dc != ar.ring[(i + 1) % len(ar.ring)].dc
        )
        assert crossings == 2

    def test_iteration_completes_and_records_time(self):
        sim = Simulator()
        params, topo = make_topo(sim)

        def starter(src, dst, size, on_complete, start_ps):
            return start_uno_flow(sim, topo.net, src, dst, size, params,
                                  on_complete=on_complete,
                                  seed=src.node_id * 7 + dst.node_id)

        done = []
        ar = RingAllreduce(
            sim, topo,
            AllreduceConfig(participants_per_dc=2, gradient_bytes=MIB,
                            iterations=2, compute_gap_ps=1 * MS),
            flow_starter=starter,
            on_done=done.append,
        )
        ar.start()
        sim.run(until=60 * SEC)
        assert done == [ar]
        assert len(ar.iteration_times_ps) == 2
        assert all(t > 0 for t in ar.iteration_times_ps)

    def test_slowdown_at_least_one(self):
        sim = Simulator()
        params, topo = make_topo(sim)

        def starter(src, dst, size, on_complete, start_ps):
            return start_uno_flow(sim, topo.net, src, dst, size, params,
                                  on_complete=on_complete,
                                  seed=src.node_id * 7 + dst.node_id)

        ar = RingAllreduce(
            sim, topo,
            AllreduceConfig(participants_per_dc=2, gradient_bytes=MIB,
                            iterations=1),
            flow_starter=starter,
        )
        ar.start()
        sim.run(until=60 * SEC)
        assert len(ar.slowdowns()) == 1
        assert ar.slowdowns()[0] >= 1.0

    def test_ideal_runtime_scales_with_steps(self):
        sim = Simulator()
        params, topo = make_topo(sim)
        small = RingAllreduce(sim, topo,
                              AllreduceConfig(participants_per_dc=2,
                                              gradient_bytes=MIB),
                              flow_starter=lambda *a: None)
        big = RingAllreduce(sim, topo,
                            AllreduceConfig(participants_per_dc=4,
                                            gradient_bytes=MIB),
                            flow_starter=lambda *a: None)
        assert big.config.n_steps > small.config.n_steps
        assert big.ideal_runtime_ps() > 0
