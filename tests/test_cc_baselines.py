"""Behavioural tests for the baseline congestion controllers."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.packet import ACK, Packet
from repro.sim.units import MIB, US
from repro.topology.simple import incast_star
from repro.transport.base import start_flow
from repro.transport.bbr import BBR, BBRConfig, PROBE_BW
from repro.transport.dctcp import DCTCP, DCTCPConfig
from repro.transport.gemini import Gemini, GeminiConfig
from repro.transport.mprdma import MPRDMA, MPRDMAConfig


def ack(payload=4096, ecn=False, sent_ps=0):
    pkt = Packet(ACK, 1, 1, 0, seq=0, size=64, payload=payload)
    pkt.ecn_echo = ecn
    pkt.echo_sent_ps = sent_ps
    return pkt


class StubSender:
    """Just enough of Sender for unit-testing CC arithmetic."""

    def __init__(self, sim, mss=4096, base_rtt=14 * US, gbps=100.0):
        self.sim = sim
        self.mss = mss
        self.base_rtt_ps = base_rtt
        self.line_gbps = gbps
        from repro.sim.units import bdp_bytes

        self.bdp_bytes = bdp_bytes(base_rtt, gbps)
        self.cwnd = float(mss)
        self.pacing_rate_gbps = None
        self.min_rtt_ps = base_rtt
        self.srtt_ps = float(base_rtt)
        self.inflight_bytes = 0
        self.is_inter_dc = False
        self.stats = type("S", (), {"bytes_acked": 0})()

    @property
    def rate_estimate_gbps(self):
        return min(self.line_gbps, self.cwnd * 8000.0 / self.srtt_ps)


class TestDCTCPUnit:
    def test_init_window_is_ten_packets(self):
        sim = Simulator()
        s = StubSender(sim)
        DCTCP().on_init(s)
        assert s.cwnd == 10 * s.mss

    def test_slow_start_doubles_per_rtt(self):
        sim = Simulator()
        s = StubSender(sim)
        cc = DCTCP()
        cc.on_init(s)
        before = s.cwnd
        cc.on_ack(s, ack(payload=4096, sent_ps=-1), rtt_ps=14 * US, ecn=False)
        assert s.cwnd == before + 4096  # exponential: += bytes acked

    def test_slow_start_exits_on_mark(self):
        sim = Simulator()
        s = StubSender(sim)
        cc = DCTCP()
        cc.on_init(s)
        cc.on_ack(s, ack(ecn=True, sent_ps=-1), rtt_ps=14 * US, ecn=True)
        assert cc._slow_start is False

    def test_slow_start_capped_at_max_window(self):
        sim = Simulator()
        s = StubSender(sim)
        cc = DCTCP(DCTCPConfig(max_cwnd_frac_of_bdp=2.0))
        cc.on_init(s)
        for _ in range(500):
            cc.on_ack(s, ack(payload=4096, sent_ps=-1), rtt_ps=14 * US,
                      ecn=False)
        assert s.cwnd <= 2 * s.bdp_bytes

    def test_unmarked_acks_grow_window(self):
        sim = Simulator()
        s = StubSender(sim)
        cc = DCTCP()
        cc.on_init(s)
        before = s.cwnd
        cc.on_ack(s, ack(sent_ps=sim.now), rtt_ps=14 * US, ecn=False)
        assert s.cwnd > before

    def test_alpha_decays_without_marks(self):
        sim = Simulator()
        s = StubSender(sim)
        cc = DCTCP(DCTCPConfig(g=0.5))
        cc.on_init(s)
        cc.alpha = 1.0
        # Close several unmarked epochs: alpha halves each time.
        t = 0
        for _ in range(3):
            t += 20 * US
            sim._heap.clear()
            sim.now = t
            cc.on_ack(s, ack(sent_ps=t), rtt_ps=14 * US, ecn=False)
        assert cc.alpha == pytest.approx(0.125)

    def test_marked_epoch_cuts_window(self):
        sim = Simulator()
        s = StubSender(sim)
        cc = DCTCP(DCTCPConfig(g=1.0))
        cc.on_init(s)
        s.cwnd = 80 * 4096  # below the 2xBDP cap
        sim.now = 100 * US
        cc.on_ack(s, ack(ecn=True, sent_ps=sim.now), rtt_ps=14 * US, ecn=True)
        # alpha jumped to 1 -> cwnd halves.
        assert s.cwnd == pytest.approx(40 * 4096)

    def test_timeout_collapses_window(self):
        sim = Simulator()
        s = StubSender(sim)
        cc = DCTCP()
        cc.on_init(s)
        cc.on_timeout(s)
        assert s.cwnd == s.mss


class TestMPRDMAUnit:
    def test_marked_ack_cuts_half_mss(self):
        s = StubSender(Simulator())
        cc = MPRDMA()
        cc.on_init(s)
        before = s.cwnd
        cc.on_ack(s, ack(ecn=True), rtt_ps=14 * US, ecn=True)
        assert s.cwnd == pytest.approx(before - 0.5 * s.mss)

    def test_unmarked_ack_ai(self):
        s = StubSender(Simulator())
        cc = MPRDMA(MPRDMAConfig(use_slow_start=False))
        cc.on_init(s)
        before = s.cwnd
        cc.on_ack(s, ack(), rtt_ps=14 * US, ecn=False)
        assert s.cwnd == pytest.approx(before + s.mss * 4096 / before)

    def test_slow_start_exits_on_mark(self):
        s = StubSender(Simulator())
        cc = MPRDMA()
        cc.on_init(s)
        assert cc._slow_start
        cc.on_ack(s, ack(ecn=True), rtt_ps=14 * US, ecn=True)
        assert not cc._slow_start

    def test_floor_one_mss(self):
        s = StubSender(Simulator())
        cc = MPRDMA(MPRDMAConfig(init_cwnd_pkts=1, init_cwnd_frac_of_bdp=0.0))
        cc.on_init(s)
        for _ in range(10):
            cc.on_ack(s, ack(ecn=True), rtt_ps=14 * US, ecn=True)
        assert s.cwnd == s.mss


class TestBBRUnit:
    def test_sets_pacing_on_init(self):
        s = StubSender(Simulator())
        BBR().on_init(s)
        assert s.pacing_rate_gbps is not None
        assert s.pacing_rate_gbps <= s.line_gbps

    def test_reaches_probe_bw_on_flat_bandwidth(self):
        sim = Simulator()
        s = StubSender(sim)
        cc = BBR(BBRConfig(startup_full_bw_rounds=3))
        cc.on_init(s)
        s.inflight_bytes = 0
        t = 0
        for i in range(20):
            t += 14 * US
            sim.now = t
            cc.on_ack(s, ack(payload=64 * 1024), rtt_ps=14 * US, ecn=False)
        assert cc.state == PROBE_BW

    def test_probe_gains_cycle(self):
        from repro.transport.bbr import _PROBE_GAINS

        assert _PROBE_GAINS[0] == 1.25
        assert _PROBE_GAINS[1] == 0.75
        assert len(_PROBE_GAINS) == 8


class TestGeminiUnit:
    def _mk(self, inter=False):
        sim = Simulator()
        s = StubSender(sim, base_rtt=2000 * US if inter else 14 * US)
        s.is_inter_dc = inter
        cc = Gemini(GeminiConfig(), intra_bdp_bytes=175_000)
        cc.on_init(s)
        return sim, s, cc

    def test_epoch_period_is_own_rtt(self):
        _, s_intra, cc_intra = self._mk(inter=False)
        _, s_inter, cc_inter = self._mk(inter=True)
        assert cc_intra._tracker.period_ps == 14 * US
        assert cc_inter._tracker.period_ps == 2000 * US

    def test_ecn_epoch_cuts_window(self):
        sim, s, cc = self._mk()
        s.cwnd = 1 << 20
        sim.now = 100 * US
        cc.on_ack(s, ack(ecn=True, sent_ps=sim.now), rtt_ps=14 * US, ecn=True)
        before = s.cwnd
        sim.now = 200 * US
        cc.on_ack(s, ack(ecn=True, sent_ps=sim.now), rtt_ps=14 * US, ecn=True)
        assert s.cwnd < before

    def test_wan_delay_triggers_reduction_for_inter_flows(self):
        sim, s, cc = self._mk(inter=True)
        s.cwnd = 1 << 22
        s.min_rtt_ps = 2000 * US
        high_rtt = 2000 * US + 500 * US  # well above the 100us threshold
        sim.now = 3000 * US
        cc.on_ack(s, ack(sent_ps=sim.now), rtt_ps=high_rtt, ecn=False)
        before = s.cwnd
        sim.now = 6000 * US
        cc.on_ack(s, ack(sent_ps=sim.now), rtt_ps=high_rtt, ecn=False)
        assert s.cwnd < before


class TestEndToEnd:
    @pytest.mark.parametrize("cc_factory", [DCTCP, MPRDMA, BBR])
    def test_incast_completes(self, cc_factory):
        sim = Simulator()
        topo = incast_star(sim, 4, prop_ps=1 * US)
        done = []
        for i, s in enumerate(topo.senders):
            start_flow(sim, topo.net, cc_factory(), s, topo.receivers[0],
                       MIB // 2, base_rtt_ps=14 * US, seed=i,
                       on_complete=done.append)
        sim.run(until=10**12)
        assert len(done) == 4

    def test_gemini_incast_completes(self):
        sim = Simulator()
        topo = incast_star(sim, 4, prop_ps=1 * US)
        done = []
        for i, s in enumerate(topo.senders):
            cc = Gemini(GeminiConfig(), intra_bdp_bytes=175_000)
            start_flow(sim, topo.net, cc, s, topo.receivers[0], MIB // 2,
                       base_rtt_ps=14 * US, seed=i, on_complete=done.append)
        sim.run(until=10**12)
        assert len(done) == 4

    def test_dctcp_keeps_queue_moderate(self):
        """ECN control must keep the bottleneck queue well below capacity."""
        from repro.sim.trace import QueueMonitor

        sim = Simulator()
        topo = incast_star(sim, 4, prop_ps=1 * US)
        mon = QueueMonitor(sim, topo.bottleneck, interval_ps=10 * US)
        done = []
        for i, s in enumerate(topo.senders):
            start_flow(sim, topo.net, DCTCP(), s, topo.receivers[0], 2 * MIB,
                       base_rtt_ps=14 * US, seed=i, on_complete=done.append)
        sim.run(until=10**12)
        assert len(done) == 4
        # After the initial burst the queue must return under control;
        # average must stay below half the 1 MiB capacity.
        assert mon.mean_physical() < 512 * 1024
