"""Failure-aware routing and the chaos-campaign harness.

Covers the control plane (incremental next-hop patching behind the
convergence delay, restore-triggered rebuilds, the static and
never-converge controls), the scenario vocabulary and its selectors,
the run-invariant checker, and the campaign presets end to end —
including the acceptance pair: a two-DC fiber cut completes every flow
under rerouting and blackholes fixed-entropy flows without it.
"""

import random

import pytest

from repro.experiments.chaos import (
    campaign_points,
    parse_convergence,
    run_point,
    scenario_for,
)
from repro.obs import enable
from repro.sim.chaos import (
    FiberCut,
    GreyFailure,
    LinkFlap,
    LossEpisode,
    PartitionWindow,
    SCENARIO_KINDS,
    cables,
    check_invariants,
    scenario_from_dict,
    select_cables,
)
from repro.sim.engine import Simulator
from repro.sim.network import DEFAULT_CONVERGENCE_DELAY_PS, Network
from repro.sim.units import MS, US
from repro.topology.simple import dumbbell
from repro.transport.base import start_flow
from repro.transport.dctcp import DCTCP


def diamond(convergence_delay_ps=None, sim=None):
    """h1 - s1 = {sa, sb} = s2 - h2: two equal-cost disjoint paths."""
    sim = sim or Simulator()
    if convergence_delay_ps is None:
        net = Network(sim, seed=1)
    else:
        net = Network(sim, seed=1, convergence_delay_ps=convergence_delay_ps)
    h1, h2 = net.add_host("h1"), net.add_host("h2")
    s1, sa, sb, s2 = (net.add_switch(n) for n in ("s1", "sa", "sb", "s2"))
    for a, b in ((h1, s1), (s1, sa), (s1, sb), (sa, s2), (sb, s2), (s2, h2)):
        net.add_link(a, b, 100.0, 1 * US, 1_000_000)
    net.build_routes()
    return sim, net, h1, h2, s1, sa, sb, s2


class TestFailureAwareRouting:
    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Network(Simulator(), convergence_delay_ps=-1)

    def test_all_up_build_matches_static(self):
        """With every link up, the up-aware BFS produces the same tables
        as a static (delay-0) network."""
        _, net_d, *_ = diamond()
        _, net_s, *_ = diamond(convergence_delay_ps=0)
        for sw_d, sw_s in zip(net_d.switches, net_s.switches):
            assert {d: tuple(p.name for p in ports)
                    for d, ports in sw_d.nexthops.items()} == \
                   {d: tuple(p.name for p in ports)
                    for d, ports in sw_s.nexthops.items()}

    def test_patch_removes_down_port_after_delay(self):
        sim, net, h1, h2, s1, sa, sb, s2 = diamond()
        assert len(s1.nexthops[h2.node_id]) == 2
        net.link_between(s1, sa).fail()
        # Tables untouched until the convergence delay elapses.
        sim.run(until=DEFAULT_CONVERGENCE_DELAY_PS - 1)
        assert len(s1.nexthops[h2.node_id]) == 2
        sim.run()
        assert s1.nexthops[h2.node_id] == (net.port_between(s1, sb),)
        assert net.route_patches == 1
        assert net.route_rebuilds == 0

    def test_restore_readmits_port_after_delay(self):
        sim, net, h1, h2, s1, sa, sb, s2 = diamond()
        link = net.link_between(s1, sa)
        link.fail()
        sim.run()
        assert len(s1.nexthops[h2.node_id]) == 1
        link.restore()
        sim.run()
        assert len(s1.nexthops[h2.node_id]) == 2
        assert net.route_rebuilds >= 1

    def test_zero_delay_is_static(self):
        sim, net, h1, h2, s1, sa, sb, s2 = diamond(convergence_delay_ps=0)
        net.link_between(s1, sa).fail()
        sim.run()
        assert len(s1.nexthops[h2.node_id]) == 2  # never patched
        assert net.route_patches == net.route_rebuilds == 0

    def test_inf_delay_never_converges(self):
        sim, net, h1, h2, s1, sa, sb, s2 = diamond(
            convergence_delay_ps=float("inf"))
        net.link_between(s1, sa).fail()
        sim.run()
        assert len(s1.nexthops[h2.node_id]) == 2
        assert net.route_patches == net.route_rebuilds == 0

    def test_flap_shorter_than_delay_never_touches_tables(self):
        sim, net, h1, h2, s1, sa, sb, s2 = diamond()
        link = net.link_between(s1, sa)
        sim.at(0, link.fail)
        sim.at(1 * MS, link.restore)  # back up before convergence fires
        sim.run()
        assert len(s1.nexthops[h2.node_id]) == 2
        assert net.route_patches == net.route_rebuilds == 0

    def test_emptied_nexthop_set_counts_drops_not_raises(self):
        """Losing every path to a known destination leaves an empty
        next-hop set: packets are dropped and counted, while unknown
        destinations still raise."""
        from repro.sim.packet import DATA, Packet

        sim, net, h1, h2, s1, sa, sb, s2 = diamond()
        net.link_between(s1, sa).fail()
        net.link_between(s1, sb).fail()
        sim.run()
        assert s1.nexthops[h2.node_id] == ()
        s1.receive(Packet(DATA, 1, h1.node_id, h2.node_id, seq=0, size=100))
        assert s1.no_route_drops == 1
        with pytest.raises(LookupError):
            s1.receive(Packet(DATA, 1, h1.node_id, 999, seq=0, size=100))

    def test_fail_restore_round_trips_up_gauge_and_counters(self):
        from repro.obs.metrics import metric_key

        sim = Simulator()
        enable(sim, event_topics=("failure",), profile=False)
        _, net, h1, h2, s1, sa, sb, s2 = diamond(sim=sim)
        link = net.link_between(s1, sa)
        gauge = f"link.{metric_key(link.name)}.up"
        metrics = sim.obs.metrics
        assert metrics.value(gauge) is True
        link.fail()
        assert metrics.value(gauge) is False
        link.restore()
        assert metrics.value(gauge) is True
        assert metrics.value("failures.link_down") == 1
        assert metrics.value("failures.link_up") == 1


class TestSelectors:
    def test_unknown_selector_raises(self):
        sim = Simulator()
        topo = dumbbell(sim, n_pairs=2)
        with pytest.raises(ValueError, match="unknown selector"):
            select_cables(topo.net, "bogus")

    def test_zero_match_raises(self):
        sim = Simulator()
        topo = dumbbell(sim, n_pairs=2)
        with pytest.raises(ValueError, match="matched no cables"):
            select_cables(topo.net, "border")

    def test_inter_switch_on_dumbbell_is_the_bottleneck(self):
        sim = Simulator()
        topo = dumbbell(sim, n_pairs=3)
        picked = select_cables(topo.net, "inter_switch")
        assert len(picked) == 1
        assert picked[0][0].name == "swL->swR"

    def test_all_covers_every_cable(self):
        sim = Simulator()
        topo = dumbbell(sim, n_pairs=3)
        assert select_cables(topo.net, "all", k=0) == cables(topo.net)
        assert len(select_cables(topo.net, "all", k=2)) == 2

    def test_random_is_seed_deterministic(self):
        sim = Simulator()
        topo = dumbbell(sim, n_pairs=3)
        a = select_cables(topo.net, "random", k=1, rng=random.Random(3))
        b = select_cables(topo.net, "random", k=1, rng=random.Random(3))
        assert [ln.name for c in a for ln in c] == \
               [ln.name for c in b for ln in c]

    def test_border_and_core_on_two_dc(self):
        from repro.experiments.harness import build_multidc, scale_for

        sim = Simulator()
        scale = scale_for(True)
        topo = build_multidc(sim, "uno", scale.params(), scale)
        border = select_cables(topo.net, "border", k=0)
        assert len(border) == scale.n_border_links
        assert all("border" in ln.name for c in border for ln in c)
        core = select_cables(topo.net, "core", k=0)
        assert core and all(
            any("core" in ln.name for ln in c) for c in core)


def _all_scenario_classes():
    """Every concrete Scenario subclass (abstract bases have kind '')."""
    from repro.sim.chaos import Scenario

    found, stack = [], [Scenario]
    while stack:
        cls = stack.pop()
        stack.extend(cls.__subclasses__())
        if cls is not Scenario and cls.kind:
            found.append(cls)
    return sorted(found, key=lambda c: c.kind)


class TestScenarios:
    @pytest.mark.parametrize("scenario", [
        LinkFlap(start_ps=1, down_ps=2, period_ps=5, flaps=3, k=2),
        FiberCut(at_ps=7, repair_after_ps=11, selector="core"),
        GreyFailure(start_ps=3, duration_ps=9, loss_rate=0.1),
        LossEpisode(start_ps=2, duration_ps=8, loss_rate=0.02),
        PartitionWindow(start_ps=4, duration_ps=6, selector="all"),
    ])
    def test_describe_round_trips(self, scenario):
        rebuilt = scenario_from_dict(scenario.describe())
        assert rebuilt == scenario
        assert rebuilt.describe() == scenario.describe()

    @pytest.mark.parametrize(
        "cls", _all_scenario_classes(),
        ids=lambda c: c.kind)
    def test_every_scenario_subclass_round_trips(self, cls):
        """Each concrete subclass survives describe() ->
        scenario_from_dict() with its defaults AND with every field
        perturbed, so new scenarios can't ship unserializable."""
        scenario = cls()
        rebuilt = scenario_from_dict(scenario.describe())
        assert rebuilt == scenario
        assert rebuilt.describe() == scenario.describe()
        # Perturb every positive-int field; re-round-trip.
        tweaked = dict(scenario.describe())
        for key, value in list(tweaked.items()):
            if key != "kind" and isinstance(value, int) \
                    and not isinstance(value, bool) and value > 0:
                tweaked[key] = value + 1
        rebuilt2 = scenario_from_dict(tweaked)
        assert rebuilt2.describe() == tweaked

    def test_every_registered_kind_has_a_class(self):
        assert {c.kind for c in _all_scenario_classes()} == \
            set(SCENARIO_KINDS)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario kind"):
            scenario_from_dict({"kind": "meteor_strike"})
        assert set(SCENARIO_KINDS) == {
            "link_flap", "fiber_cut", "grey_failure", "loss_episode",
            "partition_window", "switch_crash", "tor_reboot", "host_crash",
            "nic_flap", "pause_storm", "deadlock_probe"}

    def test_flap_validation(self):
        with pytest.raises(ValueError):
            LinkFlap(flaps=0)
        with pytest.raises(ValueError):
            LinkFlap(down_ps=10, period_ps=10)

    def test_grey_loss_rate_validation(self):
        with pytest.raises(ValueError):
            GreyFailure(loss_rate=0.0)
        with pytest.raises(ValueError):
            GreyFailure(loss_rate=1.5)

    def test_grey_failure_never_triggers_rerouting(self):
        """The link stays administratively up through the whole loss
        window, so routing sees nothing — the transport is on its own."""
        sim = Simulator()
        topo = dumbbell(sim, n_pairs=2, gbps=25.0, prop_ps=5 * US,
                        queue_bytes=256 * 1024)
        senders = [
            start_flow(sim, topo.net, DCTCP(), s, r, 128 * 1024,
                       start_ps=0, base_rtt_ps=20 * US, line_gbps=25.0,
                       seed=i)
            for i, (s, r) in enumerate(zip(topo.senders, topo.receivers))
        ]
        grey = GreyFailure(selector="inter_switch", k=1, start_ps=0,
                           duration_ps=50 * MS, loss_rate=0.05)
        (cable,) = grey.apply(sim, topo.net, random.Random(1))
        sim.run(until=500 * MS)
        assert all(s.done for s in senders)
        assert cable[0].up and cable[1].up
        assert cable[0].failures == 0
        assert cable[0].lost_pkts + cable[1].lost_pkts > 0
        assert topo.net.route_patches == topo.net.route_rebuilds == 0

    def test_loss_episode_detaches_after_window(self):
        sim = Simulator()
        topo = dumbbell(sim, n_pairs=1)
        episode = LossEpisode(selector="inter_switch", k=1,
                              start_ps=1 * US, duration_ps=5 * US)
        (cable,) = episode.apply(sim, topo.net, random.Random(2))
        sim.run(until=2 * US)
        assert cable[0].loss_model is not None
        sim.run()
        assert cable[0].loss_model is None and cable[1].loss_model is None


class TestInvariants:
    def _run_dumbbell(self, size=64 * 1024, horizon=500 * MS):
        sim = Simulator()
        topo = dumbbell(sim, n_pairs=2, gbps=25.0, prop_ps=5 * US,
                        queue_bytes=256 * 1024)
        senders = [
            start_flow(sim, topo.net, DCTCP(), s, r, size, start_ps=0,
                       base_rtt_ps=20 * US, line_gbps=25.0, seed=i)
            for i, (s, r) in enumerate(zip(topo.senders, topo.receivers))
        ]
        sim.run(until=horizon)
        return sim, topo.net, senders, horizon

    def test_clean_run_has_no_violations(self):
        sim, net, senders, horizon = self._run_dumbbell()
        assert check_invariants(sim, net, senders, horizon) == []

    def test_stuck_flow_detected(self):
        # A horizon far too short for the flow to finish: the checker
        # must flag both the stuck flow and the undrained event loop.
        sim, net, senders, horizon = self._run_dumbbell(
            size=1024 * 1024, horizon=10 * US)
        kinds = {v["invariant"]
                 for v in check_invariants(sim, net, senders, horizon)}
        assert "flow_stuck" in kinds
        assert "event_loop_not_drained" in kinds

    def test_violations_mirrored_to_obs(self):
        sim = Simulator()
        enable(sim, event_topics=("invariant",), profile=False)
        topo = dumbbell(sim, n_pairs=1, gbps=25.0, prop_ps=5 * US,
                        queue_bytes=256 * 1024)
        sender = start_flow(sim, topo.net, DCTCP(), topo.senders[0],
                            topo.receivers[0], 1024 * 1024, start_ps=0,
                            base_rtt_ps=20 * US, line_gbps=25.0, seed=0)
        sim.run(until=10 * US)
        violations = check_invariants(sim, topo.net, [sender], 10 * US)
        assert violations
        assert sim.obs.metrics.value("invariant.violations") == \
            len(violations)
        assert sim.obs.events.count("invariant") == len(violations)


class TestCampaigns:
    def test_unknown_campaign_rejected(self):
        with pytest.raises(ValueError, match="unknown campaign"):
            campaign_points("nope")

    def test_points_wellformed(self):
        pts = campaign_points("smoke")
        ids = [p.id for p in pts]
        assert len(set(ids)) == len(ids) == 11
        for p in pts:
            assert p.experiment == "chaos"
            scenario_for(p.cfg["topo"], p.cfg["scenario"])  # preset exists

    def test_parse_convergence(self):
        assert parse_convergence("default") is None
        assert parse_convergence(None) is None
        assert parse_convergence("inf") == float("inf")
        assert parse_convergence(0) == 0.0
        assert parse_convergence("12500") == 12500.0

    def test_bogus_convergence_rejected_eagerly(self):
        """Validated when points are built, not per-point at runtime."""
        with pytest.raises(ValueError, match="invalid convergence"):
            campaign_points("smoke", convergence="bogus")

    def test_lossless_points_carry_fabric_axis(self):
        pts = campaign_points("lossless")
        assert len(pts) == 8
        for p in pts:
            assert p.cfg["fabric"] in ("lossy", "lossless")
            assert p.name.endswith(f"-{p.cfg['fabric']}")
            assert p.cfg["expect_deadlock"] == \
                (p.cfg["scenario"] == "deadlock_probe")
        probes = [p for p in pts if p.cfg["expect_deadlock"]]
        assert len(probes) == 2
        assert all(p.cfg["fabric"] == "lossless" for p in probes)

    def test_legacy_cells_keep_their_configs(self):
        # 3-tuple cells must stay byte-identical (on-disk cache keys).
        for p in campaign_points("smoke"):
            assert "fabric" not in p.cfg and "expect_deadlock" not in p.cfg

    def test_unknown_topo_and_scenario_rejected(self):
        with pytest.raises(ValueError, match="unknown chaos topology"):
            scenario_for("ring", "flap")
        with pytest.raises(ValueError, match="no preset"):
            scenario_for("dumbbell", "fiber_cut")

    def test_two_dc_fiber_cut_completes_under_rerouting(self):
        """The acceptance scenario: two border links cut permanently
        mid-run; with failure-aware routing every flow still completes
        and every invariant holds."""
        point = campaign_points("fibercut")[0]  # uno
        res = run_point(point)
        assert res["completed"] == res["n_flows"]
        assert res["violations"] == []
        assert res["route_patches"] >= 1
        assert res["failed_drops"] > 0  # the cut really hit traffic

    def test_static_routing_control_blackholes(self):
        """The 'inf' convergence control reproduces the pre-rerouting
        blackhole: fixed-entropy flows pinned to the cut links stay
        stuck forever and the invariant sweep says so."""
        point = campaign_points("fibercut", convergence="inf")[1]  # gemini
        res = run_point(point)
        assert res["completed"] < res["n_flows"]
        kinds = {v["invariant"] for v in res["violations"]}
        assert "flow_stuck" in kinds
        assert res["route_patches"] == res["route_rebuilds"] == 0

    def test_lossless_probe_cell_detects_and_completes(self):
        """The seeded-CBD acceptance cell: the watchdog flags the cycle
        within its window, the hold expires, and every flow still
        completes before the horizon — a detection, never a hang."""
        point = next(p for p in campaign_points("lossless")
                     if p.cfg["topo"] == "fattree"
                     and p.cfg["expect_deadlock"])
        res = run_point(point)
        assert res["deadlocks_detected"] == 1
        assert res["completed"] == res["n_flows"]
        # The only violations are the expected cbd_deadlock reports.
        assert {v["invariant"] for v in res["violations"]} <= \
            {"cbd_deadlock"}
        assert res["pause_frames_rx"] >= 4
        assert res["paused_time_ps"] > 0
