import pytest

from repro.sim.engine import Simulator
from repro.sim.units import MS, US
from repro.topology.fattree import FatTree, FatTreeConfig
from repro.topology.multidc import MultiDC, MultiDCConfig
from repro.topology.simple import dumbbell, incast_star
from repro.sim.network import Network


class TestSimple:
    def test_dumbbell_structure(self):
        sim = Simulator()
        topo = dumbbell(sim, 3)
        assert len(topo.senders) == 3
        assert len(topo.receivers) == 3
        assert topo.bottleneck.link.name == "swL->swR"

    def test_incast_star_structure(self):
        sim = Simulator()
        topo = incast_star(sim, 5)
        assert len(topo.senders) == 5
        assert len(topo.receivers) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            dumbbell(Simulator(), 0)
        with pytest.raises(ValueError):
            incast_star(Simulator(), 0)


class TestFatTreeConfig:
    def test_counts(self):
        cfg = FatTreeConfig(k=4)
        assert cfg.n_hosts == 16
        assert cfg.n_cores == 4
        cfg8 = FatTreeConfig(k=8)
        assert cfg8.n_hosts == 128
        assert cfg8.n_cores == 16

    def test_odd_k_rejected(self):
        with pytest.raises(ValueError):
            FatTreeConfig(k=3)


class TestFatTree:
    @pytest.fixture(scope="class")
    def tree(self):
        sim = Simulator()
        net = Network(sim, seed=1)
        tree = FatTree(net, FatTreeConfig(k=4), prefix="dc0", dc=0)
        net.build_routes()
        return net, tree

    def test_host_count(self, tree):
        net, ft = tree
        assert len(ft.hosts) == 16
        assert len(ft.cores) == 4

    def test_paper_structure_per_pod(self, tree):
        net, ft = tree
        # k=4: 4 pods, each 2 agg + 2 edge, 2 hosts per edge.
        assert len(ft.aggs) == 4
        assert all(len(a) == 2 for a in ft.aggs)
        assert all(len(e) == 2 for e in ft.edges)

    def test_hops_classification(self, tree):
        net, ft = tree
        same_edge = (ft.hosts[0], ft.hosts[1])
        same_pod = (ft.hosts[0], ft.hosts[2])
        cross_pod = (ft.hosts[0], ft.hosts[4])
        assert ft.hops_one_way(*same_edge) == 2
        assert ft.hops_one_way(*same_pod) == 4
        assert ft.hops_one_way(*cross_pod) == 6
        assert ft.hops_one_way(ft.hosts[0], ft.hosts[0]) == 0

    def test_multipath_fanout_at_edge(self, tree):
        """An edge switch must see both aggs as equal-cost next hops for
        cross-pod destinations."""
        net, ft = tree
        edge = ft.edges[0][0]
        cross_pod_host = ft.hosts[4]
        assert len(edge.nexthops[cross_pod_host.node_id]) == 2


class TestMultiDC:
    @pytest.fixture(scope="class")
    def topo(self):
        sim = Simulator()
        return MultiDC(sim, MultiDCConfig(k=4, n_border_links=8))

    def test_two_dcs(self, topo):
        assert len(topo.hosts(0)) == 16
        assert len(topo.hosts(1)) == 16
        assert all(h.dc == 0 for h in topo.hosts(0))
        assert all(h.dc == 1 for h in topo.hosts(1))

    def test_border_links_parallel(self, topo):
        assert len(topo.border_links) == 8
        ports = topo.net.ports_between(topo.borders[0], topo.borders[1])
        assert len(ports) == 8

    def test_border_is_equal_cost_multipath(self, topo):
        """Border0 must see all 8 parallel WAN links as next hops toward
        any remote host."""
        remote = topo.hosts(1)[0]
        assert len(topo.borders[0].nexthops[remote.node_id]) == 8

    def test_rtt_budget(self, topo):
        cfg = topo.config
        # 6 fabric links each way at intra_rtt/12 each.
        assert 12 * cfg.fabric_prop_ps <= cfg.intra_rtt_ps
        # Inter path: 8 fabric + 1 border each way == inter_rtt/2.
        one_way = 8 * cfg.fabric_prop_ps + cfg.border_prop_ps
        assert 2 * one_way == pytest.approx(cfg.inter_rtt_ps, rel=0.01)

    def test_base_rtt_estimates(self, topo):
        a, b = topo.hosts(0)[0], topo.hosts(0)[4]
        r = topo.host(1, 0)
        intra = topo.base_rtt_ps(a, b)
        inter = topo.base_rtt_ps(a, r)
        assert intra == pytest.approx(topo.config.intra_rtt_ps, rel=0.35)
        assert inter == pytest.approx(topo.config.inter_rtt_ps, rel=0.05)
        assert topo.rtt_hint(a, b) == topo.config.intra_rtt_ps
        assert topo.rtt_hint(a, r) == topo.config.inter_rtt_ps

    def test_random_host_pair(self, topo):
        import random

        rng = random.Random(1)
        src, dst = topo.random_host_pair(rng, inter_dc=True)
        assert src.dc != dst.dc
        src, dst = topo.random_host_pair(rng, inter_dc=False)
        assert src.dc == dst.dc
        assert src is not dst

    def test_validation(self):
        with pytest.raises(ValueError):
            MultiDCConfig(n_border_links=0)
        with pytest.raises(ValueError):
            MultiDCConfig(intra_rtt_ps=2 * MS, inter_rtt_ps=1 * MS)

    def test_end_to_end_cross_dc_delivery(self):
        from repro.sim.packet import DATA, Packet

        sim = Simulator()
        topo = MultiDC(sim, MultiDCConfig(k=4, n_border_links=2))
        src = topo.host(0, 0)
        dst = topo.host(1, 0)
        got = []
        dst.register(9, type("E", (), {"on_packet": staticmethod(got.append)})())
        src.send(Packet(DATA, 9, src.node_id, dst.node_id, seq=0, size=4096))
        sim.run()
        assert len(got) == 1
        # edge, agg, core, border0, border1, core, agg, edge = 8 switches.
        assert got[0].hops == 8
