import pytest

from repro.sim.engine import Simulator
from repro.sim.network import Network
from repro.sim.packet import DATA, Packet
from repro.sim.switch import flow_hash, mix64
from repro.sim.units import US


def star_net(n_out=4, mode="ecmp"):
    """src host -> switch -> n receiver hosts (multipath to one would need
    parallel links; here we check selection across destinations and
    parallel-link ECMP separately in test_network)."""
    sim = Simulator()
    net = Network(sim, seed=2)
    sw = net.add_switch("sw", mode=mode)
    src = net.add_host("src")
    dsts = [net.add_host(f"d{i}") for i in range(n_out)]
    net.add_link(src, sw, 100.0, 1 * US, 1_000_000)
    for d in dsts:
        net.add_link(sw, d, 100.0, 1 * US, 1_000_000)
    net.build_routes()
    return sim, net, sw, src, dsts


class TestHashing:
    def test_mix64_is_deterministic_and_spread(self):
        values = {mix64(i) for i in range(1000)}
        assert len(values) == 1000

    def test_flow_hash_depends_on_entropy(self):
        h1 = flow_hash(1, 2, 100, 200, salt=7)
        h2 = flow_hash(1, 2, 101, 200, salt=7)
        assert h1 != h2

    def test_flow_hash_depends_on_salt(self):
        h1 = flow_hash(1, 2, 100, 200, salt=7)
        h2 = flow_hash(1, 2, 100, 200, salt=8)
        assert h1 != h2

    def test_flow_hash_stable(self):
        assert flow_hash(1, 2, 3, 4, 5) == flow_hash(1, 2, 3, 4, 5)


class TestForwarding:
    def test_forwards_to_destination(self):
        sim, net, sw, src, dsts = star_net()
        target = dsts[2]
        received = []
        target.register(1, type("E", (), {"on_packet": staticmethod(received.append)})())
        pkt = Packet(DATA, 1, src.node_id, target.node_id, seq=0, size=1000)
        src.send(pkt)
        sim.run()
        assert len(received) == 1
        assert received[0].hops == 1

    def test_no_route_raises(self):
        sim, net, sw, src, dsts = star_net()
        pkt = Packet(DATA, 1, src.node_id, 9999, seq=0, size=1000)
        with pytest.raises(LookupError):
            sw.receive(pkt)

    def test_unknown_mode_rejected(self):
        sim = Simulator()
        net = Network(sim)
        with pytest.raises(ValueError):
            net.add_switch("bad", mode="wormhole")
        sw = net.add_switch("ok")
        with pytest.raises(ValueError):
            sw.set_mode("wormhole")


class TestECMPSelection:
    def _two_path_net(self, mode="ecmp"):
        """src - swA = (2 parallel links) = swB - dst."""
        sim = Simulator()
        net = Network(sim, seed=3)
        a = net.add_switch("a", mode=mode)
        b = net.add_switch("b", mode=mode)
        src = net.add_host("s")
        dst = net.add_host("d")
        net.add_link(src, a, 100.0, 1 * US, 10_000_000)
        net.add_link(a, b, 100.0, 1 * US, 10_000_000)
        net.add_link(a, b, 100.0, 1 * US, 10_000_000)
        net.add_link(b, dst, 100.0, 1 * US, 10_000_000)
        net.build_routes()
        return sim, net, a, b, src, dst

    def test_ecmp_same_flow_same_path(self):
        sim, net, a, b, src, dst = self._two_path_net("ecmp")
        ports = net.ports_between(a, b)
        for i in range(20):
            pkt = Packet(DATA, 1, src.node_id, dst.node_id, seq=i, size=1000,
                         sport=42, dport=7)
            src.send(pkt)
        sim.run()
        used = [p.link.delivered_pkts for p in ports]
        assert sorted(used) == [0, 20]  # all on one path

    def test_ecmp_different_entropy_can_differ(self):
        sim, net, a, b, src, dst = self._two_path_net("ecmp")
        ports = net.ports_between(a, b)
        for sport in range(64):
            pkt = Packet(DATA, 1, src.node_id, dst.node_id, seq=sport,
                         size=1000, sport=sport, dport=7)
            src.send(pkt)
        sim.run()
        used = [p.link.delivered_pkts for p in ports]
        assert all(u > 10 for u in used)  # both paths see traffic

    def test_rps_spreads_packets_of_one_flow(self):
        sim, net, a, b, src, dst = self._two_path_net("rps")
        ports = net.ports_between(a, b)
        for i in range(100):
            pkt = Packet(DATA, 1, src.node_id, dst.node_id, seq=i, size=1000,
                         sport=42, dport=7)
            src.send(pkt)
        sim.run()
        used = [p.link.delivered_pkts for p in ports]
        assert all(u >= 25 for u in used)
