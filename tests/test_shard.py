"""Boundary API + sharded-run tests.

Covers the three layers the sharding feature stacks up:

- the narrow :class:`PacketSink` wiring contract (``Link.connect``,
  ``Port.divert``, :class:`WiringError`);
- packet serialization across the shard boundary;
- the headline acceptance gate: a pinned deterministic two-DC workload
  run on one engine and on two shard engines must produce *identical*
  per-flow outcomes (FCT, retransmissions, timeouts, bytes acked), with
  cross-shard packet conservation checked on the obs ``invariant`` topic.
"""

import pytest

from repro.obs import TelemetryContext
from repro.sim.boundary import PacketSink, WiringError, check_sink
from repro.sim.engine import Simulator
from repro.sim.link import Link
from repro.sim.packet import ACK, DATA, Packet
from repro.sim.shard import pack_packet, unpack_packet
from repro.sim.units import US
from repro.experiments.sharded import (
    TwoDCWorkload,
    check_equivalence,
    run_sharded,
)

#: Small enough to finish in seconds, large enough to cross the border
#: in both directions and exercise many sync windows.
SMALL = TwoDCWorkload(max_flows=40, duration_ps=10_000_000_000)


class Sink:
    def __init__(self):
        self.received = []

    def receive(self, pkt):
        self.received.append(pkt)


def pkt(seq=0):
    return Packet(DATA, 1, 0, 1, seq=seq, size=4096)


class TestBoundaryProtocol:
    def test_sink_protocol_is_runtime_checkable(self):
        assert isinstance(Sink(), PacketSink)
        assert not isinstance(object(), PacketSink)

    def test_check_sink_accepts_and_returns(self):
        sink = Sink()
        assert check_sink(sink, "test") is sink

    def test_check_sink_rejects_non_sinks(self):
        with pytest.raises(WiringError):
            check_sink(object(), "test")
        with pytest.raises(WiringError):
            check_sink(None, "test")

    def test_connect_wires_once(self):
        sim = Simulator()
        link = Link(sim, 100.0, 1 * US)
        sink = Sink()
        assert link.connect(sink) is link
        assert link.dst is sink

    def test_double_connect_raises(self):
        sim = Simulator()
        link = Link(sim, 100.0, 1 * US)
        link.connect(Sink())
        with pytest.raises(WiringError):
            link.connect(Sink())

    def test_connect_rejects_non_sink(self):
        sim = Simulator()
        link = Link(sim, 100.0, 1 * US)
        with pytest.raises(WiringError):
            link.connect(object())

    def test_transmit_on_unwired_link_raises(self):
        sim = Simulator()
        link = Link(sim, 100.0, 1 * US)
        with pytest.raises(WiringError):
            link.transmit(pkt())

    def test_link_receive_aliases_transmit(self):
        # A Link is itself a PacketSink: upstream components hand off
        # through .receive() without knowing what kind of hop comes next.
        sim = Simulator()
        link = Link(sim, 100.0, 1 * US)
        sink = Sink()
        link.connect(sink)
        link.receive(pkt())
        sim.run()
        assert len(sink.received) == 1

    def test_port_divert_swaps_and_returns_old_sink(self):
        from repro.sim.queues import Port

        sim = Simulator()
        link = Link(sim, 100.0, 1 * US)
        link.connect(Sink())
        port = Port(sim, link, capacity_bytes=64 * 1024)
        capture = Sink()
        old = port.divert(capture)
        assert old is link
        port.receive(pkt())
        sim.run()
        assert len(capture.received) == 1  # diverted: never hit the link
        assert link.dst.received == []

    def test_port_divert_rejects_non_sink(self):
        from repro.sim.queues import Port

        sim = Simulator()
        link = Link(sim, 100.0, 1 * US)
        link.connect(Sink())
        port = Port(sim, link, capacity_bytes=64 * 1024)
        with pytest.raises(WiringError):
            port.divert(object())


class TestPacketSerialization:
    def test_round_trip_preserves_every_slot(self):
        p = Packet(ACK, 7, 3, 9, seq=42, size=64, sport=5, dport=6,
                   payload=17)
        p.ecn = True
        p.sent_ps = 123_456
        p.retx = 2
        p.hops = 5
        q = unpack_packet(pack_packet(p))
        for slot in Packet.__slots__:
            assert getattr(q, slot) == getattr(p, slot), slot

    def test_packed_form_is_a_plain_tuple(self):
        packed = pack_packet(pkt())
        assert isinstance(packed, tuple)
        assert len(packed) == len(Packet.__slots__)


class TestShardedEquivalence:
    def test_rejects_unsupported_shard_counts(self):
        with pytest.raises(ValueError):
            run_sharded(SMALL, shards=3)

    def test_two_shards_match_single_engine_flow_for_flow(self):
        report = check_equivalence(SMALL, processes=False)
        assert report["mismatches"] == []
        assert report["violations"] == []
        assert report["equivalent"]
        assert report["flows"] == SMALL.max_flows
        sharded = report["sharded"]
        assert sharded["unfinished"] == 0
        assert sharded["rounds"] > 1  # really went through sync windows
        # Traffic crossed the border both ways.
        for res in sharded["shard_results"]:
            assert sum(res["boundary_sent"].values()) > 0
            assert sum(res["boundary_injected"].values()) > 0

    def test_conservation_emitted_on_invariant_topic(self):
        with TelemetryContext(event_topics=["invariant"],
                              profile=False) as ctx:
            summary = run_sharded(SMALL, shards=2, processes=False)
        assert summary["violations"] == []
        records = [e for bundle in ctx.bundles
                   for e in bundle.events.events("invariant")
                   if e["kind"] == "shard_boundary"]
        # One record per (shard, ingress channel), every one conserved.
        assert len(records) >= 2
        assert all(e["ok"] for e in records)
        assert all(e["sent"] == e["injected"] for e in records)

    def test_process_mode_matches_inline_mode(self):
        inline = run_sharded(SMALL, shards=2, processes=False)
        procs = run_sharded(SMALL, shards=2, processes=True)
        assert procs["violations"] == []
        assert procs["flows"] == inline["flows"]
        assert procs["rounds"] == inline["rounds"]
        assert procs["total_events"] == inline["total_events"]
