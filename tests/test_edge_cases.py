"""Edge cases and failure-injection corners across the stack."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.failures import schedule_bidirectional_failure
from repro.sim.packet import DATA, Packet
from repro.sim.units import MIB, MS, US
from repro.topology.simple import incast_star
from repro.transport.base import CongestionControl, start_flow
from repro.transport.dctcp import DCTCP


class OpenLoop(CongestionControl):
    def on_init(self, sender):
        sender.cwnd = float(1 << 50)


class TestTinyFlows:
    def test_one_byte_flow(self):
        sim = Simulator()
        topo = incast_star(sim, 1, prop_ps=1 * US)
        done = []
        s = start_flow(sim, topo.net, OpenLoop(), topo.senders[0],
                       topo.receivers[0], 1, on_complete=done.append)
        sim.run(until=10**11)
        assert done
        assert s.stats.data_pkts_sent == 1
        assert s.payload_of(0) == 1

    def test_exactly_mss_flow(self):
        sim = Simulator()
        topo = incast_star(sim, 1, prop_ps=1 * US)
        s = start_flow(sim, topo.net, OpenLoop(), topo.senders[0],
                       topo.receivers[0], 4096)
        sim.run(until=10**11)
        assert s.done
        assert s.stats.data_pkts_sent == 1

    def test_mss_plus_one(self):
        sim = Simulator()
        topo = incast_star(sim, 1, prop_ps=1 * US)
        s = start_flow(sim, topo.net, OpenLoop(), topo.senders[0],
                       topo.receivers[0], 4097)
        sim.run(until=10**11)
        assert s.done
        assert s.stats.data_pkts_sent == 2
        assert s.payload_of(1) == 1


class TestTotalBlackout:
    def test_flow_survives_transient_total_outage(self):
        """Fail the only path mid-flow; the flow must finish after repair
        via RTO-driven retransmission."""
        sim = Simulator()
        topo = incast_star(sim, 1, prop_ps=1 * US)
        net = topo.net
        sw = net.node("sw")
        up = net.link_between(topo.senders[0], sw)
        down = net.link_between(sw, topo.senders[0])
        schedule_bidirectional_failure(sim, up, down, fail_at_ps=100 * US,
                                       repair_after_ps=5 * MS)
        done = []
        s = start_flow(sim, net, DCTCP(), topo.senders[0], topo.receivers[0],
                       2 * MIB, base_rtt_ps=14 * US, on_complete=done.append)
        sim.run(until=10**12)
        assert done
        assert s.stats.timeouts >= 1
        assert s.stats.fct_ps > 5 * MS  # had to sit out the outage

    def test_permanent_outage_never_completes(self):
        sim = Simulator()
        topo = incast_star(sim, 1, prop_ps=1 * US)
        net = topo.net
        sw = net.node("sw")
        net.link_between(topo.senders[0], sw).fail()
        done = []
        start_flow(sim, net, DCTCP(), topo.senders[0], topo.receivers[0],
                   MIB, base_rtt_ps=14 * US, on_complete=done.append)
        sim.run(until=50 * MS)
        assert not done


class TestAckPathLoss:
    def test_flow_completes_when_acks_are_lossy(self):
        from repro.sim.failures import BernoulliLoss

        sim = Simulator()
        topo = incast_star(sim, 1, prop_ps=1 * US)
        net = topo.net
        sw = net.node("sw")
        # Drop 20% of everything on the reverse (ACK) path.
        net.link_between(sw, topo.senders[0]).loss_model = BernoulliLoss(0.2, 3)
        done = []
        s = start_flow(sim, net, DCTCP(), topo.senders[0], topo.receivers[0],
                       MIB, base_rtt_ps=14 * US, on_complete=done.append)
        sim.run(until=10**12)
        assert done
        # Lost ACKs cause (spurious but harmless) retransmissions.
        assert s.stats.retransmissions > 0


class TestMonitorHookAndCounters:
    def test_drop_monitor_callback(self):
        sim = Simulator()
        topo = incast_star(sim, 1, prop_ps=1 * US, queue_bytes=8192)
        events = []
        topo.bottleneck.monitor = (
            lambda port, kind, pkt, info: events.append(kind)
        )
        for i in range(5):
            topo.bottleneck.enqueue(
                Packet(DATA, 1, 0, 1, seq=i, size=4096)
            )
        assert events.count("drop") == 3

    def test_mark_monitor_callback_carries_decision(self):
        from repro.sim.queues import PhantomQueueConfig, REDConfig

        sim = Simulator()
        topo = incast_star(
            sim, 1, prop_ps=1 * US, queue_bytes=64 * 1024,
            red=REDConfig(min_frac=0.0, max_frac=0.0),  # always RED-mark
            phantom=PhantomQueueConfig(mark_threshold_bytes=1),
        )
        seen = []
        topo.bottleneck.monitor = (
            lambda port, kind, pkt, info: seen.append((kind, info))
        )
        for i in range(3):
            topo.bottleneck.enqueue(Packet(DATA, 1, 0, 1, seq=i, size=4096))
        marks = [info for kind, info in seen if kind == "mark"]
        assert marks, "monitor never fired on a mark"
        for info in marks:
            assert set(info) == {"phys", "phantom"}
            assert info["phys"] or info["phantom"]
        assert all(info["phys"] for info in marks)  # RED always marks here
        port = topo.bottleneck
        assert port.marked_pkts == len(marks)
        assert port.red_marked_pkts == sum(i["phys"] for i in marks)
        assert port.phantom_marked_pkts == sum(i["phantom"] for i in marks)

    def test_link_counters_consistent(self):
        sim = Simulator()
        topo = incast_star(sim, 2, prop_ps=1 * US)
        done = []
        for i, snd in enumerate(topo.senders):
            start_flow(sim, topo.net, DCTCP(), snd, topo.receivers[0],
                       MIB // 4, base_rtt_ps=14 * US, seed=i,
                       on_complete=done.append)
        sim.run(until=10**12)
        assert len(done) == 2
        link = topo.bottleneck.link
        assert link.delivered_pkts > 0
        assert link.lost_pkts == 0
        assert link.failed_drops == 0
