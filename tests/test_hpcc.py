"""INT substrate and the simplified HPCC controller."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.packet import ACK, DATA, Packet
from repro.sim.units import MIB, US
from repro.topology.simple import incast_star
from repro.transport.base import start_flow
from repro.transport.hpcc import HPCC, HPCCConfig


class TestINTStamping:
    def _topo(self):
        sim = Simulator()
        topo = incast_star(sim, 2, prop_ps=1 * US)
        for node in topo.net.nodes:
            for port in node.ports.values():
                port.enable_int(14 * US)
        return sim, topo

    def test_enable_int_validation(self):
        sim = Simulator()
        topo = incast_star(sim, 1)
        with pytest.raises(ValueError):
            topo.bottleneck.enable_int(0)

    def test_packets_carry_max_path_utilization(self):
        sim, topo = self._topo()
        got = []

        class Sink:
            def on_packet(self, pkt):
                got.append(pkt)

        topo.receivers[0].register(9, Sink())
        src = topo.senders[0]
        for i in range(40):
            src.send(Packet(DATA, 9, src.node_id, topo.receivers[0].node_id,
                            seq=i, size=4096))
        sim.run()
        assert got
        # A burst of 40 packets through one port must register high
        # utilization (full line rate plus standing queue).
        utils = [p.int_util for p in got]
        assert max(utils) > 0.5
        assert all(u >= 0 for u in utils)

    def test_int_disabled_means_zero(self):
        sim = Simulator()
        topo = incast_star(sim, 1, prop_ps=1 * US)
        got = []

        class Sink:
            def on_packet(self, pkt):
                got.append(pkt)

        topo.receivers[0].register(9, Sink())
        src = topo.senders[0]
        src.send(Packet(DATA, 9, src.node_id, topo.receivers[0].node_id,
                        seq=0, size=4096))
        sim.run()
        assert got[0].int_util == 0.0

    def test_ack_echoes_int(self):
        from repro.sim.packet import make_ack

        pkt = Packet(DATA, 1, 0, 1, seq=0, size=4096)
        pkt.int_util = 0.7
        ack = make_ack(pkt, now_ps=0)
        assert ack.int_util == pytest.approx(0.7)


class TestHPCCController:
    def _stub(self):
        class S:
            def __init__(self):
                from repro.sim.units import bdp_bytes

                self.sim = Simulator()
                self.mss = 4096
                self.base_rtt_ps = 14 * US
                self.line_gbps = 100.0
                self.bdp_bytes = bdp_bytes(14 * US, 100.0)
                self.cwnd = 4096.0
                self.pacing_rate_gbps = None
                self.srtt_ps = float(14 * US)

        return S()

    def _ack(self, util):
        a = Packet(ACK, 1, 1, 0, seq=0, size=64, payload=4096)
        a.int_util = util
        return a

    def test_config_validation(self):
        with pytest.raises(ValueError):
            HPCCConfig(eta=0.0)
        with pytest.raises(ValueError):
            HPCCConfig(w_ai_pkts=-1)

    def test_overutilized_path_shrinks_window(self):
        s = self._stub()
        cc = HPCC()
        cc.on_init(s)
        before = s.cwnd
        cc.on_ack(s, self._ack(util=2.0), rtt_ps=14 * US, ecn=False)
        assert s.cwnd < before

    def test_underutilized_path_grows_window(self):
        s = self._stub()
        cc = HPCC()
        cc.on_init(s)
        before = s.cwnd
        cc.on_ack(s, self._ack(util=0.3), rtt_ps=14 * US, ecn=False)
        assert s.cwnd > before

    def test_no_int_falls_back_to_additive(self):
        s = self._stub()
        cc = HPCC()
        cc.on_init(s)
        before = s.cwnd
        cc.on_ack(s, self._ack(util=0.0), rtt_ps=14 * US, ecn=False)
        assert s.cwnd == pytest.approx(before + 0.5 * s.mss)

    def test_window_bounds(self):
        s = self._stub()
        cc = HPCC()
        cc.on_init(s)
        for _ in range(50):
            cc.on_ack(s, self._ack(util=0.01), rtt_ps=14 * US, ecn=False)
        assert s.cwnd <= 2 * s.bdp_bytes
        for _ in range(50):
            cc.on_ack(s, self._ack(util=50.0), rtt_ps=14 * US, ecn=False)
        assert s.cwnd >= s.mss

    def test_end_to_end_incast(self):
        sim = Simulator()
        topo = incast_star(sim, 4, prop_ps=1 * US)
        for node in topo.net.nodes:
            for port in node.ports.values():
                port.enable_int(14 * US)
        done = []
        for i, snd in enumerate(topo.senders):
            start_flow(sim, topo.net, HPCC(), snd, topo.receivers[0],
                       MIB, base_rtt_ps=14 * US, seed=i,
                       on_complete=done.append)
        sim.run(until=10**12)
        assert len(done) == 4

    def test_hpcc_keeps_queue_low(self):
        """HPCC's whole point: near-eta utilization with tiny queues."""
        from repro.sim.trace import QueueMonitor

        sim = Simulator()
        topo = incast_star(sim, 4, prop_ps=1 * US)
        for node in topo.net.nodes:
            for port in node.ports.values():
                port.enable_int(14 * US)
        mon = QueueMonitor(sim, topo.bottleneck, interval_ps=20 * US)
        done = []
        for i, snd in enumerate(topo.senders):
            start_flow(sim, topo.net, HPCC(), snd, topo.receivers[0],
                       4 * MIB, base_rtt_ps=14 * US, seed=i,
                       on_complete=done.append)
        sim.run(until=10**12)
        assert len(done) == 4
        # Mean occupancy well below the RED band a DCTCP run would hold.
        assert mon.mean_physical() < 128 * 1024
