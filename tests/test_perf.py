"""Hot-path overhaul invariants: coalesced event streams, tombstone
compaction, packet pooling, and lazy metric registration.

The perf work in engine/link/queues must be *observationally invisible*:
same event order, same results, byte-identical summaries. These tests pin
that bar — plus the safety nets (poison pooling, failure flush telemetry)
the optimizations ship with.
"""

import random

import pytest

import repro.sim.link as link_mod
from repro import obs
from repro.experiments import fig1
from repro.experiments.api import canonical_json
from repro.experiments.harness import (
    ExperimentScale,
    build_multidc,
    make_launcher,
    run_specs,
)
from repro.obs import TelemetryContext, enable
from repro.sim import packet as packet_mod
from repro.sim.engine import Simulator
from repro.sim.host import Host
from repro.sim.link import Link
from repro.sim.packet import ACK, DATA, Packet, PacketPool
from repro.sim.units import KIB, US
from repro.workloads.alibaba_wan import ALIBABA_WAN_CDF
from repro.workloads.generator import PoissonTraffic, TrafficConfig
from repro.workloads.websearch import WEBSEARCH_CDF

SCALE = ExperimentScale.quick()


# ----------------------------------------------------------------------
# engine: reserved sequences, rearm, compaction, live_pending
# ----------------------------------------------------------------------


class TestEngine:
    def test_same_picosecond_scheduling_order_property(self):
        """Same-time events fire in scheduling order, no matter how they
        were scheduled: plain at(), cancelled tombstones in between, or
        reserved seqs armed later (in shuffled arming order)."""
        rng = random.Random(7)
        for _ in range(25):
            sim = Simulator()
            fired, expected, reserved = [], [], []
            t = 1_000
            for i in range(rng.randrange(2, 40)):
                style = rng.randrange(3)
                if style == 0:
                    sim.at(t, fired.append, i)
                    expected.append(i)
                elif style == 1:
                    sim.at(t, fired.append, -1).cancel()
                else:
                    reserved.append((sim.reserve_seq(), i))
                    expected.append(i)
            rng.shuffle(reserved)  # push order must not matter
            for seq, i in reserved:
                sim.at_seq(t, seq, fired.append, i)
            sim.run()
            assert fired == expected

    def test_rearm_refires_and_rejects_cancelled(self):
        sim = Simulator()
        out = []
        handle = sim.at(5, out.append, 1)
        sim.run()
        assert out == [1]
        sim.rearm(handle, 10)
        sim.run()
        assert out == [1, 1]
        dead = sim.at(20, out.append, 2)
        dead.cancel()
        with pytest.raises(ValueError):
            sim.rearm(dead, 30)

    def test_at_seq_rejects_past(self):
        sim = Simulator()
        sim.at(10, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.at_seq(5, sim.reserve_seq(), lambda: None)

    def test_live_pending_excludes_tombstones(self):
        sim = Simulator()
        keep = sim.at(10, lambda: None)
        sim.at(20, lambda: None).cancel()
        assert sim.pending == 2
        assert sim.live_pending == 1
        keep.cancel()
        assert sim.live_pending == 0
        assert sim.peek_time() is None

    def test_compaction_drops_tombstones_and_preserves_order(self):
        sim = Simulator()
        fired = []
        handles = [sim.at(10_000 + i, fired.append, i) for i in range(1000)]
        for handle in handles[:900]:
            handle.cancel()
        assert sim.pending == 1000 and sim.live_pending == 100
        sim.at(50_000, fired.append, 1000)  # schedule triggers compaction
        assert sim.compactions >= 1
        assert sim.pending == sim.live_pending == 101
        sim.run()
        assert fired == list(range(900, 1000)) + [1000]

    def test_run_until_pushes_back_future_event(self):
        sim = Simulator()
        out = []
        sim.at(5, out.append, 1)
        sim.at(50, out.append, 2)
        sim.run(until=10)
        assert out == [1] and sim.now == 10 and sim.live_pending == 1
        sim.run()
        assert out == [1, 2]


# ----------------------------------------------------------------------
# link: coalesced delivery, failure flush, in-flight loss telemetry
# ----------------------------------------------------------------------


class _Sink:
    def __init__(self):
        self.got = []

    def receive(self, pkt):
        self.got.append(pkt)


def _data(seq=0, size=1000):
    return Packet(DATA, flow_id=1, src=0, dst=1, seq=seq, size=size)


class TestLinkCoalescing:
    def test_single_armed_event_many_inflight(self):
        sim = Simulator()
        link = Link(sim, 100.0, prop_ps=5 * US)
        link.connect(_Sink())
        for seq in range(10):
            link.transmit(_data(seq))
            sim.run(until=sim.now + 10)  # distinct transmit times
        assert link.inflight_pkts == 10
        assert sim.live_pending == 1  # ONE drain event for all ten
        sim.run()
        assert link.delivered_pkts == 10
        assert [p.seq for p in link.dst.got] == list(range(10))
        assert link.inflight_pkts == 0

    def test_fail_flushes_inflight_with_telemetry(self):
        sim = Simulator()
        bundle = enable(sim, event_topics="all", profile=False)
        link = Link(sim, 100.0, prop_ps=5 * US, name="l")
        link.connect(_Sink())
        link.transmit(_data(0))
        link.transmit(_data(1))
        sim.run(until=2 * US)
        link.fail()
        sim.run()
        assert link.failed_drops == 2
        assert link.dst.got == []
        drops = bundle.events.events(topic="failure", kind="failed_drop")
        assert [e["seq"] for e in drops] == [0, 1]

    def test_transmit_while_down_emits_failed_drop(self):
        sim = Simulator()
        bundle = enable(sim, event_topics="all", profile=False)
        link = Link(sim, 100.0, prop_ps=5 * US, name="l")
        link.connect(_Sink())
        link.fail()
        link.transmit(_data(3))
        assert link.failed_drops == 1
        assert bundle.events.events(topic="failure",
                                    kind="failed_drop")[0]["seq"] == 3

    def test_reference_path_inflight_failure_emits_event(self, monkeypatch):
        # Satellite bugfix: the per-packet path used to drop silently
        # when the link failed mid-flight.
        monkeypatch.setattr(link_mod, "COALESCED_DELIVERY", False)
        sim = Simulator()
        bundle = enable(sim, event_topics="all", profile=False)
        link = Link(sim, 100.0, prop_ps=5 * US, name="l")
        link.connect(_Sink())
        link.transmit(_data(9))
        sim.run(until=2 * US)
        link.fail()
        sim.run()
        assert link.failed_drops == 1
        assert bundle.events.events(topic="failure",
                                    kind="failed_drop")[0]["seq"] == 9

    def test_restore_after_fail_delivers_again(self):
        sim = Simulator()
        link = Link(sim, 100.0, prop_ps=5 * US)
        link.connect(_Sink())
        link.transmit(_data(0))
        sim.run(until=1 * US)
        link.fail()
        link.restore()
        link.transmit(_data(1))
        sim.run()
        assert link.failed_drops == 1
        assert [p.seq for p in link.dst.got] == [1]


# ----------------------------------------------------------------------
# determinism: coalesced vs reference path, repeat runs
# ----------------------------------------------------------------------


def _mixed_traffic_summary(seed: int):
    """A small two-DC Poisson run reduced to a canonical JSON summary."""
    sim = Simulator()
    params = SCALE.params()
    topo = build_multidc(sim, "uno", params, SCALE, seed=seed)
    traffic = PoissonTraffic(
        topo,
        TrafficConfig(
            load=0.3,
            duration_ps=3_000_000_000,
            intra_cdf=WEBSEARCH_CDF.scaled(1 / 64),
            inter_cdf=ALIBABA_WAN_CDF.scaled(1 / 64),
            max_flows=30,
            seed=seed,
        ),
    )
    specs = traffic.generate()
    launcher = make_launcher("uno", sim, topo, params, seed=seed)
    senders = run_specs(sim, specs, launcher, SCALE.horizon_ps)
    summary = canonical_json([
        (s.flow_id, s.stats.fct_ps, s.stats.retransmissions)
        for s in senders
    ])
    return summary, sim.events_executed


class TestDeterminism:
    def test_coalesced_matches_reference_path(self, monkeypatch):
        """The coalesced delivery stream is event-for-event identical to
        the one-heap-entry-per-packet reference path: byte-identical
        summaries AND the same executed-event count."""
        coalesced = _mixed_traffic_summary(71)
        monkeypatch.setattr(link_mod, "COALESCED_DELIVERY", False)
        reference = _mixed_traffic_summary(71)
        assert coalesced == reference

    def test_repeat_run_byte_identical(self):
        assert _mixed_traffic_summary(43) == _mixed_traffic_summary(43)

    def test_fig1_point_run_twice_byte_identical(self):
        point = fig1.points(quick=True)[0]
        first = canonical_json(fig1.run_point(point))
        second = canonical_json(fig1.run_point(point))
        assert first == second


# ----------------------------------------------------------------------
# packet pooling
# ----------------------------------------------------------------------


class TestPacketPool:
    def test_recycles_released_objects(self):
        pool = PacketPool()
        pkt = pool.acquire(DATA, 1, src=2, dst=3, seq=0, size=100)
        pool.release(pkt)
        again = pool.acquire(ACK, 1, src=3, dst=2, seq=0, size=64)
        assert again is pkt
        assert again.kind == ACK and again.ecn is False and again.retx == 0
        assert pool.stats()["recycled"] == 1

    def test_double_release_raises(self):
        pool = PacketPool()
        pkt = pool.acquire(DATA, 1, src=2, dst=3, seq=0, size=100)
        pool.release(pkt)
        with pytest.raises(RuntimeError, match="double release"):
            pool.release(pkt)

    def test_poison_catches_write_after_release(self):
        pool = PacketPool(poison=True)
        pkt = pool.acquire(DATA, 1, src=2, dst=3, seq=0, size=100)
        pool.release(pkt)
        pkt.seq = 7  # stale alias writes through
        with pytest.raises(RuntimeError, match="written after release"):
            pool.acquire(DATA, 1, src=2, dst=3, seq=1, size=100)

    def test_env_opt_in(self, monkeypatch):
        monkeypatch.setattr(packet_mod, "_POOL_MODE", "")
        assert packet_mod.default_pool() is None
        monkeypatch.setattr(packet_mod, "_POOL_MODE", "1")
        pool = packet_mod.default_pool()
        assert isinstance(pool, PacketPool) and not pool.poison
        monkeypatch.setattr(packet_mod, "_POOL_MODE", "poison")
        assert packet_mod.default_pool().poison

    def test_end_to_end_poison_run_recycles(self):
        """A full dumbbell transfer under poison pooling: completes, and
        actually recycles packets (the release rules do fire)."""
        from repro.topology.simple import dumbbell
        from repro.transport.dctcp import DCTCP
        from repro.transport.base import start_flow

        sim = Simulator()
        topo = dumbbell(sim, n_pairs=2, gbps=25.0, prop_ps=1 * US,
                        queue_bytes=256 * KIB, seed=3)
        hosts = list(topo.senders) + list(topo.receivers)
        for host in hosts:
            host.enable_packet_pool(poison=True)
        senders = [
            start_flow(sim, topo.net, DCTCP(), s, r, 256 * KIB,
                       base_rtt_ps=8 * US, seed=i)
            for i, (s, r) in enumerate(zip(topo.senders, topo.receivers))
        ]
        sim.run()
        assert all(s.done for s in senders)
        assert sum(h.pool.recycled for h in hosts) > 0

    def test_pooled_results_match_unpooled(self):
        """Pooling must not change simulation results, only allocation."""
        from repro.topology.simple import dumbbell
        from repro.transport.dctcp import DCTCP
        from repro.transport.base import start_flow

        def fcts(pooled: bool):
            sim = Simulator()
            topo = dumbbell(sim, n_pairs=2, gbps=25.0, prop_ps=1 * US,
                            queue_bytes=256 * KIB, seed=3)
            for host in list(topo.senders) + list(topo.receivers):
                host.pool = PacketPool(poison=True) if pooled else None
            senders = [
                start_flow(sim, topo.net, DCTCP(), s, r, 256 * KIB,
                           base_rtt_ps=8 * US, seed=i)
                for i, (s, r) in enumerate(
                    zip(topo.senders, topo.receivers))
            ]
            sim.run()
            return [(s.stats.fct_ps, s.stats.retransmissions)
                    for s in senders]

        assert fcts(pooled=True) == fcts(pooled=False)


# ----------------------------------------------------------------------
# lazy metric registration
# ----------------------------------------------------------------------


class TestLazyMetrics:
    def test_gauges_materialize_at_snapshot(self):
        with TelemetryContext(profile=False):
            sim = Simulator()
            Link(sim, 10.0, prop_ps=5, name="lz")
            registry = sim.obs.metrics
            assert registry._gauges == {}  # registration deferred
            snap = registry.snapshot()
        assert snap["link"]["lz"]["delivered_pkts"] == 0
        assert snap["link"]["lz"]["up"] is True

    def test_value_reads_deferred_gauge(self):
        with TelemetryContext(profile=False):
            sim = Simulator()
            link = Link(sim, 10.0, prop_ps=5, name="lz2")
            link.delivered_pkts = 4
            assert sim.obs.metrics.value("link.lz2.delivered_pkts") == 4

    def test_duplicate_names_still_detected(self):
        with TelemetryContext(profile=False):
            sim = Simulator()
            Link(sim, 10.0, prop_ps=5, name="dup")
            Link(sim, 10.0, prop_ps=5, name="dup")
            with pytest.raises(ValueError, match="already registered"):
                sim.obs.metrics.snapshot()


# ----------------------------------------------------------------------
# host pool default
# ----------------------------------------------------------------------


class TestHostPool:
    def test_enable_packet_pool(self):
        sim = Simulator()
        host = Host(sim, 0, "h0")
        pool = host.enable_packet_pool(poison=True)
        assert host.pool is pool and pool.poison
