"""Hot-path overhaul invariants: coalesced event streams, tombstone
compaction, packet pooling, and lazy metric registration.

The perf work in engine/link/queues must be *observationally invisible*:
same event order, same results, byte-identical summaries. These tests pin
that bar — plus the safety nets (poison pooling, failure flush telemetry)
the optimizations ship with.
"""

import random

import pytest

import repro.sim.link as link_mod
import repro.sim.queues as queues_mod
from repro import obs
from repro.experiments import fig1
from repro.experiments.api import canonical_json
from repro.experiments.harness import (
    ExperimentScale,
    build_multidc,
    make_launcher,
    run_specs,
)
from repro.obs import TelemetryContext, enable
from repro.sim import packet as packet_mod
from repro.sim.engine import Simulator
from repro.sim.host import Host
from repro.sim.link import Link
from repro.sim.packet import ACK, DATA, Packet, PacketPool, SoAPacketPool
from repro.sim.queues import Port
from repro.sim.units import KIB, US
from repro.workloads.alibaba_wan import ALIBABA_WAN_CDF
from repro.workloads.generator import PoissonTraffic, TrafficConfig
from repro.workloads.websearch import WEBSEARCH_CDF

SCALE = ExperimentScale.quick()


# ----------------------------------------------------------------------
# engine: reserved sequences, rearm, compaction, live_pending
# ----------------------------------------------------------------------


class TestEngine:
    def test_same_picosecond_scheduling_order_property(self):
        """Same-time events fire in scheduling order, no matter how they
        were scheduled: plain at(), cancelled tombstones in between, or
        reserved seqs armed later (in shuffled arming order)."""
        rng = random.Random(7)
        for _ in range(25):
            sim = Simulator()
            fired, expected, reserved = [], [], []
            t = 1_000
            for i in range(rng.randrange(2, 40)):
                style = rng.randrange(3)
                if style == 0:
                    sim.at(t, fired.append, i)
                    expected.append(i)
                elif style == 1:
                    sim.at(t, fired.append, -1).cancel()
                else:
                    reserved.append((sim.reserve_seq(), i))
                    expected.append(i)
            rng.shuffle(reserved)  # push order must not matter
            for seq, i in reserved:
                sim.at_seq(t, seq, fired.append, i)
            sim.run()
            assert fired == expected

    def test_rearm_refires_and_rejects_cancelled(self):
        sim = Simulator()
        out = []
        handle = sim.at(5, out.append, 1)
        sim.run()
        assert out == [1]
        sim.rearm(handle, 10)
        sim.run()
        assert out == [1, 1]
        dead = sim.at(20, out.append, 2)
        dead.cancel()
        with pytest.raises(ValueError):
            sim.rearm(dead, 30)

    def test_at_seq_rejects_past(self):
        sim = Simulator()
        sim.at(10, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.at_seq(5, sim.reserve_seq(), lambda: None)

    def test_live_pending_excludes_tombstones(self):
        sim = Simulator()
        keep = sim.at(10, lambda: None)
        sim.at(20, lambda: None).cancel()
        assert sim.pending == 2
        assert sim.live_pending == 1
        keep.cancel()
        assert sim.live_pending == 0
        assert sim.peek_time() is None

    def test_compaction_drops_tombstones_and_preserves_order(self):
        # Compaction triggers on the CANCEL that pushes tombstones to
        # half the heap — scheduling never re-checks. The mass-cancel
        # below therefore compacts (possibly repeatedly) mid-loop, and
        # the heap ends with tombstones strictly under half.
        sim = Simulator()
        fired = []
        handles = [sim.at(10_000 + i, fired.append, i) for i in range(1000)]
        for handle in handles[:900]:
            handle.cancel()
        assert sim.compactions >= 1
        assert sim.live_pending == 100
        assert sim.pending - sim.live_pending < sim.pending / 2
        sim.at(50_000, fired.append, 1000)
        sim.run()
        assert fired == list(range(900, 1000)) + [1000]

    def test_cancel_after_fire_is_a_noop(self):
        sim = Simulator()
        fired = []
        handle = sim.at(10, fired.append, 1)
        sim.run()
        assert fired == [1] and handle.fired
        before = sim._n_cancelled
        handle.cancel()  # late cancel: timer already went off
        assert not handle.cancelled
        assert sim._n_cancelled == before
        sim.rearm(handle, 20)  # perpetual handles stay re-armable
        sim.run()
        assert fired == [1, 1]

    def test_credit_events_counts_as_executed(self):
        sim = Simulator()
        sim.at(10, lambda: sim.credit_events(5))
        sim.run()
        assert sim.events_executed == 6

    def test_run_until_pushes_back_future_event(self):
        sim = Simulator()
        out = []
        sim.at(5, out.append, 1)
        sim.at(50, out.append, 2)
        sim.run(until=10)
        assert out == [1] and sim.now == 10 and sim.live_pending == 1
        sim.run()
        assert out == [1, 2]


# ----------------------------------------------------------------------
# link: coalesced delivery, failure flush, in-flight loss telemetry
# ----------------------------------------------------------------------


class _Sink:
    def __init__(self):
        self.got = []

    def receive(self, pkt):
        self.got.append(pkt)


def _data(seq=0, size=1000):
    return Packet(DATA, flow_id=1, src=0, dst=1, seq=seq, size=size)


class TestLinkCoalescing:
    def test_single_armed_event_many_inflight(self):
        sim = Simulator()
        link = Link(sim, 100.0, prop_ps=5 * US)
        link.connect(_Sink())
        for seq in range(10):
            link.transmit(_data(seq))
            sim.run(until=sim.now + 10)  # distinct transmit times
        assert link.inflight_pkts == 10
        assert sim.live_pending == 1  # ONE drain event for all ten
        sim.run()
        assert link.delivered_pkts == 10
        assert [p.seq for p in link.dst.got] == list(range(10))
        assert link.inflight_pkts == 0

    def test_fail_flushes_inflight_with_telemetry(self):
        sim = Simulator()
        bundle = enable(sim, event_topics="all", profile=False)
        link = Link(sim, 100.0, prop_ps=5 * US, name="l")
        link.connect(_Sink())
        link.transmit(_data(0))
        link.transmit(_data(1))
        sim.run(until=2 * US)
        link.fail()
        sim.run()
        assert link.failed_drops == 2
        assert link.dst.got == []
        drops = bundle.events.events(topic="failure", kind="failed_drop")
        assert [e["seq"] for e in drops] == [0, 1]

    def test_transmit_while_down_emits_failed_drop(self):
        sim = Simulator()
        bundle = enable(sim, event_topics="all", profile=False)
        link = Link(sim, 100.0, prop_ps=5 * US, name="l")
        link.connect(_Sink())
        link.fail()
        link.transmit(_data(3))
        assert link.failed_drops == 1
        assert bundle.events.events(topic="failure",
                                    kind="failed_drop")[0]["seq"] == 3

    def test_reference_path_inflight_failure_emits_event(self, monkeypatch):
        # Satellite bugfix: the per-packet path used to drop silently
        # when the link failed mid-flight.
        monkeypatch.setattr(link_mod, "COALESCED_DELIVERY", False)
        sim = Simulator()
        bundle = enable(sim, event_topics="all", profile=False)
        link = Link(sim, 100.0, prop_ps=5 * US, name="l")
        link.connect(_Sink())
        link.transmit(_data(9))
        sim.run(until=2 * US)
        link.fail()
        sim.run()
        assert link.failed_drops == 1
        assert bundle.events.events(topic="failure",
                                    kind="failed_drop")[0]["seq"] == 9

    def test_restore_after_fail_delivers_again(self):
        sim = Simulator()
        link = Link(sim, 100.0, prop_ps=5 * US)
        link.connect(_Sink())
        link.transmit(_data(0))
        sim.run(until=1 * US)
        link.fail()
        link.restore()
        link.transmit(_data(1))
        sim.run()
        assert link.failed_drops == 1
        assert [p.seq for p in link.dst.got] == [1]


# ----------------------------------------------------------------------
# determinism: coalesced vs reference path, repeat runs
# ----------------------------------------------------------------------


def _mixed_traffic_summary(seed: int, poison: bool = False):
    """A small two-DC Poisson run reduced to a canonical JSON summary."""
    sim = Simulator()
    params = SCALE.params()
    topo = build_multidc(sim, "uno", params, SCALE, seed=seed)
    if poison:
        for host in topo.all_hosts():
            host.enable_packet_pool(poison=True)
    traffic = PoissonTraffic(
        topo,
        TrafficConfig(
            load=0.3,
            duration_ps=3_000_000_000,
            intra_cdf=WEBSEARCH_CDF.scaled(1 / 64),
            inter_cdf=ALIBABA_WAN_CDF.scaled(1 / 64),
            max_flows=30,
            seed=seed,
        ),
    )
    specs = traffic.generate()
    launcher = make_launcher("uno", sim, topo, params, seed=seed)
    senders = run_specs(sim, specs, launcher, SCALE.horizon_ps)
    summary = canonical_json([
        (s.flow_id, s.stats.fct_ps, s.stats.retransmissions)
        for s in senders
    ])
    return summary, sim.events_executed


class TestDeterminism:
    def test_coalesced_matches_reference_path(self, monkeypatch):
        """The coalesced delivery stream is event-for-event identical to
        the one-heap-entry-per-packet reference path: byte-identical
        summaries AND the same executed-event count."""
        coalesced = _mixed_traffic_summary(71)
        monkeypatch.setattr(link_mod, "COALESCED_DELIVERY", False)
        reference = _mixed_traffic_summary(71)
        assert coalesced == reference

    def test_repeat_run_byte_identical(self):
        assert _mixed_traffic_summary(43) == _mixed_traffic_summary(43)

    def test_fig1_point_run_twice_byte_identical(self):
        point = fig1.points(quick=True)[0]
        first = canonical_json(fig1.run_point(point))
        second = canonical_json(fig1.run_point(point))
        assert first == second


# ----------------------------------------------------------------------
# batch-advance: adversarial boundary equality vs the reference path
# ----------------------------------------------------------------------


class _TraceSink:
    """Records (arrival time, seq, ecn): the full observable delivery."""

    def __init__(self, sim):
        self.sim = sim
        self.got = []

    def receive(self, pkt):
        self.got.append((self.sim.now, pkt.seq, pkt.ecn))


def _burst_trace(batch, actions=(), npkts=40, gap_ps=49_991,
                 capacity=64_000, size=1500):
    """Drive one port+link with a paced burst that outruns the 120 ns/pkt
    serializer, so a queue builds mid-burst. ``actions`` fire mid-burst
    against the live port/link — each one a decision boundary the batch
    path must split or roll back at. Returns every observable: the
    delivery trace, the port counters, and the executed-event count.

    The inter-arrival gap is coprime to the 120,000 ps serialization
    time so no enqueue lands on the exact picosecond of a finish: at
    such a tie the relative order is a heap-seq coin flip that the batch
    path resolves differently from the reference (the sanctioned
    divergence documented in DESIGN.md "Performance"), which is not the
    behavior under test here."""
    old = queues_mod.BATCH_DRAIN
    queues_mod.BATCH_DRAIN = batch
    try:
        sim = Simulator()
        link = Link(sim, 100.0, prop_ps=5 * US)
        sink = _TraceSink(sim)
        link.connect(sink)
        port = Port(sim, link, capacity_bytes=capacity,
                    rng=random.Random(11))
        state = {"sim": sim, "port": port, "link": link, "sink": sink}
        for i in range(npkts):
            sim.at(1_000 + i * gap_ps, port.enqueue, _data(i, size))
        for t, fn in actions:
            sim.at(t, fn, state)
        sim.run()
        return (
            sink.got,
            dict(tx_bytes=port.tx_bytes, drops=port.drops,
                 marked=port.marked_pkts, red=port.red_marked_pkts,
                 enqueued=port.enqueued_pkts,
                 queued=port.occupancy_bytes(),
                 delivered=link.delivered_pkts),
            sim.events_executed,
        )
    finally:
        queues_mod.BATCH_DRAIN = old


def _pfc_pause(state):
    # Arming PFC mid-burst rolls back the live drain schedule; the
    # immediate indefinite pause then freezes the classic serializer at
    # the next packet boundary.
    state["port"].configure_pfc(0.9, 0.4)
    state["port"].pause(0)


def _pfc_resume(state):
    state["port"].resume()


def _divert_mid_burst(state):
    # The diverted sink shares the trace list: arrivals from both sinks
    # interleave in execution order, which must match the reference.
    sink2 = _TraceSink(state["sim"])
    sink2.got = state["sink"].got
    state["port"].divert(sink2)


def _fail_mid_burst(state):
    state["link"].fail()


class TestBatchAdvance:
    """The batch-advanced drain must be event-for-event identical to the
    reference one-callback-per-packet path (BATCH_DRAIN = False) at every
    adversarial decision boundary."""

    def test_red_crossed_mid_burst(self):
        # capacity 24 KB: the burst walks occupancy through RED's
        # probabilistic band, into always-mark, and over the tail-drop
        # line — every enqueue-time decision, same RNG draw order.
        batch = _burst_trace(True, capacity=24_000)
        ref = _burst_trace(False, capacity=24_000)
        assert batch == ref
        assert batch[1]["marked"] > 0 and batch[1]["drops"] > 0

    def test_pfc_pause_mid_burst(self):
        actions = [(400_007, _pfc_pause), (1_500_013, _pfc_resume)]
        batch = _burst_trace(True, actions=actions)
        ref = _burst_trace(False, actions=actions)
        assert batch == ref
        assert batch[1]["delivered"] == 40

    def test_divert_mid_burst(self):
        actions = [(500_003, _divert_mid_burst)]
        batch = _burst_trace(True, actions=actions)
        ref = _burst_trace(False, actions=actions)
        assert batch == ref
        # Split burst: some packets crossed the wire, the rest reached
        # the diverted sink at their (unchanged) serialization finishes.
        assert 0 < batch[1]["delivered"] < 40

    def test_link_fail_mid_burst(self):
        actions = [(500_003, _fail_mid_burst)]
        batch = _burst_trace(True, actions=actions)
        ref = _burst_trace(False, actions=actions)
        assert batch == ref

    def test_mixed_traffic_matches_reference(self):
        old = queues_mod.BATCH_DRAIN
        try:
            queues_mod.BATCH_DRAIN = True
            batched = _mixed_traffic_summary(71)
            queues_mod.BATCH_DRAIN = False
            reference = _mixed_traffic_summary(71)
        finally:
            queues_mod.BATCH_DRAIN = old
        assert batched == reference

    def test_mixed_traffic_matches_reference_poison_pool(self):
        # Poison pooling on top: a batch path holding a released alias
        # (or releasing a committed packet early) trips the poison check
        # instead of silently corrupting the run.
        old = queues_mod.BATCH_DRAIN
        try:
            queues_mod.BATCH_DRAIN = True
            batched = _mixed_traffic_summary(71, poison=True)
            queues_mod.BATCH_DRAIN = False
            reference = _mixed_traffic_summary(71, poison=True)
        finally:
            queues_mod.BATCH_DRAIN = old
        assert batched == reference


# ----------------------------------------------------------------------
# packet pooling
# ----------------------------------------------------------------------


class TestPacketPool:
    def test_recycles_released_objects(self):
        pool = PacketPool()
        pkt = pool.acquire(DATA, 1, src=2, dst=3, seq=0, size=100)
        pool.release(pkt)
        again = pool.acquire(ACK, 1, src=3, dst=2, seq=0, size=64)
        assert again is pkt
        assert again.kind == ACK and again.ecn is False and again.retx == 0
        assert pool.stats()["recycled"] == 1

    def test_double_release_raises(self):
        pool = PacketPool()
        pkt = pool.acquire(DATA, 1, src=2, dst=3, seq=0, size=100)
        pool.release(pkt)
        with pytest.raises(RuntimeError, match="double release"):
            pool.release(pkt)

    def test_poison_catches_write_after_release(self):
        pool = PacketPool(poison=True)
        pkt = pool.acquire(DATA, 1, src=2, dst=3, seq=0, size=100)
        pool.release(pkt)
        pkt.seq = 7  # stale alias writes through
        with pytest.raises(RuntimeError, match="written after release"):
            pool.acquire(DATA, 1, src=2, dst=3, seq=1, size=100)

    def test_env_opt_in(self, monkeypatch):
        monkeypatch.setattr(packet_mod, "_POOL_MODE", "")
        assert packet_mod.default_pool() is None
        monkeypatch.setattr(packet_mod, "_POOL_MODE", "1")
        pool = packet_mod.default_pool()
        assert isinstance(pool, PacketPool) and not pool.poison
        monkeypatch.setattr(packet_mod, "_POOL_MODE", "poison")
        assert packet_mod.default_pool().poison
        if packet_mod._np is not None:
            monkeypatch.setattr(packet_mod, "_POOL_MODE", "soa")
            assert isinstance(packet_mod.default_pool(), SoAPacketPool)

    def test_end_to_end_poison_run_recycles(self):
        """A full dumbbell transfer under poison pooling: completes, and
        actually recycles packets (the release rules do fire)."""
        from repro.topology.simple import dumbbell
        from repro.transport.dctcp import DCTCP
        from repro.transport.base import start_flow

        sim = Simulator()
        topo = dumbbell(sim, n_pairs=2, gbps=25.0, prop_ps=1 * US,
                        queue_bytes=256 * KIB, seed=3)
        hosts = list(topo.senders) + list(topo.receivers)
        for host in hosts:
            host.enable_packet_pool(poison=True)
        senders = [
            start_flow(sim, topo.net, DCTCP(), s, r, 256 * KIB,
                       base_rtt_ps=8 * US, seed=i)
            for i, (s, r) in enumerate(zip(topo.senders, topo.receivers))
        ]
        sim.run()
        assert all(s.done for s in senders)
        assert sum(h.pool.recycled for h in hosts) > 0

    def test_pooled_results_match_unpooled(self):
        """Pooling must not change simulation results, only allocation."""
        from repro.topology.simple import dumbbell
        from repro.transport.dctcp import DCTCP
        from repro.transport.base import start_flow

        def fcts(pooled: bool):
            sim = Simulator()
            topo = dumbbell(sim, n_pairs=2, gbps=25.0, prop_ps=1 * US,
                            queue_bytes=256 * KIB, seed=3)
            for host in list(topo.senders) + list(topo.receivers):
                host.pool = PacketPool(poison=True) if pooled else None
            senders = [
                start_flow(sim, topo.net, DCTCP(), s, r, 256 * KIB,
                           base_rtt_ps=8 * US, seed=i)
                for i, (s, r) in enumerate(
                    zip(topo.senders, topo.receivers))
            ]
            sim.run()
            return [(s.stats.fct_ps, s.stats.retransmissions)
                    for s in senders]

        assert fcts(pooled=True) == fcts(pooled=False)


# ----------------------------------------------------------------------
# struct-of-arrays packet backend
# ----------------------------------------------------------------------


@pytest.mark.skipif(packet_mod._np is None, reason="numpy unavailable")
class TestSoAPacketPool:
    def test_view_round_trips_every_field(self):
        pool = SoAPacketPool(capacity=2)
        pkt = pool.acquire(DATA, 7, src=1, dst=2, seq=3, size=1500,
                           sport=4, dport=5, payload=1400)
        assert (pkt.kind, pkt.flow_id, pkt.src, pkt.dst, pkt.sport,
                pkt.dport, pkt.seq, pkt.size, pkt.payload) == (
            DATA, 7, 1, 2, 4, 5, 3, 1500, 1400)
        assert pkt.block_id is None and pkt.nack_block is None
        pkt.ecn = True
        pkt.hops += 2
        pkt.block_id = 9
        pkt.int_util = 0.5
        assert pkt.ecn is True and pkt.hops == 2 and pkt.block_id == 9
        # Native Python scalars only: a leaked numpy int64 overflows the
        # 64-bit masking in the ECMP hash.
        assert type(pkt.seq) is int and type(pkt.ecn) is bool
        assert type(pkt.int_util) is float

    def test_store_growth_keeps_views_valid(self):
        pool = SoAPacketPool(capacity=2)
        pkts = [pool.acquire(DATA, i, src=0, dst=1, seq=i, size=100)
                for i in range(20)]
        assert pool.store.capacity >= 20
        assert [p.flow_id for p in pkts] == list(range(20))

    def test_release_recycles_row_and_view(self):
        pool = SoAPacketPool()
        pkt = pool.acquire(DATA, 1, src=2, dst=3, seq=0, size=100)
        pkt.ecn = True
        pkt.block_id = 4
        pool.release(pkt)
        again = pool.acquire(ACK, 1, src=3, dst=2, seq=0, size=64)
        assert again is pkt  # wrapper AND row recycled
        assert again.kind == ACK and again.ecn is False
        assert again.block_id is None
        assert pool.stats()["recycled"] == 1

    def test_double_release_raises(self):
        pool = SoAPacketPool()
        pkt = pool.acquire(DATA, 1, src=2, dst=3, seq=0, size=100)
        pool.release(pkt)
        with pytest.raises(RuntimeError, match="double release"):
            pool.release(pkt)

    def test_release_ignores_plain_control_packets(self):
        from repro.sim.packet import make_cnp

        pool = SoAPacketPool()
        pool.release(make_cnp(1, 2, 3))  # no row to reclaim: dropped
        assert pool.stats()["released"] == 0

    def test_pooled_results_match_unpooled(self):
        from repro.topology.simple import dumbbell
        from repro.transport.dctcp import DCTCP
        from repro.transport.base import start_flow

        def fcts(pooled: bool):
            sim = Simulator()
            topo = dumbbell(sim, n_pairs=2, gbps=25.0, prop_ps=1 * US,
                            queue_bytes=256 * KIB, seed=3)
            for host in list(topo.senders) + list(topo.receivers):
                host.pool = SoAPacketPool() if pooled else None
            senders = [
                start_flow(sim, topo.net, DCTCP(), s, r, 256 * KIB,
                           base_rtt_ps=8 * US, seed=i)
                for i, (s, r) in enumerate(
                    zip(topo.senders, topo.receivers))
            ]
            sim.run()
            return [(s.stats.fct_ps, s.stats.retransmissions)
                    for s in senders]

        assert fcts(pooled=True) == fcts(pooled=False)


# ----------------------------------------------------------------------
# lazy metric registration
# ----------------------------------------------------------------------


class TestLazyMetrics:
    def test_gauges_materialize_at_snapshot(self):
        with TelemetryContext(profile=False):
            sim = Simulator()
            Link(sim, 10.0, prop_ps=5, name="lz")
            registry = sim.obs.metrics
            assert registry._gauges == {}  # registration deferred
            snap = registry.snapshot()
        assert snap["link"]["lz"]["delivered_pkts"] == 0
        assert snap["link"]["lz"]["up"] is True

    def test_value_reads_deferred_gauge(self):
        with TelemetryContext(profile=False):
            sim = Simulator()
            link = Link(sim, 10.0, prop_ps=5, name="lz2")
            link.delivered_pkts = 4
            assert sim.obs.metrics.value("link.lz2.delivered_pkts") == 4

    def test_duplicate_names_still_detected(self):
        with TelemetryContext(profile=False):
            sim = Simulator()
            Link(sim, 10.0, prop_ps=5, name="dup")
            Link(sim, 10.0, prop_ps=5, name="dup")
            with pytest.raises(ValueError, match="already registered"):
                sim.obs.metrics.snapshot()


# ----------------------------------------------------------------------
# host pool default
# ----------------------------------------------------------------------


class TestHostPool:
    def test_enable_packet_pool(self):
        sim = Simulator()
        host = Host(sim, 0, "h0")
        pool = host.enable_packet_pool(poison=True)
        assert host.pool is pool and pool.poison
