import pytest

from repro.lb import set_spraying
from repro.lb.plb import PLB, PLBConfig
from repro.sim.engine import Simulator
from repro.sim.packet import ACK, DATA, Packet
from repro.sim.units import US
from repro.topology.simple import incast_star


class StubSender:
    def __init__(self, sim, base_rtt=14 * US):
        import random

        self.sim = sim
        self.base_rtt_ps = base_rtt
        self.rng = random.Random(9)
        self.flow_id = 1


def ack(ecn=False):
    p = Packet(ACK, 1, 1, 0, seq=0, size=64)
    p.ecn_echo = ecn
    return p


class TestPLBConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            PLBConfig(ecn_round_threshold=0.0)
        with pytest.raises(ValueError):
            PLBConfig(congested_rounds_to_repath=0)


class TestPLB:
    def test_single_path_until_congestion(self):
        sim = Simulator()
        s = StubSender(sim)
        plb = PLB()
        plb.on_init(s)
        e = plb.entropy(s, Packet(DATA, 1, 0, 1, seq=0, size=100))
        for _ in range(50):
            assert plb.entropy(s, Packet(DATA, 1, 0, 1, seq=0, size=100)) == e

    def test_repath_after_consecutive_congested_rounds(self):
        sim = Simulator()
        s = StubSender(sim)
        plb = PLB(PLBConfig(congested_rounds_to_repath=3))
        plb.on_init(s)
        e0 = plb.entropy(s, Packet(DATA, 1, 0, 1, seq=0, size=100))
        # Feed three rounds (each > one RTT apart) of fully-marked ACKs.
        for r in range(3):
            sim.now = (r + 1) * 20 * US
            for _ in range(5):
                plb.on_ack(s, ack(ecn=True), 14 * US, True)
        assert plb.repaths >= 1
        assert plb.entropy(s, Packet(DATA, 1, 0, 1, seq=0, size=100)) != e0

    def test_clean_round_resets_counter(self):
        sim = Simulator()
        s = StubSender(sim)
        plb = PLB(PLBConfig(congested_rounds_to_repath=2))
        plb.on_init(s)
        sim.now = 20 * US
        plb.on_ack(s, ack(ecn=True), 14 * US, True)   # congested round 1
        sim.now = 40 * US
        plb.on_ack(s, ack(ecn=False), 14 * US, False)  # clean round
        sim.now = 60 * US
        plb.on_ack(s, ack(ecn=True), 14 * US, True)   # congested round 1 again
        assert plb.repaths == 0

    def test_timeout_repaths_immediately(self):
        sim = Simulator()
        s = StubSender(sim)
        plb = PLB()
        plb.on_init(s)
        e0 = plb.entropy(s, Packet(DATA, 1, 0, 1, seq=0, size=100))
        plb.on_nack_or_timeout(s)
        assert plb.repaths == 1


class TestSetSpraying:
    def test_toggles_all_switches(self):
        sim = Simulator()
        topo = incast_star(sim, 2)
        set_spraying(topo.net, True)
        assert all(sw.mode == "rps" for sw in topo.net.switches)
        set_spraying(topo.net, False)
        assert all(sw.mode == "ecmp" for sw in topo.net.switches)
