"""Sim-to-wire datapath tests: the EngineLike seam, WallClock semantics,
impairment-engine determinism, and the loopback soak harness gates
(reliability under impairment, policy aborts under blackhole, and the
sim-vs-wire comparison staying in band)."""

import asyncio
import random

import pytest

from repro.sim.engine import Simulator
from repro.sim.units import MS, US
from repro.transport.base import AbortPolicy, EngineLike, TimerHandle
from repro.wire.clock import WallClock
from repro.wire.compare import CompareTolerance, compare_sim_wire
from repro.wire.harness import WireFlowSpec, run_wire
from repro.wire.proxy import (
    ImpairmentEngine,
    Impairments,
    impairments_from_dict,
)


class TestEngineSeam:
    def test_simulator_satisfies_engine_protocol(self):
        sim = Simulator()
        assert isinstance(sim, EngineLike)
        handle = sim.after(10, lambda: None)
        assert isinstance(handle, TimerHandle)

    def test_wall_clock_satisfies_engine_protocol(self):
        async def check():
            clock = WallClock()
            assert isinstance(clock, EngineLike)
            handle = clock.after(10, lambda: None)
            assert isinstance(handle, TimerHandle)
            handle.cancel()
        asyncio.run(check())


class TestWallClock:
    def test_now_advances_monotonically_in_picoseconds(self):
        async def check():
            clock = WallClock()
            t0 = clock.now
            await asyncio.sleep(0.01)
            t1 = clock.now
            assert t1 > t0
            assert t1 - t0 >= 5 * MS  # slept 10 ms of wall time
        asyncio.run(check())

    def test_after_fires_and_accounts_live_timers(self):
        async def check():
            clock = WallClock()
            fired = []
            clock.after(1 * MS, fired.append, 1)
            assert clock.live_timers == 1
            await asyncio.sleep(0.01)
            assert fired == [1]
            assert clock.live_timers == 0
            assert clock.stats()["fired"] == 1
        asyncio.run(check())

    def test_cancel_is_idempotent_and_releases_the_timer(self):
        async def check():
            clock = WallClock()
            handle = clock.after(10 * MS, lambda: None)
            handle.cancel()
            handle.cancel()
            assert clock.live_timers == 0
            assert clock.stats()["cancelled"] == 1
        asyncio.run(check())

    def test_at_clamps_past_deadlines_instead_of_raising(self):
        # The documented wall-clock departure from the simulator: real
        # time advances between reading ``now`` and scheduling, so a
        # past deadline means "as soon as possible", not an error.
        async def check():
            clock = WallClock()
            fired = []
            clock.at(0, fired.append, 1)  # long past by now
            await asyncio.sleep(0.01)
            assert fired == [1]
        asyncio.run(check())

    def test_negative_delay_is_rejected(self):
        async def check():
            clock = WallClock()
            with pytest.raises(ValueError):
                clock.after(-1, lambda: None)
        asyncio.run(check())


class TestImpairments:
    def test_validation_rejects_bad_rates_and_windows(self):
        with pytest.raises(ValueError):
            Impairments(loss_rate=1.5)
        with pytest.raises(ValueError):
            Impairments(delay_ms=-1.0)
        with pytest.raises(ValueError):
            Impairments(blackhole_ms=5.0)  # needs a start

    def test_describe_roundtrips(self):
        imp = Impairments(delay_ms=2.0, loss_rate=0.1, rate_mbps=50.0,
                          blackhole_start_ms=10.0, blackhole_ms=5.0)
        doc = imp.describe()
        assert doc["kind"] == "wire_impairments"
        assert impairments_from_dict(doc) == imp
        with pytest.raises(ValueError):
            impairments_from_dict({"kind": "not_impairments"})

    def test_same_seed_same_fates(self):
        imp = Impairments(delay_ms=1.0, jitter_ms=0.5, loss_rate=0.2,
                          dup_rate=0.1, reorder_rate=0.3, rate_mbps=100.0)
        runs = []
        for _ in range(2):
            eng = ImpairmentEngine(imp, random.Random(42))
            runs.append([eng.fates(1500, t * 100 * US)
                         for t in range(200)])
        assert runs[0] == runs[1]
        eng = ImpairmentEngine(imp, random.Random(43))
        assert [eng.fates(1500, t * 100 * US) for t in range(200)] \
            != runs[0]

    def test_conservation_and_blackhole_window(self):
        imp = Impairments(delay_ms=1.0, loss_rate=0.3,
                          blackhole_start_ms=10.0, blackhole_ms=10.0)
        eng = ImpairmentEngine(imp, random.Random(7))
        for t_ms in range(0, 30):
            eng.fates(1500, t_ms * MS)
        stats = eng.stats()
        assert stats["rx"] == 30
        assert stats["dropped_blackhole"] == 10  # the [10, 20) ms window
        assert stats["rx"] == (stats["forwarded"] + stats["dropped_loss"]
                               + stats["dropped_blackhole"])

    def test_rate_cap_serializes_back_to_back_datagrams(self):
        imp = Impairments(delay_ms=0.0, rate_mbps=8.0)  # 1 ms per 1000B
        eng = ImpairmentEngine(imp, random.Random(1))
        first = eng.fates(1000, 0)[0]
        second = eng.fates(1000, 0)[0]  # queues behind the first
        assert second >= first + 1 * MS


class TestLoopbackSoak:
    def test_clean_loopback_delivers_everything(self):
        res = run_wire(
            [WireFlowSpec("dctcp", 64 * 1024),
             WireFlowSpec("uno", 64 * 1024, 1.0)],
            Impairments(delay_ms=1.0, rate_mbps=80.0),
            seed=3, timeout_s=20.0,
        )
        assert res["completed"] == res["n_flows"] == 2
        assert res["violations"] == []
        assert res["timed_out"] is False
        assert res["clock"]["live"] == 0

    def test_impaired_soak_completes_with_zero_violations(self):
        res = run_wire(
            [WireFlowSpec("dctcp", 64 * 1024),
             WireFlowSpec("uno", 64 * 1024, 2.0)],
            Impairments(delay_ms=1.0, jitter_ms=0.2, loss_rate=0.05,
                        dup_rate=0.03, reorder_rate=0.25,
                        reorder_extra_ms=1.0, rate_mbps=80.0),
            seed=5, timeout_s=30.0,
        )
        assert res["completed"] == res["n_flows"] == 2
        assert res["violations"] == []
        # The proxy really did impair (seeded, so stable per seed).
        dropped = sum(res["proxy"][d]["dropped_loss"]
                      for d in ("a_to_b", "b_to_a"))
        assert dropped > 0

    def test_blackhole_aborts_by_policy_with_timers_cancelled(self):
        res = run_wire(
            [WireFlowSpec("uno", 512 * 1024)],
            Impairments(delay_ms=1.0, rate_mbps=80.0,
                        blackhole_start_ms=50.0),
            # Six consecutive RTOs abort ~0.8 s in — *after* the
            # explicit 0.5 s idle timeout, so this cell exercises both
            # terminal paths: receiver idles out, sender aborts. The
            # pinned timeout is safe here (unlike on a live path)
            # because the blackhole guarantees total receiver silence.
            seed=9, abort=AbortPolicy(max_consecutive_rtos=6),
            timeout_s=20.0, idle_timeout_ps=500 * MS,
        )
        assert res["aborted"] == res["n_flows"] == 1
        assert res["abort_reasons"] == {"max_consecutive_rtos": 1}
        assert res["idled_out"] == 1
        assert res["violations"] == []
        assert res["max_backoff"] <= 8
        assert res["clock"]["live"] == 0

    def test_flow_spec_validation(self):
        with pytest.raises(ValueError):
            WireFlowSpec("tcp-reno", 1024)
        with pytest.raises(ValueError):
            WireFlowSpec("dctcp", 0)


class TestSimVsWire:
    def test_comparison_stays_in_band(self):
        res = compare_sim_wire(
            [WireFlowSpec("dctcp", 64 * 1024),
             WireFlowSpec("uno", 64 * 1024, 1.0)],
            Impairments(delay_ms=1.0, loss_rate=0.02, rate_mbps=80.0),
            seed=5, timeout_s=20.0,
        )
        assert res["within_tolerance"], res["mismatches"]
        assert res["sim"]["completed"] == res["wire"]["completed"] == 2

    def test_non_sim_expressible_impairments_are_rejected(self):
        with pytest.raises(ValueError, match="soak"):
            compare_sim_wire([WireFlowSpec("dctcp", 1024)],
                             Impairments(dup_rate=0.1))

    def test_tolerance_validation(self):
        with pytest.raises(ValueError):
            CompareTolerance(fct_ratio_lo=2.0)
        with pytest.raises(ValueError):
            CompareTolerance(retx_slack=-1)


class TestWireCampaign:
    def test_campaign_points_cover_cells_and_reject_unknowns(self):
        from repro.experiments import wire as wire_exp

        pts = wire_exp.campaign_points("full")
        names = [p.name for p in pts]
        assert len(names) == len(set(names)) == 8
        assert any("blackhole-uno" in n for n in names)
        assert any("compare-dctcp" in n for n in names)
        with pytest.raises(ValueError):
            wire_exp.campaign_points("bogus")

    def test_cell_presets_cover_every_cell(self):
        from repro.experiments import wire as wire_exp

        for cell in (*wire_exp.SOAK_CELLS, "compare"):
            imp = wire_exp.cell_impairments(cell)
            assert imp.describe()["kind"] == "wire_impairments"
        with pytest.raises(ValueError):
            wire_exp.cell_impairments("nope")
