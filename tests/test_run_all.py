"""CLI surface of repro.experiments.run_all (argument handling only —
the heavy runs are exercised by benchmarks)."""

import pytest

from repro.experiments import run_all


class TestArgs:
    def test_unknown_experiment_rejected(self, capsys):
        with pytest.raises(SystemExit):
            run_all.main(["--only", "fig99"])

    def test_known_subset_parses_and_runs_fig1(self, capsys):
        # fig1 is the only sub-second experiment; use it to exercise the
        # full dispatch path.
        run_all.main(["--only", "fig1"])
        out = capsys.readouterr().out
        assert "Figure 1B" in out
        assert "[fig1 done" in out

    def test_all_targets_are_importable(self):
        import importlib

        for name in run_all.ALL:
            module = importlib.import_module(f"repro.experiments.{name}")
            assert hasattr(module, "run")
            assert hasattr(module, "main")
