"""CLI surface of repro.experiments.run_all (argument handling and the
cheap fig1 dispatch path — the heavy runs are exercised by benchmarks)."""

import json

import pytest

from repro.experiments import run_all
from repro.experiments.api import EXPERIMENTS


class TestArgs:
    def test_unknown_experiment_rejected(self, capsys):
        with pytest.raises(SystemExit):
            run_all.main(["--only", "fig99"])

    def test_bad_jobs_rejected(self, capsys):
        with pytest.raises(SystemExit):
            run_all.main(["--only", "fig1", "--jobs", "0"])

    def test_known_subset_parses_and_runs_fig1(self, capsys, tmp_path):
        # fig1 is the only sub-second experiment; use it to exercise the
        # full dispatch path.
        run_all.main(["--only", "fig1", "--out", str(tmp_path)])
        out = capsys.readouterr().out
        assert "Figure 1B" in out
        assert "[fig1 done" in out

    def test_all_targets_are_importable(self):
        import importlib

        assert run_all.ALL == EXPERIMENTS
        for name in run_all.ALL:
            module = importlib.import_module(f"repro.experiments.{name}")
            assert hasattr(module, "run")
            assert hasattr(module, "main")


class TestOutputLayout:
    def test_cache_and_summary_written(self, capsys, tmp_path):
        run_all.main(["--only", "fig1", "--out", str(tmp_path)])
        capsys.readouterr()
        points = list((tmp_path / "points" / "fig1").glob("*.json"))
        assert len(points) == 4  # quick mode: 2 RTTs x 2 sizes
        summary = json.loads((tmp_path / "summaries" / "fig1.json")
                             .read_text())
        assert set(summary) == {"sizes", "curves", "checks"}

    def test_resume_skips_cached_points(self, capsys, tmp_path):
        run_all.main(["--only", "fig1", "--out", str(tmp_path)])
        capsys.readouterr()
        stamps = {p: p.stat().st_mtime_ns
                  for p in (tmp_path / "points" / "fig1").glob("*.json")}
        run_all.main(["--only", "fig1", "--out", str(tmp_path), "--resume",
                      "--jobs", "2"])
        out = capsys.readouterr().out
        assert "[fig1 done" in out
        for p, stamp in stamps.items():
            assert p.stat().st_mtime_ns == stamp

    def test_seed_override_changes_cache_keys(self, capsys, tmp_path):
        run_all.main(["--only", "fig1", "--out", str(tmp_path)])
        run_all.main(["--only", "fig1", "--out", str(tmp_path),
                      "--seed", "99"])
        capsys.readouterr()
        # Different seeds hash to different cache entries side by side.
        assert len(list((tmp_path / "points" / "fig1").glob("*.json"))) == 8


class TestChaosCLI:
    def test_chaos_campaign_runs_and_writes_summary(self, capsys, tmp_path):
        run_all.main(["--chaos", "smoke", "--out", str(tmp_path),
                      "--jobs", "2"])
        out = capsys.readouterr().out
        assert "Chaos campaign" in out
        assert "all invariants held" in out
        summary = json.loads(
            (tmp_path / "summaries" / "chaos-smoke.json").read_text())
        assert summary["campaign"] == "smoke"
        assert summary["total_violations"] == 0
        assert summary["all_flows_completed"] is True
        assert summary["n_points"] == 11
        points = list((tmp_path / "points" / "chaos").glob("*.json"))
        assert len(points) == 11

    def test_chaos_static_control_fails_the_run(self, capsys, tmp_path):
        # gemini pinned to cut links under 'inf' convergence blackholes:
        # the campaign must exit non-zero on the stuck flows.
        with pytest.raises(SystemExit) as exc:
            run_all.main(["--chaos", "fibercut", "--out", str(tmp_path),
                          "--convergence", "inf"])
        assert exc.value.code == 1
        capsys.readouterr()
        summary = json.loads(
            (tmp_path / "summaries" / "chaos-fibercut.json").read_text())
        assert summary["convergence"] == "inf"
        assert not summary["all_flows_completed"]

    def test_chaos_with_only_rejected(self, capsys):
        with pytest.raises(SystemExit):
            run_all.main(["--chaos", "smoke", "--only", "fig1"])

    def test_unknown_campaign_rejected(self, capsys):
        with pytest.raises(SystemExit) as exc:
            run_all.main(["--chaos", "nope"])
        assert exc.value.code == 2  # argparse usage error, not a crash
        assert "choose from" in capsys.readouterr().err

    def test_bogus_convergence_rejected_eagerly(self, capsys):
        """An unparsable --convergence must die at argument time (exit
        2 with a hint), not per-point at runtime."""
        with pytest.raises(SystemExit) as exc:
            run_all.main(["--chaos", "smoke", "--convergence", "bogus"])
        assert exc.value.code == 2
        assert "invalid convergence" in capsys.readouterr().err

    def test_negative_retries_rejected(self, capsys):
        with pytest.raises(SystemExit):
            run_all.main(["--only", "fig1", "--retries", "-1"])


class TestWireCLI:
    def test_wire_campaign_runs_and_writes_summary(self, capsys, tmp_path):
        run_all.main(["--wire", "compare", "--out", str(tmp_path)])
        out = capsys.readouterr().out
        assert "Wire campaign" in out
        assert "all gates passed" in out
        summary = json.loads(
            (tmp_path / "summaries" / "wire-compare.json").read_text())
        assert summary["campaign"] == "compare"
        assert summary["all_gates_passed"] is True
        assert summary["n_points"] == 2
        points = list((tmp_path / "points" / "wire").glob("*.json"))
        assert len(points) == 2

    def test_unknown_wire_campaign_rejected_eagerly(self, capsys):
        with pytest.raises(SystemExit) as exc:
            run_all.main(["--wire", "nope"])
        assert exc.value.code == 2  # argparse usage error, not a crash
        assert "choose from" in capsys.readouterr().err

    def test_wire_is_mutually_exclusive(self, capsys):
        for extra in (["--chaos", "smoke"], ["--shards", "2"],
                      ["--only", "fig1"]):
            with pytest.raises(SystemExit) as exc:
                run_all.main(["--wire", "soak"] + extra)
            assert exc.value.code == 2

    def test_list_campaigns_prints_both_grids_and_exits_zero(self, capsys):
        run_all.main(["--list-campaigns"])
        out = capsys.readouterr().out
        assert "chaos campaigns" in out
        assert "wire campaigns" in out
        for name in ("smoke", "soak", "compare", "full"):
            assert name in out
