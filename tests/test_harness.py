import pytest

from repro.experiments.harness import (
    PHANTOM_SCHEMES,
    SCHEMES,
    ExperimentScale,
    build_multidc,
    make_launcher,
    run_specs,
)
from repro.sim.engine import Simulator
from repro.sim.units import MIB
from repro.workloads.generator import FlowSpec
from repro.workloads.patterns import incast_specs


class TestExperimentScale:
    def test_quick_preserves_buffer_to_bdp_ratio(self):
        quick = ExperimentScale.quick()
        paper = ExperimentScale.paper()
        pq = quick.params()
        pp = paper.params()
        assert pq.queue_bytes / pq.intra_bdp_bytes == pytest.approx(
            pp.queue_bytes / pp.intra_bdp_bytes
        )

    def test_quick_preserves_rtt_ratio(self):
        quick = ExperimentScale.quick().params()
        paper = ExperimentScale.paper().params()
        assert quick.rtt_ratio == paper.rtt_ratio

    def test_params_overrides(self):
        p = ExperimentScale.quick().params(inter_rtt_ps=4_000_000_000)
        assert p.inter_rtt_ps == 4_000_000_000


class TestBuildMultidc:
    def test_phantom_only_for_uno_schemes(self):
        scale = ExperimentScale.quick()
        for scheme in SCHEMES:
            sim = Simulator()
            params = scale.params()
            topo = build_multidc(sim, scheme, params, scale, seed=1)
            host = topo.host(0, 0)
            edge = topo.dcs[0].edges[0][0]
            port = topo.net.port_between(edge, host)
            if scheme in PHANTOM_SCHEMES:
                assert port.phantom is not None
            else:
                assert port.phantom is None

    def test_unknown_scheme_rejected(self):
        scale = ExperimentScale.quick()
        with pytest.raises(ValueError):
            build_multidc(Simulator(), "swift", scale.params(), scale)


class TestLaunchers:
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_launcher_completes_small_mixed_incast(self, scheme):
        scale = ExperimentScale.quick()
        sim = Simulator()
        params = scale.params()
        topo = build_multidc(sim, scheme, params, scale, seed=2)
        specs = incast_specs(topo, n_intra=2, n_inter=2, size_bytes=MIB)
        launcher = make_launcher(scheme, sim, topo, params, seed=3)
        senders = run_specs(sim, specs, launcher, scale.horizon_ps)
        assert all(s.done for s in senders)
        inter = [s for s in senders if s.is_inter_dc]
        assert len(inter) == 2

    def test_uno_launcher_uses_ec_for_inter_only(self):
        from repro.core.unorc import UnoRCSender

        scale = ExperimentScale.quick()
        sim = Simulator()
        params = scale.params()
        topo = build_multidc(sim, "uno", params, scale, seed=2)
        specs = incast_specs(topo, n_intra=1, n_inter=1, size_bytes=MIB)
        launcher = make_launcher("uno", sim, topo, params, seed=3)
        senders = [launcher(s, i, lambda _x: None) for i, s in enumerate(specs)]
        intra = next(s for s in senders if not s.is_inter_dc)
        inter = next(s for s in senders if s.is_inter_dc)
        assert isinstance(inter, UnoRCSender)
        assert not isinstance(intra, UnoRCSender)

    def test_uno_lb_override(self):
        from repro.lb.plb import PLB

        scale = ExperimentScale.quick()
        sim = Simulator()
        params = scale.params()
        topo = build_multidc(sim, "uno", params, scale, seed=2)
        launcher = make_launcher("uno", sim, topo, params, seed=3, lb="plb",
                                 ec=False)
        spec = incast_specs(topo, n_intra=0, n_inter=1, size_bytes=MIB)[0]
        sender = launcher(spec, 0, lambda _x: None)
        assert isinstance(sender.path, PLB)

    def test_mprdma_bbr_splits_by_class(self):
        from repro.transport.bbr import BBR
        from repro.transport.mprdma import MPRDMA

        scale = ExperimentScale.quick()
        sim = Simulator()
        params = scale.params()
        topo = build_multidc(sim, "mprdma_bbr", params, scale, seed=2)
        specs = incast_specs(topo, n_intra=1, n_inter=1, size_bytes=MIB)
        launcher = make_launcher("mprdma_bbr", sim, topo, params, seed=3)
        senders = [launcher(s, i, lambda _x: None) for i, s in enumerate(specs)]
        intra = next(s for s in senders if not s.is_inter_dc)
        inter = next(s for s in senders if s.is_inter_dc)
        assert isinstance(intra.cc, MPRDMA)
        assert isinstance(inter.cc, BBR)


class TestRunSpecs:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            run_specs(Simulator(), [], lambda *a: None, 10**9)

    def test_detects_unfinished_at_horizon(self):
        scale = ExperimentScale.quick()
        sim = Simulator()
        params = scale.params()
        topo = build_multidc(sim, "uno", params, scale, seed=2)
        specs = incast_specs(topo, n_intra=1, n_inter=0,
                             size_bytes=64 * MIB)
        launcher = make_launcher("uno", sim, topo, params, seed=3)
        with pytest.raises(RuntimeError, match="unfinished|deadlock"):
            run_specs(sim, specs, launcher, horizon_ps=1_000_000)  # 1 us
