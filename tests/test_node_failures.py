"""Node-level failure domains: atomic cable teardown, one convergence
event per node transition, down-node packet accounting, node selectors,
and the end-to-end acceptance scenarios (survivable border crash,
host crash aborting by deadline)."""

import random

import pytest

from repro.sim.chaos import (
    HostCrash,
    NICFlap,
    NodeScenario,
    SwitchCrash,
    ToRReboot,
    check_invariants,
    scenario_from_dict,
    select_nodes,
)
from repro.sim.engine import Simulator
from repro.sim.failures import schedule_node_failure
from repro.sim.network import Network
from repro.sim.packet import DATA, Packet
from repro.sim.units import MS, US
from repro.topology.multidc import MultiDC, MultiDCConfig
from repro.topology.simple import dual_border, dumbbell
from repro.transport.base import AbortPolicy, start_flow
from repro.transport.dctcp import DCTCP


def tiny_net(sim=None, convergence_delay_ps=0):
    """h1 -- swA -- swB -- h2 with an extra swA--swC spur."""
    sim = sim or Simulator()
    net = Network(sim, convergence_delay_ps=convergence_delay_ps)
    h1, h2 = net.add_host("h1"), net.add_host("h2")
    sw_a, sw_b, sw_c = (net.add_switch(n) for n in ("swA", "swB", "swC"))
    net.add_link(h1, sw_a, 100.0, 1 * US, 1 << 20)
    net.add_link(sw_a, sw_b, 100.0, 1 * US, 1 << 20)
    net.add_link(sw_b, h2, 100.0, 1 * US, 1 << 20)
    net.add_link(sw_a, sw_c, 100.0, 1 * US, 1 << 20)
    net.build_routes()
    return sim, net, h1, h2, sw_a, sw_b, sw_c


class TestFailureDomain:
    def test_fail_takes_down_every_attached_cable(self):
        sim, net, h1, h2, sw_a, sw_b, sw_c = tiny_net()
        assert len(sw_a.attached_links) == 6  # 3 cables x 2 directions
        sw_a.fail()
        assert not sw_a.up
        assert all(not ln.up for ln in sw_a.attached_links)

    def test_fail_and_restore_are_idempotent(self):
        sim, net, h1, h2, sw_a, sw_b, sw_c = tiny_net()
        sw_a.fail()
        sw_a.fail()  # no-op
        assert not sw_a.up
        sw_a.restore()
        assert sw_a.up
        assert all(ln.up for ln in sw_a.attached_links)
        sw_a.restore()  # restore-while-up no-op
        assert sw_a.up
        assert all(ln.up for ln in sw_a.attached_links)

    def test_restore_keeps_cable_dark_while_peer_down(self):
        sim, net, h1, h2, sw_a, sw_b, sw_c = tiny_net()
        sw_a.fail()
        sw_b.fail()
        sw_a.restore()
        ab = net.link_between(sw_a, sw_b)
        ba = net.link_between(sw_b, sw_a)
        assert not ab.up and not ba.up  # peer still down
        assert net.link_between(sw_a, sw_c).up
        sw_b.restore()
        assert ab.up and ba.up

    def test_node_failure_is_one_convergence_event(self):
        # Default convergence delay: failing a node cuts six links at
        # one instant, but the network coalesces them into ONE reconcile.
        sim, net, h1, h2, sw_a, sw_b, sw_c = tiny_net(
            convergence_delay_ps=10 * US)
        calls = []
        orig = net._converge

        def counting():
            calls.append(sim.now)
            orig()

        net._converge = counting
        sw_a.fail()  # six link transitions at one instant
        sim.run()
        assert len(calls) == 1

    def test_down_switch_counts_drops(self):
        sim, net, h1, h2, sw_a, sw_b, sw_c = tiny_net()
        sw_a.fail()
        sw_a.receive(Packet(DATA, 1, h1.node_id, h2.node_id, seq=0, size=100))
        assert sw_a.down_node_drops == 1
        assert sw_a.rx_pkts == 0

    def test_down_host_counts_drops_and_dispatches_nothing(self):
        sim, net, h1, h2, *_ = tiny_net()
        got = []
        h2.register(1, type("EP", (), {"on_packet": lambda s, p: got.append(p)})())
        h2.fail()
        h2.receive(Packet(DATA, 1, h1.node_id, h2.node_id, seq=0, size=100))
        assert h2.down_node_drops == 1
        assert h2.rx_pkts == 0 and got == []

    def test_build_routes_skips_down_switches(self):
        sim, net, h1, h2, sw_a, sw_b, sw_c = tiny_net()
        sw_b.fail()
        net.build_routes()
        # h2 sits behind the dead swB: unreachable from swA.
        assert sw_a.nexthops.get(h2.node_id, ()) == ()


class TestScheduleNodeFailure:
    def test_fail_and_repair(self):
        sim, net, h1, h2, sw_a, *_ = tiny_net()
        schedule_node_failure(sim, sw_a, 10 * US, repair_after_ps=20 * US)
        sim.run(until=15 * US)
        assert not sw_a.up
        sim.run(until=50 * US)
        assert sw_a.up

    def test_already_down_node_is_skipped(self):
        # Overlapping schedules: the second fail is a no-op, but its
        # repair isn't scheduled (no repair given) — the first repair
        # still restores the node exactly once.
        sim, net, h1, h2, sw_a, *_ = tiny_net()
        schedule_node_failure(sim, sw_a, 10 * US, repair_after_ps=40 * US)
        schedule_node_failure(sim, sw_a, 20 * US)  # overlaps, skipped
        sim.run(until=30 * US)
        assert not sw_a.up
        sim.run(until=60 * US)
        assert sw_a.up


class TestNodeSelectors:
    def _two_dc(self):
        sim = Simulator()
        topo = MultiDC(sim, MultiDCConfig(k=4, seed=3))
        return topo.net

    def test_each_selector_matches(self):
        net = self._two_dc()
        for selector in ("tor", "agg", "core", "border", "host"):
            nodes = select_nodes(net, selector)
            assert nodes, selector
        assert len(select_nodes(net, "host", k=1)) == 1
        rng = random.Random(11)
        assert len(select_nodes(net, "random", k=3, rng=rng)) == 3

    def test_selectors_are_disjoint_switch_roles(self):
        net = self._two_dc()
        tor = set(n.name for n in select_nodes(net, "tor"))
        agg = set(n.name for n in select_nodes(net, "agg"))
        core = set(n.name for n in select_nodes(net, "core"))
        border = set(n.name for n in select_nodes(net, "border"))
        assert not (tor & agg or tor & core or tor & border
                    or agg & core or agg & border or core & border)

    def test_zero_match_selector_raises(self):
        sim = Simulator()
        topo = dumbbell(sim, 2)  # swL/swR: no tor/agg/core/border names
        with pytest.raises(ValueError, match="matched no nodes"):
            select_nodes(topo.net, "border")

    def test_unknown_selector_raises(self):
        net = self._two_dc()
        with pytest.raises(ValueError, match="unknown node selector"):
            select_nodes(net, "spine")


class TestNodeScenarios:
    @pytest.mark.parametrize("scenario", [
        SwitchCrash(at_ps=7, repair_after_ps=11, selector="core"),
        ToRReboot(at_ps=5, down_ps=9, k=2),
        HostCrash(at_ps=3, selector="host"),
        NICFlap(start_ps=2, down_ps=4, period_ps=10, flaps=3,
                selector="host", k=1),
    ])
    def test_describe_round_trips(self, scenario):
        rebuilt = scenario_from_dict(scenario.describe())
        assert rebuilt == scenario
        assert rebuilt.describe() == scenario.describe()

    def test_apply_returns_nodes_hit(self):
        sim = Simulator()
        topo = dual_border(sim, 2)
        scenario = SwitchCrash(selector="border", k=1, at_ps=5 * US)
        targets = scenario.apply(sim, topo.net, random.Random(1))
        assert [n.name for n in targets] == ["borderA"]
        sim.run(until=10 * US)
        assert not topo.net.node("borderA").up

    def test_nic_flap_keeps_host_up(self):
        sim = Simulator()
        topo = dumbbell(sim, 2, convergence_delay_ps=0)
        host = topo.senders[0]
        scenario = NICFlap(selector="host", k=1, start_ps=5 * US,
                           down_ps=10 * US, period_ps=50 * US, flaps=2)
        scenario.apply(sim, topo.net, random.Random(1))
        sim.run(until=10 * US)  # inside the first down window [5, 15) us
        assert host.up  # the NIC flaps, the host does not crash
        assert not host.attached_links[0].up
        sim.run(until=200 * US)
        assert all(ln.up for ln in host.attached_links)


class TestAcceptance:
    def test_border_crash_with_alternate_path_completes_all_flows(self):
        sim = Simulator()
        topo = dual_border(sim, 4, gbps=25.0, prop_ps=5 * US,
                           queue_bytes=256 * 1024, seed=2)
        senders = [
            start_flow(sim, topo.net, DCTCP(), s, r, 256 * 1024,
                       start_ps=i * 20 * US, base_rtt_ps=30 * US,
                       line_gbps=25.0,
                       abort=AbortPolicy(max_consecutive_rtos=40,
                                         deadline_ps=300 * MS),
                       seed=2 + i)
            for i, (s, r) in enumerate(zip(topo.senders, topo.receivers))
        ]
        schedule_node_failure(sim, topo.net.node("borderA"), 2 * MS)
        sim.run(until=500 * MS)
        assert all(s.done for s in senders)
        assert check_invariants(sim, topo.net, senders, 500 * MS) == []

    def test_host_crash_aborts_flows_within_deadline(self):
        sim = Simulator()
        topo = dumbbell(sim, 2, gbps=25.0, prop_ps=5 * US,
                        queue_bytes=256 * 1024, seed=2)
        deadline = 50 * MS
        policy = AbortPolicy(deadline_ps=deadline)
        victim = topo.receivers[0]
        into = start_flow(sim, topo.net, DCTCP(), topo.senders[0], victim,
                          4 << 20, base_rtt_ps=20 * US, line_gbps=25.0,
                          abort=policy, seed=2)
        bystander = start_flow(sim, topo.net, DCTCP(), topo.senders[1],
                               topo.receivers[1], 256 * 1024,
                               base_rtt_ps=20 * US, line_gbps=25.0,
                               abort=policy, seed=3)
        schedule_node_failure(sim, victim, 1 * MS)
        sim.run(until=500 * MS)
        assert into.aborted
        assert into.stats.abort_reason == "deadline"
        assert into.stats.aborted_ps <= into.stats.start_ps + deadline
        assert bystander.done and not bystander.aborted
        assert check_invariants(sim, topo.net, [into, bystander],
                                500 * MS) == []
        # Teardown left nothing behind on the dead node.
        assert not victim.endpoints

    def test_invariants_catch_endpoint_on_down_node(self):
        sim, net, h1, h2, *_ = tiny_net(Simulator())
        h2.register(9, type("EP", (), {"on_packet": lambda s, p: None})())
        # Bypass fail()'s teardown to simulate a leak.
        h2.up = False
        violations = check_invariants(sim, net, [], 10 * US)
        assert any(v["invariant"] == "endpoint_on_down_node"
                   for v in violations)
