"""start_uno_flow composition rules."""

import pytest

from repro.core import UnoParams, start_uno_flow
from repro.core.unolb import UnoLB
from repro.core.unorc import UnoRCSender
from repro.experiments.harness import ExperimentScale, build_multidc
from repro.sim.engine import Simulator
from repro.sim.units import MIB
from repro.transport.base import FixedEntropy


@pytest.fixture()
def setup():
    scale = ExperimentScale.quick()
    sim = Simulator()
    params = scale.params()
    topo = build_multidc(sim, "uno", params, scale, seed=5)
    return sim, params, topo


class TestComposition:
    def test_inter_flow_gets_rc_and_lb(self, setup):
        sim, params, topo = setup
        s = start_uno_flow(sim, topo.net, topo.host(0, 0), topo.host(1, 0),
                           MIB, params)
        assert isinstance(s, UnoRCSender)
        assert isinstance(s.path, UnoLB)
        assert s.path.n_subflows == params.ec_data_pkts + params.ec_parity_pkts
        assert s.base_rtt_ps == params.inter_rtt_ps
        assert s.is_inter_dc

    def test_intra_flow_is_plain_unocc(self, setup):
        sim, params, topo = setup
        s = start_uno_flow(sim, topo.net, topo.host(0, 0), topo.host(0, 5),
                           MIB, params)
        assert not isinstance(s, UnoRCSender)
        assert s.base_rtt_ps == params.intra_rtt_ps
        assert not s.is_inter_dc

    def test_use_rc_false_disables_ec(self, setup):
        sim, params, topo = setup
        s = start_uno_flow(sim, topo.net, topo.host(0, 0), topo.host(1, 0),
                           MIB, params, use_rc=False)
        assert not isinstance(s, UnoRCSender)

    def test_use_lb_false_gives_fixed_entropy(self, setup):
        sim, params, topo = setup
        s = start_uno_flow(sim, topo.net, topo.host(0, 0), topo.host(1, 0),
                           MIB, params, use_lb=False)
        assert isinstance(s.path, FixedEntropy)

    def test_path_override_wins(self, setup):
        sim, params, topo = setup
        custom = FixedEntropy(99)
        s = start_uno_flow(sim, topo.net, topo.host(0, 0), topo.host(1, 0),
                           MIB, params, path=custom)
        assert s.path is custom

    def test_base_rtt_override(self, setup):
        sim, params, topo = setup
        s = start_uno_flow(sim, topo.net, topo.host(0, 0), topo.host(1, 0),
                           MIB, params, base_rtt_ps=123_456_789)
        assert s.base_rtt_ps == 123_456_789

    def test_both_flow_kinds_complete(self, setup):
        sim, params, topo = setup
        done = []
        start_uno_flow(sim, topo.net, topo.host(0, 0), topo.host(1, 0),
                       MIB // 2, params, on_complete=done.append)
        start_uno_flow(sim, topo.net, topo.host(0, 1), topo.host(0, 9),
                       MIB // 2, params, on_complete=done.append)
        sim.run(until=4_000_000_000_000)
        assert len(done) == 2
