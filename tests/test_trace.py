import pytest

from repro.sim.engine import Simulator
from repro.sim.trace import QueueMonitor, RateMonitor
from repro.sim.units import MIB, US
from repro.topology.simple import incast_star
from repro.transport.base import start_flow
from repro.transport.dctcp import DCTCP


class TestQueueMonitor:
    def test_samples_at_interval(self):
        sim = Simulator()
        topo = incast_star(sim, 1, prop_ps=1 * US)
        mon = QueueMonitor(sim, topo.bottleneck, interval_ps=10 * US,
                           stop_ps=100 * US)
        sim.run(until=200 * US)
        assert len(mon.samples) == 11  # t = 0, 10, ..., 100 us
        times = [t for t, _, _ in mon.samples]
        assert times == [i * 10 * US for i in range(11)]

    def test_validation(self):
        sim = Simulator()
        topo = incast_star(sim, 1)
        with pytest.raises(ValueError):
            QueueMonitor(sim, topo.bottleneck, interval_ps=0)

    def test_observes_queue_buildup(self):
        sim = Simulator()
        topo = incast_star(sim, 4, prop_ps=1 * US)
        mon = QueueMonitor(sim, topo.bottleneck, interval_ps=5 * US)
        for i, s in enumerate(topo.senders):
            start_flow(sim, topo.net, DCTCP(), s, topo.receivers[0],
                       MIB, base_rtt_ps=14 * US, seed=i)
        sim.run(until=10**12)
        assert mon.max_physical() > 0
        assert mon.mean_physical() >= 0


class TestRateMonitor:
    def test_measures_goodput(self):
        sim = Simulator()
        topo = incast_star(sim, 1, prop_ps=1 * US)
        sender = start_flow(sim, topo.net, DCTCP(), topo.senders[0],
                            topo.receivers[0], 4 * MIB, base_rtt_ps=14 * US)
        mon = RateMonitor(sim, [sender], probe=lambda s: s.stats.bytes_acked,
                          interval_ps=50 * US)
        sim.run(until=10**12)
        times, rates = mon.series(0)
        assert len(times) == len(rates)
        # Single unimpeded flow should approach line rate at some point.
        assert max(rates) > 50.0
        # Total bytes implied by rate samples ~ flow size.
        total = sum(r / 8 * 50 * US / 1000 for r in rates)
        assert total == pytest.approx(4 * MIB, rel=0.15)

    def test_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            RateMonitor(sim, [], probe=lambda s: 0, interval_ps=0)
