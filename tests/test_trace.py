import pytest

from repro.sim.engine import Simulator
from repro.sim.trace import QueueMonitor, RateMonitor
from repro.sim.units import MIB, US
from repro.topology.simple import incast_star
from repro.transport.base import start_flow
from repro.transport.dctcp import DCTCP


class TestQueueMonitor:
    def test_samples_at_interval(self):
        sim = Simulator()
        topo = incast_star(sim, 1, prop_ps=1 * US)
        mon = QueueMonitor(sim, topo.bottleneck, interval_ps=10 * US,
                           stop_ps=100 * US)
        sim.run(until=200 * US)
        assert len(mon.samples) == 11  # t = 0, 10, ..., 100 us
        times = [t for t, _, _ in mon.samples]
        assert times == [i * 10 * US for i in range(11)]

    def test_validation(self):
        sim = Simulator()
        topo = incast_star(sim, 1)
        with pytest.raises(ValueError):
            QueueMonitor(sim, topo.bottleneck, interval_ps=0)

    def test_observes_queue_buildup(self):
        sim = Simulator()
        topo = incast_star(sim, 4, prop_ps=1 * US)
        mon = QueueMonitor(sim, topo.bottleneck, interval_ps=5 * US)
        for i, s in enumerate(topo.senders):
            start_flow(sim, topo.net, DCTCP(), s, topo.receivers[0],
                       MIB, base_rtt_ps=14 * US, seed=i)
        sim.run(until=10**12)
        assert mon.max_physical() > 0
        assert mon.mean_physical() >= 0


class TestRateMonitor:
    def test_measures_goodput(self):
        sim = Simulator()
        topo = incast_star(sim, 1, prop_ps=1 * US)
        sender = start_flow(sim, topo.net, DCTCP(), topo.senders[0],
                            topo.receivers[0], 4 * MIB, base_rtt_ps=14 * US)
        mon = RateMonitor(sim, [sender], probe=lambda s: s.stats.bytes_acked,
                          interval_ps=50 * US)
        sim.run(until=10**12)
        times, rates = mon.series(0)
        assert len(times) == len(rates)
        # Single unimpeded flow should approach line rate at some point.
        assert max(rates) > 50.0
        # Total bytes implied by rate samples ~ flow size.
        total = sum(r / 8 * 50 * US / 1000 for r in rates)
        assert total == pytest.approx(4 * MIB, rel=0.15)

    def test_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            RateMonitor(sim, [], probe=lambda s: 0, interval_ps=0)


class TestStop:
    def test_queue_monitor_stop_cancels_pending_event(self):
        sim = Simulator()
        topo = incast_star(sim, 1, prop_ps=1 * US)
        mon = QueueMonitor(sim, topo.bottleneck, interval_ps=10 * US)
        sim.run(until=35 * US)
        n = len(mon.samples)
        assert n == 4  # t = 0, 10, 20, 30 us
        mon.stop()
        # Without stop() the self-rescheduling sample would keep the
        # otherwise-idle event loop alive forever.
        sim.run()
        assert len(mon.samples) == n
        assert sim.now == 35 * US  # nothing left to execute
        mon.stop()  # idempotent

    def test_rate_monitor_stop_cancels_pending_event(self):
        sim = Simulator()
        topo = incast_star(sim, 1, prop_ps=1 * US)
        sender = start_flow(sim, topo.net, DCTCP(), topo.senders[0],
                            topo.receivers[0], 256 * 1024,
                            base_rtt_ps=14 * US)
        mon = RateMonitor(sim, [sender], probe=lambda s: s.stats.bytes_acked,
                          interval_ps=50 * US)
        sim.run(until=200 * US)
        n = len(mon.times)
        mon.stop()
        sim.run(until=10**12)
        assert sender.done
        assert len(mon.times) == n

    def test_registry_backed_series_when_telemetry_on(self):
        from repro.obs import enable

        sim = Simulator()
        obs = enable(sim, profile=False)
        topo = incast_star(sim, 1, prop_ps=1 * US)
        QueueMonitor(sim, topo.bottleneck, interval_ps=10 * US,
                     stop_ps=50 * US)
        sender = start_flow(sim, topo.net, DCTCP(), topo.senders[0],
                            topo.receivers[0], 64 * 1024, base_rtt_ps=14 * US)
        RateMonitor(sim, [sender], probe=lambda s: s.stats.bytes_acked,
                    interval_ps=50 * US, stop_ps=500 * US)
        sim.run(until=10**12)
        snap = obs.metrics.snapshot()
        # queue series lives under trace.queue.<port>.0 in the snapshot
        trace = snap["trace"]
        assert "queue" in trace and "rate" in trace
        (qsummary,) = [v["0"] for k, v in trace["queue"].items()]
        assert qsummary["n"] == 6  # t = 0, 10, ..., 50 us
        assert trace["rate"]["0"]["n"] >= 1
