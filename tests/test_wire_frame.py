"""Wire-framing property tests: randomized pack/unpack roundtrips over
every packet kind (including the PFC PAUSE/RESUME frames) and rejection
of everything that is not a well-formed frame."""

import random

import pytest

from repro.sim.packet import (
    ACK,
    CNP,
    DATA,
    NACK,
    PAUSE,
    RESUME,
    Packet,
    make_ack,
    make_nack,
    make_pause,
    make_resume,
)
from repro.wire.frame import (
    FrameError,
    HEADER_SIZE,
    MAGIC,
    VERSION,
    WIRE_KINDS,
    pack_packet,
    payload_bytes,
    unpack_packet,
)

#: Slots the wire must carry faithfully for every kind.
CARRIED_SLOTS = (
    "kind", "flow_id", "src", "dst", "sport", "dport", "seq", "size",
    "payload", "ecn", "sent_ps", "echo_sent_ps", "ecn_echo", "block_id",
    "block_pos", "nack_block", "retx", "hops", "int_util",
)


def random_packet(rng: random.Random, kind: int) -> Packet:
    """A packet of ``kind`` with randomized values in every slot the
    header carries, exercising each optional-field flag combination."""
    pkt = Packet(
        kind,
        flow_id=rng.randrange(-1, 2**40),
        src=rng.randrange(-1, 2**31 - 1),
        dst=rng.randrange(-1, 2**31 - 1),
        seq=rng.randrange(-2, 2**40),
        size=rng.randrange(0, 2**31),
        sport=rng.randrange(0, 2**16),
        dport=rng.randrange(0, 2**16),
        # DATA payloads stay small so roundtrip tests are cheap; the
        # header field itself is 32-bit.
        payload=rng.randrange(0, 9000) if kind == DATA
        else rng.randrange(0, 2**31),
    )
    pkt.ecn = rng.random() < 0.5
    pkt.ecn_echo = rng.random() < 0.5
    pkt.sent_ps = rng.randrange(0, 2**60)
    pkt.echo_sent_ps = rng.randrange(0, 2**60)
    pkt.block_id = rng.randrange(0, 2**30) if rng.random() < 0.5 else None
    pkt.block_pos = rng.randrange(0, 2**20)
    pkt.nack_block = rng.randrange(0, 2**30) if rng.random() < 0.5 else None
    pkt.retx = rng.randrange(0, 2**16)
    pkt.hops = rng.randrange(0, 2**8)
    pkt.int_util = rng.random()
    return pkt


class TestRoundtrip:
    @pytest.mark.parametrize("kind", WIRE_KINDS)
    def test_randomized_roundtrip_preserves_every_slot(self, kind):
        rng = random.Random(0xF4A3E + kind)
        for _ in range(200):
            pkt = random_packet(rng, kind)
            out, blob = unpack_packet(pack_packet(pkt))
            for slot in CARRIED_SLOTS:
                assert getattr(out, slot) == getattr(pkt, slot), slot
            if kind == DATA:
                assert blob == payload_bytes(pkt.flow_id, pkt.seq,
                                             pkt.payload)
            else:
                assert blob == b""

    def test_data_payload_pattern_is_per_flow_and_seq(self):
        assert payload_bytes(1, 2, 64) != payload_bytes(1, 3, 64)
        assert payload_bytes(1, 2, 64) != payload_bytes(2, 2, 64)
        assert payload_bytes(7, 9, 0) == b""
        assert len(payload_bytes(7, 9, 1000)) == 1000

    def test_helper_constructed_frames_roundtrip(self):
        data = Packet(DATA, 5, src=1, dst=2, seq=3, size=4096,
                      sport=7, dport=8, payload=4032)
        data.sent_ps = 123456
        data.ecn = True
        frames = [
            data,
            make_ack(data, now_ps=999),
            make_nack(5, src=2, dst=1, block_id=17),
            make_pause(src=3, dst=4, link_index=2, hold_ps=100_000),
            make_resume(src=4, dst=3, link_index=2),
        ]
        for pkt in frames:
            out, _ = unpack_packet(pack_packet(pkt))
            for slot in CARRIED_SLOTS:
                assert getattr(out, slot) == getattr(pkt, slot), slot

    def test_pfc_frames_carry_link_index_and_hold(self):
        pause = make_pause(src=1, dst=2, link_index=3, hold_ps=50_000)
        out, _ = unpack_packet(pack_packet(pause))
        assert out.kind == PAUSE
        assert out.seq == 3            # link index rides seq
        assert out.payload == 50_000   # hold quantum rides payload
        resume = make_resume(src=2, dst=1, link_index=3)
        out, _ = unpack_packet(pack_packet(resume))
        assert out.kind == RESUME
        assert out.seq == 3


class TestRejection:
    def _frame(self, kind=ACK):
        return pack_packet(Packet(kind, 1, src=1, dst=2, seq=0, size=64))

    def test_every_truncation_is_rejected(self):
        frame = pack_packet(Packet(DATA, 1, src=1, dst=2, seq=0,
                                   size=4096, payload=256))
        for cut in range(len(frame)):
            with pytest.raises(FrameError):
                unpack_packet(frame[:cut])

    def test_trailing_bytes_are_rejected(self):
        with pytest.raises(FrameError):
            unpack_packet(self._frame() + b"\x00")

    def test_bad_magic_is_rejected(self):
        frame = bytearray(self._frame())
        frame[0] ^= 0xFF
        with pytest.raises(FrameError, match="magic"):
            unpack_packet(bytes(frame))

    def test_bad_version_is_rejected(self):
        frame = bytearray(self._frame())
        frame[len(MAGIC)] = VERSION + 1
        with pytest.raises(FrameError, match="version"):
            unpack_packet(bytes(frame))

    def test_unknown_kind_is_rejected(self):
        frame = bytearray(self._frame())
        frame[len(MAGIC) + 1] = max(WIRE_KINDS) + 1
        with pytest.raises(FrameError, match="kind"):
            unpack_packet(bytes(frame))
        with pytest.raises(FrameError, match="kind"):
            pack_packet(Packet(99, 1, src=1, dst=2, seq=0, size=64))

    def test_empty_and_garbage_datagrams_are_rejected(self):
        with pytest.raises(FrameError):
            unpack_packet(b"")
        rng = random.Random(0xBAD)
        for _ in range(50):
            blob = bytes(rng.randrange(256)
                         for _ in range(rng.randrange(0, 3 * HEADER_SIZE)))
            if blob[:2] == MAGIC:  # pragma: no cover - 1-in-65536 draw
                continue
            with pytest.raises(FrameError):
                unpack_packet(blob)
