#!/usr/bin/env python
"""Quickstart: launch Uno flows on the paper's two-datacenter topology.

Builds two k=4 fat-tree DCs joined by 8 WAN links, starts one intra-DC
and one inter-DC flow under the full Uno stack (UnoCC congestion control,
and — for the inter-DC flow — UnoRC erasure coding with UnoLB subflow
load balancing), runs the packet-level simulation and prints the flow
completion times against their ideal lower bounds.

Run:  python examples/quickstart.py
"""

from repro.analysis.fct import ideal_fct_ps
from repro.core import UnoParams, start_uno_flow
from repro.sim import Simulator
from repro.sim.units import MIB, MS, US, fmt_time
from repro.topology import MultiDC, MultiDCConfig


def main() -> None:
    sim = Simulator()
    params = UnoParams(link_gbps=25.0, queue_bytes=256 * 1024)

    topo = MultiDC(
        sim,
        MultiDCConfig(
            k=4,
            gbps=params.link_gbps,
            n_border_links=8,
            intra_rtt_ps=params.intra_rtt_ps,   # 14 us
            inter_rtt_ps=params.inter_rtt_ps,   # 2 ms
            queue_bytes=params.queue_bytes,
            red=params.red(),                   # RED ECN at 25%/75%
            phantom=params.phantom(),           # phantom queues, 0.9x drain
        ),
    )

    completed = []
    # An intra-DC flow: plain UnoCC (no erasure coding inside a DC).
    intra = start_uno_flow(
        sim, topo.net, topo.host(0, 1), topo.host(0, 9), 8 * MIB, params,
        on_complete=completed.append,
    )
    # An inter-DC flow: UnoCC + UnoRC (8+2 erasure coding) + UnoLB.
    inter = start_uno_flow(
        sim, topo.net, topo.host(0, 2), topo.host(1, 3), 8 * MIB, params,
        on_complete=completed.append,
    )

    sim.run(until=2_000 * MS)
    assert len(completed) == 2, "flows did not complete"

    for sender, label in ((intra, "intra-DC"), (inter, "inter-DC")):
        ideal = ideal_fct_ps(
            sender.size_bytes, sender.base_rtt_ps, params.link_gbps,
            mss=params.mtu_bytes,
        )
        st = sender.stats
        print(
            f"{label}: FCT={fmt_time(st.fct_ps)}  ideal={fmt_time(ideal)}  "
            f"slowdown={st.fct_ps / ideal:.2f}x  "
            f"data={st.data_pkts_sent} parity={st.parity_pkts_sent} "
            f"retx={st.retransmissions}"
        )
    print(f"simulated {sim.events_executed} events, "
          f"{topo.net.total_drops()} drops")


if __name__ == "__main__":
    main()
