#!/usr/bin/env python
"""Cross-datacenter AI training: ring Allreduce under Uno (paper 5.1,
Fig 13C).

Simulates data-parallel training across two DCs: each iteration ends
with a ring Allreduce of the gradient (reduce-scatter + all-gather over
a ring whose two edges cross the WAN). We run iterations under the full
Uno stack with correlated random loss on the WAN links and report each
iteration's runtime against the loss-free, collision-free ideal.

Run:  python examples/ai_training_allreduce.py
"""

from repro.core import UnoParams
from repro.core.uno import start_uno_flow
from repro.sim import Simulator
from repro.sim.failures import GilbertElliottLoss, calibrate_gilbert_elliott
from repro.sim.units import MIB, SEC, fmt_time
from repro.topology import MultiDC, MultiDCConfig
from repro.workloads.allreduce import AllreduceConfig, RingAllreduce


def main() -> None:
    sim = Simulator()
    params = UnoParams(link_gbps=25.0, queue_bytes=256 * 1024)
    topo = MultiDC(
        sim,
        MultiDCConfig(
            k=4,
            gbps=params.link_gbps,
            n_border_links=8,
            intra_rtt_ps=params.intra_rtt_ps,
            inter_rtt_ps=params.inter_rtt_ps,
            queue_bytes=params.queue_bytes,
            red=params.red(),
            phantom=params.phantom(),
        ),
    )

    # Correlated random loss on the WAN, per the paper's measurements.
    ge = calibrate_gilbert_elliott(1e-3, mean_burst_packets=2.5)
    for i, (ab, _ba) in enumerate(topo.border_links):
        ab.loss_model = GilbertElliottLoss(ge, seed=100 + i)

    def starter(src, dst, size, on_complete, start_ps):
        return start_uno_flow(
            sim, topo.net, src, dst, size, params,
            on_complete=on_complete, start_ps=start_ps,
            seed=src.node_id * 1000 + dst.node_id,
        )

    config = AllreduceConfig(
        participants_per_dc=4,
        gradient_bytes=16 * MIB,  # scaled-down gradient burst
        iterations=3,
    )
    allreduce = RingAllreduce(sim, topo, config, flow_starter=starter)
    allreduce.start()
    sim.run(until=20 * SEC)

    ideal = allreduce.ideal_runtime_ps()
    print(f"ring of {config.world_size} participants, "
          f"{config.gradient_bytes // MIB} MiB gradient, "
          f"{config.n_steps} steps per Allreduce")
    print(f"ideal iteration time: {fmt_time(ideal)}\n")
    for i, (t, s) in enumerate(
        zip(allreduce.iteration_times_ps, allreduce.slowdowns())
    ):
        print(f"iteration {i}: {fmt_time(t)}  ({s:.2f}x ideal)")


if __name__ == "__main__":
    main()
