#!/usr/bin/env python
"""End-to-end erasure coding demo: real bytes through the UnoRC codec.

The simulator tracks blocks combinatorially (the MDS property: any x of
n packets decode); this demo shows the property is real by pushing an
actual message through the GF(256) Reed-Solomon block codec, dropping
the worst-case allowed number of packets from every block, and decoding
the message back bit-exactly.

Run:  python examples/erasure_coding_demo.py
"""

import random

from repro.coding import BlockCodec, BlockConfig, ReedSolomon


def main() -> None:
    rng = random.Random(42)

    # --- raw Reed-Solomon: the paper's (8, 2) scheme -------------------
    rs = ReedSolomon(8, 2)
    data_shards = [bytes(rng.randrange(256) for _ in range(32)) for _ in range(8)]
    encoded = rs.encode(data_shards)
    lost = rng.sample(range(10), 2)
    survivors = {i: s for i, s in enumerate(encoded) if i not in lost}
    recovered = rs.decode(survivors)
    assert recovered == data_shards
    print(f"(8,2) Reed-Solomon: dropped shards {sorted(lost)}, "
          f"recovered all 8 data shards bit-exactly")

    # --- whole-message block codec --------------------------------------
    config = BlockConfig(data_pkts=8, parity_pkts=2)
    mss = 1024
    codec = BlockCodec(config, mss=mss)
    message = bytes(rng.randrange(256) for _ in range(50_000))
    blocks = codec.encode_message(message)
    print(f"\nmessage: {len(message)} bytes -> {len(blocks)} blocks of "
          f"up to {config.block_pkts} packets ({config.overhead:.0%} overhead)")

    received = []
    total_dropped = 0
    for shards in blocks:
        n = len(shards)
        # Drop the maximum tolerable count from every single block.
        droppable = min(config.parity_pkts, n - 1)
        drop = set(rng.sample(range(n), droppable))
        total_dropped += len(drop)
        received.append({i: s for i, s in enumerate(shards) if i not in drop})
    decoded = codec.decode_message(received, len(message))
    assert decoded == message
    print(f"dropped {total_dropped} packets "
          f"({config.parity_pkts} per block, the worst tolerable case) "
          f"and still decoded the full message")

    # --- beyond the budget it must fail ---------------------------------
    too_few = {i: s for i, s in enumerate(blocks[0]) if i >= 3}
    try:
        ReedSolomon(8, 2).decode(too_few)
    except ValueError as e:
        print(f"\ndropping 3 of 10 from one block correctly fails: {e}")


if __name__ == "__main__":
    main()
