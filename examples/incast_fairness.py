#!/usr/bin/env python
"""Mixed incast fairness: Uno vs Gemini vs MPRDMA+BBR (paper Fig 3).

Four intra-DC and four inter-DC long-lived flows all target one
receiver. The script samples each flow's goodput every millisecond and
prints Jain's fairness index over time for the three schemes, showing
Uno's fast convergence to the fair share.

Run:  python examples/incast_fairness.py
"""

from repro.analysis.fairness import jain_series
from repro.experiments.harness import (
    ExperimentScale,
    build_multidc,
    make_launcher,
)
from repro.sim import Simulator
from repro.sim.trace import RateMonitor
from repro.sim.units import GIB, MS
from repro.workloads.patterns import incast_specs

WINDOW_MS = 60


def run_scheme(scheme: str) -> list[float]:
    import dataclasses

    from repro.sim.units import MIB

    # Incast fairness needs the paper's 100G links so the per-flow fair
    # share stays a multi-packet window (see repro.experiments.fig3).
    scale = dataclasses.replace(ExperimentScale.quick(), gbps=100.0,
                                queue_bytes=1 * MIB)
    sim = Simulator()
    params = scale.params()
    topo = build_multidc(sim, scheme, params, scale, seed=1)
    specs = incast_specs(topo, n_intra=4, n_inter=4, size_bytes=64 * GIB)
    launcher = make_launcher(scheme, sim, topo, params, seed=1)
    senders = [launcher(s, i, lambda _x: None) for i, s in enumerate(specs)]
    mon = RateMonitor(sim, senders, probe=lambda s: s.stats.bytes_acked,
                      interval_ps=2 * MS)
    sim.run(until=WINDOW_MS * MS)
    return jain_series(mon.rates_gbps)


def main() -> None:
    print(f"Jain fairness index over a {WINDOW_MS} ms mixed incast "
          f"(1.0 = perfectly fair):\n")
    series = {s: run_scheme(s) for s in ("uno", "gemini", "mprdma_bbr")}
    n = min(len(v) for v in series.values())
    print("time(ms)  " + "  ".join(f"{s:>10}" for s in series))
    for i in range(0, n, 2):
        t_ms = (i + 1) * 2
        row = "  ".join(f"{series[s][i]:>10.3f}" for s in series)
        print(f"{t_ms:>8}  {row}")
    print(
        "\nwhat to look for: uno and gemini climb steadily toward 1.0 while"
        "\nmprdma_bbr oscillates and collapses (its two control loops fight,"
        "\npaper Fig 3C). The full 260 ms window — where uno sustains J>0.9"
        "\nwith a near-empty bottleneck queue while gemini needs a standing"
        "\nqueue hundreds of KiB deep — is measured by"
        "\n`python -m repro.experiments.fig3`."
    )


if __name__ == "__main__":
    main()
