#!/usr/bin/env python
"""Failure resilience: erasure coding + UnoLB vs a border-link failure
(paper Fig 13A, single-run walkthrough).

Starts latency-sensitive inter-DC transfers, kills one of the eight WAN
links mid-flight, and compares three configurations:

- ECMP, no erasure coding: flows hashed onto the dead link stall until
  retransmission timeouts fire;
- UnoLB, no EC: subflows spread each flow over many paths and reroute
  away from the failure after NACK/timeouts;
- UnoLB + (8, 2) erasure coding (full UnoRC): one dead path costs at
  most ~1 packet per block, which parity absorbs without retransmission.

Run:  python examples/failure_resilience.py
"""

from repro.core import UnoParams
from repro.core.uno import start_uno_flow
from repro.sim import Simulator
from repro.sim.failures import schedule_bidirectional_failure
from repro.sim.units import MIB, MS, SEC, fmt_time
from repro.topology import MultiDC, MultiDCConfig


def run_variant(use_lb: bool, use_ec: bool, seed: int = 7):
    sim = Simulator()
    params = UnoParams(link_gbps=25.0, queue_bytes=256 * 1024)
    topo = MultiDC(
        sim,
        MultiDCConfig(
            k=4,
            gbps=params.link_gbps,
            n_border_links=8,
            intra_rtt_ps=params.intra_rtt_ps,
            inter_rtt_ps=params.inter_rtt_ps,
            queue_bytes=params.queue_bytes,
            red=params.red(),
            phantom=params.phantom(),
            seed=seed,
        ),
    )
    # A 30 ms fiber flap on one of the eight WAN links.
    ab, ba = topo.border_links[0]
    schedule_bidirectional_failure(sim, ab, ba, fail_at_ps=1 * MS,
                                   repair_after_ps=30 * MS)

    done = []
    senders = [
        start_uno_flow(
            sim, topo.net, topo.host(0, i), topo.host(1, i), 5 * MIB, params,
            use_rc=use_ec, use_lb=use_lb, seed=seed * 100 + i,
            on_complete=done.append,
        )
        for i in range(8)
    ]
    sim.run(until=30 * SEC)
    assert len(done) == len(senders), "flows did not finish"
    worst = max(s.stats.fct_ps for s in senders)
    retx = sum(s.stats.retransmissions for s in senders)
    return worst, retx


def main() -> None:
    print("one of 8 WAN links flaps (down 1-31 ms) during 8x 5MiB "
          "inter-DC flows\n")
    for label, use_lb, use_ec in (
        ("ECMP, no EC", False, False),
        ("UnoLB, no EC", True, False),
        ("UnoLB + EC (full UnoRC)", True, True),
    ):
        worst, retx = run_variant(use_lb, use_ec)
        print(f"{label:<26} worst FCT = {fmt_time(worst):>10}   "
              f"retransmissions = {retx}")
    print(
        "\nwhat to look for (paper Fig 13A): with plain ECMP the outcome is"
        "\nluck-of-the-hash — a flow pinned to the dead link stalls until the"
        "\nrepair plus an RTO; UnoLB spreads each flow over 10 subflow paths"
        "\nso every flow keeps progressing, and adding erasure coding (full"
        "\nUnoRC) recovers the punctured blocks without waiting for"
        "\nretransmission timeouts, giving the fastest worst-case FCT of the"
        "\nUnoLB variants."
    )


if __name__ == "__main__":
    main()
