#!/usr/bin/env python
"""Realistic mixed workload under Uno (paper Fig 10, single-cell walkthrough).

Generates Poisson traffic at 40% load — Google web-search flows inside
the datacenters, Alibaba-WAN flows across them, mixed 4:1 — runs it under
the full Uno stack, and prints per-class FCT statistics plus a sparkline
of the bottleneck-class FCT distribution.

Run:  python examples/realistic_workload.py
"""

from repro.analysis.fct import split_intra_inter, summarize_fcts
from repro.experiments.harness import (
    ExperimentScale,
    build_multidc,
    make_launcher,
    run_specs,
)
from repro.sim import Simulator
from repro.sim.units import MS, fmt_time
from repro.workloads import load_builtin
from repro.workloads.generator import PoissonTraffic, TrafficConfig

BARS = " .:-=+*#%@"


def sparkline(values, bins=30):
    if not values:
        return ""
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1
    counts = [0] * bins
    for v in values:
        counts[min(bins - 1, int((v - lo) / span * bins))] += 1
    peak = max(counts) or 1
    return "".join(BARS[int(c / peak * (len(BARS) - 1))] for c in counts)


def main() -> None:
    scale = ExperimentScale.quick()
    sim = Simulator()
    params = scale.params()
    topo = build_multidc(sim, "uno", params, scale, seed=42)

    # The shipped trace files are the paper's flow-size distributions;
    # swap in your own with repro.workloads.load_cdf_file(path).
    intra_cdf = load_builtin("websearch").scaled(scale.size_scale)
    inter_cdf = load_builtin("alibaba_wan").scaled(scale.size_scale)

    traffic = PoissonTraffic(
        topo,
        TrafficConfig(load=0.4, duration_ps=3 * MS, intra_cdf=intra_cdf,
                      inter_cdf=inter_cdf, max_flows=1500, seed=42),
    )
    specs = traffic.generate()
    print(f"generated {len(specs)} flows "
          f"({sum(s.is_inter_dc for s in specs)} inter-DC) at 40% load")

    launcher = make_launcher("uno", sim, topo, params, seed=42)
    senders = run_specs(sim, specs, launcher, scale.horizon_ps)
    stats = [s.stats for s in senders]
    intra, inter = split_intra_inter(stats)

    for label, cls in (("intra-DC (websearch)", intra),
                       ("inter-DC (Alibaba WAN)", inter)):
        if not cls:
            continue
        s = summarize_fcts(cls)
        fcts_ms = sorted(x.fct_ps / 1e9 for x in cls)
        print(f"\n{label}: n={s.count}")
        print(f"  mean={fmt_time(int(s.mean_ps))}  "
              f"p50={fmt_time(int(s.p50_ps))}  p99={fmt_time(int(s.p99_ps))}")
        print(f"  FCT histogram  [{fcts_ms[0]:.2f}ms .. {fcts_ms[-1]:.2f}ms]")
        print(f"  |{sparkline(fcts_ms)}|")
    print(f"\nsimulated {sim.events_executed} events, "
          f"{topo.net.total_drops()} drops")


if __name__ == "__main__":
    main()
