"""Hierarchical counter/gauge registry and time-series helper.

The registry is the simulator's single place for named statistics.
Components register three kinds of instrument under dotted names
(``"port.s0->swL.drops"``):

- :class:`Counter` — a push-style monotonic count, get-or-created with
  :meth:`MetricsRegistry.counter` so independent call sites can share one
  aggregate (e.g. every flow increments ``transport.retransmissions``);
- **gauges** — pull-style callables registered with
  :meth:`MetricsRegistry.gauge`, evaluated only at snapshot time. The
  datapath keeps its cheap slotted ``int`` attributes (``Port.drops``,
  ``Link.delivered_pkts`` ...) and the registry reads them live, so
  enabling metrics adds zero per-packet cost to already-counted events;
- :class:`TimeSeries` — append-only ``(t, *values)`` rows used by the
  sampling monitors in :mod:`repro.sim.trace`; snapshots summarize them
  (count/min/max/mean per column) instead of dumping every row.

:meth:`MetricsRegistry.snapshot` renders everything as one nested dict
(dotted names become nesting levels), ready for ``canonical_json``.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple


def metric_key(name: str) -> str:
    """Sanitize an instance name (port/link/node) for use as ONE metric
    path segment: dots would otherwise open new nesting levels."""
    return name.replace(".", "_")


class Counter:
    """A named monotonic counter. ``inc`` is the only mutator."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Counter {self.name}={self.value}>"


class TimeSeries:
    """Append-only ``(t, *values)`` rows with per-column reducers.

    Column 0 is always the timestamp; ``column(i)`` / ``max(i)`` /
    ``mean(i)`` index into the full row tuple (so value columns start
    at 1). This is the storage behind ``QueueMonitor``/``RateMonitor``.
    """

    __slots__ = ("name", "rows")

    def __init__(self, name: str = ""):
        self.name = name
        self.rows: List[Tuple] = []

    def append(self, t: int, *values) -> None:
        self.rows.append((t, *values))

    def __len__(self) -> int:
        return len(self.rows)

    def times(self) -> List[int]:
        return [row[0] for row in self.rows]

    def column(self, i: int) -> List:
        return [row[i] for row in self.rows]

    def max(self, i: int, default=0):
        return max((row[i] for row in self.rows), default=default)

    def mean(self, i: int, default: float = 0.0) -> float:
        if not self.rows:
            return default
        return sum(row[i] for row in self.rows) / len(self.rows)

    def summary(self) -> Dict[str, Any]:
        """Snapshot-friendly reduction: per-column count/min/max/mean."""
        if not self.rows:
            return {"n": 0}
        n_cols = len(self.rows[0])
        return {
            "n": len(self.rows),
            "t_first": self.rows[0][0],
            "t_last": self.rows[-1][0],
            "columns": [
                {
                    "min": min(col),
                    "max": max(col),
                    "mean": sum(col) / len(col),
                }
                for col in (self.column(i) for i in range(1, n_cols))
            ],
        }


class MetricsRegistry:
    """Named counters, gauges, and series; snapshotable as a nested dict."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Callable[[], Any]] = {}
        self._series: Dict[str, TimeSeries] = {}
        self._pending: List[Callable[["MetricsRegistry"], None]] = []

    # -- registration ----------------------------------------------------

    def defer(self, register: Callable[["MetricsRegistry"], None]) -> None:
        """Queue a registration callback to run lazily, at the first
        read (snapshot/value/total/unique_name).

        Gauge names are f-strings over instance names; building a
        fat-tree registers thousands of them, all pure construction-time
        overhead when the run never reads its metrics. Components pass
        their ``_register_metrics`` bound method here instead of calling
        it eagerly. The trade-off: a duplicate-name error surfaces at
        the first read instead of at construction."""
        self._pending.append(register)

    def _materialize(self) -> None:
        if not self._pending:
            return
        # Swap first: a registration callback could itself defer more.
        pending, self._pending = self._pending, []
        for register in pending:
            register(self)

    def counter(self, name: str) -> Counter:
        """Get-or-create the counter ``name`` (shared across call sites)."""
        counter = self._counters.get(name)
        if counter is None:
            self._check_free(name, self._counters)
            counter = self._counters[name] = Counter(name)
        return counter

    def gauge(self, name: str, fn: Callable[[], Any]) -> None:
        """Register a pull-style gauge; evaluated only at snapshot time."""
        self._check_free(name)
        self._gauges[name] = fn

    def series(self, name: str) -> TimeSeries:
        """Get-or-create the time series ``name``."""
        ts = self._series.get(name)
        if ts is None:
            self._check_free(name, self._series)
            ts = self._series[name] = TimeSeries(name)
        return ts

    def unique_name(self, prefix: str) -> str:
        """A deterministic fresh dotted name under ``prefix`` (``prefix.0``,
        ``prefix.1``, ...) for instruments with no natural identity, such
        as rate monitors."""
        self._materialize()
        i = 0
        while True:
            name = f"{prefix}.{i}"
            try:
                self._check_free(name)
            except ValueError:
                i += 1
                continue
            return name

    def _check_free(self, name: str, exempt: Optional[dict] = None) -> None:
        if not name:
            raise ValueError("metric name must be non-empty")
        for table in (self._counters, self._gauges, self._series):
            if table is not exempt and name in table:
                raise ValueError(f"metric name already registered: {name!r}")

    # -- reading ---------------------------------------------------------

    def value(self, name: str) -> Any:
        """Current value of one counter or gauge by exact name."""
        self._materialize()
        if name in self._counters:
            return self._counters[name].value
        if name in self._gauges:
            return self._gauges[name]()
        raise KeyError(name)

    def snapshot(self) -> Dict[str, Any]:
        """Everything as one nested dict: dotted names become nesting."""
        self._materialize()
        out: Dict[str, Any] = {}
        for name, counter in self._counters.items():
            _nest(out, name, counter.value)
        for name, fn in self._gauges.items():
            _nest(out, name, fn())
        for name, ts in self._series.items():
            _nest(out, name, ts.summary())
        return out

    def total(self, prefix: str) -> float:
        """Sum of every numeric leaf at or under ``prefix`` — the helper
        conservation tests use (``total("port") == sum of all port
        counters`` would mix units, so callers pass full leaf groups like
        ``"transport.retransmissions"`` or sum explicit subtrees)."""
        node = self.snapshot()
        for part in prefix.split("."):
            if not isinstance(node, dict) or part not in node:
                return 0.0
            node = node[part]
        return sum_numeric(node)


def _nest(out: Dict[str, Any], dotted: str, value: Any) -> None:
    parts = dotted.split(".")
    node = out
    for part in parts[:-1]:
        nxt = node.get(part)
        if not isinstance(nxt, dict):
            nxt = node[part] = {}
        node = nxt
    node[parts[-1]] = value


def sum_numeric(node: Any) -> float:
    """Sum every numeric leaf of a nested snapshot fragment."""
    if isinstance(node, bool):
        return 0.0
    if isinstance(node, (int, float)):
        return float(node)
    if isinstance(node, dict):
        return sum(sum_numeric(v) for v in node.values())
    if isinstance(node, (list, tuple)):
        return sum(sum_numeric(v) for v in node)
    return 0.0


def merge_shard_snapshots(by_shard: Dict[Any, Any]) -> Dict[str, Any]:
    """Merge per-shard telemetry snapshots into one parent summary.

    ``by_shard`` maps shard id -> the worker's ``collect()``/``snapshot``
    record. Under the replicated-world sharding scheme the remote half of
    each shard's topology is silent (its senders never start, so every
    remote-side counter stays 0), which makes plain :func:`merge_numeric`
    summation the correct aggregation: the merged transport/port counters
    equal what a single unsharded engine would have reported. Returns::

        {"merged": <summed snapshot>, "by_shard": {"0": ..., "1": ...}}

    sorted by shard id for canonical JSON output.
    """
    merged: Any = None
    per_shard: Dict[str, Any] = {}
    for shard in sorted(by_shard, key=str):
        snap = by_shard[shard]
        per_shard[str(shard)] = snap
        merged = merge_numeric(merged, snap)
    return {"merged": merged if merged is not None else {},
            "by_shard": per_shard}


def merge_numeric(a: Any, b: Any) -> Any:
    """Recursively merge two snapshots: numbers add, dicts union-merge,
    anything else keeps the first non-None value. Used to aggregate
    per-simulator (and per-point) telemetry into one summary."""
    if a is None:
        return b
    if b is None:
        return a
    if isinstance(a, bool) or isinstance(b, bool):
        return a
    if isinstance(a, (int, float)) and isinstance(b, (int, float)):
        return a + b
    if isinstance(a, dict) and isinstance(b, dict):
        out = dict(a)
        for key, value in b.items():
            out[key] = merge_numeric(out.get(key), value) if key in out else value
        return out
    return a
