"""Structured event tracing: topic-filtered, zero-cost when disabled.

An :class:`EventLog` records discrete simulator events (packet drops,
ECN marks, ACKs, cwnd changes, epoch closings, failures, reroutes ...)
as flat dicts. Emission sites follow one pattern::

    ev = self._events                      # cached at construction
    if ev is not None and ev.wants("queue"):
        ev.emit("queue", "drop", t=now, port=self.name, flow=pkt.flow_id)

With observability disabled (the default) ``self._events`` is None and
the whole site is one pointer comparison; with it enabled but the topic
filtered out, ``wants`` is one frozenset membership test — nothing is
allocated either way.

Two backends, usable together:

- :class:`RingBufferSink` — bounded in-memory deque (the default), for
  tests and interactive debugging;
- :class:`JSONLFileSink` — one JSON object per line, for offline replay
  of a run's drop/mark/failure history.
"""

from __future__ import annotations

import json
from collections import Counter as TallyCounter
from collections import deque
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

# The standard topics emitted by the instrumented stack. An EventLog may
# carry any topic string; this tuple is the documented vocabulary and the
# default filter.
TOPICS = (
    "queue",    # packet enqueue / drop / ECN mark at ports
    "ack",      # ACKs (including duplicate and block-complete control ACKs)
    "nack",     # UnoRC unrecoverable-block NACKs (sent and received)
    "cwnd",     # congestion-window changes at senders
    "epoch",    # epoch closings in epoch-based CCs (UnoCC)
    "failure",  # link fail / restore and scheduled failure injection
    "route",      # LB repath decisions, next-hop patches, no-route drops
    "flow",       # flow start / completion
    "invariant",  # chaos-campaign invariant violations
    "span",       # closed flow-lifecycle spans (repro.obs.spans)
    "pfc",        # PFC pause/resume/xoff/xon and CBD deadlock detections
)


class RingBufferSink:
    """Keeps the last ``maxlen`` events in memory."""

    def __init__(self, maxlen: int = 65536):
        if maxlen <= 0:
            raise ValueError("ring buffer size must be positive")
        self.buffer: deque = deque(maxlen=maxlen)

    def write(self, event: Dict[str, Any]) -> None:
        self.buffer.append(event)

    def events(self) -> List[Dict[str, Any]]:
        return list(self.buffer)

    def close(self) -> None:  # symmetric with JSONLFileSink
        pass


class JSONLFileSink:
    """Appends one compact JSON object per event to ``path``.

    The file is line-buffered: every event line reaches the OS as soon
    as it is written, so a worker that crashes mid-run (or a point that
    fails and leaves only an ``.error.json`` record) still leaves a
    replayable trace up to its last event instead of an empty buffer.
    Usable as a context manager; ``close()`` is idempotent.
    """

    def __init__(self, path):
        self.path = path
        self._fh = open(path, "w", encoding="utf-8", buffering=1)

    def write(self, event: Dict[str, Any]) -> None:
        self._fh.write(json.dumps(event, sort_keys=True,
                                  separators=(",", ":")))
        self._fh.write("\n")

    def flush(self) -> None:
        if self._fh is not None:
            self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "JSONLFileSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class EventLog:
    """Topic-filtered structured event log fanning out to sinks.

    ``topics`` is the enabled set: ``"all"`` (or None) enables every
    topic, an iterable of names enables exactly those. ``counts`` tallies
    ``(topic, kind)`` pairs regardless of sink capacity, so bounded ring
    buffers never lose the aggregate picture.
    """

    def __init__(
        self,
        topics: Optional[Iterable[str]] = "all",
        sinks: Optional[Sequence] = None,
        ring_size: int = 65536,
    ):
        if topics is None or topics == "all":
            self._topics: Optional[frozenset] = None  # None = everything
        else:
            self._topics = frozenset(topics)
        self.ring: Optional[RingBufferSink] = None
        if sinks is None:
            self.ring = RingBufferSink(ring_size)
            sinks = [self.ring]
        else:
            sinks = list(sinks)
            for sink in sinks:
                if isinstance(sink, RingBufferSink):
                    self.ring = sink
        self._sinks = list(sinks)
        self.counts: TallyCounter = TallyCounter()
        self.emitted = 0
        # When set (ProcessShard workers), every emitted event carries a
        # ``"shard"`` field so merged cross-shard traces stay attributable.
        self.shard: Optional[int] = None

    # -- emission --------------------------------------------------------

    def wants(self, topic: str) -> bool:
        """Cheap pre-check so emission sites skip building field dicts."""
        return self._topics is None or topic in self._topics

    def emit(self, topic: str, kind: str, **fields: Any) -> None:
        if self._topics is not None and topic not in self._topics:
            return
        event = {"topic": topic, "kind": kind}
        event.update(fields)
        if self.shard is not None:
            event["shard"] = self.shard
        self.counts[(topic, kind)] += 1
        self.emitted += 1
        for sink in self._sinks:
            sink.write(event)

    # -- reading ---------------------------------------------------------

    def events(self, topic: Optional[str] = None,
               kind: Optional[str] = None) -> List[Dict[str, Any]]:
        """Events currently held by the ring buffer, optionally filtered.
        (A file sink's history lives in its file, not here.)"""
        if self.ring is None:
            return []
        return [
            e for e in self.ring.events()
            if (topic is None or e["topic"] == topic)
            and (kind is None or e["kind"] == kind)
        ]

    def count(self, topic: str, kind: Optional[str] = None) -> int:
        """Total emitted matching events (unaffected by ring capacity)."""
        if kind is not None:
            return self.counts.get((topic, kind), 0)
        return sum(n for (t, _k), n in self.counts.items() if t == topic)

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready tally of everything emitted."""
        per_topic: Dict[str, Dict[str, int]] = {}
        for (topic, kind), n in sorted(self.counts.items()):
            per_topic.setdefault(topic, {})[kind] = n
        return {"emitted": self.emitted, "by_topic": per_topic}

    def close(self) -> None:
        for sink in self._sinks:
            sink.close()


def read_jsonl(path) -> List[Dict[str, Any]]:
    """Parse a JSONL event file back into event dicts (replay helper).

    A truncated *final* line — the signature of a writer killed
    mid-``write`` — is silently dropped, so partial traces from crashed
    workers replay cleanly; corruption anywhere else still raises.
    """
    events = []
    with open(path, "r", encoding="utf-8") as fh:
        lines = [line.strip() for line in fh]
    lines = [line for line in lines if line]
    for i, line in enumerate(lines):
        try:
            events.append(json.loads(line))
        except json.JSONDecodeError:
            if i == len(lines) - 1:
                break  # torn tail of a crashed writer
            raise
    return events
