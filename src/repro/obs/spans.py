"""Per-flow lifecycle spans, derived at emission time from transport
and host hooks.

A **span** is a named instant or interval in one flow's life. The
vocabulary follows the flow lifecycle::

    flow_start -> first_data -> {rto, retransmit, cwnd_phase,
                                 endpoint} -> complete | abort

Spans are emitted on the ``"span"`` event topic the moment they *close*
(instant spans close immediately), as flat JSONL-friendly dicts::

    {"topic": "span", "kind": "flow", "flow": 7, "t0": 0,
     "t": 81260000, "outcome": "complete", "fct": 81260000, ...}

``t0``/``t`` are picosecond open/close timestamps (equal for instant
spans); when the owning :class:`~repro.obs.events.EventLog` carries a
shard tag every span also carries ``"shard"``, which is what lets the
trace aggregator (:mod:`repro.obs.stream`) stitch a flow whose sender
and receiver live in *different* shards back into one causal timeline:
sender-side spans (flow/rto/retransmit/cwnd_phase) arrive tagged with
the source shard, receiver-side spans (first_data, the receiving
endpoint) with the destination shard, and a ps-ordered merge over the
flow id reconstructs the crossing.

Kinds:

- ``flow`` — the whole lifecycle, opened by ``flow_start`` and closed
  by the terminal transition with ``outcome`` "complete"/"abort" (or
  "open" if flushed at a horizon while still running);
- ``first_data`` — instant: the receiver saw its first data packet;
- ``rto`` — instant: a retransmission timeout fired (``consecutive``,
  ``backoff``);
- ``retransmit`` — instant: one packet was retransmitted (``seq``);
- ``cwnd_phase`` — interval: a monotone congestion-window phase
  (``phase`` "up"/"down", cwnd at entry/exit, number of updates);
  closed when the window direction flips or the flow terminates;
- ``endpoint`` — interval: a host-side endpoint registration
  (``host``), from ``Host.register`` to ``Host.unregister`` — leaked
  registrations show up as ``state: "open"`` at flush time.

Zero-cost-when-disabled contract: components cache ``obs.spans`` at
construction exactly like ``obs.events``; with observability off the
per-call cost is a single ``is None`` pointer test and **nothing is
allocated**. Recording a span never schedules events and never draws
from any RNG, so engine behavior is event-for-event identical with
spans on or off (tested in tests/test_spans.py).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.events import EventLog

#: The documented span vocabulary (the ``kind`` field of span events).
SPAN_KINDS = (
    "flow",
    "first_data",
    "rto",
    "retransmit",
    "cwnd_phase",
    "endpoint",
)


class FlowSpans:
    """Stateful span recorder emitting closed spans as ``"span"`` events.

    One instance per :class:`~repro.obs.Observability` bundle. All
    methods are cheap dict operations on the flow id; heavy lifting
    (serialization, sinks, shard tagging) happens in the event log.
    """

    __slots__ = ("_events", "_flows", "_phases", "_endpoints", "opened",
                 "closed")

    def __init__(self, events: "EventLog"):
        self._events = events
        # flow -> (t0, attrs) for the whole-lifecycle span.
        self._flows: Dict[int, Tuple[int, Dict[str, Any]]] = {}
        # flow -> [phase, t0, cwnd_at_entry, updates, last_cwnd]
        self._phases: Dict[int, list] = {}
        # (flow, host) -> t0 for endpoint registrations.
        self._endpoints: Dict[Tuple[int, str], int] = {}
        self.opened = 0
        self.closed = 0

    # -- emission core ---------------------------------------------------

    def _emit(self, kind: str, flow: int, t0: int, t1: int,
              **attrs: Any) -> None:
        self.closed += 1
        self._events.emit("span", kind, t=t1, t0=t0, flow=flow, **attrs)

    def point(self, flow: int, kind: str, t: int, **attrs: Any) -> None:
        """Record an instant span (``t0 == t``)."""
        self.opened += 1
        self._emit(kind, flow, t, t, **attrs)

    # -- flow lifecycle ---------------------------------------------------

    def flow_start(self, flow: int, t: int, **attrs: Any) -> None:
        """Open the whole-lifecycle ``flow`` span (Sender.start)."""
        self.opened += 1
        self._flows[flow] = (t, dict(attrs))

    def flow_end(self, flow: int, t: int, outcome: str,
                 **attrs: Any) -> None:
        """Close the ``flow`` span (and any open cwnd phase) at the
        terminal transition; ``outcome`` is "complete" or "abort"."""
        self._close_phase(flow, t)
        opened = self._flows.pop(flow, None)
        t0, start_attrs = opened if opened is not None else (t, {})
        self._emit("flow", flow, t0, t, outcome=outcome,
                   **start_attrs, **attrs)

    def first_data(self, flow: int, t: int, **attrs: Any) -> None:
        """Instant span: the receiver saw its first data packet."""
        self.point(flow, "first_data", t, **attrs)

    def rto(self, flow: int, t: int, **attrs: Any) -> None:
        """Instant span: a retransmission timeout fired."""
        self.point(flow, "rto", t, **attrs)

    def retransmit(self, flow: int, t: int, seq: int) -> None:
        """Instant span: data packet ``seq`` was retransmitted."""
        self.point(flow, "retransmit", t, seq=seq)

    # -- congestion-window phases -----------------------------------------

    def cwnd(self, flow: int, t: int, old: float, new: float) -> None:
        """Fold one cwnd change into the flow's current monotone phase;
        a direction flip closes the phase span and opens the next."""
        if new == old:
            return
        direction = "up" if new > old else "down"
        phase = self._phases.get(flow)
        if phase is not None and phase[0] == direction:
            phase[3] += 1
            phase[4] = new
            return
        if phase is not None:
            self._emit("cwnd_phase", flow, phase[1], t, phase=phase[0],
                       cwnd0=phase[2], cwnd1=phase[4], updates=phase[3])
        self.opened += 1
        self._phases[flow] = [direction, t, old, 1, new]

    def _close_phase(self, flow: int, t: int) -> None:
        phase = self._phases.pop(flow, None)
        if phase is not None:
            self._emit("cwnd_phase", flow, phase[1], t, phase=phase[0],
                       cwnd0=phase[2], cwnd1=phase[4], updates=phase[3])

    # -- host endpoints ----------------------------------------------------

    def endpoint_open(self, flow: int, t: int, host: str) -> None:
        """A host registered an endpoint for ``flow`` (Host.register)."""
        self.opened += 1
        self._endpoints[(flow, host)] = t

    def endpoint_close(self, flow: int, t: int, host: str) -> None:
        """The registration ended (Host.unregister); closes the span."""
        t0 = self._endpoints.pop((flow, host), None)
        self._emit("endpoint", flow, t if t0 is None else t0, t, host=host)

    def endpoint_discard(self, flow: int, host: str) -> None:
        """Forget an open endpoint span as if it was never opened — used
        when shard workers deactivate the remote half of a replicated
        world (those registrations never carried traffic and must not
        show up as leaked ``state: "open"`` spans at flush time)."""
        if self._endpoints.pop((flow, host), None) is not None:
            self.opened -= 1

    # -- horizon flush -----------------------------------------------------

    def flush_open(self, t: int) -> int:
        """Close every still-open span at time ``t`` with ``state:
        "open"`` — called when a run ends at a horizon so in-progress
        flows still show up in the merged trace (their spans simply
        end at the horizon). Returns the number of spans flushed."""
        flushed = 0
        for flow in sorted(self._phases):
            self._close_phase(flow, t)
            flushed += 1
        for flow in sorted(self._flows):
            t0, attrs = self._flows.pop(flow)
            self._emit("flow", flow, t0, t, outcome="open", **attrs)
            flushed += 1
        for (flow, host) in sorted(self._endpoints):
            t0 = self._endpoints.pop((flow, host))
            self._emit("endpoint", flow, t0, t, host=host, state="open")
            flushed += 1
        return flushed

    @property
    def open_spans(self) -> int:
        """Spans currently open (flows + phases + endpoints)."""
        return len(self._flows) + len(self._phases) + len(self._endpoints)
