"""Engine profiling: where does simulated time cost wall time?

The profiler attributes the event loop's wall time to *callback sites*
(the ``__qualname__`` of each scheduled function, e.g.
``Port._finish_tx`` or ``Sender._rto_check``), so a BENCH run can answer
"which subsystem is hot" before anyone optimizes blind.

It is wired into :class:`repro.sim.engine.Simulator`: when
``sim.obs.profile`` is set, ``run()`` switches to an instrumented loop
that times every callback; otherwise the lean loop runs untouched — the
only cost of the feature when disabled is one attribute check per
``run()`` *call*, never per event.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict


def site_name(fn: Callable[..., Any]) -> str:
    """Stable label for a scheduled callback (its qualified name)."""
    return getattr(fn, "__qualname__", None) or repr(fn)


def rank_sites(sites: Dict[str, Dict[str, Any]], n: int = 10):
    """Rank a snapshot-form ``sites`` mapping by wall time.

    The qualname histogram surfaced in telemetry summaries: each entry
    names the callback site, its call count, its wall time, and its
    share of the summed per-site wall time. Works on both a single
    profiler's snapshot and a ``merge_numeric``-merged one, so summary
    writers recompute it *after* merging (a merged list would otherwise
    keep only the first simulator's ranking).
    """
    total = sum(s["wall_s"] for s in sites.values()) or 1.0
    ranked = sorted(sites.items(), key=lambda kv: kv[1]["wall_s"],
                    reverse=True)
    return [
        {"site": name, "calls": s["calls"], "wall_s": s["wall_s"],
         "frac": s["wall_s"] / total}
        for name, s in ranked[:n]
    ]


class SiteStats:
    """Tally for one callback site."""

    __slots__ = ("calls", "wall_s")

    def __init__(self) -> None:
        self.calls = 0
        self.wall_s = 0.0


class EngineProfiler:
    """Per-callback-site wall-time tally for the simulator event loop."""

    def __init__(self) -> None:
        self.sites: Dict[str, SiteStats] = {}
        self.events = 0
        self.wall_s = 0.0

    # -- accounting (called from the engine's instrumented loop) ---------

    def account(self, fn: Callable[..., Any], elapsed_s: float) -> None:
        name = site_name(fn)
        stats = self.sites.get(name)
        if stats is None:
            stats = self.sites[name] = SiteStats()
        stats.calls += 1
        stats.wall_s += elapsed_s
        self.events += 1

    def add_wall(self, elapsed_s: float) -> None:
        """Account one ``run()`` call's total wall time (loop overhead
        included, unlike the per-site sums)."""
        self.wall_s += elapsed_s

    clock = staticmethod(time.perf_counter)

    # -- reporting -------------------------------------------------------

    @property
    def events_per_sec(self) -> float:
        return self.events / self.wall_s if self.wall_s > 0 else 0.0

    def top_sites(self, n: int = 10):
        """The ``n`` most expensive sites as (name, stats), by wall time."""
        ranked = sorted(self.sites.items(),
                        key=lambda kv: kv[1].wall_s, reverse=True)
        return ranked[:n]

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready profile: totals, per-site calls and wall time, and
        the ranked qualname histogram (``top_sites``)."""
        sites = {
            name: {"calls": s.calls, "wall_s": s.wall_s}
            for name, s in sorted(self.sites.items())
        }
        return {
            "events": self.events,
            "wall_s": self.wall_s,
            "events_per_sec": self.events_per_sec,
            "sites": sites,
            "top_sites": rank_sites(sites),
        }

    def report(self, n: int = 10) -> str:
        """Human-readable top-N table (for interactive debugging)."""
        lines = [
            f"{self.events} events in {self.wall_s:.3f}s "
            f"({self.events_per_sec:,.0f} events/s)"
        ]
        for name, s in self.top_sites(n):
            lines.append(f"  {s.wall_s:8.3f}s  {s.calls:>10} calls  {name}")
        return "\n".join(lines)
