"""Shard-aware telemetry stream aggregation.

PR 6's sharded runs left a correlation gap: each ProcessShard worker
owns its own event log and metric registry, so a two-shard campaign
produced two disjoint traces with no merged view. This module closes
the gap:

- :class:`StreamBufferSink` — an unbounded, drainable event sink. Shard
  workers attach one next to their ring/JSONL sinks; the window
  protocol drains it after every conservative (CMB) window and ships
  the batch over the pipe, so the coordinator sees telemetry
  *incrementally* while the run is still going, not only at
  ``finish()``.
- :func:`merge_streams` — k-way merge of per-shard event streams into
  one canonical, ps-ordered stream. Within a shard events are emitted
  in non-decreasing sim time (emission happens at ``sim.now``), so a
  stable sort keyed by ``(t, shard, per-shard position)`` is a total,
  deterministic order: same inputs, same canonical trace, every run.
- :class:`TraceAggregator` — accumulates per-shard batches (from the
  pipe, or offline from per-worker JSONL files via :func:`read_jsonl`),
  produces the merged stream, writes it as one JSONL file, and checks
  **conservation**: every event a worker emitted must appear in the
  merged trace, per shard (``events in == events merged``).
- :func:`cross_shard_flows` / :func:`flow_timeline` — stitching
  helpers: group the merged stream by flow id to reconstruct a causal
  timeline for flows whose packets crossed a ShardBoundary (sender-side
  spans tagged with one shard, receiver-side with the other).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set

from repro.obs.events import read_jsonl


class StreamBufferSink:
    """Unbounded append-only event sink with ``drain()``.

    The incremental tap behind cross-shard streaming: unlike the ring
    buffer it never drops events, and unlike the JSONL file sink its
    contents can be handed to an in-process consumer batch by batch.
    Bounded in practice because the shard window protocol drains it
    every CMB window.
    """

    def __init__(self) -> None:
        self._buf: List[Dict[str, Any]] = []

    def write(self, event: Dict[str, Any]) -> None:
        self._buf.append(event)

    def drain(self) -> List[Dict[str, Any]]:
        """Return and clear everything written since the last drain."""
        out, self._buf = self._buf, []
        return out

    def __len__(self) -> int:
        return len(self._buf)

    def close(self) -> None:  # sink protocol
        pass


def merge_streams(
    streams: Sequence[tuple],
) -> List[Dict[str, Any]]:
    """Merge ``[(shard_id, events), ...]`` into one ps-ordered stream.

    Each per-shard stream must be internally time-ordered (true of any
    stream emitted by a running simulator). The canonical order is
    ``(t, shard, position-within-shard)``: deterministic, stable under
    re-aggregation, and identical whether the batches arrived
    incrementally or from files.
    """
    rows = []
    for shard, events in streams:
        shard_key = -1 if shard is None else shard
        for pos, event in enumerate(events):
            rows.append((event.get("t", 0), shard_key, pos, event))
    rows.sort(key=lambda row: row[:3])
    return [row[3] for row in rows]


class TraceAggregator:
    """Accumulate per-shard event batches into one canonical trace.

    Feed it incrementally (``add_events`` per CMB window, from the
    coordinator) and/or offline (``add_file`` over a worker's JSONL
    sink); ``merged()`` yields the canonical ps-ordered stream and
    ``conservation()`` verifies nothing was lost in transit.
    """

    def __init__(self) -> None:
        self._by_shard: Dict[Any, List[Dict[str, Any]]] = {}
        self.events_in: Dict[Any, int] = {}

    def add_events(self, shard: Any,
                   batch: Iterable[Dict[str, Any]]) -> int:
        """Append one shard's next batch (already time-ordered within
        the shard); returns the number of events taken in."""
        batch = list(batch)
        if not batch:
            return 0
        self._by_shard.setdefault(shard, []).extend(batch)
        self.events_in[shard] = self.events_in.get(shard, 0) + len(batch)
        return len(batch)

    def add_file(self, shard: Any, path) -> int:
        """Ingest a per-worker JSONL trace file (offline merge path)."""
        return self.add_events(shard, read_jsonl(path))

    @property
    def total_in(self) -> int:
        return sum(self.events_in.values())

    def merged(self) -> List[Dict[str, Any]]:
        """The canonical ps-ordered merge of everything ingested."""
        return merge_streams(sorted(self._by_shard.items(),
                                    key=lambda kv: str(kv[0])))

    def write(self, path) -> int:
        """Write the merged trace as one JSONL file; returns the event
        count (equal to :attr:`total_in` by construction)."""
        merged = self.merged()
        with open(path, "w", encoding="utf-8") as fh:
            for event in merged:
                fh.write(json.dumps(event, sort_keys=True,
                                    separators=(",", ":")))
                fh.write("\n")
        return len(merged)

    def conservation(
        self, emitted_by_shard: Optional[Dict[Any, int]] = None,
    ) -> List[str]:
        """Check events in == events merged (and, when the workers'
        ``EventLog.emitted`` totals are supplied, emitted == received
        per shard). Returns violation strings, empty when conserved."""
        violations: List[str] = []
        merged_by_shard: Dict[Any, int] = {}
        for event in self.merged():
            key = event.get("shard")
            merged_by_shard[key] = merged_by_shard.get(key, 0) + 1
        total_merged = sum(merged_by_shard.values())
        if total_merged != self.total_in:
            violations.append(
                f"trace aggregator: {self.total_in} events in, "
                f"{total_merged} merged"
            )
        if emitted_by_shard is not None:
            for shard in sorted(emitted_by_shard, key=str):
                emitted = emitted_by_shard[shard]
                got = self.events_in.get(shard, 0)
                if emitted != got:
                    violations.append(
                        f"trace aggregator: shard {shard} emitted "
                        f"{emitted} events, aggregator received {got}"
                    )
        return violations

    def summary(self) -> Dict[str, Any]:
        """JSON-ready accounting of the aggregation."""
        return {
            "events_in": {str(k): v for k, v in self.events_in.items()},
            "events_merged": len(self.merged()),
            "shards": sorted((str(k) for k in self._by_shard), key=str),
        }


# ----------------------------------------------------------------------
# Stitching helpers over a merged trace
# ----------------------------------------------------------------------

def flow_timeline(events: Iterable[Dict[str, Any]],
                  flow: int) -> List[Dict[str, Any]]:
    """Every event belonging to ``flow``, in canonical order — the
    stitched causal timeline of one (possibly cross-shard) flow."""
    return [e for e in events if e.get("flow") == flow]


def flows_by_shard(
    events: Iterable[Dict[str, Any]],
) -> Dict[int, Set[Any]]:
    """Map each flow id to the set of shards that emitted events for it."""
    out: Dict[int, Set[Any]] = {}
    for event in events:
        flow = event.get("flow")
        if flow is None:
            continue
        out.setdefault(flow, set()).add(event.get("shard"))
    return out


def cross_shard_flows(events: Iterable[Dict[str, Any]]) -> List[int]:
    """Flow ids whose timeline spans more than one shard — i.e. flows
    stitched across a ShardBoundary by the aggregator."""
    return sorted(
        flow for flow, shards in flows_by_shard(events).items()
        if len(shards) > 1
    )
