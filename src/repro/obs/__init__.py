"""Unified telemetry for the simulator: metrics, events, profiling.

Three layers, all opt-in and all zero-cost when off:

- :mod:`repro.obs.metrics` — a hierarchical counter/gauge registry every
  component reports into (queue drops and ECN marks per port, retransmits
  and RTOs per flow, EC recoveries, reroutes, link failures), snapshotable
  to one nested dict at any simulated time;
- :mod:`repro.obs.events` — a topic-filtered structured event log
  (enqueue/drop/mark, ACK/NACK, cwnd, epochs, failures, reroutes) with
  ring-buffer and JSONL file sinks;
- :mod:`repro.obs.profile` — an engine profiler attributing the event
  loop's wall time to callback sites.

Wiring: an :class:`Observability` bundle attaches to a
:class:`~repro.sim.engine.Simulator` as ``sim.obs`` **before** the
topology is built — components cache ``sim.obs`` at construction so the
per-packet cost with telemetry off is a single ``is None`` test. Two ways
to attach:

- :func:`enable` — explicit, for one simulator you hold;
- :class:`TelemetryContext` — a context manager that auto-attaches to
  every ``Simulator()`` constructed while it is active and can merge the
  snapshots afterwards. This is how the experiment runner's
  ``--telemetry`` flag reaches the simulators that ``run_point``
  implementations build internally.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, TYPE_CHECKING

from repro.obs.events import (
    EventLog,
    JSONLFileSink,
    RingBufferSink,
    TOPICS,
    read_jsonl,
)
from repro.obs.metrics import (
    Counter,
    MetricsRegistry,
    TimeSeries,
    merge_numeric,
    merge_shard_snapshots,
    metric_key,
    sum_numeric,
)
from repro.obs.profile import EngineProfiler, rank_sites
from repro.obs.spans import SPAN_KINDS, FlowSpans
from repro.obs.stream import (
    StreamBufferSink,
    TraceAggregator,
    cross_shard_flows,
    flow_timeline,
    merge_streams,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator

__all__ = [
    "Counter",
    "EngineProfiler",
    "EventLog",
    "FlowSpans",
    "JSONLFileSink",
    "MetricsRegistry",
    "Observability",
    "RingBufferSink",
    "SPAN_KINDS",
    "StreamBufferSink",
    "TOPICS",
    "TelemetryContext",
    "TimeSeries",
    "TraceAggregator",
    "active_context",
    "cross_shard_flows",
    "enable",
    "flow_timeline",
    "merge_numeric",
    "merge_shard_snapshots",
    "merge_streams",
    "metric_key",
    "read_jsonl",
    "sum_numeric",
]


class Observability:
    """The per-simulator telemetry bundle (``sim.obs``)."""

    __slots__ = ("metrics", "events", "profile", "spans")

    def __init__(
        self,
        metrics: Optional[MetricsRegistry] = None,
        events: Optional[EventLog] = None,
        profile: Optional[EngineProfiler] = None,
        spans: Optional[FlowSpans] = None,
    ):
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.events = events
        self.profile = profile
        self.spans = spans

    def set_shard(self, shard: Optional[int]) -> None:
        """Tag every subsequently emitted event (spans included) with
        ``shard`` — ProcessShard workers call this so the coordinator's
        merged trace stays attributable per shard."""
        if self.events is not None:
            self.events.shard = shard

    def snapshot(self) -> Dict[str, Any]:
        """Counter snapshot + event tally + profile, JSON-ready."""
        out: Dict[str, Any] = {"metrics": self.metrics.snapshot()}
        if self.events is not None:
            out["events"] = self.events.snapshot()
        if self.spans is not None:
            out["spans"] = {
                "opened": self.spans.opened,
                "closed": self.spans.closed,
                "open": self.spans.open_spans,
            }
        if self.profile is not None:
            out["profile"] = self.profile.snapshot()
        return out


def enable(
    sim: "Simulator",
    *,
    event_topics: Optional[object] = None,
    event_path=None,
    ring_size: int = 65536,
    profile: bool = True,
    spans: bool = True,
    extra_sinks: Optional[List] = None,
) -> Observability:
    """Attach a fresh :class:`Observability` to ``sim`` and return it.

    ``event_topics`` selects event tracing: None disables it entirely,
    ``"all"`` enables every topic, an iterable enables exactly those.
    ``event_path`` additionally writes events to a JSONL file, and
    ``extra_sinks`` appends arbitrary sinks (e.g. a drainable
    :class:`~repro.obs.stream.StreamBufferSink` for incremental
    cross-shard streaming). A :class:`~repro.obs.spans.FlowSpans`
    recorder is created whenever event tracing is on, the log wants the
    ``"span"`` topic, and ``spans`` is not forced off — with event
    tracing off (the default) ``obs.spans`` stays None and every hook
    site is a single pointer test. Must be called before the
    topology/flows are built — components cache ``sim.obs`` at
    construction.
    """
    events = None
    if event_topics is not None:
        sinks: Optional[List] = None
        if event_path is not None or extra_sinks:
            sinks = [RingBufferSink(ring_size)]
            if event_path is not None:
                sinks.append(JSONLFileSink(event_path))
            if extra_sinks:
                sinks.extend(extra_sinks)
        events = EventLog(topics=event_topics, sinks=sinks,
                          ring_size=ring_size)
    obs = Observability(
        events=events,
        profile=EngineProfiler() if profile else None,
        spans=(FlowSpans(events)
               if spans and events is not None and events.wants("span")
               else None),
    )
    sim.obs = obs
    return obs


# ----------------------------------------------------------------------
# Ambient context: reach simulators constructed by code we don't control
# ----------------------------------------------------------------------

_ACTIVE_CONTEXT: Optional["TelemetryContext"] = None


def active_context() -> Optional["TelemetryContext"]:
    """The TelemetryContext currently in force (None almost always) —
    read by ``Simulator.__init__`` to self-attach telemetry."""
    return _ACTIVE_CONTEXT


class TelemetryContext:
    """Attach telemetry to every ``Simulator`` created inside a scope.

    Experiment points build their simulators internally (fresh
    ``Simulator()`` per point), so the runner cannot hand them an
    Observability. Instead it wraps ``run_point`` in this context::

        with TelemetryContext() as ctx:
            result = execute_point(point)
        telemetry = ctx.collect()

    Each simulator gets its *own* bundle (gauge names like
    ``port.s0->swL.drops`` repeat across simulators and must not
    collide); :meth:`collect` merges the per-simulator snapshots with
    :func:`merge_numeric` into one counter/profile summary.

    Contexts do not nest (the inner scope wins until it exits).
    """

    def __init__(
        self,
        *,
        event_topics: Optional[object] = None,
        ring_size: int = 65536,
        profile: bool = True,
    ):
        self.event_topics = event_topics
        self.ring_size = ring_size
        self.profile = profile
        self.bundles: List[Observability] = []
        self._outer: Optional["TelemetryContext"] = None

    def __enter__(self) -> "TelemetryContext":
        global _ACTIVE_CONTEXT
        self._outer = _ACTIVE_CONTEXT
        _ACTIVE_CONTEXT = self
        return self

    def __exit__(self, *exc) -> None:
        global _ACTIVE_CONTEXT
        _ACTIVE_CONTEXT = self._outer
        self._outer = None

    def attach(self, sim: "Simulator") -> Observability:
        """Called by ``Simulator.__init__`` while this context is active."""
        obs = enable(
            sim,
            event_topics=self.event_topics,
            ring_size=self.ring_size,
            profile=self.profile,
        )
        self.bundles.append(obs)
        return obs

    def collect(self) -> Dict[str, Any]:
        """Merge every attached simulator's snapshot into one record."""
        metrics: Any = None
        profile: Any = None
        events: Any = None
        for obs in self.bundles:
            snap = obs.snapshot()
            metrics = merge_numeric(metrics, snap["metrics"])
            if "profile" in snap:
                profile = merge_numeric(profile, snap["profile"])
            if "events" in snap:
                events = merge_numeric(events, snap["events"])
        out: Dict[str, Any] = {
            "n_sims": len(self.bundles),
            "metrics": metrics if metrics is not None else {},
        }
        if profile is not None:
            # Derived quantities are recomputed after the merge: the sum
            # of per-sim rates is meaningless, and merge_numeric keeps
            # only the first simulator's top_sites ranking.
            profile["events_per_sec"] = (
                profile["events"] / profile["wall_s"]
                if profile.get("wall_s") else 0.0
            )
            profile["top_sites"] = rank_sites(profile.get("sites", {}))
            out["profile"] = profile
        if events is not None:
            out["events"] = events
        return out
