"""BBR [20], simplified: model-based pacing from (btlbw, RTprop).

This is the inter-DC half of the paper's MPRDMA+BBR baseline. We keep the
defining structure of BBRv1 — a windowed-max bottleneck-bandwidth filter,
a windowed-min propagation-delay filter, STARTUP/DRAIN and the 8-phase
ProbeBW pacing-gain cycle — while estimating delivery rate from acked
bytes per RTprop interval rather than per-packet rate samples (adequate at
simulator fidelity and much cheaper).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.sim.packet import Packet
from repro.transport.base import CongestionControl, Sender

STARTUP = 0
DRAIN = 1
PROBE_BW = 2

_STARTUP_GAIN = 2.885
_PROBE_GAINS = (1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0)


@dataclass(frozen=True)
class BBRConfig:
    init_cwnd_pkts: int = 10
    bw_window_samples: int = 10     # max-filter length (in RTprop intervals)
    startup_full_bw_thresh: float = 1.25
    startup_full_bw_rounds: int = 3
    cwnd_gain: float = 2.0
    min_cwnd_pkts: int = 4


class BBR(CongestionControl):
    """BBRv1-style model-based rate control (see module docstring)."""
    def __init__(self, config: BBRConfig = BBRConfig()):
        self.config = config
        self.state = STARTUP
        self.btlbw_gbps = 0.0
        self._bw_samples: deque[float] = deque(maxlen=config.bw_window_samples)
        self._delivered_bytes = 0
        self._last_sample_ps = 0
        self._last_sample_delivered = 0
        self._full_bw = 0.0
        self._full_bw_count = 0
        self._cycle_index = 0
        self._cycle_start_ps = 0
        self.pacing_gain = _STARTUP_GAIN

    # -- helpers ----------------------------------------------------------

    def _rtprop_ps(self, sender: Sender) -> int:
        return sender.min_rtt_ps or sender.base_rtt_ps

    def _update_model(self, sender: Sender) -> None:
        cfg = self.config
        rtprop = self._rtprop_ps(sender)
        bw = max(self.btlbw_gbps, 1e-3)
        sender.pacing_rate_gbps = min(
            sender.line_gbps, self.pacing_gain * bw
        )
        bdp = bw * rtprop / 8000.0  # bytes
        sender.cwnd = max(
            cfg.min_cwnd_pkts * sender.mss, cfg.cwnd_gain * bdp
        )

    # -- CongestionControl ------------------------------------------------

    def on_init(self, sender: Sender) -> None:
        cfg = self.config
        sender.cwnd = float(cfg.init_cwnd_pkts * sender.mss)
        # Initial guess: init window over the RTT hint.
        self.btlbw_gbps = sender.cwnd * 8000.0 / sender.base_rtt_ps
        self._last_sample_ps = sender.sim.now
        self._cycle_start_ps = sender.sim.now
        sender.pacing_rate_gbps = min(
            sender.line_gbps, _STARTUP_GAIN * self.btlbw_gbps
        )

    def on_ack(self, sender: Sender, pkt: Packet, rtt_ps: int, ecn: bool) -> None:
        now = sender.sim.now
        self._delivered_bytes += pkt.payload
        rtprop = self._rtprop_ps(sender)

        # One delivery-rate sample per RTprop.
        elapsed = now - self._last_sample_ps
        if elapsed >= rtprop:
            delta = self._delivered_bytes - self._last_sample_delivered
            sample_gbps = delta * 8000.0 / elapsed
            self._bw_samples.append(sample_gbps)
            self.btlbw_gbps = max(self._bw_samples)
            self._last_sample_ps = now
            self._last_sample_delivered = self._delivered_bytes
            self._round(sender)
        self._update_model(sender)

    def _round(self, sender: Sender) -> None:
        """Advance the state machine once per bandwidth sample."""
        cfg = self.config
        now = sender.sim.now
        if self.state == STARTUP:
            if self.btlbw_gbps >= self._full_bw * cfg.startup_full_bw_thresh:
                self._full_bw = self.btlbw_gbps
                self._full_bw_count = 0
            else:
                self._full_bw_count += 1
                if self._full_bw_count >= cfg.startup_full_bw_rounds:
                    self.state = DRAIN
                    self.pacing_gain = 1.0 / _STARTUP_GAIN
        elif self.state == DRAIN:
            bdp = self.btlbw_gbps * self._rtprop_ps(sender) / 8000.0
            if sender.inflight_bytes <= bdp:
                self.state = PROBE_BW
                self._cycle_index = 0
                self._cycle_start_ps = now
                self.pacing_gain = _PROBE_GAINS[0]
        else:  # PROBE_BW
            if now - self._cycle_start_ps >= self._rtprop_ps(sender):
                self._cycle_index = (self._cycle_index + 1) % len(_PROBE_GAINS)
                self._cycle_start_ps = now
                self.pacing_gain = _PROBE_GAINS[self._cycle_index]

    def on_timeout(self, sender: Sender) -> None:
        # BBR does not collapse on loss; modestly reset the window floor.
        sender.cwnd = max(
            self.config.min_cwnd_pkts * sender.mss, sender.cwnd * 0.5
        )
