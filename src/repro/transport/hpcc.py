"""HPCC [43], simplified: INT-driven congestion control.

The paper's Discussion (section 6) argues that even modern INT-based
intra-DC transports like HPCC cannot fix the inter/intra split — they
"too suffer from fairness issues due to this separation" and "rely on
fast RTT feedback and specialized switch support ... making them
impractical across inter-DC environments". This implementation exists to
reproduce that argument (see ``repro.experiments.discussion_hpcc``).

Mechanics kept from HPCC: switches stamp in-band telemetry — the maximum
per-hop utilization ``U = qlen/(B*T) + txRate/B`` (enable with
``Port.enable_int``); the sender steers its window multiplicatively
toward ``W = W_c * eta / U`` with a small additive term, applying the
multiplicative update at most once per RTT (per-ACK updates use the
reference window). Omitted relative to the full paper: per-hop reaction
decomposition and the pacing stage — adequate for transport-level
comparisons at simulator fidelity.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.packet import Packet
from repro.transport.base import CongestionControl, Sender


@dataclass(frozen=True)
class HPCCConfig:
    eta: float = 0.95            # target utilization
    w_ai_pkts: float = 0.5       # additive increase per RTT, in MSS
    init_cwnd_pkts: int = 10
    max_cwnd_frac_of_bdp: float = 2.0
    min_cwnd_pkts: float = 1.0

    def __post_init__(self) -> None:
        if not (0.0 < self.eta <= 1.0):
            raise ValueError(f"eta={self.eta} outside (0, 1]")
        if self.w_ai_pkts < 0:
            raise ValueError("w_ai_pkts cannot be negative")


class HPCC(CongestionControl):
    """Window control steered by INT utilization (see module docstring)."""

    def __init__(self, config: HPCCConfig = HPCCConfig()):
        self.config = config
        self._w_c = 0.0              # reference window (updated once/RTT)
        self._last_update_ps = -(1 << 62)
        self._max_cwnd = float("inf")

    def on_init(self, sender: Sender) -> None:
        cfg = self.config
        sender.cwnd = float(cfg.init_cwnd_pkts * sender.mss)
        self._w_c = sender.cwnd
        self._max_cwnd = cfg.max_cwnd_frac_of_bdp * sender.bdp_bytes

    def on_ack(self, sender: Sender, pkt: Packet, rtt_ps: int, ecn: bool) -> None:
        cfg = self.config
        u = pkt.int_util
        if u <= 0:
            # No INT info on this path (switches not INT-enabled): grow
            # additively so the flow is not wedged.
            sender.cwnd = min(self._max_cwnd,
                              sender.cwnd + cfg.w_ai_pkts * sender.mss)
            return
        target = self._w_c * (cfg.eta / u) + cfg.w_ai_pkts * sender.mss
        sender.cwnd = max(cfg.min_cwnd_pkts * sender.mss,
                          min(self._max_cwnd, target))
        now = sender.sim.now
        if now - self._last_update_ps >= max(int(sender.srtt_ps),
                                             sender.base_rtt_ps):
            # Commit the reference window once per RTT (HPCC's guard
            # against over-reacting to a single congested sample).
            self._w_c = sender.cwnd
            self._last_update_ps = now

    def on_timeout(self, sender: Sender) -> None:
        sender.cwnd = max(self.config.min_cwnd_pkts * sender.mss,
                          sender.cwnd * 0.5)
        self._w_c = sender.cwnd
