"""Reliable window-based transport substrate.

The :class:`Sender`/:class:`Receiver` pair implements everything the
paper's transports share, so each congestion-control algorithm is a small
strategy object:

- packetization of a ``size``-byte message into MSS-sized data packets;
- a byte-based congestion window with optional NIC pacing;
- per-packet ACKs carrying the data packet's ECN mark and send timestamp
  (so the sender measures RTT across retransmissions correctly);
- a lazy retransmission timer (one outstanding timer per flow, re-armed
  against the oldest unacked packet's age);
- optional erasure-coding block framing (UnoRC, wired in by
  :mod:`repro.core.unorc`) via overridable hooks;
- pluggable path selection (ECMP entropy, PLB, UnoLB) via
  :class:`PathSelector`.

Flow completion time is measured per the paper: from when the flow starts
sending to when the sender learns the receiver holds the whole message
(the last ACK).

The transport never imports the simulator: it drives its engine through
the :class:`EngineLike` protocol (``now``/``at``/``after``/``obs``), so
the same sender/receiver objects run in virtual time under
:class:`~repro.sim.engine.Simulator` or on wall-clock asyncio timers
under :class:`~repro.wire.clock.WallClock` (see :mod:`repro.wire`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Optional,
    Protocol,
    runtime_checkable,
)

from repro.sim.host import Host
from repro.sim.network import Network
from repro.sim.packet import ACK, CNP, DATA, NACK, Packet, make_ack
from repro.sim.units import MS, bdp_bytes, ser_time_ps

if TYPE_CHECKING:  # pragma: no cover
    pass


@runtime_checkable
class TimerHandle(Protocol):
    """What a transport keeps from scheduling a timer: just ``cancel()``.

    Satisfied by the simulator's :class:`~repro.sim.engine.EventHandle`
    and by :class:`~repro.wire.clock.WallTimer`. Cancel must be
    idempotent and safe after the timer fired."""

    def cancel(self) -> None: ...


@runtime_checkable
class EngineLike(Protocol):
    """The clock/timer surface the transport layer actually uses.

    ``Sender``/``Receiver`` (and the CC strategies they drive) touch
    their engine through exactly four members: ``now`` (integer
    picoseconds), ``at``/``after`` (one-shot callbacks returning a
    cancellable handle), and ``obs`` (the telemetry bundle, or None).
    Anything providing this protocol can run the unmodified transport
    stack — the discrete-event :class:`~repro.sim.engine.Simulator`
    virtually, or :class:`~repro.wire.clock.WallClock` over real
    asyncio timers and UDP sockets (see :mod:`repro.wire`).

    Timing contract: ``after`` requires a non-negative delay; ``at``
    with a time already in the past is engine-defined — the simulator
    raises (a scheduling bug in virtual time), while wall clocks clamp
    to "as soon as possible" because real time advances between reading
    ``now`` and scheduling against it.
    """

    obs: Optional[object]

    @property
    def now(self) -> int: ...

    def at(self, time_ps: int, fn: Callable, *args) -> TimerHandle: ...

    def after(self, delay_ps: int, fn: Callable, *args) -> TimerHandle: ...

DEFAULT_MSS = 4096  # paper: MTU 4096 B
HEADER_BYTES = 64   # approximate header overhead carried on the wire

# Retransmission-timer defaults, promoted to named constants so abort
# policies and tests can tighten them per flow instead of relying on
# literals buried in the Sender signature.
DEFAULT_MIN_RTO_PS = 50_000_000        # 50 us floor
DEFAULT_MAX_RTO_PS = 10 * MS           # inter-DC-scale backoff ceiling
DEFAULT_RTO_BACKOFF_MAX = 16           # max exponential backoff factor
DEFAULT_RECEIVER_IDLE_TIMEOUT_PS = 200 * MS


@dataclass(frozen=True)
class AbortPolicy:
    """When a sender gives up on a flow instead of retransmitting forever.

    ``max_consecutive_rtos`` aborts after that many back-to-back
    retransmission timeouts with no ACK progress (a blackholed path);
    ``deadline_ps`` aborts a flow still unfinished that long after it
    started (wall-clock SLO). Either may be None; at least one must be
    set. The default transport behavior — no policy — never aborts,
    which keeps every historical experiment byte-identical.
    """

    max_consecutive_rtos: Optional[int] = None
    deadline_ps: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_consecutive_rtos is None and self.deadline_ps is None:
            raise ValueError("abort policy must set at least one limit")
        if self.max_consecutive_rtos is not None and self.max_consecutive_rtos < 1:
            raise ValueError(
                f"max_consecutive_rtos must be >= 1, got {self.max_consecutive_rtos}"
            )
        if self.deadline_ps is not None and self.deadline_ps <= 0:
            raise ValueError(f"deadline must be positive, got {self.deadline_ps}")


class CongestionControl:
    """Strategy interface. Implementations mutate ``sender.cwnd`` (bytes)
    and may set ``sender.pacing_rate_gbps``. All hooks are optional."""

    def on_init(self, sender: "Sender") -> None:
        """Called once when the flow starts; set the initial window here."""

    def on_ack(self, sender: "Sender", pkt: Packet, rtt_ps: int, ecn: bool) -> None:
        """Called for every new (non-duplicate) ACK."""

    def on_timeout(self, sender: "Sender") -> None:
        """Called when the retransmission timer fires."""

    def on_cnp(self, sender: "Sender", pkt: Packet) -> None:
        """Called when a near-source congestion notification arrives
        (Annulus extension; ignored by default)."""

    def on_done(self, sender: "Sender") -> None:
        """Called when the flow completes (cancel private timers here)."""


class PathSelector:
    """Chooses the entropy (source port) for outgoing packets and reacts
    to delivery feedback. The default keeps one ECMP path per flow."""

    def on_init(self, sender: "Sender") -> None: ...

    def entropy(self, sender: "Sender", pkt: Packet) -> int:
        return sender.flow_id & 0xFFFF

    def on_ack(self, sender: "Sender", pkt: Packet, rtt_ps: int, ecn: bool) -> None: ...

    def on_nack_or_timeout(self, sender: "Sender") -> None: ...


class FixedEntropy(PathSelector):
    """Single fixed entropy value: plain ECMP behaviour."""

    def __init__(self, value: Optional[int] = None):
        self._value = value

    def on_init(self, sender: "Sender") -> None:
        if self._value is None:
            self._value = sender.rng.getrandbits(16)

    def entropy(self, sender: "Sender", pkt: Packet) -> int:
        return self._value


@dataclass
class SenderStats:
    """Outcome record for one flow."""

    flow_id: int = -1
    size_bytes: int = 0
    start_ps: int = 0
    first_send_ps: Optional[int] = None
    finish_ps: Optional[int] = None
    bytes_acked: int = 0
    data_pkts_sent: int = 0
    parity_pkts_sent: int = 0
    retransmissions: int = 0
    timeouts: int = 0
    dup_acks: int = 0
    nacks_received: int = 0
    is_inter_dc: bool = False
    aborted_ps: Optional[int] = None
    abort_reason: Optional[str] = None

    @property
    def fct_ps(self) -> Optional[int]:
        if self.finish_ps is None:
            return None
        return self.finish_ps - self.start_ps

    @property
    def done(self) -> bool:
        return self.finish_ps is not None

    @property
    def aborted(self) -> bool:
        return self.aborted_ps is not None

    @property
    def terminal(self) -> bool:
        """Completed or aborted — the flow will never act again."""
        return self.done or self.aborted


class Receiver:
    """Plain receiver: ACK every data packet. Subclassed by UnoRC to add
    erasure-coding block bookkeeping and NACKs.

    Receivers idle-time-out: ``idle_timeout_ps`` (None disables) after
    the last data packet, a receiver whose sender went silent without a
    terminal transition — e.g. crashed mid-flow — unregisters itself, so
    a dead peer cannot leak endpoint registrations forever. The timer is
    armed lazily on the *first* data packet (a receiver is created at
    flow-launch time, possibly long before its flow starts) and follows
    the same lazy re-check pattern as the sender's RTO timer.
    """

    def __init__(
        self,
        sim: EngineLike,
        host: Host,
        flow_id: int,
        idle_timeout_ps: Optional[int] = DEFAULT_RECEIVER_IDLE_TIMEOUT_PS,
    ):
        self.sim = sim
        self.host = host
        self.flow_id = flow_id
        obs = sim.obs
        self._spans = obs.spans if obs is not None else None
        self.received_seqs: set[int] = set()
        self.rx_data_pkts = 0
        self.idle_timeout_ps = idle_timeout_ps
        self.idled_out = False
        self._last_rx_ps = 0
        self._idle_handle: Optional[TimerHandle] = None
        self._closed = False

    def on_packet(self, pkt: Packet) -> None:
        if pkt.kind != DATA:
            return
        self.rx_data_pkts += 1
        if self.rx_data_pkts == 1 and self._spans is not None:
            # Receiver-side span: in a sharded run this is emitted by the
            # destination shard, stitching the flow across the boundary.
            self._spans.first_data(self.flow_id, self.sim.now, seq=pkt.seq)
        self._last_rx_ps = self.sim.now
        if self.idle_timeout_ps is not None and self._idle_handle is None:
            self._idle_handle = self.sim.after(
                self.idle_timeout_ps, self._idle_check
            )
        self.received_seqs.add(pkt.seq)
        self.handle_data(pkt)

    def handle_data(self, pkt: Packet) -> None:
        self.send_ack(pkt)

    def send_ack(self, pkt: Packet) -> None:
        ack = make_ack(pkt, self.sim.now, pool=self.host.pool)
        self.host.send(ack)

    def _idle_check(self) -> None:
        self._idle_handle = None
        if self._closed:
            return
        idle = self.sim.now - self._last_rx_ps
        if idle < self.idle_timeout_ps:
            self._idle_handle = self.sim.after(
                self.idle_timeout_ps - idle, self._idle_check
            )
            return
        self.idled_out = True
        obs = self.sim.obs
        if obs is not None:
            obs.metrics.counter("transport.receivers_idled_out").inc()
            ev = obs.events
            if ev is not None and ev.wants("flow"):
                ev.emit("flow", "receiver_idle_timeout", t=self.sim.now,
                        flow=self.flow_id, idle_ps=idle)
        # unregister() closes us, cancelling any remaining timers.
        self.host.unregister(self.flow_id)

    def close(self) -> None:
        """Cancel private timers; called by Host.unregister. Idempotent.
        Subclasses with extra timers (UnoRC blocks) extend this."""
        self._closed = True
        if self._idle_handle is not None:
            self._idle_handle.cancel()
            self._idle_handle = None


class Sender:
    """The sending endpoint of one flow."""

    def __init__(
        self,
        sim: EngineLike,
        net: Network,
        flow_id: int,
        src: Host,
        dst: Host,
        size_bytes: int,
        cc: CongestionControl,
        *,
        mss: int = DEFAULT_MSS,
        base_rtt_ps: int = 14_000_000,  # paper default intra-DC RTT 14 us
        line_gbps: float = 100.0,
        path: Optional[PathSelector] = None,
        on_complete: Optional[Callable[["Sender"], None]] = None,
        rto_multiplier: float = 3.0,
        min_rto_ps: int = DEFAULT_MIN_RTO_PS,
        max_rto_ps: int = DEFAULT_MAX_RTO_PS,
        rto_backoff_max: int = DEFAULT_RTO_BACKOFF_MAX,
        abort: Optional[AbortPolicy] = None,
        seed: int = 0,
        is_inter_dc: bool = False,
        start_immediately: bool = False,
    ):
        if size_bytes <= 0:
            raise ValueError(f"flow size must be positive, got {size_bytes}")
        if mss <= 0:
            raise ValueError("mss must be positive")
        self.sim = sim
        self.net = net
        self.flow_id = flow_id
        self.src = src
        self.dst = dst
        self.size_bytes = size_bytes
        self.cc = cc
        self.mss = mss
        self.base_rtt_ps = base_rtt_ps
        self.line_gbps = line_gbps
        self.bdp_bytes = bdp_bytes(base_rtt_ps, line_gbps)
        self.path = path or FixedEntropy()
        self.on_complete = on_complete
        self.rng = random.Random(seed ^ (flow_id * 0x9E3779B9))
        self.is_inter_dc = is_inter_dc

        # Packetization: ceil(size / mss) packets, last may be short.
        self.total_data_pkts = (size_bytes + mss - 1) // mss
        self._next_seq = 0
        self._next_parity_seq = self.total_data_pkts  # parity seqs follow data

        # Reliability state.
        self.outstanding: Dict[int, Packet] = {}  # seq -> last sent packet
        self.inflight_bytes = 0
        self.acked_seqs: set[int] = set()
        self._retx_queue: list[int] = []
        self._retx_set: set[int] = set()
        # Sequences declared lost (queued for retransmit): their bytes are
        # retired from inflight until the retransmission goes out.
        self._lost_seqs: set[int] = set()

        # Congestion state (mutated by the CC strategy).
        self.cwnd: float = float(mss)
        self.pacing_rate_gbps: Optional[float] = None
        self.min_rtt_ps: Optional[int] = None
        self.srtt_ps: float = float(base_rtt_ps)
        self.rttvar_ps: float = base_rtt_ps / 4.0

        # Pacing / timers.
        self._next_pace_ps = 0
        self._pace_handle: Optional[TimerHandle] = None
        self._rto_handle: Optional[TimerHandle] = None
        self.rto_multiplier = rto_multiplier
        self.min_rto_ps = min_rto_ps
        self.max_rto_ps = max_rto_ps
        self.rto_backoff_max = rto_backoff_max
        # Exponential backoff factor: doubled per consecutive timeout
        # (capped), reset to 1 whenever an ACK makes progress. Keeps a
        # blackhole outage from becoming a retransmit storm.
        self._rto_backoff = 1

        # Connection lifecycle: optional abort policy moving the flow to
        # a terminal 'aborted' state instead of retransmitting forever.
        self.abort_policy = abort
        self._consecutive_timeouts = 0
        self._deadline_handle: Optional[TimerHandle] = None
        self._aborted = False

        self.stats = SenderStats(
            flow_id=flow_id,
            size_bytes=size_bytes,
            start_ps=sim.now,
            is_inter_dc=is_inter_dc,
        )
        self._done = False

        # Telemetry: per-flow numbers live in ``stats``; the registry
        # carries fleet-wide aggregates so a snapshot answers "how many
        # retransmissions happened anywhere" without walking flows.
        obs = sim.obs
        self._obs = obs
        self._events = obs.events if obs is not None else None
        self._spans = obs.spans if obs is not None else None
        self._counters = (
            None if obs is None else {
                name: obs.metrics.counter(f"transport.{name}")
                for name in (
                    "flows_started", "flows_completed", "flows_aborted",
                    "retransmissions", "timeouts", "dup_acks",
                    "nacks_received",
                )
            }
        )

        if start_immediately:
            self.start()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        self.stats.start_ps = self.sim.now
        if self._counters is not None:
            self._counters["flows_started"].inc()
        ev = self._events
        if ev is not None and ev.wants("flow"):
            ev.emit("flow", "start", t=self.sim.now, flow=self.flow_id,
                    size=self.size_bytes, inter_dc=self.is_inter_dc)
        if self._spans is not None:
            self._spans.flow_start(self.flow_id, self.sim.now,
                                   size=self.size_bytes,
                                   inter_dc=self.is_inter_dc)
        self.cc.on_init(self)
        self.path.on_init(self)
        self._arm_rto()
        pol = self.abort_policy
        if pol is not None and pol.deadline_ps is not None:
            self._deadline_handle = self.sim.after(
                pol.deadline_ps, self._deadline_expired
            )
        self._maybe_send()

    @property
    def done(self) -> bool:
        return self._done

    @property
    def aborted(self) -> bool:
        return self._aborted

    @property
    def terminal(self) -> bool:
        """Completed or aborted: timers cancelled, endpoints unregistered."""
        return self._done or self._aborted

    def _deadline_expired(self) -> None:
        self._deadline_handle = None
        if not self.terminal:
            self.abort("deadline")

    def abort(self, reason: str) -> None:
        """Give up on the flow: terminal state, mirror of completion.

        Cancels every private timer, unregisters both host endpoints
        (closing the receiver), records the reason and time in ``stats``,
        and fires ``on_complete`` — callers tracking outstanding flows
        see aborts as terminal transitions, not leaks. Idempotent; a
        no-op on a flow that already completed.
        """
        if self.terminal:
            return
        self._aborted = True
        self.stats.aborted_ps = self.sim.now
        self.stats.abort_reason = reason
        if self._counters is not None:
            self._counters["flows_aborted"].inc()
        ev = self._events
        if ev is not None and ev.wants("flow"):
            ev.emit("flow", "abort", t=self.sim.now, flow=self.flow_id,
                    reason=reason, acked=len(self.acked_seqs),
                    total=self.total_data_pkts)
        if self._spans is not None:
            self._spans.flow_end(self.flow_id, self.sim.now, "abort",
                                 reason=reason)
        self._cancel_timers()
        self.cc.on_done(self)
        self.src.unregister(self.flow_id)
        self.dst.unregister(self.flow_id)
        if self.on_complete is not None:
            self.on_complete(self)

    def _cancel_timers(self) -> None:
        if self._rto_handle is not None:
            self._rto_handle.cancel()
            self._rto_handle = None
        if self._pace_handle is not None:
            self._pace_handle.cancel()
            self._pace_handle = None
        if self._deadline_handle is not None:
            self._deadline_handle.cancel()
            self._deadline_handle = None

    @property
    def rto_ps(self) -> int:
        """RFC6298-style: srtt + 4*rttvar, scaled and floored, then
        stretched by the exponential backoff factor. The variance term
        prevents spurious timeouts when congestion inflates RTTs faster
        than the smoothed estimate tracks them; the backoff cap keeps
        the effective RTO at or below ``max_rto_ps`` (unless the base
        RTO already exceeds it, e.g. a huge measured WAN RTT)."""
        base = self.srtt_ps + 4.0 * self.rttvar_ps
        rto = max(self.min_rto_ps, int(self.rto_multiplier * base))
        if self._rto_backoff > 1:
            rto = min(rto * self._rto_backoff, max(self.max_rto_ps, rto))
        return rto

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------

    def payload_of(self, seq: int) -> int:
        """Payload bytes carried by data packet ``seq`` (last may be short).
        Parity sequences carry a full MSS."""
        if seq >= self.total_data_pkts:
            return self.mss
        if seq == self.total_data_pkts - 1:
            rem = self.size_bytes - seq * self.mss
            return rem if rem > 0 else self.mss
        return self.mss

    def _has_work(self) -> bool:
        return bool(self._retx_queue) or self._has_new_data()

    def _has_new_data(self) -> bool:
        return self._next_seq < self.total_data_pkts or self._codec_has_parity()

    def _codec_has_parity(self) -> bool:
        """Overridden by the UnoRC sender when parity is pending."""
        return False

    def _window_allows(self, nbytes: int) -> bool:
        return self.inflight_bytes + nbytes <= self.cwnd

    def _pace_wakeup(self) -> None:
        self._pace_handle = None
        self._maybe_send()

    def _maybe_send(self) -> None:
        """Send as much as window + pacing allow; self-reschedules.

        Retransmissions obey the window like any other send: their lost
        copies were retired from ``inflight_bytes`` when declared lost.
        At most one pacing wakeup is ever outstanding (tracked by
        ``_pace_handle``) — re-scheduling one per ACK would accumulate
        wakeups without bound under steady ACK clocking.
        """
        while True:
            seq = self._peek_next()
            if seq is None:
                return
            if seq in self.acked_seqs:
                # Retired while queued (e.g. by a UnoRC block-complete
                # ACK before this packet was ever sent): never emit it.
                self._pop_next()
                continue
            payload = self.payload_of(seq)
            if not self._window_allows(payload):
                return  # an ACK will retrigger us
            now = self.sim.now
            if self.pacing_rate_gbps and self._next_pace_ps > now:
                if self._pace_handle is None:
                    self._pace_handle = self.sim.at(
                        self._next_pace_ps, self._pace_wakeup
                    )
                return
            self._emit(self._pop_next())

    def _peek_next(self) -> Optional[int]:
        # Purge retransmission entries that were acked while queued.
        while self._retx_queue and self._retx_queue[0] in self.acked_seqs:
            self._retx_set.discard(self._retx_queue.pop(0))
        if self._retx_queue:
            return self._retx_queue[0]
        if self._next_seq < self.total_data_pkts:
            return self._next_seq
        return self._peek_parity()

    def _peek_parity(self) -> Optional[int]:
        """Overridden by the UnoRC sender."""
        return None

    def _pop_next(self) -> int:
        if self._retx_queue:
            seq = self._retx_queue.pop(0)
            self._retx_set.discard(seq)
            return seq
        if self._next_seq < self.total_data_pkts:
            seq = self._next_seq
            self._next_seq += 1
            return seq
        return self._pop_parity()

    def _pop_parity(self) -> int:  # pragma: no cover - only via UnoRC
        raise RuntimeError("no parity scheduled")

    def _emit(self, seq: int) -> None:
        now = self.sim.now
        payload = self.payload_of(seq)
        pool = self.src.pool
        alloc = Packet if pool is None else pool.acquire
        pkt = alloc(
            DATA,
            self.flow_id,
            src=self.src.node_id,
            dst=self.dst.node_id,
            seq=seq,
            size=payload + HEADER_BYTES,
            payload=payload,
        )
        is_retx = seq in self.outstanding
        if is_retx:
            pkt.retx = self.outstanding[seq].retx + 1
            self.stats.retransmissions += 1
            if self._counters is not None:
                self._counters["retransmissions"].inc()
            if self._spans is not None:
                self._spans.retransmit(self.flow_id, now, seq)
        pkt.sent_ps = now
        self._decorate(pkt)
        pkt.sport = self.path.entropy(self, pkt)
        pkt.dport = self.flow_id & 0xFFFF
        if not is_retx:
            self.inflight_bytes += payload
        elif seq in self._lost_seqs:
            # The retransmitted copy is on the wire again.
            self._lost_seqs.discard(seq)
            self.inflight_bytes += payload
        self.outstanding[seq] = pkt
        if self.stats.first_send_ps is None:
            self.stats.first_send_ps = now
        if seq >= self.total_data_pkts:
            self.stats.parity_pkts_sent += 1
        else:
            self.stats.data_pkts_sent += 1
        if self.pacing_rate_gbps:
            gap = ser_time_ps(pkt.size, self.pacing_rate_gbps)
            self._next_pace_ps = max(self._next_pace_ps, now) + gap
        self.src.send(pkt)

    def _decorate(self, pkt: Packet) -> None:
        """Hook for UnoRC to stamp block_id/block_pos on data packets."""

    # ------------------------------------------------------------------
    # receiving feedback
    # ------------------------------------------------------------------

    def on_packet(self, pkt: Packet) -> None:
        if self.terminal:
            return
        if pkt.kind == ACK:
            self._on_ack(pkt)
        elif pkt.kind == NACK:
            ev = self._events
            if ev is not None and ev.wants("nack"):
                ev.emit("nack", "received", t=self.sim.now,
                        flow=self.flow_id, block=pkt.block_id)
            self._on_nack(pkt)
        elif pkt.kind == CNP:
            self.cc.on_cnp(self, pkt)
            self._maybe_send()

    def _on_ack(self, pkt: Packet) -> None:
        seq = pkt.seq
        if seq < 0:
            # Control ACK (e.g. UnoRC block-complete); no per-seq state.
            self._rto_backoff = 1
            self._consecutive_timeouts = 0
            self._on_control_ack(pkt)
            if not self._check_done():
                self._maybe_send()
            return
        if seq in self.acked_seqs or seq not in self.outstanding:
            self.stats.dup_acks += 1
            if self._counters is not None:
                self._counters["dup_acks"].inc()
            ev = self._events
            if ev is not None and ev.wants("ack"):
                ev.emit("ack", "dup", t=self.sim.now,
                        flow=self.flow_id, seq=seq)
            return  # duplicate or stale
        sent = self.outstanding.pop(seq)
        self.acked_seqs.add(seq)
        self._rto_backoff = 1  # ACK progress ends the backoff episode
        self._consecutive_timeouts = 0
        payload = sent.payload
        if seq in self._lost_seqs:
            # Declared lost but the original copy arrived after all; its
            # bytes were already retired from inflight.
            self._lost_seqs.discard(seq)
        else:
            self.inflight_bytes -= payload
        self.stats.bytes_acked += payload
        pool = self.src.pool
        if pool is not None and pkt.echo_sent_ps == sent.sent_ps:
            # The ACK echoes the exact copy we just retired: it was
            # delivered and consumed, nothing else references it (each
            # (re)transmission is a distinct object with a distinct
            # sent_ps; a mismatch means an older copy arrived while this
            # one may still be on the wire — then we must not recycle).
            pool.release(sent)
        rtt = self.sim.now - pkt.echo_sent_ps
        if rtt > 0:
            if self.min_rtt_ps is None or rtt < self.min_rtt_ps:
                self.min_rtt_ps = rtt
            self.rttvar_ps += 0.25 * (abs(rtt - self.srtt_ps) - self.rttvar_ps)
            self.srtt_ps += 0.125 * (rtt - self.srtt_ps)
        ev = self._events
        if ev is not None and ev.wants("ack"):
            ev.emit("ack", "ack", t=self.sim.now, flow=self.flow_id,
                    seq=seq, rtt=rtt, ecn=pkt.ecn_echo)
        cwnd_before = self.cwnd
        self.cc.on_ack(self, pkt, rtt, pkt.ecn_echo)
        self.cwnd = max(self.cwnd, float(self.mss))
        if ev is not None and self.cwnd != cwnd_before and ev.wants("cwnd"):
            ev.emit("cwnd", "update", t=self.sim.now, flow=self.flow_id,
                    old=cwnd_before, new=self.cwnd, cause="ack")
        if self._spans is not None and self.cwnd != cwnd_before:
            self._spans.cwnd(self.flow_id, self.sim.now,
                             cwnd_before, self.cwnd)
        self.path.on_ack(self, pkt, rtt, pkt.ecn_echo)
        self._after_ack(pkt)
        if self._check_done():
            return
        self._maybe_send()

    def _after_ack(self, pkt: Packet) -> None:
        """Hook for UnoRC block bookkeeping on the sender side."""

    def _on_control_ack(self, pkt: Packet) -> None:
        """Hook for UnoRC block-complete ACKs (negative sequence)."""

    def _on_nack(self, pkt: Packet) -> None:
        """Only meaningful for UnoRC flows; ignored here."""

    # ------------------------------------------------------------------
    # retransmission timer
    # ------------------------------------------------------------------

    def _arm_rto(self) -> None:
        if self._rto_handle is not None:
            self._rto_handle.cancel()
        self._rto_handle = self.sim.after(self.rto_ps, self._rto_check)

    def _rto_check(self) -> None:
        self._rto_handle = None
        if self.terminal:
            return
        if not self.outstanding:
            self._arm_rto()
            return
        oldest = min(p.sent_ps for p in self.outstanding.values())
        age = self.sim.now - oldest
        rto = self.rto_ps
        if age < rto:
            self._rto_handle = self.sim.after(rto - age, self._rto_check)
            return
        self._handle_timeout()
        if self.terminal:
            return  # the timeout crossed the abort threshold
        self._arm_rto()

    def _handle_timeout(self) -> None:
        self.stats.timeouts += 1
        if self._counters is not None:
            self._counters["timeouts"].inc()
        self._consecutive_timeouts += 1
        if self._spans is not None:
            self._spans.rto(self.flow_id, self.sim.now,
                            consecutive=self._consecutive_timeouts,
                            backoff=self._rto_backoff)
        pol = self.abort_policy
        if (
            pol is not None
            and pol.max_consecutive_rtos is not None
            and self._consecutive_timeouts >= pol.max_consecutive_rtos
        ):
            self.abort("max_consecutive_rtos")
            return
        # Re-queue every expired unacked packet exactly once.
        cutoff = self.sim.now - self.rto_ps
        for seq, pkt in list(self.outstanding.items()):
            if pkt.sent_ps <= cutoff:
                self.queue_retransmit(seq)
        cwnd_before = self.cwnd
        self.cc.on_timeout(self)
        self.cwnd = max(self.cwnd, float(self.mss))
        ev = self._events
        if ev is not None and self.cwnd != cwnd_before and ev.wants("cwnd"):
            ev.emit("cwnd", "update", t=self.sim.now, flow=self.flow_id,
                    old=cwnd_before, new=self.cwnd, cause="timeout")
        if self._spans is not None and self.cwnd != cwnd_before:
            self._spans.cwnd(self.flow_id, self.sim.now,
                             cwnd_before, self.cwnd)
        self.path.on_nack_or_timeout(self)
        # Double the effective RTO for the next consecutive timeout
        # (after the expiry cutoff above used the pre-bump value).
        self._rto_backoff = min(self._rto_backoff * 2, self.rto_backoff_max)
        self._maybe_send()

    def queue_retransmit(self, seq: int) -> None:
        """Declare ``seq`` lost and schedule its retransmission (RTO and
        UnoRC NACKs). The lost copy's bytes leave the inflight account."""
        if seq in self.acked_seqs or self.terminal:
            return
        if seq not in self._retx_set:
            self._retx_queue.append(seq)
            self._retx_set.add(seq)
        if seq not in self._lost_seqs and seq in self.outstanding:
            self._lost_seqs.add(seq)
            self.inflight_bytes -= self.outstanding[seq].payload

    # ------------------------------------------------------------------
    # completion
    # ------------------------------------------------------------------

    def _all_delivered(self) -> bool:
        """Every data packet acked. UnoRC overrides with block coverage."""
        if len(self.acked_seqs) < self.total_data_pkts:
            return False
        return all(s in self.acked_seqs for s in range(self.total_data_pkts))

    def _check_done(self) -> bool:
        if self.terminal or not self._all_delivered():
            return False
        self._done = True
        self.stats.finish_ps = self.sim.now
        if self._counters is not None:
            self._counters["flows_completed"].inc()
        ev = self._events
        if ev is not None and ev.wants("flow"):
            ev.emit("flow", "done", t=self.sim.now, flow=self.flow_id,
                    fct=self.stats.fct_ps,
                    retx=self.stats.retransmissions)
        if self._spans is not None:
            self._spans.flow_end(self.flow_id, self.sim.now, "complete",
                                 fct=self.stats.fct_ps,
                                 retx=self.stats.retransmissions)
        self._cancel_timers()
        self.cc.on_done(self)
        self.src.unregister(self.flow_id)
        self.dst.unregister(self.flow_id)
        if self.on_complete is not None:
            self.on_complete(self)
        return True

    # -- convenience -----------------------------------------------------

    @property
    def rate_estimate_gbps(self) -> float:
        """cwnd / sRTT expressed in Gbps (used for pacing-style CCs)."""
        if self.srtt_ps <= 0:
            return self.line_gbps
        return min(self.line_gbps * 4, self.cwnd * 8000.0 / self.srtt_ps)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<Sender flow={self.flow_id} {self.src.name}->{self.dst.name} "
            f"size={self.size_bytes} cwnd={int(self.cwnd)} "
            f"acked={self.stats.bytes_acked}>"
        )


def start_flow(
    sim: EngineLike,
    net: Network,
    cc: CongestionControl,
    src: Host,
    dst: Host,
    size_bytes: int,
    *,
    flow_id: Optional[int] = None,
    start_ps: Optional[int] = None,
    receiver_cls: type = Receiver,
    sender_cls: type = Sender,
    receiver_kwargs: Optional[dict] = None,
    **sender_kwargs,
) -> Sender:
    """Create and register a sender/receiver pair and schedule its start.

    This is the single entry point experiments and examples use to launch
    flows; UnoRC passes its own sender/receiver classes.
    """
    net.ensure_routes()
    if flow_id is None:
        flow_id = _alloc_flow_id(net)
    receiver = receiver_cls(sim, dst, flow_id, **(receiver_kwargs or {}))
    sender = sender_cls(
        sim, net, flow_id, src, dst, size_bytes, cc, **sender_kwargs
    )
    if receiver_cls is not Receiver or hasattr(receiver, "attach_sender"):
        attach = getattr(receiver, "attach_sender", None)
        if attach is not None:
            attach(sender)
    src.register(flow_id, sender)
    dst.register(flow_id, receiver)
    sender.receiver = receiver  # type: ignore[attr-defined]
    when = sim.now if start_ps is None else start_ps
    sender.stats.start_ps = when
    # The start handle is kept on the sender so shard workers can
    # deactivate flows owned by another shard before they ever run.
    sender.start_handle = sim.at(when, sender.start)
    return sender


def _alloc_flow_id(net: Network) -> int:
    counter = getattr(net, "_flow_counter", 0) + 1
    net._flow_counter = counter  # type: ignore[attr-defined]
    return counter
