"""Epoch tracking shared by epoch-based congestion controllers.

UnoCC, Gemini and DCTCP all apply multiplicative decrease at most once per
*epoch*. Following the paper (section 4.1.1): the epoch activation time is
set on the first ACK; an epoch terminates when an ACK arrives for a data
packet that was (re)sent at or after the activation time — guaranteeing
the epoch's sample reflects the network *after* the previous adjustment —
and the activation time then advances by ``epoch_period``.

The controllers differ only in what ``epoch_period`` is: UnoCC uses a
period proportional to the **intra-DC** RTT for all flows (the paper's
unified-granularity mechanism), while Gemini/DCTCP use the flow's own RTT.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass
class EpochSummary:
    """What happened during one closed epoch."""

    total_acks: int
    marked_acks: int
    max_rel_delay_ps: int

    @property
    def ecn_fraction(self) -> float:
        if self.total_acks == 0:
            return 0.0
        return self.marked_acks / self.total_acks


class EpochTracker:
    """Tracks epoch activation times and per-epoch ECN statistics."""
    __slots__ = (
        "period_ps",
        "t_epoch",
        "_total",
        "_marked",
        "_max_rel_delay",
        "epochs_closed",
    )

    def __init__(self, period_ps: int):
        if period_ps <= 0:
            raise ValueError("epoch period must be positive")
        self.period_ps = period_ps
        self.t_epoch: Optional[int] = None
        self._total = 0
        self._marked = 0
        self._max_rel_delay = 0
        self.epochs_closed = 0

    def on_ack(
        self,
        now_ps: int,
        pkt_sent_ps: int,
        ecn: bool,
        rel_delay_ps: int = 0,
    ) -> Optional[EpochSummary]:
        """Account one ACK; returns an EpochSummary when the epoch closes."""
        if self.t_epoch is None:
            self.t_epoch = now_ps
        self._total += 1
        if ecn:
            self._marked += 1
        if rel_delay_ps > self._max_rel_delay:
            self._max_rel_delay = rel_delay_ps
        if pkt_sent_ps < self.t_epoch:
            return None
        summary = EpochSummary(
            total_acks=self._total,
            marked_acks=self._marked,
            max_rel_delay_ps=self._max_rel_delay,
        )
        self._total = 0
        self._marked = 0
        self._max_rel_delay = 0
        # T_epoch advances along the *send* timeline: for a continuous
        # stream whose feedback arrives one (possibly long, inter-DC) RTT
        # late, epochs still close once per epoch_period — this is what
        # makes UnoCC react to inter-DC congestion at intra-DC granularity
        # (paper 4.1.1). Clamping to the closing packet's send time (not
        # to `now`!) merely prevents a burst of back-to-back epochs after
        # an idle gap.
        self.t_epoch = max(self.t_epoch + self.period_ps, pkt_sent_ps)
        self.epochs_closed += 1
        return summary
