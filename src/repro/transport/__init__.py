"""Reliable window-based transports and congestion-control strategies.

:mod:`repro.transport.base` provides the shared machinery (sequencing,
per-packet ACKs, retransmission timers, pacing, flow completion); the
congestion-control algorithms are pluggable strategies:

- :class:`repro.transport.dctcp.DCTCP` — classic ECN-fraction AIMD.
- :class:`repro.transport.mprdma.MPRDMA` — per-ACK ECN AIMD [47].
- :class:`repro.transport.bbr.BBR` — model-based rate control [20].
- :class:`repro.transport.gemini.Gemini` — ECN+delay dual-signal [63].
- :class:`repro.core.unocc.UnoCC` — the paper's contribution (in core/).
"""

from repro.transport.base import (
    CongestionControl,
    FixedEntropy,
    PathSelector,
    Receiver,
    Sender,
    SenderStats,
    start_flow,
)
from repro.transport.dctcp import DCTCP, DCTCPConfig
from repro.transport.mprdma import MPRDMA, MPRDMAConfig
from repro.transport.bbr import BBR, BBRConfig
from repro.transport.gemini import Gemini, GeminiConfig

__all__ = [
    "CongestionControl",
    "PathSelector",
    "FixedEntropy",
    "Sender",
    "Receiver",
    "SenderStats",
    "start_flow",
    "DCTCP",
    "DCTCPConfig",
    "MPRDMA",
    "MPRDMAConfig",
    "BBR",
    "BBRConfig",
    "Gemini",
    "GeminiConfig",
]
