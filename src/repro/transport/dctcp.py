"""DCTCP [9]: ECN-fraction AIMD at the flow's own RTT granularity.

Included both as a reference controller for tests and because the paper's
discussion contrasts the separated-loop designs (e.g. BBR for WAN plus a
DCTCP-like ECN controller inside the datacenter).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.packet import Packet
from repro.transport.base import CongestionControl, Sender
from repro.transport.epochs import EpochTracker


@dataclass(frozen=True)
class DCTCPConfig:
    g: float = 1.0 / 16.0               # EWMA gain for alpha
    init_cwnd_pkts: int = 10            # floor on the initial window
    init_cwnd_frac_of_bdp: float = 0.0  # optional BDP-proportional start
    use_slow_start: bool = True         # double per RTT until first mark
    max_cwnd_frac_of_bdp: float = 2.0
    min_cwnd_pkts: float = 1.0

    def __post_init__(self) -> None:
        if not (0.0 < self.g <= 1.0):
            raise ValueError(f"g={self.g} outside (0, 1]")
        if self.init_cwnd_pkts < 1:
            raise ValueError("init_cwnd_pkts must be >= 1")


class DCTCP(CongestionControl):
    """Classic DCTCP: per-epoch ECN-fraction EWMA drives the window cut."""
    def __init__(self, config: DCTCPConfig = DCTCPConfig()):
        self.config = config
        self.alpha = 0.0
        self._tracker: EpochTracker | None = None
        self._slow_start = False
        self._max_cwnd = float("inf")

    def on_init(self, sender: Sender) -> None:
        sender.cwnd = float(
            max(
                self.config.init_cwnd_pkts * sender.mss,
                self.config.init_cwnd_frac_of_bdp * sender.bdp_bytes,
            )
        )
        self._slow_start = self.config.use_slow_start
        self._max_cwnd = self.config.max_cwnd_frac_of_bdp * sender.bdp_bytes
        self._tracker = EpochTracker(period_ps=sender.base_rtt_ps)

    def on_ack(self, sender: Sender, pkt: Packet, rtt_ps: int, ecn: bool) -> None:
        if self._slow_start:
            if ecn:
                self._slow_start = False
            else:
                sender.cwnd += pkt.payload
                if sender.cwnd >= self._max_cwnd:
                    self._slow_start = False
        elif not ecn:
            # Additive increase of one MSS per RTT, applied per ACK.
            sender.cwnd += sender.mss * pkt.payload / sender.cwnd
        if sender.cwnd > self._max_cwnd:
            sender.cwnd = self._max_cwnd
        assert self._tracker is not None
        summary = self._tracker.on_ack(sender.sim.now, pkt.echo_sent_ps, ecn)
        if summary is None:
            return
        frac = summary.ecn_fraction
        g = self.config.g
        self.alpha = (1 - g) * self.alpha + g * frac
        if frac > 0:
            sender.cwnd *= 1 - self.alpha / 2
        floor = self.config.min_cwnd_pkts * sender.mss
        if sender.cwnd < floor:
            sender.cwnd = floor

    def on_timeout(self, sender: Sender) -> None:
        self._slow_start = False
        sender.cwnd = float(sender.mss)
