"""MPRDMA [47] congestion control: per-ACK ECN AIMD.

MPRDMA reacts to each ACK individually (no epoch smoothing): an unmarked
ACK grows the window by 1/cwnd (in MSS units, i.e. one MSS per RTT) and a
marked ACK shrinks it by half an MSS. This is the intra-DC half of the
paper's MPRDMA+BBR baseline. (MPRDMA's multipath machinery is modeled
separately via switch-level spraying/entropy; here we implement its
congestion-control loop.)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.packet import Packet
from repro.transport.base import CongestionControl, Sender


@dataclass(frozen=True)
class MPRDMAConfig:
    init_cwnd_pkts: int = 10            # floor on the initial window
    init_cwnd_frac_of_bdp: float = 0.0  # optional BDP-proportional start
    use_slow_start: bool = True         # double per RTT until first mark
    max_cwnd_frac_of_bdp: float = 2.0
    md_per_ack_mss: float = 0.5   # window cut per marked ACK, in MSS
    min_cwnd_pkts: float = 1.0

    def __post_init__(self) -> None:
        if self.md_per_ack_mss <= 0:
            raise ValueError("md_per_ack_mss must be positive")


class MPRDMA(CongestionControl):
    """MPRDMA's per-ACK ECN AIMD loop."""
    def __init__(self, config: MPRDMAConfig = MPRDMAConfig()):
        self.config = config
        self._slow_start = False
        self._max_cwnd = float("inf")

    def on_init(self, sender: Sender) -> None:
        sender.cwnd = float(
            max(
                self.config.init_cwnd_pkts * sender.mss,
                self.config.init_cwnd_frac_of_bdp * sender.bdp_bytes,
            )
        )
        self._slow_start = self.config.use_slow_start
        self._max_cwnd = self.config.max_cwnd_frac_of_bdp * sender.bdp_bytes

    def on_ack(self, sender: Sender, pkt: Packet, rtt_ps: int, ecn: bool) -> None:
        mss = sender.mss
        if ecn:
            self._slow_start = False
            sender.cwnd -= self.config.md_per_ack_mss * mss
        elif self._slow_start:
            sender.cwnd += pkt.payload
            if sender.cwnd >= self._max_cwnd:
                self._slow_start = False
        else:
            sender.cwnd += mss * pkt.payload / sender.cwnd
        if sender.cwnd > self._max_cwnd:
            sender.cwnd = self._max_cwnd
        floor = self.config.min_cwnd_pkts * mss
        if sender.cwnd < floor:
            sender.cwnd = floor

    def on_timeout(self, sender: Sender) -> None:
        self._slow_start = False
        sender.cwnd = float(sender.mss)
