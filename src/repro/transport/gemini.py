"""Gemini [63]: dual-signal (ECN + delay) window control.

Gemini is the paper's main baseline: a single window-based controller for
both intra- and inter-DC flows that detects intra-DC congestion via ECN
and inter-DC (WAN) congestion via delay. Following the Uno paper (section
4.1.1), we give Gemini the *same* AI and MD factors as UnoCC — the paper
explicitly chose UnoCC's factors "similar to Gemini" — so the only
behavioural differences are the ones the paper attributes Gemini's
weaknesses to:

- Gemini's epoch period is the flow's **own** base RTT, so inter-DC flows
  react ~100-1000x less often than intra-DC flows (slow convergence to
  fairness, Fig 3B);
- no phantom queues: physical ECN marking only, plus a relative-delay
  threshold for WAN congestion;
- no Quick Adapt.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.packet import Packet
from repro.transport.base import CongestionControl, Sender
from repro.transport.epochs import EpochTracker


@dataclass(frozen=True)
class GeminiConfig:
    alpha_frac_of_bdp: float = 0.001   # AI step per RTT, as fraction of BDP
    k_bytes: int = 0                   # MD constant; 0 = 1/7 of flow's BDP? set by harness
    ewma_g: float = 1.0 / 16.0
    wan_delay_thresh_ps: int = 100_000_000  # 100 us of extra delay = WAN congestion
    init_cwnd_pkts: int = 10                # floor on the initial window
    init_cwnd_frac_of_bdp: float = 0.0      # optional BDP-proportional start
    use_slow_start: bool = True             # double per RTT until first signal
    max_cwnd_frac_of_bdp: float = 2.0
    max_md: float = 0.5

    def __post_init__(self) -> None:
        if self.alpha_frac_of_bdp <= 0:
            raise ValueError("alpha fraction must be positive")
        if not (0 < self.ewma_g <= 1):
            raise ValueError("ewma_g outside (0, 1]")


class Gemini(CongestionControl):
    """Gemini's dual-signal window control (see module docstring)."""
    def __init__(self, config: GeminiConfig, intra_bdp_bytes: int):
        self.config = config
        self.intra_bdp_bytes = intra_bdp_bytes
        self.ecn_ewma = 0.0
        self.wan_ewma = 0.0
        self._tracker: EpochTracker | None = None
        self._alpha_bytes = 0.0
        self._wan_delayed = 0
        self._wan_total = 0
        self._slow_start = False
        self._max_cwnd = float("inf")

    def _k_bytes(self) -> float:
        if self.config.k_bytes > 0:
            return float(self.config.k_bytes)
        return self.intra_bdp_bytes / 7.0

    def on_init(self, sender: Sender) -> None:
        sender.cwnd = float(
            max(
                self.config.init_cwnd_pkts * sender.mss,
                self.config.init_cwnd_frac_of_bdp * sender.bdp_bytes,
            )
        )
        self._alpha_bytes = self.config.alpha_frac_of_bdp * sender.bdp_bytes
        self._slow_start = self.config.use_slow_start
        self._max_cwnd = self.config.max_cwnd_frac_of_bdp * sender.bdp_bytes
        # Gemini's defining trait: epochs tick at the flow's own RTT.
        self._tracker = EpochTracker(period_ps=sender.base_rtt_ps)

    def on_ack(self, sender: Sender, pkt: Packet, rtt_ps: int, ecn: bool) -> None:
        cfg = self.config
        rel_delay_ss = max(0, rtt_ps - (sender.min_rtt_ps or sender.base_rtt_ps))
        if self._slow_start:
            congested = ecn or (
                sender.is_inter_dc and rel_delay_ss > cfg.wan_delay_thresh_ps
            )
            if congested:
                self._slow_start = False
            else:
                sender.cwnd += pkt.payload
                if sender.cwnd >= self._max_cwnd:
                    self._slow_start = False
        elif not ecn:
            sender.cwnd += self._alpha_bytes * pkt.payload / sender.cwnd
        if sender.cwnd > self._max_cwnd:
            sender.cwnd = self._max_cwnd
        rel_delay = max(0, rtt_ps - (sender.min_rtt_ps or sender.base_rtt_ps))
        self._wan_total += 1
        if sender.is_inter_dc and rel_delay > cfg.wan_delay_thresh_ps:
            self._wan_delayed += 1
        assert self._tracker is not None
        summary = self._tracker.on_ack(
            sender.sim.now, pkt.echo_sent_ps, ecn, rel_delay
        )
        if summary is None:
            return
        g = cfg.ewma_g
        self.ecn_ewma = (1 - g) * self.ecn_ewma + g * summary.ecn_fraction
        wan_frac = self._wan_delayed / max(1, self._wan_total)
        self.wan_ewma = (1 - g) * self.wan_ewma + g * wan_frac
        self._wan_delayed = 0
        self._wan_total = 0

        k = self._k_bytes()
        fairness_scale = 4 * k / (k + sender.bdp_bytes)
        md = 0.0
        if summary.ecn_fraction > 0:
            md = max(md, self.ecn_ewma * fairness_scale)
        if sender.is_inter_dc and wan_frac > 0:
            md = max(md, self.wan_ewma * fairness_scale)
        md = min(md, cfg.max_md)
        if md > 0:
            sender.cwnd *= 1 - md
        if sender.cwnd < sender.mss:
            sender.cwnd = float(sender.mss)

    def on_timeout(self, sender: Sender) -> None:
        self._slow_start = False
        sender.cwnd = max(float(sender.mss), sender.cwnd * 0.5)
