"""Wire endpoints: the host surface transports need, over a UDP socket.

:class:`WireHost` mirrors the :class:`~repro.sim.host.Host` API that
``transport.base`` and the UnoRC/UnoLB stack actually touch — the
flow-endpoint registry (``register``/``unregister`` with close-on-drop
semantics), ``send(pkt)``, ``node_id``/``name``/``dc``/``up``, and
``pool`` (always None here: packets are serialized at the socket
boundary, so recycling Packet objects across it would be aliasing a
record the wire no longer references). Arriving datagrams are parsed
(:mod:`repro.wire.frame`), payload-verified, and dispatched to the
registered endpoint exactly like ``Host.receive``; malformed frames and
corrupted payloads are counted, never dispatched.

:class:`WireNetwork` is the route stub that lets the unmodified
``start_flow``/``start_uno_flow`` entry points run on the wire: there
is nothing to route (the impairment proxy is the only path), so
``ensure_routes`` is a no-op and the stub only carries the flow-id
counter those helpers allocate from.
"""

from __future__ import annotations

import asyncio
from typing import Dict, Optional, Tuple

from repro.sim.packet import CNP, DATA, Packet
from repro.wire.clock import WallClock
from repro.wire.frame import FrameError, pack_packet, payload_bytes, unpack_packet

Addr = Tuple[str, int]


class WireNetwork:
    """Route-less stand-in for :class:`~repro.sim.network.Network`."""

    def __init__(self) -> None:
        self._flow_counter = 0

    def ensure_routes(self) -> None:
        """No routing on the wire: the proxy is the only path."""


class WireHost(asyncio.DatagramProtocol):
    """One UDP endpoint presenting the Host API to transports."""

    def __init__(self, clock: WallClock, node_id: int, name: str,
                 dc: int = 0):
        self.sim = clock
        self.node_id = node_id
        self.name = name
        self.dc = dc
        self.up = True
        self.pool = None  # never pool across the serialization boundary
        self.endpoints: Dict[int, object] = {}
        self.rx_pkts = 0
        self.orphan_pkts = 0
        self.tx_datagrams = 0
        self.rx_datagrams = 0
        self.corrupt_frames = 0
        self.corrupt_payloads = 0
        self.pfc_frames = 0
        self._transport: Optional[asyncio.DatagramTransport] = None
        self._peer: Optional[Addr] = None
        obs = clock.obs
        self._spans = obs.spans if obs is not None else None

    # -- asyncio protocol -------------------------------------------------

    def connection_made(self, transport) -> None:
        self._transport = transport

    @property
    def addr(self) -> Addr:
        return self._transport.get_extra_info("sockname")

    def connect(self, peer: Addr) -> None:
        """Point every send at ``peer`` (normally the impairment proxy)."""
        self._peer = peer

    def datagram_received(self, data: bytes, addr: Addr) -> None:
        self.rx_datagrams += 1
        try:
            pkt, blob = unpack_packet(data)
        except FrameError:
            self.corrupt_frames += 1
            return
        if pkt.kind == DATA and blob != payload_bytes(
            pkt.flow_id, pkt.seq, pkt.payload
        ):
            self.corrupt_payloads += 1
            return
        self.receive(pkt)

    # -- Host API ----------------------------------------------------------

    def register(self, flow_id: int, endpoint) -> None:
        if flow_id in self.endpoints:
            raise ValueError(
                f"flow {flow_id} already registered on wire host {self.name}"
            )
        self.endpoints[flow_id] = endpoint
        if self._spans is not None:
            self._spans.endpoint_open(flow_id, self.sim.now, self.name)

    def unregister(self, flow_id: int) -> None:
        endpoint = self.endpoints.pop(flow_id, None)
        if endpoint is None:
            return
        if self._spans is not None:
            self._spans.endpoint_close(flow_id, self.sim.now, self.name)
        close = getattr(endpoint, "close", None)
        if close is not None:
            close()

    def send(self, pkt: Packet) -> None:
        """Serialize and ship one packet toward the proxy."""
        self._transport.sendto(pack_packet(pkt), self._peer)
        self.tx_datagrams += 1

    def receive(self, pkt: Packet) -> None:
        """Dispatch a parsed packet to its flow's endpoint (Host.receive)."""
        if not self.up:
            return
        if pkt.kind > CNP:
            # PFC frames are link-local in the simulator; on the wire
            # they are counted and dropped (no ports to pause).
            self.pfc_frames += 1
            return
        self.rx_pkts += 1
        endpoint = self.endpoints.get(pkt.flow_id)
        if endpoint is None:
            self.orphan_pkts += 1
        else:
            endpoint.on_packet(pkt)

    def close(self) -> None:
        if self._transport is not None:
            self._transport.close()

    def stats(self) -> Dict[str, int]:
        return {
            "tx_datagrams": self.tx_datagrams,
            "rx_datagrams": self.rx_datagrams,
            "rx_pkts": self.rx_pkts,
            "orphan_pkts": self.orphan_pkts,
            "corrupt_frames": self.corrupt_frames,
            "corrupt_payloads": self.corrupt_payloads,
            "pfc_frames": self.pfc_frames,
        }

    def __repr__(self) -> str:  # pragma: no cover
        return f"<WireHost {self.name} dc={self.dc} flows={len(self.endpoints)}>"


async def open_wire_host(clock: WallClock, node_id: int, name: str,
                         dc: int = 0) -> WireHost:
    """Bind a :class:`WireHost` to an ephemeral loopback port."""
    loop = asyncio.get_running_loop()
    host = WireHost(clock, node_id, name, dc=dc)
    await loop.create_datagram_endpoint(
        lambda: host, local_addr=("127.0.0.1", 0)
    )
    return host
