"""Loopback soak harness: the unmodified transport stack over real UDP.

One :func:`run_wire` call builds the full wire datapath on loopback —
a :class:`~repro.wire.clock.WallClock`, two :class:`WireHost` endpoints
(in different "DCs", so Uno flows get the full inter-DC UnoRC + UnoLB
stack), and the seeded :class:`ImpairmentProxy` between them — launches
the requested flows through the *same* ``start_flow`` /
``start_uno_flow`` entry points the simulator uses, waits for every
flow to reach a terminal state, and sweeps the wire invariants in the
chaos-campaign violation-dict style:

- ``frame_integrity`` / ``payload_integrity`` — nothing arrived
  malformed or corrupted (DATA payloads carry a verified pattern);
- ``flow_stuck`` — every flow ended terminal (completed, or aborted by
  its connection policy) before the harness deadline;
- ``completion_accounting`` — a completed sender really has every data
  packet acknowledged;
- ``abort_accounting`` — an aborted sender recorded its reason/time;
- ``timer_after_terminal`` / ``live_timers`` — terminal flows hold no
  armed timers, and once everything is terminal the wall clock's
  live-timer account is zero;
- ``rto_backoff_cap`` — no RTO span ever reported a backoff factor
  above the sender's cap (the blackhole scenario's storm guard);
- ``proxy_conservation`` — per direction,
  ``rx == forwarded + dropped_loss + dropped_blackhole``.

Determinism stance: every impairment *decision* is seeded and
reproducible; delivery *timing* rides the real event loop, so gates
assert reliability invariants, never exact timings.
"""

from __future__ import annotations

import asyncio
import gc
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.core.params import UnoParams
from repro.core.uno import start_uno_flow
from repro.sim.units import MS, SEC, ser_time_ps
from repro.transport.base import AbortPolicy, Sender, start_flow
from repro.transport.dctcp import DCTCP
from repro.wire.clock import WallClock
from repro.wire.endpoint import WireHost, WireNetwork, open_wire_host
from repro.wire.proxy import Impairments, ImpairmentProxy, open_proxy

#: Transports the wire harness can launch.
WIRE_TRANSPORTS = ("dctcp", "uno")


@dataclass(frozen=True)
class WireFlowSpec:
    """One flow of the pinned wire workload."""

    transport: str = "dctcp"
    size_bytes: int = 64 * 1024
    start_ms: float = 0.0

    def __post_init__(self) -> None:
        if self.transport not in WIRE_TRANSPORTS:
            raise ValueError(f"unknown wire transport {self.transport!r}; "
                             f"choose from {WIRE_TRANSPORTS}")
        if self.size_bytes <= 0:
            raise ValueError("flow size must be positive")
        if self.start_ms < 0:
            raise ValueError("start_ms must be >= 0")


def wire_rtt_ps(imp: Impairments, mss: int = 4096) -> int:
    """The workload's base RTT estimate: two proxy traversals plus two
    full-MSS serializations at the rate cap (if any)."""
    rtt = 2 * int(imp.delay_ms * MS)
    if imp.rate_mbps:
        rtt += 2 * ser_time_ps(mss, imp.rate_mbps / 1000.0)
    return max(rtt, 1)


def _uno_params(imp: Impairments, *, mss: int, min_rto_ps: int,
                max_rto_ps: int, rto_backoff_max: int) -> UnoParams:
    """UnoParams matched to the wire path (same knobs as the sim leg)."""
    rtt = wire_rtt_ps(imp, mss)
    line_gbps = imp.rate_mbps / 1000.0 if imp.rate_mbps else 1.0
    return UnoParams(
        link_gbps=line_gbps,
        mtu_bytes=mss,
        intra_rtt_ps=max(rtt // 2, 1 * MS),
        inter_rtt_ps=max(rtt, 2 * MS),
        min_rto_ps=min_rto_ps,
        max_rto_ps=max_rto_ps,
        rto_backoff_max=rto_backoff_max,
    )


def check_wire_invariants(
    clock: WallClock,
    hosts: List[WireHost],
    senders: List[Sender],
    proxy: ImpairmentProxy,
    *,
    timed_out: bool = False,
) -> List[Dict[str, Any]]:
    """Sweep the wire run invariants; a healthy run returns []."""
    violations: List[Dict[str, Any]] = []
    for host in hosts:
        if host.corrupt_frames:
            violations.append({
                "invariant": "frame_integrity", "host": host.name,
                "detail": f"{host.corrupt_frames} malformed frames",
            })
        if host.corrupt_payloads:
            violations.append({
                "invariant": "payload_integrity", "host": host.name,
                "detail": f"{host.corrupt_payloads} corrupted payloads",
            })
    for s in senders:
        if not s.terminal:
            violations.append({
                "invariant": "flow_stuck", "flow": s.flow_id,
                "detail": f"non-terminal after harness deadline "
                          f"(acked {len(s.acked_seqs)}/{s.total_data_pkts})",
            })
            continue
        if s.done and not s._all_delivered():
            violations.append({
                "invariant": "completion_accounting", "flow": s.flow_id,
                "detail": "completed without full coverage",
            })
        if s.aborted and (s.stats.abort_reason is None
                          or s.stats.aborted_ps is None):
            violations.append({
                "invariant": "abort_accounting", "flow": s.flow_id,
                "detail": "aborted without reason/time recorded",
            })
        for attr in ("_rto_handle", "_pace_handle", "_deadline_handle"):
            if getattr(s, attr) is not None:
                violations.append({
                    "invariant": "timer_after_terminal", "flow": s.flow_id,
                    "detail": f"{attr} still armed on terminal sender",
                })
        receiver = getattr(s, "receiver", None)
        if receiver is not None and receiver._idle_handle is not None:
            violations.append({
                "invariant": "timer_after_terminal", "flow": s.flow_id,
                "detail": "receiver idle timer armed after terminal",
            })
    if not timed_out and clock.live_timers != 0:
        violations.append({
            "invariant": "live_timers",
            "detail": f"{clock.live_timers} timers armed after all flows "
                      f"terminal",
        })
    obs = clock.obs
    if obs is not None and obs.events is not None:
        cap = max((s.rto_backoff_max for s in senders), default=0)
        for span in obs.events.events("span", "rto"):
            if span.get("backoff", 1) > cap:
                violations.append({
                    "invariant": "rto_backoff_cap", "flow": span.get("flow"),
                    "detail": f"backoff {span['backoff']} exceeds cap {cap}",
                })
    for direction, eng in (("a_to_b", proxy._dir_engines[0]),
                           ("b_to_a", proxy._dir_engines[1])):
        expected = eng.forwarded + eng.dropped_loss + eng.dropped_blackhole
        if eng.rx != expected:
            violations.append({
                "invariant": "proxy_conservation", "direction": direction,
                "detail": f"rx {eng.rx} != forwarded+dropped {expected}",
            })
    return violations


async def _run_wire(
    specs: List[WireFlowSpec],
    imp: Impairments,
    *,
    seed: int,
    mss: int,
    min_rto_ps: int,
    max_rto_ps: int,
    rto_backoff_max: int,
    abort: Optional[AbortPolicy],
    timeout_s: float,
    idle_timeout_ps: Optional[int],
) -> Dict[str, Any]:
    if idle_timeout_ps is None:
        # The receiver's idle timeout must exceed the sender's worst
        # retry gap, or the receiver idles out and unregisters while a
        # live sender is still retrying — every retry then lands as an
        # orphan and the flow can never finish. The nominal bound is
        # max_rto_ps, but it is soft on the wire: the base RTO
        # (srtt + 4*rttvar) is deliberately not clamped to max_rto_ps,
        # and one event-loop stall (a gen-2 GC pass in a long-lived
        # process) inflates rttvar by the stall length. Worse, once the
        # tail packet is lost no ACKs arrive, so the inflated estimate
        # is frozen for the rest of the flow. 10x headroom over the
        # nominal bound absorbs sub-second stalls.
        idle_timeout_ps = max(2_000 * MS, int(10 * max_rto_ps))
    loop = asyncio.get_running_loop()
    clock = WallClock(loop)
    if clock.obs is None:
        from repro.obs import enable
        enable(clock, event_topics=("flow", "span"), profile=False)
    net = WireNetwork()
    host_a = await open_wire_host(clock, 1, "wireA", dc=0)
    host_b = await open_wire_host(clock, 2, "wireB", dc=1)
    proxy = await open_proxy(clock, imp, seed ^ 0x51DE)
    proxy.wire(host_a.addr, host_b.addr)
    host_a.connect(proxy.addr)
    host_b.connect(proxy.addr)

    done = asyncio.Event()
    remaining = len(specs)

    def _finished(_sender: Sender) -> None:
        nonlocal remaining
        remaining -= 1
        if remaining == 0:
            done.set()

    rtt = wire_rtt_ps(imp, mss)
    line_gbps = imp.rate_mbps / 1000.0 if imp.rate_mbps else 1.0
    params = _uno_params(imp, mss=mss, min_rto_ps=min_rto_ps,
                         max_rto_ps=max_rto_ps,
                         rto_backoff_max=rto_backoff_max)
    senders: List[Sender] = []
    wall_start = time.monotonic()
    for i, spec in enumerate(specs):
        start_ps = clock.now + int(spec.start_ms * MS)
        if spec.transport == "uno":
            sender = start_uno_flow(
                clock, net, host_a, host_b, spec.size_bytes, params,
                start_ps=start_ps, seed=seed + i, base_rtt_ps=rtt,
                abort=abort, on_complete=_finished,
                receiver_idle_timeout_ps=idle_timeout_ps,
            )
        else:
            sender = start_flow(
                clock, net, DCTCP(), host_a, host_b, spec.size_bytes,
                start_ps=start_ps, mss=mss, base_rtt_ps=rtt,
                line_gbps=line_gbps, min_rto_ps=min_rto_ps,
                max_rto_ps=max_rto_ps, rto_backoff_max=rto_backoff_max,
                abort=abort, seed=seed + i, on_complete=_finished,
                receiver_kwargs={"idle_timeout_ps": idle_timeout_ps},
            )
        senders.append(sender)

    timed_out = False
    if remaining:
        try:
            await asyncio.wait_for(done.wait(), timeout_s)
        except asyncio.TimeoutError:
            timed_out = True

    hosts = [host_a, host_b]
    violations = check_wire_invariants(clock, hosts, senders, proxy,
                                       timed_out=timed_out)
    obs = clock.obs
    max_backoff = None
    if obs is not None and obs.events is not None:
        backoffs = [span.get("backoff", 1)
                    for span in obs.events.events("span", "rto")]
        max_backoff = max(backoffs) if backoffs else 0

    flows = []
    idled_out = 0
    abort_reasons: Dict[str, int] = {}
    for spec, s in zip(specs, senders):
        receiver = getattr(s, "receiver", None)
        if receiver is not None and receiver.idled_out:
            idled_out += 1
        if s.stats.abort_reason is not None:
            reason = s.stats.abort_reason
            abort_reasons[reason] = abort_reasons.get(reason, 0) + 1
        flows.append({
            "flow": s.flow_id,
            "transport": spec.transport,
            "size_bytes": spec.size_bytes,
            "completed": s.done,
            "aborted": s.aborted,
            "abort_reason": s.stats.abort_reason,
            "fct_ms": (s.stats.fct_ps / MS
                       if s.stats.fct_ps is not None else None),
            "retransmissions": s.stats.retransmissions,
            "timeouts": s.stats.timeouts,
            "idled_out": bool(receiver is not None and receiver.idled_out),
        })

    # Summary counts come from the per-flow records built above, before
    # teardown aborts whatever is stuck — a teardown abort must not
    # masquerade as a policy abort in the totals.
    completed = sum(1 for f in flows if f["completed"])
    aborted = sum(1 for f in flows if f["aborted"])

    # Teardown: abort whatever is still running (the violation is
    # already recorded) so no timer outlives the loop, then close the
    # sockets and let the cancellations drain.
    for s in senders:
        if not s.terminal:
            s.abort("harness_teardown")
    proxy.close()
    host_a.close()
    host_b.close()
    await asyncio.sleep(0)
    fcts = [f["fct_ms"] for f in flows if f["fct_ms"] is not None]
    return {
        "n_flows": len(senders),
        "completed": completed,
        "aborted": aborted,
        "stuck": len(senders) - completed - aborted,
        "abort_reasons": abort_reasons,
        "idled_out": idled_out,
        "timed_out": timed_out,
        "flows": flows,
        "violations": violations,
        "n_violations": len(violations),
        "max_backoff": max_backoff,
        "mean_fct_ms": sum(fcts) / len(fcts) if fcts else None,
        "max_fct_ms": max(fcts) if fcts else None,
        "retransmissions": sum(f["retransmissions"] for f in flows),
        "timeouts": sum(f["timeouts"] for f in flows),
        "impairments": imp.describe(),
        "proxy": proxy.stats(),
        "hosts": {h.name: h.stats() for h in hosts},
        "clock": clock.stats(),
        "wall_s": time.monotonic() - wall_start,
    }


def run_wire(
    specs: List[WireFlowSpec],
    imp: Impairments,
    *,
    seed: int = 1,
    mss: int = 4096,
    min_rto_ps: int = 25 * MS,
    max_rto_ps: int = 200 * MS,
    rto_backoff_max: int = 8,
    abort: Optional[AbortPolicy] = None,
    timeout_s: float = 30.0,
    idle_timeout_ps: Optional[int] = None,
) -> Dict[str, Any]:
    """Run the pinned workload over loopback UDP; returns the JSON-ready
    soak record (flows, violations, proxy/clock/host accounting).

    ``idle_timeout_ps=None`` derives a receiver idle timeout safely
    above the sender's maximum backed-off retry interval."""
    # Pay down any gen-2 garbage debt from the host process *before*
    # the wall-clock-sensitive run: a collection pass mid-soak stalls
    # the event loop and the stall is read as RTT by every live flow.
    gc.collect()
    return asyncio.run(_run_wire(
        list(specs), imp, seed=seed, mss=mss, min_rto_ps=min_rto_ps,
        max_rto_ps=max_rto_ps, rto_backoff_max=rto_backoff_max,
        abort=abort, timeout_s=timeout_s, idle_timeout_ps=idle_timeout_ps,
    ))
