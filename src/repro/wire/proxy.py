"""Deterministic, seeded impairment proxy between two UDP endpoints.

A netem-shaped middlebox for the loopback datapath, in the chaos-
scenario idiom (:mod:`repro.sim.chaos`): :class:`Impairments` is a
frozen, validated dataclass with a ``kind`` tag and ``describe()``;
every random decision — drop, duplicate, reorder, jitter — is drawn
from an injected seeded :class:`random.Random`, never module-global
``random``, so two runs with the same seed make the same per-datagram
decisions. (Delivery *timing* still rides the real event loop; wire
gates therefore assert reliability invariants, not exact timings.)

The impairment pipeline per datagram, per direction:

1. **blackhole** — inside a scheduled window (picoseconds on the shared
   :class:`~repro.wire.clock.WallClock`) everything is dropped; this is
   the sustained-outage scenario that must drive senders to ``aborted``;
2. **loss** — i.i.d. Bernoulli drop;
3. **rate cap** — serialization through a token bucket of one packet
   depth: each datagram occupies the link for ``8·bytes/rate`` and
   queues behind the previous one (an unbounded FIFO, so the cap shapes
   rather than drops);
4. **delay + jitter** — fixed one-way propagation plus a uniform jitter
   draw;
5. **reorder** — with probability ``reorder_rate`` the datagram is held
   an extra ``reorder_extra_ms``, letting later packets overtake it;
6. **duplicate** — with probability ``dup_rate`` a second copy is
   scheduled with its own jitter draw.

:class:`ImpairmentEngine` is the pure decision core (unit-testable
without sockets); :class:`ImpairmentProxy` is the asyncio datagram
protocol wrapping two per-direction engines and the delivery timers.
Conservation holds by construction and is asserted by the harness:
``rx == forwarded + dropped_loss + dropped_blackhole`` per direction.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import asdict, dataclass
from typing import ClassVar, Dict, List, Optional, Tuple

from repro.sim.units import MS, SEC

Addr = Tuple[str, int]


@dataclass(frozen=True)
class Impairments:
    """What the proxy does to traffic, identically in both directions.

    All windows/durations are in milliseconds of wall-clock run time
    (the harness vocabulary); rates are probabilities in [0, 1].
    ``rate_mbps=0`` means uncapped; ``blackhole_start_ms=None`` means no
    blackhole, and with a start but ``blackhole_ms=None`` the outage is
    permanent — the abort-path scenario."""

    kind: ClassVar[str] = "wire_impairments"

    delay_ms: float = 1.0
    jitter_ms: float = 0.0
    loss_rate: float = 0.0
    dup_rate: float = 0.0
    reorder_rate: float = 0.0
    reorder_extra_ms: float = 2.0
    rate_mbps: float = 0.0
    blackhole_start_ms: Optional[float] = None
    blackhole_ms: Optional[float] = None

    def __post_init__(self) -> None:
        for name in ("loss_rate", "dup_rate", "reorder_rate"):
            v = getattr(self, name)
            if not 0.0 <= v <= 1.0:
                raise ValueError(f"{name} {v} outside [0, 1]")
        for name in ("delay_ms", "jitter_ms", "reorder_extra_ms",
                     "rate_mbps"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
        if self.blackhole_start_ms is not None and self.blackhole_start_ms < 0:
            raise ValueError("blackhole_start_ms must be >= 0")
        if self.blackhole_ms is not None:
            if self.blackhole_start_ms is None:
                raise ValueError("blackhole_ms needs blackhole_start_ms")
            if self.blackhole_ms <= 0:
                raise ValueError("blackhole_ms must be positive")

    def describe(self) -> Dict[str, object]:
        """JSON-ready record (kind + every field), chaos-style."""
        return dict(asdict(self), kind=type(self).kind)


def impairments_from_dict(doc: Dict[str, object]) -> Impairments:
    """Rebuild an :class:`Impairments` from its ``describe()`` dict."""
    fields = dict(doc)
    kind = fields.pop("kind", Impairments.kind)
    if kind != Impairments.kind:
        raise ValueError(f"not an impairment record: kind {kind!r}")
    return Impairments(**fields)


class ImpairmentEngine:
    """Per-direction decision core: datagram in, delivery delays out.

    Pure (no sockets, no event loop): :meth:`fates` maps a datagram's
    size and the current clock reading to the list of picosecond
    delivery delays for its copies — empty when dropped. Determinism is
    exactly the injected RNG's; the harness seeds one RNG per direction.
    """

    def __init__(self, imp: Impairments, rng: random.Random):
        self.imp = imp
        self.rng = rng
        self._busy_until_ps = 0
        self.rx = 0
        self.forwarded = 0
        self.duplicated = 0
        self.dropped_loss = 0
        self.dropped_blackhole = 0
        self.reordered = 0

    def _blackholed(self, now_ps: int) -> bool:
        start = self.imp.blackhole_start_ms
        if start is None:
            return False
        start_ps = int(start * MS)
        if now_ps < start_ps:
            return False
        if self.imp.blackhole_ms is None:
            return True
        return now_ps < start_ps + int(self.imp.blackhole_ms * MS)

    def fates(self, nbytes: int, now_ps: int) -> List[int]:
        """Delivery delays (ps) for each copy of this datagram; [] = drop."""
        self.rx += 1
        imp = self.imp
        if self._blackholed(now_ps):
            self.dropped_blackhole += 1
            return []
        if imp.loss_rate and self.rng.random() < imp.loss_rate:
            self.dropped_loss += 1
            return []
        queue_ps = 0
        if imp.rate_mbps:
            ser_ps = int(nbytes * 8e6 / imp.rate_mbps)
            depart = max(now_ps, self._busy_until_ps) + ser_ps
            self._busy_until_ps = depart
            queue_ps = depart - now_ps
        base = queue_ps + int(imp.delay_ms * MS)
        jitter = int(imp.jitter_ms * MS)
        delay = base + (self.rng.randrange(jitter) if jitter else 0)
        if imp.reorder_rate and self.rng.random() < imp.reorder_rate:
            self.reordered += 1
            delay += int(imp.reorder_extra_ms * MS)
        self.forwarded += 1
        delays = [delay]
        if imp.dup_rate and self.rng.random() < imp.dup_rate:
            self.duplicated += 1
            dup = base + (self.rng.randrange(jitter) if jitter else 0)
            delays.append(dup)
        return delays

    def stats(self) -> Dict[str, int]:
        return {
            "rx": self.rx,
            "forwarded": self.forwarded,
            "duplicated": self.duplicated,
            "dropped_loss": self.dropped_loss,
            "dropped_blackhole": self.dropped_blackhole,
            "reordered": self.reordered,
        }


class ImpairmentProxy(asyncio.DatagramProtocol):
    """The in-process middlebox both wire hosts send through.

    One UDP socket; :meth:`wire` maps each endpoint address to its
    peer, and every datagram is relayed through that direction's
    :class:`ImpairmentEngine`, its surviving copies re-sent after their
    decided delays. ``close()`` cancels in-flight deliveries (counted,
    so conservation still balances at teardown)."""

    def __init__(self, clock, imp: Impairments, seed: int):
        self._clock = clock
        self.imp = imp
        rng = random.Random(seed)
        self._engines: Dict[Addr, Tuple[ImpairmentEngine, Addr]] = {}
        self._dir_engines = (
            ImpairmentEngine(imp, random.Random(rng.getrandbits(31))),
            ImpairmentEngine(imp, random.Random(rng.getrandbits(31))),
        )
        self._transport: Optional[asyncio.DatagramTransport] = None
        self._pending: Dict[int, asyncio.TimerHandle] = {}
        self._next_key = 0
        self.rx_datagrams = 0
        self.tx_datagrams = 0
        self.unrouted = 0
        self.cancelled_in_flight = 0

    # -- asyncio protocol -------------------------------------------------

    def connection_made(self, transport) -> None:
        self._transport = transport

    @property
    def addr(self) -> Addr:
        return self._transport.get_extra_info("sockname")

    def wire(self, addr_a: Addr, addr_b: Addr) -> None:
        """Bind the two endpoint addresses to the per-direction engines."""
        eng_ab, eng_ba = self._dir_engines
        self._engines = {addr_a: (eng_ab, addr_b), addr_b: (eng_ba, addr_a)}

    def datagram_received(self, data: bytes, addr: Addr) -> None:
        route = self._engines.get(addr)
        if route is None:
            self.unrouted += 1
            return
        self.rx_datagrams += 1
        engine, dst = route
        for delay_ps in engine.fates(len(data), self._clock.now):
            self._next_key += 1
            key = self._next_key
            self._pending[key] = self._clock._loop.call_later(
                delay_ps / SEC, self._deliver, key, data, dst
            )

    def _deliver(self, key: int, data: bytes, dst: Addr) -> None:
        self._pending.pop(key, None)
        self.tx_datagrams += 1
        self._transport.sendto(data, dst)

    def close(self) -> None:
        """Cancel in-flight deliveries and close the socket."""
        self.cancelled_in_flight += len(self._pending)
        for handle in self._pending.values():
            handle.cancel()
        self._pending.clear()
        if self._transport is not None:
            self._transport.close()

    def stats(self) -> Dict[str, object]:
        eng_ab, eng_ba = self._dir_engines
        return {
            "impairments": self.imp.describe(),
            "rx_datagrams": self.rx_datagrams,
            "tx_datagrams": self.tx_datagrams,
            "unrouted": self.unrouted,
            "cancelled_in_flight": self.cancelled_in_flight,
            "a_to_b": eng_ab.stats(),
            "b_to_a": eng_ba.stats(),
        }


async def open_proxy(clock, imp: Impairments, seed: int) -> ImpairmentProxy:
    """Bind an :class:`ImpairmentProxy` to an ephemeral loopback port."""
    loop = asyncio.get_running_loop()
    proxy = ImpairmentProxy(clock, imp, seed)
    await loop.create_datagram_endpoint(
        lambda: proxy, local_addr=("127.0.0.1", 0)
    )
    return proxy
