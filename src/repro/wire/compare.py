"""Sim-vs-wire comparison: one pinned workload, two datapaths.

The CoCo-Beholder-style check: run the *same* workload (same transports,
sizes, start offsets, RTO knobs, seeds) once in the discrete-event
simulator and once over the loopback UDP datapath, under matched
impairments, and diff the telemetry within declared tolerance bands.
Because the transport policy objects are identical on both legs — only
the engine behind the :class:`~repro.transport.base.EngineLike` seam
changes — a disagreement beyond tolerance means the wire plumbing
(framing, proxy, wall clock) distorted transport behavior, not that the
paper's algorithms changed.

Matched-impairment subset: the sim leg reproduces **delay, rate cap,
and Bernoulli loss** (a dumbbell whose bottleneck runs at the proxy's
rate cap, propagation split across its hops, and a
:class:`~repro.sim.chaos.GreyFailure` on the switch-switch cable at the
proxy's loss rate). Duplication, reordering and blackholes have no
one-knob simulator analogue, so :func:`compare_sim_wire` rejects them —
those live in the soak cells, which gate on invariants rather than on
cross-leg agreement.

Tolerance stance: wall-clock scheduling jitter, loopback batching, and
the sim's idealized queues mean FCTs agree in *magnitude*, not digits.
The bands are deliberately wide (FCT ratio, retransmission slack);
what must match exactly is the per-flow outcome — completed here means
completed there.
"""

from __future__ import annotations

import random
import time
from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional

from repro.core.uno import start_uno_flow
from repro.obs import enable
from repro.sim.chaos import GreyFailure
from repro.sim.engine import Simulator
from repro.sim.units import MIB, MS, SEC
from repro.topology.simple import dumbbell
from repro.transport.base import AbortPolicy, start_flow
from repro.transport.dctcp import DCTCP
from repro.wire.harness import (
    WireFlowSpec,
    _uno_params,
    run_wire,
    wire_rtt_ps,
)
from repro.wire.proxy import Impairments


@dataclass(frozen=True)
class CompareTolerance:
    """Declared agreement bands for the sim-vs-wire diff.

    ``fct_ratio_lo/hi`` bound the per-flow and mean wire/sim FCT ratio;
    ``retx_slack`` is the absolute retransmission-count difference
    allowed across the whole workload (loss draws are independent per
    leg, so counts wander even at the same marginal rate)."""

    fct_ratio_lo: float = 0.2
    fct_ratio_hi: float = 5.0
    retx_slack: int = 30

    def __post_init__(self) -> None:
        if not 0 < self.fct_ratio_lo < 1 <= self.fct_ratio_hi:
            raise ValueError("need fct_ratio_lo in (0,1) and hi >= 1")
        if self.retx_slack < 0:
            raise ValueError("retx_slack must be >= 0")

    def describe(self) -> Dict[str, Any]:
        return asdict(self)


def _check_comparable(imp: Impairments) -> None:
    if imp.dup_rate or imp.reorder_rate or imp.blackhole_start_ms is not None:
        raise ValueError(
            "compare cells only support the sim-expressible impairment "
            "subset (delay, rate cap, loss); dup/reorder/blackhole "
            "belong in soak cells"
        )


def _run_sim_leg(
    specs: List[WireFlowSpec],
    imp: Impairments,
    *,
    seed: int,
    mss: int,
    min_rto_ps: int,
    max_rto_ps: int,
    rto_backoff_max: int,
    abort: Optional[AbortPolicy],
    idle_timeout_ps: int,
    horizon_ps: int,
) -> Dict[str, Any]:
    """The simulator leg: a one-pair dumbbell matched to the proxy."""
    sim = Simulator()
    enable(sim, event_topics=("flow", "span"), profile=False)
    rate_gbps = imp.rate_mbps / 1000.0 if imp.rate_mbps else 1.0
    # One proxy traversal = delay_ms one way; the dumbbell path crosses
    # three links, so split the propagation across them.
    prop_ps = max(int(imp.delay_ms * MS) // 3, 1)
    topo = dumbbell(sim, n_pairs=1, gbps=rate_gbps, prop_ps=prop_ps,
                    queue_bytes=4 * MIB, seed=seed)
    src, dst = topo.senders[0], topo.receivers[0]
    # The wire hosts sit in different "DCs" so Uno flows engage the full
    # inter-DC UnoRC + UnoLB stack; mirror that here.
    dst.dc = 1
    if imp.loss_rate:
        GreyFailure(selector="inter_switch", k=1, start_ps=0,
                    duration_ps=None, loss_rate=imp.loss_rate).apply(
            sim, topo.net, random.Random(seed ^ 0x10_55))
    rtt = wire_rtt_ps(imp, mss)
    params = _uno_params(imp, mss=mss, min_rto_ps=min_rto_ps,
                         max_rto_ps=max_rto_ps,
                         rto_backoff_max=rto_backoff_max)
    senders = []
    wall_start = time.monotonic()
    for i, spec in enumerate(specs):
        start_ps = int(spec.start_ms * MS)
        if spec.transport == "uno":
            sender = start_uno_flow(
                sim, topo.net, src, dst, spec.size_bytes, params,
                start_ps=start_ps, seed=seed + i, base_rtt_ps=rtt,
                abort=abort, receiver_idle_timeout_ps=idle_timeout_ps,
            )
        else:
            sender = start_flow(
                sim, topo.net, DCTCP(), src, dst, spec.size_bytes,
                start_ps=start_ps, mss=mss, base_rtt_ps=rtt,
                line_gbps=rate_gbps, min_rto_ps=min_rto_ps,
                max_rto_ps=max_rto_ps, rto_backoff_max=rto_backoff_max,
                abort=abort, seed=seed + i,
                receiver_kwargs={"idle_timeout_ps": idle_timeout_ps},
            )
        senders.append(sender)
    sim.run(until=horizon_ps)

    flows = []
    for spec, s in zip(specs, senders):
        flows.append({
            "flow": s.flow_id,
            "transport": spec.transport,
            "size_bytes": spec.size_bytes,
            "completed": s.done,
            "aborted": s.aborted,
            "abort_reason": s.stats.abort_reason,
            "fct_ms": (s.stats.fct_ps / MS
                       if s.stats.fct_ps is not None else None),
            "retransmissions": s.stats.retransmissions,
            "timeouts": s.stats.timeouts,
        })
    fcts = [f["fct_ms"] for f in flows if f["fct_ms"] is not None]
    return {
        "n_flows": len(flows),
        "completed": sum(1 for f in flows if f["completed"]),
        "aborted": sum(1 for f in flows if f["aborted"]),
        "stuck": sum(1 for f in flows
                     if not f["completed"] and not f["aborted"]),
        "flows": flows,
        "mean_fct_ms": sum(fcts) / len(fcts) if fcts else None,
        "max_fct_ms": max(fcts) if fcts else None,
        "retransmissions": sum(f["retransmissions"] for f in flows),
        "timeouts": sum(f["timeouts"] for f in flows),
        "wall_s": time.monotonic() - wall_start,
    }


def compare_sim_wire(
    specs: List[WireFlowSpec],
    imp: Impairments,
    *,
    seed: int = 1,
    mss: int = 4096,
    min_rto_ps: int = 25 * MS,
    max_rto_ps: int = 200 * MS,
    rto_backoff_max: int = 8,
    abort: Optional[AbortPolicy] = None,
    timeout_s: float = 30.0,
    tolerance: CompareTolerance = CompareTolerance(),
) -> Dict[str, Any]:
    """Run the workload on both legs and diff within ``tolerance``.

    Returns a JSON-ready record with both legs' summaries, the per-flow
    and aggregate deltas, every tolerance ``mismatch``, and the verdict
    ``within_tolerance``. The wire leg's invariant sweep rides along:
    any wire violation is itself a mismatch."""
    _check_comparable(imp)
    # Same headroom as the harness default (see _run_wire): the wire
    # leg's retry gap can exceed max_rto_ps when an event-loop stall
    # inflates the RTT estimate, so the receivers must out-wait it.
    # Both legs get the same timeout so outcomes stay comparable.
    idle_timeout_ps = max(2_000 * MS, int(10 * max_rto_ps))
    horizon_ps = int(timeout_s * SEC)
    sim_leg = _run_sim_leg(
        list(specs), imp, seed=seed, mss=mss, min_rto_ps=min_rto_ps,
        max_rto_ps=max_rto_ps, rto_backoff_max=rto_backoff_max,
        abort=abort, idle_timeout_ps=idle_timeout_ps,
        horizon_ps=horizon_ps,
    )
    wire_leg = run_wire(
        list(specs), imp, seed=seed, mss=mss, min_rto_ps=min_rto_ps,
        max_rto_ps=max_rto_ps, rto_backoff_max=rto_backoff_max,
        abort=abort, timeout_s=timeout_s,
        idle_timeout_ps=idle_timeout_ps,
    )

    mismatches: List[Dict[str, Any]] = []
    per_flow: List[Dict[str, Any]] = []
    for i, (sf, wf) in enumerate(zip(sim_leg["flows"], wire_leg["flows"])):
        if (sf["completed"], sf["aborted"]) != (wf["completed"],
                                                wf["aborted"]):
            mismatches.append({
                "check": "outcome", "flow_index": i,
                "detail": f"sim completed={sf['completed']} "
                          f"aborted={sf['aborted']} vs wire "
                          f"completed={wf['completed']} "
                          f"aborted={wf['aborted']}",
            })
        ratio = None
        if sf["fct_ms"] and wf["fct_ms"]:
            ratio = wf["fct_ms"] / sf["fct_ms"]
            if not (tolerance.fct_ratio_lo <= ratio
                    <= tolerance.fct_ratio_hi):
                mismatches.append({
                    "check": "fct_ratio", "flow_index": i,
                    "detail": f"wire/sim FCT ratio {ratio:.3f} outside "
                              f"[{tolerance.fct_ratio_lo}, "
                              f"{tolerance.fct_ratio_hi}]",
                })
        per_flow.append({
            "flow_index": i,
            "transport": sf["transport"],
            "sim_fct_ms": sf["fct_ms"],
            "wire_fct_ms": wf["fct_ms"],
            "fct_ratio": ratio,
        })

    retx_delta = abs(wire_leg["retransmissions"]
                     - sim_leg["retransmissions"])
    if retx_delta > tolerance.retx_slack:
        mismatches.append({
            "check": "retransmissions",
            "detail": f"retx delta {retx_delta} (sim "
                      f"{sim_leg['retransmissions']}, wire "
                      f"{wire_leg['retransmissions']}) exceeds slack "
                      f"{tolerance.retx_slack}",
        })
    for v in wire_leg["violations"]:
        mismatches.append({"check": "wire_invariant", "detail": v})

    mean_ratio = None
    if sim_leg["mean_fct_ms"] and wire_leg["mean_fct_ms"]:
        mean_ratio = wire_leg["mean_fct_ms"] / sim_leg["mean_fct_ms"]
        if not (tolerance.fct_ratio_lo <= mean_ratio
                <= tolerance.fct_ratio_hi):
            mismatches.append({
                "check": "mean_fct_ratio",
                "detail": f"mean wire/sim FCT ratio {mean_ratio:.3f} "
                          f"outside [{tolerance.fct_ratio_lo}, "
                          f"{tolerance.fct_ratio_hi}]",
            })

    return {
        "impairments": imp.describe(),
        "tolerance": tolerance.describe(),
        "sim": sim_leg,
        "wire": wire_leg,
        "per_flow": per_flow,
        "mean_fct_ratio": mean_ratio,
        "retx_delta": retx_delta,
        "mismatches": mismatches,
        "n_mismatches": len(mismatches),
        "within_tolerance": not mismatches,
    }
