"""Sim-to-wire: the unmodified transport stack over real UDP sockets.

The transport layer (:mod:`repro.transport.base` and the Uno stack on
top of it) drives its engine only through the ``EngineLike`` protocol —
``now``/``at``/``after``/``obs``. This package supplies the second
implementation of that seam and everything needed to run the *same*
policy objects over loopback datagrams:

- :mod:`repro.wire.clock` — :class:`WallClock`, an asyncio-backed
  engine with live-timer accounting;
- :mod:`repro.wire.frame` — wire framing: packing/unpacking the slotted
  :class:`~repro.sim.packet.Packet` records to datagrams;
- :mod:`repro.wire.proxy` — a deterministic, seeded netem-shaped
  impairment proxy (loss, dup, reorder, jitter, rate cap, blackhole);
- :mod:`repro.wire.endpoint` — :class:`WireHost`, the Host-API surface
  over a UDP socket;
- :mod:`repro.wire.harness` — the loopback soak harness and its
  invariant sweep;
- :mod:`repro.wire.compare` — the sim-vs-wire comparison: one pinned
  workload run in-sim and on-wire under matched impairments, telemetry
  diffed within declared tolerance bands.
"""

from repro.wire.clock import WallClock, WallTimer
from repro.wire.compare import compare_sim_wire
from repro.wire.endpoint import WireHost, WireNetwork, open_wire_host
from repro.wire.frame import (
    FrameError,
    HEADER_SIZE,
    pack_packet,
    payload_bytes,
    unpack_packet,
)
from repro.wire.harness import (
    WIRE_TRANSPORTS,
    WireFlowSpec,
    check_wire_invariants,
    run_wire,
    wire_rtt_ps,
)
from repro.wire.proxy import (
    ImpairmentEngine,
    ImpairmentProxy,
    Impairments,
    impairments_from_dict,
    open_proxy,
)

__all__ = [
    "WallClock",
    "WallTimer",
    "WireHost",
    "WireNetwork",
    "open_wire_host",
    "FrameError",
    "HEADER_SIZE",
    "pack_packet",
    "payload_bytes",
    "unpack_packet",
    "WIRE_TRANSPORTS",
    "WireFlowSpec",
    "check_wire_invariants",
    "run_wire",
    "wire_rtt_ps",
    "ImpairmentEngine",
    "ImpairmentProxy",
    "Impairments",
    "impairments_from_dict",
    "open_proxy",
    "compare_sim_wire",
]
