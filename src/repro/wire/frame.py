"""Wire framing: the slotted :class:`~repro.sim.packet.Packet` record
packed to / unpacked from one UDP datagram.

Layout is a fixed 88-byte network-order header (every Packet slot,
``None``-able slots guarded by flag bits) followed, for DATA frames
only, by ``payload`` bytes of a deterministic pattern derived from
``(flow_id, seq)``. The pattern lets the receiving host verify — not
assume — that the bytes the transport thinks it delivered crossed the
socket uncorrupted: the soak harness counts any mismatch as a
``payload_integrity`` violation.

:func:`unpack_packet` raises :class:`FrameError` on anything that is
not a well-formed frame: truncation (shorter than the header, or a DATA
frame shorter than its declared payload), trailing bytes, a bad magic
or version, or an unknown packet kind. A UDP datagram is untrusted
input; the proxy may legally duplicate or reorder it, but a parse error
is always a bug or corruption and is counted, never dispatched.
"""

from __future__ import annotations

import struct
from typing import Tuple

from repro.sim.packet import ACK, CNP, DATA, NACK, PAUSE, RESUME, Packet

MAGIC = b"UW"
VERSION = 1

#: Every kind that may legally appear on the wire.
WIRE_KINDS = (DATA, ACK, NACK, CNP, PAUSE, RESUME)

# magic, version, kind, flags, hops, retx, flow_id, src, dst, sport,
# dport, seq, size, payload, sent_ps, echo_sent_ps, block_id,
# block_pos, nack_block, int_util
_HEADER = struct.Struct("!2sBBBBHqiiHHqIIQQqiqd")
HEADER_SIZE = _HEADER.size

_F_ECN = 1 << 0
_F_ECN_ECHO = 1 << 1
_F_BLOCK_ID = 1 << 2
_F_NACK_BLOCK = 1 << 3


class FrameError(ValueError):
    """A datagram that is not a well-formed wire frame."""


def payload_bytes(flow_id: int, seq: int, n: int) -> bytes:
    """The deterministic ``n``-byte payload pattern for ``(flow_id, seq)``.

    A 16-byte tag repeated: cheap to generate on both sides, unique per
    (flow, sequence) so a mis-routed or mis-sequenced payload cannot
    masquerade as the right one."""
    if n <= 0:
        return b""
    tag = struct.pack("!qq", flow_id, seq)
    return (tag * (n // len(tag) + 1))[:n]


def pack_packet(pkt: Packet) -> bytes:
    """Serialize ``pkt`` to one datagram (header + DATA payload pattern)."""
    if pkt.kind not in WIRE_KINDS:
        raise FrameError(f"unknown packet kind {pkt.kind}")
    flags = 0
    if pkt.ecn:
        flags |= _F_ECN
    if pkt.ecn_echo:
        flags |= _F_ECN_ECHO
    if pkt.block_id is not None:
        flags |= _F_BLOCK_ID
    if pkt.nack_block is not None:
        flags |= _F_NACK_BLOCK
    header = _HEADER.pack(
        MAGIC, VERSION, pkt.kind, flags, pkt.hops, pkt.retx,
        pkt.flow_id, pkt.src, pkt.dst, pkt.sport, pkt.dport, pkt.seq,
        pkt.size, pkt.payload, pkt.sent_ps, pkt.echo_sent_ps,
        pkt.block_id if pkt.block_id is not None else 0,
        pkt.block_pos,
        pkt.nack_block if pkt.nack_block is not None else 0,
        pkt.int_util,
    )
    if pkt.kind == DATA and pkt.payload > 0:
        return header + payload_bytes(pkt.flow_id, pkt.seq, pkt.payload)
    return header


def unpack_packet(data: bytes) -> Tuple[Packet, bytes]:
    """Parse one datagram into a fresh Packet plus its payload blob.

    The blob is empty for control frames; for DATA frames the caller
    checks it against :func:`payload_bytes` (corruption detection is
    the *host's* job — the counter lives there)."""
    if len(data) < HEADER_SIZE:
        raise FrameError(
            f"truncated frame: {len(data)} bytes < {HEADER_SIZE}-byte header"
        )
    (magic, version, kind, flags, hops, retx, flow_id, src, dst, sport,
     dport, seq, size, payload, sent_ps, echo_sent_ps, block_id,
     block_pos, nack_block, int_util) = _HEADER.unpack_from(data)
    if magic != MAGIC:
        raise FrameError(f"bad magic {magic!r}")
    if version != VERSION:
        raise FrameError(f"unsupported frame version {version}")
    if kind not in WIRE_KINDS:
        raise FrameError(f"unknown packet kind {kind}")
    expected = HEADER_SIZE + (payload if kind == DATA else 0)
    if len(data) != expected:
        raise FrameError(
            f"frame length {len(data)} != expected {expected} "
            f"(kind={kind}, payload={payload})"
        )
    pkt = Packet(kind, flow_id, src=src, dst=dst, seq=seq, size=size,
                 sport=sport, dport=dport, payload=payload)
    pkt.ecn = bool(flags & _F_ECN)
    pkt.ecn_echo = bool(flags & _F_ECN_ECHO)
    pkt.hops = hops
    pkt.retx = retx
    pkt.sent_ps = sent_ps
    pkt.echo_sent_ps = echo_sent_ps
    pkt.block_id = block_id if flags & _F_BLOCK_ID else None
    pkt.block_pos = block_pos
    pkt.nack_block = nack_block if flags & _F_NACK_BLOCK else None
    pkt.int_util = int_util
    return pkt, data[HEADER_SIZE:]
