"""Wall-clock engine: the transport's :class:`EngineLike` over asyncio.

:class:`WallClock` gives the unmodified ``transport.base`` stack real
time and real timers. ``now`` is the integer picosecond count since the
clock was created (same unit as the simulator, so every transport
constant — RTOs, idle timeouts, abort deadlines — means the same thing
on the wire); ``at``/``after`` arm one-shot ``loop.call_later`` timers
returning cancellable :class:`WallTimer` handles.

Two deliberate departures from :class:`~repro.sim.engine.Simulator`
semantics, both inherent to wall clocks:

- ``at`` with a time already in the past **clamps to zero delay**
  instead of raising. Real time advances between a caller reading
  ``now`` and scheduling against it; a virtual clock treats that as a
  bug, a wall clock must treat it as "as soon as possible".
- Firing order of same-deadline timers follows the event loop, not the
  simulator's deterministic sequence numbers. Wire-path assertions are
  therefore reliability invariants (delivered, terminal, no leaked
  timers), never exact timings.

The clock keeps a live-timer account (``armed``/``fired``/``cancelled``
/``live_timers``) so harnesses can assert the "zero live timers after
terminal" invariant that in virtual time falls out of the event loop
draining. Like the simulator, a WallClock self-attaches telemetry from
an active :class:`~repro.obs.TelemetryContext`, so ``--telemetry`` runs
collect wire-path counters/events with zero wire-specific wiring.
"""

from __future__ import annotations

import asyncio
from typing import Callable, Optional

from repro import obs as _obs
from repro.sim.units import SEC


class WallTimer:
    """Cancellable handle for one scheduled callback (TimerHandle)."""

    __slots__ = ("_clock", "_handle", "_fired", "cancelled")

    def __init__(self, clock: "WallClock", delay_s: float,
                 fn: Callable, args: tuple):
        self._clock = clock
        self._fired = False
        self.cancelled = False
        self._handle = clock._loop.call_later(delay_s, self._fire, fn, args)

    def _fire(self, fn: Callable, args: tuple) -> None:
        self._fired = True
        clock = self._clock
        clock.live_timers -= 1
        clock.fired += 1
        fn(*args)

    def cancel(self) -> None:
        """Idempotent; a no-op once the timer fired (mirrors EventHandle)."""
        if self.cancelled or self._fired:
            return
        self.cancelled = True
        self._handle.cancel()
        clock = self._clock
        clock.live_timers -= 1
        clock.cancelled_timers += 1


class WallClock:
    """An :class:`~repro.transport.base.EngineLike` over the running
    asyncio event loop. Construct it inside the loop (or pass one)."""

    def __init__(self, loop: Optional[asyncio.AbstractEventLoop] = None):
        self._loop = loop if loop is not None else asyncio.get_running_loop()
        self._t0 = self._loop.time()
        self.armed = 0
        self.fired = 0
        self.cancelled_timers = 0
        self.live_timers = 0
        self.obs = None
        ctx = _obs.active_context()
        if ctx is not None:
            ctx.attach(self)

    @property
    def now(self) -> int:
        """Integer picoseconds since the clock was created."""
        return int((self._loop.time() - self._t0) * SEC)

    def after(self, delay_ps: int, fn: Callable, *args) -> WallTimer:
        """Run ``fn(*args)`` once, ``delay_ps`` picoseconds from now."""
        if delay_ps < 0:
            raise ValueError(f"cannot schedule {delay_ps} ps in the past")
        self.armed += 1
        self.live_timers += 1
        return WallTimer(self, delay_ps / SEC, fn, args)

    def at(self, time_ps: int, fn: Callable, *args) -> WallTimer:
        """Run ``fn(*args)`` once at absolute clock time ``time_ps``,
        clamped to "immediately" if that moment already passed."""
        return self.after(max(0, time_ps - self.now), fn, *args)

    def stats(self) -> dict:
        """JSON-ready timer accounting for harness gates."""
        return {
            "armed": self.armed,
            "fired": self.fired,
            "cancelled": self.cancelled_timers,
            "live": self.live_timers,
        }
