"""Small-RPC message sizes ("Google RPC", Homa [53]) — used for the
latency-sensitive background messages in the paper's Fig 4 phantom-queue
experiment.

SUBSTITUTION NOTE: approximation of Homa's Google-datacenter aggregate
workload (W3/W4 family): dominated by sub-MTU messages with a modest tail
into the hundreds of KB.
"""

from repro.workloads.distributions import EmpiricalCDF

GOOGLE_RPC_POINTS = [
    (64, 0.08),
    (128, 0.20),
    (256, 0.40),
    (512, 0.53),
    (1_024, 0.60),
    (2_048, 0.70),
    (4_096, 0.80),
    (16_384, 0.90),
    (65_536, 0.97),
    (262_144, 1.00),
]

GOOGLE_RPC_CDF = EmpiricalCDF(GOOGLE_RPC_POINTS, name="google_rpc")
