"""Alibaba regional-WAN flow sizes (FlashPass [65]) — the paper's
inter-DC workload for Figs 10-12.

SUBSTITUTION NOTE (see DESIGN.md): the raw trace recorded between two
Alibaba datacenters is not public. We embed a piecewise CDF matching the
published summary characteristics: flow sizes ranging from a few KB to
~300 MB (the paper notes all recorded messages are < 300 MB), heavy-
tailed, with most flows in the 100 KB - 10 MB range and a mean of a few
MB. Experiments that need shorter runtimes use ``.scaled(...)`` copies,
recorded in EXPERIMENTS.md.
"""

from repro.workloads.distributions import EmpiricalCDF

ALIBABA_WAN_POINTS = [
    (5_000, 0.05),
    (20_000, 0.15),
    (100_000, 0.35),
    (500_000, 0.55),
    (1_000_000, 0.65),
    (5_000_000, 0.80),
    (20_000_000, 0.90),
    (50_000_000, 0.95),
    (100_000_000, 0.98),
    (300_000_000, 1.00),
]

ALIBABA_WAN_CDF = EmpiricalCDF(ALIBABA_WAN_POINTS, name="alibaba_wan")
