"""Empirical flow-size CDFs with inverse-transform sampling.

A distribution is a list of (size_bytes, cumulative_probability) points,
interpreted as piecewise linear in size between points (the convention
used by the htsim/DCTCP-style CDF trace files the paper feeds its
simulator). ``mean()`` is exact for that interpretation.
"""

from __future__ import annotations

import bisect
import random
from typing import List, Sequence, Tuple


class EmpiricalCDF:
    """A piecewise-linear empirical flow-size distribution."""
    def __init__(self, points: Sequence[Tuple[float, float]], name: str = ""):
        if len(points) < 1:
            raise ValueError("need at least one CDF point")
        sizes = [float(s) for s, _ in points]
        probs = [float(p) for _, p in points]
        if any(s <= 0 for s in sizes):
            raise ValueError("flow sizes must be positive")
        if sorted(sizes) != sizes or sorted(probs) != probs:
            raise ValueError("CDF points must be sorted in size and probability")
        if abs(probs[-1] - 1.0) > 1e-9:
            raise ValueError(f"CDF must end at probability 1, got {probs[-1]}")
        if probs[0] < 0:
            raise ValueError("probabilities must be non-negative")
        # Prepend an implicit origin so the first segment is well-defined.
        if probs[0] > 0:
            sizes = [max(1.0, sizes[0] * 0.5)] + sizes
            probs = [0.0] + probs
        self.sizes = sizes
        self.probs = probs
        self.name = name

    def sample(self, rng: random.Random) -> int:
        """One flow size in bytes (inverse transform, >= 1)."""
        u = rng.random()
        return max(1, int(round(self.quantile(u))))

    def quantile(self, p: float) -> float:
        """Size at cumulative probability ``p`` (linear interpolation)."""
        if not (0.0 <= p <= 1.0):
            raise ValueError(f"probability {p} outside [0, 1]")
        probs, sizes = self.probs, self.sizes
        i = bisect.bisect_left(probs, p)
        if i == 0:
            return sizes[0]
        if i >= len(probs):
            return sizes[-1]
        p0, p1 = probs[i - 1], probs[i]
        s0, s1 = sizes[i - 1], sizes[i]
        if p1 == p0:
            return s1
        frac = (p - p0) / (p1 - p0)
        return s0 + frac * (s1 - s0)

    def mean(self) -> float:
        """Exact mean under piecewise-linear-in-size interpolation."""
        total = 0.0
        for i in range(1, len(self.sizes)):
            dp = self.probs[i] - self.probs[i - 1]
            total += dp * (self.sizes[i] + self.sizes[i - 1]) / 2.0
        return total

    def cdf(self, size: float) -> float:
        """Cumulative probability at ``size``."""
        sizes, probs = self.sizes, self.probs
        if size <= sizes[0]:
            return probs[0] if size == sizes[0] else 0.0
        if size >= sizes[-1]:
            return 1.0
        i = bisect.bisect_right(sizes, size)
        s0, s1 = sizes[i - 1], sizes[i]
        p0, p1 = probs[i - 1], probs[i]
        if s1 == s0:
            return p1
        return p0 + (size - s0) / (s1 - s0) * (p1 - p0)

    def scaled(self, factor: float, name: str = "") -> "EmpiricalCDF":
        """A copy with all sizes multiplied by ``factor`` (used to shrink
        workloads for quick Python-speed runs while preserving shape)."""
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        pts = [(max(1.0, s * factor), p) for s, p in zip(self.sizes, self.probs)]
        return EmpiricalCDF(pts, name=name or f"{self.name}*{factor:g}")

    def __repr__(self) -> str:  # pragma: no cover
        return f"<EmpiricalCDF {self.name} mean={self.mean():.0f}B>"
