"""Poisson traffic generation at a target network load (paper 5.1).

Flows arrive as a Poisson process whose rate is scaled so the offered
load equals ``load`` times the aggregate host access capacity; sources
and destinations are uniform random; each flow is intra- or inter-DC
with probability set by the paper's 4:1 datacenter-to-WAN ratio; sizes
come from per-class empirical CDFs (web search intra, Alibaba WAN inter).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional

from repro.sim.host import Host
from repro.topology.multidc import MultiDC
from repro.workloads.alibaba_wan import ALIBABA_WAN_CDF
from repro.workloads.distributions import EmpiricalCDF
from repro.workloads.websearch import WEBSEARCH_CDF


@dataclass
class FlowSpec:
    start_ps: int
    src: Host
    dst: Host
    size_bytes: int
    is_inter_dc: bool


@dataclass
class TrafficConfig:
    load: float = 0.4                     # fraction of aggregate host capacity
    duration_ps: int = 50_000_000_000     # arrival window (50 ms)
    dc_to_wan_ratio: float = 4.0          # 4:1 intra:inter flows (paper 5.1)
    intra_cdf: EmpiricalCDF = field(default_factory=lambda: WEBSEARCH_CDF)
    inter_cdf: EmpiricalCDF = field(default_factory=lambda: ALIBABA_WAN_CDF)
    max_flows: Optional[int] = None       # hard cap for quick runs
    seed: int = 0

    def __post_init__(self) -> None:
        if not (0.0 < self.load <= 1.5):
            raise ValueError(f"load {self.load} outside (0, 1.5]")
        if self.duration_ps <= 0:
            raise ValueError("duration must be positive")
        if self.dc_to_wan_ratio < 0:
            raise ValueError("dc_to_wan_ratio cannot be negative")


class PoissonTraffic:
    """Generates :class:`FlowSpec` lists against a :class:`MultiDC`."""

    def __init__(self, topo: MultiDC, config: TrafficConfig):
        self.topo = topo
        self.config = config
        self.rng = random.Random(config.seed)

    @property
    def inter_fraction(self) -> float:
        return 1.0 / (1.0 + self.config.dc_to_wan_ratio)

    def mean_flow_size(self) -> float:
        """Expected size across the intra/inter mixture."""
        f = self.inter_fraction
        return (1 - f) * self.config.intra_cdf.mean() + f * self.config.inter_cdf.mean()

    def arrival_rate_per_ps(self) -> float:
        """Poisson rate lambda (flows per picosecond) such that the
        offered byte rate equals load x aggregate host link capacity."""
        n_hosts = len(self.topo.all_hosts())
        capacity_bytes_per_ps = (
            n_hosts * self.topo.config.gbps * 1e9 / 8 / 1e12
        )
        offered = self.config.load * capacity_bytes_per_ps
        return offered / self.mean_flow_size()

    def generate(self) -> List[FlowSpec]:
        cfg = self.config
        rng = self.rng
        rate = self.arrival_rate_per_ps()
        inter_p = self.inter_fraction
        specs: List[FlowSpec] = []
        t = 0.0
        while True:
            t += rng.expovariate(rate)
            if t >= cfg.duration_ps:
                break
            is_inter = rng.random() < inter_p
            src, dst = self.topo.random_host_pair(rng, is_inter)
            cdf = cfg.inter_cdf if is_inter else cfg.intra_cdf
            specs.append(
                FlowSpec(
                    start_ps=int(t),
                    src=src,
                    dst=dst,
                    size_bytes=cdf.sample(rng),
                    is_inter_dc=is_inter,
                )
            )
            if cfg.max_flows is not None and len(specs) >= cfg.max_flows:
                break
        return specs
