"""htsim-style CDF trace-file loading and saving.

The paper's artifact ships its flow-size distributions as plain-text CDF
files ("we include the files having the CDF flow size distribution in
the actual repository"). This module reads and writes that conventional
format so users can drop in their own traces:

    # comment lines start with '#'
    <size_bytes> <cumulative_probability>
    ...

sorted ascending, final probability 1.0. The built-in distributions are
also shipped as data files under ``repro/workloads/data/`` and loadable
by name.
"""

from __future__ import annotations

from importlib import resources
from pathlib import Path
from typing import List, Tuple, Union

from repro.workloads.distributions import EmpiricalCDF

_DATA_PACKAGE = "repro.workloads.data"


def parse_cdf_text(text: str, name: str = "") -> EmpiricalCDF:
    """Parse CDF points from trace-file text."""
    points: List[Tuple[float, float]] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        if len(parts) != 2:
            raise ValueError(
                f"{name or 'trace'}:{lineno}: expected '<size> <prob>', "
                f"got {raw!r}"
            )
        try:
            size = float(parts[0])
            prob = float(parts[1])
        except ValueError as exc:
            raise ValueError(
                f"{name or 'trace'}:{lineno}: non-numeric field in {raw!r}"
            ) from exc
        points.append((size, prob))
    if not points:
        raise ValueError(f"{name or 'trace'}: no CDF points found")
    return EmpiricalCDF(points, name=name)


def load_cdf_file(path: Union[str, Path]) -> EmpiricalCDF:
    """Load a CDF trace file from disk."""
    p = Path(path)
    return parse_cdf_text(p.read_text(), name=p.stem)


def save_cdf_file(cdf: EmpiricalCDF, path: Union[str, Path],
                  header: str = "") -> None:
    """Write ``cdf`` in the trace-file format."""
    lines = []
    if header:
        lines.extend(f"# {h}" for h in header.splitlines())
    lines.extend(f"{int(s)} {p:.6f}" for s, p in zip(cdf.sizes, cdf.probs))
    Path(path).write_text("\n".join(lines) + "\n")


def load_builtin(name: str) -> EmpiricalCDF:
    """Load one of the shipped distributions by name
    (``websearch``, ``alibaba_wan``, ``google_rpc``)."""
    filename = f"{name}.cdf"
    try:
        text = (resources.files(_DATA_PACKAGE) / filename).read_text()
    except FileNotFoundError:
        available = sorted(
            f.name[:-4]
            for f in resources.files(_DATA_PACKAGE).iterdir()
            if f.name.endswith(".cdf")
        )
        raise ValueError(
            f"unknown builtin CDF {name!r}; available: {available}"
        ) from None
    return parse_cdf_text(text, name=name)
