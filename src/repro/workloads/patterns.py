"""Deterministic traffic patterns: incast and permutation (paper 5.2.1)."""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.sim.host import Host
from repro.topology.multidc import MultiDC
from repro.workloads.generator import FlowSpec


def incast_specs(
    topo: MultiDC,
    n_intra: int,
    n_inter: int,
    size_bytes: int,
    dst: Optional[Host] = None,
    start_ps: int = 0,
) -> List[FlowSpec]:
    """``n_intra`` senders from the destination's DC plus ``n_inter``
    senders from the remote DC, all toward one receiver (Fig 3/8).

    Intra senders are drawn from *other pods* so they traverse the core
    like the paper's setup; there must be enough hosts for distinct
    senders.
    """
    if dst is None:
        dst = topo.host(0, 0)
    local = [h for h in topo.hosts(dst.dc) if h is not dst]
    # Prefer senders outside the destination's pod for full-fabric paths.
    tree = topo.dcs[dst.dc]
    far = [h for h in local if tree.pod_of(h) != tree.pod_of(dst)]
    pool = far + [h for h in local if h not in far]
    if n_intra > len(pool):
        raise ValueError(f"not enough intra-DC hosts: {n_intra} > {len(pool)}")
    remote = topo.hosts(1 - dst.dc)
    if n_inter > len(remote):
        raise ValueError(f"not enough inter-DC hosts: {n_inter} > {len(remote)}")
    specs = [
        FlowSpec(start_ps, pool[i], dst, size_bytes, is_inter_dc=False)
        for i in range(n_intra)
    ]
    specs.extend(
        FlowSpec(start_ps, remote[i], dst, size_bytes, is_inter_dc=True)
        for i in range(n_inter)
    )
    return specs


def permutation_pairs(
    topo: MultiDC, rng: random.Random
) -> List[Tuple[Host, Host]]:
    """A random permutation over all hosts of both DCs: every host sends
    to exactly one other host and receives from exactly one (Fig 9).
    Destinations may land in either DC, so inter-DC links can easily be
    oversubscribed — the point of the experiment."""
    hosts = topo.all_hosts()
    dsts = hosts[:]
    # Sattolo's algorithm: a uniform cyclic permutation, so no host ever
    # maps to itself.
    for i in range(len(dsts) - 1, 0, -1):
        j = rng.randrange(i)
        dsts[i], dsts[j] = dsts[j], dsts[i]
    return list(zip(hosts, dsts))


def permutation_specs(
    topo: MultiDC,
    size_bytes: int,
    rng: random.Random,
    start_ps: int = 0,
) -> List[FlowSpec]:
    """Flow specs for a full-host random permutation at one size."""
    return [
        FlowSpec(start_ps, src, dst, size_bytes, is_inter_dc=src.dc != dst.dc)
        for src, dst in permutation_pairs(topo, rng)
    ]
