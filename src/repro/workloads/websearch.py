"""Google web-search flow sizes (DCTCP [9]) — the paper's intra-DC
workload for Figs 10-12.

These are the widely-circulated CDF points from the DCTCP measurement
study, as shipped with pFabric/Homa/htsim simulator artifacts. Sizes in
bytes; heavy-tailed with a mean around 1.6 MB: >95% of *bytes* come from
the >1 MB flows while most *flows* are tens of KB.
"""

from repro.workloads.distributions import EmpiricalCDF

WEBSEARCH_POINTS = [
    (6_000, 0.15),
    (13_000, 0.20),
    (19_000, 0.30),
    (33_000, 0.40),
    (53_000, 0.53),
    (133_000, 0.60),
    (667_000, 0.70),
    (1_467_000, 0.80),
    (2_107_000, 0.90),
    (6_667_000, 0.95),
    (20_000_000, 0.98),
    (30_000_000, 1.00),
]

WEBSEARCH_CDF = EmpiricalCDF(WEBSEARCH_POINTS, name="websearch")
