"""Workload generation: flow-size distributions and traffic patterns.

- :mod:`repro.workloads.distributions` — empirical CDF machinery.
- :mod:`repro.workloads.websearch` — Google web-search sizes [9] (intra-DC).
- :mod:`repro.workloads.alibaba_wan` — Alibaba regional-WAN sizes [65]
  (inter-DC; approximation, see module docstring).
- :mod:`repro.workloads.google_rpc` — small-RPC sizes [53] (Fig 4).
- :mod:`repro.workloads.generator` — Poisson arrivals at a target load.
- :mod:`repro.workloads.patterns` — incast and permutation patterns.
- :mod:`repro.workloads.allreduce` — data-parallel ring Allreduce across
  DCs (the Fig 13C AI-training workload).
"""

from repro.workloads.distributions import EmpiricalCDF
from repro.workloads.websearch import WEBSEARCH_CDF
from repro.workloads.alibaba_wan import ALIBABA_WAN_CDF
from repro.workloads.google_rpc import GOOGLE_RPC_CDF
from repro.workloads.generator import FlowSpec, PoissonTraffic, TrafficConfig
from repro.workloads.patterns import incast_specs, permutation_pairs
from repro.workloads.allreduce import RingAllreduce, AllreduceConfig
from repro.workloads.tracefile import load_builtin, load_cdf_file, save_cdf_file

__all__ = [
    "EmpiricalCDF",
    "WEBSEARCH_CDF",
    "ALIBABA_WAN_CDF",
    "GOOGLE_RPC_CDF",
    "FlowSpec",
    "PoissonTraffic",
    "TrafficConfig",
    "incast_specs",
    "permutation_pairs",
    "RingAllreduce",
    "AllreduceConfig",
    "load_builtin",
    "load_cdf_file",
    "save_cdf_file",
]
