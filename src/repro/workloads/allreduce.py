"""Data-parallel AI-training workload: ring Allreduce across two DCs.

The paper (5.1, Fig 13C) trains a Llama-70B-style model data-parallel
across the two datacenters: every iteration ends with an Allreduce
(reduce-scatter + all-gather) of the gradients, generating periodic
70-500 MiB bursts over the inter-DC links.

We model the canonical ring algorithm over N participants (half per DC):
2(N-1) steps, each participant sending one G/N-byte chunk to its ring
successor per step. Steps are bulk-synchronous (a step starts when the
previous step's flows all finished) — a mild simplification of the
pipelined ring that keeps the inter-DC traffic pattern (two ring edges
cross the WAN each step) intact.

``ideal_runtime_ps`` is the collision-free, loss-free lower bound the
paper normalizes Fig 13C against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.sim.engine import Simulator
from repro.sim.host import Host
from repro.sim.units import ser_time_ps
from repro.topology.multidc import MultiDC

# flow_starter(src, dst, size_bytes, on_complete, start_ps) -> sender
FlowStarter = Callable[[Host, Host, int, Callable, int], object]


@dataclass(frozen=True)
class AllreduceConfig:
    participants_per_dc: int = 4
    gradient_bytes: int = 128 * 1024 * 1024  # per-iteration burst (paper: 70-500 MiB)
    iterations: int = 1
    compute_gap_ps: int = 0  # idle time modeling fwd/bwd compute between iterations

    def __post_init__(self) -> None:
        if self.participants_per_dc < 1:
            raise ValueError("need at least one participant per DC")
        if self.gradient_bytes <= 0:
            raise ValueError("gradient size must be positive")
        if self.iterations < 1:
            raise ValueError("need at least one iteration")

    @property
    def world_size(self) -> int:
        return 2 * self.participants_per_dc

    @property
    def chunk_bytes(self) -> int:
        return max(1, self.gradient_bytes // self.world_size)

    @property
    def n_steps(self) -> int:
        return 2 * (self.world_size - 1)


class RingAllreduce:
    """Drives the iterations; collect results from ``iteration_times_ps``."""

    def __init__(
        self,
        sim: Simulator,
        topo: MultiDC,
        config: AllreduceConfig,
        flow_starter: FlowStarter,
        on_done: Optional[Callable[["RingAllreduce"], None]] = None,
    ):
        m = config.participants_per_dc
        if m > len(topo.hosts(0)) or m > len(topo.hosts(1)):
            raise ValueError("not enough hosts for the requested participants")
        self.sim = sim
        self.topo = topo
        self.config = config
        self.flow_starter = flow_starter
        self.on_done = on_done
        # Ring order: all of DC0 then all of DC1 -> exactly two WAN edges.
        self.ring: List[Host] = list(topo.hosts(0)[:m]) + list(topo.hosts(1)[:m])
        self.iteration_times_ps: List[int] = []
        self._iter = 0
        self._step = 0
        self._pending = 0
        self._iter_start_ps = 0

    # ------------------------------------------------------------------

    def start(self) -> None:
        self._iter = 0
        self._begin_iteration()

    def _begin_iteration(self) -> None:
        self._iter_start_ps = self.sim.now
        self._step = 0
        self._launch_step()

    def _launch_step(self) -> None:
        n = self.config.world_size
        chunk = self.config.chunk_bytes
        self._pending = n
        for i, src in enumerate(self.ring):
            dst = self.ring[(i + 1) % n]
            self.flow_starter(src, dst, chunk, self._flow_done, self.sim.now)

    def _flow_done(self, _sender) -> None:
        self._pending -= 1
        if self._pending > 0:
            return
        self._step += 1
        if self._step < self.config.n_steps:
            self._launch_step()
            return
        self.iteration_times_ps.append(self.sim.now - self._iter_start_ps)
        self._iter += 1
        if self._iter < self.config.iterations:
            self.sim.after(self.config.compute_gap_ps, self._begin_iteration)
        elif self.on_done is not None:
            self.on_done(self)

    # ------------------------------------------------------------------

    def ideal_runtime_ps(self) -> int:
        """Collision- and loss-free bound: each bulk-synchronous step
        moves one chunk over the slowest hop (the WAN link) and completes
        when the last ACK returns, i.e. one cross-DC round trip."""
        cfg = self.topo.config
        inter_gbps = cfg.inter_gbps or cfg.gbps
        chunk_time = ser_time_ps(self.config.chunk_bytes, min(cfg.gbps, inter_gbps))
        round_trip = 2 * (8 * cfg.fabric_prop_ps + cfg.border_prop_ps)
        return self.config.n_steps * (chunk_time + round_trip)

    def slowdowns(self) -> List[float]:
        """Measured iteration time / ideal, one entry per iteration."""
        ideal = self.ideal_runtime_ps()
        return [t / ideal for t in self.iteration_times_ps]
