"""Systematic Reed-Solomon (n, k) erasure codes over GF(256).

Construction: start from an n x k Vandermonde matrix V (any k rows
linearly independent), then normalize to systematic form
``S = V @ inv(V[:k])`` so the first k codeword symbols are the data
verbatim and the remaining n-k are parity. Multiplying by an invertible
matrix on the right preserves the any-k-rows-invertible (MDS) property,
so **any** k received symbols of the n reconstruct the data — exactly the
guarantee UnoRC's (x, y) blocks rely on (paper section 4.2).

Symbols are byte positions: encoding k equal-length byte shards yields
n shards of the same length.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.coding.gf256 import GF256


class ReedSolomon:
    """A systematic (n, k) Reed-Solomon erasure code over GF(256)."""
    def __init__(self, data_shards: int, parity_shards: int):
        if data_shards < 1:
            raise ValueError("need at least one data shard")
        if parity_shards < 0:
            raise ValueError("parity shard count cannot be negative")
        n = data_shards + parity_shards
        if n > 255:
            raise ValueError(f"n={n} exceeds GF(256) code length limit 255")
        self.k = data_shards
        self.m = parity_shards
        self.n = n
        vand = GF256.vandermonde(n, self.k)
        top_inv = GF256.mat_inv(vand[: self.k])
        self.matrix = GF256.mat_mul(vand, top_inv)  # n x k, top k = identity

    # ------------------------------------------------------------------

    def encode(self, data_shards: Sequence[bytes]) -> list[bytes]:
        """Encode k equal-length data shards into n shards (data + parity)."""
        if len(data_shards) != self.k:
            raise ValueError(f"expected {self.k} shards, got {len(data_shards)}")
        lengths = {len(s) for s in data_shards}
        if len(lengths) != 1:
            raise ValueError(f"shards must be equal length, got {sorted(lengths)}")
        data = np.frombuffer(b"".join(data_shards), dtype=np.uint8).reshape(
            self.k, -1
        )
        if self.m == 0:
            return [bytes(row) for row in data]
        parity = GF256.mat_mul(self.matrix[self.k :], data)
        return [bytes(row) for row in data] + [bytes(row) for row in parity]

    def decode(self, shards: dict[int, bytes]) -> list[bytes]:
        """Recover the k data shards from any k received shards.

        ``shards`` maps shard index (0..n-1) to its bytes. Raises
        ValueError when fewer than k shards are available.
        """
        if len(shards) < self.k:
            raise ValueError(
                f"need {self.k} shards to decode, have {len(shards)}"
            )
        indices = sorted(shards)[: self.k]
        lengths = {len(shards[i]) for i in indices}
        if len(lengths) != 1:
            raise ValueError("received shards must be equal length")
        for i in indices:
            if not (0 <= i < self.n):
                raise ValueError(f"shard index {i} outside [0, {self.n})")
        # Fast path: all data shards present.
        if indices == list(range(self.k)):
            return [shards[i] for i in indices]
        sub = self.matrix[indices]
        inv = GF256.mat_inv(sub)
        received = np.frombuffer(
            b"".join(shards[i] for i in indices), dtype=np.uint8
        ).reshape(self.k, -1)
        data = GF256.mat_mul(inv, received)
        return [bytes(row) for row in data]

    def __repr__(self) -> str:  # pragma: no cover
        return f"<ReedSolomon n={self.n} k={self.k}>"
