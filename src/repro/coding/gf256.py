"""GF(2^8) arithmetic, vectorized with NumPy log/antilog tables.

The field is built over the primitive polynomial x^8+x^4+x^3+x^2+1
(0x11D), the conventional choice for Reed-Solomon codes. Multiplication
and division use exp/log lookup tables; matrix routines implement the
Gaussian elimination needed for systematic code construction and erasure
decoding.
"""

from __future__ import annotations

import numpy as np

_PRIMITIVE_POLY = 0x11D
_FIELD_SIZE = 256


def _build_tables() -> tuple[np.ndarray, np.ndarray]:
    exp = np.zeros(2 * _FIELD_SIZE, dtype=np.int32)
    log = np.zeros(_FIELD_SIZE, dtype=np.int32)
    x = 1
    for i in range(_FIELD_SIZE - 1):
        exp[i] = x
        log[x] = i
        x <<= 1
        if x & 0x100:
            x ^= _PRIMITIVE_POLY
    # Duplicate so exp[(a+b) mod 255] lookups avoid the modulo.
    exp[_FIELD_SIZE - 1 :] = exp[: _FIELD_SIZE + 1]
    return exp, log


_EXP, _LOG = _build_tables()


class GF256:
    """Namespace of GF(2^8) operations on ints and uint8 ndarrays."""

    exp = _EXP
    log = _LOG

    @staticmethod
    def add(a, b):
        """Addition = subtraction = XOR in characteristic 2."""
        return np.bitwise_xor(a, b)

    @staticmethod
    def mul(a, b):
        """Elementwise product; handles scalars and arrays, zero-safe."""
        a_arr = np.asarray(a, dtype=np.uint8)
        b_arr = np.asarray(b, dtype=np.uint8)
        out = _EXP[(_LOG[a_arr.astype(np.int32)] + _LOG[b_arr.astype(np.int32)]) % 255]
        out = np.where((a_arr == 0) | (b_arr == 0), 0, out)
        if np.isscalar(a) and np.isscalar(b):
            return int(out)
        return out.astype(np.uint8)

    @staticmethod
    def inv(a: int) -> int:
        if a == 0:
            raise ZeroDivisionError("0 has no inverse in GF(256)")
        return int(_EXP[255 - _LOG[a]])

    @staticmethod
    def div(a, b):
        b_arr = np.asarray(b)
        if np.any(b_arr == 0):
            raise ZeroDivisionError("division by zero in GF(256)")
        a_arr = np.asarray(a, dtype=np.uint8)
        out = _EXP[(_LOG[a_arr.astype(np.int32)] - _LOG[b_arr.astype(np.int32)]) % 255]
        out = np.where(a_arr == 0, 0, out)
        if np.isscalar(a) and np.isscalar(b):
            return int(out)
        return out.astype(np.uint8)

    @staticmethod
    def pow(a: int, n: int) -> int:
        if a == 0:
            return 0 if n > 0 else 1
        return int(_EXP[(_LOG[a] * n) % 255])

    # -- matrix routines ---------------------------------------------------

    @staticmethod
    def mat_mul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Matrix product over GF(256). Shapes follow NumPy matmul rules."""
        a = np.asarray(a, dtype=np.uint8)
        b = np.asarray(b, dtype=np.uint8)
        if a.shape[-1] != b.shape[0]:
            raise ValueError(f"shape mismatch: {a.shape} @ {b.shape}")
        la = _LOG[a.astype(np.int32)]
        out = np.zeros((a.shape[0], b.shape[1]), dtype=np.uint8)
        # Accumulate one rank-1 update per inner index; XOR is the field add.
        for k in range(a.shape[1]):
            bk = b[k]
            nz = bk != 0
            if not np.any(nz):
                continue
            prod = _EXP[(la[:, k : k + 1] + _LOG[bk.astype(np.int32)][None, :]) % 255]
            prod = np.where((a[:, k : k + 1] == 0) | (bk[None, :] == 0), 0, prod)
            out ^= prod.astype(np.uint8)
        return out

    @staticmethod
    def mat_inv(m: np.ndarray) -> np.ndarray:
        """Inverse of a square matrix over GF(256) by Gauss-Jordan."""
        m = np.array(m, dtype=np.uint8)
        n = m.shape[0]
        if m.shape != (n, n):
            raise ValueError(f"matrix must be square, got {m.shape}")
        aug = np.concatenate([m, np.eye(n, dtype=np.uint8)], axis=1)
        for col in range(n):
            pivot = None
            for row in range(col, n):
                if aug[row, col] != 0:
                    pivot = row
                    break
            if pivot is None:
                raise np.linalg.LinAlgError("singular matrix over GF(256)")
            if pivot != col:
                aug[[col, pivot]] = aug[[pivot, col]]
            inv_p = GF256.inv(int(aug[col, col]))
            aug[col] = GF256.mul(aug[col], inv_p)
            for row in range(n):
                if row != col and aug[row, col] != 0:
                    factor = int(aug[row, col])
                    aug[row] ^= GF256.mul(aug[col], factor)
        return aug[:, n:]

    @staticmethod
    def vandermonde(rows: int, cols: int) -> np.ndarray:
        """V[i, j] = alpha^(i*j) with alpha the field generator; any
        ``cols`` rows are linearly independent for rows <= 255."""
        if rows > 255:
            raise ValueError("at most 255 rows for distinct evaluation points")
        v = np.zeros((rows, cols), dtype=np.uint8)
        # Row i evaluates the monomials 1, x, x^2, ... at x_i = alpha^i;
        # the x_i are pairwise distinct for i < 255.
        for i in range(rows):
            x = int(_EXP[i])
            acc = 1
            for j in range(cols):
                v[i, j] = acc
                acc = GF256.mul(acc, x)
        return v
