"""Maximum Distance Separable (MDS) erasure coding for UnoRC.

- :mod:`repro.coding.gf256` — vectorized GF(2^8) field arithmetic.
- :mod:`repro.coding.reed_solomon` — systematic Reed-Solomon (n, k) codes
  built from a Vandermonde matrix reduced to systematic form; any k of the
  n symbols reconstruct the data (the MDS property the paper relies on).
- :mod:`repro.coding.block` — block framing: splitting a byte stream into
  (x data + y parity) packet blocks and reassembling it.
"""

from repro.coding.gf256 import GF256
from repro.coding.reed_solomon import ReedSolomon
from repro.coding.block import BlockCodec, BlockConfig

__all__ = ["GF256", "ReedSolomon", "BlockCodec", "BlockConfig"]
