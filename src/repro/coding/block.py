"""Block framing: a byte stream as (x data + y parity) packet blocks.

UnoRC divides each inter-DC message into blocks of ``n = x + y`` packets
(paper default (8, 2)). This module provides:

- :class:`BlockConfig`: the (x, y) scheme plus derived helpers used by
  both the real codec and the simulator's count-based bookkeeping;
- :class:`BlockCodec`: actual end-to-end encode/decode of message bytes
  through Reed-Solomon, used by examples/tests to demonstrate that the
  recovery the simulator models combinatorially is real.

Within the simulator, packets carry no payload bytes; UnoRC tracks *which*
block positions arrived and applies the MDS property (any x of n suffice)
— see :mod:`repro.core.unorc`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.coding.reed_solomon import ReedSolomon


@dataclass(frozen=True)
class BlockConfig:
    """An (x, y) erasure-coding scheme over MSS-sized packets."""

    data_pkts: int = 8
    parity_pkts: int = 2

    def __post_init__(self) -> None:
        if self.data_pkts < 1:
            raise ValueError("data_pkts must be >= 1")
        if self.parity_pkts < 0:
            raise ValueError("parity_pkts cannot be negative")
        if self.data_pkts + self.parity_pkts > 255:
            raise ValueError("block length exceeds RS limit of 255")

    @property
    def block_pkts(self) -> int:
        return self.data_pkts + self.parity_pkts

    @property
    def overhead(self) -> float:
        """Extra transmission fraction, e.g. 0.25 for (8, 2)."""
        return self.parity_pkts / self.data_pkts

    def block_of_seq(self, seq: int) -> int:
        """Which block a data sequence number belongs to."""
        return seq // self.data_pkts

    def n_blocks(self, total_data_pkts: int) -> int:
        return (total_data_pkts + self.data_pkts - 1) // self.data_pkts

    def data_pkts_in_block(self, block_id: int, total_data_pkts: int) -> int:
        """Data packets in ``block_id`` (the final block may be short)."""
        start = block_id * self.data_pkts
        if start >= total_data_pkts:
            raise ValueError(f"block {block_id} beyond message end")
        return min(self.data_pkts, total_data_pkts - start)

    def recoverable(self, received: int, block_data_pkts: int) -> bool:
        """True when a block with ``block_data_pkts`` data packets can be
        decoded after receiving ``received`` distinct packets of it."""
        return received >= block_data_pkts


class BlockCodec:
    """Encode/decode real message bytes through per-block Reed-Solomon."""

    def __init__(self, config: BlockConfig, mss: int):
        if mss <= 0:
            raise ValueError("mss must be positive")
        self.config = config
        self.mss = mss
        self._rs_cache: dict[int, ReedSolomon] = {}

    def _rs(self, data_pkts: int) -> ReedSolomon:
        rs = self._rs_cache.get(data_pkts)
        if rs is None:
            rs = ReedSolomon(data_pkts, self.config.parity_pkts)
            self._rs_cache[data_pkts] = rs
        return rs

    def encode_message(self, message: bytes) -> list[list[bytes]]:
        """Split ``message`` into blocks; each block is the list of its
        n shard payloads (data shards zero-padded to MSS, then parity)."""
        if not message:
            raise ValueError("cannot encode an empty message")
        mss = self.mss
        x = self.config.data_pkts
        pkts = [message[i : i + mss] for i in range(0, len(message), mss)]
        blocks = []
        for b in range(0, len(pkts), x):
            group = pkts[b : b + x]
            padded = [p.ljust(mss, b"\0") for p in group]
            rs = self._rs(len(group))
            blocks.append(rs.encode(padded))
        return blocks

    def decode_message(
        self,
        received_blocks: list[dict[int, bytes]],
        message_len: int,
    ) -> bytes:
        """Reassemble the original message from per-block shard subsets."""
        if message_len <= 0:
            raise ValueError("message_len must be positive")
        mss = self.mss
        x = self.config.data_pkts
        total_pkts = (message_len + mss - 1) // mss
        out = bytearray()
        for block_id, shards in enumerate(received_blocks):
            start = block_id * x
            block_data = min(x, total_pkts - start)
            rs = self._rs(block_data)
            data = rs.decode(shards)
            for shard in data:
                out.extend(shard)
        return bytes(out[:message_len])
