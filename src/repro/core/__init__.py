"""The paper's contribution: Uno.

- :mod:`repro.core.params` — the parameter table (paper Table 2).
- :mod:`repro.core.unocc` — UnoCC congestion control (Algorithm 1):
  per-ACK additive increase, per-epoch multiplicative decrease with
  phantom/physical discrimination, and Quick Adapt.
- :mod:`repro.core.unolb` — UnoLB subflow load balancing (Algorithm 2).
- :mod:`repro.core.unorc` — UnoRC reliable connectivity: erasure-coded
  blocks, receiver block timers, NACKs, block-complete ACKs.
- :mod:`repro.core.uno` — convenience factories composing the above.
"""

from repro.core.params import UnoParams
from repro.core.unocc import UnoCC, UnoCCConfig
from repro.core.unolb import UnoLB
from repro.core.unorc import UnoRCReceiver, UnoRCSender, UnoRCConfig
from repro.core.uno import start_uno_flow

__all__ = [
    "UnoParams",
    "UnoCC",
    "UnoCCConfig",
    "UnoLB",
    "UnoRCSender",
    "UnoRCReceiver",
    "UnoRCConfig",
    "start_uno_flow",
]
