"""The paper's parameter table (Table 2) as a single config object.

Derived quantities (BDPs, K, alpha in bytes, epoch period) are computed
from the primary parameters so experiments can change one RTT or link
rate and keep everything consistent.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.queues import PhantomQueueConfig, REDConfig
from repro.sim.units import KIB, MIB, US, MS, bdp_bytes


@dataclass(frozen=True)
class UnoParams:
    """Default experiment parameters per paper Table 2 / section 5.1."""

    link_gbps: float = 100.0
    mtu_bytes: int = 4096
    intra_rtt_ps: int = 14 * US
    inter_rtt_ps: int = 2 * MS
    queue_bytes: int = 1 * MIB           # per-port switch buffer
    red_min_frac: float = 0.25
    red_max_frac: float = 0.75
    alpha_frac_of_bdp: float = 0.001     # UnoCC AI factor
    qa_beta: float = 0.5                 # UnoCC QA factor
    k_fraction_of_intra_bdp: float = 1.0 / 7.0  # UnoCC MD constant
    phantom_drain_fraction: float = 0.9
    ec_data_pkts: int = 8                # (8, 2) erasure coding
    ec_parity_pkts: int = 2
    dc_to_wan_ratio: float = 4.0         # realistic workload traffic mix
    # Retransmission-timer knobs (transport defaults; exposed so failure
    # experiments can tighten the backoff cap for the whole Uno stack).
    min_rto_ps: int = 50 * US
    max_rto_ps: int = 10 * MS
    rto_backoff_max: int = 16

    def __post_init__(self) -> None:
        if self.intra_rtt_ps <= 0 or self.inter_rtt_ps <= 0:
            raise ValueError("RTTs must be positive")
        if self.inter_rtt_ps < self.intra_rtt_ps:
            raise ValueError("inter-DC RTT must be >= intra-DC RTT")
        if self.link_gbps <= 0:
            raise ValueError("link bandwidth must be positive")
        if self.mtu_bytes <= 0:
            raise ValueError("MTU must be positive")
        if self.min_rto_ps <= 0 or self.max_rto_ps < self.min_rto_ps:
            raise ValueError("need 0 < min_rto_ps <= max_rto_ps")
        if self.rto_backoff_max < 1:
            raise ValueError("rto_backoff_max must be >= 1")

    # -- derived ------------------------------------------------------------

    @property
    def intra_bdp_bytes(self) -> int:
        return bdp_bytes(self.intra_rtt_ps, self.link_gbps)

    @property
    def inter_bdp_bytes(self) -> int:
        return bdp_bytes(self.inter_rtt_ps, self.link_gbps)

    @property
    def k_bytes(self) -> float:
        """UnoCC's MD constant K = intra-DC BDP / 7 (Table 2)."""
        return self.k_fraction_of_intra_bdp * self.intra_bdp_bytes

    @property
    def rtt_ratio(self) -> float:
        return self.inter_rtt_ps / self.intra_rtt_ps

    def bdp_for(self, is_inter_dc: bool) -> int:
        return self.inter_bdp_bytes if is_inter_dc else self.intra_bdp_bytes

    def base_rtt_for(self, is_inter_dc: bool) -> int:
        return self.inter_rtt_ps if is_inter_dc else self.intra_rtt_ps

    def red(self) -> REDConfig:
        return REDConfig(min_frac=self.red_min_frac, max_frac=self.red_max_frac)

    def phantom(self, mark_threshold_bytes: int | None = None) -> PhantomQueueConfig:
        """Phantom queue config.

        The phantom queue must signal *before* the physical queue does
        (HULL's premise, kept by the paper): its marking threshold
        defaults to one intra-DC BDP (8-MTU floor), which sits below the
        physical RED minimum (25% of the 1 MiB-class buffers) at the
        paper's scales. RED-style probabilistic marking up to 3x the
        threshold keeps marking fractional, so flows ramping through the
        band are paced rather than slammed. Phantom occupancy is virtual
        and adds no physical delay; it only paces the aggregate below the
        0.9x drain rate.
        """
        if mark_threshold_bytes is None:
            mark_threshold_bytes = max(8 * self.mtu_bytes, self.intra_bdp_bytes)
        return PhantomQueueConfig(
            drain_fraction=self.phantom_drain_fraction,
            mark_threshold_bytes=mark_threshold_bytes,
        )
