"""Composition helpers: launch flows under the full Uno stack.

``start_uno_flow`` wires UnoCC + (for inter-DC flows) UnoRC's erasure
coding and UnoLB's subflow balancing, deriving every constant from a
:class:`repro.core.params.UnoParams`, so experiments and examples launch
paper-faithful flows in one call.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.coding.block import BlockConfig
from repro.core.params import UnoParams
from repro.core.unocc import UnoCC, UnoCCConfig
from repro.core.unolb import UnoLB
from repro.core.unorc import UnoRCConfig, UnoRCReceiver, UnoRCSender
from repro.sim.engine import Simulator
from repro.sim.host import Host
from repro.sim.network import Network
from repro.transport.base import (
    DEFAULT_RECEIVER_IDLE_TIMEOUT_PS,
    AbortPolicy,
    FixedEntropy,
    PathSelector,
    Receiver,
    Sender,
    start_flow,
)


def make_unocc(params: UnoParams, is_inter_dc: bool) -> UnoCC:
    """A fresh UnoCC instance configured per the paper's Table 2."""
    return UnoCC(
        UnoCCConfig(
            alpha_frac_of_bdp=params.alpha_frac_of_bdp,
            beta=params.qa_beta,
            k_bytes=params.k_bytes,
            # Unified granularity: the epoch period tracks the intra-DC
            # RTT for *both* intra- and inter-DC flows.
            epoch_period_ps=params.intra_rtt_ps,
        )
    )


def start_uno_flow(
    sim: Simulator,
    net: Network,
    src: Host,
    dst: Host,
    size_bytes: int,
    params: UnoParams,
    *,
    start_ps: Optional[int] = None,
    use_rc: bool = True,
    use_lb: bool = True,
    on_complete: Optional[Callable[[Sender], None]] = None,
    seed: int = 0,
    base_rtt_ps: Optional[int] = None,
    path: Optional[PathSelector] = None,
    abort: Optional[AbortPolicy] = None,
    receiver_idle_timeout_ps: Optional[int] = DEFAULT_RECEIVER_IDLE_TIMEOUT_PS,
) -> Sender:
    """Launch one flow under Uno.

    Inter-DC flows (src/dst in different DCs) get UnoRC erasure coding and
    UnoLB subflows; intra-DC flows run plain UnoCC (the paper applies EC
    to inter-DC traffic only, section 4.2). ``use_rc`` / ``use_lb`` let
    ablation experiments (Fig 9, Fig 13) turn pieces off; ``path``
    overrides the path selector entirely (e.g. to compare against PLB).
    """
    is_inter = src.dc != dst.dc
    rtt = base_rtt_ps if base_rtt_ps is not None else params.base_rtt_for(is_inter)
    cc = make_unocc(params, is_inter)
    block = BlockConfig(params.ec_data_pkts, params.ec_parity_pkts)
    if path is None:
        if use_lb:
            path = UnoLB(n_subflows=block.block_pkts)
        else:
            path = FixedEntropy()
    common = dict(
        mss=params.mtu_bytes,
        base_rtt_ps=rtt,
        line_gbps=params.link_gbps,
        min_rto_ps=params.min_rto_ps,
        max_rto_ps=params.max_rto_ps,
        rto_backoff_max=params.rto_backoff_max,
        abort=abort,
        path=path,
        on_complete=on_complete,
        seed=seed,
        is_inter_dc=is_inter,
        start_ps=start_ps,
    )
    if use_rc and is_inter:
        rc = UnoRCConfig(block=block)
        return start_flow(
            sim,
            net,
            cc,
            src,
            dst,
            size_bytes,
            sender_cls=UnoRCSender,
            receiver_cls=UnoRCReceiver,
            receiver_kwargs={
                "rc": rc,
                "idle_timeout_ps": receiver_idle_timeout_ps,
            },
            rc=rc,
            **common,
        )
    return start_flow(
        sim,
        net,
        cc,
        src,
        dst,
        size_bytes,
        receiver_kwargs={"idle_timeout_ps": receiver_idle_timeout_ps},
        **common,
    )
