"""UnoCC: the paper's unified congestion control (Algorithm 1).

Three congestion states drive three mechanisms:

1. **Uncongested** — per-ACK additive increase:
   ``cwnd += alpha * bytes_acked / cwnd`` with ``alpha = 0.001 * BDP``,
   i.e. one alpha per RTT at steady state.
2. **Congested** — per-epoch multiplicative decrease:
   ``cwnd *= 1 - MD_ECN * MD_scale`` where
   ``MD_ECN = E * 4K / (K + BDP)`` (E = EWMA of the per-epoch ECN-marked
   fraction, K = intra-DC BDP / 7). When the marking came from phantom
   queues only — ECN set but the relative delay shows empty physical
   queues — the reduction is gentled by ``MD_scale *= 0.3``; physical
   congestion resets ``MD_scale = 1``.
3. **Extremely congested** — Quick Adapt: once per RTT, if the bytes
   ACKed over the window are below ``beta * cwnd``, snap the window down
   to exactly the bytes that did get through, then skip one RTT of
   QA/MD so the correction isn't compounded.

The unified-granularity mechanism: the epoch period is proportional to
the **intra-DC** RTT for *all* flows, so inter-DC flows respond to
congestion as often as intra-DC ones (the whole point of section 4.1.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.sim.engine import EventHandle
from repro.sim.packet import Packet
from repro.transport.base import CongestionControl, Sender
from repro.transport.epochs import EpochTracker


@dataclass(frozen=True)
class UnoCCConfig:
    alpha_frac_of_bdp: float = 0.001      # AI factor (fraction of flow BDP)
    beta: float = 0.5                     # QA trigger ratio
    k_bytes: float = 0.0                  # MD constant; must be set (> 0)
    epoch_period_ps: int = 14_000_000     # proportional to intra-DC RTT
    md_gentle_scale: float = 0.3          # MD_scale multiplier for phantom-only
    md_scale_floor: float = 0.3**3        # gentleness floor: MD never fully off
    ewma_g: float = 1.0 / 16.0            # gain for E (ECN fraction EWMA)
    delay_zero_thresh_ps: int = 0         # 0 = auto (4 MTU serializations)
    init_cwnd_pkts: int = 10              # floor on the initial window
    init_cwnd_frac_of_bdp: float = 0.0    # optional BDP-proportional start
    qa_min_cwnd_pkts: int = 8             # QA only judges multi-packet windows
    use_slow_start: bool = True           # double per RTT until first signal
    max_cwnd_frac_of_bdp: float = 2.0     # window cap (BDP + queue headroom)
    max_md: float = 0.5                   # clamp on a single MD step
    use_pacing: bool = True

    def __post_init__(self) -> None:
        if self.alpha_frac_of_bdp <= 0:
            raise ValueError("alpha fraction must be positive")
        if not (0 < self.beta <= 1):
            raise ValueError("beta must be in (0, 1]")
        if self.k_bytes <= 0:
            raise ValueError("k_bytes must be set to a positive value")
        if self.epoch_period_ps <= 0:
            raise ValueError("epoch period must be positive")
        if not (0 < self.md_gentle_scale <= 1):
            raise ValueError("md_gentle_scale must be in (0, 1]")


class UnoCC(CongestionControl):
    """The paper's Algorithm 1 congestion controller (see module docstring)."""
    def __init__(self, config: UnoCCConfig):
        self.config = config
        self.ecn_ewma = 0.0        # E in the paper
        self.md_scale = 1.0
        self._tracker = EpochTracker(period_ps=config.epoch_period_ps)
        self._alpha_bytes = 0.0
        self._delay_thresh_ps = config.delay_zero_thresh_ps
        # Quick Adapt state.
        self._qa_handle: Optional[EventHandle] = None
        self._qa_bytes_start = 0
        self._qa_started = False
        self._skip_until_ps = -1
        self._slow_start = False
        self._max_cwnd = float("inf")
        self.qa_triggers = 0
        self.md_events = 0
        self.gentle_md_events = 0

    # ------------------------------------------------------------------

    def on_init(self, sender: Sender) -> None:
        cfg = self.config
        sender.cwnd = float(
            max(
                cfg.init_cwnd_pkts * sender.mss,
                cfg.init_cwnd_frac_of_bdp * sender.bdp_bytes,
            )
        )
        self._slow_start = cfg.use_slow_start
        self._max_cwnd = cfg.max_cwnd_frac_of_bdp * sender.bdp_bytes
        self._alpha_bytes = cfg.alpha_frac_of_bdp * sender.bdp_bytes
        if self._delay_thresh_ps <= 0:
            # "delay == 0": less than ~4 packets' worth of physical
            # queuing. The threshold must sit *below* the standing queue a
            # frozen gentle-MD regime would sustain, so that real physical
            # buildup reliably resets MD_scale to 1 — this is the
            # self-regulating loop of Algorithm 1 (gentle while phantom-
            # only, full strength as soon as physical queues form).
            # Serialization time of 4 MSS at line rate. Divide in float:
            # integer-truncating a sub-1 Gbps line rate (wire-path rate
            # caps) would divide by zero.
            self._delay_thresh_ps = int(4 * sender.mss * 8000 / sender.line_gbps)
        self._qa_bytes_start = 0
        self._qa_started = False  # QA windows begin with the first ACK
        if cfg.use_pacing:
            sender.pacing_rate_gbps = sender.line_gbps

    def on_done(self, sender: Sender) -> None:
        if self._qa_handle is not None:
            self._qa_handle.cancel()
            self._qa_handle = None

    # -- AIMD ------------------------------------------------------------

    def on_ack(self, sender: Sender, pkt: Packet, rtt_ps: int, ecn: bool) -> None:
        cfg = self.config
        if not self._qa_started:
            # First feedback from the network: start the QA cadence now so
            # the first window is not judged before any ACK could arrive.
            self._qa_started = True
            self._qa_bytes_start = sender.stats.bytes_acked
            self._schedule_qa(sender)
        if self._slow_start:
            # Exit on *persistent* marking (an epoch with a majority of
            # marked ACKs — handled in _on_epoch) rather than the first
            # marked packet: with phantom queues a flow sharing a loaded
            # bottleneck sees sporadic marks from its very first RTT, and
            # a single-mark exit strands slow (inter-DC) flows at tiny
            # windows that additive increase takes seconds to grow.
            if not ecn:
                sender.cwnd += pkt.payload  # double per RTT
                if sender.cwnd >= self._max_cwnd:
                    sender.cwnd = self._max_cwnd
                    self._slow_start = False
        elif not ecn:
            sender.cwnd += self._alpha_bytes * pkt.payload / sender.cwnd
        if sender.cwnd > self._max_cwnd:
            sender.cwnd = self._max_cwnd
        rel_delay = max(0, rtt_ps - (sender.min_rtt_ps or sender.base_rtt_ps))
        summary = self._tracker.on_ack(
            sender.sim.now, pkt.echo_sent_ps, ecn, rel_delay
        )
        if summary is not None:
            self._on_epoch(sender, summary)
        if cfg.use_pacing:
            sender.pacing_rate_gbps = min(
                sender.line_gbps, sender.rate_estimate_gbps
            )

    def _on_epoch(self, sender: Sender, summary) -> None:
        cfg = self.config
        g = cfg.ewma_g
        frac = summary.ecn_fraction
        self.ecn_ewma = (1 - g) * self.ecn_ewma + g * frac
        obs = sender.sim.obs
        if obs is not None:
            obs.metrics.counter("unocc.epochs").inc()
            ev = obs.events
            if ev is not None and ev.wants("epoch"):
                ev.emit("epoch", "summary", t=sender.sim.now,
                        flow=sender.flow_id, ecn_frac=frac,
                        ecn_ewma=self.ecn_ewma, md_scale=self.md_scale,
                        cwnd=sender.cwnd)
        if self._slow_start:
            if frac >= 0.5:
                self._slow_start = False  # persistent congestion: exit SS
            else:
                return  # keep ramping; no MD during slow start
        if frac <= 0:
            return
        if sender.sim.now <= self._skip_until_ps:
            return  # QA just fired; let the network settle one RTT
        if summary.max_rel_delay_ps <= self._delay_thresh_ps:
            # Phantom queues congested, physical queues empty: be gentle —
            # but never *zero*: without a floor, consecutive phantom-only
            # epochs drive MD_scale to 0 and the control loop freezes
            # (no MD, and with full marking no AI either).
            self.md_scale = max(
                cfg.md_scale_floor, self.md_scale * cfg.md_gentle_scale
            )
            self.gentle_md_events += 1
            if obs is not None:
                obs.metrics.counter("unocc.gentle_md_events").inc()
        else:
            self.md_scale = 1.0
        k = cfg.k_bytes
        md_ecn = self.ecn_ewma * (4 * k / (k + sender.bdp_bytes))
        md = min(cfg.max_md, md_ecn * self.md_scale)
        sender.cwnd *= 1 - md
        if sender.cwnd < sender.mss:
            sender.cwnd = float(sender.mss)
        self.md_events += 1
        if obs is not None:
            obs.metrics.counter("unocc.md_events").inc()

    # -- Quick Adapt ------------------------------------------------------

    def _schedule_qa(self, sender: Sender) -> None:
        # 1.5x the RTT estimate: the QA window must contain at least one
        # full round of ACKs even when queuing inflates the true RTT past
        # the smoothed estimate, or healthy flows read as collapsed.
        interval = (3 * max(int(sender.srtt_ps), sender.base_rtt_ps)) // 2
        self._qa_handle = sender.sim.after(interval, self._qa_check, sender)

    def _qa_check(self, sender: Sender) -> None:
        self._qa_handle = None
        if sender.done:
            return
        cfg = self.config
        acked_now = sender.stats.bytes_acked
        acked_in_window = acked_now - self._qa_bytes_start
        self._qa_bytes_start = acked_now
        now = sender.sim.now
        # QA engages once slow start has ended; during the exponential
        # ramp the per-window acked bytes sit exactly at the beta boundary
        # and any overshoot is caught by the ECN exit instead.
        # Windows of only a few packets cannot be judged by per-interval
        # ACK counts — an interval that happens to contain no ACK would
        # read as "extreme congestion" and pin the flow at one MSS.
        if (
            not self._slow_start
            and now > self._skip_until_ps
            and sender.inflight_bytes > 0
            and sender.cwnd >= cfg.qa_min_cwnd_pkts * sender.mss
        ):
            if acked_in_window < sender.cwnd * cfg.beta:
                sender.cwnd = float(max(sender.mss, acked_in_window))
                self._skip_until_ps = now + max(
                    int(sender.srtt_ps), sender.base_rtt_ps
                )
                self.qa_triggers += 1
                obs = sender.sim.obs
                if obs is not None:
                    obs.metrics.counter("unocc.qa_triggers").inc()
                    ev = obs.events
                    if ev is not None and ev.wants("cwnd"):
                        ev.emit("cwnd", "quick_adapt", t=now,
                                flow=sender.flow_id, new=sender.cwnd)
                if cfg.use_pacing:
                    sender.pacing_rate_gbps = min(
                        sender.line_gbps, sender.rate_estimate_gbps
                    )
        self._schedule_qa(sender)

    def on_timeout(self, sender: Sender) -> None:
        # Timeouts indicate severe loss; treat like an extreme QA event.
        self._slow_start = False
        sender.cwnd = float(sender.mss)
        self._skip_until_ps = sender.sim.now + max(
            int(sender.srtt_ps), sender.base_rtt_ps
        )
