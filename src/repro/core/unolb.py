"""UnoLB: subflow-level load balancing (paper Algorithm 2).

The flow keeps ``n`` subflows, each with its own path entropy (source-port
value hashed by ECMP switches). Outgoing packets round-robin across the
subflows, so the packets of one erasure-coding block spread over ``n``
distinct paths — a single link failure then costs at most ~1/n of a block,
which the parity absorbs.

On a NACK or a sender timeout (a bad path), and at most once per base RTT,
``update_subflow`` replaces the stalest subflow's entropy with a fresh
one. Retransmissions are steered onto the subflow that most recently
received an ACK, i.e. a path known-good right now, per the paper:
"re-routes the affected flows by randomly selecting a subflow that has
recently received ACKs".
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List

from repro.sim.packet import Packet
from repro.transport.base import PathSelector, Sender

if TYPE_CHECKING:  # pragma: no cover
    pass


class UnoLB(PathSelector):
    """Subflow round-robin path selection with adaptive reroute (Algorithm 2)."""
    def __init__(self, n_subflows: int = 10, reroute_min_gap_ps: int = 0):
        if n_subflows < 1:
            raise ValueError("need at least one subflow")
        self.n_subflows = n_subflows
        self.reroute_min_gap_ps = reroute_min_gap_ps  # 0 = use base RTT
        self.entropies: List[int] = []
        self._index = 0
        self._last_ack_ps: Dict[int, int] = {}  # entropy -> last ACK time
        self._last_reroute_ps = -(1 << 62)
        self.reroutes = 0

    # ------------------------------------------------------------------

    def on_init(self, sender: Sender) -> None:
        self.entropies = [sender.rng.getrandbits(16) for _ in range(self.n_subflows)]
        self._last_ack_ps = {e: -1 for e in self.entropies}
        if self.reroute_min_gap_ps <= 0:
            self.reroute_min_gap_ps = sender.base_rtt_ps

    def entropy(self, sender: Sender, pkt: Packet) -> int:
        if pkt.retx > 0:
            return self._recently_acked_entropy(sender)
        value = self.entropies[self._index]
        self._index = (self._index + 1) % self.n_subflows
        return value

    def _recently_acked_entropy(self, sender: Sender) -> int:
        # Among subflows with a recent ACK, pick one at random; fall back
        # to plain round-robin when nothing has been ACKed yet.
        recent = [e for e in self.entropies if self._last_ack_ps.get(e, -1) >= 0]
        if not recent:
            value = self.entropies[self._index]
            self._index = (self._index + 1) % self.n_subflows
            return value
        newest = max(self._last_ack_ps[e] for e in recent)
        horizon = newest - 2 * sender.base_rtt_ps
        fresh = [e for e in recent if self._last_ack_ps[e] >= horizon]
        return fresh[sender.rng.randrange(len(fresh))]

    def on_ack(self, sender: Sender, pkt: Packet, rtt_ps: int, ecn: bool) -> None:
        # The ACK's dport carries the data packet's sport (its subflow).
        self._last_ack_ps[pkt.dport] = sender.sim.now

    def on_nack_or_timeout(self, sender: Sender) -> None:
        now = sender.sim.now
        if now - self._last_reroute_ps <= self.reroute_min_gap_ps:
            return
        self._update_subflow(sender)
        self._last_reroute_ps = now

    def _update_subflow(self, sender: Sender) -> None:
        """Replace the stalest subflow's entropy with a fresh path."""
        stalest_i = 0
        stalest_t = None
        for i, e in enumerate(self.entropies):
            t = self._last_ack_ps.get(e, -1)
            if stalest_t is None or t < stalest_t:
                stalest_t = t
                stalest_i = i
        old = self.entropies[stalest_i]
        self._last_ack_ps.pop(old, None)
        new = sender.rng.getrandbits(16)
        self.entropies[stalest_i] = new
        self._last_ack_ps.setdefault(new, -1)
        self.reroutes += 1
        # getattr: unit tests drive selectors with minimal sender stubs.
        sim = getattr(sender, "sim", None)
        obs = sim.obs if sim is not None else None
        if obs is not None:
            obs.metrics.counter("lb.unolb_reroutes").inc()
            ev = obs.events
            if ev is not None and ev.wants("route"):
                ev.emit("route", "reroute", t=sim.now,
                        flow=sender.flow_id, lb="unolb",
                        old=old, new=new)
