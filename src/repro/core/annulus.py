"""Annulus-style near-source loop on top of UnoCC (extension).

The paper leaves this as future work (footnote 4): "Annulus [59], which
works on top of other schemes ..., could also be used to enhance the
performance of Uno under oversubscribed topologies."

Annulus's idea: congestion that builds *near the source* (before traffic
crosses the datacenter boundary — e.g. at the oversubscribed WAN uplinks)
can be signaled on the short reverse path within the source DC, so the
sender reacts within an intra-DC RTT instead of waiting one inter-DC RTT
for the end-to-end ECN echo.

Mechanics here:

- switches with a :class:`repro.sim.switch.QCNConfig` send a CNP back to
  a data packet's source whenever the chosen egress queue is above the
  QCN threshold (rate-limited per flow);
- :class:`AnnulusUnoCC` reacts to each CNP with a multiplicative cut,
  rate-limited to once per intra-DC RTT, on top of UnoCC's normal loop.

``enable_qcn`` arms the switches of a built topology.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.unocc import UnoCC, UnoCCConfig
from repro.sim.packet import Packet
from repro.sim.switch import QCNConfig
from repro.transport.base import Sender


@dataclass(frozen=True)
class AnnulusConfig:
    cnp_md: float = 0.25             # window cut per reacted CNP
    reaction_interval_ps: int = 0    # 0 = one intra-DC RTT (epoch period)

    def __post_init__(self) -> None:
        if not (0.0 < self.cnp_md < 1.0):
            raise ValueError(f"cnp_md={self.cnp_md} outside (0, 1)")
        if self.reaction_interval_ps < 0:
            raise ValueError("reaction interval cannot be negative")


class AnnulusUnoCC(UnoCC):
    """UnoCC plus a fast near-source reaction to CNPs."""

    def __init__(self, config: UnoCCConfig,
                 annulus: AnnulusConfig = AnnulusConfig()):
        super().__init__(config)
        self.annulus = annulus
        self._last_cnp_reaction_ps = -(1 << 62)
        self.cnp_reactions = 0

    def on_cnp(self, sender: Sender, pkt: Packet) -> None:
        interval = self.annulus.reaction_interval_ps or self.config.epoch_period_ps
        now = sender.sim.now
        if now - self._last_cnp_reaction_ps < interval:
            return
        self._last_cnp_reaction_ps = now
        self._slow_start = False
        sender.cwnd = max(
            float(sender.mss), sender.cwnd * (1 - self.annulus.cnp_md)
        )
        self.cnp_reactions += 1
        if self.config.use_pacing:
            sender.pacing_rate_gbps = min(
                sender.line_gbps, sender.rate_estimate_gbps
            )


def enable_qcn(net, config: QCNConfig = QCNConfig(),
               only_switch_names: list[str] | None = None) -> int:
    """Arm QCN on switches of ``net`` (all, or a name subset); returns the
    number of switches armed."""
    armed = 0
    for sw in net.switches:
        if only_switch_names is not None and sw.name not in only_switch_names:
            continue
        sw.qcn = config
        armed += 1
    return armed
