"""UnoRC: reliable connectivity via erasure-coded blocks (paper 4.2).

Sender side (:class:`UnoRCSender`): each inter-DC message is cut into
blocks of ``x`` data packets; after the last data packet of a block is
first transmitted, ``y`` parity packets for that block are scheduled.
A block is *complete* once the receiver provably holds the data — either
every data packet was individually ACKed, or the receiver announced it
decoded the block (block-complete ACK). The flow finishes when all blocks
are complete; parity still in flight is then irrelevant, and parity (or
data) packets still queued for a block that completed meanwhile are
skipped rather than sent — they could no longer help the receiver.

Receiver side (:class:`UnoRCReceiver`): ACKs every packet (congestion
control feedback), tracks distinct block positions received, and arms a
timer on each block's first packet set to the estimated maximum queuing +
transmission delay. If the timer fires before ``x`` of the ``n`` packets
arrived, the block is unrecoverable and a NACK is sent; the sender then
retransmits the block's missing data packets and lets the load balancer
reroute (Algorithm 2). If the block becomes decodable while some data
packets are missing (recovered from parity), a block-complete ACK tells
the sender not to wait for them.

The payload-level decode itself is exercised by :mod:`repro.coding`; in
the simulator blocks are tracked combinatorially (any ``x`` of ``n``
distinct positions decode — the MDS property).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.coding.block import BlockConfig
from repro.sim.engine import EventHandle, Simulator
from repro.sim.host import Host
from repro.sim.packet import ACK, Packet, make_nack
from repro.transport.base import (
    DEFAULT_RECEIVER_IDLE_TIMEOUT_PS,
    Receiver,
    Sender,
)

BLOCK_COMPLETE_SEQ = -2  # control-ACK sentinel sequence
_ACK_SIZE = 64


@dataclass(frozen=True)
class UnoRCConfig:
    block: BlockConfig = field(default_factory=BlockConfig)
    block_timeout_ps: int = 0      # 0 = auto: the flow's base RTT
    nack_backoff: float = 2.0
    max_nacks_per_block: int = 8

    def __post_init__(self) -> None:
        if self.nack_backoff < 1.0:
            raise ValueError("nack backoff must be >= 1")
        if self.max_nacks_per_block < 1:
            raise ValueError("max_nacks_per_block must be >= 1")


class UnoRCSender(Sender):
    """Sender half of UnoRC: block framing, parity scheduling, NACK handling."""
    def __init__(self, *args, rc: UnoRCConfig = UnoRCConfig(), **kwargs):
        self.rc = rc
        super().__init__(*args, **kwargs)
        # Block state is lazy (dicts/sets keyed by block id): a 64 GiB
        # flow has millions of blocks and preallocating per-block arrays
        # dominates setup time.
        self.n_blocks = rc.block.n_blocks(self.total_data_pkts)
        self._block_data_acked: Dict[int, int] = {}
        self._block_complete: Set[int] = set()
        self._blocks_completed = 0
        self._parity_queue: List[int] = []
        self._parity_enqueued: Set[int] = set()

    # -- sequence layout ---------------------------------------------------

    def block_data_n(self, block_id: int) -> int:
        """Data packets in ``block_id`` (the final block may be short)."""
        return self.rc.block.data_pkts_in_block(block_id, self.total_data_pkts)

    def parity_base(self, block_id: int) -> int:
        return self.total_data_pkts + block_id * self.rc.block.parity_pkts

    def block_of(self, seq: int) -> int:
        if seq < self.total_data_pkts:
            return seq // self.rc.block.data_pkts
        return (seq - self.total_data_pkts) // self.rc.block.parity_pkts

    # -- parity scheduling ---------------------------------------------------

    def _decorate(self, pkt: Packet) -> None:
        seq = pkt.seq
        b = self.block_of(seq)
        pkt.block_id = b
        if seq < self.total_data_pkts:
            pkt.block_pos = seq - b * self.rc.block.data_pkts
            # Last data packet of the block sent for the first time:
            # schedule this block's parity packets.
            y = self.rc.block.parity_pkts
            if (
                y > 0
                and b not in self._parity_enqueued
                and pkt.retx == 0
                and pkt.block_pos == self.block_data_n(b) - 1
            ):
                self._parity_enqueued.add(b)
                base = self.parity_base(b)
                self._parity_queue.extend(range(base, base + y))
                if self._obs is not None:
                    self._obs.metrics.counter("ec.blocks_encoded").inc()
        else:
            offset = (seq - self.total_data_pkts) % self.rc.block.parity_pkts
            pkt.block_pos = self.block_data_n(b) + offset

    def _codec_has_parity(self) -> bool:
        return bool(self._parity_queue)

    def _peek_parity(self) -> Optional[int]:
        return self._parity_queue[0] if self._parity_queue else None

    def _pop_parity(self) -> int:
        return self._parity_queue.pop(0)

    # -- block completion ------------------------------------------------------

    def _after_ack(self, pkt: Packet) -> None:
        seq = pkt.seq
        if seq >= self.total_data_pkts:
            return  # parity ACKs only feed congestion control
        b = self.block_of(seq)
        if b in self._block_complete:
            return
        acked = self._block_data_acked.get(b, 0) + 1
        self._block_data_acked[b] = acked
        if acked >= self.block_data_n(b):
            self._complete_block(b)

    def _on_control_ack(self, pkt: Packet) -> None:
        if pkt.seq == BLOCK_COMPLETE_SEQ and pkt.block_id is not None:
            self._complete_block(pkt.block_id)

    def _complete_block(self, b: int) -> None:
        if b >= self.n_blocks or b in self._block_complete:
            return
        self._block_complete.add(b)
        self._block_data_acked.pop(b, None)
        self._blocks_completed += 1
        if self._obs is not None:
            self._obs.metrics.counter("ec.blocks_completed").inc()
        # Retire every unacked sequence of the block: the data is proven
        # delivered (directly or decoded), so nothing needs retransmitting.
        x = self.rc.block.data_pkts
        y = self.rc.block.parity_pkts
        seqs = list(range(b * x, b * x + self.block_data_n(b)))
        base = self.parity_base(b)
        seqs.extend(range(base, base + y))
        for seq in seqs:
            if seq in self.acked_seqs:
                continue
            sent = self.outstanding.pop(seq, None)
            self.acked_seqs.add(seq)
            if sent is not None:
                if seq in self._lost_seqs:
                    self._lost_seqs.discard(seq)  # bytes already retired
                else:
                    self.inflight_bytes -= sent.payload

    def _all_delivered(self) -> bool:
        return self._blocks_completed >= self.n_blocks

    # -- NACK handling ------------------------------------------------------------

    def _on_nack(self, pkt: Packet) -> None:
        b = pkt.nack_block
        if b is None or b >= self.n_blocks or b in self._block_complete:
            return
        self.stats.nacks_received += 1
        if self._counters is not None:
            self._counters["nacks_received"].inc()
        x = self.rc.block.data_pkts
        # Only retransmit copies old enough that they cannot merely be in
        # flight or queued behind congestion: the NACK reflects what the
        # receiver lacked ~one-way ago, so anything sent within the last
        # smoothed RTT may still arrive on its own. Without this gate a
        # congested incast produces a duplicate storm that collapses
        # goodput for every flow sharing the bottleneck.
        age_cutoff = self.sim.now - int(self.srtt_ps)
        for seq in range(b * x, b * x + self.block_data_n(b)):
            if seq in self.acked_seqs:
                continue
            sent = self.outstanding.get(seq)
            if sent is None or sent.sent_ps <= age_cutoff:
                self.queue_retransmit(seq)
        self.path.on_nack_or_timeout(self)
        self._maybe_send()


class UnoRCReceiver(Receiver):
    """Receiver half of UnoRC: block bookkeeping, timers, NACKs, block ACKs."""
    def __init__(
        self,
        sim: Simulator,
        host: Host,
        flow_id: int,
        rc: UnoRCConfig = UnoRCConfig(),
        idle_timeout_ps: Optional[int] = DEFAULT_RECEIVER_IDLE_TIMEOUT_PS,
    ):
        super().__init__(sim, host, flow_id, idle_timeout_ps=idle_timeout_ps)
        self.rc = rc
        self._timeout_ps = rc.block_timeout_ps
        self._total_data_pkts: Optional[int] = None
        self._positions: Dict[int, Set[int]] = {}
        self._complete: Set[int] = set()
        self._timers: Dict[int, EventHandle] = {}
        self._nack_counts: Dict[int, int] = {}
        self.nacks_sent = 0
        self.blocks_decoded_with_parity = 0
        self._sender_src: Optional[int] = None
        self._obs = sim.obs
        self._events = self._obs.events if self._obs is not None else None

    def attach_sender(self, sender: UnoRCSender) -> None:
        """Learn the block layout from the sender (both endpoints are
        created by the same harness; this mirrors a connection handshake)."""
        self._total_data_pkts = sender.total_data_pkts
        self._sender_src = sender.src.node_id
        if self._timeout_ps <= 0:
            self._timeout_ps = sender.base_rtt_ps

    def _block_need(self, b: int) -> Optional[int]:
        """Distinct packets required to decode block ``b``."""
        if self._total_data_pkts is None:
            return None
        if b >= self.rc.block.n_blocks(self._total_data_pkts):
            return None
        return self.rc.block.data_pkts_in_block(b, self._total_data_pkts)

    # ------------------------------------------------------------------

    def handle_data(self, pkt: Packet) -> None:
        self.send_ack(pkt)
        b = pkt.block_id
        if b is None or b in self._complete:
            return
        positions = self._positions.get(b)
        if positions is None:
            positions = set()
            self._positions[b] = positions
        positions.add(pkt.block_pos)
        # (Re-)arm the block timer: it detects an *idle gap* — timeout
        # with no further packets of an incomplete block — rather than
        # absolute block age, so a window-limited sender pausing mid-block
        # does not trigger spurious NACKs.
        timer = self._timers.pop(b, None)
        if timer is not None:
            timer.cancel()
        self._arm_timer(b)
        need = self._block_need(b)
        if need is not None and len(positions) >= need:
            self._finish_block(b, positions, need)

    def _finish_block(self, b: int, positions: Set[int], need: int) -> None:
        self._complete.add(b)
        timer = self._timers.pop(b, None)
        if timer is not None:
            timer.cancel()
        missing_data = [p for p in range(need) if p not in positions]
        del self._positions[b]
        if missing_data:
            # Data recovered from parity: tell the sender to stop waiting.
            self.blocks_decoded_with_parity += 1
            if self._obs is not None:
                self._obs.metrics.counter("ec.blocks_recovered").inc()
            self._send_block_complete(b)

    def _send_block_complete(self, b: int) -> None:
        assert self._sender_src is not None, "receiver not attached"
        ack = Packet(
            ACK,
            self.flow_id,
            src=self.host.node_id,
            dst=self._sender_src,
            seq=BLOCK_COMPLETE_SEQ,
            size=_ACK_SIZE,
        )
        ack.block_id = b
        self.host.send(ack)

    def close(self) -> None:
        """Cancel block timers along with the base idle timer: an
        unregistered receiver (flow done, sender aborted, or host crash)
        must leave nothing armed on the event loop."""
        super().close()
        for timer in self._timers.values():
            timer.cancel()
        self._timers.clear()

    # -- block timer ------------------------------------------------------

    def _arm_timer(self, b: int, scale: float = 1.0) -> None:
        delay = int(self._timeout_ps * scale)
        self._timers[b] = self.sim.after(delay, self._timer_fired, b)

    def _timer_fired(self, b: int) -> None:
        self._timers.pop(b, None)
        if b in self._complete:
            return
        count = self._nack_counts.get(b, 0)
        if count >= self.rc.max_nacks_per_block:
            return  # give up NACKing; the sender's RTO is the backstop
        self._nack_counts[b] = count + 1
        self.nacks_sent += 1
        if self._obs is not None:
            self._obs.metrics.counter("ec.nacks_sent").inc()
            ev = self._events
            if ev is not None and ev.wants("nack"):
                ev.emit("nack", "sent", t=self.sim.now,
                        flow=self.flow_id, block=b, attempt=count + 1)
        assert self._sender_src is not None, "receiver not attached"
        nack = make_nack(
            self.flow_id, src=self.host.node_id, dst=self._sender_src, block_id=b
        )
        self.host.send(nack)
        self._arm_timer(b, scale=self.rc.nack_backoff ** self._nack_counts[b])
