"""k-ary fat-tree datacenter topology [5].

For even k: k pods, each with k/2 edge and k/2 aggregation switches;
(k/2)^2 core switches; k/2 hosts per edge switch — k^3/4 hosts total.
Aggregation switch j of every pod connects to cores j*(k/2)..(j+1)*(k/2)-1.
All fabric links share one rate (non-oversubscribed), as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.sim.host import Host
from repro.sim.network import Network
from repro.sim.queues import PhantomQueueConfig, REDConfig
from repro.sim.switch import Switch
from repro.sim.units import MIB
from repro.topology.simple import HOST_QUEUE_BYTES, NO_MARKING


@dataclass(frozen=True)
class FatTreeConfig:
    k: int = 4
    gbps: float = 100.0
    link_prop_ps: int = 1_000_000       # per-hop propagation
    queue_bytes: int = 1 * MIB
    red: Optional[REDConfig] = None
    phantom: Optional[PhantomQueueConfig] = None
    host_queue_bytes: int = HOST_QUEUE_BYTES

    def __post_init__(self) -> None:
        if self.k < 2 or self.k % 2:
            raise ValueError(f"fat-tree arity must be even and >= 2, got k={self.k}")

    @property
    def n_hosts(self) -> int:
        return self.k**3 // 4

    @property
    def n_cores(self) -> int:
        return (self.k // 2) ** 2


class FatTree:
    """One fat-tree DC built inside an existing :class:`Network`."""

    def __init__(
        self,
        net: Network,
        config: FatTreeConfig,
        prefix: str = "dc0",
        dc: int = 0,
        switch_mode: str = "ecmp",
    ):
        self.net = net
        self.config = config
        self.prefix = prefix
        self.dc = dc
        k = config.k
        half = k // 2

        self.cores: List[Switch] = [
            net.add_switch(f"{prefix}.core{c}", mode=switch_mode)
            for c in range(config.n_cores)
        ]
        self.aggs: List[List[Switch]] = []
        self.edges: List[List[Switch]] = []
        self.hosts: List[Host] = []
        self._host_pod: dict[int, int] = {}
        self._host_edge: dict[int, int] = {}

        for p in range(k):
            aggs = [
                net.add_switch(f"{prefix}.p{p}.agg{j}", mode=switch_mode)
                for j in range(half)
            ]
            edges = [
                net.add_switch(f"{prefix}.p{p}.edge{j}", mode=switch_mode)
                for j in range(half)
            ]
            self.aggs.append(aggs)
            self.edges.append(edges)
            for e, edge in enumerate(edges):
                for a in aggs:
                    net.add_link(
                        edge,
                        a,
                        config.gbps,
                        config.link_prop_ps,
                        config.queue_bytes,
                        red=config.red,
                        phantom=config.phantom,
                    )
                for h in range(half):
                    host = net.add_host(f"{prefix}.p{p}.e{e}.h{h}", dc=dc)
                    self.hosts.append(host)
                    self._host_pod[host.node_id] = p
                    self._host_edge[host.node_id] = e
                    # Host uplink: deep queue, no marking at the NIC; the
                    # edge->host direction is a fabric port (the incast
                    # bottleneck) with the fabric's marking config.
                    net.add_link(
                        host,
                        edge,
                        config.gbps,
                        config.link_prop_ps,
                        config.host_queue_bytes,
                        red=NO_MARKING,
                        queue_bytes_ba=config.queue_bytes,
                        red_ba=config.red,
                        phantom_ba=config.phantom,
                        asymmetric_marking=True,
                    )
            for j, agg in enumerate(aggs):
                for c in range(j * half, (j + 1) * half):
                    net.add_link(
                        agg,
                        self.cores[c],
                        config.gbps,
                        config.link_prop_ps,
                        config.queue_bytes,
                        red=config.red,
                        phantom=config.phantom,
                    )

    # -- structure helpers --------------------------------------------------

    def pod_of(self, host: Host) -> int:
        return self._host_pod[host.node_id]

    def edge_index_of(self, host: Host) -> int:
        return self._host_edge[host.node_id]

    def hops_one_way(self, a: Host, b: Host) -> int:
        """Link count on the shortest path between two hosts of this DC."""
        if a.node_id == b.node_id:
            return 0
        if self.pod_of(a) != self.pod_of(b):
            return 6
        if self.edge_index_of(a) != self.edge_index_of(b):
            return 4
        return 2
