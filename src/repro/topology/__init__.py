"""Topology builders.

- :mod:`repro.topology.simple` — dumbbell and incast-star fixtures.
- :mod:`repro.topology.fattree` — single k-ary fat-tree datacenter [5].
- :mod:`repro.topology.multidc` — the paper's evaluation topology: two
  fat-tree DCs joined by two border switches with parallel WAN links.
"""

from repro.topology.simple import dumbbell, incast_star
from repro.topology.fattree import FatTree, FatTreeConfig
from repro.topology.multidc import MultiDC, MultiDCConfig

__all__ = [
    "dumbbell",
    "incast_star",
    "FatTree",
    "FatTreeConfig",
    "MultiDC",
    "MultiDCConfig",
]
