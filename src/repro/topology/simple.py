"""Small fixed topologies for unit tests and microbenchmarks."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.sim.engine import Simulator
from repro.sim.host import Host
from repro.sim.network import Network
from repro.sim.queues import PhantomQueueConfig, Port, REDConfig
from repro.sim.units import MIB, US

# Host NICs buffer generously and never ECN-mark (marking happens in the
# fabric); REDConfig(1.0, 1.0) can only mark at 100% occupancy, which a
# successful enqueue never reaches.
NO_MARKING = REDConfig(min_frac=1.0, max_frac=1.0)
HOST_QUEUE_BYTES = 64 * MIB


def _make_net(sim: Simulator, seed: int,
              convergence_delay_ps: Optional[float]) -> Network:
    """Network with the caller's convergence delay, or the default."""
    if convergence_delay_ps is None:
        return Network(sim, seed=seed)
    return Network(sim, seed=seed, convergence_delay_ps=convergence_delay_ps)


@dataclass
class SimpleTopo:
    net: Network
    senders: list[Host]
    receivers: list[Host]
    bottleneck: Port  # the port whose queue the experiment watches


def dumbbell(
    sim: Simulator,
    n_pairs: int,
    gbps: float = 100.0,
    prop_ps: int = 1 * US,
    queue_bytes: int = 1 * MIB,
    red: Optional[REDConfig] = None,
    phantom: Optional[PhantomQueueConfig] = None,
    bottleneck_gbps: Optional[float] = None,
    seed: int = 1,
    convergence_delay_ps: Optional[float] = None,
) -> SimpleTopo:
    """n sender hosts -- swL == swR -- n receiver hosts.

    The swL->swR link is the shared bottleneck (optionally slower)."""
    if n_pairs < 1:
        raise ValueError("need at least one pair")
    net = _make_net(sim, seed, convergence_delay_ps)
    sw_l = net.add_switch("swL")
    sw_r = net.add_switch("swR")
    senders = [net.add_host(f"s{i}") for i in range(n_pairs)]
    receivers = [net.add_host(f"r{i}") for i in range(n_pairs)]
    for h in senders:
        net.add_link(h, sw_l, gbps, prop_ps, HOST_QUEUE_BYTES, red=NO_MARKING)
    for h in receivers:
        net.add_link(sw_r, h, gbps, prop_ps, queue_bytes, red=red, phantom=phantom)
    net.add_link(
        sw_l,
        sw_r,
        bottleneck_gbps or gbps,
        prop_ps,
        queue_bytes,
        red=red,
        phantom=phantom,
    )
    net.build_routes()
    return SimpleTopo(
        net=net,
        senders=senders,
        receivers=receivers,
        bottleneck=net.port_between(sw_l, sw_r),
    )


def dual_border(
    sim: Simulator,
    n_pairs: int = 4,
    gbps: float = 100.0,
    prop_ps: int = 1 * US,
    queue_bytes: int = 1 * MIB,
    red: Optional[REDConfig] = None,
    phantom: Optional[PhantomQueueConfig] = None,
    seed: int = 1,
    convergence_delay_ps: Optional[float] = None,
) -> SimpleTopo:
    """n senders -- swL == {borderA, borderB} == swR -- n receivers.

    Two equal-cost disjoint paths through parallel border switches, so
    crashing either border leaves an alternate route — the minimal
    topology where a switch crash is survivable by rerouting alone
    (crashing a border on the two-DC topology would partition it: all
    WAN links terminate on the same two border switches)."""
    if n_pairs < 1:
        raise ValueError("need at least one pair")
    net = _make_net(sim, seed, convergence_delay_ps)
    sw_l = net.add_switch("swL")
    sw_r = net.add_switch("swR")
    # "border" in the names keys the chaos node selector.
    border_a = net.add_switch("borderA")
    border_b = net.add_switch("borderB")
    senders = [net.add_host(f"s{i}") for i in range(n_pairs)]
    receivers = [net.add_host(f"r{i}") for i in range(n_pairs)]
    for h in senders:
        net.add_link(h, sw_l, gbps, prop_ps, HOST_QUEUE_BYTES, red=NO_MARKING)
    for h in receivers:
        net.add_link(sw_r, h, gbps, prop_ps, queue_bytes, red=red, phantom=phantom)
    for border in (border_a, border_b):
        net.add_link(sw_l, border, gbps, prop_ps, queue_bytes,
                     red=red, phantom=phantom)
        net.add_link(border, sw_r, gbps, prop_ps, queue_bytes,
                     red=red, phantom=phantom)
    net.build_routes()
    return SimpleTopo(
        net=net,
        senders=senders,
        receivers=receivers,
        bottleneck=net.port_between(sw_l, border_a),
    )


def incast_star(
    sim: Simulator,
    n_senders: int,
    gbps: float = 100.0,
    prop_ps: int = 1 * US,
    queue_bytes: int = 1 * MIB,
    red: Optional[REDConfig] = None,
    phantom: Optional[PhantomQueueConfig] = None,
    seed: int = 1,
    convergence_delay_ps: Optional[float] = None,
) -> SimpleTopo:
    """n senders -> one switch -> one receiver: the canonical incast.

    The switch->receiver port is the bottleneck."""
    if n_senders < 1:
        raise ValueError("need at least one sender")
    net = _make_net(sim, seed, convergence_delay_ps)
    sw = net.add_switch("sw")
    receiver = net.add_host("recv")
    senders = [net.add_host(f"s{i}") for i in range(n_senders)]
    for h in senders:
        net.add_link(h, sw, gbps, prop_ps, HOST_QUEUE_BYTES, red=NO_MARKING)
    net.add_link(sw, receiver, gbps, prop_ps, queue_bytes, red=red, phantom=phantom)
    net.build_routes()
    return SimpleTopo(
        net=net,
        senders=senders,
        receivers=[receiver],
        bottleneck=net.port_between(sw, receiver),
    )
