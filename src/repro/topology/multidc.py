"""The paper's evaluation topology: two fat-tree DCs joined by border
switches (section 5.1).

Each DC is a k-ary fat-tree; each DC has one border switch connected to
every core switch of its DC; the two border switches are interconnected
by ``n_border_links`` parallel links (paper: eight 100 Gbps links).

Per-link propagation delays are derived from the target intra- and
inter-DC RTTs:

- the longest intra-DC path crosses 6 links each way, so each fabric link
  gets ``intra_rtt / 12`` of propagation;
- an inter-DC path crosses 8 fabric-ish links plus one border-border link
  each way, so the border link carries the remainder
  ``inter_rtt/2 - 8 * (intra_rtt/12)``.

Measured base RTTs slightly exceed the nominal targets because of
serialization time (~2-3 us for 4 KiB MTU over 6 hops at 100 Gbps);
transports min-filter their RTT estimates, so only the hints need to be
close.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.sim.engine import Simulator
from repro.sim.host import Host
from repro.sim.link import Link
from repro.sim.network import Network
from repro.sim.queues import PhantomQueueConfig, REDConfig
from repro.sim.units import MIB, MS, US, ser_time_ps
from repro.topology.fattree import FatTree, FatTreeConfig


@dataclass(frozen=True)
class MultiDCConfig:
    k: int = 4
    gbps: float = 100.0
    inter_gbps: Optional[float] = None     # border-border links; default = gbps
    n_border_links: int = 8
    intra_rtt_ps: int = 14 * US
    inter_rtt_ps: int = 2 * MS
    queue_bytes: int = 1 * MIB
    border_queue_bytes: Optional[int] = None  # deep WAN buffers (Fig 12)
    red: Optional[REDConfig] = None
    phantom: Optional[PhantomQueueConfig] = None
    switch_mode: str = "ecmp"
    seed: int = 1
    # Control-plane convergence delay for failure-aware routing; None
    # keeps the Network default (~10 ms). 0 = static tables, inf = a
    # control plane that never reacts (blackhole control).
    convergence_delay_ps: Optional[float] = None

    def __post_init__(self) -> None:
        if self.n_border_links < 1:
            raise ValueError("need at least one border link")
        if self.inter_rtt_ps <= self.intra_rtt_ps:
            raise ValueError("inter-DC RTT must exceed intra-DC RTT")

    @property
    def fabric_prop_ps(self) -> int:
        return max(1, self.intra_rtt_ps // 12)

    @property
    def border_prop_ps(self) -> int:
        remainder = self.inter_rtt_ps // 2 - 8 * self.fabric_prop_ps
        if remainder <= 0:
            raise ValueError(
                "inter-DC RTT too small for the fabric propagation budget"
            )
        return remainder


class MultiDC:
    """Two fat-tree DCs + border switches, ready for experiments."""

    def __init__(self, sim: Simulator, config: MultiDCConfig = MultiDCConfig()):
        self.sim = sim
        self.config = config
        if config.convergence_delay_ps is None:
            self.net = Network(sim, seed=config.seed)
        else:
            self.net = Network(
                sim,
                seed=config.seed,
                convergence_delay_ps=config.convergence_delay_ps,
            )
        ft_config = FatTreeConfig(
            k=config.k,
            gbps=config.gbps,
            link_prop_ps=config.fabric_prop_ps,
            queue_bytes=config.queue_bytes,
            red=config.red,
            phantom=config.phantom,
        )
        self.dcs = [
            FatTree(self.net, ft_config, prefix=f"dc{d}", dc=d,
                    switch_mode=config.switch_mode)
            for d in range(2)
        ]
        self.borders = [
            self.net.add_switch(f"border{d}", mode=config.switch_mode)
            for d in range(2)
        ]
        border_q = config.border_queue_bytes or config.queue_bytes
        # Core <-> local border links.
        for d, tree in enumerate(self.dcs):
            for core in tree.cores:
                self.net.add_link(
                    core,
                    self.borders[d],
                    config.gbps,
                    config.fabric_prop_ps,
                    config.queue_bytes,
                    red=config.red,
                    phantom=config.phantom,
                )
        # Parallel WAN links between the borders.
        self.border_links: List[Tuple[Link, Link]] = []
        inter_gbps = config.inter_gbps or config.gbps
        for _ in range(config.n_border_links):
            pair = self.net.add_link(
                self.borders[0],
                self.borders[1],
                inter_gbps,
                config.border_prop_ps,
                border_q,
                red=config.red,
                phantom=config.phantom,
            )
            self.border_links.append(pair)
        self.net.build_routes()

    # -- host access -----------------------------------------------------

    def hosts(self, dc: int) -> List[Host]:
        return self.dcs[dc].hosts

    def host(self, dc: int, index: int) -> Host:
        return self.dcs[dc].hosts[index]

    def all_hosts(self) -> List[Host]:
        return self.dcs[0].hosts + self.dcs[1].hosts

    def random_host_pair(
        self, rng: random.Random, inter_dc: bool
    ) -> Tuple[Host, Host]:
        """A uniform random (src, dst) pair, src != dst."""
        if inter_dc:
            d = rng.randrange(2)
            src = rng.choice(self.hosts(d))
            dst = rng.choice(self.hosts(1 - d))
            return src, dst
        d = rng.randrange(2)
        hosts = self.hosts(d)
        src = rng.choice(hosts)
        dst = rng.choice(hosts)
        while dst is src:
            dst = rng.choice(hosts)
        return src, dst

    # -- RTT hints ---------------------------------------------------------

    def hops_one_way(self, a: Host, b: Host) -> Tuple[int, int]:
        """(fabric-ish links, border links) on the shortest a->b path."""
        if a.dc == b.dc:
            return self.dcs[a.dc].hops_one_way(a, b), 0
        return 8, 1

    def base_rtt_ps(self, a: Host, b: Host, pkt_bytes: int = 4096,
                    ack_bytes: int = 64) -> int:
        """Uncongested RTT estimate: propagation + per-hop serialization
        of a full data packet out and an ACK back."""
        cfg = self.config
        fabric_hops, border_hops = self.hops_one_way(a, b)
        prop = fabric_hops * cfg.fabric_prop_ps + border_hops * cfg.border_prop_ps
        inter_gbps = cfg.inter_gbps or cfg.gbps
        ser = fabric_hops * (
            ser_time_ps(pkt_bytes, cfg.gbps) + ser_time_ps(ack_bytes, cfg.gbps)
        ) + border_hops * (
            ser_time_ps(pkt_bytes, inter_gbps) + ser_time_ps(ack_bytes, inter_gbps)
        )
        return 2 * prop + ser

    def rtt_hint(self, a: Host, b: Host) -> int:
        """The nominal RTT class the paper's parameters key off."""
        return (
            self.config.intra_rtt_ps
            if a.dc == b.dc
            else self.config.inter_rtt_ps
        )
