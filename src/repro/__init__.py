"""repro: a reproduction of "Uno: A One-Stop Solution for Inter- and
Intra-Data Center Congestion Control and Reliable Connectivity" (SC '25).

Public API highlights:

- :class:`repro.sim.Simulator`, :class:`repro.sim.Network` — the
  packet-level discrete-event simulator.
- :class:`repro.topology.MultiDC` — the paper's two-DC fat-tree topology.
- :func:`repro.core.start_uno_flow` — launch a flow under the full Uno
  stack (UnoCC + UnoRC + UnoLB).
- :mod:`repro.transport` — baseline transports (Gemini, MPRDMA, BBR,
  DCTCP).
- :mod:`repro.coding` — GF(256) Reed-Solomon erasure coding.
- :mod:`repro.workloads` — flow-size distributions and traffic patterns.
- :mod:`repro.experiments` — one module per paper figure/table.
"""

from repro.core import UnoParams, start_uno_flow
from repro.sim import Network, Simulator

__version__ = "1.0.0"

__all__ = ["Simulator", "Network", "UnoParams", "start_uno_flow", "__version__"]
