"""Flow-completion-time statistics (the paper's headline metric)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.transport.base import SenderStats


@dataclass(frozen=True)
class FCTSummary:
    count: int
    mean_ps: float
    p50_ps: float
    p99_ps: float
    max_ps: float

    @property
    def mean_us(self) -> float:
        return self.mean_ps / 1e6

    @property
    def p99_us(self) -> float:
        return self.p99_ps / 1e6

    @property
    def mean_ms(self) -> float:
        return self.mean_ps / 1e9

    @property
    def p99_ms(self) -> float:
        return self.p99_ps / 1e9

    def to_dict(self) -> dict:
        """JSON-ready form (base fields plus the derived unit views),
        the shape experiment points return for caching."""
        return {
            "count": self.count,
            "mean_ps": self.mean_ps,
            "p50_ps": self.p50_ps,
            "p99_ps": self.p99_ps,
            "max_ps": self.max_ps,
            "mean_us": self.mean_us,
            "p99_us": self.p99_us,
            "mean_ms": self.mean_ms,
            "p99_ms": self.p99_ms,
        }


def summarize_fcts(stats: Iterable[SenderStats]) -> FCTSummary:
    """Mean / median / p99 / max FCT over completed flows.

    Raises if any flow in the collection never finished — an experiment
    that silently drops unfinished flows would overstate performance.
    """
    fcts: List[int] = []
    for s in stats:
        if s.fct_ps is None:
            raise ValueError(f"flow {s.flow_id} did not complete")
        fcts.append(s.fct_ps)
    if not fcts:
        raise ValueError("no flows to summarize")
    arr = np.asarray(fcts, dtype=np.float64)
    return FCTSummary(
        count=len(fcts),
        mean_ps=float(arr.mean()),
        p50_ps=float(np.percentile(arr, 50)),
        p99_ps=float(np.percentile(arr, 99)),
        max_ps=float(arr.max()),
    )


def ideal_fct_ps(
    size_bytes: int,
    base_rtt_ps: int,
    line_gbps: float,
    mss: int = 4096,
    header: int = 64,
) -> int:
    """Uncongested lower bound: one base RTT (first packet out to last
    ACK back covers at least propagation) plus the wire time of the whole
    message including per-packet header overhead."""
    n_pkts = (size_bytes + mss - 1) // mss
    wire_bytes = size_bytes + n_pkts * header
    ser = round(wire_bytes * 8000 / line_gbps)
    return int(base_rtt_ps + ser)


def slowdowns(
    stats: Sequence[SenderStats],
    base_rtt_for: "callable",
    line_gbps: float,
    mss: int = 4096,
) -> List[float]:
    """Per-flow slowdown = FCT / ideal FCT (Fig 11's metric).

    ``base_rtt_for(stat)`` maps a flow record to its uncongested RTT.
    """
    out = []
    for s in stats:
        if s.fct_ps is None:
            raise ValueError(f"flow {s.flow_id} did not complete")
        ideal = ideal_fct_ps(s.size_bytes, base_rtt_for(s), line_gbps, mss=mss)
        out.append(s.fct_ps / ideal)
    return out


def split_intra_inter(
    stats: Iterable[SenderStats],
) -> tuple[List[SenderStats], List[SenderStats]]:
    """Partition flow records into (intra-DC, inter-DC) lists."""
    intra, inter = [], []
    for s in stats:
        (inter if s.is_inter_dc else intra).append(s)
    return intra, inter
