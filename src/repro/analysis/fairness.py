"""Fairness metrics: Jain's index and time-to-convergence.

The paper's Fig 3/8 fairness claims are about how quickly the per-flow
sending rates of a mixed intra+inter incast converge to the fair share;
we quantify that with Jain's index over rate samples and the first time
the index stays above a threshold.
"""

from __future__ import annotations

from typing import List, Optional, Sequence


def jain_index(rates: Sequence[float]) -> float:
    """Jain's fairness index: 1.0 = perfectly fair, 1/n = one hog."""
    if not rates:
        raise ValueError("need at least one rate")
    if any(r < 0 for r in rates):
        raise ValueError("rates cannot be negative")
    total = sum(rates)
    if total == 0:
        return 1.0  # all-zero allocations are (vacuously) equal
    sq = sum(r * r for r in rates)
    return total * total / (len(rates) * sq)


def jain_series(
    rates_per_flow: Sequence[Sequence[float]],
) -> List[float]:
    """Jain's index at each sample instant, given per-flow rate series."""
    if not rates_per_flow:
        raise ValueError("need at least one flow")
    n_samples = min(len(r) for r in rates_per_flow)
    return [
        jain_index([series[i] for series in rates_per_flow])
        for i in range(n_samples)
    ]


def convergence_time_ps(
    times_ps: Sequence[int],
    rates_per_flow: Sequence[Sequence[float]],
    threshold: float = 0.95,
    hold_samples: int = 3,
) -> Optional[int]:
    """First time Jain's index reaches ``threshold`` and holds for
    ``hold_samples`` consecutive samples; None if it never converges."""
    if hold_samples < 1:
        raise ValueError("hold_samples must be >= 1")
    series = jain_series(rates_per_flow)
    run = 0
    for i, j in enumerate(series):
        if j >= threshold:
            run += 1
            if run >= hold_samples:
                return times_ps[i - hold_samples + 1]
        else:
            run = 0
    return None
