"""Result analysis: FCT statistics, slowdowns, fairness metrics."""

from repro.analysis.fct import FCTSummary, ideal_fct_ps, slowdowns, summarize_fcts
from repro.analysis.fairness import convergence_time_ps, jain_index

__all__ = [
    "FCTSummary",
    "summarize_fcts",
    "ideal_fct_ps",
    "slowdowns",
    "jain_index",
    "convergence_time_ps",
]
