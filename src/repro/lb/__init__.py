"""Load-balancing schemes the paper compares against.

- ECMP: :class:`repro.transport.base.FixedEntropy` (one hashed path).
- RPS (Random Packet Spraying [24]): a *switch* behaviour — set switch
  mode ``"rps"`` via :func:`set_spraying`.
- PLB [56]: :class:`repro.lb.plb.PLB` — repath after consecutive
  congested rounds.
- UnoLB: :class:`repro.core.unolb.UnoLB` (part of the contribution).
"""

from repro.lb.flowbender import Flowbender, FlowbenderConfig
from repro.lb.plb import PLB, PLBConfig
from repro.transport.base import FixedEntropy


def set_spraying(net, enable: bool = True) -> None:
    """Switch every switch in ``net`` to RPS (or back to ECMP)."""
    mode = "rps" if enable else "ecmp"
    for sw in net.switches:
        sw.set_mode(mode)


__all__ = [
    "PLB",
    "PLBConfig",
    "Flowbender",
    "FlowbenderConfig",
    "FixedEntropy",
    "set_spraying",
]
