"""PLB (Protective Load Balancing) [56].

A flow keeps a single path (one entropy value) and *repaths* — picks a new
random entropy — after K consecutive congested rounds, where a round is
one RTT and "congested" means the round's fraction of ECN-marked ACKs
exceeded a threshold. PLB also repaths on retransmission timeout.

This reproduces the paper's observation (Fig 13B) that PLB "sticks to one
path at a time", so a flaky link hurts whole blocks until PLB reacts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.packet import Packet
from repro.transport.base import PathSelector, Sender


@dataclass(frozen=True)
class PLBConfig:
    ecn_round_threshold: float = 0.5   # round is congested above this
    congested_rounds_to_repath: int = 3
    idle_rounds_reset: int = 1

    def __post_init__(self) -> None:
        if not (0 < self.ecn_round_threshold <= 1):
            raise ValueError("ecn_round_threshold outside (0, 1]")
        if self.congested_rounds_to_repath < 1:
            raise ValueError("need at least one congested round")


class PLB(PathSelector):
    """Single-path flow that repaths after K consecutive congested rounds."""
    def __init__(self, config: PLBConfig = PLBConfig()):
        self.config = config
        self._entropy = 0
        self._round_start_ps = 0
        self._round_total = 0
        self._round_marked = 0
        self._congested_rounds = 0
        self.repaths = 0

    def on_init(self, sender: Sender) -> None:
        self._entropy = sender.rng.getrandbits(16)
        self._round_start_ps = sender.sim.now

    def entropy(self, sender: Sender, pkt: Packet) -> int:
        return self._entropy

    def on_ack(self, sender: Sender, pkt: Packet, rtt_ps: int, ecn: bool) -> None:
        self._round_total += 1
        if ecn:
            self._round_marked += 1
        now = sender.sim.now
        if now - self._round_start_ps < sender.base_rtt_ps:
            return
        frac = self._round_marked / max(1, self._round_total)
        if frac >= self.config.ecn_round_threshold:
            self._congested_rounds += 1
            if self._congested_rounds >= self.config.congested_rounds_to_repath:
                self._repath(sender)
        else:
            self._congested_rounds = 0
        self._round_start_ps = now
        self._round_total = 0
        self._round_marked = 0

    def on_nack_or_timeout(self, sender: Sender) -> None:
        self._repath(sender)

    def _repath(self, sender: Sender) -> None:
        old = self._entropy
        self._entropy = sender.rng.getrandbits(16)
        self._congested_rounds = 0
        self.repaths += 1
        # getattr: unit tests drive selectors with minimal sender stubs.
        sim = getattr(sender, "sim", None)
        obs = sim.obs if sim is not None else None
        if obs is not None:
            obs.metrics.counter("lb.plb_repaths").inc()
            ev = obs.events
            if ev is not None and ev.wants("route"):
                ev.emit("route", "repath", t=sim.now,
                        flow=sender.flow_id, lb="plb",
                        old=old, new=self._entropy)
