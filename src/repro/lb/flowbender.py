"""Flowbender [39]: flow-level adaptive rerouting on congestion.

A precursor to PLB (the paper cites both): each flow keeps one path and
re-hashes (here: picks a new entropy) when the fraction of ECN-marked
ACKs over a window crosses a threshold, or on RTO. Unlike PLB it reacts
after a single congested window rather than several consecutive ones —
more aggressive repathing, more reordering churn.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.packet import Packet
from repro.transport.base import PathSelector, Sender


@dataclass(frozen=True)
class FlowbenderConfig:
    ecn_threshold: float = 0.5   # congested-window mark fraction
    window_acks: int = 32        # ACKs per decision window

    def __post_init__(self) -> None:
        if not (0.0 < self.ecn_threshold <= 1.0):
            raise ValueError("ecn_threshold outside (0, 1]")
        if self.window_acks < 1:
            raise ValueError("window_acks must be >= 1")


class Flowbender(PathSelector):
    """Flow-level repathing after one congested window or an RTO."""
    def __init__(self, config: FlowbenderConfig = FlowbenderConfig()):
        self.config = config
        self._entropy = 0
        self._acks = 0
        self._marked = 0
        self.repaths = 0

    def on_init(self, sender: Sender) -> None:
        self._entropy = sender.rng.getrandbits(16)

    def entropy(self, sender: Sender, pkt: Packet) -> int:
        return self._entropy

    def on_ack(self, sender: Sender, pkt: Packet, rtt_ps: int, ecn: bool) -> None:
        self._acks += 1
        if ecn:
            self._marked += 1
        if self._acks < self.config.window_acks:
            return
        if self._marked / self._acks >= self.config.ecn_threshold:
            self._repath(sender)
        self._acks = 0
        self._marked = 0

    def on_nack_or_timeout(self, sender: Sender) -> None:
        self._repath(sender)

    def _repath(self, sender: Sender) -> None:
        old = self._entropy
        self._entropy = sender.rng.getrandbits(16)
        self.repaths += 1
        # getattr: unit tests drive selectors with minimal sender stubs.
        sim = getattr(sender, "sim", None)
        obs = sim.obs if sim is not None else None
        if obs is not None:
            obs.metrics.counter("lb.flowbender_repaths").inc()
            ev = obs.events
            if ev is not None and ev.wants("route"):
                ev.emit("route", "repath", t=sim.now,
                        flow=sender.flow_id, lb="flowbender",
                        old=old, new=self._entropy)
