"""The point-based experiment API.

Every experiment module (``fig1`` ... ``fig13``, ``table1``,
``ablations``, ``annulus_ext``, ``discussion_hpcc``) describes its work
as a list of independent :class:`ExperimentPoint` s plus two pure
functions, so a generic engine (:mod:`repro.experiments.runner`) can fan
the points out over processes, cache them on disk, and resume partial
sweeps:

- ``points(quick=True, seed=None) -> List[ExperimentPoint]`` — the full
  sweep (scheme x load x repeat ...) as picklable value objects. All
  scale knobs, including ``quick``, live in ``point.config``.
- ``run_point(point) -> dict`` — executes ONE point from scratch (fresh
  ``Simulator``, seeded only from the point) and returns a
  JSON-serializable dict. It must not read module-level mutable state:
  the runner may call it in a forked worker process in any order.
- ``summarize(results) -> dict`` — pure reducer from
  ``{point.name: per-point dict}`` to the module's aggregate result
  (what ``run()`` returns and ``report()`` prints).

``module.run(quick)`` stays the one-call entry point; it is now the thin
wrapper ``summarize(run_points(points(quick)))`` provided by
:func:`repro.experiments.runner.run_experiment`.

Per-point results are canonicalized through JSON (sorted keys, compact
separators, no NaN) before they reach ``summarize`` or the disk cache,
so a result is byte-identical whether it was computed inline, in a
worker process, or read back from a cache file.
"""

from __future__ import annotations

import importlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Tuple

# Every experiment module implementing the point protocol, in report
# order. ``run_all`` exposes this as its ``ALL`` list.
EXPERIMENTS = [
    "fig1", "fig3", "fig4", "fig8", "fig9", "fig10", "fig11", "fig12",
    "fig13", "table1", "ablations", "annulus_ext", "discussion_hpcc",
]

_SCALAR_TYPES = (str, int, float, bool, type(None))


@dataclass(frozen=True)
class ExperimentPoint:
    """One independent unit of experiment work.

    ``experiment`` names the owning module under ``repro.experiments``;
    ``name`` is unique within that module; ``config`` holds every scale
    knob the point needs as JSON scalars (a mapping passed in is
    normalized to a sorted tuple of pairs so points are hashable and
    picklable); ``seed`` is the point's base RNG seed.
    """

    experiment: str
    name: str
    config: Tuple[Tuple[str, Any], ...] = field(default=())
    seed: int = 0

    def __post_init__(self):
        config = self.config
        if isinstance(config, Mapping):
            config = tuple(sorted(config.items()))
        else:
            config = tuple(sorted((str(k), v) for k, v in config))
        for key, value in config:
            if not isinstance(value, _SCALAR_TYPES):
                raise TypeError(
                    f"point {self.experiment}:{self.name} config[{key!r}] "
                    f"must be a JSON scalar, got {type(value).__name__}"
                )
        object.__setattr__(self, "config", config)

    @property
    def cfg(self) -> Dict[str, Any]:
        """The config as a plain dict (the ergonomic accessor)."""
        return dict(self.config)

    @property
    def id(self) -> str:
        """Globally unique label, e.g. ``fig8:mixed/uno``."""
        return f"{self.experiment}:{self.name}"

    def describe(self) -> Dict[str, Any]:
        """JSON-ready identity (everything that defines the point)."""
        return {
            "experiment": self.experiment,
            "name": self.name,
            "config": self.cfg,
            "seed": self.seed,
        }


def canonical_json(obj: Any) -> str:
    """Deterministic JSON encoding: sorted keys, compact separators,
    NaN/Inf rejected (a point must map them to ``None`` explicitly),
    numpy scalars unwrapped. The byte layout of every cache file."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"),
                      allow_nan=False, default=_unwrap_scalar)


def _unwrap_scalar(obj: Any) -> Any:
    item = getattr(obj, "item", None)  # numpy scalars
    if callable(item):
        value = item()
        if isinstance(value, _SCALAR_TYPES):
            return value
    raise TypeError(f"not JSON-serializable: {type(obj).__name__}: {obj!r}")


def normalize_result(result: Any) -> Dict[str, Any]:
    """Round-trip a raw ``run_point`` return value through canonical
    JSON so every execution mode yields the exact same object shape
    (tuples become lists, numpy scalars become numbers, dict keys become
    strings)."""
    if not isinstance(result, dict):
        raise TypeError(
            f"run_point must return a dict, got {type(result).__name__}"
        )
    return json.loads(canonical_json(result))


def experiment_module(name: str):
    """Import ``repro.experiments.<name>`` and check it speaks the point
    protocol."""
    module = importlib.import_module(f"repro.experiments.{name}")
    for attr in ("points", "run_point", "summarize"):
        if not hasattr(module, attr):
            raise TypeError(
                f"experiment module {name!r} does not implement the point "
                f"API (missing {attr}())"
            )
    return module


def execute_point(point: ExperimentPoint) -> Dict[str, Any]:
    """Dispatch one point to its module's ``run_point`` and normalize
    the result. This is the function worker processes run."""
    module = experiment_module(point.experiment)
    return normalize_result(module.run_point(point))


# Sharded execution is part of the experiment API surface: campaigns ask
# for it with ``run_all --shards`` and tests drive it directly. The
# implementation lives in :mod:`repro.experiments.sharded`.
from repro.experiments.sharded import (  # noqa: E402  (re-export)
    SHARD_TRACE_TOPICS,
    TwoDCWorkload,
    check_equivalence,
    run_sharded,
)

# So is the campaign progress stream: run_all writes it, the dashboard
# tails it, and experiment drivers can pass one to ``run_points``.
from repro.experiments.progress import (  # noqa: E402  (re-export)
    CAMPAIGN_STREAM_NAME,
    CampaignStream,
)
