"""Plain-text reporting for experiment results (paper-vs-measured)."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render rows as a fixed-width text table."""
    rows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  ".join(c.ljust(widths[i]) for i, c in enumerate(row)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 100:
            return f"{cell:.0f}"
        if abs(cell) >= 1:
            return f"{cell:.2f}"
        return f"{cell:.4f}"
    return str(cell)


def print_experiment(title: str, expectation: str, headers, rows) -> None:
    """Print one experiment's title, paper expectation, and result table."""
    print(f"\n=== {title} ===")
    print(f"paper expectation: {expectation}")
    print(format_table(headers, rows))
