"""Wire campaigns: the loopback soak + sim-vs-wire comparison grid.

A *wire campaign* is a named grid of (cell, transport) pairs; every
pair becomes one :class:`ExperimentPoint` (experiment ``"wire"``), so
campaigns run through the same parallel/cached/resumable runner and
summary plumbing as the paper experiments and chaos campaigns::

    python -m repro.experiments.run_all --wire full --out results/wire

Soak cells (``clean``/``impaired``/``blackhole``) run the pinned
workload through :func:`repro.wire.harness.run_wire` — the unmodified
transport stack over loopback UDP behind the seeded impairment proxy —
and gate on the harness invariants plus the cell's expected outcome:

- ``clean`` and ``impaired`` (5% loss + reorder + dup + jitter under a
  rate cap): every flow must complete with every byte verified and zero
  invariant violations;
- ``blackhole`` (a permanent outage mid-transfer): every flow must end
  ``aborted`` with ``max_consecutive_rtos`` recorded, every receiver
  must idle out, the RTO backoff cap must hold, and no timer may
  survive the terminal states.

The ``compare`` cell runs the same pinned workload in the simulator and
on the wire under matched impairments
(:func:`repro.wire.compare.compare_sim_wire`) and gates on the declared
tolerance bands — identical per-flow outcomes, FCT ratios in band,
retransmission counts within slack.

Timing stance (same as the harness): impairment *decisions* are seeded
and deterministic; delivery timing rides the real event loop, so every
gate here is an invariant or a band, never an exact wall-clock number.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.experiments.api import ExperimentPoint
from repro.sim.units import MS
from repro.transport.base import AbortPolicy
from repro.wire.compare import CompareTolerance, compare_sim_wire
from repro.wire.harness import WIRE_TRANSPORTS, WireFlowSpec, run_wire
from repro.wire.proxy import Impairments

EXPERIMENT = "wire"

#: Soak cells and the campaign grids built from them.
SOAK_CELLS = ("clean", "impaired", "blackhole")

# campaign name -> list of (cell, transport) pairs
CAMPAIGNS: Dict[str, List[tuple]] = {
    # CI smoke: every soak cell on both transports.
    "soak": [(cell, t) for cell in SOAK_CELLS for t in WIRE_TRANSPORTS],
    # The CoCo-Beholder-style cross-leg check on its own.
    "compare": [("compare", t) for t in WIRE_TRANSPORTS],
    # Everything: the CI wire-smoke job runs this.
    "full": (
        [(cell, t) for cell in SOAK_CELLS for t in WIRE_TRANSPORTS]
        + [("compare", t) for t in WIRE_TRANSPORTS]
    ),
}

#: Abort policy for the blackhole cells: with min RTO 25 ms and backoff
#: cap 8, six consecutive RTOs abort ~0.8 s into the outage — inside
#: the per-cell timeout, and after the receivers' idle timers fire.
BLACKHOLE_MAX_RTOS = 6


def cell_impairments(cell: str) -> Impairments:
    """The pinned impairment preset for a campaign cell."""
    if cell == "clean":
        return Impairments(delay_ms=1.0, rate_mbps=80.0)
    if cell == "impaired":
        return Impairments(delay_ms=1.0, jitter_ms=0.2, loss_rate=0.05,
                           dup_rate=0.03, reorder_rate=0.25,
                           reorder_extra_ms=1.0, rate_mbps=80.0)
    if cell == "blackhole":
        return Impairments(delay_ms=1.0, rate_mbps=80.0,
                           blackhole_start_ms=100.0)
    if cell == "compare":
        # The sim-expressible subset: delay + rate cap + Bernoulli loss.
        return Impairments(delay_ms=1.0, loss_rate=0.02, rate_mbps=80.0)
    raise ValueError(f"unknown wire cell {cell!r}")


def _cell_specs(cell: str, transport: str,
                quick: bool) -> List[WireFlowSpec]:
    """The pinned workload for one cell: staggered same-transport flows,
    sized so blackhole flows are mid-transfer when the outage starts."""
    if cell == "blackhole":
        size = 512 * 1024 if quick else 2 * 1024 * 1024
        return [WireFlowSpec(transport, size),
                WireFlowSpec(transport, size, 5.0)]
    size = 96 * 1024 if quick else 384 * 1024
    return [WireFlowSpec(transport, size),
            WireFlowSpec(transport, size, 2.0),
            WireFlowSpec(transport, size, 4.0)]


def campaign_points(
    campaign: str = "soak",
    quick: bool = True,
    seed: Optional[int] = None,
) -> List[ExperimentPoint]:
    """One point per campaign cell."""
    if campaign not in CAMPAIGNS:
        raise ValueError(f"unknown wire campaign {campaign!r}; "
                         f"choose from {sorted(CAMPAIGNS)}")
    base_seed = 11 if seed is None else seed
    pts = []
    for cell, transport in CAMPAIGNS[campaign]:
        pts.append(ExperimentPoint(
            experiment=EXPERIMENT,
            name=f"{campaign}/{cell}-{transport}",
            config={
                "quick": quick,
                "campaign": campaign,
                "cell": cell,
                "transport": transport,
            },
            seed=base_seed,
        ))
    return pts


def points(quick: bool = True,
           seed: Optional[int] = None) -> List[ExperimentPoint]:
    """Point-API entry: the default (soak) campaign."""
    return campaign_points("soak", quick, seed)


# ----------------------------------------------------------------------
# Point execution
# ----------------------------------------------------------------------

def run_point(point: ExperimentPoint) -> Dict[str, Any]:
    """Run one wire cell end-to-end and attach its gate verdict."""
    cfg = point.cfg
    cell, transport = cfg["cell"], cfg["transport"]
    imp = cell_impairments(cell)
    specs = _cell_specs(cell, transport, cfg["quick"])
    timeout_s = 30.0 if cfg["quick"] else 120.0
    if cell == "compare":
        res = compare_sim_wire(specs, imp, seed=point.seed,
                               timeout_s=timeout_s,
                               tolerance=CompareTolerance())
        gate_failures = [m["check"] for m in res["mismatches"]]
        return dict(res, cell=cell, transport=transport,
                    gate_failures=gate_failures,
                    gate_ok=not gate_failures)
    if cell == "blackhole":
        # Pin the idle timeout *below* the six-RTO abort (~0.8 s) so
        # the cell exercises both terminal paths: the receivers idle
        # out first (total silence is guaranteed — the blackhole drops
        # everything), then the senders abort by policy. The harness
        # default is deliberately much larger to out-wait stall-
        # inflated retry gaps, which only matters on a *live* path.
        abort = AbortPolicy(max_consecutive_rtos=BLACKHOLE_MAX_RTOS)
        res = run_wire(specs, imp, seed=point.seed, abort=abort,
                       timeout_s=timeout_s, idle_timeout_ps=500 * MS)
    else:
        res = run_wire(specs, imp, seed=point.seed, timeout_s=timeout_s)
    gate_failures: List[str] = []
    if res["n_violations"]:
        gate_failures.append("invariants")
    if cell == "blackhole":
        if res["aborted"] != res["n_flows"]:
            gate_failures.append("not_all_aborted")
        if res["abort_reasons"].get("max_consecutive_rtos", 0) != \
                res["n_flows"]:
            gate_failures.append("abort_reason")
        if res["idled_out"] != res["n_flows"]:
            gate_failures.append("receiver_idle")
    else:
        if res["completed"] != res["n_flows"]:
            gate_failures.append("not_all_completed")
    return dict(res, cell=cell, transport=transport,
                gate_failures=gate_failures,
                gate_ok=not gate_failures)


# ----------------------------------------------------------------------
# Reduction / reporting
# ----------------------------------------------------------------------

def summarize(results: Dict[str, Dict[str, Any]]) -> Dict[str, Any]:
    """Reduce per-cell results to the campaign verdict: every cell's
    gate must pass, with the failures enumerated per cell."""
    cells = {}
    total_violations = 0
    failed_gates = 0
    for name in sorted(results):
        res = results[name]
        n_violations = res.get("n_violations",
                               len(res.get("mismatches", [])))
        total_violations += n_violations
        if not res["gate_ok"]:
            failed_gates += 1
        entry = {
            "cell": res["cell"],
            "transport": res["transport"],
            "gate_ok": res["gate_ok"],
            "gate_failures": res["gate_failures"],
            "n_violations": n_violations,
        }
        if res["cell"] == "compare":
            entry.update({
                "mean_fct_ratio": res["mean_fct_ratio"],
                "retx_delta": res["retx_delta"],
                "sim_mean_fct_ms": res["sim"]["mean_fct_ms"],
                "wire_mean_fct_ms": res["wire"]["mean_fct_ms"],
            })
        else:
            entry.update({
                "completed": res["completed"],
                "aborted": res["aborted"],
                "n_flows": res["n_flows"],
                "idled_out": res["idled_out"],
                "max_backoff": res["max_backoff"],
                "retransmissions": res["retransmissions"],
                "mean_fct_ms": res["mean_fct_ms"],
            })
        cells[name] = entry
    return {
        "points": cells,
        "n_points": len(cells),
        "total_violations": total_violations,
        "failed_gates": failed_gates,
        "all_gates_passed": failed_gates == 0,
    }


def report(res: Dict[str, Any]) -> None:
    """Print the per-cell campaign table and the overall verdict."""
    print("Wire campaign")
    print(f"  {'point':<34} {'outcome':>9} {'viol':>5} "
          f"{'fct/ratio':>10} {'gate':>6}")
    for name, cell in res["points"].items():
        if cell["cell"] == "compare":
            ratio = cell["mean_fct_ratio"]
            detail = f"{ratio:.2f}x" if ratio is not None else "-"
            outcome = "compared"
        else:
            outcome = f"{cell['completed']}+{cell['aborted']}" \
                      f"/{cell['n_flows']}"
            fct = cell["mean_fct_ms"]
            detail = f"{fct:.1f}ms" if fct is not None else "-"
        gate = "ok" if cell["gate_ok"] else ",".join(cell["gate_failures"])
        print(f"  {name:<34} {outcome:>9} {cell['n_violations']:>5} "
              f"{detail:>10} {gate:>6}")
    verdict = ("all gates passed" if res["all_gates_passed"]
               else f"{res['failed_gates']} GATES FAILED")
    print(f"  => {res['n_points']} points, {verdict}")


def run(quick: bool = True, **runner_kwargs) -> Dict[str, Any]:
    """Run the default (soak) campaign serially and summarize it."""
    from repro.experiments.runner import run_experiment

    return run_experiment(EXPERIMENT, quick, **runner_kwargs)
