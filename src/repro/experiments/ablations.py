"""Ablations of Uno's individual design choices.

The paper motivates each mechanism separately; these experiments switch
one off at a time and measure the effect the paper attributes to it:

- **unified granularity** (4.1.1): UnoCC with the epoch period set to the
  flow's *own* RTT (Gemini-style) instead of the intra-DC RTT -> slower
  convergence to fairness in a mixed incast.
- **Quick Adapt** (4.1.2): QA disabled -> slower recovery from a sudden
  incast, worse tail FCT.
- **gentle phantom MD** (4.1.3 / Algorithm 1 line 10): MD_scale fixed at
  1.0 -> phantom-only congestion over-throttles a long inter-DC flow.
- **EC redundancy** (4.2): parity count swept 0/1/2/4 under correlated
  loss -> retransmissions drop as redundancy grows, at fixed overhead
  cost.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from repro.analysis.fairness import convergence_time_ps, jain_series
from repro.analysis.fct import summarize_fcts
from repro.coding.block import BlockConfig
from repro.core.params import UnoParams
from repro.core.unocc import UnoCC, UnoCCConfig
from repro.core.unolb import UnoLB
from repro.core.unorc import UnoRCConfig, UnoRCReceiver, UnoRCSender
from repro.experiments.api import ExperimentPoint
from repro.experiments.harness import ExperimentScale, scale_for
from repro.experiments.report import print_experiment
from repro.sim.engine import Simulator
from repro.sim.failures import GilbertElliottLoss, calibrate_gilbert_elliott
from repro.sim.trace import RateMonitor
from repro.sim.units import GIB, MIB, MS
from repro.topology.multidc import MultiDC, MultiDCConfig
from repro.transport.base import start_flow
from repro.workloads.patterns import incast_specs

DEFAULT_SEED = 12
EC_PARITIES = (0, 1, 2, 4)


def _make_topo(scale: ExperimentScale, params: UnoParams, seed: int) -> MultiDC:
    sim = Simulator()
    topo = MultiDC(
        sim,
        MultiDCConfig(
            k=scale.k,
            gbps=params.link_gbps,
            n_border_links=scale.n_border_links,
            intra_rtt_ps=params.intra_rtt_ps,
            inter_rtt_ps=params.inter_rtt_ps,
            queue_bytes=params.queue_bytes,
            red=params.red(),
            phantom=params.phantom(),
            seed=seed,
        ),
    )
    return topo


def _unocc(params: UnoParams, is_inter: bool, *, unified: bool = True,
           use_qa: bool = True, gentle: bool = True,
           warm_start: bool = False) -> UnoCC:
    epoch = params.intra_rtt_ps if unified else params.base_rtt_for(is_inter)
    return UnoCC(UnoCCConfig(
        alpha_frac_of_bdp=params.alpha_frac_of_bdp,
        beta=params.qa_beta if use_qa else 1e-9,  # beta ~ 0 disables QA
        k_bytes=params.k_bytes,
        epoch_period_ps=epoch,
        md_gentle_scale=0.3 if gentle else 1.0,
        use_slow_start=not warm_start,
        init_cwnd_frac_of_bdp=1.0 if warm_start else 0.0,
    ))


def _start(sim, topo, params, spec, cc, seed, on_complete=None, ec=True):
    is_inter = spec.src.dc != spec.dst.dc
    common = dict(
        mss=params.mtu_bytes,
        base_rtt_ps=params.base_rtt_for(is_inter),
        line_gbps=params.link_gbps,
        is_inter_dc=is_inter,
        seed=seed,
        on_complete=on_complete,
        start_ps=spec.start_ps,
    )
    if is_inter and ec:
        rc = UnoRCConfig(block=BlockConfig(params.ec_data_pkts,
                                           params.ec_parity_pkts))
        return start_flow(
            sim, topo.net, cc, spec.src, spec.dst, spec.size_bytes,
            sender_cls=UnoRCSender, receiver_cls=UnoRCReceiver,
            receiver_kwargs={"rc": rc}, rc=rc,
            path=UnoLB(n_subflows=rc.block.block_pkts), **common,
        )
    return start_flow(sim, topo.net, cc, spec.src, spec.dst,
                      spec.size_bytes, **common)


# ----------------------------------------------------------------------

def ablate_unified_granularity(scale: ExperimentScale, seed: int,
                               window_ps: int, unified: bool) -> Dict:
    """Mixed incast fairness with unified or per-own-RTT epochs."""
    params = scale.params()
    topo = _make_topo(scale, params, seed)
    sim = topo.sim
    specs = incast_specs(topo, 4, 4, 64 * GIB)
    senders = []
    for i, spec in enumerate(specs):
        cc = _unocc(params, spec.src.dc != spec.dst.dc, unified=unified)
        senders.append(_start(sim, topo, params, spec, cc,
                              seed * 100 + i, ec=False))
    mon = RateMonitor(sim, senders, probe=lambda s: s.stats.bytes_acked,
                      interval_ps=1 * MS)
    sim.run(until=window_ps)
    smoothed = [_movavg(r, 4) for r in mon.rates_gbps]
    n = min(len(r) for r in smoothed)
    series = jain_series([r[:n] for r in smoothed])
    conv = convergence_time_ps(mon.times[:n], [r[:n] for r in smoothed],
                               threshold=0.9, hold_samples=5)
    tail = series[-max(1, len(series) // 5):]
    return {
        "convergence_ms": None if conv is None else conv / 1e9,
        "tail_jain": sum(tail) / len(tail),
    }


def _movavg(series: List[float], k: int) -> List[float]:
    if len(series) < k:
        return list(series)
    return [sum(series[i:i + k]) / k for i in range(len(series) - k + 1)]


def ablate_quick_adapt(scale: ExperimentScale, seed: int,
                       use_qa: bool) -> Dict:
    """QA's design scenario (paper 4.1.2): flows with *established*
    (full-BDP) windows suddenly converge on one receiver — extreme
    congestion. QA's promise is *fast resolution of the overload*: the
    windows snap to the measured capacity within ~1 RTT, so the
    bottleneck queue drains and the drop storm stops. (Post-collapse
    FCT is then governed by the additive-increase ramp, which Table 2's
    alpha makes slow at quick scale — reported, not asserted.)"""
    from repro.sim.trace import QueueMonitor
    from repro.sim.units import US

    params = scale.params()
    topo = _make_topo(scale, params, seed)
    sim = topo.sim
    specs = incast_specs(topo, 4, 4, 8 * MIB)
    dst = specs[0].dst
    edge = topo.dcs[dst.dc].edges[0][0]
    port = topo.net.port_between(edge, dst)
    monitor = QueueMonitor(sim, port, interval_ps=100 * US)
    done: List = []
    for i, spec in enumerate(specs):
        cc = _unocc(params, spec.src.dc != spec.dst.dc, use_qa=use_qa,
                    warm_start=True)
        _start(sim, topo, params, spec, cc, seed * 100 + i,
               on_complete=lambda s: done.append(s.stats))
    sim.run(until=scale.horizon_ps)
    if len(done) != len(specs):
        raise RuntimeError("QA ablation: flows unfinished")
    fct = summarize_fcts(done)
    # Queue occupancy after the initial shock (> 2 inter-DC RTTs in).
    settled = [s[1] for s in monitor.samples
               if s[0] > 2 * params.inter_rtt_ps]
    return {
        "fct_mean_ms": fct.mean_ms,
        "fct_p99_ms": fct.p99_ms,
        "queue_mean_kb_after_shock": sum(settled) / len(settled) / 1024,
        "drops": topo.net.total_drops(),
    }


def ablate_gentle_md(scale: ExperimentScale, seed: int,
                     gentle: bool) -> Dict:
    """One long inter-DC flow alone: marking comes from phantom queues
    only, so the gentle MD_scale should preserve throughput."""
    params = scale.params()
    topo = _make_topo(scale, params, seed)
    sim = topo.sim
    from repro.workloads.generator import FlowSpec

    spec = FlowSpec(0, topo.host(0, 0), topo.host(1, 0), 64 * GIB, True)
    cc = _unocc(params, True, gentle=gentle)
    sender = _start(sim, topo, params, spec, cc, seed, ec=False)
    window = 80 * MS
    sim.run(until=window)
    gbps = sender.stats.bytes_acked * 8 / (window / 1000)
    return {"goodput_gbps": gbps}


def ablate_ec_redundancy(scale: ExperimentScale, seed: int,
                         parity: int) -> Dict:
    """One parity setting under correlated loss: retransmissions vs
    overhead."""
    ge = calibrate_gilbert_elliott(5e-3, mean_burst_packets=1.5)
    params = dataclasses.replace(scale.params(), ec_parity_pkts=parity)
    topo = _make_topo(scale, params, seed)
    sim = topo.sim
    for i, (ab, _ba) in enumerate(topo.border_links):
        ab.loss_model = GilbertElliottLoss(ge, seed=seed * 7 + i)
    from repro.workloads.generator import FlowSpec

    spec = FlowSpec(0, topo.host(0, 0), topo.host(1, 0), 8 * MIB, True)
    cc = _unocc(params, True)
    done: List = []
    sender = _start(sim, topo, params, spec, cc, seed,
                    on_complete=lambda s: done.append(s), ec=True)
    sim.run(until=scale.horizon_ps)
    if not done:
        raise RuntimeError(f"EC ablation parity={parity}: unfinished")
    st = sender.stats
    return {
        "retransmissions": st.retransmissions,
        "parity_sent": st.parity_pkts_sent,
        "fct_ms": st.fct_ps / 1e9,
    }


def points(quick: bool = True,
           seed: Optional[int] = None) -> List[ExperimentPoint]:
    """One point per ablation variant across the four families."""
    seed = DEFAULT_SEED if seed is None else seed

    def pt(name, config):
        config["quick"] = quick
        return ExperimentPoint("ablations", name, config, seed=seed)

    pts = [pt(f"granularity/{'unified' if u else 'own-rtt'}",
              {"family": "unified_granularity", "unified": u})
           for u in (True, False)]
    pts += [pt(f"qa/{'qa' if q else 'no-qa'}",
               {"family": "quick_adapt", "use_qa": q})
            for q in (True, False)]
    pts += [pt(f"md/{'gentle' if g else 'full-md'}",
               {"family": "gentle_md", "gentle": g})
            for g in (True, False)]
    pts += [pt(f"ec/(8,{parity})",
               {"family": "ec_redundancy", "parity": parity})
            for parity in EC_PARITIES]
    return pts


def run_point(point: ExperimentPoint) -> Dict:
    """One ablation variant, dispatched by its family."""
    cfg = point.cfg
    scale = scale_for(cfg["quick"])
    family = cfg["family"]
    if family == "unified_granularity":
        window = 100 * MS if cfg["quick"] else 400 * MS
        return ablate_unified_granularity(scale, point.seed, window,
                                          cfg["unified"])
    if family == "quick_adapt":
        return ablate_quick_adapt(scale, point.seed, cfg["use_qa"])
    if family == "gentle_md":
        return ablate_gentle_md(scale, point.seed, cfg["gentle"])
    if family == "ec_redundancy":
        return ablate_ec_redundancy(scale, point.seed, cfg["parity"])
    raise ValueError(f"unknown ablation family {family!r}")


def summarize(results: Dict[str, Dict]) -> Dict:
    """Regroup variants under their ablation families."""
    def take(prefix, names):
        return {n: results[f"{prefix}/{n}"] for n in names
                if f"{prefix}/{n}" in results}

    return {
        "unified_granularity": take("granularity", ("unified", "own-rtt")),
        "quick_adapt": take("qa", ("qa", "no-qa")),
        "gentle_md": take("md", ("gentle", "full-md")),
        "ec_redundancy": take("ec", [f"(8,{p})" for p in EC_PARITIES]),
    }


def run(quick: bool = True, seed: Optional[int] = None) -> Dict:
    """Run the experiment; ``quick`` selects the scaled-down configuration."""
    from repro.experiments.runner import run_experiment

    return run_experiment("ablations", quick, seed=seed)


def report(res: Dict) -> None:
    """Print the paper-vs-measured tables for a results dict."""
    ug = res["unified_granularity"]
    print_experiment(
        "Ablation: unified epoch granularity (paper 4.1.1)",
        "own-RTT epochs converge to fairness slower than unified epochs",
        ["epochs", "convergence(J>0.9)", "tail Jain"],
        [[k, "never" if v["convergence_ms"] is None else f"{v['convergence_ms']:.0f}ms",
          f"{v['tail_jain']:.3f}"] for k, v in ug.items()],
    )
    qa = res["quick_adapt"]
    print_experiment(
        "Ablation: Quick Adapt (paper 4.1.2)",
        "QA snaps an extreme overload to the measured capacity within an "
        "RTT: lower standing queue and fewer drops than MD-only",
        ["variant", "queue after shock KiB", "drops", "mean FCT ms",
         "p99 FCT ms"],
        [[k, f"{v['queue_mean_kb_after_shock']:.0f}", v["drops"],
          f"{v['fct_mean_ms']:.2f}", f"{v['fct_p99_ms']:.2f}"]
         for k, v in qa.items()],
    )
    gm = res["gentle_md"]
    print_experiment(
        "Ablation: gentle phantom MD (Algorithm 1 line 10)",
        "full-strength MD on phantom-only congestion costs goodput",
        ["variant", "goodput Gbps"],
        [[k, f"{v['goodput_gbps']:.1f}"] for k, v in gm.items()],
    )
    ec = res["ec_redundancy"]
    print_experiment(
        "Ablation: EC redundancy under correlated loss (paper 4.2)",
        "more parity -> fewer retransmissions, bounded by the scheme's "
        "fixed overhead",
        ["scheme", "retx", "parity sent", "FCT ms"],
        [[k, v["retransmissions"], v["parity_sent"], f"{v['fct_ms']:.2f}"]
         for k, v in ec.items()],
    )


def main(quick: bool = True) -> Dict:
    """Run and print the paper-vs-measured tables; returns the results dict."""
    res = run(quick=quick)
    report(res)
    return res


if __name__ == "__main__":
    main()
