"""Extension experiment: Uno + Annulus near-source loop (paper footnote 4).

An oversubscribed scenario: many hosts in DC0 each send one inter-DC flow,
funneling through the 8 WAN links (aggregate demand > WAN capacity), so
congestion builds at the border uplinks *inside the source DC*. The
Annulus add-on signals that congestion back to the senders within an
intra-DC RTT; plain Uno waits for the end-to-end ECN echo (one inter-DC
RTT). Expectation: Annulus reduces drops at the hotspot and improves the
inter-DC tail FCT.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.fct import summarize_fcts
from repro.coding.block import BlockConfig
from repro.core.annulus import AnnulusConfig, AnnulusUnoCC, enable_qcn
from repro.core.params import UnoParams
from repro.core.unocc import UnoCCConfig
from repro.core.unolb import UnoLB
from repro.core.unorc import UnoRCConfig, UnoRCReceiver, UnoRCSender
from repro.experiments.api import ExperimentPoint
from repro.experiments.harness import ExperimentScale, scale_for
from repro.experiments.report import print_experiment
from repro.sim.engine import Simulator
from repro.sim.switch import QCNConfig
from repro.sim.units import MIB
from repro.topology.multidc import MultiDC, MultiDCConfig

DEFAULT_SEED = 14
VARIANTS = ("uno", "uno+annulus")


def _cc(params: UnoParams, annulus: bool) -> AnnulusUnoCC:
    config = UnoCCConfig(
        alpha_frac_of_bdp=params.alpha_frac_of_bdp,
        beta=params.qa_beta,
        k_bytes=params.k_bytes,
        epoch_period_ps=params.intra_rtt_ps,
    )
    if annulus:
        return AnnulusUnoCC(config, AnnulusConfig())
    # AnnulusUnoCC without QCN-armed switches never sees CNPs, but using
    # the plain class keeps the comparison honest.
    from repro.core.unocc import UnoCC

    return UnoCC(config)


def run_variant(annulus: bool, scale: ExperimentScale, flow_bytes: int,
                seed: int) -> Dict:
    """Oversubscribed-WAN run with or without the Annulus loop."""
    sim = Simulator()
    params = scale.params()
    topo = MultiDC(
        sim,
        MultiDCConfig(
            k=scale.k,
            gbps=params.link_gbps,
            n_border_links=max(2, scale.n_border_links // 2),  # oversubscribe
            intra_rtt_ps=params.intra_rtt_ps,
            inter_rtt_ps=params.inter_rtt_ps,
            queue_bytes=params.queue_bytes,
            red=params.red(),
            phantom=params.phantom(),
            seed=seed,
        ),
    )
    if annulus:
        enable_qcn(
            topo.net,
            QCNConfig(
                threshold_bytes=params.queue_bytes // 2,
                min_interval_ps=params.intra_rtt_ps,
            ),
        )
    from repro.transport.base import start_flow

    n = len(topo.hosts(0))
    done = []
    senders = []
    rc = UnoRCConfig(block=BlockConfig(params.ec_data_pkts,
                                       params.ec_parity_pkts))
    for i in range(n):
        src = topo.host(0, i)
        dst = topo.host(1, i)
        senders.append(start_flow(
            sim, topo.net, _cc(params, annulus), src, dst, flow_bytes,
            sender_cls=UnoRCSender, receiver_cls=UnoRCReceiver,
            receiver_kwargs={"rc": rc}, rc=rc,
            path=UnoLB(n_subflows=rc.block.block_pkts),
            mss=params.mtu_bytes, base_rtt_ps=params.inter_rtt_ps,
            line_gbps=params.link_gbps, is_inter_dc=True,
            seed=seed * 100 + i, on_complete=done.append,
        ))
    sim.run(until=scale.horizon_ps)
    if len(done) != n:
        raise RuntimeError("annulus experiment: flows unfinished")
    fct = summarize_fcts([s.stats for s in senders])
    cnps = sum(sw.cnps_sent for sw in topo.net.switches)
    return {
        "fct_mean_ms": fct.mean_ms,
        "fct_p99_ms": fct.p99_ms,
        "drops": topo.net.total_drops(),
        "cnps": cnps,
    }


def points(quick: bool = True,
           seed: Optional[int] = None) -> List[ExperimentPoint]:
    """One point per variant: plain Uno and Uno with the Annulus loop."""
    seed = DEFAULT_SEED if seed is None else seed
    return [
        ExperimentPoint("annulus_ext", name,
                        {"annulus": name == "uno+annulus", "quick": quick},
                        seed=seed)
        for name in VARIANTS
    ]


def run_point(point: ExperimentPoint) -> Dict:
    """One oversubscribed-WAN run, with or without the Annulus loop."""
    cfg = point.cfg
    scale = scale_for(cfg["quick"])
    flow_bytes = 4 * MIB if cfg["quick"] else 64 * MIB
    return run_variant(cfg["annulus"], scale, flow_bytes, point.seed)


def summarize(results: Dict[str, Dict]) -> Dict:
    """Order the two variants as the report table expects."""
    return {name: results[name] for name in VARIANTS if name in results}


def run(quick: bool = True, seed: Optional[int] = None) -> Dict:
    """Run the experiment; ``quick`` selects the scaled-down configuration."""
    from repro.experiments.runner import run_experiment

    return run_experiment("annulus_ext", quick, seed=seed)


def report(res: Dict) -> None:
    """Print the paper-vs-measured table for a results dict."""
    rows = [
        [k, f"{v['fct_mean_ms']:.2f}", f"{v['fct_p99_ms']:.2f}",
         v["drops"], v["cnps"]]
        for k, v in res.items()
    ]
    print_experiment(
        "Extension: Annulus near-source loop on oversubscribed WAN uplinks",
        "the fast near-source loop cuts hotspot drops; FCT comparable or "
        "better (the paper left this add-on as future work)",
        ["variant", "mean FCT ms", "p99 FCT ms", "drops", "CNPs"],
        rows,
    )


def main(quick: bool = True) -> Dict:
    """Run and print the paper-vs-measured table; returns the results dict."""
    res = run(quick=quick)
    report(res)
    return res


if __name__ == "__main__":
    main()
