"""Shared experiment machinery: scheme registry, topology builder, and
the run loop.

A *scheme* is one of the paper's comparison points:

- ``"uno"``        — UnoCC + UnoRC (EC) + UnoLB; phantom queues on.
- ``"uno_ecmp"``   — UnoCC only, single ECMP path, no EC; phantom on.
- ``"gemini"``     — Gemini for all flows; ECMP; no phantom queues.
- ``"mprdma_bbr"`` — MPRDMA intra-DC + BBR inter-DC; ECMP; no phantom.

Load-balancer/EC ablations (Fig 13) are expressed through ``lb`` and
``ec`` overrides on the Uno launcher rather than separate scheme names.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, List, Optional, Sequence

from repro.coding.block import BlockConfig
from repro.core.params import UnoParams
from repro.core.uno import make_unocc, start_uno_flow
from repro.core.unolb import UnoLB
from repro.core.unorc import UnoRCConfig, UnoRCReceiver, UnoRCSender
from repro.lb.plb import PLB
from repro.sim.engine import Simulator
from repro.sim.host import Host
from repro.sim.network import Network
from repro.sim.units import MIB, MS, US
from repro.topology.multidc import MultiDC, MultiDCConfig
from repro.transport.base import AbortPolicy, FixedEntropy, Sender, start_flow
from repro.transport.bbr import BBR
from repro.transport.gemini import Gemini, GeminiConfig
from repro.transport.mprdma import MPRDMA
from repro.workloads.generator import FlowSpec

SCHEMES = ("uno", "uno_ecmp", "gemini", "mprdma_bbr")
PHANTOM_SCHEMES = {"uno", "uno_ecmp"}


@dataclass(frozen=True)
class ExperimentScale:
    """Scaled-down (quick) vs paper-scale experiment presets.

    Quick mode shrinks the fat-tree arity, the link rate (and with it the
    per-packet event cost of a second of traffic) and the flow sizes,
    while preserving the ratios the paper's effects live on: inter/intra
    RTT ratio, buffer/BDP ratio, EC overhead, load fraction.
    """

    k: int = 4
    gbps: float = 25.0
    queue_bytes: int = MIB // 4           # scales with gbps: same buffer/BDP
    intra_rtt_ps: int = 14 * US
    inter_rtt_ps: int = 2 * MS
    n_border_links: int = 8
    size_scale: float = 1.0 / 16.0        # flow-size CDF multiplier
    horizon_ps: int = 4_000_000_000_000   # absolute simulation cap (4 s)

    @classmethod
    def quick(cls) -> "ExperimentScale":
        return cls()

    @classmethod
    def paper(cls) -> "ExperimentScale":
        return cls(
            k=8,
            gbps=100.0,
            queue_bytes=MIB,
            size_scale=1.0,
        )

    def params(self, **overrides) -> UnoParams:
        base = dict(
            link_gbps=self.gbps,
            intra_rtt_ps=self.intra_rtt_ps,
            inter_rtt_ps=self.inter_rtt_ps,
            queue_bytes=self.queue_bytes,
        )
        base.update(overrides)
        return UnoParams(**base)


def scale_for(quick: bool, **overrides) -> ExperimentScale:
    """The preset for ``quick`` with field overrides applied — how a
    point's ``config`` (quick flag + scalar knobs) turns back into an
    :class:`ExperimentScale` inside ``run_point``."""
    base = ExperimentScale.quick() if quick else ExperimentScale.paper()
    return replace(base, **overrides) if overrides else base


def build_multidc(
    sim: Simulator,
    scheme: str,
    params: UnoParams,
    scale: ExperimentScale,
    *,
    inter_gbps: Optional[float] = None,
    border_queue_bytes: Optional[int] = None,
    switch_mode: str = "ecmp",
    seed: int = 1,
    convergence_delay_ps: Optional[float] = None,
) -> MultiDC:
    """The two-DC topology with scheme-appropriate marking config."""
    if scheme not in SCHEMES:
        raise ValueError(f"unknown scheme {scheme!r}; choose from {SCHEMES}")
    phantom = params.phantom() if scheme in PHANTOM_SCHEMES else None
    return MultiDC(
        sim,
        MultiDCConfig(
            k=scale.k,
            gbps=params.link_gbps,
            inter_gbps=inter_gbps,
            n_border_links=scale.n_border_links,
            intra_rtt_ps=params.intra_rtt_ps,
            inter_rtt_ps=params.inter_rtt_ps,
            queue_bytes=params.queue_bytes,
            border_queue_bytes=border_queue_bytes,
            red=params.red(),
            phantom=phantom,
            switch_mode=switch_mode,
            seed=seed,
            convergence_delay_ps=convergence_delay_ps,
        ),
    )


# A launcher starts one flow: (spec, flow_index, on_complete) -> Sender.
FlowLauncher = Callable[[FlowSpec, int, Callable[[Sender], None]], Sender]


def make_launcher(
    scheme: str,
    sim: Simulator,
    topo: MultiDC,
    params: UnoParams,
    *,
    seed: int = 0,
    lb: Optional[str] = None,   # Uno only: "unolb" (default), "ecmp", "plb", "rps"
    ec: Optional[bool] = None,  # Uno only: erasure coding on inter-DC flows
    abort: Optional[AbortPolicy] = None,  # connection abort policy (all schemes)
) -> FlowLauncher:
    """Build the per-scheme flow launcher used by every experiment."""
    if scheme not in SCHEMES:
        raise ValueError(f"unknown scheme {scheme!r}; choose from {SCHEMES}")
    net = topo.net

    if scheme in ("uno", "uno_ecmp"):
        use_lb_default = scheme == "uno"
        use_ec = (scheme == "uno") if ec is None else ec
        lb_name = lb if lb is not None else ("unolb" if use_lb_default else "ecmp")

        def launch(spec: FlowSpec, idx: int, on_complete) -> Sender:
            if lb_name == "unolb":
                n_sub = params.ec_data_pkts + params.ec_parity_pkts
                path = UnoLB(n_subflows=n_sub)
            elif lb_name == "plb":
                path = PLB()
            else:  # "ecmp" and "rps" (rps is a switch mode; sender entropy fixed)
                path = FixedEntropy()
            return start_uno_flow(
                sim,
                net,
                spec.src,
                spec.dst,
                spec.size_bytes,
                params,
                start_ps=spec.start_ps,
                use_rc=use_ec,
                use_lb=False,  # path passed explicitly below
                path=path,
                abort=abort,
                on_complete=on_complete,
                seed=seed ^ (idx * 0x9E3779B1),
            )

        return launch

    if scheme == "gemini":

        def launch(spec: FlowSpec, idx: int, on_complete) -> Sender:
            cc = Gemini(
                GeminiConfig(alpha_frac_of_bdp=params.alpha_frac_of_bdp),
                intra_bdp_bytes=params.intra_bdp_bytes,
            )
            is_inter = spec.src.dc != spec.dst.dc
            return start_flow(
                sim,
                net,
                cc,
                spec.src,
                spec.dst,
                spec.size_bytes,
                start_ps=spec.start_ps,
                mss=params.mtu_bytes,
                base_rtt_ps=params.base_rtt_for(is_inter),
                line_gbps=params.link_gbps,
                is_inter_dc=is_inter,
                abort=abort,
                on_complete=on_complete,
                seed=seed ^ (idx * 0x9E3779B1),
            )

        return launch

    # mprdma_bbr: separated control loops.
    def launch(spec: FlowSpec, idx: int, on_complete) -> Sender:
        is_inter = spec.src.dc != spec.dst.dc
        cc = BBR() if is_inter else MPRDMA()
        return start_flow(
            sim,
            net,
            cc,
            spec.src,
            spec.dst,
            spec.size_bytes,
            start_ps=spec.start_ps,
            mss=params.mtu_bytes,
            base_rtt_ps=params.base_rtt_for(is_inter),
            line_gbps=params.link_gbps,
            is_inter_dc=is_inter,
            abort=abort,
            on_complete=on_complete,
            seed=seed ^ (idx * 0x9E3779B1),
        )

    return launch


def run_specs(
    sim: Simulator,
    specs: Sequence[FlowSpec],
    launcher: FlowLauncher,
    horizon_ps: int,
    net: Optional[Network] = None,
) -> List[Sender]:
    """Start every spec, run to completion, and return the senders.

    Raises RuntimeError if flows remain unfinished at the horizon (an
    experiment must never silently report partial results) — except that
    a drained event heap with pending flows raises the more specific
    'deadlock' error, which test suites rely on to catch transport bugs.
    """
    if not specs:
        raise ValueError("no flow specs to run")
    remaining = [len(specs)]
    senders: List[Sender] = []

    def done(_s: Sender) -> None:
        remaining[0] -= 1

    for idx, spec in enumerate(specs):
        senders.append(launcher(spec, idx, done))
    sim.run(until=horizon_ps)
    if remaining[0] > 0:
        unfinished = [s.flow_id for s in senders if not s.done][:10]
        if sim.peek_time() is None:
            raise RuntimeError(
                f"transport deadlock: {remaining[0]} flows pending with an "
                f"empty event heap (first ids: {unfinished})"
            )
        raise RuntimeError(
            f"{remaining[0]} flows unfinished at horizon {horizon_ps}ps "
            f"(first ids: {unfinished})"
        )
    return senders
