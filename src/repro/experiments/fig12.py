"""Figure 12: shallow intra-DC and deep inter-DC switch buffers.

The realistic 40 %-load workload with per-class queue sizes: intra-DC
ports get one intra-DC BDP of buffering, the WAN (border) ports get
0.1x the inter-DC BDP — the paper's "shallow inside, deep across"
configuration. Expectation mirrors Fig 10: Uno+ECMP lowers inter-DC FCT
with a slight intra penalty; full Uno wins both classes (paper: tail FCT
3.1x/1.7x lower than Gemini intra/inter, 3.6x/1.8x vs MPRDMA+BBR).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.experiments.api import ExperimentPoint
from repro.experiments.harness import scale_for
from repro.experiments.realistic import cell_json, run_realistic
from repro.experiments.report import print_experiment
from repro.sim.units import MS

SCHEMES = ("uno", "uno_ecmp", "gemini", "mprdma_bbr")
DEFAULT_SEED = 7


def _queue_sizes(quick: bool) -> Tuple[int, int]:
    """The paper's shallow-intra / deep-inter buffer depths at scale."""
    probe = scale_for(quick).params()
    intra_q = max(16 * probe.mtu_bytes, probe.intra_bdp_bytes)
    inter_q = max(16 * probe.mtu_bytes, int(0.1 * probe.inter_bdp_bytes))
    return intra_q, inter_q


def points(quick: bool = True,
           seed: Optional[int] = None) -> List[ExperimentPoint]:
    """One point per scheme under asymmetric buffer depths."""
    seed = DEFAULT_SEED if seed is None else seed
    return [
        ExperimentPoint("fig12", scheme, {"scheme": scheme, "quick": quick},
                        seed=seed)
        for scheme in SCHEMES
    ]


def run_point(point: ExperimentPoint) -> Dict:
    """One scheme's realistic-workload run with per-class buffers."""
    cfg = point.cfg
    quick = cfg["quick"]
    scale = scale_for(quick)
    duration = 4 * MS if quick else 100 * MS
    max_flows = 2500 if quick else None
    intra_q, inter_q = _queue_sizes(quick)
    cell = cell_json(run_realistic(
        cfg["scheme"], 0.4, scale, seed=point.seed, duration_ps=duration,
        max_flows=max_flows,
        params_overrides={"queue_bytes": intra_q},
        border_queue_bytes=inter_q,
    ))
    cell["intra_queue"] = intra_q
    cell["inter_queue"] = inter_q
    return cell


def summarize(results: Dict[str, Dict]) -> Dict:
    """Collect the per-scheme cells and the shared buffer depths."""
    cells = {s: results[s] for s in SCHEMES if s in results}
    first = next(iter(cells.values()))
    return {"cells": cells, "intra_queue": first["intra_queue"],
            "inter_queue": first["inter_queue"]}


def run(quick: bool = True, seed: Optional[int] = None) -> Dict:
    """Run the experiment; ``quick`` selects the scaled-down configuration."""
    from repro.experiments.runner import run_experiment

    return run_experiment("fig12", quick, seed=seed)


def report(res: Dict) -> None:
    """Print the paper-vs-measured table for a results dict."""
    rows = []
    for scheme, r in res["cells"].items():
        intra, inter = r["intra"], r["inter"]
        rows.append([
            scheme,
            f"{intra['mean_us']:.0f}" if intra else "-",
            f"{intra['p99_us']:.0f}" if intra else "-",
            f"{inter['mean_ms']:.2f}" if inter else "-",
            f"{inter['p99_ms']:.2f}" if inter else "-",
        ])
    print_experiment(
        f"Figure 12: shallow intra ({res['intra_queue']//1024} KiB) / deep "
        f"inter ({res['inter_queue']//1024} KiB) buffers, 40% load",
        "Uno keeps its advantage when buffer depths differ inside vs "
        "across DCs; tail FCT several times lower than both baselines",
        ["scheme", "intra mean us", "intra p99 us", "inter mean ms",
         "inter p99 ms"],
        rows,
    )


def main(quick: bool = True) -> Dict:
    """Run and print the paper-vs-measured table; returns the results dict."""
    res = run(quick=quick)
    report(res)
    return res


if __name__ == "__main__":
    main()
