"""Figure 12: shallow intra-DC and deep inter-DC switch buffers.

The realistic 40 %-load workload with per-class queue sizes: intra-DC
ports get one intra-DC BDP of buffering, the WAN (border) ports get
0.1x the inter-DC BDP — the paper's "shallow inside, deep across"
configuration. Expectation mirrors Fig 10: Uno+ECMP lowers inter-DC FCT
with a slight intra penalty; full Uno wins both classes (paper: tail FCT
3.1x/1.7x lower than Gemini intra/inter, 3.6x/1.8x vs MPRDMA+BBR).
"""

from __future__ import annotations

from typing import Dict

from repro.experiments.harness import ExperimentScale
from repro.experiments.realistic import run_realistic
from repro.experiments.report import print_experiment
from repro.sim.units import MS

SCHEMES = ("uno", "uno_ecmp", "gemini", "mprdma_bbr")


def run(quick: bool = True, seed: int = 7) -> Dict:
    """Run the experiment; ``quick`` selects the scaled-down configuration."""
    scale = ExperimentScale.quick() if quick else ExperimentScale.paper()
    duration = 4 * MS if quick else 100 * MS
    max_flows = 2500 if quick else None
    params_probe = scale.params()
    intra_q = max(16 * params_probe.mtu_bytes, params_probe.intra_bdp_bytes)
    inter_q = max(16 * params_probe.mtu_bytes,
                  int(0.1 * params_probe.inter_bdp_bytes))
    cells: Dict[str, Dict] = {}
    for scheme in SCHEMES:
        cells[scheme] = run_realistic(
            scheme, 0.4, scale, seed=seed, duration_ps=duration,
            max_flows=max_flows,
            params_overrides={"queue_bytes": intra_q},
            border_queue_bytes=inter_q,
        )
    return {"cells": cells, "intra_queue": intra_q, "inter_queue": inter_q}


def main(quick: bool = True) -> Dict:
    """Run and print the paper-vs-measured table; returns the results dict."""
    res = run(quick=quick)
    rows = []
    for scheme, r in res["cells"].items():
        intra, inter = r["intra"], r["inter"]
        rows.append([
            scheme,
            f"{intra.mean_us:.0f}" if intra else "-",
            f"{intra.p99_us:.0f}" if intra else "-",
            f"{inter.mean_ms:.2f}" if inter else "-",
            f"{inter.p99_ms:.2f}" if inter else "-",
        ])
    print_experiment(
        f"Figure 12: shallow intra ({res['intra_queue']//1024} KiB) / deep "
        f"inter ({res['inter_queue']//1024} KiB) buffers, 40% load",
        "Uno keeps its advantage when buffer depths differ inside vs "
        "across DCs; tail FCT several times lower than both baselines",
        ["scheme", "intra mean us", "intra p99 us", "inter mean ms",
         "inter p99 ms"],
        rows,
    )
    return res


if __name__ == "__main__":
    main()
