"""Table 1: packet-loss structure between datacenter pairs.

The paper measured 320 M 2-KiB packets between two pairs of cloud
regions (Setup 1: 65 ms RTT, loss 5.01e-5; Setup 2: 33 ms RTT, loss
1.22e-5) and counted how many 10-packet blocks lost exactly 1, 2 or 3+
packets — finding far more multi-loss blocks than independent loss would
produce (link-correlated drops).

We reproduce the loss *process* with the Gilbert-Elliott model
calibrated to each setup's marginal rate, push a packet stream through
it, and report the same per-block loss-multiplicity rates next to the
paper's numbers. (The raw cloud measurement itself is unreproducible
without the authors' infrastructure; see DESIGN.md.)
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.experiments.api import ExperimentPoint
from repro.experiments.report import print_experiment
from repro.sim.failures import GilbertElliottLoss, calibrate_gilbert_elliott
from repro.sim.packet import DATA, Packet

DEFAULT_SEED = 9

PAPER = {
    "setup1": {
        "rtt_ms": 65,
        "loss_rate": 5.01e-5,
        "block_rates": {1: 3.0e-4, 2: 7.5e-5, 3: 1.6e-5},
        # Empirically fitted (see tests): reproduces the measured
        # 2-loss/1-loss ~ 0.25 and 3-loss/1-loss ~ 0.05 block ratios.
        "ge_mean_burst": 1.0,
        "ge_loss_bad": 0.7,
    },
    "setup2": {
        "rtt_ms": 33,
        "loss_rate": 1.22e-5,
        "block_rates": {1: 4.0e-5, 2: 2.3e-5, 3: 4.9e-6},
        # Setup 2 is burstier relative to its (lower) marginal rate.
        "ge_mean_burst": 1.2,
        "ge_loss_bad": 0.7,
    },
}

BLOCK = 10


def points(quick: bool = True,
           seed: Optional[int] = None) -> List[ExperimentPoint]:
    """One point per measured cloud setup."""
    seed = DEFAULT_SEED if seed is None else seed
    n_packets = 2_000_000 if quick else 50_000_000
    return [
        ExperimentPoint("table1", name,
                        {"setup": name, "n_packets": n_packets,
                         "quick": quick},
                        seed=seed)
        for name in PAPER
    ]


def run_point(point: ExperimentPoint) -> Dict:
    """Push one setup's calibrated loss process through blocked packets."""
    cfg = point.cfg
    setup = PAPER[cfg["setup"]]
    pkt = Packet(DATA, 1, 0, 1, seq=0, size=2048)
    params = calibrate_gilbert_elliott(
        setup["loss_rate"],
        mean_burst_packets=setup["ge_mean_burst"],
        loss_bad=setup["ge_loss_bad"],
    )
    model = GilbertElliottLoss(params, seed=point.seed)
    counts = {1: 0, 2: 0, 3: 0}
    n_blocks = cfg["n_packets"] // BLOCK
    for _ in range(n_blocks):
        losses = sum(model(pkt, 0) for _ in range(BLOCK))
        if losses >= 3:
            counts[3] += 1
        elif losses > 0:
            counts[losses] += 1
    return {
        "setup": cfg["setup"],
        "measured_loss_rate": model.losses / model.packets,
        "block_rates": {k: v / n_blocks for k, v in counts.items()},
        "n_blocks": n_blocks,
    }


def summarize(results: Dict[str, Dict]) -> Dict:
    """Re-attach the paper's measured numbers and the calibrated model
    parameters (derived, not cached) to each setup's simulated rates."""
    out: Dict[str, Dict] = {}
    for name in PAPER:
        if name not in results:
            continue
        r = results[name]
        setup = PAPER[name]
        out[name] = {
            "params": calibrate_gilbert_elliott(
                setup["loss_rate"],
                mean_burst_packets=setup["ge_mean_burst"],
                loss_bad=setup["ge_loss_bad"],
            ),
            "measured_loss_rate": r["measured_loss_rate"],
            # JSON stringifies the loss-multiplicity keys; restore ints.
            "block_rates": {int(k): v for k, v in r["block_rates"].items()},
            "paper": setup,
            "n_blocks": r["n_blocks"],
        }
    return out


def run(quick: bool = True, seed: Optional[int] = None) -> Dict:
    """Run the experiment; ``quick`` selects the scaled-down configuration."""
    from repro.experiments.runner import run_experiment

    return run_experiment("table1", quick, seed=seed)


def report(res: Dict) -> None:
    """Print the paper-vs-measured table for a results dict."""
    rows = []
    for name, r in res.items():
        for k in (1, 2, 3):
            rows.append([
                name, f"{'>=' if k == 3 else ''}{k}",
                f"{r['paper']['block_rates'][k]:.2e}",
                f"{r['block_rates'][k]:.2e}",
            ])
        rows.append([name, "marginal",
                     f"{r['paper']['loss_rate']:.2e}",
                     f"{r['measured_loss_rate']:.2e}"])
    print_experiment(
        "Table 1: per-10-packet-block loss multiplicity",
        "correlated (Gilbert-Elliott) losses: multi-loss blocks orders of "
        "magnitude above the independence prediction, matching the "
        "paper's measured ratios",
        ["setup", "losses/block", "paper rate", "model rate"],
        rows,
    )


def main(quick: bool = True) -> Dict:
    """Run and print the paper-vs-measured table; returns the results dict."""
    res = run(quick=quick)
    report(res)
    return res


if __name__ == "__main__":
    main()
