"""Experiment harness: one module per paper figure/table.

Each ``figN``/``tableN`` module exposes ``run(quick=True, seed=...)``
returning a plain dict of results and a ``main()`` that prints the
paper-vs-measured comparison. ``quick=True`` runs a scaled-down but
shape-preserving configuration suitable for a laptop (see DESIGN.md's
substitution notes); ``quick=False`` approaches the paper's scale.
"""

from repro.experiments.harness import (
    ExperimentScale,
    FlowLauncher,
    build_multidc,
    make_launcher,
    run_specs,
)

__all__ = [
    "ExperimentScale",
    "FlowLauncher",
    "build_multidc",
    "make_launcher",
    "run_specs",
]
