"""Experiment harness: one module per paper figure/table.

Each ``figN``/``tableN`` module speaks the point protocol defined in
:mod:`repro.experiments.api`: ``points(quick, seed)`` describes the
sweep as independent :class:`ExperimentPoint` s, ``run_point(point)``
executes one of them from scratch, and ``summarize(results)`` reduces
the per-point dicts to the module's aggregate result. The generic
engine in :mod:`repro.experiments.runner` executes any point list in
parallel worker processes, caches completed points on disk, and resumes
interrupted sweeps (see ``python -m repro.experiments.run_all --help``).

``module.run(quick=True, seed=...)`` remains the one-call entry point
(now a thin wrapper over the runner) and ``main()`` prints the
paper-vs-measured comparison. ``quick=True`` runs a scaled-down but
shape-preserving configuration suitable for a laptop (see DESIGN.md's
substitution notes); ``quick=False`` approaches the paper's scale.
"""

from repro.experiments.api import (
    EXPERIMENTS,
    ExperimentPoint,
    TwoDCWorkload,
    canonical_json,
    check_equivalence,
    execute_point,
    experiment_module,
    run_sharded,
)
from repro.experiments.cache import ResultCache, point_key
from repro.experiments.harness import (
    ExperimentScale,
    FlowLauncher,
    build_multidc,
    make_launcher,
    run_specs,
    scale_for,
)
from repro.experiments.runner import (
    PointRecord,
    failures,
    raise_failures,
    results_by_name,
    run_experiment,
    run_points,
)

__all__ = [
    "EXPERIMENTS",
    "ExperimentPoint",
    "ExperimentScale",
    "FlowLauncher",
    "PointRecord",
    "ResultCache",
    "TwoDCWorkload",
    "build_multidc",
    "check_equivalence",
    "canonical_json",
    "execute_point",
    "experiment_module",
    "failures",
    "make_launcher",
    "point_key",
    "raise_failures",
    "results_by_name",
    "run_experiment",
    "run_points",
    "run_sharded",
    "run_specs",
    "scale_for",
]
