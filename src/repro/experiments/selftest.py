"""A miniature experiment exercising the point protocol end-to-end.

Not a paper figure: this module is the executable reference for the
point API (see :mod:`repro.experiments.api`) and the workload behind
``tests/test_runner.py`` — cheap deterministic points, plus opt-in
failure modes so the runner's structured-failure and timeout paths can
be tested without a real (expensive) simulation:

- ``mode="ok"`` (default): seeded pseudo-random sample mean.
- ``mode="fail"``: raises ValueError (exercise failure records).
- ``mode="sleep"``: blocks for ``sleep_s`` (exercise timeouts).
- ``mode="flaky"``: fails the first ``fail_times`` attempts, counted in
  the file at ``marker`` (exercise the runner's retry pass, including
  across worker processes).
"""

from __future__ import annotations

import random
import time
from typing import Dict, List, Optional

from repro.experiments.api import ExperimentPoint
from repro.experiments.report import print_experiment

DEFAULT_SEED = 1234
CELLS = ("a", "b", "c", "d")


def points(quick: bool = True,
           seed: Optional[int] = None) -> List[ExperimentPoint]:
    """One cheap deterministic point per cell."""
    seed = DEFAULT_SEED if seed is None else seed
    n = 1_000 if quick else 100_000
    return [
        ExperimentPoint("selftest", f"cell/{cell}",
                        {"cell": cell, "n": n, "mode": "ok",
                         "quick": quick},
                        seed=seed + i)
        for i, cell in enumerate(CELLS)
    ]


def run_point(point: ExperimentPoint) -> Dict:
    """Pure per-point work: mean/max of a seeded uniform sample."""
    cfg = point.cfg
    mode = cfg.get("mode", "ok")
    if mode == "fail":
        raise ValueError(f"selftest point {point.name} asked to fail")
    if mode == "sleep":
        time.sleep(float(cfg.get("sleep_s", 60.0)))
        return {"slept": True}
    if mode == "flaky":
        from pathlib import Path

        marker = Path(cfg["marker"])
        attempt = (int(marker.read_text()) if marker.exists() else 0) + 1
        marker.write_text(str(attempt))
        if attempt <= int(cfg["fail_times"]):
            raise ValueError(f"flaky attempt {attempt} asked to fail")
        return {"attempts": attempt}
    rng = random.Random(point.seed)
    samples = [rng.random() for _ in range(int(cfg["n"]))]
    return {
        "cell": cfg["cell"],
        "n": len(samples),
        "mean": sum(samples) / len(samples),
        "max": max(samples),
    }


def summarize(results: Dict[str, Dict]) -> Dict:
    """Reduce per-cell means to the sweep-level aggregate."""
    cells = {r["cell"]: r for r in results.values()}
    means = [r["mean"] for r in cells.values()]
    return {
        "cells": cells,
        "grand_mean": sum(means) / len(means) if means else None,
    }


def report(res: Dict) -> None:
    """Print the per-cell table."""
    rows = [[cell, r["n"], f"{r['mean']:.4f}", f"{r['max']:.4f}"]
            for cell, r in sorted(res["cells"].items())]
    print_experiment(
        "Selftest: point-protocol smoke sweep",
        "per-cell means of seeded uniform samples cluster around 0.5",
        ["cell", "n", "mean", "max"],
        rows,
    )


def run(quick: bool = True, seed: Optional[int] = None) -> Dict:
    """Run the sweep serially; ``summarize(run_points(points(quick)))``."""
    from repro.experiments.runner import run_experiment

    return run_experiment("selftest", quick, seed=seed)


def main(quick: bool = True) -> Dict:
    """Run and print the selftest table; returns the results dict."""
    res = run(quick=quick)
    report(res)
    return res


if __name__ == "__main__":
    main()
