"""Figure 13: failure scenarios — the UnoRC (load balancing + erasure
coding) evaluation. UnoCC is the congestion control everywhere; the
comparison is across load balancers (packet spraying / PLB / UnoLB),
each with and without (8, 2) erasure coding.

(A) one of the border links fails while latency-sensitive inter-DC
    flows saturate the WAN: UnoLB routes around the dead link and EC
    absorbs partial block losses (paper: up to 3x better than no-EC,
    2x vs RPS, 6x vs PLB).
(B) random correlated loss calibrated to the paper's Table 1
    measurements, single inter-DC flow: blocks only die when 3+ packets
    of a block drop; Uno ~ spraying, both beat PLB (single path shares
    fate across the whole block).
(C) the AI-training workload: ring Allreduce iterations across the two
    DCs under link failure + random drops; report runtime / ideal.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

import numpy as np

from repro.core.params import UnoParams
from repro.core.uno import make_unocc
from repro.core.unolb import UnoLB
from repro.core.unorc import UnoRCConfig, UnoRCReceiver, UnoRCSender
from repro.coding.block import BlockConfig
from repro.experiments.api import ExperimentPoint
from repro.experiments.harness import ExperimentScale, scale_for
from repro.experiments.report import print_experiment
from repro.lb.plb import PLB
from repro.sim.engine import Simulator
from repro.sim.failures import (
    GilbertElliottLoss,
    calibrate_gilbert_elliott,
    schedule_bidirectional_failure,
)
from repro.sim.units import MIB, MS
from repro.topology.multidc import MultiDC, MultiDCConfig
from repro.transport.base import FixedEntropy, start_flow
from repro.workloads.allreduce import AllreduceConfig, RingAllreduce

LB_SCHEMES = ("spray", "plb", "unolb")
PARTS = ("A", "B", "C")
DEFAULT_SEED = 8


def make_topo(scale: ExperimentScale, params: UnoParams, lb: str,
              seed: int):
    """Two-DC topology with the LB scheme's switch mode."""
    sim = Simulator()
    topo = MultiDC(
        sim,
        MultiDCConfig(
            k=scale.k,
            gbps=params.link_gbps,
            n_border_links=scale.n_border_links,
            intra_rtt_ps=params.intra_rtt_ps,
            inter_rtt_ps=params.inter_rtt_ps,
            queue_bytes=params.queue_bytes,
            red=params.red(),
            phantom=params.phantom(),
            switch_mode="rps" if lb == "spray" else "ecmp",
            seed=seed,
        ),
    )
    return sim, topo


def make_path(lb: str, params: UnoParams):
    """The sender-side path selector for an LB scheme name."""
    if lb == "unolb":
        return UnoLB(n_subflows=params.ec_data_pkts + params.ec_parity_pkts)
    if lb == "plb":
        return PLB()
    return FixedEntropy()  # spraying happens in the switches


def start_inter_flow(sim, topo, params, src, dst, size, *, lb, ec, seed,
                     on_complete=None):
    """Launch one inter-DC UnoCC flow with the chosen LB and EC options."""
    cc = make_unocc(params, is_inter_dc=True)
    path = make_path(lb, params)
    common = dict(
        mss=params.mtu_bytes,
        base_rtt_ps=params.inter_rtt_ps,
        line_gbps=params.link_gbps,
        path=path,
        is_inter_dc=True,
        seed=seed,
        on_complete=on_complete,
    )
    if ec:
        rc = UnoRCConfig(
            block=BlockConfig(params.ec_data_pkts, params.ec_parity_pkts)
        )
        return start_flow(
            sim, topo.net, cc, src, dst, size,
            sender_cls=UnoRCSender, receiver_cls=UnoRCReceiver,
            receiver_kwargs={"rc": rc}, rc=rc, **common,
        )
    return start_flow(sim, topo.net, cc, src, dst, size, **common)


# ----------------------------------------------------------------------
# (A) border link failure
# ----------------------------------------------------------------------

def run_link_failure(lb: str, ec: bool, scale: ExperimentScale,
                     flow_bytes: int, repeats: int, seed: int) -> List[float]:
    """Per-repeat worst FCT (ms) of inter-DC flows with one border link
    failing shortly after the flows start."""
    fcts_ms = []
    for rep in range(repeats):
        params = scale.params()
        sim, topo = make_topo(scale, params, lb, seed + rep)
        ab, ba = topo.border_links[rep % len(topo.border_links)]
        schedule_bidirectional_failure(sim, ab, ba, fail_at_ps=1 * MS)
        n_flows = scale.n_border_links  # enough to saturate the WAN
        remaining = [n_flows]
        senders = []

        def done(_s):
            remaining[0] -= 1

        for i in range(n_flows):
            senders.append(start_inter_flow(
                sim, topo, params, topo.host(0, i), topo.host(1, i),
                flow_bytes, lb=lb, ec=ec, seed=seed * 1000 + rep * 100 + i,
                on_complete=done,
            ))
        sim.run(until=scale.horizon_ps)
        if remaining[0] > 0:
            raise RuntimeError(f"fig13A {lb}/ec={ec}: flows unfinished")
        fcts_ms.append(max(s.stats.fct_ps for s in senders) / 1e9)
    return fcts_ms


# ----------------------------------------------------------------------
# (B) random correlated loss
# ----------------------------------------------------------------------

def run_random_loss(lb: str, ec: bool, scale: ExperimentScale,
                    flow_bytes: int, repeats: int, seed: int,
                    loss_rate: float = 2e-3) -> List[float]:
    """Per-repeat FCT (ms) of a single inter-DC flow with Gilbert-Elliott
    correlated loss on every border link (rate scaled up from the paper's
    measured 1e-5..5e-5 so quick runs see enough loss events)."""
    fcts_ms = []
    params_ge = calibrate_gilbert_elliott(loss_rate, mean_burst_packets=2.5)
    for rep in range(repeats):
        params = scale.params()
        sim, topo = make_topo(scale, params, lb, seed + rep)
        for i, (ab, ba) in enumerate(topo.border_links):
            ab.loss_model = GilbertElliottLoss(params_ge, seed=seed * 77 + rep * 10 + i)
        done = []
        sender = start_inter_flow(
            sim, topo, params, topo.host(0, 0), topo.host(1, 0),
            flow_bytes, lb=lb, ec=ec, seed=seed * 31 + rep,
            on_complete=done.append,
        )
        sim.run(until=scale.horizon_ps)
        if not done:
            raise RuntimeError(f"fig13B {lb}/ec={ec}: flow unfinished")
        fcts_ms.append(sender.stats.fct_ps / 1e9)
    return fcts_ms


# ----------------------------------------------------------------------
# (C) AI-training Allreduce
# ----------------------------------------------------------------------

def run_allreduce(lb: str, ec: bool, scale: ExperimentScale,
                  gradient_bytes: int, iterations: int, seed: int,
                  loss_rate: float = 1e-3) -> Dict:
    """(C) ring Allreduce under a WAN link flap plus correlated drops."""
    params = scale.params()
    sim, topo = make_topo(scale, params, lb, seed)
    ge = calibrate_gilbert_elliott(loss_rate, mean_burst_packets=2.5)
    for i, (ab, ba) in enumerate(topo.border_links):
        ab.loss_model = GilbertElliottLoss(ge, seed=seed * 13 + i)
    # One border link also flaps mid-run (a transient fiber fault): with
    # packet spraying and no EC a *permanent* failure would leave every
    # block exposed forever and the run never terminates at quick scale.
    ab, ba = topo.border_links[0]
    schedule_bidirectional_failure(sim, ab, ba, fail_at_ps=5 * MS,
                                   repair_after_ps=50 * MS)

    # Collectives run over persistent connections whose windows stay warm
    # across steps; creating a fresh flow per ring step is a modeling
    # artifact, so these flows skip slow start and begin at half a BDP
    # (the steady window a warm connection would carry).
    from repro.core.unocc import UnoCC, UnoCCConfig

    def warm_cc(is_inter: bool) -> UnoCC:
        return UnoCC(UnoCCConfig(
            alpha_frac_of_bdp=params.alpha_frac_of_bdp,
            beta=params.qa_beta,
            k_bytes=params.k_bytes,
            epoch_period_ps=params.intra_rtt_ps,
            use_slow_start=False,
            init_cwnd_frac_of_bdp=0.5,
        ))

    def starter(src, dst, size, on_complete, start_ps):
        is_inter = src.dc != dst.dc
        cc = warm_cc(is_inter)
        common = dict(
            mss=params.mtu_bytes,
            base_rtt_ps=params.base_rtt_for(is_inter),
            line_gbps=params.link_gbps,
            is_inter_dc=is_inter,
            on_complete=on_complete,
            seed=seed ^ (src.node_id * 131 + dst.node_id),
        )
        if not is_inter:
            return start_flow(sim, topo.net, cc, src, dst, size, **common)
        if ec:
            rc = UnoRCConfig(
                block=BlockConfig(params.ec_data_pkts, params.ec_parity_pkts)
            )
            return start_flow(
                sim, topo.net, cc, src, dst, size,
                sender_cls=UnoRCSender, receiver_cls=UnoRCReceiver,
                receiver_kwargs={"rc": rc}, rc=rc,
                path=make_path(lb, params), **common,
            )
        return start_flow(sim, topo.net, cc, src, dst, size,
                          path=make_path(lb, params), **common)

    ar = RingAllreduce(
        sim, topo,
        AllreduceConfig(
            participants_per_dc=min(4, len(topo.hosts(0))),
            gradient_bytes=gradient_bytes,
            iterations=iterations,
        ),
        flow_starter=starter,
    )
    ar.start()
    sim.run(until=scale.horizon_ps)
    if len(ar.iteration_times_ps) < iterations:
        raise RuntimeError(f"fig13C {lb}/ec={ec}: allreduce incomplete")
    slowdowns = ar.slowdowns()
    return {
        "mean_slowdown": float(np.mean(slowdowns)),
        "p99_slowdown": float(np.percentile(slowdowns, 99)),
        "slowdowns": slowdowns,
    }


# ----------------------------------------------------------------------

def _variant_key(lb: str, ec: bool) -> str:
    return f"{lb}{'+ec' if ec else ''}"


def points(quick: bool = True,
           seed: Optional[int] = None) -> List[ExperimentPoint]:
    """One point per (scenario part, LB scheme, EC on/off) cell."""
    seed = DEFAULT_SEED if seed is None else seed
    return [
        ExperimentPoint("fig13", f"{part}/{_variant_key(lb, ec)}",
                        {"part": part, "lb": lb, "ec": ec, "quick": quick},
                        seed=seed)
        for part in PARTS
        for lb in LB_SCHEMES
        for ec in (False, True)
    ]


def run_point(point: ExperimentPoint) -> Dict:
    """One failure-scenario cell, dispatched by its ``part``."""
    cfg = point.cfg
    quick, lb, ec = cfg["quick"], cfg["lb"], cfg["ec"]
    scale = scale_for(quick)
    repeats = 8 if quick else 100
    if cfg["part"] == "A":
        flow_bytes = 5 * MIB
        return {"fcts_ms": run_link_failure(lb, ec, scale, flow_bytes,
                                            repeats, point.seed)}
    if cfg["part"] == "B":
        flow_bytes = 2 * MIB if quick else 16 * MIB
        return {"fcts_ms": run_random_loss(lb, ec, scale, flow_bytes,
                                           repeats, point.seed)}
    iterations = 3 if quick else 100
    gradient = 8 * MIB if quick else 128 * MIB
    return run_allreduce(lb, ec, scale, gradient, iterations, point.seed)


def summarize(results: Dict[str, Dict]) -> Dict:
    """Regroup cells into the A/B/C scenario tables."""
    out: Dict[str, Dict] = {part: {} for part in PARTS}
    for lb in LB_SCHEMES:
        for ec in (False, True):
            key = _variant_key(lb, ec)
            for part in PARTS:
                cell = results.get(f"{part}/{key}")
                if cell is None:
                    continue
                out[part][key] = cell["fcts_ms"] if part in ("A", "B") else cell
    return out


def run(quick: bool = True, seed: Optional[int] = None) -> Dict:
    """Run the experiment; ``quick`` selects the scaled-down configuration."""
    from repro.experiments.runner import run_experiment

    return run_experiment("fig13", quick, seed=seed)


def report(res: Dict) -> None:
    """Print the paper-vs-measured tables for a results dict."""
    rows_a = [
        [key, f"{np.mean(v):.2f}", f"{np.max(v):.2f}"]
        for key, v in res["A"].items()
    ]
    print_experiment(
        "Figure 13A: one border link fails (worst inter-DC FCT, ms)",
        "UnoLB+EC best: reroutes off the dead link, parity absorbs the "
        "partial block losses; PLB worst",
        ["lb scheme", "mean ms", "max ms"],
        rows_a,
    )
    rows_b = [
        [key, f"{np.mean(v):.2f}", f"{np.max(v):.2f}"]
        for key, v in res["B"].items()
    ]
    print_experiment(
        "Figure 13B: random correlated loss (single inter-DC flow FCT, ms)",
        "Uno ~ spraying (both spread blocks over paths), both beat PLB; "
        "EC removes the retransmission tail",
        ["lb scheme", "mean ms", "max ms"],
        rows_b,
    )
    rows_c = [
        [key, f"{v['mean_slowdown']:.2f}", f"{v['p99_slowdown']:.2f}"]
        for key, v in res["C"].items()
    ]
    print_experiment(
        "Figure 13C: ring Allreduce under failures (runtime / ideal)",
        "Uno (UnoLB+EC) consistently the closest to ideal (paper: >2x "
        "better than second best, ~1.3x off ideal)",
        ["lb scheme", "mean slowdown", "p99 slowdown"],
        rows_c,
    )


def main(quick: bool = True) -> Dict:
    """Run and print the paper-vs-measured table; returns the results dict."""
    res = run(quick=quick)
    report(res)
    return res


if __name__ == "__main__":
    main()
