"""Shared runner for the realistic-workload experiments (Figs 10-12).

Intra-DC traffic follows the Google web-search distribution, inter-DC
traffic the Alibaba WAN distribution, mixed 4:1 with Poisson arrivals at
a target load (paper 5.1). Quick mode scales flow sizes down by the
experiment scale's ``size_scale`` (documented in EXPERIMENTS.md) to keep
pure-Python runtimes tractable while preserving the distribution shapes.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.analysis.fct import split_intra_inter, summarize_fcts
from repro.experiments.harness import (
    ExperimentScale,
    build_multidc,
    make_launcher,
    run_specs,
)
from repro.sim.engine import Simulator
from repro.workloads.alibaba_wan import ALIBABA_WAN_CDF
from repro.workloads.generator import PoissonTraffic, TrafficConfig
from repro.workloads.websearch import WEBSEARCH_CDF


def run_realistic(
    scheme: str,
    load: float,
    scale: ExperimentScale,
    *,
    seed: int,
    duration_ps: int,
    max_flows: Optional[int],
    params_overrides: Optional[dict] = None,
    border_queue_bytes: Optional[int] = None,
) -> Dict:
    """One (scheme, load) cell: returns intra/inter mean & p99 FCT."""
    sim = Simulator()
    params = scale.params(**(params_overrides or {}))
    topo = build_multidc(
        sim, scheme, params, scale, seed=seed,
        border_queue_bytes=border_queue_bytes,
    )
    traffic = PoissonTraffic(
        topo,
        TrafficConfig(
            load=load,
            duration_ps=duration_ps,
            intra_cdf=WEBSEARCH_CDF.scaled(scale.size_scale),
            inter_cdf=ALIBABA_WAN_CDF.scaled(scale.size_scale),
            max_flows=max_flows,
            seed=seed,
        ),
    )
    specs = traffic.generate()
    launcher = make_launcher(scheme, sim, topo, params, seed=seed)
    senders = run_specs(sim, specs, launcher, scale.horizon_ps)
    stats = [s.stats for s in senders]
    intra, inter = split_intra_inter(stats)
    result: Dict = {
        "scheme": scheme,
        "load": load,
        "n_flows": len(stats),
        "overall": summarize_fcts(stats),
        "drops": topo.net.total_drops(),
        "params": params,
        "topo_config": topo.config,
    }
    result["intra"] = summarize_fcts(intra) if intra else None
    result["inter"] = summarize_fcts(inter) if inter else None
    result["intra_stats"] = intra
    result["inter_stats"] = inter
    return result


def cell_json(result: Dict) -> Dict:
    """The JSON-serializable core of a ``run_realistic`` cell — what a
    Fig 10/11/12 point returns (and caches): scalar metadata plus FCT
    summaries, without the per-flow stats objects."""
    return {
        "scheme": result["scheme"],
        "load": result["load"],
        "n_flows": result["n_flows"],
        "drops": result["drops"],
        "overall": result["overall"].to_dict(),
        "intra": result["intra"].to_dict() if result["intra"] else None,
        "inter": result["inter"].to_dict() if result["inter"] else None,
    }
