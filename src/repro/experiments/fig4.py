"""Figure 4: the effect of phantom queues.

Eight long-lived inter-DC flows incast into one receiver while small
latency-sensitive Google-RPC messages fly between hosts in the
receiver's datacenter. With phantom queues, UnoCC holds the physical
bottleneck queue near zero (packets are marked off the virtual counter
that drains at 0.9x line rate), which slashes the RPC messages' mean and
tail FCT; without them, the standing physical queue inflates RPC latency.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.analysis.fct import summarize_fcts
from repro.core.params import UnoParams
from repro.core.uno import start_uno_flow
from repro.experiments.api import ExperimentPoint
from repro.experiments.harness import ExperimentScale, scale_for
from repro.experiments.report import print_experiment
from repro.sim.engine import Simulator
from repro.sim.trace import QueueMonitor
from repro.sim.units import GIB, MIB, MS, US
from repro.topology.multidc import MultiDC, MultiDCConfig
from repro.workloads.google_rpc import GOOGLE_RPC_CDF

DEFAULT_SEED = 2


def run_variant(
    use_phantom: bool,
    scale: ExperimentScale,
    seed: int,
    window_ps: int,
    n_rpc: int,
) -> Dict:
    """One phantom-queue variant: incast + RPC probes; returns queue/FCT stats."""
    sim = Simulator()
    params = scale.params()
    topo = MultiDC(
        sim,
        MultiDCConfig(
            k=scale.k,
            gbps=params.link_gbps,
            n_border_links=scale.n_border_links,
            intra_rtt_ps=params.intra_rtt_ps,
            inter_rtt_ps=params.inter_rtt_ps,
            queue_bytes=params.queue_bytes,
            red=params.red(),
            phantom=params.phantom() if use_phantom else None,
            seed=seed,
        ),
    )
    net = topo.net
    receiver = topo.host(0, 0)
    # Monitor the receiver's last-hop port (the incast bottleneck).
    edge = topo.dcs[0].edges[0][0]
    bottleneck = net.port_between(edge, receiver)
    monitor = QueueMonitor(sim, bottleneck, interval_ps=100 * US)

    # Long-lived inter-DC incast from 8 remote senders; the long warmup
    # below lets them ramp to saturation before measurement starts.
    for i in range(8):
        start_uno_flow(sim, net, topo.host(1, i), receiver, 64 * GIB,
                       params, seed=seed + i)

    # Small RPC messages inside the receiver's DC, many toward the same
    # receiver so they cross the congested port.
    rng = random.Random(seed + 99)
    rpc_stats = []
    local = topo.hosts(0)
    remaining = [n_rpc]
    done_flag = []

    def rpc_done(s):
        rpc_stats.append(s.stats)
        remaining[0] -= 1
        if remaining[0] == 0:
            done_flag.append(True)

    # RPCs measure the *steady-state* queue the incast sustains (the
    # paper's scenario), so they start only after the incast has ramped
    # to saturation (Table 2's AI factor needs ~60-80 ms of ramp at
    # quick scale after the slow-start exit).
    warmup = 100 * MS
    for i in range(n_rpc):
        src = rng.choice(local[1:])
        size = GOOGLE_RPC_CDF.sample(rng)
        start = warmup + int(rng.random() * (window_ps - warmup))
        start_uno_flow(sim, net, src, receiver, size, params,
                       start_ps=start, seed=seed + 1000 + i,
                       on_complete=rpc_done)
    # Run in slices and stop as soon as every RPC message completed (the
    # incast flows are effectively infinite and would run forever).
    deadline = window_ps + 400 * MS
    while remaining[0] > 0 and sim.now < deadline:
        sim.run(until=min(deadline, sim.now + 10 * MS))
    if remaining[0] > 0:
        raise RuntimeError(f"{remaining[0]} RPC flows unfinished")
    fct = summarize_fcts(rpc_stats)
    # Queue occupancy statistics over the loaded window.
    loaded = [s for s in monitor.samples if s[0] >= warmup]
    phys = [s[1] for s in loaded]
    return {
        "phantom": use_phantom,
        "rpc_mean_us": fct.mean_us,
        "rpc_p99_us": fct.p99_us,
        "queue_mean_kb": sum(phys) / len(phys) / 1024,
        "queue_max_kb": max(phys) / 1024,
        "samples": loaded,
    }


def points(quick: bool = True,
           seed: Optional[int] = None) -> List[ExperimentPoint]:
    """Two points: the incast+RPC run with and without phantom queues."""
    seed = DEFAULT_SEED if seed is None else seed
    return [
        ExperimentPoint("fig4", "phantom" if phantom else "no-phantom",
                        {"phantom": phantom, "quick": quick}, seed=seed)
        for phantom in (True, False)
    ]


def run_point(point: ExperimentPoint) -> Dict:
    """One phantom-queue variant of the incast+RPC scenario."""
    cfg = point.cfg
    quick = cfg["quick"]
    # Like fig3/fig8, incast experiments keep the paper's 100G links and
    # 1 MiB buffers; quick mode only shrinks the fat-tree arity.
    scale = scale_for(quick, gbps=100.0, queue_bytes=1 * MIB)
    window = 160 * MS if quick else 400 * MS
    n_rpc = 60 if quick else 400
    return run_variant(cfg["phantom"], scale, point.seed, window, n_rpc)


def summarize(results: Dict[str, Dict]) -> Dict:
    """Pair the with/without-phantom variants."""
    return {"with_phantom": results["phantom"],
            "without_phantom": results["no-phantom"]}


def run(quick: bool = True, seed: Optional[int] = None) -> Dict:
    """Run the experiment; ``quick`` selects the scaled-down configuration."""
    from repro.experiments.runner import run_experiment

    return run_experiment("fig4", quick, seed=seed)


def report(res: Dict) -> None:
    """Print the paper-vs-measured table for a results dict."""
    w, wo = res["with_phantom"], res["without_phantom"]
    rows = [
        ["no phantom", f"{wo['queue_mean_kb']:.0f}", f"{wo['queue_max_kb']:.0f}",
         f"{wo['rpc_mean_us']:.0f}", f"{wo['rpc_p99_us']:.0f}"],
        ["phantom", f"{w['queue_mean_kb']:.0f}", f"{w['queue_max_kb']:.0f}",
         f"{w['rpc_mean_us']:.0f}", f"{w['rpc_p99_us']:.0f}"],
    ]
    print_experiment(
        "Figure 4: phantom queues keep the physical queue near-empty",
        "phantom queues -> near-zero physical queue; ~2x better mean and "
        "~8x better p99 FCT for the small RPC messages",
        ["variant", "queue mean KiB", "queue max KiB", "RPC mean us", "RPC p99 us"],
        rows,
    )


def main(quick: bool = True) -> Dict:
    """Run and print the paper-vs-measured table; returns the results dict."""
    res = run(quick=quick)
    report(res)
    return res


if __name__ == "__main__":
    main()
