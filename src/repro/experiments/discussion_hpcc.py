"""Discussion-section reproduction: HPCC+BBR separation is still unfair.

Paper section 6: "While alternatives like HPCC and PowerTCP exist, they
too suffer from fairness issues due to this separation." We run the
Fig-3 mixed incast with HPCC (INT-enabled switches) for intra-DC flows
and BBR for inter-DC flows — a best-case modern split stack — and
compare its fairness against Uno's unified loop.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.fairness import jain_series
from repro.experiments.api import ExperimentPoint
from repro.experiments.fig3 import _smooth
from repro.experiments.harness import (ExperimentScale, build_multidc,
                                       make_launcher, scale_for)
from repro.experiments.report import print_experiment
from repro.sim.engine import Simulator
from repro.sim.trace import RateMonitor
from repro.sim.units import GIB, MIB, MS
from repro.transport.base import start_flow
from repro.transport.bbr import BBR
from repro.transport.hpcc import HPCC
from repro.workloads.patterns import incast_specs

DEFAULT_SEED = 21
STACKS = ("hpcc_bbr", "uno")


def run_hpcc_bbr(scale: ExperimentScale, window_ps: int, seed: int) -> Dict:
    """The split stack: HPCC intra (INT switches) + BBR inter."""
    sim = Simulator()
    params = scale.params()
    # HPCC needs no phantom queues; build the baseline-style topology.
    topo = build_multidc(sim, "mprdma_bbr", params, scale, seed=seed)
    # Arm INT on every fabric port with the intra-DC base RTT as T.
    for node in topo.net.nodes:
        for port in node.ports.values():
            port.enable_int(params.intra_rtt_ps)
    specs = incast_specs(topo, n_intra=4, n_inter=4, size_bytes=64 * GIB)
    senders = []
    for i, spec in enumerate(specs):
        is_inter = spec.src.dc != spec.dst.dc
        cc = BBR() if is_inter else HPCC()
        senders.append(start_flow(
            sim, topo.net, cc, spec.src, spec.dst, spec.size_bytes,
            mss=params.mtu_bytes,
            base_rtt_ps=params.base_rtt_for(is_inter),
            line_gbps=params.link_gbps, is_inter_dc=is_inter,
            seed=seed ^ (i * 7919),
        ))
    monitor = RateMonitor(sim, senders, probe=lambda s: s.stats.bytes_acked,
                          interval_ps=1 * MS)
    sim.run(until=window_ps)
    return _analyze(monitor, senders)


def run_uno(scale: ExperimentScale, window_ps: int, seed: int) -> Dict:
    """The unified loop, for comparison."""
    sim = Simulator()
    params = scale.params()
    topo = build_multidc(sim, "uno", params, scale, seed=seed)
    specs = incast_specs(topo, n_intra=4, n_inter=4, size_bytes=64 * GIB)
    launcher = make_launcher("uno", sim, topo, params, seed=seed)
    senders = [launcher(s, i, lambda _x: None) for i, s in enumerate(specs)]
    monitor = RateMonitor(sim, senders, probe=lambda s: s.stats.bytes_acked,
                          interval_ps=1 * MS)
    sim.run(until=window_ps)
    return _analyze(monitor, senders)


def _analyze(monitor: RateMonitor, senders) -> Dict:
    smoothed = [_smooth(r, 4) for r in monitor.rates_gbps]
    n = min(len(r) for r in smoothed)
    series = jain_series([r[:n] for r in smoothed])
    tail = series[-max(1, len(series) // 5):]
    intra = sum(smoothed[i][-1] for i in range(4))
    inter = sum(smoothed[i][-1] for i in range(4, 8))
    return {
        "tail_jain": sum(tail) / len(tail),
        "intra_gbps": intra,
        "inter_gbps": inter,
    }


def points(quick: bool = True,
           seed: Optional[int] = None) -> List[ExperimentPoint]:
    """One point per stack: the HPCC+BBR split and Uno's unified loop."""
    seed = DEFAULT_SEED if seed is None else seed
    return [
        ExperimentPoint("discussion_hpcc", stack,
                        {"stack": stack, "quick": quick}, seed=seed)
        for stack in STACKS
    ]


def run_point(point: ExperimentPoint) -> Dict:
    """One stack's mixed-incast fairness run."""
    cfg = point.cfg
    quick = cfg["quick"]
    scale = scale_for(quick, gbps=100.0, queue_bytes=1 * MIB)
    window = 100 * MS if quick else 400 * MS
    if cfg["stack"] == "hpcc_bbr":
        return run_hpcc_bbr(scale, window, point.seed)
    return run_uno(scale, window, point.seed)


def summarize(results: Dict[str, Dict]) -> Dict:
    """Order the two stacks as the report table expects."""
    return {stack: results[stack] for stack in STACKS if stack in results}


def run(quick: bool = True, seed: Optional[int] = None) -> Dict:
    """Run the experiment; ``quick`` selects the scaled-down configuration."""
    from repro.experiments.runner import run_experiment

    return run_experiment("discussion_hpcc", quick, seed=seed)


def report(res: Dict) -> None:
    """Print the paper-vs-measured table for a results dict."""
    rows = [
        [k, f"{v['tail_jain']:.3f}", f"{v['intra_gbps']:.1f}G",
         f"{v['inter_gbps']:.1f}G"]
        for k, v in res.items()
    ]
    print_experiment(
        "Discussion (section 6): HPCC+BBR split stack vs Uno, mixed incast",
        "even an INT-based intra-DC transport paired with BBR stays unfair "
        "across the flow classes; Uno's unified loop shares the bottleneck",
        ["stack", "tail Jain", "intra sum", "inter sum"],
        rows,
    )


def main(quick: bool = True) -> Dict:
    """Run and print the paper-vs-measured table; returns the results dict."""
    res = run(quick=quick)
    report(res)
    return res


if __name__ == "__main__":
    main()
