"""Figure 11: FCT slowdown vs the inter/intra RTT ratio.

The realistic 40 %-load workload re-run while the inter-DC propagation
delay grows so that inter/intra RTT ratio sweeps 8 -> 512 (intra fixed
at 14 us). The paper's finding: at small ratios MPRDMA+BBR slightly wins
(phantom-queue headroom costs Uno a little), but as the ratio approaches
real WAN values Uno's slowdown is up to ~5x lower than both baselines.

Slowdown = FCT / ideal FCT of the same flow on an idle path.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.analysis.fct import ideal_fct_ps
from repro.experiments.api import ExperimentPoint
from repro.experiments.harness import scale_for
from repro.experiments.realistic import run_realistic
from repro.experiments.report import print_experiment
from repro.sim.units import MS, US

SCHEMES = ("uno", "gemini", "mprdma_bbr")
RATIOS = (8, 32, 128, 512)
DEFAULT_SEED = 6


def _slowdowns(result: Dict) -> Dict[str, float]:
    params = result["params"]
    values = []
    for s in result["intra_stats"] + result["inter_stats"]:
        base = params.inter_rtt_ps if s.is_inter_dc else params.intra_rtt_ps
        ideal = ideal_fct_ps(s.size_bytes, base, params.link_gbps,
                             mss=params.mtu_bytes)
        values.append(s.fct_ps / ideal)
    arr = np.asarray(values)
    return {
        "mean": float(arr.mean()),
        "p99": float(np.percentile(arr, 99)),
    }


def points(quick: bool = True,
           seed: Optional[int] = None) -> List[ExperimentPoint]:
    """One point per (RTT ratio, scheme) cell at 40% load."""
    seed = DEFAULT_SEED if seed is None else seed
    return [
        ExperimentPoint("fig11", f"{ratio}x/{scheme}",
                        {"ratio": ratio, "scheme": scheme, "quick": quick},
                        seed=seed)
        for ratio in RATIOS
        for scheme in SCHEMES
    ]


def run_point(point: ExperimentPoint) -> Dict:
    """One cell: the realistic workload at a stretched inter-DC RTT;
    slowdowns are reduced to scalars here (per-flow stats stay local)."""
    cfg = point.cfg
    quick = cfg["quick"]
    scale = scale_for(quick)
    duration = 3 * MS if quick else 100 * MS
    max_flows = 2000 if quick else None
    inter_rtt = cfg["ratio"] * 14 * US
    r = run_realistic(
        cfg["scheme"], 0.4, scale, seed=point.seed, duration_ps=duration,
        max_flows=max_flows,
        params_overrides={"inter_rtt_ps": inter_rtt},
    )
    return {
        "ratio": cfg["ratio"],
        "scheme": cfg["scheme"],
        "n_flows": r["n_flows"],
        "slowdown": _slowdowns(r),
    }


def summarize(results: Dict[str, Dict]) -> Dict:
    """Group cells back into ratio -> scheme tables."""
    cells: Dict[int, Dict[str, Dict]] = {}
    for ratio in RATIOS:
        per = {
            scheme: results[f"{ratio}x/{scheme}"]
            for scheme in SCHEMES
            if f"{ratio}x/{scheme}" in results
        }
        if per:
            cells[ratio] = per
    return {"cells": cells}


def run(quick: bool = True, seed: Optional[int] = None) -> Dict:
    """Run the experiment; ``quick`` selects the scaled-down configuration."""
    from repro.experiments.runner import run_experiment

    return run_experiment("fig11", quick, seed=seed)


def report(res: Dict) -> None:
    """Print the paper-vs-measured table for a results dict."""
    rows = []
    for ratio, per_scheme in res["cells"].items():
        for scheme, cell in per_scheme.items():
            sl = cell["slowdown"]
            rows.append([f"{ratio}x", scheme, f"{sl['mean']:.1f}",
                         f"{sl['p99']:.1f}"])
    print_experiment(
        "Figure 11: FCT slowdown vs inter/intra RTT ratio (40% load)",
        "Uno's advantage grows with the RTT ratio; at 512x its tail "
        "slowdown is several times lower than Gemini and MPRDMA+BBR",
        ["RTT ratio", "scheme", "mean slowdown", "p99 slowdown"],
        rows,
    )


def main(quick: bool = True) -> Dict:
    """Run and print the paper-vs-measured table; returns the results dict."""
    res = run(quick=quick)
    report(res)
    return res


if __name__ == "__main__":
    main()
