"""Figure 11: FCT slowdown vs the inter/intra RTT ratio.

The realistic 40 %-load workload re-run while the inter-DC propagation
delay grows so that inter/intra RTT ratio sweeps 8 -> 512 (intra fixed
at 14 us). The paper's finding: at small ratios MPRDMA+BBR slightly wins
(phantom-queue headroom costs Uno a little), but as the ratio approaches
real WAN values Uno's slowdown is up to ~5x lower than both baselines.

Slowdown = FCT / ideal FCT of the same flow on an idle path.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.analysis.fct import ideal_fct_ps
from repro.experiments.harness import ExperimentScale
from repro.experiments.realistic import run_realistic
from repro.experiments.report import print_experiment
from repro.sim.units import MS, US

SCHEMES = ("uno", "gemini", "mprdma_bbr")
RATIOS = (8, 32, 128, 512)


def _slowdowns(result: Dict) -> Dict[str, float]:
    params = result["params"]
    values = []
    for s in result["intra_stats"] + result["inter_stats"]:
        base = params.inter_rtt_ps if s.is_inter_dc else params.intra_rtt_ps
        ideal = ideal_fct_ps(s.size_bytes, base, params.link_gbps,
                             mss=params.mtu_bytes)
        values.append(s.fct_ps / ideal)
    arr = np.asarray(values)
    return {
        "mean": float(arr.mean()),
        "p99": float(np.percentile(arr, 99)),
    }


def run(quick: bool = True, seed: int = 6) -> Dict:
    """Run the experiment; ``quick`` selects the scaled-down configuration."""
    scale = ExperimentScale.quick() if quick else ExperimentScale.paper()
    duration = 3 * MS if quick else 100 * MS
    max_flows = 2000 if quick else None
    cells: Dict[int, Dict[str, Dict]] = {}
    for ratio in RATIOS:
        inter_rtt = ratio * 14 * US
        cells[ratio] = {}
        for scheme in SCHEMES:
            r = run_realistic(
                scheme, 0.4, scale, seed=seed, duration_ps=duration,
                max_flows=max_flows,
                params_overrides={"inter_rtt_ps": inter_rtt},
            )
            cells[ratio][scheme] = {"result": r, "slowdown": _slowdowns(r)}
    return {"cells": cells}


def main(quick: bool = True) -> Dict:
    """Run and print the paper-vs-measured table; returns the results dict."""
    res = run(quick=quick)
    rows = []
    for ratio, per_scheme in res["cells"].items():
        for scheme, cell in per_scheme.items():
            sl = cell["slowdown"]
            rows.append([f"{ratio}x", scheme, f"{sl['mean']:.1f}",
                         f"{sl['p99']:.1f}"])
    print_experiment(
        "Figure 11: FCT slowdown vs inter/intra RTT ratio (40% load)",
        "Uno's advantage grows with the RTT ratio; at 512x its tail "
        "slowdown is several times lower than Gemini and MPRDMA+BBR",
        ["RTT ratio", "scheme", "mean slowdown", "p99 slowdown"],
        rows,
    )
    return res


if __name__ == "__main__":
    main()
