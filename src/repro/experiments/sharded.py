"""Sharded two-DC runs: the experiment-facing face of `repro.sim.shard`.

The shard cut follows the replicated-world scheme: **every shard builds
the full two-DC topology and launches the full flow set** in exactly the
construction order a single-engine run would, so every seeded RNG stream
(switch salts, per-port RED/phantom generators, flow ids and with them
ECMP hashes) is bit-identical across shards and to the single run. Each
shard then *deactivates* what it does not own — senders whose source
host lives in the other DC have their start event cancelled, receivers
whose destination host is remote are dropped from the endpoint registry
before any timer arms — and severs the border links through a
:class:`~repro.sim.shard.ShardBoundary`. What remains live in shard
``k`` is exactly DC ``k``'s half of the traffic, exchanging packets with
the other half through conservative windows.

:func:`run_sharded` is the public entry: ``shards=1`` runs the ordinary
single-engine simulation, ``shards=2`` runs one shard per DC, inline or
as one OS process per shard. :func:`check_equivalence` runs both and
diffs per-flow FCTs and retransmit counts — the repo's acceptance gate
for the whole scheme (see tests/test_shard.py and ``run_all --shards``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from functools import partial
from typing import Any, Dict, List, Optional

from repro.sim.engine import Simulator
from repro.sim.shard import (
    ConservativeCoordinator,
    InlineShard,
    ProcessShard,
    ShardBoundary,
)

#: The only shard counts run_sharded accepts (the cut is per-DC).
SUPPORTED_SHARDS = (1, 2)

#: Event topics shard workers trace when telemetry is on. Lifecycle-level
#: only: per-packet topics (ack/queue/cwnd/epoch) would swamp the window
#: pipe with ~1e2 events per flow per RTT; these stay readable at any
#: flow count and are exactly what the dashboard and stitching need.
SHARD_TRACE_TOPICS = ("span", "flow", "failure", "route", "invariant")


@dataclass(frozen=True)
class TwoDCWorkload:
    """A pinned, fully-deterministic two-DC Poisson workload.

    Picklable and value-typed: shard worker processes rebuild the exact
    same world from it. Defaults mirror the ``two_dc_mixed`` benchmark
    (quick tier): mixed websearch / Alibaba-WAN traffic at 40 % load.
    """

    scheme: str = "uno"
    seed: int = 1
    load: float = 0.4
    duration_ps: int = 40_000_000_000
    max_flows: int = 400
    size_scale: float = 1.0 / 64.0
    horizon_ps: int = 4_000_000_000_000


class ShardWorld:
    """One shard's (or the single run's) fully-built simulation world."""

    def __init__(self, workload: TwoDCWorkload,
                 shard_id: Optional[int] = None,
                 telemetry: bool = False,
                 trace_dir: Optional[str] = None):
        from repro.experiments.harness import (
            ExperimentScale, build_multidc, make_launcher,
        )
        from repro.workloads.alibaba_wan import ALIBABA_WAN_CDF
        from repro.workloads.generator import PoissonTraffic, TrafficConfig
        from repro.workloads.websearch import WEBSEARCH_CDF

        self.workload = workload
        self.shard_id = shard_id
        scale = ExperimentScale.quick()
        self.horizon_ps = workload.horizon_ps
        self.sim = Simulator()
        # Shard-tagged telemetry: a drainable tap (drained every CMB
        # window by the shard adapter) plus a crash-safe per-worker JSONL
        # trace. enable() replaces any ambient-context bundle, so worker
        # processes never depend on the coordinator's context state.
        self.tap = None
        self.obs = None
        if telemetry:
            from repro.obs import JSONLFileSink, StreamBufferSink, enable

            self.tap = StreamBufferSink()
            extra = [self.tap]
            if trace_dir is not None:
                import os

                os.makedirs(trace_dir, exist_ok=True)
                tag = "single" if shard_id is None else f"shard-{shard_id}"
                extra.append(JSONLFileSink(
                    os.path.join(trace_dir, f"{tag}.jsonl")
                ))
            self.obs = enable(
                self.sim,
                event_topics=SHARD_TRACE_TOPICS,
                profile=False,
                extra_sinks=extra,
            )
            self.obs.set_shard(shard_id)
        params = scale.params()
        self.topo = build_multidc(
            self.sim, workload.scheme, params, scale, seed=workload.seed
        )
        traffic = PoissonTraffic(
            self.topo,
            TrafficConfig(
                load=workload.load,
                duration_ps=workload.duration_ps,
                intra_cdf=WEBSEARCH_CDF.scaled(workload.size_scale),
                inter_cdf=ALIBABA_WAN_CDF.scaled(workload.size_scale),
                max_flows=workload.max_flows,
                seed=workload.seed,
            ),
        )
        specs = traffic.generate()
        launcher = make_launcher(
            workload.scheme, self.sim, self.topo, params, seed=workload.seed
        )
        self.unfinished = [len(specs)]

        def done(_s) -> None:
            self.unfinished[0] -= 1

        # Launch ALL flows in every shard — flow-id and RNG parity with
        # the single-engine run — then deactivate the non-local ones.
        self.senders = [
            launcher(spec, idx, done) for idx, spec in enumerate(specs)
        ]
        self.boundary: Optional[ShardBoundary] = None
        if shard_id is not None:
            self._shard(shard_id)

    # -- sharding ----------------------------------------------------------

    def _shard(self, shard_id: int) -> None:
        topo = self.topo
        self.boundary = boundary = ShardBoundary(self.sim, shard_id)
        local_border = topo.borders[shard_id]
        for ab, ba in topo.border_links:
            out_link = ab if shard_id == 0 else ba  # src is local border
            in_link = ba if shard_id == 0 else ab
            port = next(
                p for p in local_border.ports.values() if p.link is out_link
            )
            boundary.cut_egress(port, out_link)
            boundary.open_ingress(in_link)
        spans = self.obs.spans if self.obs is not None else None
        for sender in self.senders:
            flow_id = sender.flow_id
            if sender.src.dc != shard_id:
                # Remote sender: never starts here. Its real copy runs in
                # the shard owning the source host.
                sender.start_handle.cancel()
                if sender.src.endpoints.pop(flow_id, None) is not None \
                        and spans is not None:
                    spans.endpoint_discard(flow_id, sender.src.name)
                self.unfinished[0] -= 1
            if sender.dst.dc != shard_id:
                # Remote receiver: drop before any timer lazily arms.
                if sender.dst.endpoints.pop(flow_id, None) is not None \
                        and spans is not None:
                    spans.endpoint_discard(flow_id, sender.dst.name)

    # -- results -----------------------------------------------------------

    def local_senders(self) -> List[Any]:
        """Senders owned (simulated) by this shard."""
        if self.shard_id is None:
            return list(self.senders)
        return [s for s in self.senders if s.src.dc == self.shard_id]

    def collect(self) -> Dict[str, Any]:
        """Plain-dict results: per-flow outcomes + engine/boundary totals."""
        flows = {}
        for sender in self.local_senders():
            s = sender.stats
            flows[s.flow_id] = {
                "fct_ps": s.fct_ps,
                "start_ps": s.start_ps,
                "finish_ps": s.finish_ps,
                "bytes_acked": s.bytes_acked,
                "retransmissions": s.retransmissions,
                "timeouts": s.timeouts,
                "is_inter_dc": s.is_inter_dc,
                "aborted": s.aborted,
            }
        result = {
            "shard_id": self.shard_id,
            "flows": flows,
            "unfinished": self.unfinished[0],
            "events_executed": self.sim.events_executed,
            "now_ps": self.sim.now,
            # Per-link deliveries summed shard-locally; summing across
            # shards counts every delivery once (the silent remote half
            # of each replicated topology contributes zero, and border
            # captures count only on their egress side).
            "delivered_pkts": sum(
                link.delivered_pkts for link in self.topo.net.links
            ),
        }
        if self.boundary is not None:
            result["boundary_sent"] = dict(self.boundary.sent)
            result["boundary_injected"] = dict(self.boundary.injected)
        if self.obs is not None:
            # Close out still-open spans at the horizon, snapshot the
            # worker-side registries (the parent merges them — satellite
            # fix for the coordinator-only --telemetry summary), then
            # drain whatever the last window's drain did not see.
            if self.obs.spans is not None:
                self.obs.spans.flush_open(self.sim.now)
            result["telemetry"] = self.obs.snapshot()
            result["events_emitted"] = (
                self.obs.events.emitted if self.obs.events is not None else 0
            )
            if self.tap is not None:
                result["trace_tail"] = self.tap.drain()
        return result

    def close_telemetry(self) -> None:
        """Flush and close this world's event sinks (JSONL trace file).
        Called by the shard worker on every exit path. Idempotent."""
        if self.obs is not None and self.obs.events is not None:
            self.obs.events.close()


def _build_shard(workload: TwoDCWorkload, shard_id: int,
                 telemetry: bool = False,
                 trace_dir: Optional[str] = None) -> ShardWorld:
    """Module-level shard factory (picklable for worker processes)."""
    return ShardWorld(workload, shard_id, telemetry=telemetry,
                      trace_dir=trace_dir)


def run_single(workload: TwoDCWorkload,
               telemetry: bool = False,
               trace_dir: Optional[str] = None) -> Dict[str, Any]:
    """Single-engine reference run of the pinned workload."""
    world = ShardWorld(workload, telemetry=telemetry, trace_dir=trace_dir)
    t0 = time.perf_counter()
    cpu0 = time.process_time()
    try:
        world.sim.run(until=world.horizon_ps)
        result = world.collect()
    finally:
        world.close_telemetry()
    result.update(
        wall_s=time.perf_counter() - t0,
        busy_cpu_s=time.process_time() - cpu0,
        shards=1,
        rounds=0,
        total_events=world.sim.events_executed,
        violations=[],
        flows_by_shard=[result["flows"]],
    )
    tail = result.pop("trace_tail", None)
    if tail is not None:
        from repro.obs import TraceAggregator

        trace = TraceAggregator()
        trace.add_events(None, tail)
        result["_trace"] = trace
    return result


def run_sharded(
    workload: TwoDCWorkload = TwoDCWorkload(),
    shards: int = 2,
    processes: bool = True,
    telemetry: bool = False,
    trace_dir: Optional[str] = None,
    trace_path: Optional[str] = None,
) -> Dict[str, Any]:
    """Run the pinned two-DC workload on ``shards`` engines.

    ``shards=1`` is the single-engine baseline; ``shards=2`` cuts at the
    border links, one engine per DC, synchronized conservatively with
    lookahead = border propagation delay. ``processes`` selects one OS
    process per shard (real parallelism) vs inline stepping (used by the
    deterministic equivalence tests). Returns a flat summary: merged
    per-flow results under ``"flows"``, per-shard dicts under
    ``"shard_results"``, sync ``rounds``, conservation ``violations``
    and timing (``wall_s``, per-shard ``busy_cpu_s``).

    With ``telemetry=True`` every shard worker traces the lifecycle
    topics (:data:`SHARD_TRACE_TOPICS`), tagged ``shard=``, streamed to
    the coordinator each CMB window and merged by a
    :class:`~repro.obs.stream.TraceAggregator` (returned under
    ``"_trace"``; written to ``trace_path`` as one canonical ps-ordered
    JSONL when given; per-worker crash-safe JSONL copies land in
    ``trace_dir``). Worker metric registries are merged into
    ``"telemetry"`` (``merged`` + ``by_shard``), and aggregator
    conservation failures — events a worker emitted that never reached
    the merged trace — are reported under ``"trace_violations"``.
    """
    if shards not in SUPPORTED_SHARDS:
        raise ValueError(
            f"shards must be one of {SUPPORTED_SHARDS}, got {shards}"
        )
    if shards == 1:
        return run_single(workload, telemetry=telemetry,
                          trace_dir=trace_dir)
    factory = partial(_build_shard, workload, telemetry=telemetry,
                      trace_dir=trace_dir)
    trace = None
    if telemetry:
        from repro.obs import TraceAggregator

        trace = TraceAggregator()
    t0 = time.perf_counter()
    if processes:
        adapters = [ProcessShard(factory, k) for k in range(shards)]
    else:
        adapters = [InlineShard(factory(k)) for k in range(shards)]
    try:
        coord = ConservativeCoordinator(
            adapters, horizon_ps=workload.horizon_ps, trace=trace
        )
        summary = coord.run()
    finally:
        if not processes:
            for adapter in adapters:
                adapter.runtime.close_telemetry()
        for adapter in adapters:
            adapter.close()
    wall = time.perf_counter() - t0
    shard_results = summary["shards"]
    flows: Dict[int, Dict[str, Any]] = {}
    for res in shard_results:
        flows.update(res["flows"])
    result = {
        "shards": shards,
        "processes": processes,
        "flows": flows,
        "flows_by_shard": [res["flows"] for res in shard_results],
        "shard_results": shard_results,
        "unfinished": sum(res["unfinished"] for res in shard_results),
        "rounds": summary["rounds"],
        "total_events": summary["total_events"],
        "delivered_pkts": sum(
            res["delivered_pkts"] for res in shard_results
        ),
        "lookahead_ps": summary["lookahead_ps"],
        "stranded_pkts": summary["stranded_pkts"],
        "violations": summary["violations"],
        "wall_s": wall,
        "busy_cpu_s": max(res["busy_cpu_s"] for res in shard_results),
        "busy_cpu_by_shard": [res["busy_cpu_s"] for res in shard_results],
    }
    if trace is not None:
        from repro.obs import merge_shard_snapshots

        emitted_by_shard = {
            res["shard_id"]: res.get("events_emitted", 0)
            for res in shard_results
        }
        result["trace_violations"] = trace.conservation(emitted_by_shard)
        result["trace_summary"] = trace.summary()
        result["telemetry"] = merge_shard_snapshots({
            res["shard_id"]: res.get("telemetry", {})
            for res in shard_results
        })
        if trace_path is not None:
            trace.write(trace_path)
        result["_trace"] = trace
    return result


def check_equivalence(
    workload: TwoDCWorkload = TwoDCWorkload(),
    processes: bool = False,
    telemetry: bool = False,
    trace_dir: Optional[str] = None,
    trace_path: Optional[str] = None,
) -> Dict[str, Any]:
    """Run 1-shard and 2-shard and diff flow-level outcomes.

    Equivalence means: identical flow-id sets, and per flow identical
    FCT, retransmission count, timeout count and bytes acked. Returns a
    report with ``"equivalent"``, the ``"mismatches"`` list (flow id ->
    differing fields) and both raw summaries. Telemetry options apply to
    the sharded leg (the single-engine reference stays untraced, keeping
    it the byte-identical baseline).
    """
    single = run_sharded(workload, shards=1)
    sharded = run_sharded(workload, shards=2, processes=processes,
                          telemetry=telemetry, trace_dir=trace_dir,
                          trace_path=trace_path)
    mismatches: List[str] = []
    f1, f2 = single["flows"], sharded["flows"]
    for flow_id in sorted(set(f1) | set(f2)):
        a, b = f1.get(flow_id), f2.get(flow_id)
        if a is None or b is None:
            mismatches.append(
                f"flow {flow_id}: present only in "
                f"{'single' if b is None else 'sharded'} run"
            )
            continue
        for key in ("fct_ps", "retransmissions", "timeouts", "bytes_acked"):
            if a[key] != b[key]:
                mismatches.append(
                    f"flow {flow_id}: {key} {a[key]} (single) != "
                    f"{b[key]} (sharded)"
                )
    return {
        "equivalent": not mismatches and not sharded["violations"],
        "mismatches": mismatches,
        "violations": sharded["violations"],
        "flows": len(f1),
        "single": single,
        "sharded": sharded,
    }
