"""Sharded two-DC runs: the experiment-facing face of `repro.sim.shard`.

The shard cut follows the replicated-world scheme: **every shard builds
the full two-DC topology and launches the full flow set** in exactly the
construction order a single-engine run would, so every seeded RNG stream
(switch salts, per-port RED/phantom generators, flow ids and with them
ECMP hashes) is bit-identical across shards and to the single run. Each
shard then *deactivates* what it does not own — senders whose source
host lives in the other DC have their start event cancelled, receivers
whose destination host is remote are dropped from the endpoint registry
before any timer arms — and severs the border links through a
:class:`~repro.sim.shard.ShardBoundary`. What remains live in shard
``k`` is exactly DC ``k``'s half of the traffic, exchanging packets with
the other half through conservative windows.

:func:`run_sharded` is the public entry: ``shards=1`` runs the ordinary
single-engine simulation, ``shards=2`` runs one shard per DC, inline or
as one OS process per shard. :func:`check_equivalence` runs both and
diffs per-flow FCTs and retransmit counts — the repo's acceptance gate
for the whole scheme (see tests/test_shard.py and ``run_all --shards``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from functools import partial
from typing import Any, Dict, List, Optional

from repro.sim.engine import Simulator
from repro.sim.shard import (
    ConservativeCoordinator,
    InlineShard,
    ProcessShard,
    ShardBoundary,
)

#: The only shard counts run_sharded accepts (the cut is per-DC).
SUPPORTED_SHARDS = (1, 2)


@dataclass(frozen=True)
class TwoDCWorkload:
    """A pinned, fully-deterministic two-DC Poisson workload.

    Picklable and value-typed: shard worker processes rebuild the exact
    same world from it. Defaults mirror the ``two_dc_mixed`` benchmark
    (quick tier): mixed websearch / Alibaba-WAN traffic at 40 % load.
    """

    scheme: str = "uno"
    seed: int = 1
    load: float = 0.4
    duration_ps: int = 40_000_000_000
    max_flows: int = 400
    size_scale: float = 1.0 / 64.0
    horizon_ps: int = 4_000_000_000_000


class ShardWorld:
    """One shard's (or the single run's) fully-built simulation world."""

    def __init__(self, workload: TwoDCWorkload,
                 shard_id: Optional[int] = None):
        from repro.experiments.harness import (
            ExperimentScale, build_multidc, make_launcher,
        )
        from repro.workloads.alibaba_wan import ALIBABA_WAN_CDF
        from repro.workloads.generator import PoissonTraffic, TrafficConfig
        from repro.workloads.websearch import WEBSEARCH_CDF

        self.workload = workload
        self.shard_id = shard_id
        scale = ExperimentScale.quick()
        self.horizon_ps = workload.horizon_ps
        self.sim = Simulator()
        params = scale.params()
        self.topo = build_multidc(
            self.sim, workload.scheme, params, scale, seed=workload.seed
        )
        traffic = PoissonTraffic(
            self.topo,
            TrafficConfig(
                load=workload.load,
                duration_ps=workload.duration_ps,
                intra_cdf=WEBSEARCH_CDF.scaled(workload.size_scale),
                inter_cdf=ALIBABA_WAN_CDF.scaled(workload.size_scale),
                max_flows=workload.max_flows,
                seed=workload.seed,
            ),
        )
        specs = traffic.generate()
        launcher = make_launcher(
            workload.scheme, self.sim, self.topo, params, seed=workload.seed
        )
        self.unfinished = [len(specs)]

        def done(_s) -> None:
            self.unfinished[0] -= 1

        # Launch ALL flows in every shard — flow-id and RNG parity with
        # the single-engine run — then deactivate the non-local ones.
        self.senders = [
            launcher(spec, idx, done) for idx, spec in enumerate(specs)
        ]
        self.boundary: Optional[ShardBoundary] = None
        if shard_id is not None:
            self._shard(shard_id)

    # -- sharding ----------------------------------------------------------

    def _shard(self, shard_id: int) -> None:
        topo = self.topo
        self.boundary = boundary = ShardBoundary(self.sim, shard_id)
        local_border = topo.borders[shard_id]
        for ab, ba in topo.border_links:
            out_link = ab if shard_id == 0 else ba  # src is local border
            in_link = ba if shard_id == 0 else ab
            port = next(
                p for p in local_border.ports.values() if p.link is out_link
            )
            boundary.cut_egress(port, out_link)
            boundary.open_ingress(in_link)
        for sender in self.senders:
            flow_id = sender.flow_id
            if sender.src.dc != shard_id:
                # Remote sender: never starts here. Its real copy runs in
                # the shard owning the source host.
                sender.start_handle.cancel()
                sender.src.endpoints.pop(flow_id, None)
                self.unfinished[0] -= 1
            if sender.dst.dc != shard_id:
                # Remote receiver: drop before any timer lazily arms.
                sender.dst.endpoints.pop(flow_id, None)

    # -- results -----------------------------------------------------------

    def local_senders(self) -> List[Any]:
        """Senders owned (simulated) by this shard."""
        if self.shard_id is None:
            return list(self.senders)
        return [s for s in self.senders if s.src.dc == self.shard_id]

    def collect(self) -> Dict[str, Any]:
        """Plain-dict results: per-flow outcomes + engine/boundary totals."""
        flows = {}
        for sender in self.local_senders():
            s = sender.stats
            flows[s.flow_id] = {
                "fct_ps": s.fct_ps,
                "start_ps": s.start_ps,
                "finish_ps": s.finish_ps,
                "bytes_acked": s.bytes_acked,
                "retransmissions": s.retransmissions,
                "timeouts": s.timeouts,
                "is_inter_dc": s.is_inter_dc,
                "aborted": s.aborted,
            }
        result = {
            "shard_id": self.shard_id,
            "flows": flows,
            "unfinished": self.unfinished[0],
            "events_executed": self.sim.events_executed,
            "now_ps": self.sim.now,
            # Per-link deliveries summed shard-locally; summing across
            # shards counts every delivery once (the silent remote half
            # of each replicated topology contributes zero, and border
            # captures count only on their egress side).
            "delivered_pkts": sum(
                link.delivered_pkts for link in self.topo.net.links
            ),
        }
        if self.boundary is not None:
            result["boundary_sent"] = dict(self.boundary.sent)
            result["boundary_injected"] = dict(self.boundary.injected)
        return result


def _build_shard(workload: TwoDCWorkload, shard_id: int) -> ShardWorld:
    """Module-level shard factory (picklable for worker processes)."""
    return ShardWorld(workload, shard_id)


def run_single(workload: TwoDCWorkload) -> Dict[str, Any]:
    """Single-engine reference run of the pinned workload."""
    world = ShardWorld(workload)
    t0 = time.perf_counter()
    cpu0 = time.process_time()
    world.sim.run(until=world.horizon_ps)
    result = world.collect()
    result.update(
        wall_s=time.perf_counter() - t0,
        busy_cpu_s=time.process_time() - cpu0,
        shards=1,
        rounds=0,
        total_events=world.sim.events_executed,
        violations=[],
        flows_by_shard=[result["flows"]],
    )
    return result


def run_sharded(
    workload: TwoDCWorkload = TwoDCWorkload(),
    shards: int = 2,
    processes: bool = True,
) -> Dict[str, Any]:
    """Run the pinned two-DC workload on ``shards`` engines.

    ``shards=1`` is the single-engine baseline; ``shards=2`` cuts at the
    border links, one engine per DC, synchronized conservatively with
    lookahead = border propagation delay. ``processes`` selects one OS
    process per shard (real parallelism) vs inline stepping (used by the
    deterministic equivalence tests). Returns a flat summary: merged
    per-flow results under ``"flows"``, per-shard dicts under
    ``"shard_results"``, sync ``rounds``, conservation ``violations``
    and timing (``wall_s``, per-shard ``busy_cpu_s``).
    """
    if shards not in SUPPORTED_SHARDS:
        raise ValueError(
            f"shards must be one of {SUPPORTED_SHARDS}, got {shards}"
        )
    if shards == 1:
        return run_single(workload)
    factory = partial(_build_shard, workload)
    t0 = time.perf_counter()
    if processes:
        adapters = [ProcessShard(factory, k) for k in range(shards)]
    else:
        adapters = [InlineShard(factory(k)) for k in range(shards)]
    try:
        coord = ConservativeCoordinator(
            adapters, horizon_ps=workload.horizon_ps
        )
        summary = coord.run()
    finally:
        for adapter in adapters:
            adapter.close()
    wall = time.perf_counter() - t0
    shard_results = summary["shards"]
    flows: Dict[int, Dict[str, Any]] = {}
    for res in shard_results:
        flows.update(res["flows"])
    return {
        "shards": shards,
        "processes": processes,
        "flows": flows,
        "flows_by_shard": [res["flows"] for res in shard_results],
        "shard_results": shard_results,
        "unfinished": sum(res["unfinished"] for res in shard_results),
        "rounds": summary["rounds"],
        "total_events": summary["total_events"],
        "delivered_pkts": sum(
            res["delivered_pkts"] for res in shard_results
        ),
        "lookahead_ps": summary["lookahead_ps"],
        "stranded_pkts": summary["stranded_pkts"],
        "violations": summary["violations"],
        "wall_s": wall,
        "busy_cpu_s": max(res["busy_cpu_s"] for res in shard_results),
        "busy_cpu_by_shard": [res["busy_cpu_s"] for res in shard_results],
    }


def check_equivalence(
    workload: TwoDCWorkload = TwoDCWorkload(),
    processes: bool = False,
) -> Dict[str, Any]:
    """Run 1-shard and 2-shard and diff flow-level outcomes.

    Equivalence means: identical flow-id sets, and per flow identical
    FCT, retransmission count, timeout count and bytes acked. Returns a
    report with ``"equivalent"``, the ``"mismatches"`` list (flow id ->
    differing fields) and both raw summaries.
    """
    single = run_sharded(workload, shards=1)
    sharded = run_sharded(workload, shards=2, processes=processes)
    mismatches: List[str] = []
    f1, f2 = single["flows"], sharded["flows"]
    for flow_id in sorted(set(f1) | set(f2)):
        a, b = f1.get(flow_id), f2.get(flow_id)
        if a is None or b is None:
            mismatches.append(
                f"flow {flow_id}: present only in "
                f"{'single' if b is None else 'sharded'} run"
            )
            continue
        for key in ("fct_ps", "retransmissions", "timeouts", "bytes_acked"):
            if a[key] != b[key]:
                mismatches.append(
                    f"flow {flow_id}: {key} {a[key]} (single) != "
                    f"{b[key]} (sharded)"
                )
    return {
        "equivalent": not mismatches and not sharded["violations"],
        "mismatches": mismatches,
        "violations": sharded["violations"],
        "flows": len(f1),
        "single": single,
        "sharded": sharded,
    }
