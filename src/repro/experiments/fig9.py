"""Figure 9: permutation workload, as-is vs fully-provisioned WAN.

Every host sends one fixed-size flow to a random other host (possibly in
the other DC). In the "as-is" topology the border links are heavily
oversubscribed by cross-DC permutation traffic; "provisioned" widens the
WAN until it is not the bottleneck. Uno+UnoLB beats Uno+ECMP (hash
collisions on the border links), and both beat Gemini and MPRDMA+BBR.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.analysis.fct import summarize_fcts
from repro.experiments.api import ExperimentPoint
from repro.experiments.harness import (
    ExperimentScale,
    build_multidc,
    make_launcher,
    run_specs,
    scale_for,
)
from repro.experiments.report import print_experiment
from repro.sim.engine import Simulator
from repro.sim.units import MIB
from repro.workloads.patterns import permutation_specs

VARIANTS = (
    ("uno", dict()),                 # UnoCC + UnoLB + EC
    ("uno_ecmp", dict()),            # UnoCC + single ECMP path
    ("gemini", dict()),
    ("mprdma_bbr", dict()),
)
DEFAULT_SEED = 4


def run_cell(scheme: str, provisioned: bool, flow_bytes: int,
             scale: ExperimentScale, seed: int) -> Dict:
    """One (scheme, provisioning) permutation cell; returns FCT stats."""
    sim = Simulator()
    params = scale.params()
    n_hosts_per_dc = scale.k**3 // 4
    # "Provisioned": enough border links that the WAN can never be the
    # bottleneck even if every host sends across it. "As-is" keeps the
    # WAN oversubscribed relative to host capacity, like the paper's
    # 8 links vs 128 hosts; at k=4 that means halving the link count.
    if provisioned:
        n_border = 2 * n_hosts_per_dc
    else:
        n_border = max(2, min(scale.n_border_links, n_hosts_per_dc // 4))
    import dataclasses

    scale_cell = dataclasses.replace(scale, n_border_links=n_border)
    topo = build_multidc(sim, scheme, params, scale_cell, seed=seed)
    specs = permutation_specs(topo, flow_bytes, random.Random(seed))
    launcher = make_launcher(scheme, sim, topo, params, seed=seed)
    senders = run_specs(sim, specs, launcher, scale.horizon_ps)
    stats = [s.stats for s in senders]
    fct = summarize_fcts(stats)
    inter = [s.stats for s in senders if s.is_inter_dc]
    return {
        "fct_mean_ms": fct.mean_ms,
        "fct_p99_ms": fct.p99_ms,
        "n_inter": len(inter),
        "inter_mean_ms": summarize_fcts(inter).mean_ms if inter else 0.0,
    }


def points(quick: bool = True,
           seed: Optional[int] = None) -> List[ExperimentPoint]:
    """One point per (provisioning, scheme) permutation cell."""
    seed = DEFAULT_SEED if seed is None else seed
    flow_bytes = 4 * MIB if quick else 64 * MIB
    return [
        ExperimentPoint(
            "fig9",
            f"{'provisioned' if provisioned else 'as-is'}/{scheme}",
            {"provisioned": provisioned, "scheme": scheme,
             "flow_bytes": flow_bytes, "quick": quick},
            seed=seed,
        )
        for provisioned in (False, True)
        for scheme, _ in VARIANTS
    ]


def run_point(point: ExperimentPoint) -> Dict:
    """One permutation cell."""
    cfg = point.cfg
    scale = scale_for(cfg["quick"])
    cell = run_cell(cfg["scheme"], cfg["provisioned"], cfg["flow_bytes"],
                    scale, point.seed)
    cell["scheme"] = cfg["scheme"]
    cell["provisioned"] = cfg["provisioned"]
    cell["flow_bytes"] = cfg["flow_bytes"]
    return cell


def summarize(results: Dict[str, Dict]) -> Dict:
    """Group cells into as-is vs provisioned tables."""
    out: Dict[str, Dict[str, Dict]] = {"as-is": {}, "provisioned": {}}
    for key in out:
        for scheme, _ in VARIANTS:
            name = f"{key}/{scheme}"
            if name in results:
                out[key][scheme] = results[name]
    flow_bytes = next(iter(results.values()))["flow_bytes"]
    return {"variants": out, "flow_bytes": flow_bytes}


def run(quick: bool = True, seed: Optional[int] = None) -> Dict:
    """Run the experiment; ``quick`` selects the scaled-down configuration."""
    from repro.experiments.runner import run_experiment

    return run_experiment("fig9", quick, seed=seed)


def report(res: Dict) -> None:
    """Print the paper-vs-measured table for a results dict."""
    rows = []
    for key, per_scheme in res["variants"].items():
        for scheme, r in per_scheme.items():
            rows.append([key, scheme, f"{r['fct_mean_ms']:.2f}",
                         f"{r['fct_p99_ms']:.2f}", f"{r['inter_mean_ms']:.2f}"])
    print_experiment(
        "Figure 9: permutation workload",
        "Uno (with UnoLB) < Uno+ECMP < Gemini/MPRDMA+BBR in FCT; "
        "FCTs drop when the inter-DC links are fully provisioned",
        ["topology", "scheme", "mean FCT ms", "p99 FCT ms", "inter mean ms"],
        rows,
    )


def main(quick: bool = True) -> Dict:
    """Run and print the paper-vs-measured table; returns the results dict."""
    res = run(quick=quick)
    report(res)
    return res


if __name__ == "__main__":
    main()
