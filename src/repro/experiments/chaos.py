"""Chaos campaigns: scenario x transport grids with invariant checking.

A *campaign* is a named grid of (topology, scenario, transport) cells;
every cell becomes one :class:`ExperimentPoint` (experiment ``"chaos"``),
so campaigns run through the same parallel/cached/resumable runner and
on-disk cache as the paper experiments::

    python -m repro.experiments.run_all --chaos smoke --out results/chaos

Each point builds a fresh topology, compiles its scenario onto the
network (:mod:`repro.sim.chaos`), runs a fixed flow set to the horizon,
and then sweeps the run invariants — packet conservation, no stuck
flows, event loop drained, completion accounting under UnoRC recovery.
A healthy campaign reports **zero** violations; any violation is a
simulator or transport bug, not a tuning issue.

The ``convergence`` config knob selects the control plane: ``"default"``
(the Network's ~10 ms failure-aware rerouting), a number (picoseconds;
``0`` = static tables), or ``"inf"`` (never reroute — the blackhole
control that reproduces the pre-rerouting behavior). Canonical JSON
cannot carry IEEE infinities, hence the string spelling.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Optional

from repro.experiments.api import ExperimentPoint
from repro.experiments.harness import build_multidc, make_launcher, scale_for
from repro.sim.chaos import (
    DeadlockProbe,
    FiberCut,
    GreyFailure,
    HostCrash,
    LinkFlap,
    LossEpisode,
    NICFlap,
    NodeScenario,
    PartitionWindow,
    PauseStorm,
    Scenario,
    SwitchCrash,
    ToRReboot,
    check_invariants,
)
from repro.sim.engine import Simulator
from repro.sim.network import Network
from repro.sim.queues import REDConfig
from repro.sim.pfc import DeadlockWatchdog, PFCConfig, enable_pfc, pause_stats
from repro.sim.units import MS, US
from repro.topology.fattree import FatTree, FatTreeConfig
from repro.topology.simple import dual_border, dumbbell
from repro.transport.base import AbortPolicy, Sender, start_flow
from repro.transport.dctcp import DCTCP
from repro.workloads.generator import FlowSpec

EXPERIMENT = "chaos"

HORIZON_PS = 500 * MS  # per-point deadline: every flow must finish by here

TOPOS = ("dumbbell", "two_dc", "dual_border", "fattree")
DUMBBELL_TRANSPORTS = ("dctcp",)
TWO_DC_TRANSPORTS = ("uno", "gemini")
FABRICS = ("lossy", "lossless")

# CBD watchdog tuning for lossless campaign points: scan every 1 ms, a
# cycle of ports paused continuously for 10 ms is a deadlock.
WATCHDOG_WINDOW_PS = 10 * MS
WATCHDOG_INTERVAL_PS = 1 * MS

# Connection abort policy for node-failure campaigns: generous enough
# that flows riding out a repaired outage (ToR reboot, NIC flap) or a
# rerouted crash survive, tight enough that flows to a crashed host
# abort well inside the 500 ms horizon.
NODE_ABORT = {"max_consecutive_rtos": 40, "deadline_ps": 300 * MS}

# campaign name -> list of (topo, scenario, transport) cells
CAMPAIGNS: Dict[str, List[tuple]] = {
    # CI smoke: flap + grey + correlated-loss on both topologies, plus
    # the unrepaired two-DC fiber cut that only rerouting survives.
    "smoke": (
        [("dumbbell", s, t)
         for s in ("flap", "grey", "loss_episode")
         for t in DUMBBELL_TRANSPORTS]
        + [("two_dc", s, t)
           for s in ("flap", "grey", "loss_episode", "fiber_cut")
           for t in TWO_DC_TRANSPORTS]
    ),
    # The acceptance scenario on its own: a permanent two-border-link
    # cut; all flows must still complete via rerouting.
    "fibercut": [("two_dc", "fiber_cut", t) for t in TWO_DC_TRANSPORTS],
    # Full partition window: every border link down at once, repaired.
    "partition": [("two_dc", "partition", t) for t in TWO_DC_TRANSPORTS],
    # Node failure domains: a survivable border-switch crash (alternate
    # path), plus host crash / ToR reboot / core crash / NIC flap on the
    # two-DC topology with a pinned flow set touching the victim host.
    # Every flow must end terminal: completed, or aborted by policy.
    "node-failures": (
        [("dual_border", "switch_crash", "dctcp")]
        + [("two_dc", s, t)
           for s in ("host_crash", "tor_reboot", "core_crash", "nic_flap")
           for t in TWO_DC_TRANSPORTS]
    ),
    # Lossless fabric: 4-tuple cells add the fabric axis. Pause storms
    # run lossy-vs-lossless on both topologies (the lossy twin is the
    # harmless control; the lossless one measures victim-flow spreading
    # slowdown), and the seeded DeadlockProbe cells must be flagged by
    # the CBD watchdog — an *undetected* deadlock fails the campaign.
    "lossless": (
        [("fattree", "pause_storm", "dctcp", f) for f in FABRICS]
        + [("two_dc", "pause_storm", t, f)
           for t in TWO_DC_TRANSPORTS for f in FABRICS]
        + [("fattree", "deadlock_probe", "dctcp", "lossless"),
           ("two_dc", "deadlock_probe", "uno", "lossless")]
    ),
}


def scenario_for(topo: str, name: str) -> Scenario:
    """The preset scenario ``name`` timed for topology ``topo``.

    Dumbbell flows are short (tens of us RTT), so scenarios strike early;
    two-DC inter flows ride a 2 ms RTT, so scenarios strike at ~1-2 ms
    when flows are mid-flight. Outages (30 ms) deliberately exceed the
    default 10 ms convergence delay so rerouting actually engages.
    """
    if topo == "dumbbell":
        sel = dict(selector="inter_switch", k=1)
        presets = {
            "flap": LinkFlap(start_ps=500 * US, down_ps=30 * MS,
                             period_ps=80 * MS, flaps=2, **sel),
            "grey": GreyFailure(start_ps=200 * US, duration_ps=30 * MS,
                                loss_rate=0.02, **sel),
            "loss_episode": LossEpisode(start_ps=200 * US,
                                        duration_ps=30 * MS,
                                        loss_rate=0.01, **sel),
        }
    elif topo == "two_dc":
        presets = {
            "flap": LinkFlap(selector="border", k=2, start_ps=2 * MS,
                             down_ps=30 * MS, period_ps=80 * MS, flaps=2),
            "grey": GreyFailure(selector="border", k=2, start_ps=1 * MS,
                                duration_ps=50 * MS, loss_rate=0.02),
            "loss_episode": LossEpisode(selector="border", k=2,
                                        start_ps=1 * MS,
                                        duration_ps=50 * MS,
                                        loss_rate=0.01),
            "fiber_cut": FiberCut(selector="border", k=2, at_ps=2 * MS,
                                  repair_after_ps=None),
            "partition": PartitionWindow(selector="border", k=0,
                                         start_ps=2 * MS,
                                         duration_ps=30 * MS),
            # Node scenarios strike after the pinned flows are airborne.
            # hosts[0] ("host" selector, k=1) is the pinned victim; its
            # ToR is dc0.p0.edge0 ("tor", k=1) — the same blast radius.
            "host_crash": HostCrash(selector="host", k=1, at_ps=2 * MS,
                                    repair_after_ps=None),
            "tor_reboot": ToRReboot(selector="tor", k=1, at_ps=2 * MS,
                                    down_ps=20 * MS),
            "core_crash": SwitchCrash(selector="core", k=1, at_ps=2 * MS,
                                      repair_after_ps=None),
            "nic_flap": NICFlap(selector="host", k=1, start_ps=2 * MS,
                                down_ps=1 * MS, period_ps=20 * MS,
                                flaps=3),
            # PFC scenarios: storm the border (the inter-DC victim
            # path); the probe seeds its cycle inside a fat-tree pod.
            "pause_storm": PauseStorm(selector="border", k=2,
                                      start_ps=1 * MS, duration_ps=30 * MS,
                                      period_ps=200 * US, hold_ps=100 * US),
            "deadlock_probe": DeadlockProbe(at_ps=2 * MS, hold_ps=60 * MS),
        }
    elif topo == "fattree":
        presets = {
            # Storm two core cables while the cross-pod flows are
            # airborne: on a lossless fabric they stall repeatedly
            # (victim spreading); on a lossy one the frames are ignored.
            "pause_storm": PauseStorm(selector="core", k=2,
                                      start_ps=100 * US, duration_ps=30 * MS,
                                      period_ps=200 * US, hold_ps=100 * US),
            # Seed a held-pause square (core/agg or edge/agg): the CBD
            # watchdog must flag it within its 10 ms window.
            "deadlock_probe": DeadlockProbe(at_ps=2 * MS, hold_ps=60 * MS),
        }
    elif topo == "dual_border":
        presets = {
            # Permanent crash of one of two parallel border switches:
            # rerouting over the survivor must complete every flow.
            "switch_crash": SwitchCrash(selector="border", k=1,
                                        at_ps=2 * MS,
                                        repair_after_ps=None),
        }
    else:
        raise ValueError(f"unknown chaos topology {topo!r}")
    if name not in presets:
        raise ValueError(
            f"scenario {name!r} has no preset on {topo!r} "
            f"(available: {sorted(presets)})"
        )
    return presets[name]


def parse_convergence(value: Any) -> Optional[float]:
    """Config knob -> convergence delay: ``"default"``/None keeps the
    Network default, ``"inf"`` never converges, numbers are ps."""
    if value is None or value == "default":
        return None
    if value == "inf":
        return float("inf")
    return float(value)


def campaign_points(
    campaign: str = "smoke",
    quick: bool = True,
    seed: Optional[int] = None,
    convergence: Any = "default",
) -> List[ExperimentPoint]:
    """One point per campaign cell."""
    if campaign not in CAMPAIGNS:
        raise ValueError(f"unknown campaign {campaign!r}; "
                         f"choose from {sorted(CAMPAIGNS)}")
    try:
        parse_convergence(convergence)
    except (TypeError, ValueError):
        raise ValueError(
            f"invalid convergence value {convergence!r}: expected "
            f"'default', 'inf', or a delay in picoseconds"
        ) from None
    base_seed = 7 if seed is None else seed
    # Node-failure cells carry the abort policy (flattened to scalar
    # keys — point configs are JSON-scalar cache keys) and pin the flow
    # set to the victim host; older campaigns keep their exact
    # historical configs.
    extra: Dict[str, Any] = {}
    if campaign == "node-failures":
        extra = {
            "abort_max_consecutive_rtos": NODE_ABORT["max_consecutive_rtos"],
            "abort_deadline_ps": NODE_ABORT["deadline_ps"],
            "flows": "pinned",
        }
    pts = []
    for cell in CAMPAIGNS[campaign]:
        topo, scenario, transport = cell[:3]
        name = f"{campaign}/{topo}-{scenario}-{transport}"
        config = {
            "quick": quick,
            "campaign": campaign,
            "topo": topo,
            "scenario": scenario,
            "transport": transport,
            "convergence": convergence,
            **extra,
        }
        if len(cell) > 3:
            # 4-tuple cells carry a fabric axis (lossy | lossless); the
            # probe cells additionally *expect* a CBD detection. Older
            # 3-tuple campaigns keep their historical configs (and thus
            # on-disk cache keys) byte-identical.
            fabric = cell[3]
            name = f"{name}-{fabric}"
            config["fabric"] = fabric
            config["expect_deadlock"] = scenario == "deadlock_probe"
        pts.append(ExperimentPoint(
            experiment=EXPERIMENT,
            name=name,
            config=config,
            seed=base_seed,
        ))
    return pts


def points(quick: bool = True,
           seed: Optional[int] = None) -> List[ExperimentPoint]:
    """Point-API entry: the default (smoke) campaign."""
    return campaign_points("smoke", quick, seed)


# ----------------------------------------------------------------------
# Point execution
# ----------------------------------------------------------------------

def _abort_policy(cfg) -> Optional[AbortPolicy]:
    """Rebuild the point's abort policy from its JSON config (None for
    the historical campaigns — transports never abort by default)."""
    max_rtos = cfg.get("abort_max_consecutive_rtos")
    deadline = cfg.get("abort_deadline_ps")
    if max_rtos is None and deadline is None:
        return None
    return AbortPolicy(max_consecutive_rtos=max_rtos, deadline_ps=deadline)


def _dumbbell_flows(sim, cfg, seed) -> tuple:
    size = 256 * 1024 if cfg["quick"] else 1024 * 1024
    topo = dumbbell(
        sim, n_pairs=4, gbps=25.0, prop_ps=5 * US, queue_bytes=256 * 1024,
        seed=seed, convergence_delay_ps=parse_convergence(cfg["convergence"]),
    )
    senders: List[Sender] = []
    for i, (src, dst) in enumerate(zip(topo.senders, topo.receivers)):
        senders.append(start_flow(
            sim, topo.net, DCTCP(), src, dst, size,
            start_ps=i * 20 * US,
            base_rtt_ps=4 * 5 * US,
            line_gbps=25.0,
            abort=_abort_policy(cfg),
            seed=seed + i,
        ))
    return topo.net, senders


def _dual_border_flows(sim, cfg, seed) -> tuple:
    size = 256 * 1024 if cfg["quick"] else 1024 * 1024
    topo = dual_border(
        sim, n_pairs=4, gbps=25.0, prop_ps=5 * US, queue_bytes=256 * 1024,
        seed=seed, convergence_delay_ps=parse_convergence(cfg["convergence"]),
    )
    senders: List[Sender] = []
    for i, (src, dst) in enumerate(zip(topo.senders, topo.receivers)):
        senders.append(start_flow(
            sim, topo.net, DCTCP(), src, dst, size,
            start_ps=i * 20 * US,
            base_rtt_ps=6 * 5 * US,  # 3 hops each way
            line_gbps=25.0,
            abort=_abort_policy(cfg),
            seed=seed + i,
        ))
    return topo.net, senders


def _pinned_specs(topo, cfg, rng) -> List[FlowSpec]:
    """Deterministic flow set anchored on ``net.hosts[0]`` — the node
    the ``host``/``tor`` selectors (k=1) strike. Flows INTO the victim
    must abort by policy when it crashes; the flow OUT of it is torn
    down by the crash itself; background flows must stay unaffected."""
    hosts = topo.net.hosts
    victim = hosts[0]
    far = [h for h in hosts if h.dc != victim.dc]
    near = [h for h in hosts if h.dc == victim.dc and h is not victim]
    size_inter = 128 * 1024 if cfg["quick"] else 512 * 1024
    size_intra = 64 * 1024 if cfg["quick"] else 256 * 1024
    return [
        # Two inter-DC flows into the victim, one out of it.
        FlowSpec(start_ps=0, src=far[0], dst=victim,
                 size_bytes=size_inter, is_inter_dc=True),
        FlowSpec(start_ps=100 * US, src=far[1], dst=victim,
                 size_bytes=size_inter, is_inter_dc=True),
        FlowSpec(start_ps=0, src=victim, dst=far[2],
                 size_bytes=size_inter, is_inter_dc=True),
        # Background inter-DC flows avoiding the victim.
        FlowSpec(start_ps=200 * US, src=near[0], dst=far[3],
                 size_bytes=size_inter, is_inter_dc=True),
        FlowSpec(start_ps=300 * US, src=far[4], dst=near[1],
                 size_bytes=size_inter, is_inter_dc=True),
        # Intra-DC background (near the victim's ToR).
        FlowSpec(start_ps=0, src=near[2], dst=near[3],
                 size_bytes=size_intra, is_inter_dc=False),
    ]


def _two_dc_flows(sim, cfg, seed) -> tuple:
    scale = scale_for(cfg["quick"])
    params = scale.params()
    topo = build_multidc(
        sim, cfg["transport"], params, scale, seed=seed,
        convergence_delay_ps=parse_convergence(cfg["convergence"]),
    )
    launcher = make_launcher(cfg["transport"], sim, topo, params, seed=seed,
                             abort=_abort_policy(cfg))
    rng = random.Random(seed)
    if cfg.get("flows") == "pinned":
        specs = _pinned_specs(topo, cfg, rng)
    else:
        size_inter = 128 * 1024 if cfg["quick"] else 512 * 1024
        size_intra = 64 * 1024 if cfg["quick"] else 256 * 1024
        specs = []
        for i in range(6):
            src, dst = topo.random_host_pair(rng, inter_dc=True)
            specs.append(FlowSpec(start_ps=i * 100 * US, src=src, dst=dst,
                                  size_bytes=size_inter, is_inter_dc=True))
        for i in range(2):
            src, dst = topo.random_host_pair(rng, inter_dc=False)
            specs.append(FlowSpec(start_ps=i * 100 * US, src=src, dst=dst,
                                  size_bytes=size_intra, is_inter_dc=False))
    senders = [launcher(spec, idx, lambda _s: None)
               for idx, spec in enumerate(specs)]
    return topo.net, senders


def _fattree_flows(sim, cfg, seed) -> tuple:
    """Single-DC k=4 fat tree with 8 cross-pod DCTCP flows — every flow
    traverses the core, where the lossless campaign's pause storms and
    deadlock probes strike."""
    size = 1024 * 1024 if cfg["quick"] else 4 * 1024 * 1024
    conv = parse_convergence(cfg["convergence"])
    if conv is None:
        net = Network(sim, seed=seed)
    else:
        net = Network(sim, seed=seed, convergence_delay_ps=conv)
    FatTree(net, FatTreeConfig(k=4, gbps=25.0, link_prop_ps=1 * US,
                               queue_bytes=256 * 1024,
                               red=REDConfig(min_frac=0.25, max_frac=0.75)),
            prefix="dc0")
    net.build_routes()
    hosts = net.hosts
    n = len(hosts)
    senders: List[Sender] = []
    for i in range(8):
        src = hosts[i]
        dst = hosts[(i + n // 2) % n]  # opposite pod -> via the core
        senders.append(start_flow(
            sim, net, DCTCP(), src, dst, size,
            start_ps=i * 20 * US,
            base_rtt_ps=12 * US,
            line_gbps=25.0,
            abort=_abort_policy(cfg),
            seed=seed + i,
        ))
    return net, senders


def run_point(point: ExperimentPoint) -> Dict[str, Any]:
    """Build the point's topology and flows, compile its scenario onto
    the network, run to the horizon, and sweep the run invariants."""
    cfg = point.cfg
    sim = Simulator()
    if sim.obs is None:
        # Stand-alone runs still get the failure/route/invariant record;
        # under --telemetry the TelemetryContext already attached.
        from repro.obs import enable
        enable(sim, event_topics=("failure", "route", "invariant", "pfc"),
               profile=False)

    if cfg["topo"] == "dumbbell":
        net, senders = _dumbbell_flows(sim, cfg, point.seed)
    elif cfg["topo"] == "two_dc":
        net, senders = _two_dc_flows(sim, cfg, point.seed)
    elif cfg["topo"] == "dual_border":
        net, senders = _dual_border_flows(sim, cfg, point.seed)
    elif cfg["topo"] == "fattree":
        net, senders = _fattree_flows(sim, cfg, point.seed)
    else:
        raise ValueError(f"unknown chaos topology {cfg['topo']!r}")

    watchdog = None
    if cfg.get("fabric") == "lossless":
        enable_pfc(net, PFCConfig())
        watchdog = DeadlockWatchdog(sim, net,
                                    window_ps=WATCHDOG_WINDOW_PS,
                                    interval_ps=WATCHDOG_INTERVAL_PS,
                                    until_ps=HORIZON_PS)

    scenario = scenario_for(cfg["topo"], cfg["scenario"])
    rng = random.Random(point.seed ^ 0xC4A05)
    targets = scenario.apply(sim, net, rng)
    if isinstance(scenario, (NodeScenario, DeadlockProbe)):
        # Node scenarios target nodes; the probe returns its cycle.
        cables_hit, nodes_hit = [], [node.name for node in targets]
    else:
        cables_hit, nodes_hit = [ab.name for ab, _ba in targets], []

    sim.run(until=HORIZON_PS)
    violations = check_invariants(sim, net, senders, HORIZON_PS,
                                  watchdog=watchdog)

    fcts = [s.stats.fct_ps for s in senders if s.stats.fct_ps is not None]
    completed = sum(1 for s in senders if s.done)
    aborted = sum(1 for s in senders if getattr(s, "aborted", False))
    abort_reasons: Dict[str, int] = {}
    for s in senders:
        reason = s.stats.abort_reason
        if reason is not None:
            abort_reasons[reason] = abort_reasons.get(reason, 0) + 1
    pfc: Dict[str, Any] = {}
    if "fabric" in cfg:
        pfc = {
            "fabric": cfg["fabric"],
            "expect_deadlock": bool(cfg.get("expect_deadlock")),
            "deadlocks_detected": (len(watchdog.deadlocks)
                                   if watchdog is not None else 0),
            **pause_stats(net),
        }
    return {
        **pfc,
        "scenario": scenario.describe(),
        "cables_hit": cables_hit,
        "nodes_hit": nodes_hit,
        "n_flows": len(senders),
        "completed": completed,
        "aborted": aborted,
        "stuck": len(senders) - completed - aborted,
        "abort_reasons": abort_reasons,
        "violations": violations,
        "n_violations": len(violations),
        "max_fct_ms": max(fcts) / MS if fcts else None,
        "timeouts": sum(s.stats.timeouts for s in senders),
        "retransmissions": sum(s.stats.retransmissions for s in senders),
        "route_patches": net.route_patches,
        "route_rebuilds": net.route_rebuilds,
        "no_route_drops": sum(sw.no_route_drops for sw in net.switches),
        "down_node_drops": sum(node.down_node_drops for node in net.nodes),
        "failed_drops": sum(ln.failed_drops for ln in net.links),
        "lost_pkts": sum(ln.lost_pkts for ln in net.links),
    }


# ----------------------------------------------------------------------
# Reduction / reporting
# ----------------------------------------------------------------------

def summarize(results: Dict[str, Dict[str, Any]]) -> Dict[str, Any]:
    """Reduce per-point results to the campaign verdict: total
    violations and whether every flow in every point completed.

    Lossless cells get PFC bookkeeping: DeadlockProbe cells *expect* a
    ``cbd_deadlock`` detection, so those reports don't count against the
    violation total — but a probe cell with zero detections is an
    *undetected* deadlock, the one outcome the watchdog exists to
    prevent, and fails the campaign."""
    cells = {}
    total_violations = 0
    undetected_deadlocks = 0
    all_completed = True
    all_terminal = True
    for name in sorted(results):
        res = results[name]
        violations = res["violations"]
        if res.get("expect_deadlock"):
            violations = [v for v in violations
                          if v.get("invariant") != "cbd_deadlock"]
            if res.get("deadlocks_detected", 0) == 0:
                undetected_deadlocks += 1
        total_violations += len(violations)
        aborted = res.get("aborted", 0)
        completed_all = res["completed"] == res["n_flows"]
        all_completed = all_completed and completed_all
        all_terminal = (all_terminal
                        and res["completed"] + aborted == res["n_flows"])
        cells[name] = {
            "completed": res["completed"],
            "aborted": aborted,
            "n_flows": res["n_flows"],
            "n_violations": len(violations),
            "violations": violations,
            "route_patches": res["route_patches"],
            "route_rebuilds": res["route_rebuilds"],
            "max_fct_ms": res["max_fct_ms"],
        }
        if "fabric" in res:
            cells[name].update({
                "fabric": res["fabric"],
                "expect_deadlock": res.get("expect_deadlock", False),
                "deadlocks_detected": res.get("deadlocks_detected", 0),
                "pause_frames_tx": res.get("pause_frames_tx", 0),
                "pause_frames_rx": res.get("pause_frames_rx", 0),
                "paused_time_ps": res.get("paused_time_ps", 0),
            })
    # Victim-flow spreading: pair each lossless storm cell with its
    # lossy twin and report the max-FCT slowdown ratio.
    victim_slowdown = {}
    for name, cell in cells.items():
        if not name.endswith("-lossless"):
            continue
        twin = cells.get(name[:-len("-lossless")] + "-lossy")
        if (twin and cell["max_fct_ms"] and twin["max_fct_ms"]):
            victim_slowdown[name] = round(
                cell["max_fct_ms"] / twin["max_fct_ms"], 3)
    return {
        "points": cells,
        "n_points": len(cells),
        "total_violations": total_violations,
        "undetected_deadlocks": undetected_deadlocks,
        "victim_slowdown": victim_slowdown,
        "all_flows_completed": all_completed,
        # The campaign gate: every flow reached a *terminal* state —
        # completed, or aborted by its connection policy. Stuck flows
        # (neither) are the failure mode node chaos is hunting for.
        "all_flows_terminal": all_terminal,
    }


def report(res: Dict[str, Any]) -> None:
    """Print the per-point campaign table and the overall verdict."""
    print("Chaos campaign")
    print(f"  {'point':<44} {'flows':>7} {'abort':>5} {'viol':>5} "
          f"{'patch':>5} {'rebuild':>7} {'maxFCT(ms)':>11}")
    for name, cell in res["points"].items():
        fct = cell["max_fct_ms"]
        fct_s = f"{fct:.2f}" if fct is not None else "-"
        flows = f"{cell['completed']}/{cell['n_flows']}"
        print(f"  {name:<44} {flows:>7} {cell.get('aborted', 0):>5} "
              f"{cell['n_violations']:>5} "
              f"{cell['route_patches']:>5} {cell['route_rebuilds']:>7} "
              f"{fct_s:>11}")
    undetected = res.get("undetected_deadlocks", 0)
    if (res["total_violations"] == 0 and not undetected
            and res.get("all_flows_terminal", True)):
        verdict = ("all invariants held" if res["all_flows_completed"]
                   else "all invariants held (some flows aborted by policy)")
    elif undetected:
        verdict = (f"{undetected} UNDETECTED DEADLOCKS, "
                   f"{res['total_violations']} violations")
    else:
        verdict = f"{res['total_violations']} INVARIANT VIOLATIONS"
    print(f"  => {res['n_points']} points, {verdict}")
    for name, ratio in res.get("victim_slowdown", {}).items():
        print(f"  victim slowdown {name}: {ratio}x vs lossy twin")


def run(quick: bool = True, **runner_kwargs) -> Dict[str, Any]:
    """Run the default (smoke) campaign serially and summarize it."""
    from repro.experiments.runner import run_experiment

    return run_experiment(EXPERIMENT, quick, **runner_kwargs)
