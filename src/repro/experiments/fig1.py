"""Figure 1 (B): fraction of message completion time due to propagation.

The paper's motivating analysis: completion time of an M-byte message on
a path with round-trip propagation R and bottleneck bandwidth B is
``T = R + M/B`` (first bit leaves, last ACK returns), so the
propagation-bound fraction is ``R / T``. For intra-DC RTTs (10-40 us)
messages beyond ~256 KiB are throughput-bound; for inter-DC RTTs
(1-60 ms) even multi-hundred-MB messages stay latency-bound.

``run`` computes the analytic curves and validates a handful of points
against actual packet-level simulations of a single flow on an otherwise
idle path.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.fct import ideal_fct_ps
from repro.experiments.api import ExperimentPoint
from repro.experiments.report import print_experiment
from repro.sim.engine import Simulator
from repro.sim.units import GIB, KIB, MIB, MS, US
from repro.topology.simple import incast_star
from repro.transport.base import CongestionControl, start_flow

DEFAULT_SEED = 0

# The RTT series the paper plots (two intra-DC, three inter-DC).
RTTS_PS = {
    "10us": 10 * US,
    "40us": 40 * US,
    "1ms": 1 * MS,
    "20ms": 20 * MS,
    "60ms": 60 * MS,
}

SIZES = [
    4 * KIB,
    64 * KIB,
    256 * KIB,
    1 * MIB,
    16 * MIB,
    256 * MIB,
    1 * GIB,
]


def propagation_fraction(size_bytes: int, rtt_ps: int, gbps: float = 100.0) -> float:
    """Analytic fraction of completion time due to propagation delay."""
    total = ideal_fct_ps(size_bytes, rtt_ps, gbps, header=0)
    return rtt_ps / total


class _OpenLoop(CongestionControl):
    """Effectively unbounded window: measures the uncongested FCT."""

    def on_init(self, sender):
        sender.cwnd = float(1 << 62)


def _simulate_point(size_bytes: int, rtt_ps: int, gbps: float = 100.0) -> float:
    sim = Simulator()
    topo = incast_star(sim, 1, gbps=gbps, prop_ps=rtt_ps // 4,
                       queue_bytes=1 << 30)
    sender = start_flow(sim, topo.net, _OpenLoop(), topo.senders[0],
                        topo.receivers[0], size_bytes, base_rtt_ps=rtt_ps,
                        line_gbps=gbps)
    sim.run(until=10**14)
    if not sender.done:
        raise RuntimeError("fig1 validation flow did not finish")
    return rtt_ps / sender.stats.fct_ps


def points(quick: bool = True,
           seed: Optional[int] = None) -> List[ExperimentPoint]:
    """One point per analytic-vs-simulated validation cell (the analytic
    curves are free and recomputed in ``summarize``); quick mode skips
    the largest sizes."""
    seed = DEFAULT_SEED if seed is None else seed
    check_sizes = [64 * KIB, 1 * MIB] if quick else [64 * KIB, 1 * MIB, 16 * MIB]
    return [
        ExperimentPoint(
            "fig1", f"check/{label}/{size}",
            {"rtt_label": label, "size_bytes": size, "gbps": 100.0,
             "quick": quick},
            seed=seed,
        )
        for label in ("40us", "20ms")
        for size in check_sizes
    ]


def run_point(point: ExperimentPoint) -> Dict:
    """Validate the analytic model against one packet simulation."""
    cfg = point.cfg
    rtt = RTTS_PS[cfg["rtt_label"]]
    return {
        "rtt": cfg["rtt_label"],
        "size": cfg["size_bytes"],
        "analytic": propagation_fraction(cfg["size_bytes"], rtt, cfg["gbps"]),
        "simulated": _simulate_point(cfg["size_bytes"], rtt, cfg["gbps"]),
    }


def summarize(results: Dict[str, Dict]) -> Dict:
    """Recompute the analytic curves and order the validation checks."""
    curves: Dict[str, List[float]] = {}
    for label, rtt in RTTS_PS.items():
        curves[label] = [propagation_fraction(s, rtt) for s in SIZES]
    order = list(RTTS_PS)
    checks = sorted(results.values(),
                    key=lambda c: (order.index(c["rtt"]), c["size"]))
    return {"sizes": SIZES, "curves": curves, "checks": checks}


def run(quick: bool = True, seed: Optional[int] = None) -> Dict:
    """Run the experiment; ``quick`` selects the scaled-down configuration."""
    from repro.experiments.runner import run_experiment

    return run_experiment("fig1", quick, seed=seed)


def report(res: Dict) -> None:
    """Print the paper-vs-measured table for a results dict."""
    headers = ["size"] + list(RTTS_PS)
    rows = []
    for i, size in enumerate(res["sizes"]):
        rows.append([f"{size // 1024}KiB" if size < MIB else f"{size // MIB}MiB"]
                    + [f"{res['curves'][r][i]:.2f}" for r in RTTS_PS])
    print_experiment(
        "Figure 1B: propagation-bound fraction of completion time",
        "intra-DC RTTs throughput-bound past ~256 KiB; inter-DC RTTs "
        "latency-bound up to ~1 GiB (20 ms row > 0.5 up to 256 MiB)",
        headers,
        rows,
    )
    print("\nanalytic-vs-simulated validation points:")
    for c in res["checks"]:
        print(f"  rtt={c['rtt']:>5} size={c['size']:>9}B  "
              f"analytic={c['analytic']:.3f}  simulated={c['simulated']:.3f}")


def main(quick: bool = True) -> Dict:
    """Run and print the paper-vs-measured table; returns the results dict."""
    res = run(quick=quick)
    report(res)
    return res


if __name__ == "__main__":
    main()
