"""Run every paper experiment in sequence and print all the tables.

Usage:
    python -m repro.experiments.run_all [--paper] [--only fig3,fig10]

Quick mode (default) takes minutes on one core; --paper takes hours.
"""

from __future__ import annotations

import argparse
import importlib
import time

ALL = ["fig1", "fig3", "fig4", "fig8", "fig9", "fig10", "fig11", "fig12",
       "fig13", "table1", "ablations", "annulus_ext", "discussion_hpcc"]


def main(argv=None) -> None:
    """Parse arguments and run the selected experiments in order."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--paper", action="store_true",
                        help="full paper-scale runs instead of quick mode")
    parser.add_argument("--only", type=str, default="",
                        help="comma-separated subset, e.g. fig3,table1")
    args = parser.parse_args(argv)

    targets = ALL
    if args.only:
        targets = [t.strip() for t in args.only.split(",") if t.strip()]
        unknown = set(targets) - set(ALL)
        if unknown:
            parser.error(f"unknown experiments: {sorted(unknown)}")

    quick = not args.paper
    for name in targets:
        module = importlib.import_module(f"repro.experiments.{name}")
        t0 = time.time()
        module.main(quick=quick)
        print(f"[{name} done in {time.time() - t0:.1f}s]")


if __name__ == "__main__":
    main()
