"""Run every paper experiment and print all the tables.

Usage:
    python -m repro.experiments.run_all [--paper] [--only fig3,fig10]
        [--jobs N] [--resume] [--seed S] [--out DIR] [--timeout SECS]
        [--telemetry] [--retries N] [--chaos CAMPAIGN] [--convergence V]
        [--shards N] [--wire CAMPAIGN] [--list-campaigns]

All selected experiments are decomposed into independent points first,
then the whole point set is executed by one runner pass — so ``--jobs``
parallelism and ``--resume`` caching work across experiment boundaries.
Completed points are cached under ``<out>/points`` and per-experiment
summaries are written to ``<out>/summaries/<name>.json``.

``--telemetry`` additionally records, for every freshly-executed point,
the merged counter snapshot, event tally, and engine profile of all
simulators the point built, written to
``<out>/telemetry/<experiment>/<point-file>.json`` plus one aggregated
``<out>/telemetry/<experiment>/summary.json`` per experiment. Points
served from the cache did not run and therefore carry no telemetry.
Every telemetry campaign also streams its progress line-by-line to
``<out>/telemetry/campaign.jsonl`` — ``tools/dashboard.py <out>`` tails
it live and ``--html`` renders the static report. Combined with
``--shards 2``, telemetry turns on shard-tagged tracing: per-worker
JSONL traces, the canonical merged ``telemetry/sharded/trace.jsonl``
and a merged-registry ``telemetry/sharded/summary.json``, with the exit
gate extended to trace conservation and cross-shard span stitching.

``--retries N`` re-runs points that errored or timed out up to N extra
times (jittered exponential backoff between passes); the failure record
keeps every attempt's traceback.

``--chaos CAMPAIGN`` runs a chaos campaign (see
:mod:`repro.experiments.chaos`) instead of the paper experiments: the
campaign's scenario x transport grid becomes the point set, the summary
lands at ``<out>/summaries/chaos-<campaign>.json``, and the exit status
is non-zero if any point fails, any flow ends non-terminal (neither
completed nor aborted by policy), any run invariant is violated, or a
seeded deadlock goes undetected (the ``lossless`` campaign's PFC
DeadlockProbe cells). ``--convergence`` selects the control plane for
every campaign point: ``default`` (failure-aware rerouting), a number
(delay in ps; ``0`` = static tables), or ``inf`` (never reroute).

``--wire CAMPAIGN`` runs a wire campaign (see
:mod:`repro.experiments.wire`) instead of the paper experiments: the
unmodified transport stack over loopback UDP behind the seeded
impairment proxy, plus the sim-vs-wire comparison. The summary lands at
``<out>/summaries/wire-<campaign>.json`` and the exit status is
non-zero if any point fails or any cell's gate fails (soak invariants,
blackhole abort accounting, comparison tolerance bands).
``--list-campaigns`` prints every chaos and wire campaign and exits.

``--shards 2`` runs the sharded-equivalence campaign instead of the
paper experiments: the pinned two-DC workload on a single engine vs one
engine process per DC under conservative border-link sync. Exit status
is non-zero unless the runs are flow-for-flow identical with zero
cross-shard conservation violations; the verdict lands at
``<out>/summaries/sharded-two-dc.json``.

Quick mode (default) takes minutes on one core; --paper takes hours.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.experiments.api import EXPERIMENTS, canonical_json, experiment_module
from repro.experiments.cache import ResultCache
from repro.experiments.progress import CAMPAIGN_STREAM_NAME, CampaignStream
from repro.experiments.runner import failures, results_by_name, run_points


def _open_stream(args, out: Path, campaign: str,
                 total: int) -> Optional[CampaignStream]:
    """With ``--telemetry``, open the tailable campaign progress stream
    at ``<out>/telemetry/campaign.jsonl`` (the file tools/dashboard.py
    follows while the campaign runs)."""
    if not args.telemetry:
        return None
    telemetry_dir = out / "telemetry"
    telemetry_dir.mkdir(parents=True, exist_ok=True)
    stream = CampaignStream(telemetry_dir / CAMPAIGN_STREAM_NAME)
    stream.campaign_start(total, campaign=campaign, out=str(out))
    return stream

ALL = list(EXPERIMENTS)


def build_parser() -> argparse.ArgumentParser:
    """The run_all command-line interface."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--paper", action="store_true",
                        help="full paper-scale runs instead of quick mode")
    parser.add_argument("--only", type=str, default="",
                        help="comma-separated subset, e.g. fig3,table1")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for point execution (>= 1)")
    parser.add_argument("--resume", action="store_true",
                        help="skip points already completed in the cache")
    parser.add_argument("--seed", type=int, default=None,
                        help="override every experiment's default seed")
    parser.add_argument("--out", type=str, default="results/runs",
                        help="output root for the point cache and summaries")
    parser.add_argument("--timeout", type=float, default=None,
                        help="per-point timeout in seconds (kills the worker)")
    parser.add_argument("--telemetry", action="store_true",
                        help="write per-point counter/event/profile "
                             "snapshots under <out>/telemetry/")
    parser.add_argument("--retries", type=int, default=0,
                        help="extra attempts for points that error or "
                             "time out (default 0)")
    parser.add_argument("--chaos", type=str, default=None, metavar="CAMPAIGN",
                        help="run this chaos campaign instead of the paper "
                             "experiments (e.g. smoke, fibercut, partition)")
    parser.add_argument("--convergence", type=str, default="default",
                        help="chaos-only control-plane knob: 'default', a "
                             "delay in ps (0 = static routes), or 'inf'")
    parser.add_argument("--shards", type=int, default=None, metavar="N",
                        help="run the sharded two-DC campaign on N engines "
                             "(N=2: one per DC) instead of the paper "
                             "experiments, checking flow-level equivalence "
                             "against the single-engine run")
    parser.add_argument("--wire", type=str, default=None, metavar="CAMPAIGN",
                        help="run this wire campaign (loopback UDP soak "
                             "and/or sim-vs-wire comparison; e.g. soak, "
                             "compare, full) instead of the paper "
                             "experiments")
    parser.add_argument("--list-campaigns", action="store_true",
                        help="print the available chaos and wire campaigns "
                             "and exit")
    return parser


def main(argv: Optional[List[str]] = None) -> None:
    """Parse arguments and run the selected experiments in order."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_campaigns:
        list_campaigns()
        return

    targets = ALL
    if args.only:
        if args.chaos:
            parser.error("--chaos replaces the experiment list; "
                         "it cannot be combined with --only")
        if args.wire:
            parser.error("--wire replaces the experiment list; "
                         "it cannot be combined with --only")
        targets = [t.strip() for t in args.only.split(",") if t.strip()]
        unknown = set(targets) - set(ALL)
        if unknown:
            parser.error(f"unknown experiments: {sorted(unknown)}")
    if args.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")
    if args.retries < 0:
        parser.error(f"--retries must be >= 0, got {args.retries}")

    quick = not args.paper
    out = Path(args.out)
    cache = ResultCache(out / "points")

    exclusive = [flag for flag, on in (
        ("--chaos", args.chaos), ("--shards", args.shards is not None),
        ("--wire", args.wire),
    ) if on]
    if len(exclusive) > 1:
        parser.error(f"{' and '.join(exclusive)} are mutually exclusive")
    if args.chaos:
        run_chaos_campaign(args, parser, quick, out, cache)
        return
    if args.shards is not None:
        run_sharded_campaign(args, parser, quick, out)
        return
    if args.wire:
        run_wire_campaign(args, parser, quick, out, cache)
        return

    modules = {name: experiment_module(name) for name in targets}
    points = [p for name in targets
              for p in modules[name].points(quick, seed=args.seed)]
    stream = _open_stream(args, out, "experiments", len(points))
    try:
        records = run_points(
            points, jobs=args.jobs, cache=cache, resume=args.resume,
            timeout_s=args.timeout, progress=True, telemetry=args.telemetry,
            retries=args.retries, stream=stream,
        )
        if stream is not None:
            stream.campaign_end(len(records), len(failures(records)))
    finally:
        if stream is not None:
            stream.close()

    if args.telemetry:
        write_telemetry(out / "telemetry", records, cache)

    summaries_dir = out / "summaries"
    summaries_dir.mkdir(parents=True, exist_ok=True)
    for name in targets:
        module = modules[name]
        per = [r for r in records if r.point.experiment == name]
        failed = failures(per)
        if failed:
            for r in failed:
                info = r.error or {}
                print(f"[{name} FAILED: {r.point.id} {r.status}: "
                      f"{info.get('type', '?')}: {info.get('message', '')}]",
                      file=sys.stderr)
            continue
        res = module.summarize(results_by_name(per, experiment=name))
        module.report(res)
        (summaries_dir / f"{name}.json").write_text(
            _summary_json(res) + "\n")
        elapsed = sum(r.elapsed_s for r in per)
        print(f"[{name} done in {elapsed:.1f}s]")

    if failures(records):
        raise SystemExit(1)


def run_chaos_campaign(args, parser, quick: bool, out: Path,
                       cache: ResultCache) -> None:
    """Execute one chaos campaign through the shared point runner.

    Writes ``<out>/summaries/chaos-<campaign>.json`` and exits non-zero
    when any point fails, any flow ends non-terminal (neither completed
    nor aborted by its connection policy), or any run invariant is
    violated — so CI can gate on the campaign directly.
    """
    from repro.experiments import chaos

    try:
        points = chaos.campaign_points(
            args.chaos, quick=quick, seed=args.seed,
            convergence=args.convergence,
        )
    except ValueError as exc:
        parser.error(str(exc))
    stream = _open_stream(args, out, f"chaos-{args.chaos}", len(points))
    try:
        records = run_points(
            points, jobs=args.jobs, cache=cache, resume=args.resume,
            timeout_s=args.timeout, progress=True, telemetry=args.telemetry,
            retries=args.retries, stream=stream,
        )
        if stream is not None:
            stream.campaign_end(len(records), len(failures(records)))
    finally:
        if stream is not None:
            stream.close()
    if args.telemetry:
        write_telemetry(out / "telemetry", records, cache)

    failed = failures(records)
    for r in failed:
        info = r.error or {}
        print(f"[chaos FAILED: {r.point.id} {r.status}: "
              f"{info.get('type', '?')}: {info.get('message', '')}]",
              file=sys.stderr)

    ok = [r for r in records if r.ok]
    res = chaos.summarize(results_by_name(ok, experiment=chaos.EXPERIMENT))
    res["campaign"] = args.chaos
    res["convergence"] = args.convergence
    res["n_failed_points"] = len(failed)
    chaos.report(res)
    summaries_dir = out / "summaries"
    summaries_dir.mkdir(parents=True, exist_ok=True)
    (summaries_dir / f"chaos-{args.chaos}.json").write_text(
        _summary_json(res) + "\n")
    elapsed = sum(r.elapsed_s for r in records)
    print(f"[chaos {args.chaos} done in {elapsed:.1f}s]")

    if (failed or res["total_violations"] or not res["all_flows_terminal"]
            or res.get("undetected_deadlocks")):
        raise SystemExit(1)


def list_campaigns() -> None:
    """Print every chaos and wire campaign with its cell count."""
    from repro.experiments import chaos, wire

    print("chaos campaigns (--chaos NAME):")
    for name in sorted(chaos.CAMPAIGNS):
        print(f"  {name:<16} {len(chaos.CAMPAIGNS[name])} cells")
    print("wire campaigns (--wire NAME):")
    for name in sorted(wire.CAMPAIGNS):
        print(f"  {name:<16} {len(wire.CAMPAIGNS[name])} cells")


def run_wire_campaign(args, parser, quick: bool, out: Path,
                      cache: ResultCache) -> None:
    """Execute one wire campaign through the shared point runner.

    Writes ``<out>/summaries/wire-<campaign>.json`` and exits non-zero
    when any point fails or any cell's gate fails — soak cells gate on
    the harness invariants and expected outcomes (completion under
    impairment, policy aborts under blackhole), compare cells on the
    sim-vs-wire tolerance bands — so CI can gate on the campaign
    directly.
    """
    from repro.experiments import wire

    try:
        points = wire.campaign_points(args.wire, quick=quick,
                                      seed=args.seed)
    except ValueError as exc:
        parser.error(str(exc))
    stream = _open_stream(args, out, f"wire-{args.wire}", len(points))
    try:
        records = run_points(
            points, jobs=args.jobs, cache=cache, resume=args.resume,
            timeout_s=args.timeout, progress=True, telemetry=args.telemetry,
            retries=args.retries, stream=stream,
        )
        if stream is not None:
            stream.campaign_end(len(records), len(failures(records)))
    finally:
        if stream is not None:
            stream.close()
    if args.telemetry:
        write_telemetry(out / "telemetry", records, cache)

    failed = failures(records)
    for r in failed:
        info = r.error or {}
        print(f"[wire FAILED: {r.point.id} {r.status}: "
              f"{info.get('type', '?')}: {info.get('message', '')}]",
              file=sys.stderr)

    ok = [r for r in records if r.ok]
    res = wire.summarize(results_by_name(ok, experiment=wire.EXPERIMENT))
    res["campaign"] = args.wire
    res["n_failed_points"] = len(failed)
    wire.report(res)
    summaries_dir = out / "summaries"
    summaries_dir.mkdir(parents=True, exist_ok=True)
    (summaries_dir / f"wire-{args.wire}.json").write_text(
        _summary_json(res) + "\n")
    elapsed = sum(r.elapsed_s for r in records)
    print(f"[wire {args.wire} done in {elapsed:.1f}s]")

    if failed or not res["all_gates_passed"]:
        raise SystemExit(1)


def run_sharded_campaign(args, parser, quick: bool, out: Path) -> None:
    """Run the pinned two-DC workload sharded and gate on equivalence.

    One engine per DC (``--shards 2``), synchronized conservatively
    across the border links, compared flow-by-flow (FCTs, retransmits,
    timeouts, bytes acked) against the single-engine reference run.
    Writes ``<out>/summaries/sharded-two-dc.json``; exits non-zero on
    any flow-level mismatch or cross-shard conservation violation.

    With ``--telemetry`` the sharded leg additionally produces, under
    ``<out>/telemetry/sharded/``: per-worker shard-tagged JSONL traces
    (``workers/shard-K.jsonl``), the canonical ps-ordered merged trace
    (``trace.jsonl``), and ``summary.json`` holding merged + per-shard
    metric registries, aggregator conservation accounting, and the flow
    ids whose span timelines were stitched across both shards. The gate
    then also fails on any trace conservation violation or if no
    cross-boundary flow was stitched.
    """
    from repro.experiments.sharded import (
        SUPPORTED_SHARDS, TwoDCWorkload, check_equivalence,
    )

    if args.shards not in SUPPORTED_SHARDS or args.shards < 2:
        parser.error(f"--shards must be 2 (one engine per DC), "
                     f"got {args.shards}")
    workload = TwoDCWorkload(
        seed=args.seed if args.seed is not None else 1,
        max_flows=400 if quick else 2000,
    )
    trace_dir = trace_path = None
    sharded_dir = out / "telemetry" / "sharded"
    if args.telemetry:
        sharded_dir.mkdir(parents=True, exist_ok=True)
        trace_dir = str(sharded_dir / "workers")
        trace_path = str(sharded_dir / "trace.jsonl")
    stream = _open_stream(args, out, "sharded-two-dc", 1)
    try:
        report = check_equivalence(
            workload, processes=True, telemetry=args.telemetry,
            trace_dir=trace_dir, trace_path=trace_path,
        )
        sharded = report["sharded"]
        single = report["single"]
        trace_violations = sharded.get("trace_violations", [])
        stitched: List[int] = []
        if args.telemetry:
            from repro.obs import cross_shard_flows

            trace = sharded["_trace"]
            stitched = cross_shard_flows(trace.merged())
            (sharded_dir / "summary.json").write_text(_summary_json({
                "telemetry": sharded["telemetry"],
                "trace": sharded["trace_summary"],
                "trace_violations": trace_violations,
                "cross_shard_flows": stitched,
            }) + "\n")
        gate_ok = (report["equivalent"] and not trace_violations
                   and (not args.telemetry or bool(stitched)))
        if stream is not None:
            stream.point("sharded/two-dc-equivalence",
                         "ok" if gate_ok else "error",
                         sharded["wall_s"] + single["wall_s"])
            stream.campaign_end(1, 0 if gate_ok else 1)
    finally:
        if stream is not None:
            stream.close()
    summary = {
        "equivalent": report["equivalent"],
        "flows": report["flows"],
        "mismatches": report["mismatches"],
        "violations": report["violations"],
        "trace_violations": trace_violations,
        "cross_shard_flows": len(stitched),
        "shards": args.shards,
        "rounds": sharded["rounds"],
        "lookahead_ps": sharded["lookahead_ps"],
        "sharded_events": sharded["total_events"],
        "single_events": single["total_events"],
        "sharded_wall_s": sharded["wall_s"],
        "single_wall_s": single["wall_s"],
        "sharded_busy_cpu_s": sharded["busy_cpu_s"],
        "single_busy_cpu_s": single["busy_cpu_s"],
    }
    summaries_dir = out / "summaries"
    summaries_dir.mkdir(parents=True, exist_ok=True)
    (summaries_dir / "sharded-two-dc.json").write_text(
        _summary_json(summary) + "\n")
    status = "EQUIVALENT" if report["equivalent"] else "MISMATCH"
    print(f"[sharded two-DC: {status} over {report['flows']} flows, "
          f"{sharded['rounds']} sync rounds, "
          f"{sharded['total_events']} events]")
    if args.telemetry:
        print(f"[sharded trace: {sharded['trace_summary']['events_merged']} "
              f"events merged, {len(trace_violations)} conservation "
              f"violations, {len(stitched)} cross-shard flows stitched]")
    for line in report["mismatches"][:20]:
        print(f"  {line}", file=sys.stderr)
    for line in report["violations"]:
        print(f"  {line}", file=sys.stderr)
    for line in trace_violations:
        print(f"  {line}", file=sys.stderr)
    if not gate_ok:
        raise SystemExit(1)


def write_telemetry(telemetry_dir: Path, records, cache: ResultCache) -> None:
    """Write per-point telemetry JSON plus one summary per experiment.

    Layout mirrors the point cache: each freshly-executed point gets
    ``<dir>/<experiment>/<name-slug>-<key16>.json`` (same stem as its
    cache file) holding the point identity, status, timing, and the
    merged metrics/events/profile snapshot. ``summary.json`` in each
    experiment directory indexes the points and aggregates their
    numeric telemetry with :func:`repro.obs.merge_numeric`.
    """
    from repro.obs import merge_numeric

    by_experiment: dict = {}
    for record in records:
        by_experiment.setdefault(record.point.experiment, []).append(record)

    for experiment, recs in sorted(by_experiment.items()):
        exp_dir = telemetry_dir / experiment
        exp_dir.mkdir(parents=True, exist_ok=True)
        index = {}
        merged_metrics = None
        merged_profile = None
        merged_events = None
        fresh = 0
        for record in recs:
            filename = cache.path_for(record.point).name
            entry = {
                "status": record.status,
                "cached": record.cached,
                "elapsed_s": record.elapsed_s,
                "file": filename if record.telemetry is not None else None,
            }
            index[record.point.name] = entry
            telem = record.telemetry
            if telem is None:
                continue
            fresh += 1
            merged_metrics = merge_numeric(merged_metrics,
                                           telem.get("metrics"))
            merged_profile = merge_numeric(merged_profile,
                                           telem.get("profile"))
            merged_events = merge_numeric(merged_events, telem.get("events"))
            point_doc = dict(
                point=record.point.describe(),
                status=record.status,
                elapsed_s=record.elapsed_s,
                **telem,
            )
            (exp_dir / filename).write_text(_summary_json(point_doc) + "\n")
        if merged_profile is not None and merged_profile.get("wall_s"):
            merged_profile["events_per_sec"] = (
                merged_profile["events"] / merged_profile["wall_s"]
            )
        if merged_profile is not None:
            # Recompute the qualname histogram over the merged sites:
            # merge_numeric kept only the first point's ranking.
            from repro.obs.profile import rank_sites

            merged_profile["top_sites"] = rank_sites(
                merged_profile.get("sites", {}))
        summary = {
            "experiment": experiment,
            "points": index,
            "points_total": len(recs),
            "points_with_telemetry": fresh,
            "metrics": merged_metrics or {},
            "profile": merged_profile,
            "events": merged_events,
        }
        (exp_dir / "summary.json").write_text(_summary_json(summary) + "\n")


def _summary_json(res) -> str:
    """Canonical JSON when possible; repr-stringified fallback for
    summaries that carry non-JSON values (e.g. calibrated model params)."""
    try:
        return canonical_json(res)
    except (TypeError, ValueError):
        return json.dumps(res, sort_keys=True, default=repr,
                          separators=(",", ":"))


if __name__ == "__main__":
    main()
