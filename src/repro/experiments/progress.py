"""Terminal progress streaming for experiment sweeps.

One line per completed point — points done/total, percent, per-point
status and duration, elapsed wall clock, and an ETA extrapolated from
the mean rate so far. Lines go to stderr so result tables on stdout
stay machine-readable.
"""

from __future__ import annotations

import sys
import time
from typing import Optional, TextIO


def format_duration(seconds: float) -> str:
    """Compact human duration: ``0.4s``, ``12s``, ``3m05s``, ``2h04m``."""
    if seconds < 10:
        return f"{seconds:.1f}s"
    seconds = int(round(seconds))
    if seconds < 60:
        return f"{seconds}s"
    minutes, secs = divmod(seconds, 60)
    if minutes < 60:
        return f"{minutes}m{secs:02d}s"
    hours, minutes = divmod(minutes, 60)
    return f"{hours}h{minutes:02d}m"


class ProgressPrinter:
    """Stream per-point completion lines for a sweep of known size."""

    def __init__(self, total: int, stream: Optional[TextIO] = None,
                 clock=time.monotonic) -> None:
        self.total = total
        self.done = 0
        self.failed = 0
        self.stream = stream if stream is not None else sys.stderr
        self._clock = clock
        self._t0 = clock()

    def update(self, point_id: str, status: str, elapsed_s: float,
               cached: bool = False) -> None:
        """Record one finished point and print its progress line."""
        self.done += 1
        if status != "ok":
            self.failed += 1
        wall = self._clock() - self._t0
        remaining = self.total - self.done
        eta = (wall / self.done) * remaining if self.done else 0.0
        tag = "cached" if cached else status
        line = (
            f"[{self.done}/{self.total}] {point_id}: {tag} "
            f"({format_duration(elapsed_s)}) "
            f"elapsed {format_duration(wall)} eta {format_duration(eta)}"
        )
        print(line, file=self.stream, flush=True)

    def finish(self) -> None:
        """Print the sweep summary line."""
        wall = self._clock() - self._t0
        status = "all ok" if not self.failed else f"{self.failed} FAILED"
        print(
            f"[{self.done}/{self.total}] sweep done in "
            f"{format_duration(wall)} ({status})",
            file=self.stream, flush=True,
        )
