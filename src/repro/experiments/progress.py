"""Terminal progress streaming for experiment sweeps.

One line per completed point — points done/total, percent, per-point
status and duration, elapsed wall clock, and an ETA extrapolated from
the mean rate so far. Lines go to stderr so result tables on stdout
stay machine-readable.
"""

from __future__ import annotations

import json
import sys
import time
from typing import Any, Optional, TextIO

#: Filename of the campaign progress stream under ``<out>/telemetry/``
#: (one JSONL line per campaign transition; tools/dashboard.py tails it).
CAMPAIGN_STREAM_NAME = "campaign.jsonl"


def format_duration(seconds: float) -> str:
    """Compact human duration: ``0.4s``, ``12s``, ``3m05s``, ``2h04m``."""
    if seconds < 10:
        return f"{seconds:.1f}s"
    seconds = int(round(seconds))
    if seconds < 60:
        return f"{seconds}s"
    minutes, secs = divmod(seconds, 60)
    if minutes < 60:
        return f"{minutes}m{secs:02d}s"
    hours, minutes = divmod(minutes, 60)
    return f"{hours}h{minutes:02d}m"


class ProgressPrinter:
    """Stream per-point completion lines for a sweep of known size."""

    def __init__(self, total: int, stream: Optional[TextIO] = None,
                 clock=time.monotonic) -> None:
        self.total = total
        self.done = 0
        self.failed = 0
        self.stream = stream if stream is not None else sys.stderr
        self._clock = clock
        self._t0 = clock()

    def update(self, point_id: str, status: str, elapsed_s: float,
               cached: bool = False) -> None:
        """Record one finished point and print its progress line."""
        self.done += 1
        if status != "ok":
            self.failed += 1
        wall = self._clock() - self._t0
        remaining = self.total - self.done
        eta = (wall / self.done) * remaining if self.done else 0.0
        tag = "cached" if cached else status
        line = (
            f"[{self.done}/{self.total}] {point_id}: {tag} "
            f"({format_duration(elapsed_s)}) "
            f"elapsed {format_duration(wall)} eta {format_duration(eta)}"
        )
        print(line, file=self.stream, flush=True)

    def finish(self) -> None:
        """Print the sweep summary line."""
        wall = self._clock() - self._t0
        status = "all ok" if not self.failed else f"{self.failed} FAILED"
        print(
            f"[{self.done}/{self.total}] sweep done in "
            f"{format_duration(wall)} ({status})",
            file=self.stream, flush=True,
        )


class CampaignStream:
    """Machine-readable campaign progress: one JSON object per line.

    The live half of the dashboard story: ``run_all --telemetry`` opens
    one stream per campaign at ``<out>/telemetry/campaign.jsonl`` and
    the runner appends a line per transition, so ``tools/dashboard.py``
    can tail the file while the campaign is still running. Lines are
    flushed as written (same crash-safety contract as
    :class:`~repro.obs.events.JSONLFileSink`) and carry a wall-clock
    ``ts`` plus a ``kind``:

    - ``campaign_start`` — sweep opened (``total`` points, free-form
      ``meta``);
    - ``point`` — one point reached a final state (``status`` ok /
      error / timeout, ``cached``, ``elapsed_s``);
    - ``retry`` — a failed point is being re-run (``attempt``);
    - ``campaign_end`` — sweep closed (``done``/``failed`` totals).

    Usable as a context manager; ``close()`` is idempotent.
    """

    def __init__(self, path, clock=time.time):
        self.path = path
        self._clock = clock
        self._fh = open(path, "w", encoding="utf-8", buffering=1)

    def emit(self, kind: str, **fields: Any) -> None:
        if self._fh is None:
            return
        line = {"kind": kind, "ts": round(self._clock(), 3)}
        line.update(fields)
        self._fh.write(json.dumps(line, sort_keys=True,
                                  separators=(",", ":")))
        self._fh.write("\n")

    def campaign_start(self, total: int, **meta: Any) -> None:
        self.emit("campaign_start", total=total, **meta)

    def point(self, point_id: str, status: str, elapsed_s: float,
              cached: bool = False) -> None:
        self.emit("point", point=point_id, status=status,
                  elapsed_s=round(elapsed_s, 3), cached=cached)

    def retry(self, point_id: str, attempt: int, status: str) -> None:
        self.emit("retry", point=point_id, attempt=attempt, status=status)

    def campaign_end(self, done: int, failed: int, **fields: Any) -> None:
        self.emit("campaign_end", done=done, failed=failed, **fields)

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "CampaignStream":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
