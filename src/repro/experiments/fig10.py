"""Figure 10: realistic workloads at distinct network loads.

Web-search intra-DC + Alibaba-WAN inter-DC Poisson traffic at 20-60 %
load. The paper reports mean and p99 FCT split by flow class: Uno+ECMP
(UnoCC alone) already improves inter-DC latency over Gemini and
MPRDMA+BBR with a slight intra-DC penalty from the phantom-queue
headroom; full Uno (UnoCC+UnoRC) improves both classes — e.g. at 40 %
load, ~4-5x lower intra tail FCT and ~2x lower inter tail FCT vs both
baselines.
"""

from __future__ import annotations

from typing import Dict

from repro.experiments.harness import ExperimentScale
from repro.experiments.realistic import run_realistic
from repro.experiments.report import print_experiment
from repro.sim.units import MS

SCHEMES = ("uno", "uno_ecmp", "gemini", "mprdma_bbr")
LOADS = (0.2, 0.4, 0.6)


def run(quick: bool = True, seed: int = 5) -> Dict:
    """Run the experiment; ``quick`` selects the scaled-down configuration."""
    scale = ExperimentScale.quick() if quick else ExperimentScale.paper()
    # The arrival window must sustain its target load end-to-end: the
    # flow cap is a safety net well above the expected count (~1000 at
    # 60% load for 4 ms), not a limiter.
    duration = 4 * MS if quick else 100 * MS
    max_flows = 2500 if quick else None
    cells: Dict[float, Dict[str, Dict]] = {}
    for load in LOADS:
        cells[load] = {}
        for scheme in SCHEMES:
            cells[load][scheme] = run_realistic(
                scheme, load, scale, seed=seed, duration_ps=duration,
                max_flows=max_flows,
            )
    return {"cells": cells}


def main(quick: bool = True) -> Dict:
    """Run and print the paper-vs-measured table; returns the results dict."""
    res = run(quick=quick)
    rows = []
    for load, per_scheme in res["cells"].items():
        for scheme, r in per_scheme.items():
            intra, inter = r["intra"], r["inter"]
            rows.append([
                f"{load:.0%}", scheme,
                f"{intra.mean_us:.0f}" if intra else "-",
                f"{intra.p99_us:.0f}" if intra else "-",
                f"{inter.mean_ms:.2f}" if inter else "-",
                f"{inter.p99_ms:.2f}" if inter else "-",
            ])
    print_experiment(
        "Figure 10: realistic workloads (websearch intra + Alibaba WAN inter)",
        "Uno lowest overall; Uno+ECMP already beats Gemini/MPRDMA+BBR on "
        "inter-DC FCT; full Uno also wins intra-DC",
        ["load", "scheme", "intra mean us", "intra p99 us",
         "inter mean ms", "inter p99 ms"],
        rows,
    )
    return res


if __name__ == "__main__":
    main()
