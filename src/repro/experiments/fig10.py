"""Figure 10: realistic workloads at distinct network loads.

Web-search intra-DC + Alibaba-WAN inter-DC Poisson traffic at 20-60 %
load. The paper reports mean and p99 FCT split by flow class: Uno+ECMP
(UnoCC alone) already improves inter-DC latency over Gemini and
MPRDMA+BBR with a slight intra-DC penalty from the phantom-queue
headroom; full Uno (UnoCC+UnoRC) improves both classes — e.g. at 40 %
load, ~4-5x lower intra tail FCT and ~2x lower inter tail FCT vs both
baselines.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.experiments.api import ExperimentPoint
from repro.experiments.harness import scale_for
from repro.experiments.realistic import cell_json, run_realistic
from repro.experiments.report import print_experiment
from repro.sim.units import MS

SCHEMES = ("uno", "uno_ecmp", "gemini", "mprdma_bbr")
LOADS = (0.2, 0.4, 0.6)
DEFAULT_SEED = 5


def points(quick: bool = True,
           seed: Optional[int] = None) -> List[ExperimentPoint]:
    """One point per (load, scheme) realistic-workload cell."""
    seed = DEFAULT_SEED if seed is None else seed
    return [
        ExperimentPoint("fig10", f"{load}/{scheme}",
                        {"load": load, "scheme": scheme, "quick": quick},
                        seed=seed)
        for load in LOADS
        for scheme in SCHEMES
    ]


def run_point(point: ExperimentPoint) -> Dict:
    """One (scheme, load) cell of the realistic workload."""
    cfg = point.cfg
    quick = cfg["quick"]
    scale = scale_for(quick)
    # The arrival window must sustain its target load end-to-end: the
    # flow cap is a safety net well above the expected count (~1000 at
    # 60% load for 4 ms), not a limiter.
    duration = 4 * MS if quick else 100 * MS
    max_flows = 2500 if quick else None
    return cell_json(run_realistic(
        cfg["scheme"], cfg["load"], scale, seed=point.seed,
        duration_ps=duration, max_flows=max_flows,
    ))


def summarize(results: Dict[str, Dict]) -> Dict:
    """Group cells back into load -> scheme tables."""
    cells: Dict[float, Dict[str, Dict]] = {}
    for load in LOADS:
        per = {
            scheme: results[f"{load}/{scheme}"]
            for scheme in SCHEMES
            if f"{load}/{scheme}" in results
        }
        if per:
            cells[load] = per
    return {"cells": cells}


def run(quick: bool = True, seed: Optional[int] = None) -> Dict:
    """Run the experiment; ``quick`` selects the scaled-down configuration."""
    from repro.experiments.runner import run_experiment

    return run_experiment("fig10", quick, seed=seed)


def report(res: Dict) -> None:
    """Print the paper-vs-measured table for a results dict."""
    rows = []
    for load, per_scheme in res["cells"].items():
        for scheme, r in per_scheme.items():
            intra, inter = r["intra"], r["inter"]
            rows.append([
                f"{load:.0%}", scheme,
                f"{intra['mean_us']:.0f}" if intra else "-",
                f"{intra['p99_us']:.0f}" if intra else "-",
                f"{inter['mean_ms']:.2f}" if inter else "-",
                f"{inter['p99_ms']:.2f}" if inter else "-",
            ])
    print_experiment(
        "Figure 10: realistic workloads (websearch intra + Alibaba WAN inter)",
        "Uno lowest overall; Uno+ECMP already beats Gemini/MPRDMA+BBR on "
        "inter-DC FCT; full Uno also wins intra-DC",
        ["load", "scheme", "intra mean us", "intra p99 us",
         "inter mean ms", "inter p99 ms"],
        rows,
    )


def main(quick: bool = True) -> Dict:
    """Run and print the paper-vs-measured table; returns the results dict."""
    res = run(quick=quick)
    report(res)
    return res


if __name__ == "__main__":
    main()
