"""On-disk JSON cache for completed experiment points.

Layout (under a root directory, ``results/runs/points`` by default):

    <root>/<experiment>/<name-slug>-<key16>.json

where ``key16`` is the first 16 hex digits of the SHA-256 over the
point's canonical identity (experiment, name, config, seed) plus the
``repro`` package version — so a cache entry is invalidated by changing
any knob of the point or upgrading the package, never by wall-clock
state. Each file holds one canonical-JSON record::

    {"config": {...}, "experiment": "fig8", "key": "...", "name":
     "mixed/uno", "result": {...}, "seed": 3, "status": "ok",
     "version": "1.0.0"}

Only successful results are served by :meth:`ResultCache.load` (failures
and timeouts always re-run), nothing time-dependent is stored, and
writes are atomic (tempfile + rename), so the same point produces
byte-identical cache files whether it ran serially, in a worker pool, or
after a resume.

Failures leave a *separate* record at ``<name-slug>-<key16>.error.json``
(type, message, full traceback) so a crashed sweep can be diagnosed
after the fact; a later successful run of the same point removes it.
"""

from __future__ import annotations

import hashlib
import os
import re
import tempfile
from pathlib import Path
from typing import Any, Dict, Optional

import repro

from repro.experiments.api import ExperimentPoint, canonical_json

_SLUG_RE = re.compile(r"[^A-Za-z0-9.]+")


def point_key(point: ExperimentPoint, version: Optional[str] = None) -> str:
    """Stable hash of the point's full identity + package version."""
    version = repro.__version__ if version is None else version
    ident = dict(point.describe(), version=version)
    return hashlib.sha256(canonical_json(ident).encode()).hexdigest()


def _slug(name: str) -> str:
    return _SLUG_RE.sub("_", name).strip("_") or "point"


class ResultCache:
    """Read/write completed point results under one root directory."""

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.version = repro.__version__

    def path_for(self, point: ExperimentPoint) -> Path:
        """Cache file path for a point (exists or not)."""
        key = point_key(point, self.version)
        return (self.root / point.experiment /
                f"{_slug(point.name)}-{key[:16]}.json")

    def failure_path_for(self, point: ExperimentPoint) -> Path:
        """Failure-record path for a point; distinct from ``path_for`` so
        failures are never served as results."""
        return self.path_for(point).with_suffix(".error.json")

    def load(self, point: ExperimentPoint) -> Optional[Dict[str, Any]]:
        """The cached ``result`` dict, or None on miss/corruption."""
        path = self.path_for(point)
        try:
            record = _loads(path.read_bytes())
        except (OSError, ValueError):
            return None
        if (record.get("status") == "ok"
                and record.get("key") == point_key(point, self.version)
                and isinstance(record.get("result"), dict)):
            return record["result"]
        return None

    def store(self, point: ExperimentPoint, result: Dict[str, Any]) -> Path:
        """Atomically write one completed point; returns the file path."""
        record = dict(
            point.describe(),
            key=point_key(point, self.version),
            result=result,
            status="ok",
            version=self.version,
        )
        path = self._write(self.path_for(point), record)
        # Success supersedes any failure record from an earlier attempt.
        try:
            self.failure_path_for(point).unlink()
        except OSError:
            pass
        return path

    # -- failure records -------------------------------------------------

    def store_failure(self, point: ExperimentPoint, status: str,
                      error: Dict[str, Any],
                      attempts: Optional[list] = None) -> Path:
        """Persist a structured failure (``status`` "error"/"timeout",
        ``error`` with type/message/traceback) beside where the result
        would live. ``attempts`` carries every retry attempt's error info
        when the runner retried the point. Never served by :meth:`load`."""
        record = dict(
            point.describe(),
            key=point_key(point, self.version),
            error=error,
            status=status,
            version=self.version,
        )
        if attempts:
            record["attempts"] = attempts
        return self._write(self.failure_path_for(point), record)

    def load_failure(self, point: ExperimentPoint) -> Optional[Dict[str, Any]]:
        """The stored failure record (full dict incl. ``error``), or None."""
        try:
            record = _loads(self.failure_path_for(point).read_bytes())
        except (OSError, ValueError):
            return None
        if (record.get("status") in ("error", "timeout")
                and record.get("key") == point_key(point, self.version)
                and isinstance(record.get("error"), dict)):
            return record
        return None

    def _write(self, path: Path, record: Dict[str, Any]) -> Path:
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = (canonical_json(record) + "\n").encode()
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(payload)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path


def _loads(payload: bytes) -> Dict[str, Any]:
    import json

    record = json.loads(payload)
    if not isinstance(record, dict):
        raise ValueError("cache record is not an object")
    return record
