"""Figure 3: convergence to bandwidth fairness under mixed incast.

Four intra-DC and four inter-DC long-lived flows converge on one
receiver. Gemini converges so slowly it would outlive realistic flows;
MPRDMA+BBR never converges (two disjoint control loops fight); Uno
converges quickly. We launch effectively-infinite flows, sample per-flow
goodput over a fixed window, and quantify fairness with Jain's index
(smoothed over a short moving window to damp per-sample burstiness) plus
the first time the index stays above 0.9.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.fairness import convergence_time_ps, jain_series
from repro.experiments.api import ExperimentPoint
from repro.experiments.harness import (
    ExperimentScale,
    build_multidc,
    make_launcher,
    scale_for,
)
from repro.experiments.report import print_experiment
from repro.sim.engine import Simulator
from repro.sim.trace import RateMonitor
from repro.sim.units import GIB, MIB, MS
from repro.workloads.patterns import incast_specs

SCHEMES = ("uno", "gemini", "mprdma_bbr")
DEFAULT_SEED = 1


def _smooth(series: List[float], k: int = 3) -> List[float]:
    if k <= 1 or len(series) < k:
        return list(series)
    out = []
    for i in range(len(series) - k + 1):
        out.append(sum(series[i : i + k]) / k)
    return out


def run_scheme(
    scheme: str,
    scale: ExperimentScale,
    window_ps: int,
    seed: int,
    sample_interval_ps: int,
) -> Dict:
    """One scheme's mixed-incast fairness run; returns convergence stats."""
    sim = Simulator()
    params = scale.params()
    topo = build_multidc(sim, scheme, params, scale, seed=seed)
    # Flows large enough that none completes inside the window.
    specs = incast_specs(topo, n_intra=4, n_inter=4, size_bytes=64 * GIB)
    launcher = make_launcher(scheme, sim, topo, params, seed=seed)
    senders = [launcher(spec, i, lambda _s: None) for i, spec in enumerate(specs)]
    monitor = RateMonitor(
        sim, senders, probe=lambda s: s.stats.bytes_acked,
        interval_ps=sample_interval_ps,
    )
    # The paper's joint claim is fairness *and* near-zero queuing: also
    # watch the receiver's last-hop (bottleneck) physical queue.
    from repro.sim.trace import QueueMonitor

    dst = specs[0].dst
    edge = topo.dcs[dst.dc].edges[0][0]
    qmon = QueueMonitor(sim, topo.net.port_between(edge, dst),
                        interval_ps=sample_interval_ps)
    sim.run(until=window_ps)

    # Smooth each flow's rate series before computing fairness.
    smoothed = [_smooth(r, 4) for r in monitor.rates_gbps]
    n = min(len(r) for r in smoothed)
    times = monitor.times[:n]
    smoothed = [r[:n] for r in smoothed]
    series = jain_series(smoothed)
    conv = convergence_time_ps(times, smoothed, threshold=0.9, hold_samples=5)
    tail = series[-max(1, len(series) // 5):]
    intra_share = sum(smoothed[i][-1] for i in range(4))
    inter_share = sum(smoothed[i][-1] for i in range(4, 8))
    warm = [s[1] for s in qmon.samples if s[0] > window_ps // 5]
    return {
        "scheme": scheme,
        "convergence_ms": None if conv is None else conv / 1e9,
        "final_jain": sum(tail) / len(tail),
        "intra_gbps_final": intra_share,
        "inter_gbps_final": inter_share,
        "queue_mean_kb": (sum(warm) / len(warm) / 1024) if warm else 0.0,
        "series": series,
        "times_ps": times,
    }


def points(quick: bool = True,
           seed: Optional[int] = None) -> List[ExperimentPoint]:
    """One point per scheme (the three convergence runs)."""
    seed = DEFAULT_SEED if seed is None else seed
    return [
        ExperimentPoint("fig3", scheme, {"scheme": scheme, "quick": quick},
                        seed=seed)
        for scheme in SCHEMES
    ]


def run_point(point: ExperimentPoint) -> Dict:
    """One scheme's mixed-incast convergence run."""
    cfg = point.cfg
    quick = cfg["quick"]
    # Incast fairness needs the paper's per-flow fair-share windows to
    # stay above one MSS (100G/8 flows -> ~5 packets); the 25G quick
    # link rate would push intra flows into a sub-packet artifact regime.
    # Quick mode therefore only shrinks the fat-tree, not the link rate.
    scale = scale_for(quick, gbps=100.0, queue_bytes=1 * MIB)
    # Inter-DC flows climb to the fair share at alpha/RTT ~ 50 Gbps/s
    # (Table 2's alpha = 0.001 BDP), so sustained J > 0.9 lands ~220 ms in.
    window_ps = 260 * MS if quick else 600 * MS
    result = run_scheme(cfg["scheme"], scale, window_ps, point.seed, 1 * MS)
    result["window_ms"] = window_ps / 1e9
    result["scale"] = "quick" if quick else "paper"
    return result


def summarize(results: Dict[str, Dict]) -> Dict:
    """Assemble the per-scheme runs into the figure-level dict."""
    ordered = {s: results[s] for s in SCHEMES if s in results}
    first = next(iter(ordered.values()))
    return {
        "scale": first["scale"],
        "window_ms": first["window_ms"],
        "results": ordered,
    }


def run(quick: bool = True, seed: Optional[int] = None) -> Dict:
    """Run the experiment; ``quick`` selects the scaled-down configuration."""
    from repro.experiments.runner import run_experiment

    return run_experiment("fig3", quick, seed=seed)


def report(res: Dict) -> None:
    """Print the paper-vs-measured table for a results dict."""
    rows = []
    for scheme, r in res["results"].items():
        conv = "never" if r["convergence_ms"] is None else f"{r['convergence_ms']:.1f}ms"
        rows.append([
            scheme, conv, f"{r['final_jain']:.3f}",
            f"{r['intra_gbps_final']:.1f}G", f"{r['inter_gbps_final']:.1f}G",
            f"{r['queue_mean_kb']:.0f}KB",
        ])
    print_experiment(
        f"Figure 3: fairness convergence, 4 intra + 4 inter incast "
        f"({res['window_ms']:.0f} ms window)",
        "Uno converges to fairness (J>0.9) while keeping the bottleneck "
        "queue near-empty; Gemini needs a large standing queue; "
        "MPRDMA+BBR stays unfair between the two flow classes",
        ["scheme", "convergence(J>0.9)", "tail Jain", "intra sum",
         "inter sum", "bottleneck queue"],
        rows,
    )


def main(quick: bool = True) -> Dict:
    """Run and print the paper-vs-measured table; returns the results dict."""
    res = run(quick=quick)
    report(res)
    return res


if __name__ == "__main__":
    main()
