"""Figure 8: incast scenarios — intra-only, inter-only, and mixed.

Eight equal flows incast into one receiver in three compositions
(8 intra + 0 inter, 0 + 8, 4 + 4). The paper reports (top) Uno's
send-rate convergence to the fair share and (bottom) mean/p99 FCT of
each scheme; Uno matches or beats the alternatives everywhere. Packet
spraying is used for all schemes (load balancing is irrelevant under a
receiver-side bottleneck), matching the paper's setup.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from repro.analysis.fairness import jain_index
from repro.analysis.fct import summarize_fcts
from repro.experiments.api import ExperimentPoint
from repro.experiments.harness import (
    ExperimentScale,
    build_multidc,
    make_launcher,
    run_specs,
    scale_for,
)
from repro.experiments.report import print_experiment
from repro.sim.engine import Simulator
from repro.sim.trace import RateMonitor
from repro.sim.units import MIB, MS
from repro.workloads.patterns import incast_specs

SCHEMES = ("uno", "gemini", "mprdma_bbr")
SCENARIOS: List[Tuple[str, int, int]] = [
    ("intra-only", 8, 0),
    ("inter-only", 0, 8),
    ("mixed", 4, 4),
]
DEFAULT_SEED = 3


def run_cell(scheme: str, n_intra: int, n_inter: int, flow_bytes: int,
             scale: ExperimentScale, seed: int) -> Dict:
    """One (scheme, incast composition) cell; returns FCT and fairness."""
    sim = Simulator()
    params = scale.params()
    topo = build_multidc(sim, scheme, params, scale, switch_mode="rps",
                         seed=seed)
    specs = incast_specs(topo, n_intra=n_intra, n_inter=n_inter,
                         size_bytes=flow_bytes)
    launcher = make_launcher(scheme, sim, topo, params, seed=seed)

    senders = []
    remaining = [len(specs)]

    def done(_):
        remaining[0] -= 1

    for i, spec in enumerate(specs):
        senders.append(launcher(spec, i, done))
    monitor = RateMonitor(sim, senders, probe=lambda s: s.stats.bytes_acked,
                          interval_ps=2 * MS)
    sim.run(until=scale.horizon_ps)
    if remaining[0] > 0:
        raise RuntimeError(f"{scheme}/{n_intra}+{n_inter}: flows unfinished")
    stats = [s.stats for s in senders]
    fct = summarize_fcts(stats)
    # Jain's index at the midpoint of the window in which *all* flows
    # were still active (after the first completion, fewer flows share
    # the bottleneck and the index is trivially high).
    first_finish = min(s.stats.finish_ps for s in senders)
    active = [i for i, t in enumerate(monitor.times) if t <= first_finish]
    if active and all(len(r) > active[-1] for r in monitor.rates_gbps):
        mid = active[len(active) // 2]
        jain_mid = jain_index(
            [monitor.rates_gbps[f][mid] for f in range(len(senders))]
        )
    else:
        jain_mid = float("nan")
    return {
        "fct_mean_ms": fct.mean_ms,
        "fct_p99_ms": fct.p99_ms,
        # None (not NaN) when no mid-incast sample exists: the cell must
        # stay JSON-serializable for the point cache.
        "jain_mid": None if math.isnan(jain_mid) else jain_mid,
    }


def points(quick: bool = True,
           seed: Optional[int] = None) -> List[ExperimentPoint]:
    """One point per (incast composition, scheme) cell."""
    seed = DEFAULT_SEED if seed is None else seed
    flow_bytes = 16 * MIB if quick else 1024 * MIB
    return [
        ExperimentPoint(
            "fig8", f"{name}/{scheme}",
            {"scenario": name, "n_intra": n_intra, "n_inter": n_inter,
             "scheme": scheme, "flow_bytes": flow_bytes, "quick": quick},
            seed=seed,
        )
        for name, n_intra, n_inter in SCENARIOS
        for scheme in SCHEMES
    ]


def run_point(point: ExperimentPoint) -> Dict:
    """One (scheme, incast composition) cell."""
    cfg = point.cfg
    # Keep the paper's 100G links so the 8-flow fair share stays a
    # multi-packet window (see fig3.run_point for the rationale).
    scale = scale_for(cfg["quick"], gbps=100.0, queue_bytes=1 * MIB)
    cell = run_cell(cfg["scheme"], cfg["n_intra"], cfg["n_inter"],
                    cfg["flow_bytes"], scale, point.seed)
    cell["scenario"] = cfg["scenario"]
    cell["scheme"] = cfg["scheme"]
    cell["flow_bytes"] = cfg["flow_bytes"]
    return cell


def summarize(results: Dict[str, Dict]) -> Dict:
    """Group cells back into scenario -> scheme tables."""
    out: Dict[str, Dict[str, Dict]] = {}
    for name, _n_intra, _n_inter in SCENARIOS:
        out[name] = {
            scheme: results[f"{name}/{scheme}"]
            for scheme in SCHEMES
            if f"{name}/{scheme}" in results
        }
    flow_bytes = next(iter(results.values()))["flow_bytes"]
    return {"scenarios": out, "flow_bytes": flow_bytes}


def run(quick: bool = True, seed: Optional[int] = None) -> Dict:
    """Run the experiment; ``quick`` selects the scaled-down configuration."""
    from repro.experiments.runner import run_experiment

    return run_experiment("fig8", quick, seed=seed)


def report(res: Dict) -> None:
    """Print the paper-vs-measured table for a results dict."""
    rows = []
    for name, per_scheme in res["scenarios"].items():
        for scheme, r in per_scheme.items():
            jain = "nan" if r["jain_mid"] is None else f"{r['jain_mid']:.3f}"
            rows.append([name, scheme, f"{r['fct_mean_ms']:.2f}",
                         f"{r['fct_p99_ms']:.2f}", jain])
    print_experiment(
        "Figure 8: incast scenarios (8 equal flows to one receiver)",
        "Uno matches or beats the baselines in all three compositions and "
        "its mid-incast Jain index is the highest in the mixed case",
        ["scenario", "scheme", "mean FCT ms", "p99 FCT ms", "Jain(mid)"],
        rows,
    )


def main(quick: bool = True) -> Dict:
    """Run and print the paper-vs-measured table; returns the results dict."""
    res = run(quick=quick)
    report(res)
    return res


if __name__ == "__main__":
    main()
