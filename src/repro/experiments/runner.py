"""Parallel, cached, resumable execution engine for experiment points.

:func:`run_points` takes any list of :class:`ExperimentPoint` s (from one
module or many) and executes them:

- **in parallel** — ``jobs=N`` fans points out over N worker processes
  (each point builds its own ``Simulator``, so points are embarrassingly
  parallel);
- **cached** — with a :class:`~repro.experiments.cache.ResultCache`,
  every completed point is persisted as canonical JSON keyed by a stable
  hash of its config + package version;
- **resumable** — ``resume=True`` serves cache hits without re-running
  them, so an interrupted sweep continues where it stopped;
- **fail-soft** — a point that raises or exceeds ``timeout_s`` becomes a
  structured failure record (with the full traceback) instead of
  aborting the sweep (timed-out workers are terminated); with a cache,
  failures are persisted as ``.error.json`` records for post-mortems;
- **observable** — ``telemetry=True`` wraps every point in a
  :class:`~repro.obs.TelemetryContext`, so each record carries the merged
  counter snapshot, event tally, and engine profile of all simulators the
  point built (inline or in a worker process).

Results are identical between execution modes: a point's result is the
canonical-JSON normalization of ``run_point(point)``, computed the same
way inline, in a worker, or read back from disk.
"""

from __future__ import annotations

import multiprocessing
import random
import time
import traceback
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.experiments.api import (
    ExperimentPoint,
    execute_point,
    experiment_module,
)
from repro.experiments.cache import ResultCache
from repro.experiments.progress import CampaignStream, ProgressPrinter
from repro.obs import TelemetryContext

_POLL_S = 0.02


@dataclass
class PointRecord:
    """Outcome of one point: its result or a structured failure."""

    point: ExperimentPoint
    status: str                       # "ok" | "error" | "timeout"
    result: Optional[Dict[str, Any]] = None
    error: Optional[Dict[str, str]] = None
    elapsed_s: float = 0.0
    cached: bool = False
    telemetry: Optional[Dict[str, Any]] = None  # set when telemetry=True
    # With retries: every failed attempt's error info (attempt-stamped),
    # including the final one; set on eventual successes too, so flaky
    # points remain diagnosable.
    attempts: Optional[List[Dict[str, Any]]] = None

    @property
    def ok(self) -> bool:
        """Whether the point completed successfully."""
        return self.status == "ok"


def run_points(
    points: Sequence[ExperimentPoint],
    *,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    resume: bool = False,
    timeout_s: Optional[float] = None,
    progress: bool = False,
    telemetry: bool = False,
    retries: int = 0,
    retry_backoff_s: float = 0.5,
    stream: Optional[CampaignStream] = None,
) -> List[PointRecord]:
    """Execute every point; returns one record per point, input order.

    ``jobs=1`` runs inline in this process (unless ``timeout_s`` is set,
    which always uses worker processes so a stuck point can be killed).
    ``resume`` requires ``cache`` and skips points whose result is
    already on disk; without ``resume`` everything re-runs and the cache
    is refreshed. ``telemetry`` attaches a counter/event/profile snapshot
    to each freshly-executed record (cache hits carry none — they did
    not run). ``retries`` re-runs ``error``/``timeout`` points up to N
    extra times with jittered exponential backoff (base
    ``retry_backoff_s``) before the failure sticks; the failure record —
    in memory and in the cache's ``.error.json`` — keeps every attempt's
    traceback. ``stream`` mirrors every final point outcome (and every
    retry announcement) into a tailable
    :class:`~repro.experiments.progress.CampaignStream`.
    """
    points = list(points)
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")
    if resume and cache is None:
        raise ValueError("resume=True requires a cache")
    seen: Dict[str, ExperimentPoint] = {}
    for point in points:
        if point.id in seen and seen[point.id] != point:
            raise ValueError(f"duplicate point id {point.id!r} with "
                             f"conflicting definitions")
        seen[point.id] = point

    printer = ProgressPrinter(len(points)) if progress else None
    records: Dict[int, PointRecord] = {}
    todo: List[int] = []
    for i, point in enumerate(points):
        hit = cache.load(point) if (resume and cache is not None) else None
        if hit is not None:
            records[i] = PointRecord(point, "ok", result=hit, cached=True)
            if printer:
                printer.update(point.id, "ok", 0.0, cached=True)
            if stream is not None:
                stream.point(point.id, "ok", 0.0, cached=True)
        else:
            todo.append(i)

    jitter = random.Random(0x5EED)
    attempts_log: Dict[int, List[Dict[str, Any]]] = {}
    remaining = todo
    attempt = 0
    while True:
        final = attempt >= retries
        if jobs == 1 and timeout_s is None:
            _run_inline(points, remaining, records, cache, printer,
                        telemetry, final, stream)
        else:
            _run_pool(points, remaining, records, cache, printer, jobs,
                      timeout_s, telemetry, final, stream)
        failed = []
        for i in remaining:
            record = records[i]
            if record.ok:
                if i in attempts_log:  # flaky: succeeded on a retry
                    record.attempts = attempts_log[i]
                continue
            failed.append(i)
            log = attempts_log.setdefault(i, [])
            log.append(dict(record.error or {}, attempt=attempt + 1,
                            status=record.status))
            record.attempts = log
        if final or not failed:
            break
        attempt += 1
        if stream is not None:
            for i in failed:
                stream.retry(points[i].id, attempt, records[i].status)
        remaining = failed
        delay = retry_backoff_s * (2 ** (attempt - 1))
        time.sleep(delay * (0.5 + jitter.random()))

    # Failures that survived every retry are committed once, with the
    # whole attempt history (intermediate passes never touch the cache).
    if cache is not None:
        for i in failed:
            record = records[i]
            cache.store_failure(record.point, record.status,
                                record.error or {}, attempts=record.attempts)

    if printer:
        printer.finish()
    return [records[i] for i in range(len(points))]


def _run_inline(points, todo, records, cache, printer, telemetry,
                final=True, stream=None) -> None:
    for i in todo:
        point = points[i]
        t0 = time.monotonic()
        record, telem = _execute_one(point, telemetry)
        record.elapsed_s = time.monotonic() - t0
        record.telemetry = telem
        _commit(record, records, i, cache, printer, final, stream)


def _execute_one(point, telemetry):
    """Run one point (optionally under a TelemetryContext); fail-soft."""
    ctx = TelemetryContext(event_topics="all") if telemetry else None
    try:
        if ctx is not None:
            with ctx:
                result = execute_point(point)
        else:
            result = execute_point(point)
        record = PointRecord(point, "ok", result=result)
    except Exception as exc:  # fail-soft: record, keep sweeping
        record = PointRecord(point, "error", error=_error_info(exc))
    # Partial telemetry from a failed point is still a diagnostic asset.
    return record, (ctx.collect() if ctx is not None else None)


def _run_pool(points, todo, records, cache, printer, jobs, timeout_s,
              telemetry=False, final=True, stream=None) -> None:
    ctx = multiprocessing.get_context()
    pending = list(todo)
    running: Dict[Any, tuple] = {}  # proc -> (index, conn, t0)
    try:
        while pending or running:
            while pending and len(running) < jobs:
                i = pending.pop(0)
                parent_conn, child_conn = ctx.Pipe(duplex=False)
                proc = ctx.Process(target=_worker,
                                   args=(points[i], child_conn, telemetry))
                proc.start()
                child_conn.close()
                running[proc] = (i, parent_conn, time.monotonic())
            for proc in list(running):
                i, conn, t0 = running[proc]
                record = _reap(points[i], proc, conn, t0, timeout_s)
                if record is None:
                    continue
                del running[proc]
                _commit(record, records, i, cache, printer, final, stream)
            if running:
                time.sleep(_POLL_S)
    finally:
        for proc, (i, conn, t0) in running.items():
            proc.terminate()
            proc.join()
            conn.close()


def _reap(point, proc, conn, t0, timeout_s) -> Optional[PointRecord]:
    """One poll of a worker: its record when finished, else None."""
    elapsed = time.monotonic() - t0
    if conn.poll():
        try:
            status, payload, telem = conn.recv()
        except (EOFError, OSError):
            status, payload, telem = "error", {
                "type": "WorkerError",
                "message": "worker pipe closed before sending a result",
            }, None
        proc.join()
        conn.close()
        if status == "ok":
            return PointRecord(point, "ok", result=payload,
                               elapsed_s=elapsed, telemetry=telem)
        return PointRecord(point, "error", error=payload, elapsed_s=elapsed,
                           telemetry=telem)
    if timeout_s is not None and elapsed > timeout_s:
        proc.terminate()
        proc.join()
        conn.close()
        return PointRecord(
            point, "timeout", elapsed_s=elapsed,
            error={"type": "Timeout",
                   "message": f"point exceeded timeout of {timeout_s}s"},
        )
    if not proc.is_alive():
        proc.join()
        conn.close()
        return PointRecord(
            point, "error", elapsed_s=elapsed,
            error={"type": "WorkerDied",
                   "message": f"worker exited with code {proc.exitcode} "
                              f"without returning a result"},
        )
    return None


def _worker(point: ExperimentPoint, conn, telemetry: bool = False) -> None:
    """Worker-process entry: run one point, ship the outcome back."""
    try:
        record, telem = _execute_one(point, telemetry)
        if record.ok:
            conn.send(("ok", record.result, telem))
        else:
            conn.send((record.status, record.error, telem))
    except BaseException as exc:
        try:
            conn.send(("error", _error_info(exc), None))
        except Exception:
            pass
    finally:
        conn.close()


def _error_info(exc: BaseException) -> Dict[str, str]:
    """Structured failure info with the exception's *full* traceback
    (``format_exception`` on the instance, so it works even outside the
    handling ``except`` block)."""
    return {
        "type": type(exc).__name__,
        "message": str(exc),
        "traceback": "".join(
            traceback.format_exception(type(exc), exc, exc.__traceback__)
        ),
    }


def _commit(record, records, i, cache, printer, final=True,
            stream=None) -> None:
    """Record one attempt's outcome. Successes are cached immediately;
    failures are only *final* on the last retry pass — `run_points`
    commits those (with the full attempt history) after the loop, and
    non-final failures stay off the printer (and the campaign stream)
    so each point lands exactly once."""
    records[i] = record
    if cache is not None and not record.cached and record.ok:
        cache.store(record.point, record.result)
    if printer and (final or record.ok):
        printer.update(record.point.id, record.status, record.elapsed_s,
                       cached=record.cached)
    if stream is not None and (final or record.ok):
        stream.point(record.point.id, record.status, record.elapsed_s,
                     cached=record.cached)


# ----------------------------------------------------------------------
# Reducers over record lists
# ----------------------------------------------------------------------

def results_by_name(records: Sequence[PointRecord],
                    experiment: Optional[str] = None) -> Dict[str, Dict]:
    """``{point.name: result}`` over successful records (optionally one
    experiment's) — the shape every module's ``summarize`` consumes."""
    return {
        r.point.name: r.result
        for r in records
        if r.ok and (experiment is None or r.point.experiment == experiment)
    }


def failures(records: Sequence[PointRecord]) -> List[PointRecord]:
    """The records that did not complete successfully."""
    return [r for r in records if not r.ok]


def raise_failures(records: Sequence[PointRecord]) -> None:
    """Re-raise the first failure as RuntimeError (the strict path used
    by ``module.run()`` so benchmarks still see exceptions)."""
    failed = failures(records)
    if not failed:
        return
    first = failed[0]
    info = first.error or {}
    detail = info.get("traceback") or info.get("message") or ""
    raise RuntimeError(
        f"{first.point.id} {first.status}: "
        f"{info.get('type', '?')}: {info.get('message', '')}\n{detail}"
    )


def run_experiment(name: str, quick: bool = True,
                   seed: Optional[int] = None, **runner_kwargs) -> Dict:
    """``summarize(run_points(points(quick)))`` for one module — the
    compatibility core behind every experiment's ``run()``."""
    module = experiment_module(name)
    records = run_points(module.points(quick, seed=seed), **runner_kwargs)
    raise_failures(records)
    return module.summarize(results_by_name(records, experiment=name))
