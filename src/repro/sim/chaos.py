"""Declarative chaos scenarios and run invariants.

A chaos *scenario* is a small frozen dataclass describing one failure
process — link flaps, a fiber cut, a grey failure (silent loss on a link
that stays administratively up), a timed Gilbert-Elliott loss episode,
or a partition window. Scenarios are compiled onto any
:class:`~repro.sim.network.Network` by a *selector* that picks the
target cables (both directions of a bidirectional link):

- ``"border"`` — cables between border switches (the paper's WAN links);
- ``"core"`` — cables touching a core switch (core uplinks);
- ``"inter_switch"`` — every switch-to-switch cable (on a dumbbell this
  is exactly the bottleneck);
- ``"random"`` — a seeded random sample of the switch-to-switch cables;
- ``"all"`` — every cable, host uplinks included.

``k`` bounds how many of the matching cables the scenario hits (0 = all
of them). Selection is deterministic given the network and the seed, so
a campaign point re-runs bit-identically.

*Node* scenarios (:class:`SwitchCrash`, :class:`ToRReboot`,
:class:`HostCrash`, :class:`NICFlap`) strike whole failure domains
instead of cables, via node selectors (``tor``/``agg``/``core``/
``border``/``host``/``random``) with the same ``k`` and zero-match
semantics. A crashed node fails every attached cable as one convergence
event; a crashed host additionally tears down its transport endpoints.

:func:`check_invariants` is the post-run checker every chaos campaign
point calls: packet conservation at each directed link, no flow stuck
past the deadline, the event loop drained, and per-flow completion
accounting (``_all_delivered``, which UnoRC overrides with block
coverage — so EC recovery is checked too). Violations are returned as
dicts and mirrored into the obs registry/event log under the
``invariant`` topic when telemetry is attached.
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass
from typing import TYPE_CHECKING, Any, ClassVar, Dict, List, Optional, Tuple

from repro.sim.failures import (
    BernoulliLoss,
    GilbertElliottLoss,
    calibrate_gilbert_elliott,
    schedule_bidirectional_failure,
    schedule_node_failure,
)
from repro.sim.host import Host
from repro.sim.link import Link
from repro.sim.packet import make_pause
from repro.sim.switch import Switch

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator
    from repro.sim.network import Network

# Both directions of one physical cable, as wired by Network.add_link.
Cable = Tuple[Link, Link]

SELECTORS = ("border", "core", "inter_switch", "random", "all")

# Node selectors, keyed to the repo's topology naming conventions:
# fat-tree switches are "dc{d}.p{p}.edge{j}" / "dc{d}.p{p}.agg{j}" /
# "dc{d}.core{c}", inter-DC gateways contain "border".
NODE_SELECTORS = ("tor", "agg", "core", "border", "host", "random")


def cables(net: "Network") -> List[Cable]:
    """The network's bidirectional cables: ``add_link`` appends each
    direction pair consecutively, so consecutive pairs are cables."""
    links = net.links
    return [(links[i], links[i + 1]) for i in range(0, len(links), 2)]


def cable_endpoints(cable: Cable):
    """(a, b) node objects for a cable built as a->b / b->a."""
    ab, ba = cable
    return ba.dst, ab.dst


def select_cables(
    net: "Network",
    selector: str,
    k: int = 0,
    rng: Optional[random.Random] = None,
) -> List[Cable]:
    """The target cables for a scenario, deterministically ordered.

    ``k=0`` keeps every match; ``k>0`` keeps the first k (or, for
    ``"random"``, a seeded sample of k). Raises if nothing matches — a
    scenario silently hitting zero links would make a campaign vacuous.
    """
    if selector not in SELECTORS:
        raise ValueError(f"unknown selector {selector!r}; "
                         f"choose from {SELECTORS}")
    all_cables = cables(net)
    if selector == "all":
        matched = all_cables
    elif selector == "border":
        matched = [
            c for c in all_cables
            if all("border" in n.name for n in cable_endpoints(c))
        ]
    elif selector == "core":
        matched = [
            c for c in all_cables
            if any("core" in n.name for n in cable_endpoints(c))
        ]
    else:  # "inter_switch" and the "random" pool
        matched = [
            c for c in all_cables
            if all(isinstance(n, Switch) for n in cable_endpoints(c))
        ]
    if not matched:
        raise ValueError(
            f"selector {selector!r} matched no cables on this network"
        )
    if selector == "random":
        rng = rng or random.Random(0)
        n = min(k, len(matched)) if k > 0 else len(matched)
        return rng.sample(matched, n)
    if k > 0:
        matched = matched[:k]
    return matched


def select_nodes(
    net: "Network",
    selector: str,
    k: int = 0,
    rng: Optional[random.Random] = None,
) -> List:
    """The target nodes for a node-level scenario, deterministically
    ordered. Same contract as :func:`select_cables`: ``k=0`` keeps every
    match, ``k>0`` the first k (a seeded sample for ``"random"``), and a
    selector matching zero nodes raises rather than silently arming a
    vacuous scenario."""
    if selector not in NODE_SELECTORS:
        raise ValueError(f"unknown node selector {selector!r}; "
                         f"choose from {NODE_SELECTORS}")
    if selector == "host":
        matched = list(net.hosts)
    elif selector == "random":
        matched = list(net.nodes)
    elif selector == "tor":
        matched = [sw for sw in net.switches if ".edge" in sw.name]
    elif selector == "agg":
        matched = [sw for sw in net.switches if ".agg" in sw.name]
    elif selector == "core":
        matched = [sw for sw in net.switches if "core" in sw.name]
    else:  # "border"
        matched = [sw for sw in net.switches if "border" in sw.name]
    if not matched:
        raise ValueError(
            f"node selector {selector!r} matched no nodes on this network"
        )
    if selector == "random":
        rng = rng or random.Random(0)
        n = min(k, len(matched)) if k > 0 else len(matched)
        return rng.sample(matched, n)
    if k > 0:
        matched = matched[:k]
    return matched


# ----------------------------------------------------------------------
# Scenario vocabulary
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Scenario:
    """Base: where the scenario strikes. Subclasses add when and how."""

    kind: ClassVar[str] = ""

    selector: str = "border"
    k: int = 1

    def apply(self, sim: "Simulator", net: "Network",
              rng: Optional[random.Random] = None) -> List[Cable]:
        """Compile this scenario onto ``net``: pick the target cables and
        schedule every effect on ``sim``. Returns the cables hit."""
        rng = rng or random.Random(0)
        targets = select_cables(net, self.selector, self.k, rng)
        for cable in targets:
            self._apply_cable(sim, cable, rng)
        return targets

    def _apply_cable(self, sim: "Simulator", cable: Cable,
                     rng: random.Random) -> None:
        raise NotImplementedError

    def describe(self) -> Dict[str, Any]:
        """JSON-ready record of the scenario (kind + every field)."""
        return dict(asdict(self), kind=type(self).kind)


@dataclass(frozen=True)
class LinkFlap(Scenario):
    """Repeated short outages: down for ``down_ps`` every ``period_ps``,
    ``flaps`` times, both directions at once."""

    kind: ClassVar[str] = "link_flap"

    start_ps: int = 0
    down_ps: int = 1_000_000_000       # 1 ms outage
    period_ps: int = 20_000_000_000    # 20 ms between flap starts
    flaps: int = 2

    def __post_init__(self) -> None:
        if self.flaps < 1:
            raise ValueError("need at least one flap")
        if not 0 < self.down_ps < self.period_ps:
            raise ValueError("flap outage must be shorter than its period")

    def _apply_cable(self, sim, cable, rng) -> None:
        ab, ba = cable
        for i in range(self.flaps):
            schedule_bidirectional_failure(
                sim, ab, ba,
                self.start_ps + i * self.period_ps,
                self.down_ps,
            )


@dataclass(frozen=True)
class FiberCut(Scenario):
    """Both directions down at ``at_ps``; repaired after
    ``repair_after_ps`` (None = never — a permanent cut)."""

    kind: ClassVar[str] = "fiber_cut"

    at_ps: int = 0
    repair_after_ps: Optional[int] = None

    def _apply_cable(self, sim, cable, rng) -> None:
        ab, ba = cable
        schedule_bidirectional_failure(sim, ab, ba, self.at_ps,
                                       self.repair_after_ps)


@dataclass(frozen=True)
class GreyFailure(Scenario):
    """Silent loss: the link stays administratively *up* (so rerouting
    never triggers) but drops packets at ``loss_rate`` in both directions
    during the window. This is the failure class routing cannot see and
    transports must survive alone."""

    kind: ClassVar[str] = "grey_failure"

    start_ps: int = 0
    duration_ps: Optional[int] = None  # None = until the end of the run
    loss_rate: float = 0.05

    def __post_init__(self) -> None:
        if not 0.0 < self.loss_rate <= 1.0:
            raise ValueError(f"loss rate {self.loss_rate} outside (0, 1]")

    def _apply_cable(self, sim, cable, rng) -> None:
        for link in cable:
            model = BernoulliLoss(self.loss_rate, seed=rng.getrandbits(31))
            sim.at(self.start_ps, _attach_loss, link, model)
            if self.duration_ps is not None:
                sim.at(self.start_ps + self.duration_ps,
                       _detach_loss, link, model)


@dataclass(frozen=True)
class LossEpisode(Scenario):
    """A timed correlated-loss window: Gilbert-Elliott calibrated to a
    marginal loss rate and mean burst length (the paper's Table 1
    process), attached for ``duration_ps`` in both directions."""

    kind: ClassVar[str] = "loss_episode"

    start_ps: int = 0
    duration_ps: int = 10_000_000_000  # 10 ms
    loss_rate: float = 0.01
    mean_burst_packets: float = 2.5
    loss_bad: float = 0.5

    def _apply_cable(self, sim, cable, rng) -> None:
        params = calibrate_gilbert_elliott(
            self.loss_rate, self.mean_burst_packets, self.loss_bad
        )
        for link in cable:
            model = GilbertElliottLoss(params, seed=rng.getrandbits(31))
            sim.at(self.start_ps, _attach_loss, link, model)
            sim.at(self.start_ps + self.duration_ps,
                   _detach_loss, link, model)


@dataclass(frozen=True)
class PartitionWindow(Scenario):
    """Every selected cable down simultaneously for ``duration_ps`` —
    with a selector covering a full cut set, the network partitions."""

    kind: ClassVar[str] = "partition_window"

    k: int = 0  # default: the whole selector match (a real partition)
    start_ps: int = 0
    duration_ps: int = 5_000_000_000  # 5 ms

    def _apply_cable(self, sim, cable, rng) -> None:
        ab, ba = cable
        schedule_bidirectional_failure(sim, ab, ba, self.start_ps,
                                       self.duration_ps)


# ----------------------------------------------------------------------
# Node-level scenarios (failure domains)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class NodeScenario(Scenario):
    """Base for scenarios striking *nodes* (switches or hosts) rather
    than cables: targets come from :func:`select_nodes`, and ``apply``
    returns the node objects hit."""

    selector: str = "tor"

    def apply(self, sim: "Simulator", net: "Network",
              rng: Optional[random.Random] = None) -> List:
        rng = rng or random.Random(0)
        targets = select_nodes(net, self.selector, self.k, rng)
        for node in targets:
            self._apply_node(sim, node, rng)
        return targets

    def _apply_node(self, sim: "Simulator", node, rng: random.Random) -> None:
        raise NotImplementedError

    def _apply_cable(self, sim, cable, rng) -> None:  # pragma: no cover
        raise TypeError("node scenarios strike nodes, not cables")


@dataclass(frozen=True)
class SwitchCrash(NodeScenario):
    """A switch dies at ``at_ps`` — every attached cable fails as one
    event — and comes back after ``repair_after_ps`` (None = never)."""

    kind: ClassVar[str] = "switch_crash"

    selector: str = "border"
    at_ps: int = 0
    repair_after_ps: Optional[int] = None

    def _apply_node(self, sim, node, rng) -> None:
        schedule_node_failure(sim, node, self.at_ps, self.repair_after_ps)


@dataclass(frozen=True)
class ToRReboot(NodeScenario):
    """A top-of-rack switch reboots: down at ``at_ps``, back up
    ``down_ps`` later. Hosts under it are unreachable meanwhile (no
    alternate path below the ToR), so their flows must ride it out."""

    kind: ClassVar[str] = "tor_reboot"

    selector: str = "tor"
    at_ps: int = 0
    down_ps: int = 20_000_000_000  # 20 ms reboot

    def __post_init__(self) -> None:
        if self.down_ps <= 0:
            raise ValueError("reboot outage must be positive")

    def _apply_node(self, sim, node, rng) -> None:
        schedule_node_failure(sim, node, self.at_ps, self.down_ps)


@dataclass(frozen=True)
class HostCrash(NodeScenario):
    """A host crashes at ``at_ps``: its endpoints are torn down (local
    senders abort, receivers close) and its NIC cable fails. Remote
    senders whose peer died are expected to hit their abort policy."""

    kind: ClassVar[str] = "host_crash"

    selector: str = "host"
    at_ps: int = 0
    repair_after_ps: Optional[int] = None

    def _apply_node(self, sim, node, rng) -> None:
        schedule_node_failure(sim, node, self.at_ps, self.repair_after_ps)


@dataclass(frozen=True)
class PauseStorm(Scenario):
    """A PFC pause storm on the selected cables: both endpoints inject
    spurious PAUSE frames at each other every ``period_ps`` for
    ``duration_ps``, each carrying a ``hold_ps`` quantum — the classic
    misbehaving-NIC / buggy-firmware failure of lossless fabrics. On a
    lossy fabric (PFC disabled) the frames are counted and ignored; on a
    lossless one the victim ports freeze repeatedly, spreading congestion
    upstream. Holds are finite, so the storm always clears after it
    ends — it degrades, never deadlocks by itself."""

    kind: ClassVar[str] = "pause_storm"

    start_ps: int = 0
    duration_ps: int = 30_000_000_000  # 30 ms of storming
    period_ps: int = 200_000_000       # one frame every 200 us
    hold_ps: int = 100_000_000         # each frame freezes for 100 us

    def __post_init__(self) -> None:
        if self.period_ps <= 0 or self.hold_ps <= 0:
            raise ValueError("storm period and hold must be positive")
        if self.duration_ps < self.period_ps:
            raise ValueError("storm must last at least one period")

    def _apply_cable(self, sim, cable, rng) -> None:
        a, b = cable_endpoints(cable)
        frames = self.duration_ps // self.period_ps
        for src, dst in ((b, a), (a, b)):
            # Frames from ``src`` ride the src->dst link and freeze
            # dst's port back toward src (see Switch._handle_pfc).
            idx, victim_port = _port_toward(dst, src)
            carrier = src.ports[(dst.node_id, idx)].link
            for i in range(frames):
                sim.at(self.start_ps + i * self.period_ps, _inject_pause,
                       carrier, src.node_id, dst.node_id, idx, self.hold_ps)


@dataclass(frozen=True)
class DeadlockProbe(Scenario):
    """Seed a cyclic buffer dependency: find a 4-cycle of switches
    (deterministically — e.g. core0/agg0/core1/agg1 in a fat-tree, or an
    edge/agg pod square) and hold a PAUSE on each directed port around
    it for ``hold_ps``. For the whole hold the cycle of ports makes no
    transmit progress: exactly the CBD signature the
    :class:`~repro.sim.pfc.DeadlockWatchdog` must flag. The hold is
    finite so a *detected* probe still drains before the horizon —
    the watchdog's report, not a hung simulation, is the outcome."""

    kind: ClassVar[str] = "deadlock_probe"

    at_ps: int = 0
    hold_ps: int = 60_000_000_000  # 60 ms: far beyond any watchdog window

    def __post_init__(self) -> None:
        if self.hold_ps <= 0:
            raise ValueError("probe hold must be positive")

    def apply(self, sim: "Simulator", net: "Network",
              rng: Optional[random.Random] = None) -> List:
        cycle = find_switch_cycle(net)
        n = len(cycle)
        for i, node in enumerate(cycle):
            nxt = cycle[(i + 1) % n]
            # Freeze node's port toward nxt: the PAUSE is sent by nxt
            # and rides the nxt->node link.
            idx, _port = _port_toward(node, nxt)
            carrier = nxt.ports[(node.node_id, idx)].link
            sim.at(self.at_ps, _inject_pause, carrier, nxt.node_id,
                   node.node_id, idx, self.hold_ps)
        return cycle

    def _apply_cable(self, sim, cable, rng) -> None:  # pragma: no cover
        raise TypeError("DeadlockProbe strikes a switch cycle, not cables")


def _port_toward(node, neighbor) -> Tuple[int, Any]:
    """(parallel index, port) of ``node``'s egress toward ``neighbor``."""
    for (nbr_id, idx), port in node.ports.items():
        if nbr_id == neighbor.node_id:
            return idx, port
    raise ValueError(
        f"{node.name} has no port toward {neighbor.name}"
    )


def _inject_pause(link: Link, src: int, dst: int, idx: int,
                  hold_ps: int) -> None:
    """Put one PAUSE frame on the wire (scenario injection helper)."""
    link.transmit_ctrl(make_pause(src, dst, idx, hold_ps))


def find_switch_cycle(net: "Network") -> List[Switch]:
    """A deterministic 4-cycle of switches: the first pair (in network
    order) sharing two switch neighbors, giving A - c0 - B - c1 - A.
    Every fat-tree has many (core/agg squares, edge/agg pod squares);
    raises on cycle-free topologies (e.g. a dumbbell)."""
    switches = net.switches
    by_id = {sw.node_id: sw for sw in switches}
    neighbors = {
        sw.node_id: sorted({nbr for (nbr, _idx) in sw.ports if nbr in by_id})
        for sw in switches
    }
    for i, a in enumerate(switches):
        set_a = set(neighbors[a.node_id])
        for b in switches[i + 1:]:
            common = [c for c in neighbors[b.node_id]
                      if c in set_a and c not in (a.node_id, b.node_id)]
            if len(common) >= 2:
                return [a, by_id[common[0]], b, by_id[common[1]]]
    raise ValueError("no 4-cycle of switches on this network")


@dataclass(frozen=True)
class NICFlap(NodeScenario):
    """A host's NIC cables flap — repeated short bidirectional outages —
    while the host itself stays up: connection state survives and flows
    must recover by retransmission alone (no endpoint teardown)."""

    kind: ClassVar[str] = "nic_flap"

    selector: str = "host"
    start_ps: int = 0
    down_ps: int = 1_000_000_000      # 1 ms outage
    period_ps: int = 20_000_000_000   # 20 ms between flap starts
    flaps: int = 2

    def __post_init__(self) -> None:
        if self.flaps < 1:
            raise ValueError("need at least one flap")
        if not 0 < self.down_ps < self.period_ps:
            raise ValueError("flap outage must be shorter than its period")

    def _apply_node(self, sim, node, rng) -> None:
        links = node.attached_links
        # attached_links holds both directions of each cable,
        # consecutively, in Network.add_link wiring order.
        for ab, ba in zip(links[0::2], links[1::2]):
            for i in range(self.flaps):
                schedule_bidirectional_failure(
                    sim, ab, ba,
                    self.start_ps + i * self.period_ps,
                    self.down_ps,
                )


SCENARIO_KINDS = {
    cls.kind: cls
    for cls in (LinkFlap, FiberCut, GreyFailure, LossEpisode,
                PartitionWindow, SwitchCrash, ToRReboot, HostCrash,
                NICFlap, PauseStorm, DeadlockProbe)
}


def scenario_from_dict(spec: Dict[str, Any]) -> Scenario:
    """Rebuild a scenario from :meth:`Scenario.describe` output."""
    spec = dict(spec)
    kind = spec.pop("kind", None)
    cls = SCENARIO_KINDS.get(kind)
    if cls is None:
        raise ValueError(f"unknown scenario kind {kind!r}; "
                         f"choose from {sorted(SCENARIO_KINDS)}")
    return cls(**spec)


def _attach_loss(link: Link, model) -> None:
    link.loss_model = model


def _detach_loss(link: Link, model) -> None:
    # Only detach our own model: a later scenario (or the experiment
    # itself) may have replaced it meanwhile.
    if link.loss_model is model:
        link.loss_model = None


# ----------------------------------------------------------------------
# Invariants
# ----------------------------------------------------------------------

def check_invariants(
    sim: "Simulator",
    net: "Network",
    senders,
    deadline_ps: int,
    watchdog=None,
) -> List[Dict[str, Any]]:
    """Post-run invariant sweep; returns one dict per violation.

    Call after ``sim.run(until=deadline_ps)``. Checks:

    - **packet_conservation** — per directed link, packets the port fully
      serialized plus control frames injected past it (PFC pause/resume,
      ``link.ctrl_pkts``) equal packets the link delivered + lost to a
      loss model + killed by failure + still propagating. Bytes held in
      a *paused* queue never left the port (``enqueued - len(fifo)``),
      so pause freezes are conservation-neutral: held, not leaked;
    - **pause_accounting** — each port's byte counter equals the bytes
      actually sitting in its FIFO (a pause/resume bookkeeping bug
      would skew one without the other);
    - **stalled_port** — a port with queued packets, no armed tx event,
      and no active pause: a frozen serializer nothing will ever re-arm
      (the pause-freeze analog of a lost wakeup);
    - **cbd_deadlock** — when a :class:`~repro.sim.pfc.DeadlockWatchdog`
      is passed, every cycle of paused ports it flagged during the run
      is appended as a first-class violation;
    - **flow_stuck** — a sender neither completed nor aborted by the
      deadline (aborting is a *terminal* outcome, not a violation);
    - **completion_accounting** — a sender that claims completion without
      full delivery (``_all_delivered``; UnoRC's block-coverage override
      makes this check EC recovery) or with an inconsistent FCT;
    - **abort_accounting** — an aborted sender missing its abort
      reason/time or also claiming completion;
    - **timer_after_terminal** — a terminal sender with a live RTO,
      pacing, or deadline timer;
    - **endpoint_on_down_node** — a crashed host still holding endpoint
      registrations (its teardown must strip them);
    - **active_sender_on_down_node** — a non-terminal sender whose host
      is down (a crashed host cannot have live connections);
    - **event_loop_not_drained** — events still pending after the
      deadline (leaked timers keep simulations alive forever).
    """
    violations: List[Dict[str, Any]] = []

    for node in net.nodes:
        for port in node.ports.values():
            link = port.link
            # enqueued_pkts counts only successful enqueues (tail drops
            # never enter the FIFO), so everything enqueued either still
            # sits in the FIFO — paused bytes included — or reached the
            # link. Control frames (PFC) enter at the link directly and
            # are balanced by ctrl_pkts.
            sent = port.enqueued_pkts - len(port._fifo)
            accounted = (link.delivered_pkts + link.lost_pkts
                         + link.failed_drops + link.inflight_pkts)
            if sent + link.ctrl_pkts != accounted:
                violations.append({
                    "invariant": "packet_conservation",
                    "link": link.name,
                    "sent": sent,
                    "ctrl_pkts": link.ctrl_pkts,
                    "accounted": accounted,
                })
            # Settle any batch-advanced serializations first so the byte
            # counter reflects only what is actually still queued; the
            # unsettled remainder of the drain schedule (committed to the
            # link but still serializing) is queued bytes too.
            queued_bytes = port.occupancy_bytes()
            fifo_bytes = (sum(p.size for p in port._fifo)
                          + sum(s for _, s in port._sched))
            if fifo_bytes != queued_bytes:
                violations.append({
                    "invariant": "pause_accounting",
                    "port": port.name,
                    "bytes_queued": queued_bytes,
                    "fifo_bytes": fifo_bytes,
                })
            if port._fifo and not port._busy and not port.paused:
                violations.append({
                    "invariant": "stalled_port",
                    "port": port.name,
                    "queued_pkts": len(port._fifo),
                })

    if watchdog is not None:
        violations.extend(watchdog.deadlocks)

    for sender in senders:
        stats = sender.stats
        aborted = getattr(sender, "aborted", False)
        if not sender.done and not aborted:
            violations.append({
                "invariant": "flow_stuck",
                "flow": sender.flow_id,
                "deadline_ps": deadline_ps,
                "acked": len(sender.acked_seqs),
                "total_data_pkts": sender.total_data_pkts,
            })
            continue
        if aborted:
            if (stats.finish_ps is not None or stats.aborted_ps is None
                    or stats.abort_reason is None):
                violations.append({
                    "invariant": "abort_accounting",
                    "flow": sender.flow_id,
                    "finish_ps": stats.finish_ps,
                    "aborted_ps": stats.aborted_ps,
                    "abort_reason": stats.abort_reason,
                })
        elif not sender._all_delivered() or stats.finish_ps is None \
                or stats.finish_ps < stats.start_ps:
            violations.append({
                "invariant": "completion_accounting",
                "flow": sender.flow_id,
                "all_delivered": sender._all_delivered(),
                "start_ps": stats.start_ps,
                "finish_ps": stats.finish_ps,
            })
        live = [
            name for name in
            ("_rto_handle", "_pace_handle", "_deadline_handle")
            if getattr(sender, name, None) is not None
        ]
        if live:
            violations.append({
                "invariant": "timer_after_terminal",
                "flow": sender.flow_id,
                "timers": live,
                "aborted": bool(aborted),
            })

    for host in net.hosts:
        if not host.up and host.endpoints:
            violations.append({
                "invariant": "endpoint_on_down_node",
                "node": host.name,
                "flows": sorted(host.endpoints),
            })
    for sender in senders:
        terminal = sender.done or getattr(sender, "aborted", False)
        if not terminal and not sender.src.up:
            violations.append({
                "invariant": "active_sender_on_down_node",
                "flow": sender.flow_id,
                "node": sender.src.name,
            })

    # live_pending ignores cancelled tombstones, so leftover dead timers
    # don't mask (or fake) a stuck flow; peek_time() then names the next
    # genuinely live event.
    if sim.live_pending:
        violations.append({
            "invariant": "event_loop_not_drained",
            "live_pending": sim.live_pending,
            "next_event_ps": sim.peek_time(),
        })

    obs = sim.obs
    if obs is not None and violations:
        obs.metrics.counter("invariant.violations").inc(len(violations))
        ev = obs.events
        if ev is not None and ev.wants("invariant"):
            for v in violations:
                ev.emit("invariant", v["invariant"], t=sim.now,
                        **{k: val for k, val in v.items()
                           if k != "invariant"})
    return violations
