"""Node-level failure domains.

A node (switch or host) is a *failure domain*: failing it atomically
fails every attached cable through the normal ``Link.fail`` notification
path, so the owning :class:`~repro.sim.network.Network` sees the whole
event as one control-plane convergence (the network dedupes same-instant
transitions), and marks the node itself down so any packet that still
reaches it — e.g. over a cable independently restored while the node is
dead — is dropped and counted (``down_node_drops``).

``restore()`` re-ups only the cables whose *other* endpoint is also up:
when two adjacent nodes are down, the cable between them stays dark
until the second one returns. A cable that an independent link-level
scenario cut before the node failed is re-upped by the node's restore;
the scenario's own later repair is then an idempotent no-op.

Implemented as a mixin with empty ``__slots__`` so the slotted
:class:`~repro.sim.switch.Switch` and :class:`~repro.sim.host.Host`
classes can inherit it; subclasses declare the actual slots
(``up``, ``attached_links``, ``down_node_drops``) and call
:meth:`_init_failure_domain` during construction.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.link import Link


class FailureDomain:
    """Mixin: node up/down state plus atomic attached-cable failure."""

    __slots__ = ()

    def _init_failure_domain(self) -> None:
        self.up = True
        # Every unidirectional link touching this node (both directions
        # of each cable), appended by Network.add_link in wiring order.
        self.attached_links: List["Link"] = []
        self.down_node_drops = 0

    def _count_down_drop(self) -> None:
        """A packet reached this node while it was down."""
        self.down_node_drops += 1
        obs = self.sim.obs
        if obs is not None:
            obs.metrics.counter("failures.down_node_drops").inc()

    def fail(self) -> None:
        """Take the node down, failing every attached cable. Idempotent:
        failing a down node is a no-op (no double-counted transitions)."""
        if not self.up:
            return
        self.up = False
        obs = self.sim.obs
        if obs is not None:
            obs.metrics.counter("failures.node_down").inc()
            ev = obs.events
            if ev is not None and ev.wants("failure"):
                ev.emit("failure", "node_down", t=self.sim.now,
                        node=self.name)
        # Link.fail is itself idempotent and notifies the network per
        # transition; the network coalesces same-instant notifications
        # into a single convergence event.
        for link in self.attached_links:
            link.fail()
        self._on_fail()

    def restore(self) -> None:
        """Bring the node back up, restoring attached cables whose other
        endpoint is up. Idempotent like :meth:`fail`."""
        if self.up:
            return
        self.up = True
        obs = self.sim.obs
        if obs is not None:
            obs.metrics.counter("failures.node_up").inc()
            ev = obs.events
            if ev is not None and ev.wants("failure"):
                ev.emit("failure", "node_up", t=self.sim.now,
                        node=self.name)
        for link in self.attached_links:
            peer = link.dst if link.src is self else link.src
            if peer is None or getattr(peer, "up", True):
                link.restore()

    def _on_fail(self) -> None:
        """Subclass hook fired after the node went down (Host tears down
        its transport endpoints here)."""
